//! Property test: for random job counts, priors, and responses, the
//! batch engine agrees bit-for-bit with a serial `BmfFitter` loop —
//! under a randomized thread count, so the schedule varies too.

use bmf_basis::basis::OrthonormalBasis;
use bmf_core::batch::{BatchFitter, BatchJob};
use bmf_core::fusion::BmfFitter;
use bmf_core::options::FitOptions;
use bmf_stat::normal::StandardNormal;
use bmf_stat::prop;

#[test]
fn batch_equals_serial_loop_for_random_jobs() {
    prop::check("batch == serial loop", 16, |rng| {
        let r = 3 + rng.gen_index(5);
        let k = 10 + rng.gen_index(8);
        let num_jobs = 1 + rng.gen_index(5);
        let threads = 1 + rng.gen_index(4);
        let folds = 3 + rng.gen_index(2);
        let seed = rng.next_u64();

        let mut normal = StandardNormal::new();
        let points: Vec<Vec<f64>> = (0..k).map(|_| normal.sample_vec(rng, r)).collect();

        let basis = OrthonormalBasis::linear(r);
        let opts = FitOptions::new().folds(folds).seed(seed).threads(threads);
        let mut batch = BatchFitter::new(basis.clone()).with_options(opts.clone());
        let mut jobs: Vec<(Vec<Option<f64>>, Vec<f64>)> = Vec::new();
        for _ in 0..num_jobs {
            let truth = prop::vec_in(rng, -2.0, 2.0, r + 1);
            let values: Vec<f64> = points
                .iter()
                .map(|p| {
                    truth[0]
                        + p.iter()
                            .enumerate()
                            .map(|(i, x)| truth[i + 1] * x)
                            .sum::<f64>()
                })
                .collect();
            let early: Vec<Option<f64>> = truth
                .iter()
                .map(|t| (!rng.gen_bool(0.1)).then_some(t * 1.05))
                .collect();
            batch.push_job(BatchJob::new("job", early.clone(), values.clone()));
            jobs.push((early, values));
        }

        let report = match batch.fit(&points) {
            Ok(r) => r,
            // Degenerate draws (e.g. too many missing priors per fold) must
            // fail identically in the serial path; checked below.
            Err(batch_err) => {
                let multi = jobs.len() > 1;
                let (early, values) = jobs.swap_remove(0);
                let serial_err = BmfFitter::new(basis, early)
                    .unwrap()
                    .with_options(opts)
                    .fit(&points, &values);
                assert!(
                    serial_err.is_err() || multi,
                    "batch failed ({batch_err:?}) where the serial loop succeeds"
                );
                return;
            }
        };

        for (j, (early, values)) in jobs.iter().enumerate() {
            let serial = BmfFitter::new(basis.clone(), early.clone())
                .unwrap()
                .with_options(opts.clone())
                .fit(&points, values)
                .expect("serial fit must succeed when the batch did");
            let batch_bits: Vec<u64> = report.fits[j]
                .model
                .coeffs()
                .iter()
                .map(|c| c.to_bits())
                .collect();
            let serial_bits: Vec<u64> = serial.model.coeffs().iter().map(|c| c.to_bits()).collect();
            assert_eq!(batch_bits, serial_bits, "job {j} diverged");
            assert_eq!(report.fits[j].prior_kind, serial.prior_kind);
            assert_eq!(report.fits[j].hyper.to_bits(), serial.hyper.to_bits());
        }
    });
}
