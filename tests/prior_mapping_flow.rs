//! Integration test: the §IV-A multifinger prior-mapping flow across
//! crates — schematic diff-pair fit, finger expansion, mapped prior,
//! late-stage fusion — using only public APIs.

use bmf_basis::basis::OrthonormalBasis;
use bmf_circuits::diffpair::{DiffPair, DiffPairConfig};
use bmf_circuits::sim::monte_carlo;
use bmf_circuits::stage::{CircuitPerformance, Stage};
use bmf_core::fusion::BmfFitter;
use bmf_core::omp::{fit_omp, OmpConfig};
use bmf_core::options::FitOptions;
use bmf_core::prior::{Prior, PriorKind};

#[test]
fn mapped_prior_preserves_variance_and_fits() {
    let dp = DiffPair::new(DiffPairConfig::default());
    let vos = dp.offset_voltage();

    // Early fit on the 4-variable schematic basis.
    let sch = monte_carlo(&vos, Stage::Schematic, 300, 1).expect("simulation succeeds");
    let sch_basis = OrthonormalBasis::linear(4);
    let early =
        fit_omp(&sch_basis, &sch.points, &sch.values, &OmpConfig::default()).expect("early fit");
    let alpha_e = early.model.coeffs();

    // Expand and map: eq. 46's variance identity must hold exactly.
    let expansion = dp.finger_expansion().expect("finger counts are positive");
    let expanded = expansion.expand_basis(&sch_basis).expect("multilinear");
    let beta = expanded.map_coefficients(alpha_e);
    for (m, &alpha_m) in alpha_e
        .iter()
        .enumerate()
        .take(expanded.num_schematic_terms())
    {
        let group = expanded.group(m);
        let sum_sq: f64 = group.iter().map(|&t| beta[t] * beta[t]).sum();
        assert!(
            (sum_sq - alpha_m * alpha_m).abs() <= 1e-12 * alpha_m.abs().max(1e-12),
            "variance identity violated for term {m}"
        );
    }

    // Late-stage fusion with very few samples.
    let lay = monte_carlo(&vos, Stage::PostLayout, 8, 2).expect("simulation succeeds");
    let test = monte_carlo(&vos, Stage::PostLayout, 300, 3).expect("simulation succeeds");
    let fit = BmfFitter::from_mapped_early_model(&expanded, alpha_e, vec![])
        .expect("fitter")
        .with_options(FitOptions::new().folds(4).seed(5))
        .fit(&lay.points, &lay.values)
        .expect("fit");
    let err = fit
        .model
        .relative_error(test.point_slices(), &test.values)
        .expect("error");
    assert!(err < 0.10, "mapped-prior fit error too high: {err}");
}

#[test]
fn mapped_prior_construction_matches_eq49() {
    // Direct check of Prior::mapped on the diff-pair expansion.
    let dp = DiffPair::new(DiffPairConfig::default());
    let expansion = dp.finger_expansion().expect("finger counts are positive");
    let sch_basis = OrthonormalBasis::linear(4);
    let expanded = expansion.expand_basis(&sch_basis).expect("multilinear");
    // alpha for (1, x_vth1, x_vth2, x_rl1, x_rl2).
    let alpha = [0.0, 5.0e-3, -5.0e-3, 1.0e-4, -1.0e-4];
    let prior = Prior::mapped(PriorKind::NonZeroMean, &expanded, &alpha, 0).expect("mapped");
    let vals = prior.early_values();
    let s2 = 2.0f64.sqrt();
    // vth coefficients spread over two fingers each.
    assert!((vals[1].unwrap() - 5.0e-3 / s2).abs() < 1e-15);
    assert!((vals[2].unwrap() - 5.0e-3 / s2).abs() < 1e-15);
    assert!((vals[3].unwrap() + 5.0e-3 / s2).abs() < 1e-15);
    // rl coefficients have one "finger": unchanged.
    assert!((vals[5].unwrap() - 1.0e-4).abs() < 1e-15);
    assert_eq!(prior.num_missing(), 0);
}

#[test]
fn collapse_consistency_between_stages() {
    // Evaluating the schematic circuit at the collapsed point approximates
    // the layout circuit at the finger point (they differ only by the
    // systematic layout factors).
    let dp = DiffPair::new(DiffPairConfig {
        layout_gm_factor: 1.0,
        layout_rl_factor: 1.0,
        ..DiffPairConfig::default()
    });
    let vos = dp.offset_voltage();
    let expansion = dp.finger_expansion().expect("finger counts are positive");
    let layout_x = [0.4, -0.9, 0.3, 0.2, 0.7, -0.1];
    let sch_x = expansion.collapse_point(&layout_x);
    let vl = vos
        .evaluate(Stage::PostLayout, &layout_x)
        .expect("simulation succeeds");
    let vs = vos
        .evaluate(Stage::Schematic, &sch_x)
        .expect("simulation succeeds");
    assert!(
        (vl - vs).abs() < 1e-12,
        "with unit layout factors the stages must agree exactly: {vl} vs {vs}"
    );
}
