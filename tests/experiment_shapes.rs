//! Integration test: the experiment harness reproduces the paper's
//! qualitative shapes at CI scale — the same checks EXPERIMENTS.md quotes
//! at default scale.

use bmf_bench::costs::run_cost_comparison;
use bmf_bench::scale::Scale;
use bmf_bench::tables::run_error_table;
use bmf_circuits::ro::{RingOscillator, RoMetric};
use bmf_circuits::sram::SramReadPath;

#[test]
fn ro_error_table_shape() {
    let scale = Scale::Ci;
    let ro = RingOscillator::new(scale.ro_config(), 1);
    let view = ro.metric(RoMetric::Power);
    let table = run_error_table(&view, scale, 7).expect("table");
    // Shape 1: every BMF variant beats OMP at every K.
    for row in &table.rows {
        assert!(
            row.ps < row.omp,
            "K={}: PS {} !< OMP {}",
            row.k,
            row.ps,
            row.omp
        );
        assert!(row.zm < row.omp);
        assert!(row.nzm < row.omp);
    }
    // Shape 2: the BMF-PS headline — smallest-K PS at least matches
    // largest-K OMP.
    let first = table.rows.first().unwrap();
    let last = table.rows.last().unwrap();
    assert!(
        first.ps <= last.omp * 1.05,
        "PS@{} ({}) should match OMP@{} ({})",
        first.k,
        first.ps,
        last.k,
        last.omp
    );
}

#[test]
fn sram_error_table_shape() {
    let scale = Scale::Ci;
    let sram = SramReadPath::new(scale.sram_config(), 2);
    let view = sram.read_delay();
    let table = run_error_table(&view, scale, 9).expect("table");
    for row in &table.rows {
        assert!(
            row.ps < row.omp,
            "K={}: PS {} !< OMP {}",
            row.k,
            row.ps,
            row.omp
        );
    }
}

#[test]
fn cost_comparison_shape() {
    let scale = Scale::Ci;
    let ro = RingOscillator::new(scale.ro_config(), 3);
    let view = ro.metric(RoMetric::Frequency);
    let cmp = run_cost_comparison(&view, scale, 5, 80, 40).expect("comparison");
    // The ledger speedup equals the sample ratio up to fitting seconds.
    assert!(
        cmp.speedup() > 1.8 && cmp.speedup() <= 2.05,
        "speedup {}",
        cmp.speedup()
    );
    // No accuracy surrendered (within a small tolerance).
    assert!(cmp.bmf.error <= cmp.omp.error * 1.1);
}
