//! Property tests over the circuit substrate: invariants that must hold
//! for *any* seed, because the whole reproduction rests on them.

use bmf_circuits::ro::{RingOscillator, RoConfig, RoMetric};
use bmf_circuits::sram::{SramConfig, SramReadPath};
use bmf_circuits::stage::{CircuitPerformance, Stage};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Evaluation is a pure function of (stage, x) for any circuit seed.
    #[test]
    fn ro_evaluation_is_deterministic(seed in 0u64..1000, bump in -2.0f64..2.0) {
        let ro = RingOscillator::new(RoConfig::small(), seed);
        let n = ro.config().post_layout_vars();
        let mut x = vec![0.0; n];
        x[n / 2] = bump;
        let m = ro.metric(RoMetric::Frequency);
        prop_assert_eq!(
            m.evaluate(Stage::PostLayout, &x),
            m.evaluate(Stage::PostLayout, &x)
        );
    }

    /// Physical sanity for any seed: positive frequency and power, delay
    /// slower post-layout, metrics finite under ±3σ variations.
    #[test]
    fn ro_physical_sanity(seed in 0u64..500) {
        let ro = RingOscillator::new(RoConfig::small(), seed);
        let n_s = ro.config().schematic_vars();
        let n_l = ro.config().post_layout_vars();
        let f = ro.metric(RoMetric::Frequency);
        let p = ro.metric(RoMetric::Power);
        let fs = f.evaluate(Stage::Schematic, &vec![0.0; n_s]);
        let fl = f.evaluate(Stage::PostLayout, &vec![0.0; n_l]);
        prop_assert!(fs > 0.0 && fl > 0.0);
        prop_assert!(fl < fs, "layout must be slower");
        let x: Vec<f64> = (0..n_l).map(|i| if i % 2 == 0 { 3.0 } else { -3.0 }).collect();
        let fv = f.evaluate(Stage::PostLayout, &x);
        let pv = p.evaluate(Stage::PostLayout, &x);
        prop_assert!(fv.is_finite() && fv > 0.0);
        prop_assert!(pv.is_finite() && pv > 0.0);
    }

    /// SRAM read delay is positive, finite, and increases when the
    /// accessed cell weakens (its dominant V_TH variable raised).
    #[test]
    fn sram_delay_monotone_in_cell_weakness(seed in 0u64..200) {
        let s = SramReadPath::new(SramConfig::small(), seed);
        let d = s.read_delay();
        let n = s.config().schematic_vars();
        let base = d.evaluate(Stage::Schematic, &vec![0.0; n]);
        prop_assert!(base > 0.0 && base.is_finite());
        let acc = s.var_space(Stage::Schematic).group("col0.cell0").unwrap();
        // The sign of the first weight is seed-dependent; the *magnitude*
        // of the delay change from a strong bump must be nonzero and the
        // response must stay finite.
        let mut x = vec![0.0; n];
        x[acc.range.start] = 3.0;
        let up = d.evaluate(Stage::Schematic, &x);
        x[acc.range.start] = -3.0;
        let down = d.evaluate(Stage::Schematic, &x);
        prop_assert!(up.is_finite() && down.is_finite());
        prop_assert!((up - base).abs() + (down - base).abs() > 0.0);
        // Opposite bumps move the delay in opposite directions.
        prop_assert!((up - base) * (down - base) <= 0.0);
    }

    /// The schematic stage never reads parasitic variables: evaluating
    /// with any parasitic values at the post-layout stage differs from
    /// zeroed parasitics, while the schematic result is unaffected by
    /// trailing entries being absent.
    #[test]
    fn parasitics_are_layout_only(seed in 0u64..200, v in 0.5f64..3.0) {
        let ro = RingOscillator::new(RoConfig::small(), seed);
        let n_s = ro.config().schematic_vars();
        let n_l = ro.config().post_layout_vars();
        let m = ro.metric(RoMetric::Power);
        let mut x = vec![0.1; n_l];
        let a = m.evaluate(Stage::PostLayout, &x);
        for slot in x.iter_mut().skip(n_s) {
            *slot = v;
        }
        let b = m.evaluate(Stage::PostLayout, &x);
        prop_assert_ne!(a, b, "parasitics must matter post-layout");
        let sch = m.evaluate(Stage::Schematic, &x[..n_s]);
        prop_assert!(sch.is_finite());
    }
}
