//! Property tests over the circuit substrate: invariants that must hold
//! for *any* seed, because the whole reproduction rests on them.
//!
//! Driven by the in-tree harness (`bmf_stat::prop`); a failing case prints
//! its seed for replay via `BMF_PROP_CASE_SEED`.

use bmf_circuits::ro::{RingOscillator, RoConfig, RoMetric};
use bmf_circuits::sram::{SramConfig, SramReadPath};
use bmf_circuits::stage::{CircuitPerformance, Stage};
use bmf_stat::prop::check;

const CASES: u64 = 16;

/// Evaluation is a pure function of (stage, x) for any circuit seed.
#[test]
fn ro_evaluation_is_deterministic() {
    check("ro_evaluation_is_deterministic", CASES, |rng| {
        let seed = rng.gen_index(1000) as u64;
        let bump = rng.gen_range(-2.0..2.0);
        let ro = RingOscillator::new(RoConfig::small(), seed);
        let n = ro.config().post_layout_vars();
        let mut x = vec![0.0; n];
        x[n / 2] = bump;
        let m = ro.metric(RoMetric::Frequency);
        assert_eq!(
            m.evaluate(Stage::PostLayout, &x).unwrap(),
            m.evaluate(Stage::PostLayout, &x).unwrap()
        );
    });
}

/// Physical sanity for any seed: positive frequency and power, delay
/// slower post-layout, metrics finite under ±3σ variations.
#[test]
fn ro_physical_sanity() {
    check("ro_physical_sanity", CASES, |rng| {
        let seed = rng.gen_index(500) as u64;
        let ro = RingOscillator::new(RoConfig::small(), seed);
        let n_s = ro.config().schematic_vars();
        let n_l = ro.config().post_layout_vars();
        let f = ro.metric(RoMetric::Frequency);
        let p = ro.metric(RoMetric::Power);
        let fs = f.evaluate(Stage::Schematic, &vec![0.0; n_s]).unwrap();
        let fl = f.evaluate(Stage::PostLayout, &vec![0.0; n_l]).unwrap();
        assert!(fs > 0.0 && fl > 0.0);
        assert!(fl < fs, "layout must be slower");
        let x: Vec<f64> = (0..n_l)
            .map(|i| if i % 2 == 0 { 3.0 } else { -3.0 })
            .collect();
        let fv = f.evaluate(Stage::PostLayout, &x).unwrap();
        let pv = p.evaluate(Stage::PostLayout, &x).unwrap();
        assert!(fv.is_finite() && fv > 0.0);
        assert!(pv.is_finite() && pv > 0.0);
    });
}

/// SRAM read delay is positive, finite, and increases when the
/// accessed cell weakens (its dominant V_TH variable raised).
#[test]
fn sram_delay_monotone_in_cell_weakness() {
    check("sram_delay_monotone_in_cell_weakness", CASES, |rng| {
        let seed = rng.gen_index(200) as u64;
        let s = SramReadPath::new(SramConfig::small(), seed);
        let d = s.read_delay();
        let n = s.config().schematic_vars();
        let base = d.evaluate(Stage::Schematic, &vec![0.0; n]).unwrap();
        assert!(base > 0.0 && base.is_finite());
        let acc = s.var_space(Stage::Schematic).group("col0.cell0").unwrap();
        // The sign of the first weight is seed-dependent; the *magnitude*
        // of the delay change from a strong bump must be nonzero and the
        // response must stay finite.
        let mut x = vec![0.0; n];
        x[acc.range.start] = 3.0;
        let up = d.evaluate(Stage::Schematic, &x).unwrap();
        x[acc.range.start] = -3.0;
        let down = d.evaluate(Stage::Schematic, &x).unwrap();
        assert!(up.is_finite() && down.is_finite());
        assert!((up - base).abs() + (down - base).abs() > 0.0);
        // Opposite bumps move the delay in opposite directions.
        assert!((up - base) * (down - base) <= 0.0);
    });
}

/// The schematic stage never reads parasitic variables: evaluating
/// with any parasitic values at the post-layout stage differs from
/// zeroed parasitics, while the schematic result is unaffected by
/// trailing entries being absent.
#[test]
fn parasitics_are_layout_only() {
    check("parasitics_are_layout_only", CASES, |rng| {
        let seed = rng.gen_index(200) as u64;
        let v = rng.gen_range(0.5..3.0);
        let ro = RingOscillator::new(RoConfig::small(), seed);
        let n_s = ro.config().schematic_vars();
        let n_l = ro.config().post_layout_vars();
        let m = ro.metric(RoMetric::Power);
        let mut x = vec![0.1; n_l];
        let a = m.evaluate(Stage::PostLayout, &x).unwrap();
        for slot in x.iter_mut().skip(n_s) {
            *slot = v;
        }
        let b = m.evaluate(Stage::PostLayout, &x).unwrap();
        assert_ne!(a, b, "parasitics must matter post-layout");
        let sch = m.evaluate(Stage::Schematic, &x[..n_s]).unwrap();
        assert!(sch.is_finite());
    });
}
