//! Integration property tests: the fast (Woodbury) solver, the direct
//! (Cholesky) solver, and the hyper-sweep cache must agree on random
//! problems, including the missing-prior and underdetermined regimes.

use bmf_core::map_estimate::{map_estimate, MapSweep, SolverKind};
use bmf_core::prior::{Prior, PriorKind};
use bmf_linalg::{Matrix, Vector};
use proptest::prelude::*;

fn design(k: usize, m: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f64..2.0, k * m)
        .prop_map(move |d| Matrix::from_row_major(k, m, d).expect("sized"))
}

fn early_values(m: usize) -> impl Strategy<Value = Vec<Option<f64>>> {
    proptest::collection::vec(
        prop_oneof![
            8 => (0.05f64..3.0).prop_map(Some),
            1 => (-3.0f64..-0.05).prop_map(Some),
            1 => Just(None),
        ],
        m,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fast_equals_direct(
        g in design(6, 15),
        early in early_values(15),
        kind in prop_oneof![Just(PriorKind::ZeroMean), Just(PriorKind::NonZeroMean)],
        hyper in 0.01f64..100.0,
        fvals in proptest::collection::vec(-3.0f64..3.0, 6),
    ) {
        let prior = Prior::new(kind, early);
        prop_assume!(prior.num_missing() <= 6);
        let f = Vector::from(fvals);
        let fast = map_estimate(&g, &f, &prior, hyper, SolverKind::Fast);
        let direct = map_estimate(&g, &f, &prior, hyper, SolverKind::Direct);
        match (fast, direct) {
            (Ok(a), Ok(b)) => {
                let scale = b.norm2().max(1.0);
                prop_assert!(
                    a.sub(&b).unwrap().norm2() <= 1e-6 * scale,
                    "solver mismatch: {} vs {}", a.norm2(), b.norm2()
                );
            }
            // Degenerate random problems may be singular for both.
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "solvers disagree on solvability: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn sweep_equals_one_shot(
        g in design(5, 12),
        early in early_values(12),
        hyper in 0.01f64..100.0,
        fvals in proptest::collection::vec(-3.0f64..3.0, 5),
    ) {
        let prior = Prior::new(PriorKind::NonZeroMean, early);
        prop_assume!(prior.num_missing() <= 5);
        let f = Vector::from(fvals);
        let sweep = match MapSweep::new(&g, &prior) {
            Ok(s) => s,
            Err(_) => return Ok(()),
        };
        match (sweep.solve(&f, hyper), map_estimate(&g, &f, &prior, hyper, SolverKind::Fast)) {
            (Ok(a), Ok(b)) => {
                let scale = b.norm2().max(1.0);
                prop_assert!(a.sub(&b).unwrap().norm2() <= 1e-6 * scale);
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "sweep disagrees: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn interpolation_property_with_strong_data(
        g in design(12, 8),
        fvals in proptest::collection::vec(-2.0f64..2.0, 12),
    ) {
        // Overdetermined + weak prior: MAP approaches least squares, so
        // the residual must be (near-)orthogonal to the column space.
        let prior = Prior::from_coeffs(PriorKind::ZeroMean, &[1.0; 8]);
        let f = Vector::from(fvals);
        let alpha = match map_estimate(&g, &f, &prior, 1e-9, SolverKind::Fast) {
            Ok(a) => a,
            Err(_) => return Ok(()),
        };
        let resid = g.matvec(&alpha).unwrap().sub(&f).unwrap();
        let gt_r = g.matvec_transpose(&resid).unwrap();
        prop_assert!(gt_r.norm_inf() <= 1e-4 * f.norm2().max(1.0));
    }

    #[test]
    fn strong_prior_dominates_sparse_data(
        g in design(3, 10),
        early in proptest::collection::vec(0.1f64..2.0, 10),
        fvals in proptest::collection::vec(-2.0f64..2.0, 3),
    ) {
        // Huge hyper: the nonzero-mean MAP estimate must sit at the prior
        // mean regardless of the data.
        let prior = Prior::from_coeffs(PriorKind::NonZeroMean, &early);
        let f = Vector::from(fvals);
        let alpha = map_estimate(&g, &f, &prior, 1e12, SolverKind::Fast).unwrap();
        for (a, e) in alpha.iter().zip(&early) {
            prop_assert!((a - e).abs() < 1e-3, "{a} vs {e}");
        }
    }
}
