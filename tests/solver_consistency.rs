//! Integration property tests: the fast (Woodbury) solver, the direct
//! (Cholesky) solver, and the hyper-sweep cache must agree on random
//! problems, including the missing-prior and underdetermined regimes.
//!
//! Driven by the in-tree harness (`bmf_stat::prop`); a failing case prints
//! its seed for replay via `BMF_PROP_CASE_SEED`.

use bmf_core::map_estimate::{map_estimate, MapSweep, SolverKind};
use bmf_core::options::FitOptions;
use bmf_core::prior::{Prior, PriorKind};
use bmf_linalg::{Matrix, Vector};
use bmf_stat::prop::{check, vec_in};
use bmf_stat::rng::Rng;

const CASES: u64 = 48;

fn design(rng: &mut Rng, k: usize, m: usize) -> Matrix {
    Matrix::from_row_major(k, m, vec_in(rng, -2.0, 2.0, k * m)).expect("sized")
}

/// Early-stage prior values: mostly positive, some negative, a few missing
/// (an 8:1:1 mix).
fn early_values(rng: &mut Rng, m: usize) -> Vec<Option<f64>> {
    (0..m)
        .map(|_| {
            let pick = rng.gen_index(10);
            if pick < 8 {
                Some(rng.gen_range(0.05..3.0))
            } else if pick < 9 {
                Some(rng.gen_range(-3.0..-0.05))
            } else {
                None
            }
        })
        .collect()
}

#[test]
fn fast_equals_direct() {
    check("fast_equals_direct", CASES, |rng| {
        let g = design(rng, 6, 15);
        let early = early_values(rng, 15);
        let kind = if rng.gen_bool(0.5) {
            PriorKind::ZeroMean
        } else {
            PriorKind::NonZeroMean
        };
        let hyper = rng.gen_range(0.01..100.0);
        let f = Vector::from(vec_in(rng, -3.0, 3.0, 6));
        let prior = Prior::new(kind, early);
        if prior.num_missing() > 6 {
            return; // fast solver requires missing count ≤ sample count
        }
        let fast = map_estimate(&g, &f, &prior, &FitOptions::new().hyper(hyper));
        let direct = map_estimate(
            &g,
            &f,
            &prior,
            &FitOptions::new().hyper(hyper).solver(SolverKind::Direct),
        );
        match (fast, direct) {
            (Ok(a), Ok(b)) => {
                let scale = b.norm2().max(1.0);
                assert!(
                    a.sub(&b).unwrap().norm2() <= 1e-6 * scale,
                    "solver mismatch: {} vs {}",
                    a.norm2(),
                    b.norm2()
                );
            }
            // Degenerate random problems may be singular for both.
            (Err(_), Err(_)) => {}
            (a, b) => panic!("solvers disagree on solvability: {a:?} vs {b:?}"),
        }
    });
}

#[test]
fn sweep_equals_one_shot() {
    check("sweep_equals_one_shot", CASES, |rng| {
        let g = design(rng, 5, 12);
        let early = early_values(rng, 12);
        let hyper = rng.gen_range(0.01..100.0);
        let f = Vector::from(vec_in(rng, -3.0, 3.0, 5));
        let prior = Prior::new(PriorKind::NonZeroMean, early);
        if prior.num_missing() > 5 {
            return;
        }
        let sweep = match MapSweep::new(&g, &prior) {
            Ok(s) => s,
            Err(_) => return,
        };
        match (
            sweep.solve(&f, hyper),
            map_estimate(&g, &f, &prior, &FitOptions::new().hyper(hyper)),
        ) {
            (Ok(a), Ok(b)) => {
                let scale = b.norm2().max(1.0);
                assert!(a.sub(&b).unwrap().norm2() <= 1e-6 * scale);
            }
            (Err(_), Err(_)) => {}
            (a, b) => panic!("sweep disagrees: {a:?} vs {b:?}"),
        }
    });
}

#[test]
fn interpolation_property_with_strong_data() {
    check("interpolation_property_with_strong_data", CASES, |rng| {
        // Overdetermined + weak prior: MAP approaches least squares, so
        // the residual must be (near-)orthogonal to the column space.
        let g = design(rng, 12, 8);
        let f = Vector::from(vec_in(rng, -2.0, 2.0, 12));
        let prior = Prior::from_coeffs(PriorKind::ZeroMean, &[1.0; 8]);
        let alpha = match map_estimate(&g, &f, &prior, &FitOptions::new().hyper(1e-9)) {
            Ok(a) => a,
            Err(_) => return,
        };
        let resid = g.matvec(&alpha).unwrap().sub(&f).unwrap();
        let gt_r = g.matvec_transpose(&resid).unwrap();
        assert!(gt_r.norm_inf() <= 1e-4 * f.norm2().max(1.0));
    });
}

#[test]
fn strong_prior_dominates_sparse_data() {
    check("strong_prior_dominates_sparse_data", CASES, |rng| {
        // Huge hyper: the nonzero-mean MAP estimate must sit at the prior
        // mean regardless of the data.
        let g = design(rng, 3, 10);
        let early = vec_in(rng, 0.1, 2.0, 10);
        let f = Vector::from(vec_in(rng, -2.0, 2.0, 3));
        let prior = Prior::from_coeffs(PriorKind::NonZeroMean, &early);
        let alpha = map_estimate(&g, &f, &prior, &FitOptions::new().hyper(1e12)).unwrap();
        for (a, e) in alpha.iter().zip(&early) {
            assert!((a - e).abs() < 1e-3, "{a} vs {e}");
        }
    });
}
