//! Integration test: the full RO modeling flow across all crates —
//! circuit substrate → Monte-Carlo engine → early OMP fit → BMF fusion →
//! error evaluation — exercising only public APIs.

use bmf_basis::basis::OrthonormalBasis;
use bmf_circuits::ro::{RingOscillator, RoConfig, RoMetric};
use bmf_circuits::sim::{monte_carlo, monte_carlo_par, CostLedger};
use bmf_circuits::stage::{CircuitPerformance, Stage};
use bmf_core::fusion::BmfFitter;
use bmf_core::omp::{fit_omp, OmpConfig};
use bmf_core::options::FitOptions;
use bmf_core::prior::PriorKind;
use bmf_core::select::PriorSelection;

fn test_ro() -> RingOscillator {
    RingOscillator::new(
        RoConfig {
            stages: 9,
            transistors_per_stage: 2,
            params_per_transistor: 6,
            interdie_vars: 6,
            parasitic_vars_per_stage: 1,
            ..RoConfig::small()
        },
        77,
    )
}

/// The headline paper behaviour: with a schematic prior, few post-layout
/// samples model a high-dimensional response better than prior-free
/// sparse regression with the same budget.
#[test]
fn fused_model_beats_prior_free_baseline() {
    let ro = test_ro();
    for metric in [RoMetric::Power, RoMetric::Frequency] {
        let view = ro.metric(metric);
        let sch_vars = view.num_vars(Stage::Schematic);
        let lay_vars = view.num_vars(Stage::PostLayout);

        let sch = monte_carlo(&view, Stage::Schematic, 600, 1).expect("simulation succeeds");
        let early = fit_omp(
            &OrthonormalBasis::linear(sch_vars),
            &sch.points,
            &sch.values,
            &OmpConfig::default(),
        )
        .expect("early fit");

        let k = 50;
        let lay = monte_carlo(&view, Stage::PostLayout, k, 2).expect("simulation succeeds");
        let test = monte_carlo(&view, Stage::PostLayout, 300, 3).expect("simulation succeeds");

        let mut prior: Vec<Option<f64>> = early.model.coeffs().iter().map(|&a| Some(a)).collect();
        prior.extend(std::iter::repeat_n(None, lay_vars - sch_vars));
        let fit = BmfFitter::new(OrthonormalBasis::linear(lay_vars), prior)
            .expect("fitter")
            .with_options(FitOptions::new().seed(5))
            .fit(&lay.points, &lay.values)
            .expect("bmf fit");
        let bmf_err = fit
            .model
            .relative_error(test.point_slices(), &test.values)
            .expect("error");

        let omp = fit_omp(
            &OrthonormalBasis::linear(lay_vars),
            &lay.points,
            &lay.values,
            &OmpConfig::default(),
        )
        .expect("omp fit");
        let omp_err = omp
            .model
            .relative_error(test.point_slices(), &test.values)
            .expect("error");

        assert!(
            bmf_err < omp_err,
            "{metric:?}: BMF {bmf_err} should beat OMP {omp_err}"
        );
        assert!(bmf_err < 0.05, "{metric:?}: BMF error {bmf_err} too large");
    }
}

/// More post-layout data must not hurt the fused model (learning curve).
#[test]
fn bmf_error_improves_with_more_samples() {
    let ro = test_ro();
    let view = ro.metric(RoMetric::Frequency);
    let sch_vars = view.num_vars(Stage::Schematic);
    let lay_vars = view.num_vars(Stage::PostLayout);
    let sch = monte_carlo(&view, Stage::Schematic, 600, 4).expect("simulation succeeds");
    let early = fit_omp(
        &OrthonormalBasis::linear(sch_vars),
        &sch.points,
        &sch.values,
        &OmpConfig::default(),
    )
    .expect("early fit");
    let mut prior: Vec<Option<f64>> = early.model.coeffs().iter().map(|&a| Some(a)).collect();
    prior.extend(std::iter::repeat_n(None, lay_vars - sch_vars));

    let lay = monte_carlo(&view, Stage::PostLayout, 160, 5).expect("simulation succeeds");
    let test = monte_carlo(&view, Stage::PostLayout, 300, 6).expect("simulation succeeds");
    let mut errs = Vec::new();
    for k in [40usize, 160] {
        let fit = BmfFitter::new(OrthonormalBasis::linear(lay_vars), prior.clone())
            .expect("fitter")
            .with_options(FitOptions::new().seed(9))
            .fit(&lay.points[..k], &lay.values[..k])
            .expect("fit");
        errs.push(
            fit.model
                .relative_error(test.point_slices(), &test.values)
                .expect("error"),
        );
    }
    assert!(
        errs[1] <= errs[0] * 1.2,
        "error should not degrade with 4x data: {errs:?}"
    );
}

/// Forcing each prior family through the public API works and PS matches
/// the better of the two on its own cross-validation estimate.
#[test]
fn prior_selection_is_consistent() {
    let ro = test_ro();
    let view = ro.metric(RoMetric::Power);
    let sch_vars = view.num_vars(Stage::Schematic);
    let lay_vars = view.num_vars(Stage::PostLayout);
    let sch = monte_carlo(&view, Stage::Schematic, 500, 7).expect("simulation succeeds");
    let early = fit_omp(
        &OrthonormalBasis::linear(sch_vars),
        &sch.points,
        &sch.values,
        &OmpConfig::default(),
    )
    .expect("early fit");
    let mut prior: Vec<Option<f64>> = early.model.coeffs().iter().map(|&a| Some(a)).collect();
    prior.extend(std::iter::repeat_n(None, lay_vars - sch_vars));
    let lay = monte_carlo(&view, Stage::PostLayout, 60, 8).expect("simulation succeeds");

    let basis = OrthonormalBasis::linear(lay_vars);
    let mut cv_errors = Vec::new();
    for sel in [
        PriorSelection::Fixed(PriorKind::ZeroMean),
        PriorSelection::Fixed(PriorKind::NonZeroMean),
        PriorSelection::Auto,
    ] {
        let fit = BmfFitter::new(basis.clone(), prior.clone())
            .expect("fitter")
            .with_options(FitOptions::new().selection(sel).seed(3))
            .fit(&lay.points, &lay.values)
            .expect("fit");
        cv_errors.push(fit.cv_error);
    }
    let best_fixed = cv_errors[0].min(cv_errors[1]);
    assert!(
        (cv_errors[2] - best_fixed).abs() < 1e-12,
        "PS cv error {} should equal min of fixed {:?}",
        cv_errors[2],
        &cv_errors[..2]
    );
}

/// Parallel and sequential Monte-Carlo agree, and the ledger books both.
#[test]
fn monte_carlo_parallel_consistency_and_costs() {
    let ro = test_ro();
    let view = ro.metric(RoMetric::PhaseNoise);
    let seq = monte_carlo(&view, Stage::PostLayout, 37, 11).expect("simulation succeeds");
    let par = monte_carlo_par(&view, Stage::PostLayout, 37, 11, 3).expect("simulation succeeds");
    assert_eq!(seq, par);

    let mut ledger = CostLedger::new();
    ledger.charge_samples(&seq);
    assert!(
        (ledger.simulation_hours - 37.0 * view.sim_cost_hours(Stage::PostLayout)).abs() < 1e-12
    );
}
