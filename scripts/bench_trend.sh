#!/usr/bin/env bash
# Bench trend gate: compare a freshly generated BENCH_*.json against the
# committed baseline copy and fail on a >20% regression of any metric.
#
# Both report styles in this repo are flat: top-level scalars plus
# one-line `"section": { "key": value, ... }` objects, which is what the
# flattener below parses. Direction is inferred from the metric name —
# anything containing "throughput" regresses downward, everything else
# (latencies, allocation counts, solve counts) regresses upward. A metric
# present in the baseline but missing from the fresh report fails: a
# gated number must not silently disappear.
#
# Usage:
#   scripts/bench_trend.sh <fresh.json> <committed.json> [--ignore k1,k2]
#
# `--ignore` entries match a flattened key exactly ("serial_cv_fit.wall_s")
# or by component ("wall_s" ignores every section's wall_s).
set -euo pipefail

[[ $# -ge 2 ]] || { echo "usage: $0 <fresh.json> <committed.json> [--ignore k1,k2]" >&2; exit 2; }
fresh="$1"
committed="$2"
shift 2
ignore=""
if [[ "${1:-}" == "--ignore" ]]; then
    [[ $# -ge 2 ]] || { echo "--ignore needs a key list" >&2; exit 2; }
    ignore="$2"
fi

[[ -f "$fresh" ]] || { echo "FAIL: fresh report $fresh not found" >&2; exit 1; }
[[ -f "$committed" ]] || { echo "FAIL: committed baseline $committed not found" >&2; exit 1; }

TOLERANCE=0.20

# Flattens the repo's flat JSON style to "section.key value" lines.
flatten() {
    awk '
        /^[[:space:]]*"[A-Za-z0-9_]+": \{/ {
            sec = $0
            sub(/^[[:space:]]*"/, "", sec); sub(/".*/, "", sec)
            body = $0
            sub(/^[^{]*\{/, "", body); sub(/\}.*$/, "", body)
            n = split(body, pairs, ",")
            for (i = 1; i <= n; i++) {
                p = pairs[i]
                gsub(/[[:space:]"]/, "", p)
                split(p, kv, ":")
                if (kv[1] != "") print sec "." kv[1], kv[2]
            }
            next
        }
        /^[[:space:]]*"[A-Za-z0-9_]+": / {
            k = $0
            sub(/^[[:space:]]*"/, "", k); sub(/".*/, "", k)
            v = $0
            sub(/^[^:]*:[[:space:]]*/, "", v); sub(/,?[[:space:]]*$/, "", v)
            print k, v
        }
    ' "$1"
}

fresh_flat=$(flatten "$fresh")
fail=0

while read -r key base; do
    [[ -n "$key" ]] || continue
    skip=0
    IFS=',' read -ra ignored <<< "$ignore"
    for ig in ${ignored[@]+"${ignored[@]}"}; do
        if [[ "$key" == "$ig" || "$key" == *".$ig" ]]; then
            skip=1
            break
        fi
    done
    [[ $skip -eq 0 ]] || continue

    new=$(awk -v k="$key" '$1 == k { print $2; exit }' <<< "$fresh_flat")
    if [[ -z "$new" ]]; then
        echo "FAIL: metric $key missing from fresh report" >&2
        fail=1
        continue
    fi
    if ! awk -v k="$key" -v b="$base" -v n="$new" -v tol="$TOLERANCE" 'BEGIN {
            b += 0; n += 0
            if (k ~ /throughput/) {
                worse = (n < b * (1 - tol))
            } else {
                worse = (n > b * (1 + tol) && n > b)
            }
            exit worse ? 1 : 0
        }'; then
        echo "FAIL: $key regressed beyond ${TOLERANCE}: baseline $base, fresh $new" >&2
        fail=1
    fi
done <<< "$(flatten "$committed")"

if [[ $fail -ne 0 ]]; then
    echo "Trend gate failed: regenerate the baseline only for intentional changes" >&2
    exit 1
fi
echo "OK: no metric in $fresh regressed >20% vs $committed"
