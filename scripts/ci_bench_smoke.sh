#!/usr/bin/env bash
# Smoke-runs bench binaries (one iteration each, reduced sizes) so CI
# proves every bench still executes end to end without paying full
# measurement time. With `--features bench` the counting allocator is
# installed and the solver/batch benches additionally assert their
# per-fit allocation budgets.
#
# Usage:
#   scripts/ci_bench_smoke.sh solver fitting_cost omp batch service
#   scripts/ci_bench_smoke.sh --features bench solver batch
set -euo pipefail

cd "$(dirname "$0")/.."

features=()
if [[ "${1:-}" == "--features" ]]; then
    [[ $# -ge 2 ]] || { echo "usage: $0 [--features <feat>] <bench>..." >&2; exit 2; }
    features=(--features "$2")
    shift 2
fi
[[ $# -gt 0 ]] || { echo "usage: $0 [--features <feat>] <bench>..." >&2; exit 2; }

# The service/persist benches write BENCH_*.json; route smoke output to
# a scratch path so the committed full-scale baselines are never
# clobbered. Absolute paths: cargo runs bench binaries from the package
# directory.
mkdir -p target/smoke
if [[ -z "${BMF_SERVICE_OUT:-}" ]]; then
    export BMF_SERVICE_OUT="$(pwd)/target/smoke/BENCH_service.json"
fi
if [[ -z "${BMF_PERSIST_OUT:-}" ]]; then
    export BMF_PERSIST_OUT="$(pwd)/target/smoke/BENCH_persist.json"
fi
if [[ -z "${BMF_PERSIST_DIR:-}" ]]; then
    export BMF_PERSIST_DIR="$(pwd)/target/smoke/persist-store"
fi
if [[ -z "${BMF_SEQUENTIAL_OUT:-}" ]]; then
    export BMF_SEQUENTIAL_OUT="$(pwd)/target/smoke/BENCH_sequential.json"
fi
if [[ -z "${BMF_CHAOS_OUT:-}" ]]; then
    export BMF_CHAOS_OUT="$(pwd)/target/smoke/BENCH_chaos.json"
fi
if [[ -z "${BMF_LINT_OUT:-}" ]]; then
    export BMF_LINT_OUT="$(pwd)/target/smoke/BENCH_lint.json"
fi

for bench in "$@"; do
    echo "== smoke: $bench ${features[1]:+(features: ${features[1]})}=="
    cargo bench --offline --locked -p bmf-bench \
        ${features[@]+"${features[@]}"} --bench "$bench" -- --smoke
done
