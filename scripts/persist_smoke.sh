#!/usr/bin/env bash
# Persistence smoke gate: run the cold-vs-warm persist bench in --smoke
# mode twice — once with the worker pool pinned to one thread, once at
# the default pool — and enforce the round-trip contracts CI cares
# about:
#
#   1. determinism: the emitted reports are byte-identical (artifact
#      bytes and virtual-time costs must not depend on thread count or
#      wall clock);
#   2. schema: every gated key is present and the headline values are
#      positive finite numbers, with warm-start actually cheaper than
#      cold-start.
#
# The bench itself verifies bit-identical predictions between the
# exporting service and the warm-started one; a divergence fails the
# run before any report is written.
#
# Usage:  scripts/persist_smoke.sh [out-dir]   (default target/persist-smoke)
set -euo pipefail

cd "$(dirname "$0")/.."

# Absolute paths: cargo runs the bench binary from the package
# directory, so relative outputs would land under crates/bench/.
out_dir="$(pwd)/${1:-target/persist-smoke}"
mkdir -p "$out_dir"
one="$out_dir/persist_threads1.json"
auto="$out_dir/persist_default.json"

echo "== persist smoke: BMF_THREADS=1 =="
BMF_THREADS=1 BMF_PERSIST_OUT="$one" BMF_PERSIST_DIR="$out_dir/store-threads1" \
    cargo bench --offline --locked -p bmf-bench --bench persist -- --smoke
echo "== persist smoke: default pool =="
BMF_PERSIST_OUT="$auto" BMF_PERSIST_DIR="$out_dir/store-default" \
    cargo bench --offline --locked -p bmf-bench --bench persist -- --smoke

if ! cmp -s "$one" "$auto"; then
    echo "FAIL: persist report differs between BMF_THREADS=1 and the default pool" >&2
    diff "$one" "$auto" >&2 || true
    exit 1
fi
echo "OK: report byte-identical at 1 thread and default pool"

# The artifacts themselves must be byte-identical too, not just the
# report: same content addresses, same bytes, at any pool size.
if ! diff -r "$out_dir/store-threads1" "$out_dir/store-default" >/dev/null; then
    echo "FAIL: artifact stores differ between BMF_THREADS=1 and the default pool" >&2
    diff -r "$out_dir/store-threads1" "$out_dir/store-default" >&2 || true
    exit 1
fi
echo "OK: artifact store byte-identical at 1 thread and default pool"

fail=0

for key in scenario artifacts cold_start warm_start headline total_bytes \
           virtual_ns imports verified_predictions warm_speedup; do
    if ! grep -q "\"$key\"" "$one"; then
        echo "FAIL: required key \"$key\" missing from persist report" >&2
        fail=1
    fi
done

# Rust formats non-finite floats as NaN/inf; none may reach the report.
if grep -qiE 'nan|infinity' "$one"; then
    echo "FAIL: non-finite value in persist report" >&2
    fail=1
fi

# Headline values must be positive, and warm-start must beat cold-start
# (otherwise persistence buys nothing and something is badly wrong).
verified=$(awk -F'"verified_predictions": ' '/"warm_start"/ { split($2, a, "}"); print a[1] + 0 }' "$one")
cold_ns=$(awk -F'"virtual_ns": ' '/"cold_start"/ { split($2, a, ","); print a[1] + 0 }' "$one")
warm_ns=$(awk -F'"virtual_ns": ' '/"warm_start"/ { split($2, a, ","); print a[1] + 0 }' "$one")
speedup=$(awk -F'"warm_speedup": ' '/"headline"/ { split($2, a, " "); print a[1] + 0 }' "$one")
if ! awk -v v="$verified" -v c="$cold_ns" -v w="$warm_ns" -v s="$speedup" \
        'BEGIN { exit !(v > 0 && c > 0 && w > 0 && w < c && s >= 1) }'; then
    echo "FAIL: bad headline metrics (verified=$verified, cold=$cold_ns ns, warm=$warm_ns ns, speedup=$speedup)" >&2
    fail=1
fi

if [[ $fail -ne 0 ]]; then
    exit 1
fi
echo "OK: schema check passed (verified=$verified, cold=$cold_ns ns, warm=$warm_ns ns, speedup=${speedup}x)"
