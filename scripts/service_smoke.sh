#!/usr/bin/env bash
# Service smoke gate: run the fitting-service load generator in --smoke
# mode twice — once with the worker pool pinned to one thread, once at
# the default pool — and enforce the two contracts CI cares about:
#
#   1. determinism: the emitted reports are byte-identical (virtual-time
#      metrics must not depend on thread count or wall clock);
#   2. schema: every gated key is present and the headline values are
#      positive finite numbers.
#
# Usage:  scripts/service_smoke.sh [out-dir]   (default target/service-smoke)
set -euo pipefail

cd "$(dirname "$0")/.."

# Absolute path: cargo runs the bench binary from the package directory,
# so a relative BMF_SERVICE_OUT would land under crates/bench/.
out_dir="$(pwd)/${1:-target/service-smoke}"
mkdir -p "$out_dir"
one="$out_dir/service_threads1.json"
auto="$out_dir/service_default.json"

echo "== service smoke: BMF_THREADS=1 =="
BMF_THREADS=1 BMF_SERVICE_OUT="$one" \
    cargo bench --offline --locked -p bmf-bench --bench service -- --smoke
echo "== service smoke: default pool =="
BMF_SERVICE_OUT="$auto" \
    cargo bench --offline --locked -p bmf-bench --bench service -- --smoke

if ! cmp -s "$one" "$auto"; then
    echo "FAIL: service report differs between BMF_THREADS=1 and the default pool" >&2
    diff "$one" "$auto" >&2 || true
    exit 1
fi
echo "OK: report byte-identical at 1 thread and default pool"

fail=0

for key in scenario traffic coalescing latency_overall latency_fit \
           latency_predict throughput_rps p50_ns p99_ns p999_ns max_ns \
           fits_ok batches; do
    if ! grep -q "\"$key\"" "$one"; then
        echo "FAIL: required key \"$key\" missing from service report" >&2
        fail=1
    fi
done

# Rust formats non-finite floats as NaN/inf; none may reach the report.
if grep -qiE 'nan|infinity' "$one"; then
    echo "FAIL: non-finite value in service report" >&2
    fail=1
fi

# Headline values must be positive: fits were actually served and timed.
fits_ok=$(awk -F'"fits_ok": ' '/"traffic"/ { split($2, a, ","); print a[1] + 0 }' "$one")
fit_p99=$(awk -F'"p99_ns": ' '/"latency_fit"/ { split($2, a, ","); print a[1] + 0 }' "$one")
rps=$(awk -F'"throughput_rps": ' '/"throughput_rps"/ { print $2 + 0 }' "$one")
if ! awk -v f="$fits_ok" -v p="$fit_p99" -v r="$rps" \
        'BEGIN { exit !(f > 0 && p > 0 && r > 0) }'; then
    echo "FAIL: non-positive headline metric (fits_ok=$fits_ok, fit p99=$fit_p99 ns, throughput=$rps rps)" >&2
    fail=1
fi

if [[ $fail -ne 0 ]]; then
    exit 1
fi
echo "OK: schema check passed (fits_ok=$fits_ok, fit p99=$fit_p99 ns, throughput=$rps rps)"
