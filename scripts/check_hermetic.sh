#!/usr/bin/env bash
# Enforces the zero-external-dependency policy (see README "Hermetic build
# & reproducibility"): every dependency of every crate must be a path
# dependency on a workspace member, and the committed Cargo.lock must not
# reference any registry or git source.
#
# Run from the repository root:  scripts/check_hermetic.sh
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0

# --- 1. Cargo.lock: committed, and free of registry/git sources -----------
if [[ ! -f Cargo.lock ]]; then
    echo "FAIL: Cargo.lock is missing (it must be committed)" >&2
    fail=1
elif grep -nE '^source *= *"(registry|git)' Cargo.lock; then
    echo "FAIL: Cargo.lock references non-path package sources (above)" >&2
    fail=1
fi

# --- 2. Cargo.toml dependency sections: path/workspace entries only -------
# Inside any `*dependencies*` section (inline `[dependencies]` entries or
# table form `[dependencies.name]`), an entry must either point at a path
# under crates/ or inherit such an entry via `.workspace = true`. Version,
# git, and registry requirements are rejected outright.
for manifest in Cargo.toml crates/*/Cargo.toml; do
    bad=$(awk '
        /^[[:space:]]*\[/ {
            dep = ($0 ~ /dependencies/)
            next
        }
        dep && NF && $0 !~ /^[[:space:]]*#/ {
            # Registry/git requirement keys are never allowed.
            if ($0 ~ /^[[:space:]]*(version|git|registry|branch|tag|rev) *=/) {
                printf "%d: %s\n", NR, $0
                next
            }
            # Inline entries (name = "1.0" or name = { ... }) must carry a
            # workspace path. Non-entry keys (features, optional, ...) pass.
            if ($0 ~ /= *("|\{)/ &&
                $0 !~ /path *= *"crates\// && $0 !~ /\.workspace *= *true/)
                printf "%d: %s\n", NR, $0
        }
    ' "$manifest")
    if [[ -n "$bad" ]]; then
        echo "FAIL: non-path dependency in $manifest:" >&2
        echo "$bad" >&2
        fail=1
    fi
done

# --- 3. Panic-free fitting stack: no panic!/unwrap() in library code ------
# The fitting crates promise "structured error or degraded Ok, never a
# panic" (README "Robustness"). Library sources of bmf-core/bmf-linalg
# must not introduce panic!() or .unwrap(); scanning stops at the first
# `#[cfg(test)]` in each file — unit tests are exempt, as are line
# comments. `.expect()` is covered by the clippy::expect_used deny in the
# crates' lib.rs, which CI runs with -D warnings.
for src in crates/core/src/*.rs crates/linalg/src/*.rs; do
    bad=$(awk '
        /^[[:space:]]*#\[cfg\(test\)\]/ { exit }
        /^[[:space:]]*\/\// { next }
        /panic!\(|\.unwrap\(\)/ { printf "%d: %s\n", NR, $0 }
    ' "$src")
    if [[ -n "$bad" ]]; then
        echo "FAIL: panic!/unwrap() in non-test library code of $src:" >&2
        echo "$bad" >&2
        fail=1
    fi
done

if [[ $fail -ne 0 ]]; then
    echo "hermeticity check FAILED" >&2
    exit 1
fi
echo "hermeticity check passed: all dependencies are in-tree path deps"
