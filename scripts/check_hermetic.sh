#!/usr/bin/env bash
# Enforces the zero-external-dependency policy (see README "Hermetic build
# & reproducibility"): every dependency of every crate must be a path
# dependency on a workspace member, and the committed Cargo.lock must not
# reference any registry or git source.
#
# Run from the repository root:  scripts/check_hermetic.sh
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0

# --- 1. Cargo.lock: committed, and free of registry/git sources -----------
if [[ ! -f Cargo.lock ]]; then
    echo "FAIL: Cargo.lock is missing (it must be committed)" >&2
    fail=1
elif grep -nE '^source *= *"(registry|git)' Cargo.lock; then
    echo "FAIL: Cargo.lock references non-path package sources (above)" >&2
    fail=1
fi

# --- 2. Cargo.toml dependency sections: path/workspace entries only -------
# Inside any `*dependencies*` section (inline `[dependencies]` entries or
# table form `[dependencies.name]`), an entry must either point at a path
# under crates/ or inherit such an entry via `.workspace = true`. Version,
# git, and registry requirements are rejected outright.
for manifest in Cargo.toml crates/*/Cargo.toml; do
    bad=$(awk '
        /^[[:space:]]*\[/ {
            dep = ($0 ~ /dependencies/)
            next
        }
        dep && NF && $0 !~ /^[[:space:]]*#/ {
            # Registry/git requirement keys are never allowed.
            if ($0 ~ /^[[:space:]]*(version|git|registry|branch|tag|rev) *=/) {
                printf "%d: %s\n", NR, $0
                next
            }
            # Inline entries (name = "1.0" or name = { ... }) must carry a
            # workspace path. Non-entry keys (features, optional, ...) pass.
            if ($0 ~ /= *("|\{)/ &&
                $0 !~ /path *= *"crates\// && $0 !~ /\.workspace *= *true/)
                printf "%d: %s\n", NR, $0
        }
    ' "$manifest")
    if [[ -n "$bad" ]]; then
        echo "FAIL: non-path dependency in $manifest:" >&2
        echo "$bad" >&2
        fail=1
    fi
done

# --- 3. Invariant lint: bmf-lint over the whole workspace ------------------
# Replaces the old awk panic-scan with the token-level in-tree linter
# (crates/lint). It enforces panic-freedom of the fitting stack plus the
# determinism, float-comparison, cast, allocation, and screening rules
# described in DESIGN.md §11. Pre-existing justified findings live in
# lint-baseline.toml; only NEW findings (or stale baseline entries) fail.
if ! cargo run -q -p bmf-lint --offline --locked -- --root . --deny-stale; then
    echo "FAIL: bmf-lint found new (or stale-baselined) findings (above)" >&2
    fail=1
fi

if [[ $fail -ne 0 ]]; then
    echo "hermeticity check FAILED" >&2
    exit 1
fi
echo "hermeticity check passed: all dependencies are in-tree path deps"
