#!/usr/bin/env bash
# Chaos smoke gate: run the chaos soak bench in --smoke mode twice —
# once with the worker pool pinned to one thread, once at the default
# pool — and enforce the fault-tolerance contracts CI cares about:
#
#   1. determinism: the emitted reports are byte-identical (seeded
#      fault injection, virtual-time latencies, and crash folds must
#      not depend on thread count or wall clock);
#   2. schema: every gated key is present, nothing non-finite leaks
#      into the report;
#   3. invariants: the fault-free control level recovers every trial,
#      every tested crash point recovers to an fsck-clean store, and
#      the tiny admission queue actually sheds (otherwise the overload
#      leg isn't exercising admission control at all).
#
# The bench itself fails the run before writing a report if any trial
# leaves an unclean store, so a green smoke means every simulated
# crash and every injected fault ended in a valid store.
#
# Usage:  scripts/chaos_smoke.sh [out-dir]   (default target/chaos-smoke)
set -euo pipefail

cd "$(dirname "$0")/.."

# Absolute paths: cargo runs the bench binary from the package
# directory, so relative outputs would land under crates/bench/.
out_dir="$(pwd)/${1:-target/chaos-smoke}"
mkdir -p "$out_dir"
one="$out_dir/chaos_threads1.json"
auto="$out_dir/chaos_default.json"

echo "== chaos smoke: BMF_THREADS=1 =="
BMF_THREADS=1 BMF_CHAOS_OUT="$one" \
    cargo bench --offline --locked -p bmf-bench --bench chaos -- --smoke
echo "== chaos smoke: default pool =="
BMF_CHAOS_OUT="$auto" \
    cargo bench --offline --locked -p bmf-bench --bench chaos -- --smoke

if ! cmp -s "$one" "$auto"; then
    echo "FAIL: chaos report differs between BMF_THREADS=1 and the default pool" >&2
    diff "$one" "$auto" >&2 || true
    exit 1
fi
echo "OK: report byte-identical at 1 thread and default pool"

fail=0

for key in scenario seed_store fault_sweep overload crash headline \
           error_permille recovered read_retries warm_p99_ns \
           shed_fits shed_permille expired_fits points_tested \
           recovered_clean recovery_rate_permille; do
    if ! grep -q "\"$key\"" "$one"; then
        echo "FAIL: required key \"$key\" missing from chaos report" >&2
        fail=1
    fi
done

# Rust formats non-finite floats as NaN/inf; none may reach the report.
if grep -qiE 'nan|infinity' "$one"; then
    echo "FAIL: non-finite value in chaos report" >&2
    fail=1
fi

# Invariants: full recovery on the fault-free control, every crash
# point clean, and the overload leg genuinely shedding.
recovery=$(awk -F'"recovery_rate_permille": ' '/"headline"/ { split($2, a, ","); print a[1] + 0 }' "$one")
tested=$(awk -F'"points_tested": ' '/"crash"/ { split($2, a, ","); print a[1] + 0 }' "$one")
clean=$(awk -F'"recovered_clean": ' '/"crash"/ { split($2, a, " "); print a[1] + 0 }' "$one")
shed=$(awk -F'"shed_fits": ' '/"overload"/ { split($2, a, ","); print a[1] + 0 }' "$one")
served=$(awk -F'"fits_ok": ' '/"overload"/ { split($2, a, ","); print a[1] + 0 }' "$one")
if ! awk -v r="$recovery" -v t="$tested" -v c="$clean" -v sh="$shed" -v sv="$served" \
        'BEGIN { exit !(t > 0 && c == t && sh > 0 && sv > 0 && r > 0) }'; then
    echo "FAIL: bad chaos invariants (recovery=$recovery permille, crash $clean/$tested clean, shed=$shed, served=$served)" >&2
    fail=1
fi

if [[ $fail -ne 0 ]]; then
    exit 1
fi
echo "OK: schema + invariants passed (recovery=$recovery permille, crash $clean/$tested clean, shed=$shed, served=$served)"
