#!/usr/bin/env bash
# Sequential smoke gate: run the streaming posterior study in --smoke
# mode twice — once with the worker pool pinned to one thread, once at
# the default pool — and enforce the two contracts CI cares about:
#
#   1. determinism: the emitted reports are byte-identical (virtual-time
#      metrics must not depend on thread count or wall clock);
#   2. schema: every gated key is present and the headline values are
#      positive finite numbers — in particular every absorbed curve
#      sample was bitwise-verified against a batch refit, and streaming
#      actually beats refitting.
#
# Usage:  scripts/sequential_smoke.sh [out-dir]  (default target/sequential-smoke)
set -euo pipefail

cd "$(dirname "$0")/.."

# Absolute path: cargo runs the bench binary from the package directory,
# so a relative BMF_SEQUENTIAL_OUT would land under crates/bench/.
out_dir="$(pwd)/${1:-target/sequential-smoke}"
mkdir -p "$out_dir"
one="$out_dir/sequential_threads1.json"
auto="$out_dir/sequential_default.json"

echo "== sequential smoke: BMF_THREADS=1 =="
BMF_THREADS=1 BMF_SEQUENTIAL_OUT="$one" \
    cargo bench --offline --locked -p bmf-bench --bench sequential -- --smoke
echo "== sequential smoke: default pool =="
BMF_SEQUENTIAL_OUT="$auto" \
    cargo bench --offline --locked -p bmf-bench --bench sequential -- --smoke

if ! cmp -s "$one" "$auto"; then
    echo "FAIL: sequential report differs between BMF_THREADS=1 and the default pool" >&2
    diff "$one" "$auto" >&2 || true
    exit 1
fi
echo "OK: report byte-identical at 1 thread and default pool"

fail=0

for key in scenario cost_model curve_k8 curve_k32 speedup k32_x_throughput \
           latency_update p50_ns p99_ns max_ns arrival_cost \
           simulation_millihours bitwise_checks updates_per_s_throughput; do
    if ! grep -q "\"$key\"" "$one"; then
        echo "FAIL: required key \"$key\" missing from sequential report" >&2
        fail=1
    fi
done

# Rust formats non-finite floats as NaN/inf; none may reach the report.
if grep -qiE 'nan|infinity' "$one"; then
    echo "FAIL: non-finite value in sequential report" >&2
    fail=1
fi

# Headline values must be positive: every curve sample was
# bitwise-verified, updates were actually timed, and the incremental
# path beats per-sample refitting.
checks=$(awk -F'"bitwise_checks": ' '/"bitwise_checks"/ { split($2, a, ","); print a[1] + 0 }' "$one")
p99=$(awk -F'"p99_ns": ' '/"latency_update"/ { split($2, a, ","); print a[1] + 0 }' "$one")
speedup=$(awk -F'"k32_x_throughput": ' '/"speedup"/ { split($2, a, "[,}]"); print a[1] + 0 }' "$one")
if ! awk -v c="$checks" -v p="$p99" -v s="$speedup" \
        'BEGIN { exit !(c > 0 && p > 0 && s > 1.0) }'; then
    echo "FAIL: bad headline metric (bitwise_checks=$checks, update p99=$p99 ns, k32 speedup=${speedup}x)" >&2
    fail=1
fi

if [[ $fail -ne 0 ]]; then
    exit 1
fi
echo "OK: schema check passed (bitwise_checks=$checks, update p99=$p99 ns, k32 speedup=${speedup}x)"
