//! The paper's §V-A flow on the behavioral ring oscillator: model all
//! three post-layout metrics (power, phase noise, frequency) from few
//! post-layout samples by fusing the schematic-stage models.
//!
//! ```text
//! cargo run --release --example ring_oscillator
//! ```

use bmf_basis::basis::OrthonormalBasis;
use bmf_circuits::ro::{RingOscillator, RoConfig, RoMetric};
use bmf_circuits::sim::{monte_carlo, CostLedger};
use bmf_circuits::stage::{CircuitPerformance, Stage};
use bmf_core::fusion::BmfFitter;
use bmf_core::omp::{fit_omp, OmpConfig};
use bmf_core::options::FitOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-size RO (run `repro table1 --scale default` for the full
    // experiment with the paper-shape configuration).
    let config = RoConfig {
        stages: 11,
        transistors_per_stage: 2,
        params_per_transistor: 8,
        interdie_vars: 8,
        parasitic_vars_per_stage: 1,
        ..RoConfig::small()
    };
    let ro = RingOscillator::new(config, 2024);
    println!(
        "ring oscillator: {} schematic / {} post-layout variation variables, nominal {:.2} GHz\n",
        ro.config().schematic_vars(),
        ro.config().post_layout_vars(),
        ro.nominal_frequency() / 1e9
    );

    let k_late = 60;
    let mut ledger = CostLedger::new();

    for metric in [RoMetric::Power, RoMetric::PhaseNoise, RoMetric::Frequency] {
        let view = ro.metric(metric);
        let sch_vars = view.num_vars(Stage::Schematic);
        let lay_vars = view.num_vars(Stage::PostLayout);

        // Early stage: reuse the schematic validation data (sunk cost).
        let sch = monte_carlo(&view, Stage::Schematic, 800, 1).expect("simulation succeeds");
        let early = fit_omp(
            &OrthonormalBasis::linear(sch_vars),
            &sch.points,
            &sch.values,
            &OmpConfig::default(),
        )?;

        // Late stage: few expensive post-layout simulations.
        let lay = monte_carlo(&view, Stage::PostLayout, k_late, 2).expect("simulation succeeds");
        ledger.charge_samples(&lay);
        let test = monte_carlo(&view, Stage::PostLayout, 300, 3).expect("simulation succeeds");

        let mut prior: Vec<Option<f64>> = early.model.coeffs().iter().map(|&a| Some(a)).collect();
        prior.extend(std::iter::repeat_n(None, lay_vars - sch_vars));

        let started = std::time::Instant::now();
        let fit = BmfFitter::new(OrthonormalBasis::linear(lay_vars), prior)?
            .with_options(FitOptions::new().seed(5))
            .fit(&lay.points, &lay.values)?;
        ledger.charge_fitting_seconds(started.elapsed().as_secs_f64());

        let bmf_err = fit
            .model
            .relative_error(test.point_slices(), &test.values)?;
        let omp = fit_omp(
            &OrthonormalBasis::linear(lay_vars),
            &lay.points,
            &lay.values,
            &OmpConfig::default(),
        )?;
        let omp_err = omp
            .model
            .relative_error(test.point_slices(), &test.values)?;
        println!(
            "{metric:<12} K={k_late}: BMF-PS {:.3}% ({} prior)  vs  OMP {:.3}%",
            bmf_err * 100.0,
            fit.prior_kind,
            omp_err * 100.0
        );
    }

    println!(
        "\nsimulated post-layout simulation cost: {:.2} h; fitting: {:.2} s",
        ledger.simulation_hours, ledger.fitting_seconds
    );
    Ok(())
}
