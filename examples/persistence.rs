//! Deterministic model persistence: fit once, export the service's
//! models to a content-addressed artifact store, then warm-start a
//! fresh service from disk and serve bit-identical predictions —
//! no refit, no samples, no simulator.
//!
//! ```text
//! cargo run --release --example persistence
//! ```

use bmf_basis::basis::OrthonormalBasis;
use bmf_core::options::FitOptions;
use bmf_core::service::{FitRequest, FitService, ServiceConfig};
use bmf_persist::artifact::encode_snapshot;
use bmf_persist::store::ArtifactStore;
use bmf_stat::normal::StandardNormal;
use bmf_stat::rng::seeded;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let r = 6;
    let mut rng = seeded(42);
    let mut normal = StandardNormal::new();
    let points: Vec<Vec<f64>> = (0..16).map(|_| normal.sample_vec(&mut rng, r)).collect();

    // --- Process 1: fit a few performance models through the service.
    let service = FitService::new(ServiceConfig {
        options: FitOptions::new().folds(4).seed(7),
        ..ServiceConfig::default()
    })?;
    let ps = service.register_points(points.clone())?;
    for (j, name) in ["gain", "bandwidth", "psrr"].iter().enumerate() {
        let truth: Vec<f64> = (0..=r).map(|i| ((i + 3 * j) as f64 * 0.47).cos()).collect();
        let values = points
            .iter()
            .map(|p| {
                truth[0]
                    + p.iter()
                        .enumerate()
                        .map(|(i, x)| truth[i + 1] * x)
                        .sum::<f64>()
            })
            .collect();
        let prior = truth.iter().map(|t| Some(t * 1.05)).collect();
        service.submit_fit(FitRequest {
            job_id: (*name).to_string(),
            basis: OrthonormalBasis::linear(r),
            points: ps,
            prior,
            values,
        })?;
    }
    service.drain();
    println!("fitted {} models", service.snapshot_count());

    // Snapshots carry the model *and* its provenance, byte-deterministically.
    let snap = service.export_model("gain")?;
    let bytes = encode_snapshot(&snap)?;
    println!(
        "`gain` snapshot: {} bytes, prior {:?}, cv error {:.3e}",
        bytes.len(),
        snap.prior_kind,
        snap.cv_error
    );

    // Evict-to-disk: publish every model to a content-addressed store.
    let dir = std::env::temp_dir().join("bmf-persistence-example");
    let _ = std::fs::remove_dir_all(&dir);
    let store = ArtifactStore::open(&dir)?;
    let ids = store.export_service(&service)?;
    for (id, job) in ids.iter().zip(service.job_ids()) {
        println!("stored {job:<10} as {id}.bmfsnap");
    }

    // --- Process 2 (simulated): warm-start a brand-new service from disk.
    let warmed = FitService::new(ServiceConfig::default())?;
    let imported = store.warm_start(&warmed)?;
    println!("warm-started a fresh service with {imported} models");

    // Bit-identical serving, without ever seeing a sample point.
    let probe: Vec<f64> = normal.sample_vec(&mut rng, r);
    for job in service.job_ids() {
        let cold = service.predict(&job, &probe)?;
        let warm = warmed.predict(&job, &probe)?;
        assert_eq!(cold.to_bits(), warm.to_bits());
        println!("{job:<10} predicts {cold:+.6} from both services (bit-identical)");
    }

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
