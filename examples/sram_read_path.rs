//! The paper's §V-B flow on the behavioral SRAM read path: read-delay
//! modeling with thousands of variation variables from a handful of
//! post-layout samples, plus the Fig. 7 histogram.
//!
//! ```text
//! cargo run --release --example sram_read_path
//! ```

use bmf_basis::basis::OrthonormalBasis;
use bmf_circuits::sim::monte_carlo;
use bmf_circuits::sram::{SramConfig, SramReadPath};
use bmf_circuits::stage::{CircuitPerformance, Stage};
use bmf_core::fusion::BmfFitter;
use bmf_core::omp::{fit_omp, OmpConfig};
use bmf_core::options::FitOptions;
use bmf_stat::histogram::Histogram;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SramConfig {
        rows: 32,
        columns: 4,
        params_per_cell: 4,
        driver_vars: 6,
        senseamp_vars: 8,
        interdie_vars: 6,
        parasitic_vars_per_column: 2,
        ..SramConfig::small()
    };
    let sram = SramReadPath::new(config, 7);
    let delay = sram.read_delay();
    let sch_vars = delay.num_vars(Stage::Schematic);
    let lay_vars = delay.num_vars(Stage::PostLayout);
    println!(
        "SRAM read path: {sch_vars} schematic / {lay_vars} post-layout variables, \
         nominal delay {:.1} ps\n",
        sram.nominal_delay() * 1e12
    );

    // Fig.7-style histogram of the post-layout read-delay distribution.
    let mc = monte_carlo(&delay, Stage::PostLayout, 1000, 1).expect("simulation succeeds");
    let ps: Vec<f64> = mc.values.iter().map(|v| v * 1e12).collect();
    let hist = Histogram::from_samples(&ps, 18)?;
    println!("post-layout read-delay distribution (ps):");
    print!("{}", hist.render_ascii(40));
    println!(
        "mean {:.1} ps, sigma {:.2} ps, skewness {:.2}\n",
        hist.summary().mean(),
        hist.summary().std_dev(),
        hist.summary().skewness()
    );

    // Early model from schematic data.
    let sch = monte_carlo(&delay, Stage::Schematic, 1200, 2).expect("simulation succeeds");
    let early = fit_omp(
        &OrthonormalBasis::linear(sch_vars),
        &sch.points,
        &sch.values,
        &OmpConfig::default(),
    )?;
    println!(
        "early model: {} of {} terms selected, holdout error {:.3}%",
        early.selected.len(),
        sch_vars + 1,
        early.validation_error * 100.0
    );

    // Late-stage fusion with K far below the coefficient count.
    let k = 80;
    let lay = monte_carlo(&delay, Stage::PostLayout, k, 3).expect("simulation succeeds");
    let test = monte_carlo(&delay, Stage::PostLayout, 300, 4).expect("simulation succeeds");
    let mut prior: Vec<Option<f64>> = early.model.coeffs().iter().map(|&a| Some(a)).collect();
    prior.extend(std::iter::repeat_n(None, lay_vars - sch_vars));

    let fit = BmfFitter::new(OrthonormalBasis::linear(lay_vars), prior)?
        .with_options(FitOptions::new().seed(9))
        .fit(&lay.points, &lay.values)?;
    let bmf_err = fit
        .model
        .relative_error(test.point_slices(), &test.values)?;
    let omp = fit_omp(
        &OrthonormalBasis::linear(lay_vars),
        &lay.points,
        &lay.values,
        &OmpConfig::default(),
    )?;
    let omp_err = omp
        .model
        .relative_error(test.point_slices(), &test.values)?;

    println!(
        "\nK={k} post-layout samples ({} coefficients to determine):",
        lay_vars + 1
    );
    println!(
        "  BMF-PS: {:.3}%  ({} prior, η={:.1e})",
        bmf_err * 100.0,
        fit.prior_kind,
        fit.hyper
    );
    println!("  OMP:    {:.3}%", omp_err * 100.0);
    assert!(bmf_err < omp_err);
    Ok(())
}
