//! Batch fitting: every metric of a circuit from one Monte-Carlo set.
//!
//! A characterization run measures power, phase noise, *and* frequency
//! from the same post-layout simulations — the expensive part (the
//! simulations) is shared, so the fitting should share its work too.
//! This example fits all three ring-oscillator metrics through one
//! [`BatchFitter`]: the design matrix is evaluated once, the
//! cross-validation fold plan is built once, and the per-job work runs on
//! the worker pool. A serial `BmfFitter` loop over the same jobs produces
//! bit-identical models — the batch engine changes the cost, never the
//! numbers.
//!
//! ```text
//! cargo run --release --example batch_fitting
//! ```

use bmf_basis::basis::OrthonormalBasis;
use bmf_circuits::ro::{RingOscillator, RoConfig, RoMetric};
use bmf_circuits::sim::monte_carlo;
use bmf_circuits::stage::{CircuitPerformance, Stage};
use bmf_core::batch::{BatchFitter, BatchJob};
use bmf_core::fusion::BmfFitter;
use bmf_core::least_squares::fit_least_squares;
use bmf_core::options::FitOptions;

const METRICS: [RoMetric; 3] = [RoMetric::Power, RoMetric::PhaseNoise, RoMetric::Frequency];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ro = RingOscillator::new(RoConfig::small(), 7);
    let any = ro.metric(RoMetric::Frequency);
    let sch_vars = any.num_vars(Stage::Schematic);
    let lay_vars = any.num_vars(Stage::PostLayout);
    let k_late = 25;

    // One shared late-stage sample set: the variation points depend only
    // on the seed and the variable space, so every metric is "measured"
    // at the same Monte-Carlo points — exactly the batch scenario.
    let mut batch = BatchFitter::new(OrthonormalBasis::linear(lay_vars))
        .with_options(FitOptions::new().seed(3));
    let mut shared_points: Option<Vec<Vec<f64>>> = None;
    for metric in METRICS {
        let perf = ro.metric(metric);
        // Early model: plentiful cheap schematic simulations.
        let sch = monte_carlo(&perf, Stage::Schematic, 300, 1).expect("simulation succeeds");
        let early = fit_least_squares(
            &OrthonormalBasis::linear(sch_vars),
            &sch.points,
            &sch.values,
        )?;
        let mut prior: Vec<Option<f64>> = early.coeffs().iter().map(|&a| Some(a)).collect();
        prior.extend(std::iter::repeat_n(None, lay_vars - sch_vars));

        let late = monte_carlo(&perf, Stage::PostLayout, k_late, 2).expect("simulation succeeds");
        match &shared_points {
            None => shared_points = Some(late.points.clone()),
            Some(points) => assert_eq!(points, &late.points, "metrics share the sample points"),
        }
        batch.push_job(BatchJob::new(metric.to_string(), prior, late.values));
    }
    let points = shared_points.expect("at least one metric");

    let report = batch.clone().fit(&points)?;
    println!(
        "batch fit of {} metrics from {k_late} shared post-layout samples \
         ({} worker threads):",
        report.fits.len(),
        report.threads
    );
    for (label, fit) in report.labels.iter().zip(&report.fits) {
        let test = monte_carlo(&ro.metric(metric_by_name(label)), Stage::PostLayout, 300, 9)
            .expect("simulation succeeds");
        let err = fit
            .model
            .relative_error(test.point_slices(), &test.values)?;
        println!(
            "  {label:<12} prior {:?}, hyper {:.3e}, cv error {:.2}%, test error {:.2}%",
            fit.prior_kind,
            fit.hyper,
            fit.cv_error * 100.0,
            err * 100.0
        );
    }
    let c = report.counters;
    println!(
        "work: {} MAP solves, {} kernels built, cache {} hit / {} miss",
        c.map_solves, c.kernels_built, c.kernel_cache_hits, c.kernel_cache_misses
    );
    let t = report.timings;
    println!(
        "phases: prepare {:.2?}, kernels {:.2?}, sweep {:.2?}, solve {:.2?}",
        t.prepare, t.kernels, t.sweep, t.solve
    );

    // The batch engine never changes the numbers: a serial loop over the
    // same jobs gives bit-identical coefficients.
    for (j, metric) in METRICS.iter().enumerate() {
        let perf = ro.metric(*metric);
        let sch = monte_carlo(&perf, Stage::Schematic, 300, 1).expect("simulation succeeds");
        let early = fit_least_squares(
            &OrthonormalBasis::linear(sch_vars),
            &sch.points,
            &sch.values,
        )?;
        let mut prior: Vec<Option<f64>> = early.coeffs().iter().map(|&a| Some(a)).collect();
        prior.extend(std::iter::repeat_n(None, lay_vars - sch_vars));
        let late = monte_carlo(&perf, Stage::PostLayout, k_late, 2).expect("simulation succeeds");
        let serial = BmfFitter::new(OrthonormalBasis::linear(lay_vars), prior)?
            .with_options(FitOptions::new().seed(3))
            .fit(&late.points, &late.values)?;
        assert!(
            serial
                .model
                .coeffs()
                .iter()
                .zip(report.fits[j].model.coeffs())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "batch and serial fits must agree bit-for-bit"
        );
    }
    println!("serial-loop cross-check: bit-identical coefficients for every metric");
    Ok(())
}

fn metric_by_name(name: &str) -> RoMetric {
    METRICS
        .into_iter()
        .find(|m| m.to_string() == name)
        .expect("label produced by the loop above")
}
