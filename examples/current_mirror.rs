//! BMF on a current mirror solved by the nonlinear (Newton) DC engine,
//! plus the paper's other motivating application: worst-case corner
//! extraction from the fitted model.
//!
//! ```text
//! cargo run --release --example current_mirror
//! ```

use bmf_basis::basis::OrthonormalBasis;
use bmf_circuits::mirror::{CurrentMirror, MirrorConfig};
use bmf_circuits::sim::monte_carlo;
use bmf_circuits::stage::{CircuitPerformance, Stage};
use bmf_core::applications::worst_case_corner;
use bmf_core::fusion::BmfFitter;
use bmf_core::omp::{fit_omp, OmpConfig};
use bmf_core::options::FitOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mirror = CurrentMirror::new(MirrorConfig::default(), 2026);
    let iout = mirror.output_current();
    let sch_vars = iout.num_vars(Stage::Schematic);
    let lay_vars = iout.num_vars(Stage::PostLayout);

    let nominal_sch = iout
        .evaluate(Stage::Schematic, &vec![0.0; sch_vars])
        .expect("simulation succeeds");
    let nominal_lay = iout
        .evaluate(Stage::PostLayout, &vec![0.0; lay_vars])
        .expect("simulation succeeds");
    println!(
        "mirror output current (Newton DC solve per sample): schematic {:.2} µA, \
         post-layout {:.2} µA (stress-shifted V_TH)",
        nominal_sch * 1e6,
        nominal_lay * 1e6
    );

    // Early model from schematic Newton solves.
    let sch = monte_carlo(&iout, Stage::Schematic, 400, 1).expect("simulation succeeds");
    let early = fit_omp(
        &OrthonormalBasis::linear(sch_vars),
        &sch.points,
        &sch.values,
        &OmpConfig::default(),
    )?;

    // Post-layout fusion with few samples.
    let k = 20;
    let lay = monte_carlo(&iout, Stage::PostLayout, k, 2).expect("simulation succeeds");
    let test = monte_carlo(&iout, Stage::PostLayout, 300, 3).expect("simulation succeeds");
    let mut prior: Vec<Option<f64>> = early.model.coeffs().iter().map(|&a| Some(a)).collect();
    prior.extend(std::iter::repeat_n(None, lay_vars - sch_vars));
    let fit = BmfFitter::new(OrthonormalBasis::linear(lay_vars), prior)?
        .with_options(FitOptions::new().seed(8))
        .fit(&lay.points, &lay.values)?;
    let err = fit
        .model
        .relative_error(test.point_slices(), &test.values)?;
    println!(
        "\npost-layout model from {k} Newton simulations: {:.2}% test error ({} prior)",
        err * 100.0,
        fit.prior_kind
    );

    // Application: worst-case corner on the 3-sigma sphere.
    let worst_low = worst_case_corner(&fit.model, 3.0, false, 20)?;
    let worst_high = worst_case_corner(&fit.model, 3.0, true, 20)?;
    println!(
        "model worst-case corners at 3σ: I_out ∈ [{:.2}, {:.2}] µA",
        worst_low.value * 1e6,
        worst_high.value * 1e6
    );
    // Check the corner against the actual circuit at the same point.
    let actual_low = iout
        .evaluate(Stage::PostLayout, &worst_low.point)
        .expect("simulation succeeds");
    println!(
        "circuit at the predicted low corner: {:.2} µA (model said {:.2} µA)",
        actual_low * 1e6,
        worst_low.value * 1e6
    );
    let rel = (actual_low - worst_low.value).abs() / actual_low;
    assert!(rel < 0.05, "corner prediction off by {rel}");
    Ok(())
}
