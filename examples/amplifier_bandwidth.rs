//! Beyond the paper's testbeds: BMF on an amplifier whose gain and
//! bandwidth come from genuine small-signal AC analysis (complex MNA),
//! with layout parasitics crushing the bandwidth — the classic
//! post-layout surprise that early-stage data alone cannot predict.
//!
//! ```text
//! cargo run --release --example amplifier_bandwidth
//! ```

use bmf_basis::basis::OrthonormalBasis;
use bmf_circuits::amplifier::{Amplifier, AmplifierConfig, AmplifierMetric};
use bmf_circuits::sim::monte_carlo;
use bmf_circuits::stage::{CircuitPerformance, Stage};
use bmf_core::applications::{yield_monte_carlo, Spec};
use bmf_core::fusion::BmfFitter;
use bmf_core::omp::{fit_omp, OmpConfig};
use bmf_core::options::FitOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let amp = Amplifier::new(AmplifierConfig::default(), 99);
    let bw = amp.metric(AmplifierMetric::BandwidthHz);
    let sch_vars = bw.num_vars(Stage::Schematic);
    let lay_vars = bw.num_vars(Stage::PostLayout);

    let nom_sch = bw
        .evaluate(Stage::Schematic, &vec![0.0; sch_vars])
        .expect("simulation succeeds");
    let nom_lay = bw
        .evaluate(Stage::PostLayout, &vec![0.0; lay_vars])
        .expect("simulation succeeds");
    println!(
        "nominal -3dB bandwidth: schematic {:.1} MHz -> post-layout {:.1} MHz \
         (parasitic load capacitance)",
        nom_sch / 1e6,
        nom_lay / 1e6
    );

    // Early model from schematic AC sweeps.
    let sch = monte_carlo(&bw, Stage::Schematic, 400, 1).expect("simulation succeeds");
    let early = fit_omp(
        &OrthonormalBasis::linear(sch_vars),
        &sch.points,
        &sch.values,
        &OmpConfig::default(),
    )?;

    // Post-layout fusion: the intercept shift and parasitic terms must be
    // learned from the few late samples.
    let k = 30;
    let lay = monte_carlo(&bw, Stage::PostLayout, k, 2).expect("simulation succeeds");
    let test = monte_carlo(&bw, Stage::PostLayout, 300, 3).expect("simulation succeeds");
    let mut prior: Vec<Option<f64>> = early.model.coeffs().iter().map(|&a| Some(a)).collect();
    prior.extend(std::iter::repeat_n(None, lay_vars - sch_vars));

    let fit = BmfFitter::new(OrthonormalBasis::linear(lay_vars), prior)?
        .with_options(FitOptions::new().seed(4))
        .fit(&lay.points, &lay.values)?;
    let bmf_err = fit
        .model
        .relative_error(test.point_slices(), &test.values)?;
    let omp = fit_omp(
        &OrthonormalBasis::linear(lay_vars),
        &lay.points,
        &lay.values,
        &OmpConfig::default(),
    )?;
    let omp_err = omp
        .model
        .relative_error(test.point_slices(), &test.values)?;
    println!(
        "\nbandwidth model from {k} post-layout AC runs: BMF-PS {:.2}% vs OMP {:.2}%",
        bmf_err * 100.0,
        omp_err * 100.0
    );

    // Downstream use: parametric yield against a bandwidth spec, from the
    // *model* (thousands of cheap evaluations).
    let spec = Spec::LowerBound(nom_lay * 0.93);
    let y_model = yield_monte_carlo(&fit.model, &spec, 20_000, 5)?;
    // Reference: brute-force yield from the actual circuit.
    let brute = monte_carlo(&bw, Stage::PostLayout, 2_000, 6).expect("simulation succeeds");
    let y_true =
        brute.values.iter().filter(|v| spec.passes(**v)).count() as f64 / brute.values.len() as f64;
    println!(
        "yield vs spec(BW >= {:.1} MHz): model {:.1}% +- {:.1}%, circuit MC {:.1}%",
        nom_lay * 0.93 / 1e6,
        y_model.value * 100.0,
        y_model.std_err * 100.0 * 2.0,
        y_true * 100.0
    );
    assert!((y_model.value - y_true).abs() < 0.08);
    Ok(())
}
