//! Quickstart: fuse an early-stage model with a handful of late-stage
//! samples.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! A synthetic "circuit" with 80 variation variables plays the role of an
//! expensive simulator. We fit its schematic-stage model once, then show
//! that 25 post-layout samples plus the prior beat a prior-free sparse
//! fit on the same 25 samples by a wide margin.

use bmf_basis::basis::OrthonormalBasis;
use bmf_circuits::sim::monte_carlo;
use bmf_circuits::stage::{CircuitPerformance, Stage};
use bmf_circuits::synthetic::{SyntheticCircuit, SyntheticConfig};
use bmf_core::fusion::BmfFitter;
use bmf_core::omp::{fit_omp, OmpConfig};
use bmf_core::options::FitOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The "circuit": 80 schematic variables, 8 extra post-layout
    // parasitic variables, coefficients shifted ~15% by layout.
    let circuit = SyntheticCircuit::new(
        SyntheticConfig {
            early_vars: 80,
            extra_late_vars: 8,
            layout_shift_rel: 0.15,
            ..SyntheticConfig::default()
        },
        42,
    );
    let early_vars = circuit.num_vars(Stage::Schematic);
    let late_vars = circuit.num_vars(Stage::PostLayout);

    // Step 1 — early stage: plenty of cheap schematic simulations.
    let sch = monte_carlo(&circuit, Stage::Schematic, 600, 1).expect("simulation succeeds");
    let sch_basis = OrthonormalBasis::linear(early_vars);
    let early_fit = fit_omp(&sch_basis, &sch.points, &sch.values, &OmpConfig::default())?;
    println!(
        "early model: {} terms selected, holdout error {:.3}%",
        early_fit.selected.len(),
        early_fit.validation_error * 100.0
    );

    // Step 2 — late stage: only 25 expensive post-layout simulations.
    let k = 25;
    let lay = monte_carlo(&circuit, Stage::PostLayout, k, 2).expect("simulation succeeds");
    let test = monte_carlo(&circuit, Stage::PostLayout, 400, 3).expect("simulation succeeds");

    // The late basis embeds the early one; parasitic terms get missing
    // priors (handled by `None`).
    let late_basis = OrthonormalBasis::linear(late_vars);
    let mut prior: Vec<Option<f64>> = early_fit.model.coeffs().iter().map(|&a| Some(a)).collect();
    prior.extend(std::iter::repeat_n(None, late_vars - early_vars));

    let fit = BmfFitter::new(late_basis.clone(), prior)?
        .with_options(FitOptions::new().seed(7))
        .fit(&lay.points, &lay.values)?;
    let bmf_err = fit
        .model
        .relative_error(test.point_slices(), &test.values)?;
    println!(
        "BMF-PS ({} prior, hyper {:.2e}) with K={k}: test error {:.3}%",
        fit.prior_kind,
        fit.hyper,
        bmf_err * 100.0
    );

    // Baseline: OMP on the same 25 late samples, no prior.
    let omp_fit = fit_omp(&late_basis, &lay.points, &lay.values, &OmpConfig::default())?;
    let omp_err = omp_fit
        .model
        .relative_error(test.point_slices(), &test.values)?;
    println!(
        "OMP (no prior)        with K={k}: test error {:.3}%",
        omp_err * 100.0
    );

    println!(
        "\nsimulated cost: late-stage samples {:.2} h; reusing early data was free",
        lay.cost_hours
    );
    assert!(bmf_err < omp_err, "BMF should beat the prior-free baseline");
    Ok(())
}
