//! §IV-A end to end: prior mapping for multifinger layout extraction,
//! on the differential-pair offset voltage solved through the MNA
//! mini-SPICE engine.
//!
//! ```text
//! cargo run --example prior_mapping
//! ```

use bmf_basis::basis::OrthonormalBasis;
use bmf_circuits::diffpair::{DiffPair, DiffPairConfig};
use bmf_circuits::sim::monte_carlo;
use bmf_circuits::stage::Stage;
use bmf_core::fusion::BmfFitter;
use bmf_core::omp::{fit_omp, OmpConfig};
use bmf_core::options::FitOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dp = DiffPair::new(DiffPairConfig::default());
    let vos = dp.offset_voltage();
    let w = dp.config().fingers;

    // Schematic stage: V_OS over 4 lumped variables (eq. 36).
    let sch = monte_carlo(&vos, Stage::Schematic, 400, 1).expect("simulation succeeds");
    let sch_basis = OrthonormalBasis::linear(4);
    let early = fit_omp(&sch_basis, &sch.points, &sch.values, &OmpConfig::default())?;
    let alpha_e = early.model.coeffs();
    println!("schematic V_OS coefficients (x1e3): {:?}", scaled(alpha_e));

    // Layout: each input transistor splits into W fingers (eq. 37-43).
    let expansion = dp.finger_expansion().expect("finger counts are positive");
    let expanded = expansion.expand_basis(&sch_basis)?;
    println!(
        "finger expansion: {} schematic terms -> {} layout terms",
        expanded.num_schematic_terms(),
        expanded.basis().len()
    );
    let beta = expanded.map_coefficients(alpha_e);
    println!(
        "mapped prior beta = alpha/sqrt({w}) (x1e3): {:?}",
        scaled(&beta)
    );

    // Fit the post-layout model from very few layout simulations.
    let k = 8;
    let lay = monte_carlo(&vos, Stage::PostLayout, k, 2).expect("simulation succeeds");
    let test = monte_carlo(&vos, Stage::PostLayout, 400, 3).expect("simulation succeeds");
    let fit = BmfFitter::from_mapped_early_model(&expanded, alpha_e, vec![])?
        .with_options(FitOptions::new().folds(4).seed(11))
        .fit(&lay.points, &lay.values)?;
    let bmf_err = fit
        .model
        .relative_error(test.point_slices(), &test.values)?;

    let omp = fit_omp(
        &expanded.basis().clone(),
        &lay.points,
        &lay.values,
        &OmpConfig {
            validation_fraction: 0.3,
            ..OmpConfig::default()
        },
    )?;
    let omp_err = omp
        .model
        .relative_error(test.point_slices(), &test.values)?;

    println!("\nwith only {k} post-layout simulations:");
    println!("  BMF + mapped prior: {:.2}% test error", bmf_err * 100.0);
    println!("  OMP (no prior):     {:.2}% test error", omp_err * 100.0);
    assert!(bmf_err < omp_err);
    Ok(())
}

fn scaled(xs: &[f64]) -> Vec<f64> {
    xs.iter().map(|x| (x * 1e3 * 1e3).round() / 1e3).collect()
}
