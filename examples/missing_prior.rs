//! §IV-B end to end: handling late-stage basis functions whose prior
//! knowledge is missing (layout parasitics), using the infinite-variance
//! prior of eq. 50-52 — and showing why ignoring those terms is worse.
//!
//! ```text
//! cargo run --example missing_prior
//! ```

use bmf_basis::basis::OrthonormalBasis;
use bmf_circuits::sim::monte_carlo;
use bmf_circuits::stage::{CircuitPerformance, Stage};
use bmf_circuits::synthetic::{SyntheticCircuit, SyntheticConfig};
use bmf_core::fusion::BmfFitter;
use bmf_core::options::FitOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let early_vars = 60;
    let extra = 8;
    let circuit = SyntheticCircuit::new(
        SyntheticConfig {
            early_vars,
            extra_late_vars: extra,
            ..SyntheticConfig::default()
        },
        13,
    );
    let late_vars = circuit.num_vars(Stage::PostLayout);
    println!("truth: {early_vars} early variables + {extra} post-layout-only parasitic variables");

    let k = 40;
    let train = monte_carlo(&circuit, Stage::PostLayout, k, 1).expect("simulation succeeds");
    let test = monte_carlo(&circuit, Stage::PostLayout, 400, 2).expect("simulation succeeds");

    // The synthetic circuit exposes its exact early coefficients, so the
    // prior is the best case; only the parasitic terms are unknown.
    let known: Vec<Option<f64>> = circuit
        .true_early_coeffs()
        .iter()
        .map(|&a| Some(a))
        .collect();

    // (a) Correct: flat (infinite-variance) priors on the parasitic terms.
    let mut with_missing = known.clone();
    with_missing.extend(std::iter::repeat_n(None, extra));
    let fit = BmfFitter::new(OrthonormalBasis::linear(late_vars), with_missing)?
        .with_options(FitOptions::new().seed(3))
        .fit(&train.points, &train.values)?;
    let err_flat = fit
        .model
        .relative_error(test.point_slices(), &test.values)?;
    println!(
        "\ninfinite-variance priors on parasitics: {:.3}% error ({} prior)",
        err_flat * 100.0,
        fit.prior_kind
    );
    // The parasitic coefficients were learned purely from the K samples:
    let tail = &fit.model.coeffs()[1 + early_vars..];
    let truth_tail = &circuit.true_late_coeffs()[1 + early_vars..];
    let worst: f64 = tail
        .iter()
        .zip(truth_tail)
        .map(|(a, t)| (a - t).abs())
        .fold(0.0, f64::max);
    println!("  worst parasitic-coefficient error: {worst:.4}");

    // (b) Naive: drop the parasitic variables from the model entirely.
    let trunc: Vec<Vec<f64>> = train
        .points
        .iter()
        .map(|p| p[..early_vars].to_vec())
        .collect();
    let fit_naive = BmfFitter::new(OrthonormalBasis::linear(early_vars), known)?
        .with_options(FitOptions::new().seed(3))
        .fit(&trunc, &train.values)?;
    let trunc_test: Vec<Vec<f64>> = test
        .points
        .iter()
        .map(|p| p[..early_vars].to_vec())
        .collect();
    let err_naive = fit_naive
        .model
        .relative_error(trunc_test.iter().map(|p| p.as_slice()), &test.values)?;
    println!(
        "ignoring the parasitic variables:        {:.3}% error",
        err_naive * 100.0
    );

    assert!(err_flat < err_naive);
    println!("\nmodeling the new terms with flat priors wins, as §IV-B prescribes.");
    Ok(())
}
