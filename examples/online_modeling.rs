//! Online model fusion: update the post-layout model after *every*
//! finished simulation instead of waiting for the whole batch.
//!
//! Each post-layout run takes hours on a real testbed; `SequentialBmf`
//! keeps the current MAP estimate (identical to a batch refit) at
//! Θ(K·M) per new sample by growing the Woodbury core's Cholesky factor
//! incrementally.
//!
//! ```text
//! cargo run --release --example online_modeling
//! ```

use bmf_basis::basis::OrthonormalBasis;
use bmf_circuits::ro::{RingOscillator, RoConfig, RoMetric};
use bmf_circuits::sim::monte_carlo;
use bmf_circuits::stage::{CircuitPerformance, Stage};
use bmf_core::fusion::response_scale;
use bmf_core::omp::{fit_omp, OmpConfig};
use bmf_core::prior::{Prior, PriorKind};
use bmf_core::sequential::SequentialBmf;
use bmf_stat::summary::relative_l2_error;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ro = RingOscillator::new(
        RoConfig {
            stages: 9,
            transistors_per_stage: 2,
            params_per_transistor: 8,
            interdie_vars: 6,
            parasitic_vars_per_stage: 0, // sequential path needs finite priors
            ..RoConfig::small()
        },
        5,
    );
    let view = ro.metric(RoMetric::Frequency);
    let sch_vars = view.num_vars(Stage::Schematic);
    let basis = OrthonormalBasis::linear(sch_vars);

    // Early model (the prior), as usual.
    let sch = monte_carlo(&view, Stage::Schematic, 800, 1);
    let early = fit_omp(&basis, &sch.points, &sch.values, &OmpConfig::default())?;

    // Stream post-layout samples one at a time. Work in the normalized
    // response space (see `bmf_core::fusion::response_scale`).
    let stream = monte_carlo(&view, Stage::PostLayout, 60, 2);
    let test = monte_carlo(&view, Stage::PostLayout, 300, 3);
    let scale = response_scale(&stream.values);
    let prior_vals: Vec<f64> = early.model.coeffs().iter().map(|a| a / scale).collect();
    let prior = Prior::from_coeffs(PriorKind::NonZeroMean, &prior_vals);

    let mut seq = SequentialBmf::new(&prior, 1.0)?;
    println!("samples | relative test error (%)");
    let test_rows: Vec<Vec<f64>> = test.points.iter().map(|p| basis.row(p)).collect();
    let test_scaled: Vec<f64> = test.values.iter().map(|v| v / scale).collect();
    for (i, (point, &value)) in stream.points.iter().zip(&stream.values).enumerate() {
        seq.add_sample(&basis.row(point), value / scale)?;
        if (i + 1) % 10 == 0 || i < 3 {
            let alpha = seq.coefficients()?;
            let pred: Vec<f64> = test_rows
                .iter()
                .map(|r| r.iter().zip(alpha.iter()).map(|(g, a)| g * a).sum())
                .collect();
            let err = relative_l2_error(&pred, &test_scaled);
            println!("{:>7} | {:.4}", i + 1, err * 100.0);
        }
    }
    println!(
        "\nthe model is usable from the very first samples — the prior carries\n\
         the structure, each new simulation refines it (identical to a batch refit)."
    );
    Ok(())
}
