//! Online model fusion: update the post-layout model after *every*
//! finished simulation, let the posterior pick which simulation to run
//! next, and stop when the budget or the variance says so.
//!
//! Each post-layout run takes hours on a real testbed; `SequentialBmf`
//! keeps the current MAP estimate (bit-identical to a batch refit) at
//! Θ(K·M) per new sample by growing the Woodbury core's Cholesky factor
//! incrementally inside a reusable [`SeqWorkspace`]. On top of the
//! estimator this example runs the full streaming loop:
//!
//! * **active selection** — `suggest_next` ranks the not-yet-simulated
//!   candidates by posterior predictive variance and the loop always
//!   simulates the most informative one;
//! * **cost-aware stopping** — a [`StopPolicy`] checks every pick
//!   against the simulation budget tracked by the circuit crate's
//!   [`CostLedger`] and against a variance floor, so the testbed stops
//!   burning hours once new samples stop paying for themselves.
//!
//! ```text
//! cargo run --release --example online_modeling
//! ```

use bmf_basis::basis::OrthonormalBasis;
use bmf_circuits::ro::{RingOscillator, RoConfig, RoMetric};
use bmf_circuits::sim::{monte_carlo, CostLedger};
use bmf_circuits::stage::{CircuitPerformance, Stage};
use bmf_core::fusion::response_scale;
use bmf_core::omp::{fit_omp, OmpConfig};
use bmf_core::prior::{Prior, PriorKind};
use bmf_core::sequential::{SequentialBmf, StopPolicy, StopReason};
use bmf_core::workspace::SeqWorkspace;
use bmf_linalg::view::MatRef;
use bmf_stat::summary::relative_l2_error;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ro = RingOscillator::new(
        RoConfig {
            stages: 9,
            transistors_per_stage: 2,
            params_per_transistor: 8,
            interdie_vars: 6,
            parasitic_vars_per_stage: 0, // sequential path needs finite priors
            ..RoConfig::small()
        },
        5,
    );
    let view = ro.metric(RoMetric::Frequency);
    let sch_vars = view.num_vars(Stage::Schematic);
    let basis = OrthonormalBasis::linear(sch_vars);

    // Early model (the prior), as usual.
    let sch = monte_carlo(&view, Stage::Schematic, 800, 1).expect("simulation succeeds");
    let early = fit_omp(&basis, &sch.points, &sch.values, &OmpConfig::default())?;

    // A pool of *candidate* post-layout simulations: the loop decides
    // which of these to actually pay for. Work in the normalized
    // response space (see `bmf_core::fusion::response_scale`).
    let pool = monte_carlo(&view, Stage::PostLayout, 60, 2).expect("simulation succeeds");
    let test = monte_carlo(&view, Stage::PostLayout, 300, 3).expect("simulation succeeds");
    let scale = response_scale(&pool.values);
    let prior_vals: Vec<f64> = early.model.coeffs().iter().map(|a| a / scale).collect();
    let prior = Prior::from_coeffs(PriorKind::NonZeroMean, &prior_vals);

    let m = basis.len();
    let per_sample_hours = pool.cost_hours / pool.len() as f64;
    let policy = StopPolicy {
        budget_hours: 40.0 * per_sample_hours, // funds at most 40 of the 60 candidates
        min_samples: 8,
        variance_floor: 1e-4,
    };

    let mut seq = SequentialBmf::new(&prior, 1.0)?;
    seq.reserve(pool.len());
    let mut ws = SeqWorkspace::for_problem(pool.len(), m);
    let mut ledger = CostLedger::new();
    let mut remaining: Vec<usize> = (0..pool.len()).collect();
    let mut cand_rows: Vec<f64> = Vec::with_capacity(pool.len() * m);
    let mut row = vec![0.0; m];
    let mut alpha = vec![0.0; m];

    let test_rows: Vec<Vec<f64>> = test.points.iter().map(|p| basis.row(p)).collect();
    let test_scaled: Vec<f64> = test.values.iter().map(|v| v / scale).collect();

    println!("samples | peak variance | relative test error (%)");
    let reason = loop {
        // Rank every not-yet-simulated candidate by posterior variance.
        cand_rows.clear();
        for &c in &remaining {
            basis.fill_row(&pool.points[c], &mut row);
            cand_rows.extend_from_slice(&row);
        }
        let candidates = MatRef::from_row_major(&cand_rows, remaining.len(), m)?;
        let Some((pick, peak_var)) = seq.suggest_next(candidates, &mut ws)? else {
            break StopReason::VarianceConverged; // pool exhausted
        };
        if let Some(reason) = policy.decide(
            seq.num_samples(),
            ledger.simulation_hours,
            per_sample_hours,
            peak_var,
        ) {
            break reason;
        }

        // "Run" the chosen simulation: pay for it, then absorb it.
        let chosen = remaining.swap_remove(pick);
        ledger.charge_samples(&pool.select(&[chosen]));
        basis.fill_row(&pool.points[chosen], &mut row);
        seq.add_sample(&row, pool.values[chosen] / scale, &mut ws)?;

        if seq.num_samples() % 5 == 0 || seq.num_samples() <= 3 {
            seq.coefficients_into(&mut ws, &mut alpha)?;
            let pred: Vec<f64> = test_rows
                .iter()
                .map(|r| r.iter().zip(&alpha).map(|(g, a)| g * a).sum())
                .collect();
            let err = relative_l2_error(&pred, &test_scaled);
            println!(
                "{:>7} | {:>13.6} | {:.4}",
                seq.num_samples(),
                peak_var,
                err * 100.0
            );
        }
    };

    println!(
        "\nstopped after {} of {} candidate simulations: {reason}\n\
         simulation spend {:.1} h of a {:.1} h budget — the posterior picked\n\
         the informative runs first and the policy kept the rest unspent.",
        seq.num_samples(),
        pool.len(),
        ledger.simulation_hours,
        policy.budget_hours,
    );
    Ok(())
}
