//! Fitted performance models.

use bmf_basis::basis::OrthonormalBasis;
use bmf_linalg::MatRef;
use bmf_stat::summary::relative_l2_error;

use crate::{BmfError, Result};

/// A fitted performance model `f(x) ≈ Σ_m α_m g_m(x)` (eq. 2 of the
/// paper): an orthonormal Hermite basis plus one coefficient per term.
///
/// # Example
///
/// ```
/// use bmf_basis::basis::OrthonormalBasis;
/// use bmf_core::model::PerformanceModel;
///
/// # fn main() -> Result<(), bmf_core::BmfError> {
/// let basis = OrthonormalBasis::linear(2);
/// let model = PerformanceModel::new(basis, vec![1.0, 2.0, -1.0])?;
/// assert_eq!(model.predict(&[0.5, 0.25]), 1.0 + 1.0 - 0.25);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PerformanceModel {
    basis: OrthonormalBasis,
    coeffs: Vec<f64>,
}

impl PerformanceModel {
    /// Creates a model from a basis and matching coefficient vector.
    ///
    /// # Errors
    ///
    /// Returns [`BmfError::PriorShape`] when the coefficient count differs
    /// from the basis size.
    pub fn new(basis: OrthonormalBasis, coeffs: Vec<f64>) -> Result<Self> {
        if coeffs.len() != basis.len() {
            return Err(BmfError::PriorShape {
                basis_terms: basis.len(),
                prior_entries: coeffs.len(),
            });
        }
        Ok(PerformanceModel { basis, coeffs })
    }

    /// The basis.
    pub fn basis(&self) -> &OrthonormalBasis {
        &self.basis
    }

    /// The fitted coefficients, in basis-term order.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Number of coefficients whose magnitude exceeds `threshold` —
    /// a sparsity diagnostic.
    pub fn active_terms(&self, threshold: f64) -> usize {
        self.coeffs.iter().filter(|a| a.abs() > threshold).count()
    }

    /// Evaluates the model at every row of `points`, writing one
    /// prediction per row into `out` — the single borrowed-view
    /// prediction entry point. [`predict`](Self::predict) and
    /// [`predict_batch`](Self::predict_batch) are thin layers over it,
    /// so every prediction path runs the identical evaluation loop and
    /// round-trip tests can assert bitwise equality without allocation
    /// noise.
    ///
    /// # Errors
    ///
    /// Returns [`BmfError::SampleShape`] when `points.ncols()` differs
    /// from the basis input dimension or `out.len()` differs from
    /// `points.nrows()`. On error, `out` is untouched.
    pub fn predict_into(&self, points: MatRef<'_>, out: &mut [f64]) -> Result<()> {
        if points.ncols() != self.basis.num_vars() || out.len() != points.nrows() {
            return Err(predict_shape_error(self, &points, out.len()));
        }
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.basis.evaluate_model(&self.coeffs, points.row(i));
        }
        Ok(())
    }

    /// Evaluates the model at one point.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != self.basis().num_vars()`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut out = [0.0f64];
        let run = MatRef::from_row_major(x, 1, x.len())
            .map_err(BmfError::from)
            .and_then(|m| self.predict_into(m, &mut out));
        match run {
            Ok(()) => out[0],
            // Dimension mismatch: evaluate directly so the documented
            // panic (the basis dimension assert) fires exactly as it
            // always has.
            Err(_) => self.basis.evaluate_model(&self.coeffs, x),
        }
    }

    /// Evaluates the model at many points (each routed through
    /// [`predict_into`](Self::predict_into) via [`predict`](Self::predict)).
    pub fn predict_batch<'a, I>(&self, points: I) -> Vec<f64>
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        points.into_iter().map(|x| self.predict(x)).collect()
    }

    /// Relative modeling error `‖f̂ − f‖₂ / ‖f‖₂` over a test set — the
    /// paper's accuracy metric (eq. 59).
    ///
    /// # Errors
    ///
    /// Returns [`BmfError::SampleShape`] when points and values disagree in
    /// count.
    ///
    /// # Panics
    ///
    /// Panics when the reference values are all zero.
    pub fn relative_error<'a, I>(&self, points: I, values: &[f64]) -> Result<f64>
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let pred = self.predict_batch(points);
        if pred.len() != values.len() {
            return Err(BmfError::SampleShape {
                detail: format!("{} predictions vs {} values", pred.len(), values.len()),
            });
        }
        Ok(relative_l2_error(&pred, values))
    }
}

/// Builds the shape error for [`PerformanceModel::predict_into`]. Kept
/// outside the kernel so the hot path stays allocation-free: the message
/// is only materialized once a caller has already misused the API.
fn predict_shape_error(model: &PerformanceModel, points: &MatRef<'_>, out_len: usize) -> BmfError {
    BmfError::SampleShape {
        // bmf-lint: allow(alloc-reachability) -- error construction: allocates only on the failure path, never per-prediction
        detail: format!(
            "predict_into: {} rows of dimension {} into {} output slots, \
             model expects dimension {}",
            points.nrows(),
            points.ncols(),
            out_len,
            model.basis.num_vars()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PerformanceModel {
        PerformanceModel::new(OrthonormalBasis::linear(2), vec![3.0, 1.0, -2.0]).unwrap()
    }

    #[test]
    fn predict_is_linear_combination() {
        let m = model();
        assert_eq!(m.predict(&[1.0, 1.0]), 2.0);
        assert_eq!(m.predict(&[0.0, 0.0]), 3.0);
    }

    #[test]
    fn coefficient_count_validated() {
        assert!(matches!(
            PerformanceModel::new(OrthonormalBasis::linear(2), vec![1.0]),
            Err(BmfError::PriorShape { .. })
        ));
    }

    #[test]
    fn batch_matches_single() {
        let m = model();
        let pts = [[0.1, 0.2], [0.3, -0.4]];
        let batch = m.predict_batch(pts.iter().map(|p| p.as_slice()));
        assert_eq!(batch, vec![m.predict(&pts[0]), m.predict(&pts[1])]);
    }

    #[test]
    fn predict_into_matches_predict_bitwise() {
        let m = model();
        let flat = [0.1, 0.2, 0.3, -0.4, 1.5, -2.5];
        let view = MatRef::from_row_major(&flat, 3, 2).unwrap();
        let mut out = [0.0; 3];
        m.predict_into(view, &mut out).unwrap();
        for (i, &y) in out.iter().enumerate() {
            let direct = m.predict(&flat[i * 2..i * 2 + 2]);
            assert_eq!(y.to_bits(), direct.to_bits());
        }
    }

    #[test]
    fn predict_into_rejects_shape_mismatches() {
        let m = model();
        let flat = [0.1, 0.2, 0.3, -0.4];
        // Wrong input dimension.
        let view = MatRef::from_row_major(&flat, 1, 4).unwrap();
        let mut out = [0.0; 1];
        assert!(matches!(
            m.predict_into(view, &mut out),
            Err(BmfError::SampleShape { .. })
        ));
        // Wrong output length; out must be untouched.
        let view = MatRef::from_row_major(&flat, 2, 2).unwrap();
        let mut short = [7.0; 1];
        assert!(m.predict_into(view, &mut short).is_err());
        assert_eq!(short[0], 7.0);
    }

    #[test]
    fn perfect_model_has_zero_error() {
        let m = model();
        let pts = [[0.5, 0.5], [1.0, -1.0], [0.0, 2.0]];
        let vals: Vec<f64> = pts.iter().map(|p| m.predict(p)).collect();
        let e = m
            .relative_error(pts.iter().map(|p| p.as_slice()), &vals)
            .unwrap();
        assert!(e < 1e-14);
    }

    #[test]
    fn error_matches_eq59() {
        let m = model();
        let pts = [[0.0, 0.0]];
        // prediction 3.0, actual 4.0 -> |3-4|/|4| = 0.25
        let e = m
            .relative_error(pts.iter().map(|p| p.as_slice()), &[4.0])
            .unwrap();
        assert!((e - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mismatched_counts_rejected() {
        let m = model();
        let pts = [[0.0, 0.0]];
        assert!(m
            .relative_error(pts.iter().map(|p| p.as_slice()), &[1.0, 2.0])
            .is_err());
    }

    #[test]
    fn active_terms_counts_above_threshold() {
        let m = model();
        assert_eq!(m.active_terms(1.5), 2);
        assert_eq!(m.active_terms(0.0), 3);
    }
}
