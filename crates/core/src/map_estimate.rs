//! Maximum-a-posteriori estimation of the late-stage coefficients
//! (§III-B), with the direct and fast solvers of §IV-C.
//!
//! Both prior families lead to the same unified SPD system. Writing
//! `D = diag(prior precisions)` (see [`Prior::precisions`]) and `b₀` for
//! the prior's right-hand-side contribution ([`Prior::rhs_contribution`]),
//! the MAP estimate solves
//!
//! ```text
//! (D + GᵀG) · α_L = b₀ + Gᵀ f_L
//! ```
//!
//! which specializes to eq. 30 (zero-mean, after multiplying through by
//! σ₀²) and eq. 35 (nonzero-mean) of the paper.
//!
//! Two solvers are provided and are *numerically identical* (the fast one
//! is an algebraic identity, not an approximation):
//!
//! * [`SolverKind::Direct`] — assemble the M × M posterior precision and
//!   factorize with Cholesky: Θ(M³). The paper's "conventional solver".
//! * [`SolverKind::Fast`] — the Sherman–Morrison–Woodbury low-rank update
//!   (eq. 53–58): Θ(K²M) with K ≪ M. Handles missing-prior coefficients
//!   (zero diagonal precision) through the exact augmented formulation in
//!   [`bmf_linalg::woodbury`].

use bmf_linalg::view::{matvec_into, matvec_transpose_into, outer_gram_diag_into, MatRef};
use bmf_linalg::{
    factor_lu_ladder, factor_spd_ladder, ladder_solve_in_place, lu_solve_into, view, woodbury,
    LadderPolicy, LinalgError, Matrix, Resilience, Vector,
};

use crate::options::FitOptions;
use crate::prior::Prior;
use crate::workspace::{resize, MapScratch};
use crate::{BmfError, Result};

/// Which MAP solver to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolverKind {
    /// Dense M × M Cholesky factorization (Θ(M³)).
    Direct,
    /// Woodbury low-rank update on the K × K core (Θ(K²M)).
    Fast,
}

impl std::fmt::Display for SolverKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverKind::Direct => write!(f, "direct (Cholesky)"),
            SolverKind::Fast => write!(f, "fast (low-rank update)"),
        }
    }
}

/// Computes the MAP estimate of the late-stage coefficients.
///
/// * `g` — the K × M design matrix (eq. 9) of the late-stage samples,
/// * `f` — the K late-stage performance values,
/// * `prior` — the coefficient prior (length M),
/// * `options` — the unified fit configuration; this entry point uses
///   [`FitOptions::hyper`] (`σ₀²` for the zero-mean prior, `η` for the
///   nonzero-mean one — chosen by cross-validation in practice, §IV-D)
///   and [`FitOptions::solver`] (direct or fast; results agree to
///   rounding error).
///
/// # Errors
///
/// * [`BmfError::Config`] when `options.hyper` is not positive and
///   finite.
/// * [`BmfError::PriorShape`] when `prior.len() != g.ncols()`.
/// * [`BmfError::SampleShape`] when `f.len() != g.nrows()`.
/// * [`BmfError::NotEnoughSamples`] when more coefficients lack priors
///   than there are samples (the posterior is improper).
/// * [`BmfError::NonFiniteInput`] when `g` or `f` contain NaN or ±∞.
/// * [`BmfError::Linalg`] when the system cannot be solved even after
///   the degradation ladder ([`bmf_linalg::LinalgError::Unsolvable`]).
///
/// An ill-conditioned but rescuable system does *not* error: the solver
/// climbs the degradation ladder of [`bmf_linalg::resilience`] and the
/// solve succeeds in degraded form. Use [`map_estimate_with_report`] to
/// observe the ladder rung, ridge, and condition estimate.
///
/// # Example
///
/// ```
/// use bmf_linalg::{Matrix, Vector};
/// use bmf_core::map_estimate::map_estimate;
/// use bmf_core::options::FitOptions;
/// use bmf_core::prior::{Prior, PriorKind};
///
/// # fn main() -> Result<(), bmf_core::BmfError> {
/// // One sample, two coefficients: the prior disambiguates.
/// let g = Matrix::from_rows(&[&[1.0, 1.0]])?;
/// let f = Vector::from(vec![2.0]);
/// let prior = Prior::from_coeffs(PriorKind::NonZeroMean, &[2.0, 0.01]);
/// let alpha = map_estimate(&g, &f, &prior, &FitOptions::new().hyper(1.0))?;
/// // The first coefficient absorbs almost everything.
/// assert!(alpha[0] > 10.0 * alpha[1].abs());
/// # Ok(())
/// # }
/// ```
pub fn map_estimate(g: &Matrix, f: &Vector, prior: &Prior, options: &FitOptions) -> Result<Vector> {
    map_estimate_with_report(g, f, prior, options).map(|(alpha, _)| alpha)
}

/// Like [`map_estimate`], additionally returning the degradation-ladder
/// outcome of the solve: the rung used (0 = clean), the ridge added to
/// the system diagonal, and a reciprocal-condition estimate of the
/// accepted factorization.
///
/// # Errors
///
/// Same conditions as [`map_estimate`].
pub fn map_estimate_with_report(
    g: &Matrix,
    f: &Vector,
    prior: &Prior,
    options: &FitOptions,
) -> Result<(Vector, Resilience)> {
    if !(options.hyper > 0.0 && options.hyper.is_finite()) {
        return Err(BmfError::config(
            "hyper",
            format!("must be positive and finite, got {}", options.hyper),
        ));
    }
    crate::screen::finite_matrix("design matrix", g)?;
    crate::screen::finite_values("response values", f.as_slice())?;
    crate::screen::finite_prior(prior)?;
    let mut ws = MapScratch::default();
    map_estimate_ws(g, f, prior, options.hyper, options.solver, &mut ws)
}

/// Positional core of [`map_estimate`] without the boundary screening;
/// kept for in-crate tests that compare solver paths on raw inputs.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn map_estimate_with(
    g: &Matrix,
    f: &Vector,
    prior: &Prior,
    hyper: f64,
    solver: SolverKind,
) -> Result<Vector> {
    let mut ws = MapScratch::default();
    map_estimate_ws(g, f, prior, hyper, solver, &mut ws).map(|(alpha, _)| alpha)
}

/// Workspace-threaded core of [`map_estimate`]: all intermediates live in
/// `ws` so repeated final solves (e.g. one per batch job) allocate only
/// their coefficient vector. Returns the coefficients together with the
/// degradation-ladder outcome of the factorization.
pub(crate) fn map_estimate_ws(
    g: &Matrix,
    f: &Vector,
    prior: &Prior,
    hyper: f64,
    solver: SolverKind,
    ws: &mut MapScratch,
) -> Result<(Vector, Resilience)> {
    let (k, m) = g.shape();
    if prior.len() != m {
        return Err(BmfError::PriorShape {
            basis_terms: m,
            prior_entries: prior.len(),
        });
    }
    if f.len() != k {
        return Err(BmfError::SampleShape {
            detail: format!("{k} design rows vs {} values", f.len()),
        });
    }
    if prior.num_zero_precision() > k {
        return Err(BmfError::NotEnoughSamples {
            available: k,
            required: prior.num_zero_precision(),
            context: "missing-prior coefficients",
        });
    }

    let precisions = prior.precisions(hyper);
    resize(&mut ws.rhs, m);
    matvec_transpose_into(g.as_view(), f.as_slice(), &mut ws.rhs)?;
    for (r, b0) in ws.rhs.iter_mut().zip(prior.rhs_contribution(hyper)) {
        *r += b0;
    }

    let mut out = vec![0.0; m];
    let resilience = match solver {
        SolverKind::Direct => {
            ws.core.reset_zeros(m, m);
            view::gram_into(g.as_view(), ws.core.as_view_mut())?;
            ws.core.add_diagonal_mut(&precisions)?;
            let (kind, res) = factor_spd_ladder(
                &mut ws.core,
                &mut ws.perm,
                &mut ws.ladder,
                &LadderPolicy::default(),
            )?;
            out.copy_from_slice(&ws.rhs);
            ladder_solve_in_place(kind, &ws.core, &ws.perm, &mut ws.ladder, &mut out)?;
            res
        }
        SolverKind::Fast => woodbury::solve_diag_plus_gram_semidefinite_into(
            &precisions,
            1.0,
            g.as_view(),
            &ws.rhs,
            &mut ws.woodbury,
            &mut out,
        )?,
    };
    Ok((Vector::from(out), resilience))
}

/// Pre-computed quantities for sweeping the hyper-parameter over a fixed
/// design matrix and prior *structure*.
///
/// Cross-validation (§IV-D) solves the same MAP system for many values of
/// `σ₀²`/`η`. Because the prior precision scales *linearly* with the
/// hyper-parameter (`D(h) = h·A`, `A = diag(α_E,m⁻²)`), the expensive
/// Woodbury kernels can be computed once:
///
/// ```text
/// B_F = G_F·A_F⁻¹·G_Fᵀ   (finite-prior columns)
/// B_Z = G_Z·G_Zᵀ          (missing-prior columns)
/// ```
///
/// after which each hyper-parameter value costs one K×K (or
/// (K+|Z|)×(K+|Z|)) factorization plus Θ(KM) matvecs, instead of the full
/// Θ(K²M) rebuild. The produced estimates are identical to
/// [`map_estimate`] with [`SolverKind::Fast`].
#[derive(Debug, Clone)]
pub struct MapSweep<'g> {
    /// Borrowed view of the design matrix — a fold sweep views a row
    /// subset of the shared full-data `G` without copying it.
    g: MatRef<'g>,
    /// `1/α_E,m²` for finite-prior columns, 0 for missing.
    a: Vec<f64>,
    /// Prior mean per column (0 for zero-mean priors and missing entries).
    prior_mean: Vec<f64>,
    missing: Vec<usize>,
    /// `G_F·A_F⁻¹·G_Fᵀ`.
    b_f: Matrix,
    /// `G_Z·G_Zᵀ` (empty when nothing is missing).
    b_z: Matrix,
    /// Woodbury shift for the missing block.
    tau: f64,
    /// `Gᵀ f` is *not* cached — `f` may vary per fold; rhs built per call.
    _private: (),
}

impl<'g> MapSweep<'g> {
    /// Builds the sweep cache for a fixed `(G, prior)` pair.
    ///
    /// # Errors
    ///
    /// Same structural conditions as [`map_estimate`].
    pub fn new(g: &'g Matrix, prior: &Prior) -> Result<Self> {
        Self::from_view(g.as_view(), prior)
    }

    /// Builds the sweep cache over a borrowed design-matrix view — the
    /// zero-copy entry point used by the cross-validation engines, whose
    /// per-fold training matrices are row-subset views of one shared `G`.
    ///
    /// # Errors
    ///
    /// Same structural conditions as [`map_estimate`].
    pub fn from_view(g: MatRef<'g>, prior: &Prior) -> Result<Self> {
        let (k, m) = g.shape();
        if prior.len() != m {
            return Err(BmfError::PriorShape {
                basis_terms: m,
                prior_entries: prior.len(),
            });
        }
        if prior.num_zero_precision() > k {
            return Err(BmfError::NotEnoughSamples {
                available: k,
                required: prior.num_zero_precision(),
                context: "missing-prior coefficients",
            });
        }
        crate::screen::finite_prior(prior)?;
        // Unit-hyper precisions give A directly.
        let unit = prior.precisions(1.0);
        let missing: Vec<usize> = unit
            .iter()
            .enumerate()
            .filter_map(|(i, &d)| bmf_linalg::is_exact_zero(d).then_some(i))
            .collect();
        // A^-1 over finite columns (0 on missing columns so they drop out
        // of B_F).
        let a_inv_f: Vec<f64> = unit
            .iter()
            .map(|&d| if d > 0.0 { 1.0 / d } else { 0.0 })
            .collect();
        let mut b_f = Matrix::zeros(k, k);
        outer_gram_diag_into(g, &a_inv_f, b_f.as_view_mut())?;
        let (b_z, tau) = if missing.is_empty() {
            (Matrix::zeros(0, 0), 1.0)
        } else {
            let indicator: Vec<f64> = (0..m)
                .map(|i| {
                    if bmf_linalg::is_exact_zero(unit[i]) {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect();
            let mut b_z = Matrix::zeros(k, k);
            outer_gram_diag_into(g, &indicator, b_z.as_view_mut())?;
            let tau = ((0..k).map(|i| b_z[(i, i)]).sum::<f64>() / missing.len() as f64).max(1e-12);
            (b_z, tau)
        };
        // Prior means (independent of hyper): alpha_E for NZM, 0 for ZM.
        let rhs1 = prior.rhs_contribution(1.0);
        let prior_mean: Vec<f64> = rhs1
            .iter()
            .zip(&unit)
            .map(|(&r, &d)| if d > 0.0 { r / d } else { 0.0 })
            .collect();
        Ok(MapSweep {
            g,
            a: unit,
            prior_mean,
            missing,
            b_f,
            b_z,
            tau,
            _private: (),
        })
    }

    /// Solves the MAP system for one hyper-parameter value and response
    /// vector `f`, overriding the prior family: `Some(kind)` forces the
    /// zero-mean (`prior_mean = 0`) or nonzero-mean behaviour regardless
    /// of the prior this sweep was built from.
    ///
    /// This lets prior selection (§IV-D) share one sweep — and thus the
    /// expensive Θ(K²M) kernels — between both families, since the prior
    /// *precisions* are identical and only the mean differs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MapSweep::solve`].
    // bmf-lint: allow(screen-reachability) -- solve_kind_into screens the response (screen::finite_values) before any arithmetic; the sweep matrices were screened at build time
    pub fn solve_with_kind(
        &self,
        f: &Vector,
        hyper: f64,
        kind: crate::prior::PriorKind,
    ) -> Result<Vector> {
        let mut ws = MapScratch::default();
        let mut out = vec![0.0; self.g.ncols()];
        self.solve_kind_into(f.as_slice(), hyper, kind, &mut ws, &mut out)?;
        Ok(Vector::from(out))
    }

    /// Solves the MAP system for one hyper-parameter value and response
    /// vector `f`, using the prior family this sweep was built from.
    ///
    /// # Errors
    ///
    /// Returns [`BmfError::SampleShape`] on a length mismatch and
    /// [`BmfError::Linalg`] when the (hyper-dependent) core is singular.
    pub fn solve(&self, f: &Vector, hyper: f64) -> Result<Vector> {
        self.solve_with_kind(f, hyper, crate::prior::PriorKind::NonZeroMean)
    }

    /// The allocation-free core of [`MapSweep::solve_with_kind`]: all
    /// intermediates live in `ws`, the coefficients land in `out` (length
    /// M, fully overwritten). The grid loops of cross-validation call
    /// this once per `(hyper, family)` cell with one shared workspace.
    /// Returns the degradation-ladder outcome of the factorization.
    pub(crate) fn solve_kind_into(
        &self,
        f: &[f64],
        hyper: f64,
        kind: crate::prior::PriorKind,
        ws: &mut MapScratch,
        out: &mut [f64],
    ) -> Result<Resilience> {
        let use_mean = match kind {
            crate::prior::PriorKind::NonZeroMean => true,
            crate::prior::PriorKind::ZeroMean => false,
        };
        self.solve_inner_into(f, hyper, use_mean, ws, out)
    }

    fn solve_inner_into(
        &self,
        f: &[f64],
        hyper: f64,
        use_mean: bool,
        ws: &mut MapScratch,
        out: &mut [f64],
    ) -> Result<Resilience> {
        let (k, m) = self.g.shape();
        if f.len() != k {
            return Err(BmfError::SampleShape {
                // bmf-lint: allow(no-alloc-in-into-kernels) -- error construction: allocates only on the failure path
                detail: format!("{k} design rows vs {} values", f.len()),
            });
        }
        if !(hyper > 0.0 && hyper.is_finite()) {
            return Err(BmfError::config(
                "hyper",
                // bmf-lint: allow(no-alloc-in-into-kernels) -- error construction: allocates only on the failure path
                format!("must be positive and finite, got {hyper}"),
            ));
        }
        if out.len() != m {
            return Err(LinalgError::DimensionMismatch {
                op: "map sweep (coefficient buffer)",
                lhs: (m, 1),
                rhs: (out.len(), 1),
            }
            .into());
        }
        crate::screen::finite_values("response values", f)?;
        let MapScratch {
            rhs,
            dt_inv,
            t,
            gt,
            y,
            u,
            uy,
            core,
            perm,
            ladder,
            woodbury: _,
        } = ws;
        // rhs = G^T f + h·A·prior_mean (mean dropped for zero-mean use).
        resize(rhs, m);
        matvec_transpose_into(self.g, f, rhs)?;
        if use_mean {
            for (r, (&a, &mean)) in rhs.iter_mut().zip(self.a.iter().zip(&self.prior_mean)) {
                *r += hyper * a * mean;
            }
        }
        // D-tilde inverse diag: 1/(h·a_m) finite, 1/tau missing.
        dt_inv.clear();
        dt_inv.extend(self.a.iter().map(|&a| {
            if a > 0.0 {
                1.0 / (hyper * a)
            } else {
                1.0 / self.tau
            }
        }));
        t.clear();
        t.extend(rhs.iter().zip(dt_inv.iter()).map(|(&r, &d)| d * r));
        resize(gt, k);
        matvec_into(self.g, t, gt)?;

        if self.missing.is_empty() {
            // core = I + B_F / h.
            core.reset_zeros(k, k);
            core.as_mut_slice().copy_from_slice(self.b_f.as_slice());
            let s = 1.0 / hyper;
            for x in core.as_mut_slice() {
                *x *= s;
            }
            for i in 0..k {
                core[(i, i)] += 1.0;
            }
            let (kind, resilience) =
                factor_spd_ladder(core, perm, ladder, &LadderPolicy::default())?;
            resize(y, k);
            y.copy_from_slice(gt);
            ladder_solve_in_place(kind, core, perm, ladder, y)?;
            resize(uy, m);
            matvec_transpose_into(self.g, y, uy)?;
            for i in 0..m {
                out[i] = t[i] - dt_inv[i] * uy[i];
            }
            return Ok(resilience);
        }

        // Augmented system (see bmf_linalg::woodbury docs): W has blocks
        // [I + B_F/h + B_Z/tau,  G_Z/tau; (G_Z/tau)^T, 0].
        let nz = self.missing.len();
        let n = k + nz;
        core.reset_zeros(n, n);
        for i in 0..k {
            for j in 0..k {
                core[(i, j)] = self.b_f[(i, j)] / hyper + self.b_z[(i, j)] / self.tau;
            }
            core[(i, i)] += 1.0;
        }
        for (jz, &z) in self.missing.iter().enumerate() {
            for i in 0..k {
                let v = self.g.get(i, z) / self.tau;
                core[(i, k + jz)] = v;
                core[(k + jz, i)] = v;
            }
        }
        let resilience = factor_lu_ladder(core, perm, ladder, &LadderPolicy::default())?;
        resize(u, n);
        u[..k].copy_from_slice(gt);
        for (jz, &z) in self.missing.iter().enumerate() {
            u[k + jz] = t[z];
        }
        resize(y, n);
        lu_solve_into(core, perm, u, y)?;
        resize(uy, m);
        matvec_transpose_into(self.g, &y[..k], uy)?;
        for (jz, &z) in self.missing.iter().enumerate() {
            uy[z] += y[k + jz];
        }
        for i in 0..m {
            out[i] = t[i] - dt_inv[i] * uy[i];
        }
        Ok(resilience)
    }
}

/// The diagonal of the posterior covariance `(D + GᵀG)⁻¹` computed
/// *without* forming the M × M inverse, via the Woodbury identity:
///
/// ```text
/// Σ_mm = 1/d_m − (1/d_m²)·g_mᵀ (I + G D⁻¹ Gᵀ)⁻¹ g_m
/// ```
///
/// where `g_m` is the m-th design column. Cost Θ(K²M + K³) — the same
/// order as one fast MAP solve — versus Θ(M³) for
/// [`posterior_covariance`]. Multiplying by the noise variance `σ₀²`
/// yields the coefficient posterior variances of eq. 28/31, i.e.
/// credible intervals for every fitted coefficient.
///
/// # Errors
///
/// * The structural conditions of [`map_estimate`].
/// * [`BmfError::Config`] when the prior has missing entries
///   (their posterior variance requires the augmented path — use
///   [`posterior_covariance`] at small M).
pub fn posterior_variance_diag(g: &Matrix, prior: &Prior, hyper: f64) -> Result<Vec<f64>> {
    let (k, m) = g.shape();
    if prior.len() != m {
        return Err(BmfError::PriorShape {
            basis_terms: m,
            prior_entries: prior.len(),
        });
    }
    if prior.num_zero_precision() > 0 {
        return Err(BmfError::config(
            "prior",
            "fast posterior variances require strictly positive prior precisions everywhere",
        ));
    }
    crate::screen::finite_matrix("design matrix", g)?;
    crate::screen::finite_prior(prior)?;
    let precisions = prior.precisions(hyper);
    let d_inv: Vec<f64> = precisions.iter().map(|d| 1.0 / d).collect();
    let mut core = g.outer_gram_diag(&d_inv)?;
    core.add_diagonal_mut(&vec![1.0; k])?;
    let chol = core.cholesky()?;
    // For every column m: s_m = g_mᵀ core⁻¹ g_m. Solve core⁻¹ against all
    // columns at once by passing G itself (k × m): X = core⁻¹ G, then
    // s_m = Σ_i G[i][m]·X[i][m].
    let x = chol.solve_matrix(g)?;
    let mut out = Vec::with_capacity(m);
    for j in 0..m {
        let mut s = 0.0;
        for i in 0..k {
            s += g[(i, j)] * x[(i, j)];
        }
        out.push(d_inv[j] - d_inv[j] * d_inv[j] * s);
    }
    Ok(out)
}

/// The posterior covariance `Σ_L = (D + GᵀG)⁻¹` (eq. 28/31, up to the
/// common `σ₀²` scale), computed explicitly via the direct solver.
///
/// Exposed for diagnostics (coefficient uncertainty); the fast solver
/// never forms it. Expensive: Θ(M³).
///
/// # Errors
///
/// Same conditions as [`map_estimate`].
pub fn posterior_covariance(g: &Matrix, prior: &Prior, hyper: f64) -> Result<Matrix> {
    let m = g.ncols();
    if prior.len() != m {
        return Err(BmfError::PriorShape {
            basis_terms: m,
            prior_entries: prior.len(),
        });
    }
    crate::screen::finite_matrix("design matrix", g)?;
    crate::screen::finite_prior(prior)?;
    let mut h = g.gram();
    h.add_diagonal_mut(&prior.precisions(hyper))?;
    Ok(h.cholesky()?.inverse()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prior::PriorKind;
    use bmf_stat::normal::StandardNormal;
    use bmf_stat::rng::seeded;

    fn random_design(k: usize, m: usize, seed: u64) -> Matrix {
        let mut rng = seeded(seed);
        let mut s = StandardNormal::new();
        Matrix::from_fn(k, m, |_, _| s.sample(&mut rng))
    }

    #[test]
    fn solvers_agree_zero_mean() {
        let g = random_design(8, 30, 1);
        let f = Vector::from_fn(8, |i| (i as f64).sin());
        let early: Vec<f64> = (0..30).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let prior = Prior::from_coeffs(PriorKind::ZeroMean, &early);
        let a = map_estimate_with(&g, &f, &prior, 0.5, SolverKind::Direct).unwrap();
        let b = map_estimate_with(&g, &f, &prior, 0.5, SolverKind::Fast).unwrap();
        let rel = a.sub(&b).unwrap().norm2() / a.norm2().max(1e-30);
        assert!(rel < 1e-8, "solver disagreement: {rel}");
    }

    #[test]
    fn solvers_agree_nonzero_mean_with_missing() {
        let g = random_design(10, 25, 2);
        let f = Vector::from_fn(10, |i| 0.3 * i as f64 - 1.0);
        let mut early: Vec<Option<f64>> = (0..25).map(|i| Some(((i + 1) as f64).recip())).collect();
        early[3] = None;
        early[17] = None;
        let prior = Prior::new(PriorKind::NonZeroMean, early);
        let a = map_estimate_with(&g, &f, &prior, 2.0, SolverKind::Direct).unwrap();
        let b = map_estimate_with(&g, &f, &prior, 2.0, SolverKind::Fast).unwrap();
        let rel = a.sub(&b).unwrap().norm2() / a.norm2().max(1e-30);
        assert!(rel < 1e-8, "solver disagreement: {rel}");
    }

    #[test]
    fn strong_prior_pins_to_prior_mean() {
        // With hyper → large, the nonzero-mean MAP estimate approaches
        // alpha_E regardless of the (sparse) data.
        let g = random_design(3, 6, 3);
        let early = [1.0, -0.5, 0.25, 2.0, -1.5, 0.75];
        let f = g.matvec(&Vector::from(early.to_vec())).unwrap();
        let prior = Prior::from_coeffs(PriorKind::NonZeroMean, &early);
        let a = map_estimate_with(&g, &f, &prior, 1e9, SolverKind::Fast).unwrap();
        for (ai, ei) in a.iter().zip(early.iter()) {
            assert!((ai - ei).abs() < 1e-4, "{ai} vs {ei}");
        }
    }

    #[test]
    fn weak_prior_approaches_least_squares() {
        // Overdetermined system with hyper → 0: MAP → ordinary LS.
        let g = random_design(40, 5, 4);
        let truth = Vector::from(vec![1.0, -2.0, 0.5, 0.0, 3.0]);
        let f = g.matvec(&truth).unwrap();
        let prior = Prior::from_coeffs(PriorKind::ZeroMean, &[1.0; 5]);
        let a = map_estimate_with(&g, &f, &prior, 1e-10, SolverKind::Direct).unwrap();
        for (ai, ti) in a.iter().zip(truth.iter()) {
            assert!((ai - ti).abs() < 1e-5, "{ai} vs {ti}");
        }
    }

    #[test]
    fn good_prior_beats_no_information_in_underdetermined_regime() {
        // K = 4 samples, M = 20 coefficients. With an informative
        // nonzero-mean prior the estimate should recover the truth much
        // better than the prior-free ridge answer.
        let g = random_design(4, 20, 5);
        let truth: Vec<f64> = (0..20)
            .map(|i| {
                if i % 7 == 0 {
                    1.0 / (1.0 + i as f64 / 4.0)
                } else {
                    0.02
                }
            })
            .collect();
        let f = g.matvec(&Vector::from(truth.clone())).unwrap();
        // Early model: truth + 10% perturbation.
        let early: Vec<f64> = truth
            .iter()
            .enumerate()
            .map(|(i, t)| t * (1.0 + 0.1 * ((i as f64).sin())))
            .collect();
        let prior = Prior::from_coeffs(PriorKind::NonZeroMean, &early);
        let a = map_estimate_with(&g, &f, &prior, 1.0, SolverKind::Fast).unwrap();
        let err: f64 = a
            .iter()
            .zip(&truth)
            .map(|(x, t)| (x - t) * (x - t))
            .sum::<f64>()
            .sqrt();
        let tnorm: f64 = truth.iter().map(|t| t * t).sum::<f64>().sqrt();
        assert!(err / tnorm < 0.15, "relative coeff error {}", err / tnorm);
    }

    #[test]
    fn missing_prior_coefficient_is_learned_from_data() {
        // Coefficient 2 has no prior; enough samples exist to identify it.
        let g = random_design(10, 4, 6);
        let truth = Vector::from(vec![1.0, 0.5, -2.0, 0.25]);
        let f = g.matvec(&truth).unwrap();
        let prior = Prior::new(
            PriorKind::NonZeroMean,
            vec![Some(1.0), Some(0.5), None, Some(0.25)],
        );
        let a = map_estimate_with(&g, &f, &prior, 1.0, SolverKind::Fast).unwrap();
        assert!((a[2] + 2.0).abs() < 0.1, "missing-prior coeff {}", a[2]);
    }

    #[test]
    fn too_many_missing_rejected() {
        let g = random_design(2, 5, 7);
        let f = Vector::zeros(2);
        let prior = Prior::new(
            PriorKind::ZeroMean,
            vec![None, None, None, Some(1.0), Some(1.0)],
        );
        assert!(matches!(
            map_estimate_with(&g, &f, &prior, 1.0, SolverKind::Fast),
            Err(BmfError::NotEnoughSamples { .. })
        ));
    }

    #[test]
    fn shape_validation() {
        let g = random_design(3, 4, 8);
        let prior = Prior::from_coeffs(PriorKind::ZeroMean, &[1.0; 3]); // wrong len
        assert!(matches!(
            map_estimate_with(&g, &Vector::zeros(3), &prior, 1.0, SolverKind::Fast),
            Err(BmfError::PriorShape { .. })
        ));
        let prior = Prior::from_coeffs(PriorKind::ZeroMean, &[1.0; 4]);
        assert!(matches!(
            map_estimate_with(&g, &Vector::zeros(5), &prior, 1.0, SolverKind::Fast),
            Err(BmfError::SampleShape { .. })
        ));
    }

    #[test]
    fn sweep_matches_one_shot_solver() {
        let g = random_design(7, 18, 11);
        let f = Vector::from_fn(7, |i| (i as f64 * 0.9).cos());
        for kind in [PriorKind::ZeroMean, PriorKind::NonZeroMean] {
            let mut early: Vec<Option<f64>> =
                (0..18).map(|i| Some(0.5 / (1.0 + i as f64))).collect();
            early[4] = None;
            let prior = Prior::new(kind, early);
            let sweep = MapSweep::new(&g, &prior).unwrap();
            for &h in &[1e-3, 0.1, 1.0, 30.0] {
                let a = sweep.solve(&f, h).unwrap();
                let b = map_estimate_with(&g, &f, &prior, h, SolverKind::Direct).unwrap();
                let rel = a.sub(&b).unwrap().norm2() / b.norm2().max(1e-30);
                assert!(rel < 1e-7, "sweep mismatch at h={h} kind={kind:?}: {rel}");
            }
        }
    }

    #[test]
    fn sweep_without_missing_matches_too() {
        let g = random_design(5, 12, 13);
        let f = Vector::from_fn(5, |i| i as f64 - 2.0);
        let prior = Prior::from_coeffs(
            PriorKind::NonZeroMean,
            &(0..12).map(|i| 1.0 + i as f64 * 0.1).collect::<Vec<_>>(),
        );
        let sweep = MapSweep::new(&g, &prior).unwrap();
        let a = sweep.solve(&f, 0.7).unwrap();
        let b = map_estimate_with(&g, &f, &prior, 0.7, SolverKind::Fast).unwrap();
        assert!(a.sub(&b).unwrap().norm2() < 1e-9 * b.norm2().max(1.0));
    }

    #[test]
    fn fast_variance_diag_matches_explicit_inverse() {
        let g = random_design(6, 10, 21);
        let prior = Prior::from_coeffs(
            PriorKind::ZeroMean,
            &(0..10).map(|i| 0.4 + 0.1 * i as f64).collect::<Vec<_>>(),
        );
        let fast = posterior_variance_diag(&g, &prior, 1.7).unwrap();
        let full = posterior_covariance(&g, &prior, 1.7).unwrap();
        for j in 0..10 {
            assert!(
                (fast[j] - full[(j, j)]).abs() < 1e-9 * full[(j, j)].abs().max(1e-12),
                "j={j}: {} vs {}",
                fast[j],
                full[(j, j)]
            );
            assert!(fast[j] > 0.0);
        }
    }

    #[test]
    fn fast_variance_rejects_missing_priors() {
        let g = random_design(4, 5, 22);
        let prior = Prior::new(
            PriorKind::ZeroMean,
            vec![Some(1.0), Some(1.0), None, Some(1.0), Some(1.0)],
        );
        assert!(matches!(
            posterior_variance_diag(&g, &prior, 1.0),
            Err(BmfError::Config { .. })
        ));
    }

    #[test]
    fn posterior_covariance_is_spd_and_shrinks_with_data() {
        let prior = Prior::from_coeffs(PriorKind::ZeroMean, &[1.0; 6]);
        let g_small = random_design(2, 6, 9);
        let g_big = random_design(30, 6, 9);
        let c_small = posterior_covariance(&g_small, &prior, 1.0).unwrap();
        let c_big = posterior_covariance(&g_big, &prior, 1.0).unwrap();
        for i in 0..6 {
            assert!(c_small[(i, i)] > 0.0);
            assert!(
                c_big[(i, i)] < c_small[(i, i)],
                "more data must shrink posterior variance"
            );
        }
    }
}
