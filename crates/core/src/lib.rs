//! Bayesian Model Fusion (BMF) for large-scale AMS performance modeling.
//!
//! This crate implements the algorithm of Wang et al., *"Bayesian Model
//! Fusion: Large-Scale Performance Modeling of Analog and Mixed-Signal
//! Circuits by Reusing Early-Stage Data"* (DAC 2013 / IEEE TCAD 2016):
//! fit a late-stage (post-layout) performance model from *very few*
//! late-stage simulation samples by using the early-stage (schematic)
//! model coefficients as a Bayesian prior.
//!
//! The pieces, mapped to the paper:
//!
//! * [`model::PerformanceModel`] — `f(x) ≈ Σ α_m g_m(x)` over an
//!   orthonormal Hermite basis (eq. 2);
//! * [`least_squares`] — the classical overdetermined baseline (eq. 6–9);
//! * [`omp`] — orthogonal matching pursuit, the state-of-the-art sparse
//!   regression baseline \[13\] the paper compares against;
//! * [`prior`] — zero-mean (eq. 12–17) and nonzero-mean (eq. 19–20)
//!   coefficient priors, missing-prior handling (eq. 50–52), and prior
//!   mapping for multifinger layout extraction (eq. 36–49);
//! * [`map_estimate`] — the MAP posterior solve (eq. 28–35), with both
//!   the *direct* M×M Cholesky solver and the *fast* Woodbury low-rank
//!   solver of §IV-C (eq. 53–58), which are numerically identical;
//! * [`hyper`] — N-fold cross-validation for the hyper-parameter
//!   (`σ₀` or `η`, §IV-D);
//! * [`select`] — prior selection (BMF-PS): cross-validate both priors
//!   and keep the better one;
//! * [`fusion::BmfFitter`] — the top-level Algorithm 1;
//! * [`options::FitOptions`] — one configuration type shared by every
//!   fitting entry point;
//! * [`batch::BatchFitter`] — the parallel batch engine that fits many
//!   performance metrics over one shared sample-point set, evaluating
//!   the design matrix once and sharing cross-validation kernels;
//! * [`service::FitService`] — the long-lived serving facade: a sharded
//!   model registry, an MPSC fit queue, and a coalescer that groups
//!   concurrent requests sharing a point set into one batch run;
//! * [`snapshot::ModelSnapshot`] — a fitted model plus its provenance
//!   (options, selected prior, CV record, resilience), the unit the
//!   service exports/imports and `bmf-persist` serializes to disk;
//! * [`screen`] — the boundary screens (NaN/∞ rejection) shared by
//!   every entry point, public so persistence layers can apply the same
//!   discipline to data crossing a process boundary.
//!
//! # Quickstart
//!
//! ```
//! use bmf_basis::basis::OrthonormalBasis;
//! use bmf_core::fusion::BmfFitter;
//!
//! # fn main() -> Result<(), bmf_core::BmfError> {
//! // A 3-variable linear model whose early-stage coefficients are known.
//! let basis = OrthonormalBasis::linear(3);
//! let early = vec![1.0, 0.8, 0.0, -0.5]; // intercept + 3 coefficients
//!
//! // Five late-stage "simulations" of f(x) = 1.1 + 0.9 x1 - 0.45 x3.
//! let truth = |x: &[f64]| 1.1 + 0.9 * x[0] - 0.45 * x[2];
//! let points: Vec<Vec<f64>> = vec![
//!     vec![0.5, -1.0, 0.2], vec![-0.3, 0.4, 1.0], vec![1.2, 0.1, -0.6],
//!     vec![0.0, 0.9, 0.4], vec![-0.8, -0.2, -1.1],
//! ];
//! let values: Vec<f64> = points.iter().map(|p| truth(p)).collect();
//!
//! let fit = BmfFitter::new(basis, early.iter().map(|&a| Some(a)).collect())?
//!     .with_options(bmf_core::options::FitOptions::new().seed(7))
//!     .fit(&points, &values)?;
//! // Five samples suffice because the prior carries the structure.
//! let pred = fit.model.predict(&[1.0, 0.0, 0.0]);
//! assert!((pred - 2.0).abs() < 0.2);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod applications;
pub mod batch;
mod error;
pub mod fusion;
pub mod hyper;
pub mod lasso;
pub mod least_squares;
pub mod map_estimate;
pub mod model;
pub mod omp;
pub mod options;
pub mod prior;
pub mod screen;
pub mod select;
pub mod sequential;
pub mod service;
pub mod snapshot;
pub mod workspace;

pub use error::BmfError;

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, BmfError>;
