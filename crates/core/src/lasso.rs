//! LASSO (ℓ₁-regularized least squares) by cyclic coordinate descent —
//! the other sparse-regression family the paper cites as state of the art
//! (McConaghy's elastic-net-based modeling \[15\]; here with pure ℓ₁,
//! the elastic-net α = 1 corner).
//!
//! Solves `min_α ½‖f − Gα‖² + λ·Σ_{m>0}|α_m|` (the intercept, when the
//! first basis term is constant, is conventionally left unpenalized).
//! The regularization weight is chosen on a geometric path by holdout
//! validation, warm-starting each solution from the previous one.

use bmf_basis::basis::OrthonormalBasis;
use bmf_linalg::view::matvec_into;
use bmf_linalg::{Matrix, Vector};
use bmf_stat::rng::seeded;

use crate::model::PerformanceModel;
use crate::{BmfError, Result};

/// LASSO configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LassoConfig {
    /// Number of λ values on the geometric path from `λ_max` down to
    /// `λ_max · min_ratio`.
    pub path_len: usize,
    /// Smallest λ as a fraction of `λ_max` (the value that zeroes every
    /// coefficient).
    pub min_ratio: f64,
    /// Coordinate-descent convergence tolerance (max coefficient change,
    /// relative to the response scale).
    pub tol: f64,
    /// Maximum coordinate-descent sweeps per λ.
    pub max_sweeps: usize,
    /// Fraction of samples held out to pick λ.
    pub validation_fraction: f64,
    /// Seed for the train/validation shuffle.
    pub seed: u64,
    /// Do not penalize the first coefficient when the first basis term is
    /// the constant (default true).
    pub free_intercept: bool,
}

impl Default for LassoConfig {
    fn default() -> Self {
        LassoConfig {
            path_len: 30,
            min_ratio: 1e-4,
            tol: 1e-7,
            max_sweeps: 300,
            validation_fraction: 0.25,
            seed: 0,
            free_intercept: true,
        }
    }
}

/// Result of a LASSO fit.
#[derive(Debug, Clone, PartialEq)]
pub struct LassoFit {
    /// Full coefficient vector.
    pub coeffs: Vec<f64>,
    /// The selected regularization weight.
    pub lambda: f64,
    /// Holdout validation error at the selected λ.
    pub validation_error: f64,
    /// Number of non-zero coefficients.
    pub active: usize,
}

/// Runs LASSO on an explicit design matrix.
///
/// # Errors
///
/// * [`BmfError::SampleShape`] when `f.len() != g.nrows()`.
/// * [`BmfError::NotEnoughSamples`] with fewer than 4 samples.
/// * [`BmfError::Config`] for bad configuration values (the error names
///   the offending parameter).
pub fn fit_lasso_design(g: &Matrix, f: &Vector, config: &LassoConfig) -> Result<LassoFit> {
    let (k, m) = g.shape();
    if f.len() != k {
        return Err(BmfError::SampleShape {
            detail: format!("{k} design rows vs {} values", f.len()),
        });
    }
    if k < 4 {
        return Err(BmfError::NotEnoughSamples {
            available: k,
            required: 4,
            context: "LASSO",
        });
    }
    if config.path_len == 0 {
        return Err(BmfError::config(
            "path_len",
            "LASSO path needs path_len >= 1",
        ));
    }
    if !(config.min_ratio > 0.0 && config.min_ratio < 1.0) {
        return Err(BmfError::config(
            "min_ratio",
            format!("must satisfy 0 < min_ratio < 1, got {}", config.min_ratio),
        ));
    }
    if !(0.0..0.9).contains(&config.validation_fraction) {
        return Err(BmfError::config(
            "validation_fraction",
            format!("must be in [0, 0.9), got {}", config.validation_fraction),
        ));
    }
    crate::screen::finite_matrix("design matrix", g)?;
    crate::screen::finite_values("response values", f.as_slice())?;

    // Train/validation split.
    let mut order: Vec<usize> = (0..k).collect();
    seeded(config.seed).shuffle(&mut order);
    let n_val = ((k as f64 * config.validation_fraction) as usize).min(k - 2);
    let (val_idx, train_idx) = order.split_at(n_val);
    let kt = train_idx.len();
    let gt = Matrix::from_fn(kt, m, |i, j| g[(train_idx[i], j)]);
    let ft = Vector::from_fn(kt, |i| f[train_idx[i]]);
    let gv = Matrix::from_fn(val_idx.len(), m, |i, j| g[(val_idx[i], j)]);
    let fv = Vector::from_fn(val_idx.len(), |i| f[val_idx[i]]);
    let fv_norm = fv.norm2().max(f64::MIN_POSITIVE);

    // Column squared norms (coordinate-descent denominators).
    let col_sq: Vec<f64> = (0..m)
        .map(|j| (0..kt).map(|i| gt[(i, j)] * gt[(i, j)]).sum())
        .collect();

    // λ_max: smallest λ with an all-zero penalized solution.
    let corr0 = gt.matvec_transpose(&ft)?;
    let mut lambda_max = 0.0f64;
    for j in 0..m {
        if config.free_intercept && j == 0 {
            continue;
        }
        lambda_max = lambda_max.max(corr0[j].abs());
    }
    if bmf_linalg::is_exact_zero(lambda_max) {
        lambda_max = 1.0;
    }

    let mut alpha = vec![0.0; m];
    // Clone: the descent mutates the residual in place while `ft` is
    // still needed for the convergence scale below.
    let mut residual = ft.clone();
    // If the intercept is free, initialize it to the training mean.
    if config.free_intercept && m > 0 && col_sq[0] > 0.0 {
        let a0 = corr0[0] / col_sq[0];
        alpha[0] = a0;
        for i in 0..kt {
            residual[i] -= a0 * gt[(i, 0)];
        }
    }

    let scale = ft.norm2().max(f64::MIN_POSITIVE);
    let mut best: Option<(f64, f64, Vec<f64>)> = None; // (val err, lambda, coeffs)
    let mut pred = vec![0.0; val_idx.len()];
    for step in 0..config.path_len {
        let t = step as f64 / (config.path_len.saturating_sub(1)).max(1) as f64;
        let lambda = lambda_max * config.min_ratio.powf(t);
        // Cyclic coordinate descent, warm-started from the previous λ.
        for _ in 0..config.max_sweeps {
            let mut max_delta = 0.0f64;
            for j in 0..m {
                if bmf_linalg::is_exact_zero(col_sq[j]) {
                    continue;
                }
                // rho = g_j^T residual + col_sq * alpha_j (partial refit).
                let mut rho = alpha[j] * col_sq[j];
                for i in 0..kt {
                    rho += gt[(i, j)] * residual[i];
                }
                let new = if config.free_intercept && j == 0 {
                    rho / col_sq[j]
                } else {
                    soft_threshold(rho, lambda) / col_sq[j]
                };
                let delta = new - alpha[j];
                if bmf_linalg::is_exact_nonzero(delta) {
                    for i in 0..kt {
                        residual[i] -= delta * gt[(i, j)];
                    }
                    alpha[j] = new;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < config.tol * scale {
                break;
            }
        }
        // Validation error at this λ, predicting into the reused buffer.
        // The fused difference reproduces `pred.sub(&fv)?.norm2()` bit for
        // bit: axpy(-1.0) is exact IEEE subtraction and norm2 sums the
        // squares in index order.
        let val_err = if val_idx.is_empty() {
            residual.norm2() / scale
        } else {
            matvec_into(gv.as_view(), &alpha, &mut pred)?;
            let mut sum = 0.0;
            for (p, v) in pred.iter().zip(fv.iter()) {
                let d = p - v;
                sum += d * d;
            }
            sum.sqrt() / fv_norm
        };
        if best.as_ref().is_none_or(|(e, _, _)| val_err < *e) {
            // Clone: only on improvement; `alpha` keeps mutating as the
            // path continues, so the winner needs its own copy.
            best = Some((val_err, lambda, alpha.clone()));
        }
    }
    let (validation_error, lambda, coeffs) = best.ok_or(BmfError::Internal {
        detail: "lasso λ path produced no candidate",
    })?;
    let active = coeffs.iter().filter(|a| a.abs() > 0.0).count();
    Ok(LassoFit {
        coeffs,
        lambda,
        validation_error,
        active,
    })
}

/// Runs LASSO over a basis and sample points, returning a fitted model.
///
/// # Errors
///
/// Same conditions as [`fit_lasso_design`].
pub fn fit_lasso(
    basis: &OrthonormalBasis,
    points: &[Vec<f64>],
    values: &[f64],
    config: &LassoConfig,
) -> Result<LassoModelFit> {
    if points.len() != values.len() {
        return Err(BmfError::SampleShape {
            detail: format!("{} points vs {} values", points.len(), values.len()),
        });
    }
    crate::screen::points(points, basis.num_vars())?;
    let g = basis.design_matrix(points.iter().map(|p| p.as_slice()));
    let f = Vector::from(values);
    let fit = fit_lasso_design(&g, &f, config)?;
    Ok(LassoModelFit {
        model: PerformanceModel::new(basis.clone(), fit.coeffs)?,
        lambda: fit.lambda,
        validation_error: fit.validation_error,
        active: fit.active,
    })
}

/// A LASSO fit packaged as a [`PerformanceModel`].
#[derive(Debug, Clone, PartialEq)]
pub struct LassoModelFit {
    /// The fitted model.
    pub model: PerformanceModel,
    /// Selected regularization weight.
    pub lambda: f64,
    /// Holdout validation error.
    pub validation_error: f64,
    /// Non-zero coefficient count.
    pub active: usize,
}

fn soft_threshold(x: f64, lambda: f64) -> f64 {
    if x > lambda {
        x - lambda
    } else if x < -lambda {
        x + lambda
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmf_stat::normal::StandardNormal;

    fn random_points(k: usize, r: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = seeded(seed);
        let mut s = StandardNormal::new();
        (0..k).map(|_| s.sample_vec(&mut rng, r)).collect()
    }

    #[test]
    fn soft_threshold_cases() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(-0.5, 1.0), 0.0);
    }

    #[test]
    fn recovers_sparse_truth() {
        let basis = OrthonormalBasis::linear(30);
        let points = random_points(60, 30, 1);
        let values: Vec<f64> = points
            .iter()
            .map(|p| 2.0 + 1.5 * p[4] - 0.8 * p[16])
            .collect();
        let fit = fit_lasso(&basis, &points, &values, &LassoConfig::default()).unwrap();
        let c = fit.model.coeffs();
        assert!((c[0] - 2.0).abs() < 0.1, "intercept {}", c[0]);
        assert!((c[5] - 1.5).abs() < 0.1, "c5 {}", c[5]);
        assert!((c[17] + 0.8).abs() < 0.1, "c17 {}", c[17]);
        // Selection is sparse.
        assert!(fit.active <= 12, "active {}", fit.active);
    }

    #[test]
    fn underdetermined_sparse_recovery() {
        let basis = OrthonormalBasis::linear(80);
        let points = random_points(40, 80, 2);
        let values: Vec<f64> = points.iter().map(|p| 1.0 + 2.0 * p[10] + p[50]).collect();
        let fit = fit_lasso(&basis, &points, &values, &LassoConfig::default()).unwrap();
        let err = fit
            .model
            .relative_error(points.iter().map(|p| p.as_slice()), &values)
            .unwrap();
        assert!(err < 0.06, "err {err}");
    }

    #[test]
    fn heavier_penalty_is_sparser() {
        // Compare active counts at two fixed path positions by forcing a
        // one-point path each.
        let basis = OrthonormalBasis::linear(20);
        let points = random_points(50, 20, 3);
        let values: Vec<f64> = points
            .iter()
            .map(|p| {
                p.iter()
                    .enumerate()
                    .map(|(i, x)| x / (1.0 + i as f64))
                    .sum()
            })
            .collect();
        let strong = LassoConfig {
            path_len: 1,
            min_ratio: 0.5, // lambda stays at lambda_max * 0.5^0 = lambda_max
            ..LassoConfig::default()
        };
        let weak = LassoConfig {
            path_len: 30,
            ..LassoConfig::default()
        };
        let fs = fit_lasso(&basis, &points, &values, &strong).unwrap();
        let fw = fit_lasso(&basis, &points, &values, &weak).unwrap();
        assert!(fs.active <= fw.active, "{} vs {}", fs.active, fw.active);
    }

    #[test]
    fn deterministic_given_seed() {
        let basis = OrthonormalBasis::linear(10);
        let points = random_points(25, 10, 4);
        let values: Vec<f64> = points.iter().map(|p| p[0] - p[9]).collect();
        let a = fit_lasso(&basis, &points, &values, &LassoConfig::default()).unwrap();
        let b = fit_lasso(&basis, &points, &values, &LassoConfig::default()).unwrap();
        assert_eq!(a.model.coeffs(), b.model.coeffs());
        assert_eq!(a.lambda, b.lambda);
    }

    #[test]
    fn config_validation() {
        let basis = OrthonormalBasis::linear(3);
        let points = random_points(10, 3, 5);
        let values = vec![1.0; 10];
        let bad = LassoConfig {
            path_len: 0,
            ..LassoConfig::default()
        };
        assert!(matches!(
            fit_lasso(&basis, &points, &values, &bad),
            Err(BmfError::Config { .. })
        ));
        assert!(matches!(
            fit_lasso(&basis, &points[..2], &values[..2], &LassoConfig::default()),
            Err(BmfError::NotEnoughSamples { .. })
        ));
    }

    #[test]
    fn intercept_not_shrunk() {
        // Large constant offset must be captured exactly even with strong
        // regularization elsewhere.
        let basis = OrthonormalBasis::linear(5);
        let points = random_points(40, 5, 6);
        let values: Vec<f64> = points.iter().map(|p| 100.0 + 0.01 * p[0]).collect();
        let fit = fit_lasso(&basis, &points, &values, &LassoConfig::default()).unwrap();
        assert!((fit.model.coeffs()[0] - 100.0).abs() < 0.1);
    }
}
