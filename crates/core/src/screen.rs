//! Boundary screening: non-finite and dimension validation shared by
//! every public fitting entry point.
//!
//! Layout-extracted data can carry NaN/∞ (failed simulations, parse
//! errors), and those values would otherwise flow silently through the
//! linear algebra — a NaN response, for example, never trips a
//! factorization error because the factorization only sees the design
//! matrix. Screening at the boundary turns every such input into a
//! structured [`BmfError::NonFiniteInput`] that names the offending
//! input, which is the first half of the crate's panic-free contract
//! (the solver degradation ladder in [`bmf_linalg::resilience`] is the
//! other half).
//!
//! The module is public so downstream layers that accept model data from
//! outside the process — notably the `bmf-persist` artifact decoder —
//! can apply the same screens before anything reaches a solver or the
//! service registry.

use bmf_linalg::Matrix;

use crate::prior::Prior;
use crate::{BmfError, Result};

/// Rejects NaN/±∞ anywhere in `xs`.
pub fn finite_values(what: &'static str, xs: &[f64]) -> Result<()> {
    if xs.iter().any(|x| !x.is_finite()) {
        return Err(BmfError::NonFiniteInput { what });
    }
    Ok(())
}

/// Rejects NaN/±∞ anywhere in `m`.
pub(crate) fn finite_matrix(what: &'static str, m: &Matrix) -> Result<()> {
    if !m.is_finite() {
        return Err(BmfError::NonFiniteInput { what });
    }
    Ok(())
}

/// Rejects NaN/±∞ anywhere in a set of sample rows. Dimension checks
/// happen separately (against a basis): the service registers point sets
/// before knowing which basis will fit over them.
pub fn finite_rows(what: &'static str, rows: &[Vec<f64>]) -> Result<()> {
    if rows.iter().any(|r| r.iter().any(|x| !x.is_finite())) {
        return Err(BmfError::NonFiniteInput { what });
    }
    Ok(())
}

/// Rejects NaN/±∞ among the *present* entries of an optional coefficient
/// list (`None` = missing prior, which is always fine).
pub fn finite_early(what: &'static str, early: &[Option<f64>]) -> Result<()> {
    if early.iter().flatten().any(|a| !a.is_finite()) {
        return Err(BmfError::NonFiniteInput { what });
    }
    Ok(())
}

/// Rejects NaN/±∞ among the present early coefficients of `prior`.
/// (A NaN early value would otherwise be silently routed through the
/// zero-precision path, masking the contamination as "missing prior".)
pub(crate) fn finite_prior(prior: &Prior) -> Result<()> {
    finite_early("prior early coefficients", prior.early_values())
}

/// Validates every sample point against the basis input dimension and
/// screens its coordinates for NaN/±∞. Performed *before* the design
/// matrix is built, because the basis evaluator treats a wrong-dimension
/// point as a programming error.
pub fn points(points: &[Vec<f64>], dim: usize) -> Result<()> {
    for (i, p) in points.iter().enumerate() {
        if p.len() != dim {
            return Err(BmfError::SampleShape {
                detail: format!("point {i} has dimension {}, basis expects {dim}", p.len()),
            });
        }
        if p.iter().any(|x| !x.is_finite()) {
            return Err(BmfError::NonFiniteInput {
                what: "sample points",
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prior::PriorKind;

    #[test]
    fn finite_values_accepts_clean_and_rejects_nan_inf() {
        assert!(finite_values("values", &[1.0, -2.0, 0.0]).is_ok());
        assert!(matches!(
            finite_values("values", &[1.0, f64::NAN]),
            Err(BmfError::NonFiniteInput { what: "values" })
        ));
        assert!(finite_values("values", &[f64::INFINITY]).is_err());
    }

    #[test]
    fn points_validate_dimension_then_finiteness() {
        assert!(points(&[vec![1.0, 2.0]], 2).is_ok());
        assert!(matches!(
            points(&[vec![1.0]], 2),
            Err(BmfError::SampleShape { .. })
        ));
        assert!(matches!(
            points(&[vec![1.0, f64::NAN]], 2),
            Err(BmfError::NonFiniteInput { .. })
        ));
    }

    #[test]
    fn prior_screening_ignores_missing_entries() {
        let ok = Prior::new(PriorKind::ZeroMean, vec![Some(1.0), None]);
        assert!(finite_prior(&ok).is_ok());
        let bad = Prior::new(PriorKind::ZeroMean, vec![Some(f64::NAN), None]);
        assert!(finite_prior(&bad).is_err());
    }
}
