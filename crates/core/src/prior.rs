//! Coefficient priors built from early-stage models (§III-A, §IV-A/B).
//!
//! BMF encodes the early-stage coefficients `α_E` as a Gaussian prior on
//! the late-stage coefficients `α_L`:
//!
//! * **zero-mean** (eq. 12, 16): `α_L,m ~ N(0, α_E,m²)` — the early
//!   coefficient fixes the *magnitude* scale only;
//! * **nonzero-mean** (eq. 19): `α_L,m ~ N(α_E,m, λ²·α_E,m²)` — sign and
//!   magnitude both carry over.
//!
//! Coefficients with *no* early-stage information (extra post-layout basis
//! functions, §IV-B) get an infinite-variance prior; per eq. 50/52 only
//! `σ⁻¹ = 0` ever enters the math, so they are represented as `None`
//! entries and contribute zero prior precision.
//!
//! [`Prior::mapped`] applies the *prior mapping* of §IV-A: schematic
//! coefficients are spread over multifinger layout terms as
//! `β = α_E/√T_m` (eq. 49) before the prior is formed.

use bmf_basis::expansion::ExpandedBasis;

use crate::{BmfError, Result};

/// Which Gaussian prior family to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PriorKind {
    /// `α_L,m ~ N(0, α_E,m²)` — magnitude information only (BMF-ZM).
    ZeroMean,
    /// `α_L,m ~ N(α_E,m, λ²α_E,m²)` — sign and magnitude (BMF-NZM).
    NonZeroMean,
}

impl std::fmt::Display for PriorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PriorKind::ZeroMean => write!(f, "zero-mean"),
            PriorKind::NonZeroMean => write!(f, "nonzero-mean"),
        }
    }
}

/// Relative floor applied to tiny early coefficients when forming prior
/// *precisions*: an exactly-zero `α_E,m` would otherwise pin the late
/// coefficient infinitely hard. The floor is `REL_FLOOR · max_m |α_E,m|`
/// — and when that floor itself is degenerate (an all-zero or
/// sub-epsilon prior, where even the floored precision would overflow),
/// every entry routes through the missing-prior zero-precision path of
/// §IV-B instead.
const REL_FLOOR: f64 = 1e-8;

/// A per-coefficient Gaussian prior derived from early-stage coefficients.
///
/// Entries are `Some(α_E,m)` where early knowledge exists and `None` for
/// the missing-prior coefficients of §IV-B.
///
/// # Example
///
/// ```
/// use bmf_core::prior::{Prior, PriorKind};
///
/// // Three known early coefficients, one post-layout-only term.
/// let prior = Prior::new(
///     PriorKind::NonZeroMean,
///     vec![Some(2.0), Some(-0.5), Some(0.1), None],
/// );
/// assert_eq!(prior.len(), 4);
/// assert_eq!(prior.num_missing(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Prior {
    kind: PriorKind,
    early: Vec<Option<f64>>,
}

impl Prior {
    /// Creates a prior from per-coefficient early values (`None` =
    /// missing prior knowledge).
    pub fn new(kind: PriorKind, early: Vec<Option<f64>>) -> Self {
        Prior { kind, early }
    }

    /// Creates a prior where every coefficient has early knowledge.
    pub fn from_coeffs(kind: PriorKind, early: &[f64]) -> Self {
        Prior {
            kind,
            early: early.iter().map(|&a| Some(a)).collect(),
        }
    }

    /// Builds the prior for a multifinger-expanded layout basis (§IV-A):
    /// schematic coefficients are mapped through `β = α_E/√T_m` (eq. 49),
    /// and `extra_missing` additional trailing coefficients (e.g. appended
    /// parasitic terms) are marked as missing.
    ///
    /// # Errors
    ///
    /// Returns [`BmfError::PriorShape`] when `schematic_coeffs` does not
    /// match the expansion's schematic term count.
    pub fn mapped(
        kind: PriorKind,
        expansion: &ExpandedBasis,
        schematic_coeffs: &[f64],
        extra_missing: usize,
    ) -> Result<Self> {
        if schematic_coeffs.len() != expansion.num_schematic_terms() {
            return Err(BmfError::PriorShape {
                basis_terms: expansion.num_schematic_terms(),
                prior_entries: schematic_coeffs.len(),
            });
        }
        let beta = expansion.map_coefficients(schematic_coeffs);
        let mut early: Vec<Option<f64>> = beta.into_iter().map(Some).collect();
        early.extend(std::iter::repeat_n(None, extra_missing));
        Ok(Prior { kind, early })
    }

    /// The prior family.
    pub fn kind(&self) -> PriorKind {
        self.kind
    }

    /// Returns a copy with the other prior family (used by prior
    /// selection).
    pub fn with_kind(&self, kind: PriorKind) -> Prior {
        Prior {
            kind,
            early: self.early.clone(),
        }
    }

    /// Number of coefficients covered.
    pub fn len(&self) -> usize {
        self.early.len()
    }

    /// `true` when the prior covers no coefficients.
    pub fn is_empty(&self) -> bool {
        self.early.is_empty()
    }

    /// The per-coefficient early values.
    pub fn early_values(&self) -> &[Option<f64>] {
        &self.early
    }

    /// Number of coefficients with missing prior knowledge (`None`
    /// entries). Degenerate-but-present entries are *not* counted here;
    /// see [`Prior::num_zero_precision`] for the count the solvers use.
    pub fn num_missing(&self) -> usize {
        self.early.iter().filter(|e| e.is_none()).count()
    }

    /// Number of coefficients contributing zero prior precision: missing
    /// entries, plus — when the prior *scale* is degenerate (every early
    /// coefficient zero or sub-epsilon, see [`Prior::floor`]) — all
    /// present entries, which are then routed through the missing-prior
    /// path of §IV-B. This — not [`Prior::num_missing`] — is what the
    /// solvers must compare against the sample budget, since every
    /// zero-precision coefficient has to be identified from data alone.
    pub fn num_zero_precision(&self) -> usize {
        let floor = self.floor();
        (0..self.len())
            .filter(|&m| self.effective_magnitude(m, floor).is_none())
            .count()
    }

    /// Magnitude of entry `m` when it carries usable prior information,
    /// floored at `floor` so an individual tiny coefficient in an
    /// otherwise healthy prior keeps a huge-but-finite precision (the
    /// historical behaviour, bit-identical for every prior with a usable
    /// scale). Returns `None` for missing priors — and for *every* entry
    /// when the scale itself is degenerate (`floor² == 0`: an all-zero
    /// or sub-epsilon prior, whose floored precision would overflow to
    /// infinity); those route through the zero-precision path of §IV-B
    /// so the data, not a meaningless prior, determines the fit.
    fn effective_magnitude(&self, m: usize, floor: f64) -> Option<f64> {
        if bmf_linalg::is_exact_zero(floor * floor) {
            return None;
        }
        self.early[m].map(|a| a.abs().max(floor))
    }

    /// Prior floor `REL_FLOOR · max_m |α_E,m|`; zero exactly when the
    /// prior carries no usable scale (all entries missing, zero, or so
    /// small the floored precision would not be representable).
    fn floor(&self) -> f64 {
        let max = self
            .early
            .iter()
            .flatten()
            .fold(0.0f64, |acc, a| acc.max(a.abs()));
        REL_FLOOR * max
    }

    /// Prior precision diagonal for the unified MAP system
    /// `(diag(precision) + GᵀG)·α = rhs` (see [`crate::map_estimate`]):
    /// entry `m` is `hyper / max(|α_E,m|, floor)²`, or `0` for missing
    /// priors — and for *every* entry when the prior scale is degenerate
    /// (all-zero or sub-epsilon early coefficients), which then route
    /// through the missing-prior path of §IV-B rather than producing an
    /// infinite precision.
    ///
    /// For the zero-mean prior `hyper = σ₀²`; for the nonzero-mean prior
    /// `hyper = η = σ₀²/λ²` (eq. 34).
    ///
    /// # Panics
    ///
    /// Panics when `hyper` is not positive and finite. (All fitting
    /// entry points validate the hyper-parameter before reaching this
    /// accessor.)
    pub fn precisions(&self, hyper: f64) -> Vec<f64> {
        assert!(
            hyper > 0.0 && hyper.is_finite(),
            "hyper-parameter must be positive, got {hyper}"
        );
        let floor = self.floor();
        (0..self.len())
            .map(|m| match self.effective_magnitude(m, floor) {
                Some(a) => hyper / (a * a),
                None => 0.0,
            })
            .collect()
    }

    /// Prior contribution to the MAP right-hand side: zero for the
    /// zero-mean prior, `precision_m · α_E,m` for the nonzero-mean prior
    /// (the `η·A_N·α_E` term of eq. 35); missing priors contribute zero.
    pub fn rhs_contribution(&self, hyper: f64) -> Vec<f64> {
        let precisions = self.precisions(hyper);
        match self.kind {
            PriorKind::ZeroMean => vec![0.0; self.len()],
            PriorKind::NonZeroMean => {
                let floor = self.floor();
                (0..self.len())
                    .map(
                        |m| match (self.early[m], self.effective_magnitude(m, floor)) {
                            (Some(a), Some(_)) => precisions[m] * a,
                            _ => 0.0,
                        },
                    )
                    .collect()
            }
        }
    }

    /// Log prior density at `coeffs` up to an additive constant (used for
    /// diagnostics and tested against the closed forms of eq. 17/20).
    ///
    /// Missing-prior coefficients contribute zero (their density is flat).
    ///
    /// # Panics
    ///
    /// Panics when `coeffs.len() != self.len()`.
    pub fn log_density(&self, coeffs: &[f64], hyper: f64) -> f64 {
        assert_eq!(coeffs.len(), self.len(), "coefficient count mismatch");
        let precisions = self.precisions(hyper);
        let mut lp = 0.0;
        for m in 0..self.len() {
            if bmf_linalg::is_exact_zero(precisions[m]) {
                continue;
            }
            let mean = match self.kind {
                PriorKind::ZeroMean => 0.0,
                PriorKind::NonZeroMean => self.early[m].unwrap_or(0.0),
            };
            let d = coeffs[m] - mean;
            lp -= 0.5 * precisions[m] * d * d;
        }
        lp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmf_basis::basis::OrthonormalBasis;
    use bmf_basis::expansion::FingerExpansion;

    #[test]
    fn zero_mean_precision_matches_eq16() {
        // sigma_m = |alpha_E,m|; precision = hyper / sigma_m^2.
        let p = Prior::from_coeffs(PriorKind::ZeroMean, &[2.0, -0.5]);
        let prec = p.precisions(1.0);
        assert!((prec[0] - 0.25).abs() < 1e-12);
        assert!((prec[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn hyper_scales_precision_linearly() {
        let p = Prior::from_coeffs(PriorKind::NonZeroMean, &[1.0, 3.0]);
        let a = p.precisions(2.0);
        let b = p.precisions(4.0);
        for (x, y) in a.iter().zip(&b) {
            assert!((y / x - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn missing_prior_has_zero_precision() {
        let p = Prior::new(PriorKind::ZeroMean, vec![Some(1.0), None]);
        let prec = p.precisions(1.0);
        assert_eq!(prec[1], 0.0);
        assert_eq!(p.num_missing(), 1);
    }

    #[test]
    fn zero_early_coefficient_is_floored_not_infinite() {
        // An individual zero entry in an otherwise healthy prior keeps
        // the historical floored (huge but finite) precision — sparse
        // early models must not inflate the zero-precision count past
        // the sample budget.
        let p = Prior::from_coeffs(PriorKind::ZeroMean, &[1.0, 0.0]);
        let prec = p.precisions(1.0);
        assert!(prec[1].is_finite());
        assert!(prec[1] > prec[0]);
        assert_eq!(p.num_missing(), 0);
        assert_eq!(p.num_zero_precision(), 0);
    }

    #[test]
    fn sub_floor_coefficient_is_floored_to_prior_scale() {
        // 1e-12 relative to a max of 1.0 is far below REL_FLOOR = 1e-8:
        // the magnitude is floored at 1e-8, so precision = hyper/1e-16.
        let p = Prior::from_coeffs(PriorKind::ZeroMean, &[1.0, 1e-12]);
        assert!((p.precisions(1.0)[1] - 1e16).abs() / 1e16 < 1e-12);
        assert_eq!(p.num_zero_precision(), 0);
        // At or above the floor the true magnitude is used unchanged.
        let q = Prior::from_coeffs(PriorKind::ZeroMean, &[1.0, 1e-7]);
        assert_eq!(q.num_zero_precision(), 0);
        assert!((q.precisions(1.0)[1] - 1e14).abs() / 1e14 < 1e-12);
    }

    #[test]
    fn all_zero_prior_is_entirely_zero_precision() {
        let p = Prior::from_coeffs(PriorKind::NonZeroMean, &[0.0, 0.0, 0.0]);
        assert_eq!(p.num_zero_precision(), 3);
        assert!(p.precisions(1.0).iter().all(|&d| d == 0.0));
        assert!(p.rhs_contribution(1.0).iter().all(|&r| r == 0.0));
    }

    #[test]
    fn rhs_zero_mean_is_zero() {
        let p = Prior::from_coeffs(PriorKind::ZeroMean, &[2.0, -3.0]);
        assert_eq!(p.rhs_contribution(1.5), vec![0.0, 0.0]);
    }

    #[test]
    fn rhs_nonzero_mean_matches_eq35() {
        // eta * alpha_E / alpha_E^2 = eta / alpha_E.
        let p = Prior::from_coeffs(PriorKind::NonZeroMean, &[2.0, -0.5]);
        let rhs = p.rhs_contribution(3.0);
        assert!((rhs[0] - 3.0 / 2.0).abs() < 1e-12);
        assert!((rhs[1] - 3.0 / -0.5).abs() < 1e-12);
    }

    #[test]
    fn rhs_missing_is_zero() {
        let p = Prior::new(PriorKind::NonZeroMean, vec![Some(1.0), None]);
        let rhs = p.rhs_contribution(1.0);
        assert_eq!(rhs[1], 0.0);
    }

    #[test]
    fn log_density_peaks_at_prior_mean() {
        let p = Prior::from_coeffs(PriorKind::NonZeroMean, &[1.0, -2.0]);
        let at_mean = p.log_density(&[1.0, -2.0], 1.0);
        let off = p.log_density(&[1.5, -2.0], 1.0);
        assert!(at_mean > off);
        let pz = Prior::from_coeffs(PriorKind::ZeroMean, &[1.0, -2.0]);
        assert!(pz.log_density(&[0.0, 0.0], 1.0) > pz.log_density(&[0.5, 0.0], 1.0));
    }

    #[test]
    fn mapped_prior_spreads_coefficients() {
        // Schematic basis {1, x1, x2} with 2 fingers each -> layout basis
        // {1, x11, x12, x21, x22}; alpha = (1, 2, -4).
        let exp = FingerExpansion::new(vec![2, 2]).unwrap();
        let schematic = OrthonormalBasis::linear(2);
        let e = exp.expand_basis(&schematic).unwrap();
        let prior = Prior::mapped(PriorKind::ZeroMean, &e, &[1.0, 2.0, -4.0], 1).unwrap();
        assert_eq!(prior.len(), 6); // 5 mapped + 1 missing
        let vals = prior.early_values();
        assert_eq!(vals[0], Some(1.0));
        let s2 = 2.0f64.sqrt();
        assert!((vals[1].unwrap() - 2.0 / s2).abs() < 1e-12);
        assert!((vals[3].unwrap() + 4.0 / s2).abs() < 1e-12);
        assert_eq!(vals[5], None);
    }

    #[test]
    fn mapped_prior_validates_count() {
        let exp = FingerExpansion::new(vec![2]).unwrap();
        let schematic = OrthonormalBasis::linear(1);
        let e = exp.expand_basis(&schematic).unwrap();
        assert!(Prior::mapped(PriorKind::ZeroMean, &e, &[1.0], 0).is_err());
    }

    #[test]
    fn with_kind_switches_family() {
        let p = Prior::from_coeffs(PriorKind::ZeroMean, &[1.0]);
        let q = p.with_kind(PriorKind::NonZeroMean);
        assert_eq!(q.kind(), PriorKind::NonZeroMean);
        assert_eq!(q.early_values(), p.early_values());
    }

    #[test]
    #[should_panic(expected = "hyper-parameter must be positive")]
    fn non_positive_hyper_rejected() {
        Prior::from_coeffs(PriorKind::ZeroMean, &[1.0]).precisions(0.0);
    }
}
