//! Orthogonal matching pursuit (OMP) — the sparse-regression baseline the
//! paper compares against (§II-C, reference \[13\]).
//!
//! OMP greedily selects one basis function per iteration: the column of
//! the design matrix most correlated with the current residual. After each
//! selection the coefficients of the active set are refit by least squares
//! (that is the "orthogonal" part) and the residual is recomputed. The
//! number of selected terms is chosen by holdout validation: iterate while
//! the validation error keeps improving, then refit the best active set on
//! all samples.

use bmf_basis::basis::OrthonormalBasis;
use bmf_linalg::{Matrix, Vector};
use bmf_stat::rng::seeded;

use crate::least_squares::solve_least_squares;
use crate::model::PerformanceModel;
use crate::{BmfError, Result};

/// OMP configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct OmpConfig {
    /// Hard cap on selected terms (`None` ⇒ limited only by the training
    /// sample count).
    pub max_terms: Option<usize>,
    /// Fraction of samples held out to choose the stopping iteration.
    pub validation_fraction: f64,
    /// Stop when the validation error has not improved for this many
    /// consecutive iterations.
    pub patience: usize,
    /// Early exit when the relative training residual drops below this.
    pub min_relative_residual: f64,
    /// Seed for the train/validation shuffle.
    pub seed: u64,
}

impl Default for OmpConfig {
    fn default() -> Self {
        OmpConfig {
            max_terms: None,
            validation_fraction: 0.25,
            patience: 8,
            min_relative_residual: 1e-10,
            seed: 0,
        }
    }
}

/// Result of an OMP fit.
#[derive(Debug, Clone, PartialEq)]
pub struct OmpFit {
    /// Full-length coefficient vector (zeros outside the active set).
    pub coeffs: Vec<f64>,
    /// Selected term indices, in selection order.
    pub selected: Vec<usize>,
    /// Holdout validation error at the chosen stopping point.
    pub validation_error: f64,
}

/// Runs OMP on an explicit design matrix.
///
/// # Errors
///
/// * [`BmfError::SampleShape`] when `f.len() != g.nrows()`.
/// * [`BmfError::NotEnoughSamples`] when fewer than 4 samples are given
///   (no meaningful train/validation split exists).
/// * [`BmfError::Config`] (parameter `"validation_fraction"`) for a bad
///   validation fraction.
pub fn fit_omp_design(g: &Matrix, f: &Vector, config: &OmpConfig) -> Result<OmpFit> {
    let (k, m) = g.shape();
    if f.len() != k {
        return Err(BmfError::SampleShape {
            detail: format!("{k} design rows vs {} values", f.len()),
        });
    }
    if k < 4 {
        return Err(BmfError::NotEnoughSamples {
            available: k,
            required: 4,
            context: "OMP",
        });
    }
    if !(0.0..0.9).contains(&config.validation_fraction) {
        return Err(BmfError::config(
            "validation_fraction",
            format!("must be in [0, 0.9), got {}", config.validation_fraction),
        ));
    }
    crate::screen::finite_matrix("design matrix", g)?;
    crate::screen::finite_values("response values", f.as_slice())?;

    // Train/validation split.
    let mut order: Vec<usize> = (0..k).collect();
    seeded(config.seed).shuffle(&mut order);
    let n_val = ((k as f64 * config.validation_fraction) as usize).min(k - 2);
    let (val_idx, train_idx) = order.split_at(n_val);
    let g_train = select_rows(g, train_idx);
    let g_val = select_rows(g, val_idx);
    let f_train = Vector::from_fn(train_idx.len(), |i| f[train_idx[i]]);
    let f_val = Vector::from_fn(val_idx.len(), |i| f[val_idx[i]]);

    // Column norms over the training rows, for correlation normalization.
    let col_norms: Vec<f64> = (0..m)
        .map(|j| {
            (0..g_train.nrows())
                .map(|i| g_train[(i, j)] * g_train[(i, j)])
                .sum::<f64>()
                .sqrt()
        })
        .collect();

    let cap = config
        .max_terms
        .unwrap_or(usize::MAX)
        .min(g_train.nrows().saturating_sub(1))
        .min(m)
        .max(1);

    let f_norm = f_train.norm2().max(f64::MIN_POSITIVE);
    // Clone: the greedy loop shrinks the residual in place while the
    // original responses stay available for the refits below.
    let mut residual = f_train.clone();
    let mut active: Vec<usize> = Vec::new();
    let mut in_active = vec![false; m];
    let mut best: Option<(f64, usize)> = None; // (val error, #terms)
    let mut stall = 0usize;

    while active.len() < cap {
        // Most correlated unselected column.
        let corr = g_train.matvec_transpose(&residual)?;
        let mut best_j = None;
        let mut best_c = 0.0;
        for j in 0..m {
            if in_active[j] || bmf_linalg::is_exact_zero(col_norms[j]) {
                continue;
            }
            let c = (corr[j] / col_norms[j]).abs();
            if c > best_c {
                best_c = c;
                best_j = Some(j);
            }
        }
        let Some(j) = best_j else { break };
        active.push(j);
        in_active[j] = true;

        // Orthogonal refit of the active set.
        let ga = g_train.select_columns(&active);
        let coef = match solve_least_squares(&ga, &f_train) {
            Ok(c) => c,
            Err(_) => {
                // Numerically dependent column: drop it and stop growing.
                in_active[j] = false;
                active.pop();
                break;
            }
        };
        residual = f_train.sub(&ga.matvec(&coef)?)?;

        // Validation error with the current active set.
        let val_err = if val_idx.is_empty() {
            residual.norm2() / f_norm
        } else {
            let pred = g_val.select_columns(&active).matvec(&coef)?;
            pred.sub(&f_val)?.norm2() / f_val.norm2().max(f64::MIN_POSITIVE)
        };
        match best {
            Some((e, _)) if val_err >= e => {
                stall += 1;
                if stall >= config.patience {
                    break;
                }
            }
            _ => {
                best = Some((val_err, active.len()));
                stall = 0;
            }
        }
        if residual.norm2() / f_norm < config.min_relative_residual {
            break;
        }
    }

    let (validation_error, n_terms) = best.unwrap_or((f64::INFINITY, active.len().max(1)));
    active.truncate(n_terms);

    // Final refit on ALL samples with the chosen active set.
    let ga_full = g.select_columns(&active);
    let coef = solve_least_squares(&ga_full, f)?;
    let mut coeffs = vec![0.0; m];
    for (idx, &j) in active.iter().enumerate() {
        coeffs[j] = coef[idx];
    }
    Ok(OmpFit {
        coeffs,
        selected: active,
        validation_error,
    })
}

/// Runs OMP over a basis and sample points, returning a fitted
/// [`PerformanceModel`].
///
/// # Errors
///
/// Same conditions as [`fit_omp_design`], plus
/// [`BmfError::SampleShape`] when points and values disagree in count.
///
/// # Example
///
/// ```
/// use bmf_basis::basis::OrthonormalBasis;
/// use bmf_core::omp::{fit_omp, OmpConfig};
///
/// # fn main() -> Result<(), bmf_core::BmfError> {
/// // Sparse truth over 10 variables: only x2 matters.
/// let basis = OrthonormalBasis::linear(10);
/// let points: Vec<Vec<f64>> = (0..30)
///     .map(|i| (0..10).map(|j| (((i * 10 + j) * 37 % 19) as f64 - 9.0) / 9.0).collect())
///     .collect();
/// let values: Vec<f64> = points.iter().map(|p| 5.0 + 3.0 * p[2]).collect();
/// let fit = fit_omp(&basis, &points, &values, &OmpConfig::default())?;
/// assert!((fit.model.predict(&vec![0.0; 10]) - 5.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn fit_omp(
    basis: &OrthonormalBasis,
    points: &[Vec<f64>],
    values: &[f64],
    config: &OmpConfig,
) -> Result<OmpModelFit> {
    if points.len() != values.len() {
        return Err(BmfError::SampleShape {
            detail: format!("{} points vs {} values", points.len(), values.len()),
        });
    }
    crate::screen::points(points, basis.num_vars())?;
    let g = basis.design_matrix(points.iter().map(|p| p.as_slice()));
    let f = Vector::from(values);
    let fit = fit_omp_design(&g, &f, config)?;
    Ok(OmpModelFit {
        model: PerformanceModel::new(basis.clone(), fit.coeffs)?,
        selected: fit.selected,
        validation_error: fit.validation_error,
    })
}

/// An OMP fit packaged as a [`PerformanceModel`].
#[derive(Debug, Clone, PartialEq)]
pub struct OmpModelFit {
    /// The fitted model (coefficients are zero outside the active set).
    pub model: PerformanceModel,
    /// Selected term indices, in selection order.
    pub selected: Vec<usize>,
    /// Holdout validation error at the stopping point.
    pub validation_error: f64,
}

fn select_rows(g: &Matrix, rows: &[usize]) -> Matrix {
    Matrix::from_fn(rows.len(), g.ncols(), |i, j| g[(rows[i], j)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmf_stat::normal::StandardNormal;

    fn random_points(k: usize, r: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = seeded(seed);
        let mut s = StandardNormal::new();
        (0..k).map(|_| s.sample_vec(&mut rng, r)).collect()
    }

    #[test]
    fn recovers_sparse_support() {
        let basis = OrthonormalBasis::linear(40);
        let points = random_points(60, 40, 1);
        // Truth: intercept + terms 5 and 17.
        let values: Vec<f64> = points
            .iter()
            .map(|p| 2.0 + 1.5 * p[4] - 0.8 * p[16])
            .collect();
        let fit = fit_omp(&basis, &points, &values, &OmpConfig::default()).unwrap();
        // Basis term indices: 0 = const, 1 + var.
        assert!(
            fit.selected.contains(&0),
            "intercept missed: {:?}",
            fit.selected
        );
        assert!(fit.selected.contains(&5));
        assert!(fit.selected.contains(&17));
        let c = fit.model.coeffs();
        assert!((c[0] - 2.0).abs() < 0.05);
        assert!((c[5] - 1.5).abs() < 0.05);
        assert!((c[17] + 0.8).abs() < 0.05);
    }

    #[test]
    fn underdetermined_sparse_recovery() {
        // M = 101 coefficients, K = 40 samples: least squares impossible,
        // OMP fine because the truth is 3-sparse.
        let basis = OrthonormalBasis::linear(100);
        let points = random_points(40, 100, 2);
        let values: Vec<f64> = points.iter().map(|p| 1.0 + 2.0 * p[10] + p[50]).collect();
        let fit = fit_omp(&basis, &points, &values, &OmpConfig::default()).unwrap();
        let err = fit
            .model
            .relative_error(points.iter().map(|p| p.as_slice()), &values)
            .unwrap();
        assert!(err < 0.05, "err = {err}");
    }

    #[test]
    fn validation_stopping_prevents_overfitting_noise() {
        let basis = OrthonormalBasis::linear(30);
        let points = random_points(50, 30, 3);
        // Pure truth + deterministic pseudo-noise.
        let values: Vec<f64> = points
            .iter()
            .enumerate()
            .map(|(i, p)| 1.0 + p[0] + 0.05 * ((i as f64 * 2.7).sin()))
            .collect();
        let fit = fit_omp(&basis, &points, &values, &OmpConfig::default()).unwrap();
        // Should select close to the true 2 terms, not dozens of noise
        // terms.
        assert!(
            fit.selected.len() <= 12,
            "selected too many terms: {}",
            fit.selected.len()
        );
    }

    #[test]
    fn max_terms_is_respected() {
        let basis = OrthonormalBasis::linear(20);
        let points = random_points(40, 20, 4);
        let values: Vec<f64> = points.iter().map(|p| p.iter().sum()).collect();
        let cfg = OmpConfig {
            max_terms: Some(3),
            ..OmpConfig::default()
        };
        let fit = fit_omp(&basis, &points, &values, &cfg).unwrap();
        assert!(fit.selected.len() <= 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let basis = OrthonormalBasis::linear(15);
        let points = random_points(30, 15, 5);
        let values: Vec<f64> = points.iter().map(|p| p[1] - p[7]).collect();
        let a = fit_omp(&basis, &points, &values, &OmpConfig::default()).unwrap();
        let b = fit_omp(&basis, &points, &values, &OmpConfig::default()).unwrap();
        assert_eq!(a.selected, b.selected);
        assert_eq!(a.model.coeffs(), b.model.coeffs());
    }

    #[test]
    fn too_few_samples_rejected() {
        let basis = OrthonormalBasis::linear(3);
        let points = random_points(3, 3, 6);
        let values = vec![0.0; 3];
        assert!(matches!(
            fit_omp(&basis, &points, &values, &OmpConfig::default()),
            Err(BmfError::NotEnoughSamples { .. })
        ));
    }

    #[test]
    fn invalid_validation_fraction_rejected() {
        let basis = OrthonormalBasis::linear(3);
        let points = random_points(10, 3, 7);
        let values = vec![0.0; 10];
        let cfg = OmpConfig {
            validation_fraction: 0.95,
            ..OmpConfig::default()
        };
        assert!(matches!(
            fit_omp(&basis, &points, &values, &cfg),
            Err(BmfError::Config { .. })
        ));
    }

    #[test]
    fn error_decreases_with_more_samples() {
        // The classic OMP learning curve (paper Tables I-III, OMP column).
        let basis = OrthonormalBasis::linear(60);
        let truth = |p: &[f64]| 1.0 + 0.9 * p[3] - 0.6 * p[30] + 0.3 * p[45] + 0.1 * p[12];
        let test_points = random_points(200, 60, 999);
        let test_values: Vec<f64> = test_points.iter().map(|p| truth(p)).collect();
        let mut errs = Vec::new();
        for &k in &[30usize, 120] {
            let points = random_points(k, 60, 8);
            let values: Vec<f64> = points.iter().map(|p| truth(p)).collect();
            let fit = fit_omp(&basis, &points, &values, &OmpConfig::default()).unwrap();
            errs.push(
                fit.model
                    .relative_error(test_points.iter().map(|p| p.as_slice()), &test_values)
                    .unwrap(),
            );
        }
        assert!(
            errs[1] <= errs[0] * 1.05 + 1e-12,
            "error should not grow with samples: {errs:?}"
        );
    }
}
