//! Parallel batch fitting: many performance metrics, one sample set.
//!
//! A characterization run rarely fits a single metric. The same K
//! late-stage simulations yield gain *and* bandwidth *and* offset *and*
//! power — N responses measured at the same sample points, each with its
//! own early-stage prior. Fitting them through [`BmfFitter`] in a loop
//! repeats work that depends only on the shared inputs:
//!
//! * the design matrix `G` (Θ(K·M·basis) to evaluate) is identical for
//!   every job;
//! * the cross-validation fold row-selections depend only on `(K, folds,
//!   seed)`;
//! * the per-fold Woodbury kernels (`B_F`, `B_Z`, Θ(K²M) each) depend
//!   only on the fold and the *normalized prior values* — jobs whose
//!   priors coincide after normalization share them exactly.
//!
//! [`BatchFitter`] evaluates the design matrix once, builds each distinct
//! kernel once, and dispatches the remaining per-job work — grid sweeps
//! over every `(fold, hyper, family)` cell, then reduction and the final
//! full-data solve — across a scoped worker pool.
//!
//! # Determinism
//!
//! Results are **bit-identical for every thread count**, including 1.
//! Workers only compute pure functions of their task inputs and write
//! into per-task slots; every reduction (fold error accumulation, error
//! propagation, counter totals) happens after the join, in a fixed
//! order. A one-job batch reproduces [`BmfFitter::fit`] exactly, because
//! both run the same primitive kernels in the same order.
//!
//! ```
//! use bmf_basis::basis::OrthonormalBasis;
//! use bmf_core::batch::{BatchFitter, BatchJob};
//! use bmf_core::options::FitOptions;
//!
//! # fn main() -> Result<(), bmf_core::BmfError> {
//! let basis = OrthonormalBasis::linear(2);
//! let points: Vec<Vec<f64>> = (0..8)
//!     .map(|i| vec![(i as f64 * 0.37).sin(), (i as f64 * 0.61).cos()])
//!     .collect();
//! let gain: Vec<f64> = points.iter().map(|p| 1.0 + 0.5 * p[0]).collect();
//! let bw: Vec<f64> = points.iter().map(|p| 2.0 - 0.3 * p[1]).collect();
//!
//! let report = BatchFitter::new(basis)
//!     .with_options(FitOptions::new().folds(4).threads(2))
//!     .job(BatchJob::new("gain", vec![Some(1.0), Some(0.5), Some(0.0)], gain))
//!     .job(BatchJob::new("bw", vec![Some(2.0), Some(0.0), Some(-0.3)], bw))
//!     .fit(&points)?;
//! assert_eq!(report.fits.len(), 2);
//! assert_eq!(report.labels[0], "gain");
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use bmf_basis::basis::OrthonormalBasis;
use bmf_linalg::Vector;

use crate::fusion::{response_scale, BmfFit, FitCounters, ResilienceReport};
use crate::hyper::{build_fold_sweep, reduce_outcomes, sweep_fold, FoldErrors, FoldPlan};
use crate::map_estimate::{map_estimate_ws, MapSweep};
use crate::model::PerformanceModel;
use crate::options::{validate_folds, validate_grid, FitOptions};
use crate::prior::{Prior, PriorKind};
use crate::select::{choose_from_list, kinds_for};
use crate::workspace::SolveWorkspace;
use crate::{BmfError, Result};

/// One batch job: a response vector plus its early-stage prior, fitted
/// over the batch's shared basis and sample points.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Human-readable name reported back in [`BatchReport::labels`].
    pub label: String,
    /// Per-term early-coefficient knowledge (`None` = missing prior).
    pub prior: Vec<Option<f64>>,
    /// Late-stage response values, one per shared sample point.
    pub values: Vec<f64>,
}

impl BatchJob {
    /// Creates a job from a label, per-term prior knowledge, and the
    /// response values observed at the shared sample points.
    pub fn new(label: impl Into<String>, prior: Vec<Option<f64>>, values: Vec<f64>) -> Self {
        BatchJob {
            label: label.into(),
            prior,
            values,
        }
    }

    /// Creates a job whose prior is fully known (no missing entries).
    pub fn from_coeffs(label: impl Into<String>, early: &[f64], values: Vec<f64>) -> Self {
        BatchJob::new(label, early.iter().map(|&a| Some(a)).collect(), values)
    }
}

/// Wall-clock time spent in each phase of a batch fit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Design-matrix evaluation, fold planning, and response
    /// normalization (runs once, serially).
    pub prepare: Duration,
    /// Woodbury kernel factorizations (parallel; one task per distinct
    /// `(prior pattern, fold)` pair).
    pub kernels: Duration,
    /// Cross-validation grid sweeps (parallel; one task per
    /// `(job, fold)` pair, covering every `(hyper, family)` cell).
    pub sweep: Duration,
    /// Per-job reduction, prior selection, and the final full-data MAP
    /// solve (parallel; one task per job).
    pub solve: Duration,
}

impl PhaseTimings {
    /// Total wall time across all phases.
    pub fn total(&self) -> Duration {
        self.prepare + self.kernels + self.sweep + self.solve
    }
}

/// Everything a completed batch fit reports.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One fit per job, in submission order. Each carries its own
    /// per-job [`FitCounters`].
    pub fits: Vec<BmfFit>,
    /// Job labels, in submission order.
    pub labels: Vec<String>,
    /// Work counters summed over every job.
    pub counters: FitCounters,
    /// Degradation-ladder summary aggregated over every job: the worst
    /// final-solve rung/ridge, the smallest reciprocal-condition
    /// estimate, and batch-wide degraded-solve totals.
    pub resilience: ResilienceReport,
    /// Per-phase wall time.
    pub timings: PhaseTimings,
    /// Worker threads the pool actually used.
    pub threads: usize,
}

/// Parallel batch fitter: N jobs over one shared sample-point set.
///
/// Construction mirrors [`BmfFitter`]; see the [module docs](self) for
/// the sharing and determinism story.
#[derive(Debug, Clone)]
pub struct BatchFitter {
    basis: OrthonormalBasis,
    jobs: Vec<BatchJob>,
    options: FitOptions,
}

impl BatchFitter {
    /// Creates an empty batch over `basis`.
    pub fn new(basis: OrthonormalBasis) -> Self {
        BatchFitter {
            basis,
            jobs: Vec::new(),
            options: FitOptions::default(),
        }
    }

    /// Replaces the whole fitting configuration (shared by every job).
    pub fn with_options(mut self, options: FitOptions) -> Self {
        self.options = options;
        self
    }

    /// The current fitting configuration.
    pub fn options(&self) -> &FitOptions {
        &self.options
    }

    /// The shared late-stage basis.
    pub fn basis(&self) -> &OrthonormalBasis {
        &self.basis
    }

    /// Adds a job (chainable).
    pub fn job(mut self, job: BatchJob) -> Self {
        self.jobs.push(job);
        self
    }

    /// Adds a job in place.
    pub fn push_job(&mut self, job: BatchJob) {
        self.jobs.push(job);
    }

    /// Replaces the whole job list (chainable). The service-layer
    /// coalescer uses this to hand a pre-assembled request group to the
    /// batch engine in one move instead of pushing job by job.
    pub fn with_jobs(mut self, jobs: Vec<BatchJob>) -> Self {
        self.jobs = jobs;
        self
    }

    /// The queued jobs, in submission order.
    pub fn jobs(&self) -> &[BatchJob] {
        &self.jobs
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the batch has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Fits every job over the shared sample points.
    ///
    /// # Errors
    ///
    /// * [`BmfError::Config`] for invalid options (`"grid"`, `"folds"`)
    ///   or an empty batch (`"jobs"`).
    /// * [`BmfError::PriorShape`] when a job's prior length disagrees
    ///   with the basis.
    /// * [`BmfError::SampleShape`] when a job's value count disagrees
    ///   with the point count.
    /// * [`BmfError::NotEnoughSamples`] / [`BmfError::Linalg`] as for
    ///   [`BmfFitter::fit`]. When several jobs fail, the error of the
    ///   lowest-indexed failing task is returned — independent of the
    ///   thread schedule.
    pub fn fit(&self, points: &[Vec<f64>]) -> Result<BatchReport> {
        validate_grid(&self.options.grid)?;
        validate_folds(self.options.folds)?;
        if self.jobs.is_empty() {
            return Err(BmfError::config("jobs", "batch needs at least one job"));
        }
        crate::screen::points(points, self.basis.num_vars())?;
        for job in &self.jobs {
            if job.prior.len() != self.basis.len() {
                return Err(BmfError::PriorShape {
                    basis_terms: self.basis.len(),
                    prior_entries: job.prior.len(),
                });
            }
            if job.values.len() != points.len() {
                return Err(BmfError::SampleShape {
                    detail: format!(
                        "job `{}` has {} values but the batch has {} points",
                        job.label,
                        job.values.len(),
                        points.len()
                    ),
                });
            }
            crate::screen::finite_values("response values", &job.values)?;
            crate::screen::finite_early("prior early coefficients", &job.prior)?;
        }

        // Phase 1 (serial): shared design matrix, fold plan, and per-job
        // normalization.
        let t0 = Instant::now();
        let g = self
            .basis
            .design_matrix(points.iter().map(|p| p.as_slice()));
        let plan = FoldPlan::new(g.nrows(), self.options.folds, self.options.seed)?;
        let num_folds = plan.folds.len();
        let prepared: Vec<PreparedJob> = self.jobs.iter().map(PreparedJob::new).collect();

        // Group jobs by normalized prior bit-pattern: jobs in one group
        // share every Woodbury kernel exactly (same `A`, same means).
        let mut pattern_of_job = Vec::with_capacity(prepared.len());
        let mut pattern_owner: Vec<usize> = Vec::new();
        let mut index: BTreeMap<Vec<Option<u64>>, usize> = BTreeMap::new();
        for (j, p) in prepared.iter().enumerate() {
            let key: Vec<Option<u64>> = p
                .prior
                .early_values()
                .iter()
                .map(|v| v.map(f64::to_bits))
                .collect();
            let next = pattern_owner.len();
            let pi = *index.entry(key).or_insert_with(|| {
                pattern_owner.push(j);
                next
            });
            pattern_of_job.push(pi);
        }
        let num_patterns = pattern_owner.len();
        let threads = self.options.effective_threads();
        let mut timings = PhaseTimings {
            prepare: t0.elapsed(),
            ..PhaseTimings::default()
        };

        // Phase 2 (parallel): one kernel factorization per distinct
        // (pattern, fold) pair. `None` marks a fold too small for the
        // pattern's missing-prior block (skipped, as in the serial path).
        let t1 = Instant::now();
        let kernels: Vec<Result<Option<MapSweep<'_>>>> =
            run_indexed(threads, num_patterns * num_folds, |task| {
                let (pi, fi) = (task / num_folds, task % num_folds);
                let mut scratch = FitCounters::default();
                build_fold_sweep(
                    &g,
                    &plan.folds[fi],
                    &prepared[pattern_owner[pi]].prior,
                    &mut scratch,
                )
            });
        let kernels = first_error(kernels)?;
        timings.kernels = t1.elapsed();

        // Phase 3 (parallel): one grid sweep per (job, fold) pair, each
        // worker reusing its own solve workspace across tasks.
        let t2 = Instant::now();
        let kinds = kinds_for(self.options.selection);
        let swept: Vec<Result<(Option<FoldErrors>, FitCounters)>> = run_indexed_with(
            threads,
            prepared.len() * num_folds,
            SolveWorkspace::new,
            |ws, task| {
                let (j, fi) = (task / num_folds, task % num_folds);
                let Some(sweep) = &kernels[pattern_of_job[j] * num_folds + fi] else {
                    return Ok((None, FitCounters::default()));
                };
                let mut counters = FitCounters::default();
                let fold = &plan.folds[fi];
                let errors = sweep_fold(
                    sweep,
                    &g,
                    fold,
                    &prepared[j].f,
                    &self.options.grid,
                    &kinds,
                    &mut counters,
                    ws,
                )?;
                Ok((Some(errors), counters))
            },
        );
        let swept = first_error(swept)?;
        timings.sweep = t2.elapsed();

        // Phase 4 (parallel): per-job reduction (fold-major, fixed
        // order), prior selection, and the final full-data solve.
        let t3 = Instant::now();
        let fits: Vec<Result<BmfFit>> =
            run_indexed_with(threads, prepared.len(), SolveWorkspace::new, |ws, j| {
                let job = &prepared[j];
                let mut counters = FitCounters::default();
                for fi in 0..num_folds {
                    counters.merge(&swept[j * num_folds + fi].1);
                    // Kernel accounting: the first job of each pattern built
                    // its kernels; later jobs reused them from the cache.
                    if kernels[pattern_of_job[j] * num_folds + fi].is_some() {
                        if pattern_owner[pattern_of_job[j]] == j {
                            counters.kernels_built += 1;
                            counters.kernel_cache_misses += 1;
                        } else {
                            counters.kernel_cache_hits += 1;
                        }
                    }
                }
                // Error tables are reduced straight from the shared sweep
                // results — fold-major in fold order, so the accumulation is
                // bit-identical to the serial path.
                let outcomes = reduce_outcomes(
                    &self.options.grid,
                    kinds.len(),
                    (0..num_folds).map(|fi| swept[j * num_folds + fi].0.as_ref()),
                    job.f.len(),
                    num_folds,
                )?;
                let selection = choose_from_list(self.options.selection, outcomes)?;
                let chosen = job.prior.with_kind(selection.kind);
                let (alpha, final_res) = map_estimate_ws(
                    &g,
                    &job.f,
                    &chosen,
                    selection.hyper,
                    self.options.solver,
                    &mut ws.map,
                )?;
                counters.map_solves += 1;
                counters.record_resilience(&final_res);
                let coeffs: Vec<f64> = alpha.iter().map(|a| a * job.scale).collect();
                // Clone: once per job (not per grid cell) — each returned
                // model owns its basis.
                let model = PerformanceModel::new(self.basis.clone(), coeffs)?;
                Ok(BmfFit {
                    model,
                    prior_kind: selection.kind,
                    hyper: selection.hyper,
                    cv_error: selection.cv_error,
                    selection,
                    resilience: ResilienceReport::new(&final_res, &counters),
                    counters,
                })
            });
        let fits = first_error(fits)?;
        timings.solve = t3.elapsed();

        let mut counters = FitCounters::default();
        for fit in &fits {
            counters.merge(&fit.counters);
        }
        // Batch-wide resilience: worst final-solve rung/ridge, smallest
        // rcond, totals from the merged counters.
        let mut resilience = ResilienceReport {
            degraded_solves: counters.degraded_solves,
            max_rung: counters.max_ladder_rung,
            ..ResilienceReport::default()
        };
        for fit in &fits {
            resilience.rung = resilience.rung.max(fit.resilience.rung);
            resilience.ridge = resilience.ridge.max(fit.resilience.ridge);
            resilience.rcond = resilience.rcond.min(fit.resilience.rcond);
        }
        Ok(BatchReport {
            // Clone: the report owns its labels so the fitter's job list
            // stays reusable for further fits.
            labels: self.jobs.iter().map(|j| j.label.clone()).collect(),
            fits,
            counters,
            resilience,
            timings,
            threads,
        })
    }
}

/// A job after normalization: the dimensionless response and the
/// correspondingly scaled prior (nonzero-mean view, as the kernels are
/// built from it).
struct PreparedJob {
    scale: f64,
    f: Vector,
    prior: Prior,
}

impl PreparedJob {
    fn new(job: &BatchJob) -> Self {
        let scale = response_scale(&job.values);
        let f = Vector::from_fn(job.values.len(), |i| job.values[i] / scale);
        let prior = Prior::new(
            PriorKind::NonZeroMean,
            job.prior.iter().map(|v| v.map(|a| a / scale)).collect(),
        );
        PreparedJob { scale, f, prior }
    }
}

/// Runs `n` independent tasks on a scoped worker pool and returns their
/// results in task order.
///
/// Work-stealing is a shared atomic cursor: idle workers pull the next
/// unclaimed index, so an expensive task never blocks the queue behind
/// it. Each worker stashes `(index, result)` pairs locally; the merge
/// into ordered slots happens after the join. Task results therefore
/// depend only on the task index — never on the schedule — which is what
/// makes the batch engine bit-identical across thread counts.
fn run_indexed<T, F>(threads: usize, n: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with(threads, n, || (), |(), i| task(i))
}

/// [`run_indexed`] with per-worker mutable state: `init` runs once on
/// each worker (and once on the serial path) and the resulting state is
/// passed to every task that worker claims. Used to give each worker its
/// own [`SolveWorkspace`], so scratch buffers are reused across tasks
/// without any cross-thread sharing. Determinism is unaffected: every
/// workspace-filling kernel fully overwrites its output, so a task's
/// result never depends on which worker (or how warm a workspace) ran
/// it.
fn run_indexed_with<S, T, I, F>(threads: usize, n: usize, init: I, task: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let workers = threads.clamp(1, n.max(1));
    if workers <= 1 || n <= 1 {
        let mut state = init();
        return (0..n).map(|i| task(&mut state, i)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut collected: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, task(&mut state, i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            // A worker can only panic if a task panicked; re-raise the
            // original payload on the caller's thread instead of masking
            // it behind a generic join error.
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    });
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, value) in collected.drain(..).flatten() {
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        // The atomic cursor hands out each index in 0..n exactly once, so
        // every slot is filled by construction.
        // bmf-lint: allow(no-panic-paths) -- the atomic cursor fills every slot; an empty one is unreachable by construction
        .map(|s| s.unwrap_or_else(|| unreachable!("every task index is claimed exactly once")))
        .collect()
}

/// Unwraps a task-ordered result list, returning the error of the
/// lowest-indexed failed task (deterministic under any schedule).
fn first_error<T>(results: Vec<Result<T>>) -> Result<Vec<T>> {
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_preserves_task_order() {
        for threads in [1, 2, 5, 16] {
            let out = run_indexed(threads, 33, |i| i * i);
            assert_eq!(out, (0..33).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_indexed_handles_empty_and_single() {
        assert_eq!(run_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(4, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn first_error_picks_lowest_index() {
        let r: Result<Vec<i32>> = first_error(vec![
            Ok(1),
            Err(BmfError::config("grid", "a")),
            Err(BmfError::config("folds", "b")),
        ]);
        assert!(matches!(
            r,
            Err(BmfError::Config {
                parameter: "grid",
                ..
            })
        ));
    }

    #[test]
    fn empty_batch_is_a_config_error() {
        let basis = OrthonormalBasis::linear(2);
        let err = BatchFitter::new(basis).fit(&[vec![0.0, 0.0]]).unwrap_err();
        assert!(matches!(
            err,
            BmfError::Config {
                parameter: "jobs",
                ..
            }
        ));
    }

    #[test]
    fn job_shape_errors_name_the_job() {
        let basis = OrthonormalBasis::linear(2);
        let points = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        let bad_prior = BatchFitter::new(basis.clone())
            .job(BatchJob::new("g", vec![Some(1.0)], vec![1.0, 2.0]))
            .fit(&points)
            .unwrap_err();
        assert!(matches!(bad_prior, BmfError::PriorShape { .. }));
        let bad_values = BatchFitter::new(basis)
            .job(BatchJob::new("g", vec![Some(1.0); 3], vec![1.0]))
            .fit(&points)
            .unwrap_err();
        match bad_values {
            BmfError::SampleShape { detail } => assert!(detail.contains("`g`")),
            e => panic!("expected SampleShape, got {e:?}"),
        }
    }
}
