//! Sequential (online) Bayesian model fusion.
//!
//! In practice the K late-stage samples do not arrive at once: each
//! post-layout simulation takes hours, and a designer wants the best
//! current model — and its trajectory — after *every* finished run. This
//! module keeps the MAP estimate up to date as samples stream in.
//!
//! Instead of refitting from scratch (Θ(K²M) per sample through the fast
//! solver), [`SequentialBmf`] maintains the Cholesky factor of the
//! Woodbury core `c⁻¹I + G D⁻¹ Gᵀ`, which grows by exactly one row per
//! sample ([`bmf_linalg::Cholesky::extend`], Θ(K·M + K²)); producing the
//! current coefficients is then Θ(K·M). The estimates are identical to a
//! batch [`map_estimate`](crate::map_estimate::map_estimate) over the
//! samples seen so far.
//!
//! Limitations: the hyper-parameter and prior family are fixed up front
//! (re-run selection offline when desired), and every coefficient needs a
//! finite prior — missing-prior coefficients would change the core
//! structure per sample (use the batch path for those).

use bmf_linalg::{Cholesky, Matrix, Vector};

use crate::prior::Prior;
use crate::{BmfError, Result};

/// An online MAP estimator absorbing one sample at a time.
///
/// # Example
///
/// ```
/// use bmf_core::prior::{Prior, PriorKind};
/// use bmf_core::sequential::SequentialBmf;
///
/// # fn main() -> Result<(), bmf_core::BmfError> {
/// let prior = Prior::from_coeffs(PriorKind::NonZeroMean, &[1.0, -0.5]);
/// let mut seq = SequentialBmf::new(&prior, 1.0)?;
/// seq.add_sample(&[1.0, 0.0], 1.2)?;   // basis row, observed value
/// seq.add_sample(&[0.0, 1.0], -0.4)?;
/// let alpha = seq.coefficients()?;
/// assert_eq!(alpha.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SequentialBmf {
    /// Prior precision diagonal inverse `D⁻¹` (unit hyper already folded
    /// in).
    d_inv: Vec<f64>,
    /// Prior part of the right-hand side.
    prior_rhs: Vec<f64>,
    /// Accumulated design rows (K × M, rows appended).
    rows: Vec<Vec<f64>>,
    /// Accumulated responses.
    values: Vec<f64>,
    /// Cholesky factor of the growing core `I + G D⁻¹ Gᵀ`.
    core: Option<Cholesky>,
}

impl SequentialBmf {
    /// Creates the estimator for a fixed prior and hyper-parameter.
    ///
    /// # Errors
    ///
    /// * [`BmfError::Config`] (parameter `"prior"`) when the prior has
    ///   missing or zero/sub-epsilon entries (either would change the
    ///   core structure per sample; see module docs), or (parameter
    ///   `"hyper"`) when the hyper-parameter is not positive and finite.
    /// * [`BmfError::NonFiniteInput`] when a prior coefficient is NaN/±∞.
    pub fn new(prior: &Prior, hyper: f64) -> Result<Self> {
        if !(hyper > 0.0 && hyper.is_finite()) {
            return Err(BmfError::config(
                "hyper",
                format!("must be positive and finite, got {hyper}"),
            ));
        }
        crate::screen::finite_prior(prior)?;
        if prior.num_zero_precision() > 0 {
            return Err(BmfError::config(
                "prior",
                "sequential BMF requires a nonzero finite prior for every coefficient",
            ));
        }
        let precisions = prior.precisions(hyper);
        let d_inv: Vec<f64> = precisions.iter().map(|d| 1.0 / d).collect();
        Ok(SequentialBmf {
            d_inv,
            prior_rhs: prior.rhs_contribution(hyper),
            rows: Vec::new(),
            values: Vec::new(),
            core: None,
        })
    }

    /// Number of coefficients.
    pub fn num_coefficients(&self) -> usize {
        self.d_inv.len()
    }

    /// Number of samples absorbed so far.
    pub fn num_samples(&self) -> usize {
        self.rows.len()
    }

    /// Absorbs one sample: `row` is the basis row `[g₁(x) … g_M(x)]` and
    /// `value` the observed performance.
    ///
    /// # Errors
    ///
    /// * [`BmfError::SampleShape`] when `row.len()` differs from the
    ///   coefficient count.
    /// * [`BmfError::NonFiniteInput`] when the row or value is NaN/±∞
    ///   (the estimator state is left untouched).
    /// * [`BmfError::Linalg`] when the extended core loses positive
    ///   definiteness (numerically impossible for exact arithmetic; a
    ///   defensive error path).
    pub fn add_sample(&mut self, row: &[f64], value: f64) -> Result<()> {
        let m = self.d_inv.len();
        if row.len() != m {
            return Err(BmfError::SampleShape {
                detail: format!("row has {} entries, model has {m}", row.len()),
            });
        }
        crate::screen::finite_values("sample row", row)?;
        if !value.is_finite() {
            return Err(BmfError::NonFiniteInput {
                what: "sample value",
            });
        }
        // New core column: w_i = g_i D⁻¹ g_newᵀ; diagonal 1 + g_new D⁻¹ g_newᵀ.
        let k = self.rows.len();
        let mut w = Vector::zeros(k);
        for (i, prev) in self.rows.iter().enumerate() {
            w[i] = weighted_dot(prev, row, &self.d_inv);
        }
        let d = 1.0 + weighted_dot(row, row, &self.d_inv);
        match &mut self.core {
            None => {
                let first = Matrix::from_rows(&[&[d]])?;
                self.core = Some(first.cholesky()?);
            }
            Some(chol) => chol.extend(&w, d)?,
        }
        self.rows.push(row.to_vec());
        self.values.push(value);
        Ok(())
    }

    /// The current MAP coefficients — identical to a batch fast-solver
    /// fit over all absorbed samples.
    ///
    /// # Errors
    ///
    /// Returns [`BmfError::Linalg`] on numerical failure. Calling this
    /// with zero samples returns the prior mean (the MAP estimate with no
    /// data).
    // bmf-lint: allow(screen-before-math) -- every sample row was screened on ingestion; this only folds cached screened data
    pub fn coefficients(&self) -> Result<Vector> {
        let m = self.d_inv.len();
        // rhs = Gᵀf + prior_rhs; t = D⁻¹ rhs. Clone: the accumulation
        // must not disturb the cached prior term, which later queries
        // reuse.
        let mut rhs = self.prior_rhs.clone();
        for (row, &f) in self.rows.iter().zip(&self.values) {
            for (r, &g) in rhs.iter_mut().zip(row) {
                *r += g * f;
            }
        }
        let t = Vector::from_fn(m, |i| self.d_inv[i] * rhs[i]);
        let Some(chol) = &self.core else {
            return Ok(t); // no data: pure prior
        };
        // y = core⁻¹ (G t); alpha = t − D⁻¹ Gᵀ y.
        let gt = Vector::from_fn(self.rows.len(), |i| {
            self.rows[i].iter().zip(t.iter()).map(|(a, b)| a * b).sum()
        });
        let y = chol.solve(&gt)?;
        let mut alpha = t;
        for (i, row) in self.rows.iter().enumerate() {
            let yi = y[i];
            for (j, &g) in row.iter().enumerate() {
                alpha[j] -= self.d_inv[j] * g * yi;
            }
        }
        Ok(alpha)
    }
}

fn weighted_dot(a: &[f64], b: &[f64], w: &[f64]) -> f64 {
    a.iter().zip(b).zip(w).map(|((x, y), z)| x * y * z).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map_estimate::{map_estimate_with, SolverKind};
    use crate::prior::PriorKind;
    use bmf_stat::normal::StandardNormal;
    use bmf_stat::rng::seeded;

    fn random_rows(k: usize, m: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = seeded(seed);
        let mut s = StandardNormal::new();
        (0..k).map(|_| s.sample_vec(&mut rng, m)).collect()
    }

    #[test]
    fn matches_batch_fit_after_every_sample() {
        let m = 12;
        let early: Vec<f64> = (0..m).map(|i| 0.7 / (1.0 + i as f64)).collect();
        let prior = Prior::from_coeffs(PriorKind::NonZeroMean, &early);
        let rows = random_rows(7, m, 1);
        let values: Vec<f64> = rows.iter().map(|r| r.iter().sum::<f64>() * 0.3).collect();

        let mut seq = SequentialBmf::new(&prior, 2.0).unwrap();
        for k in 0..rows.len() {
            seq.add_sample(&rows[k], values[k]).unwrap();
            let online = seq.coefficients().unwrap();
            // Batch reference over the first k+1 samples.
            let g = Matrix::from_rows(&rows[..=k].iter().map(|r| r.as_slice()).collect::<Vec<_>>())
                .unwrap();
            let f = Vector::from(&values[..=k]);
            let batch = map_estimate_with(&g, &f, &prior, 2.0, SolverKind::Fast).unwrap();
            let rel = online.sub(&batch).unwrap().norm2() / batch.norm2().max(1e-30);
            assert!(rel < 1e-9, "divergence at sample {k}: {rel}");
        }
    }

    #[test]
    fn zero_samples_returns_prior_mean() {
        let prior = Prior::from_coeffs(PriorKind::NonZeroMean, &[2.0, -1.0]);
        let seq = SequentialBmf::new(&prior, 5.0).unwrap();
        let alpha = seq.coefficients().unwrap();
        assert!((alpha[0] - 2.0).abs() < 1e-12);
        assert!((alpha[1] + 1.0).abs() < 1e-12);
        // Zero-mean prior: estimate is zero.
        let zm = SequentialBmf::new(&Prior::from_coeffs(PriorKind::ZeroMean, &[2.0, -1.0]), 5.0)
            .unwrap();
        assert_eq!(zm.coefficients().unwrap().as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn missing_prior_rejected() {
        let prior = Prior::new(PriorKind::ZeroMean, vec![Some(1.0), None]);
        assert!(matches!(
            SequentialBmf::new(&prior, 1.0),
            Err(BmfError::Config { .. })
        ));
    }

    #[test]
    fn row_shape_validated() {
        let prior = Prior::from_coeffs(PriorKind::ZeroMean, &[1.0, 1.0]);
        let mut seq = SequentialBmf::new(&prior, 1.0).unwrap();
        assert!(matches!(
            seq.add_sample(&[1.0], 0.0),
            Err(BmfError::SampleShape { .. })
        ));
    }

    #[test]
    fn estimate_converges_to_truth_with_data() {
        let m = 6;
        let truth = [1.0, -0.5, 0.25, 2.0, 0.0, -1.0];
        // Mediocre prior with a small hyper-parameter (weak weight), lots
        // of data: the data must win.
        let early: Vec<f64> = truth.iter().map(|t| t * 0.5 + 0.2).collect();
        let prior = Prior::from_coeffs(PriorKind::NonZeroMean, &early);
        let mut seq = SequentialBmf::new(&prior, 1e-3).unwrap();
        let rows = random_rows(60, m, 3);
        for row in &rows {
            let f: f64 = row.iter().zip(&truth).map(|(g, t)| g * t).sum();
            seq.add_sample(row, f).unwrap();
        }
        let alpha = seq.coefficients().unwrap();
        for (a, t) in alpha.iter().zip(&truth) {
            assert!((a - t).abs() < 0.05, "{a} vs {t}");
        }
        assert_eq!(seq.num_samples(), 60);
        assert_eq!(seq.num_coefficients(), 6);
    }
}
