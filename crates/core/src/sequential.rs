//! Sequential (online) Bayesian model fusion — the streaming posterior
//! engine (DESIGN.md §14).
//!
//! In practice the K late-stage samples do not arrive at once: each
//! post-layout simulation takes hours, and a designer wants the best
//! current model — and its trajectory — after *every* finished run. This
//! module keeps the MAP estimate up to date as samples stream in.
//!
//! Instead of refitting from scratch (Θ(K²M) per sample through the fast
//! solver), [`SequentialBmf`] maintains a growing Cholesky factor of the
//! Woodbury core `I + G D⁻¹ Gᵀ` ([`bmf_linalg::GrowingCholesky`]), which
//! absorbs one row per sample at Θ(K·M + K²); producing the current
//! coefficients is then Θ(K·M). The estimates are **bit-identical** to a
//! batch [`map_estimate`](crate::map_estimate::map_estimate) (fast
//! solver, rung 0) over the samples seen so far: every kernel below
//! replicates the batch accumulation order exactly, and the streaming
//! tests pin the equality with `f64::to_bits`.
//!
//! All scratch lives in a caller-owned [`SeqWorkspace`]; with the
//! workspace and estimator sized up front ([`SequentialBmf::reserve`]),
//! the steady-state `add_sample`/`coefficients_into` path performs zero
//! heap allocations (asserted under the counting allocator by the
//! sequential bench's `--smoke` run).
//!
//! Beyond plain updating, the engine supports the BMFMC-style active
//! loop: [`SequentialBmf::suggest_next`] ranks candidate points by
//! posterior predictive variance (pick the most informative simulation
//! next), and [`StopPolicy`] decides when further late-stage simulations
//! stop paying for themselves against a cost budget
//! (`bmf_circuits::sim::CostLedger` accounting).
//!
//! Limitations: the hyper-parameter and prior family are fixed up front
//! (re-run selection offline when desired), and every coefficient needs a
//! finite prior — missing-prior coefficients would change the core
//! structure per sample (use the batch path for those).

use bmf_basis::basis::OrthonormalBasis;
use bmf_linalg::view::{dot3, matvec_into, matvec_transpose_into, MatRef};
use bmf_linalg::{GrowingCholesky, LinalgError, Vector};

use crate::options::FitOptions;
use crate::prior::{Prior, PriorKind};
use crate::snapshot::ModelSnapshot;
use crate::workspace::{resize, SeqWorkspace};
use crate::{BmfError, Result};

/// An online MAP estimator absorbing one sample at a time.
///
/// # Example
///
/// ```
/// use bmf_core::prior::{Prior, PriorKind};
/// use bmf_core::sequential::SequentialBmf;
/// use bmf_core::workspace::SeqWorkspace;
///
/// # fn main() -> Result<(), bmf_core::BmfError> {
/// let prior = Prior::from_coeffs(PriorKind::NonZeroMean, &[1.0, -0.5]);
/// let mut seq = SequentialBmf::new(&prior, 1.0)?;
/// let mut ws = SeqWorkspace::new();
/// seq.add_sample(&[1.0, 0.0], 1.2, &mut ws)?; // basis row, observed value
/// seq.add_sample(&[0.0, 1.0], -0.4, &mut ws)?;
/// let alpha = seq.coefficients()?;
/// assert_eq!(alpha.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SequentialBmf {
    /// Prior precision diagonal inverse `D⁻¹` (hyper already folded in).
    d_inv: Vec<f64>,
    /// Prior part of the right-hand side.
    prior_rhs: Vec<f64>,
    /// Accumulated design rows, flat row-major (K × M).
    rows: Vec<f64>,
    /// Accumulated responses.
    values: Vec<f64>,
    /// Growing Cholesky factor of the core `I + G D⁻¹ Gᵀ`.
    core: GrowingCholesky,
    /// The fixed hyper-parameter, kept for snapshot provenance.
    hyper: f64,
    /// The fixed prior family, kept for snapshot provenance.
    prior_kind: PriorKind,
}

impl SequentialBmf {
    /// Creates the estimator for a fixed prior and hyper-parameter.
    ///
    /// # Errors
    ///
    /// * [`BmfError::Config`] (parameter `"prior"`) when the prior has
    ///   missing or zero/sub-epsilon entries (either would change the
    ///   core structure per sample; see module docs), or (parameter
    ///   `"hyper"`) when the hyper-parameter is not positive and finite.
    /// * [`BmfError::NonFiniteInput`] when a prior coefficient is NaN/±∞.
    pub fn new(prior: &Prior, hyper: f64) -> Result<Self> {
        if !(hyper > 0.0 && hyper.is_finite()) {
            return Err(BmfError::config(
                "hyper",
                format!("must be positive and finite, got {hyper}"),
            ));
        }
        crate::screen::finite_prior(prior)?;
        if prior.num_zero_precision() > 0 {
            return Err(BmfError::config(
                "prior",
                "sequential BMF requires a nonzero finite prior for every coefficient",
            ));
        }
        let precisions = prior.precisions(hyper);
        let d_inv: Vec<f64> = precisions.iter().map(|d| 1.0 / d).collect();
        Ok(SequentialBmf {
            d_inv,
            prior_rhs: prior.rhs_contribution(hyper),
            rows: Vec::new(),
            values: Vec::new(),
            core: GrowingCholesky::new(),
            hyper,
            prior_kind: prior.kind(),
        })
    }

    /// Number of coefficients.
    pub fn num_coefficients(&self) -> usize {
        self.d_inv.len()
    }

    /// Number of samples absorbed so far.
    pub fn num_samples(&self) -> usize {
        self.values.len()
    }

    /// The fixed hyper-parameter this estimator runs at.
    pub fn hyper(&self) -> f64 {
        self.hyper
    }

    /// The fixed prior family this estimator runs under.
    pub fn prior_kind(&self) -> PriorKind {
        self.prior_kind
    }

    /// Pre-allocates storage for at least `samples` total absorbed
    /// samples (row storage, responses, and the growing core factor), so
    /// the streaming loop up to that size never reallocates. Paired with
    /// [`SeqWorkspace::for_problem`] this makes steady-state
    /// `add_sample` allocation-free.
    pub fn reserve(&mut self, samples: usize) {
        let m = self.d_inv.len();
        let extra = samples.saturating_sub(self.values.len());
        self.rows.reserve(extra * m);
        self.values.reserve(extra);
        self.core.reserve(samples);
    }

    /// Borrowed view of the accumulated design matrix (K × M, flat
    /// row-major — no per-row indirection).
    fn design(&self) -> Result<MatRef<'_>> {
        MatRef::from_row_major(&self.rows, self.values.len(), self.d_inv.len())
            .map_err(BmfError::from)
    }

    /// Absorbs one sample: `row` is the basis row `[g₁(x) … g_M(x)]` and
    /// `value` the observed performance. Θ(K·M + K²); allocation-free at
    /// steady state (after [`SequentialBmf::reserve`]).
    ///
    /// # Errors
    ///
    /// * [`BmfError::SampleShape`] when `row.len()` differs from the
    ///   coefficient count.
    /// * [`BmfError::NonFiniteInput`] when the row or value is NaN/±∞
    ///   (the estimator state is left untouched).
    /// * [`BmfError::Linalg`] when the extended core loses positive
    ///   definiteness (numerically impossible for exact arithmetic; a
    ///   defensive error path). The estimator state is left untouched.
    pub fn add_sample(&mut self, row: &[f64], value: f64, ws: &mut SeqWorkspace) -> Result<()> {
        let m = self.d_inv.len();
        if row.len() != m {
            return Err(BmfError::SampleShape {
                detail: format!("row has {} entries, model has {m}", row.len()),
            });
        }
        crate::screen::finite_values("sample row", row)?;
        if !value.is_finite() {
            return Err(BmfError::NonFiniteInput {
                what: "sample value",
            });
        }
        // New core column w_i = g_new D⁻¹ g_iᵀ and diagonal
        // 1 + g_new D⁻¹ g_newᵀ — the same `dot3` kernel (and operand
        // order) `outer_gram_diag_into` uses when the batch solver
        // assembles the full core, so the grown factor matches a fresh
        // batch factorization bit for bit.
        let k = self.values.len();
        resize(&mut ws.w, k);
        for i in 0..k {
            ws.w[i] = dot3(row, &self.rows[i * m..(i + 1) * m], &self.d_inv);
        }
        let d = dot3(row, row, &self.d_inv) + 1.0;
        self.core.push_row(&ws.w, d)?;
        self.rows.extend_from_slice(row);
        self.values.push(value);
        Ok(())
    }

    /// Writes the current MAP coefficients into `out` (length M, fully
    /// overwritten) using only workspace scratch — **bit-identical** to a
    /// batch fast-solver fit over all absorbed samples, allocation-free
    /// at steady state.
    ///
    /// With zero samples the prior mean (the MAP estimate with no data)
    /// is written.
    ///
    /// # Errors
    ///
    /// Returns [`BmfError::Linalg`] on numerical failure or when
    /// `out.len()` differs from the coefficient count.
    // bmf-lint: allow(screen-reachability) -- every sample row was screened on ingestion; this only folds cached screened data
    pub fn coefficients_into(&self, ws: &mut SeqWorkspace, out: &mut [f64]) -> Result<()> {
        let m = self.d_inv.len();
        let k = self.values.len();
        if out.len() != m {
            return Err(LinalgError::DimensionMismatch {
                op: "sequential coefficients (output buffer)",
                lhs: (m, 1),
                rhs: (out.len(), 1),
            }
            .into());
        }
        let g = self.design()?;
        // rhs = Gᵀf, then += prior contribution — the exact accumulation
        // order of the batch `map_estimate_ws`.
        resize(&mut ws.rhs, m);
        matvec_transpose_into(g, &self.values, &mut ws.rhs)?;
        for (r, b0) in ws.rhs.iter_mut().zip(&self.prior_rhs) {
            *r += b0;
        }
        // t = D⁻¹ rhs.
        ws.t.clear();
        ws.t.extend((0..m).map(|i| self.d_inv[i] * ws.rhs[i]));
        if k == 0 {
            out.copy_from_slice(&ws.t); // no data: pure prior
            return Ok(());
        }
        // y = core⁻¹ (G t); alpha = t − D⁻¹ Gᵀ y.
        resize(&mut ws.y, k);
        matvec_into(g, &ws.t, &mut ws.y)?;
        self.core.solve_in_place(&mut ws.y)?;
        resize(&mut ws.uy, m);
        matvec_transpose_into(g, &ws.y, &mut ws.uy)?;
        for (i, o) in out.iter_mut().enumerate() {
            *o = ws.t[i] - self.d_inv[i] * ws.uy[i];
        }
        Ok(())
    }

    /// The current MAP coefficients — convenience wrapper around
    /// [`SequentialBmf::coefficients_into`] that allocates its own
    /// workspace and output vector. Streaming loops should use the
    /// `_into` form.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SequentialBmf::coefficients_into`].
    // bmf-lint: allow(screen-reachability) -- delegates to coefficients_into, which only folds cached screened data
    pub fn coefficients(&self) -> Result<Vector> {
        let mut ws = SeqWorkspace::new();
        let mut out = vec![0.0; self.d_inv.len()];
        self.coefficients_into(&mut ws, &mut out)?;
        Ok(Vector::from(out))
    }

    /// The posterior predictive variance `gᵀ Σ g` of a candidate basis
    /// row `g`, where `Σ = (D + GᵀG)⁻¹` (up to the common noise scale) —
    /// computed via the Woodbury identity without forming Σ:
    /// `v = g D⁻¹ gᵀ − ‖L⁻¹ u‖²` with `u = G D⁻¹ gᵀ` and `L` the growing
    /// core factor. Θ(K·M + K²); allocation-free at steady state.
    ///
    /// # Errors
    ///
    /// * [`BmfError::SampleShape`] when `row.len()` differs from the
    ///   coefficient count.
    /// * [`BmfError::NonFiniteInput`] when the row is NaN/±∞.
    /// * [`BmfError::Linalg`] on a degenerate core factor.
    pub fn predictive_variance(&self, row: &[f64], ws: &mut SeqWorkspace) -> Result<f64> {
        let m = self.d_inv.len();
        if row.len() != m {
            return Err(BmfError::SampleShape {
                detail: format!("row has {} entries, model has {m}", row.len()),
            });
        }
        crate::screen::finite_values("candidate row", row)?;
        let base = dot3(row, row, &self.d_inv);
        let k = self.values.len();
        resize(&mut ws.u, k);
        for i in 0..k {
            ws.u[i] = dot3(row, &self.rows[i * m..(i + 1) * m], &self.d_inv);
        }
        self.core.forward_solve_in_place(&mut ws.u)?;
        let mut reduction = 0.0;
        for &x in ws.u.iter() {
            reduction += x * x;
        }
        Ok(base - reduction)
    }

    /// BMFMC-style active selection: ranks candidate basis rows by
    /// posterior predictive variance and returns the index (and variance)
    /// of the most informative one — the simulation whose result would
    /// shrink posterior uncertainty the most. Returns `None` for an
    /// empty candidate set; ties resolve to the first maximum.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SequentialBmf::predictive_variance`] (the
    /// candidate matrix must have M columns).
    pub fn suggest_next(
        &self,
        candidates: MatRef<'_>,
        ws: &mut SeqWorkspace,
    ) -> Result<Option<(usize, f64)>> {
        let m = self.d_inv.len();
        if candidates.ncols() != m {
            return Err(BmfError::SampleShape {
                detail: format!(
                    "candidate rows have {} entries, model has {m}",
                    candidates.ncols()
                ),
            });
        }
        let mut best: Option<(usize, f64)> = None;
        for i in 0..candidates.nrows() {
            let v = self.predictive_variance(candidates.row(i), ws)?;
            let improves = match best {
                None => true,
                Some((_, bv)) => v.total_cmp(&bv) == std::cmp::Ordering::Greater,
            };
            if improves {
                best = Some((i, v));
            }
        }
        Ok(best)
    }

    /// Captures the current streamed estimate as a [`ModelSnapshot`]
    /// under `job_id`, recording this estimator's prior family and
    /// hyper-parameter as provenance. The snapshot validates cleanly and
    /// round-trips through `bmf-persist` like any batch-fitted model.
    ///
    /// # Errors
    ///
    /// * The conditions of [`SequentialBmf::coefficients_into`].
    /// * [`BmfError::PriorShape`] when `basis.len()` differs from the
    ///   coefficient count.
    // bmf-lint: allow(screen-reachability) -- delegates to coefficients_into, which only folds cached screened data
    pub fn snapshot(
        &self,
        job_id: &str,
        basis: &OrthonormalBasis,
        ws: &mut SeqWorkspace,
    ) -> Result<ModelSnapshot> {
        let m = self.d_inv.len();
        if basis.len() != m {
            return Err(BmfError::PriorShape {
                basis_terms: basis.len(),
                prior_entries: m,
            });
        }
        let mut coeffs = vec![0.0; m];
        self.coefficients_into(ws, &mut coeffs)?;
        let model = crate::model::PerformanceModel::new(basis.clone(), coeffs)?;
        let mut snap = ModelSnapshot::from_model(job_id, model);
        snap.options = FitOptions::default().hyper(self.hyper);
        snap.prior_kind = self.prior_kind;
        snap.hyper = self.hyper;
        snap.selection.kind = self.prior_kind;
        snap.selection.hyper = self.hyper;
        Ok(snap)
    }
}

/// Cost-aware stopping rule for the streaming loop: stop when the next
/// simulation would blow the budget, or when the posterior has converged
/// and further samples stop paying for themselves.
///
/// Costs are in the same unit as `bmf_circuits::sim::CostLedger`
/// (simulator hours); variance is the posterior predictive variance
/// scale of [`SequentialBmf::predictive_variance`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopPolicy {
    /// Total simulation budget in hours; a sample that would push
    /// spending past this stops the loop.
    pub budget_hours: f64,
    /// Never declare variance convergence before this many samples.
    pub min_samples: usize,
    /// Declare convergence once the peak candidate variance falls to or
    /// below this floor (and `min_samples` is met).
    pub variance_floor: f64,
}

/// Why a [`StopPolicy`] decided to stop the streaming loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The next sample would exceed the simulation budget.
    BudgetExhausted,
    /// The posterior variance fell below the floor with enough samples.
    VarianceConverged,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopReason::BudgetExhausted => write!(f, "budget exhausted"),
            StopReason::VarianceConverged => write!(f, "variance converged"),
        }
    }
}

impl StopPolicy {
    /// Decides whether to stop *before* running the next simulation.
    ///
    /// * `samples` — samples absorbed so far,
    /// * `spent_hours` — simulation hours already charged,
    /// * `next_sample_hours` — the cost of the candidate simulation,
    /// * `peak_variance` — the largest posterior predictive variance
    ///   over the remaining candidates (from
    ///   [`SequentialBmf::suggest_next`]).
    ///
    /// The budget check runs first: a loop that is both converged and
    /// out of budget reports [`StopReason::BudgetExhausted`].
    pub fn decide(
        &self,
        samples: usize,
        spent_hours: f64,
        next_sample_hours: f64,
        peak_variance: f64,
    ) -> Option<StopReason> {
        if spent_hours + next_sample_hours > self.budget_hours {
            return Some(StopReason::BudgetExhausted);
        }
        if samples >= self.min_samples && peak_variance <= self.variance_floor {
            return Some(StopReason::VarianceConverged);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map_estimate::{map_estimate_with, SolverKind};
    use crate::prior::PriorKind;
    use bmf_linalg::Matrix;
    use bmf_stat::normal::StandardNormal;
    use bmf_stat::rng::seeded;

    fn random_rows(k: usize, m: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = seeded(seed);
        let mut s = StandardNormal::new();
        (0..k).map(|_| s.sample_vec(&mut rng, m)).collect()
    }

    #[test]
    fn matches_batch_fit_after_every_sample_bitwise() {
        let m = 12;
        let early: Vec<f64> = (0..m).map(|i| 0.7 / (1.0 + i as f64)).collect();
        let prior = Prior::from_coeffs(PriorKind::NonZeroMean, &early);
        let rows = random_rows(7, m, 1);
        let values: Vec<f64> = rows.iter().map(|r| r.iter().sum::<f64>() * 0.3).collect();

        let mut seq = SequentialBmf::new(&prior, 2.0).unwrap();
        let mut ws = SeqWorkspace::new();
        for k in 0..rows.len() {
            seq.add_sample(&rows[k], values[k], &mut ws).unwrap();
            let online = seq.coefficients().unwrap();
            // Batch reference over the first k+1 samples.
            let g = Matrix::from_rows(&rows[..=k].iter().map(|r| r.as_slice()).collect::<Vec<_>>())
                .unwrap();
            let f = Vector::from(&values[..=k]);
            let batch = map_estimate_with(&g, &f, &prior, 2.0, SolverKind::Fast).unwrap();
            for (j, (a, b)) in online.iter().zip(batch.iter()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "bitwise divergence at sample {k}, coeff {j}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn coefficients_into_is_bitwise_stable_across_workspaces() {
        let m = 9;
        let prior = Prior::from_coeffs(PriorKind::ZeroMean, &vec![0.8; m]);
        let mut seq = SequentialBmf::new(&prior, 1.5).unwrap();
        let mut ws = SeqWorkspace::new();
        for (i, row) in random_rows(5, m, 9).iter().enumerate() {
            seq.add_sample(row, 0.1 * i as f64 - 0.2, &mut ws).unwrap();
        }
        // A dirty, differently-sized workspace must not change results.
        let mut dirty = SeqWorkspace::for_problem(64, 64);
        dirty.rhs.resize(64, f64::NAN);
        dirty.t.resize(64, -3.0);
        let mut a = vec![0.0; m];
        let mut b = vec![0.0; m];
        seq.coefficients_into(&mut ws, &mut a).unwrap();
        seq.coefficients_into(&mut dirty, &mut b).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn zero_samples_returns_prior_mean() {
        let prior = Prior::from_coeffs(PriorKind::NonZeroMean, &[2.0, -1.0]);
        let seq = SequentialBmf::new(&prior, 5.0).unwrap();
        let alpha = seq.coefficients().unwrap();
        assert!((alpha[0] - 2.0).abs() < 1e-12);
        assert!((alpha[1] + 1.0).abs() < 1e-12);
        // Zero-mean prior: estimate is zero.
        let zm = SequentialBmf::new(&Prior::from_coeffs(PriorKind::ZeroMean, &[2.0, -1.0]), 5.0)
            .unwrap();
        assert_eq!(zm.coefficients().unwrap().as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn missing_prior_rejected() {
        let prior = Prior::new(PriorKind::ZeroMean, vec![Some(1.0), None]);
        assert!(matches!(
            SequentialBmf::new(&prior, 1.0),
            Err(BmfError::Config { .. })
        ));
    }

    #[test]
    fn row_shape_validated() {
        let prior = Prior::from_coeffs(PriorKind::ZeroMean, &[1.0, 1.0]);
        let mut seq = SequentialBmf::new(&prior, 1.0).unwrap();
        let mut ws = SeqWorkspace::new();
        assert!(matches!(
            seq.add_sample(&[1.0], 0.0, &mut ws),
            Err(BmfError::SampleShape { .. })
        ));
    }

    #[test]
    fn failed_add_sample_leaves_state_untouched() {
        let prior = Prior::from_coeffs(PriorKind::NonZeroMean, &[1.0, -0.5]);
        let mut seq = SequentialBmf::new(&prior, 1.0).unwrap();
        let mut ws = SeqWorkspace::new();
        seq.add_sample(&[1.0, 0.5], 0.9, &mut ws).unwrap();
        let before = seq.coefficients().unwrap();
        for bad in [
            seq.add_sample(&[f64::NAN, 1.0], 0.5, &mut ws),
            seq.add_sample(&[1.0, 1.0], f64::INFINITY, &mut ws),
            seq.add_sample(&[1.0], 0.0, &mut ws),
        ] {
            assert!(bad.is_err());
        }
        assert_eq!(seq.num_samples(), 1);
        let after = seq.coefficients().unwrap();
        for (x, y) in before.iter().zip(after.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // The stream still absorbs good samples after rejections.
        seq.add_sample(&[0.0, 1.0], -0.3, &mut ws).unwrap();
        assert_eq!(seq.num_samples(), 2);
    }

    #[test]
    fn estimate_converges_to_truth_with_data() {
        let m = 6;
        let truth = [1.0, -0.5, 0.25, 2.0, 0.0, -1.0];
        // Mediocre prior with a small hyper-parameter (weak weight), lots
        // of data: the data must win.
        let early: Vec<f64> = truth.iter().map(|t| t * 0.5 + 0.2).collect();
        let prior = Prior::from_coeffs(PriorKind::NonZeroMean, &early);
        let mut seq = SequentialBmf::new(&prior, 1e-3).unwrap();
        seq.reserve(60);
        let mut ws = SeqWorkspace::for_problem(60, m);
        let rows = random_rows(60, m, 3);
        for row in &rows {
            let f: f64 = row.iter().zip(&truth).map(|(g, t)| g * t).sum();
            seq.add_sample(row, f, &mut ws).unwrap();
        }
        let alpha = seq.coefficients().unwrap();
        for (a, t) in alpha.iter().zip(&truth) {
            assert!((a - t).abs() < 0.05, "{a} vs {t}");
        }
        assert_eq!(seq.num_samples(), 60);
        assert_eq!(seq.num_coefficients(), 6);
    }

    #[test]
    fn suggest_next_prefers_unexplored_direction() {
        let prior = Prior::from_coeffs(PriorKind::ZeroMean, &[1.0, 1.0]);
        let mut seq = SequentialBmf::new(&prior, 1.0).unwrap();
        let mut ws = SeqWorkspace::new();
        // One sample along e1: variance along e2 stays at the prior level.
        seq.add_sample(&[1.0, 0.0], 0.7, &mut ws).unwrap();
        let cands = [1.0, 0.0, 0.0, 1.0];
        let view = MatRef::from_row_major(&cands, 2, 2).unwrap();
        let (idx, v) = seq.suggest_next(view, &mut ws).unwrap().unwrap();
        assert_eq!(idx, 1, "the unexplored direction is more informative");
        let v0 = seq.predictive_variance(&cands[..2], &mut ws).unwrap();
        assert!(v > v0, "{v} should exceed explored-direction variance {v0}");
        // Absorbing the suggested sample shrinks its variance.
        seq.add_sample(&[0.0, 1.0], -0.1, &mut ws).unwrap();
        let v_after = seq.predictive_variance(&cands[2..], &mut ws).unwrap();
        assert!(v_after < v);
        // Empty candidate set: nothing to suggest.
        let empty = MatRef::from_row_major(&[], 0, 2).unwrap();
        assert!(seq.suggest_next(empty, &mut ws).unwrap().is_none());
    }

    #[test]
    fn predictive_variance_matches_posterior_diag() {
        // For a unit candidate e_j, gᵀΣg is exactly Σ_jj — cross-check
        // against the batch posterior variance diagonal.
        let m = 5;
        let early: Vec<f64> = (0..m).map(|i| 1.0 + 0.3 * i as f64).collect();
        let prior = Prior::from_coeffs(PriorKind::NonZeroMean, &early);
        let mut seq = SequentialBmf::new(&prior, 1.3).unwrap();
        let mut ws = SeqWorkspace::new();
        let rows = random_rows(4, m, 17);
        for (i, row) in rows.iter().enumerate() {
            seq.add_sample(row, (i as f64).sin(), &mut ws).unwrap();
        }
        let g = Matrix::from_rows(&rows.iter().map(|r| r.as_slice()).collect::<Vec<_>>()).unwrap();
        let diag = crate::map_estimate::posterior_variance_diag(&g, &prior, 1.3).unwrap();
        for j in 0..m {
            let mut e = vec![0.0; m];
            e[j] = 1.0;
            let v = seq.predictive_variance(&e, &mut ws).unwrap();
            assert!(
                (v - diag[j]).abs() < 1e-10 * diag[j].abs().max(1e-12),
                "j={j}: {v} vs {}",
                diag[j]
            );
        }
    }

    #[test]
    fn stop_policy_orders_budget_before_convergence() {
        let policy = StopPolicy {
            budget_hours: 10.0,
            min_samples: 3,
            variance_floor: 1e-4,
        };
        // Under budget, not converged: keep going.
        assert_eq!(policy.decide(5, 2.0, 1.0, 1.0), None);
        // Next sample would exceed the budget.
        assert_eq!(
            policy.decide(5, 9.5, 1.0, 1.0),
            Some(StopReason::BudgetExhausted)
        );
        // Converged and over budget: budget wins.
        assert_eq!(
            policy.decide(5, 9.5, 1.0, 1e-6),
            Some(StopReason::BudgetExhausted)
        );
        // Converged with enough samples.
        assert_eq!(
            policy.decide(3, 1.0, 1.0, 1e-5),
            Some(StopReason::VarianceConverged)
        );
        // Converged variance but too few samples: keep going.
        assert_eq!(policy.decide(2, 1.0, 1.0, 1e-5), None);
        assert_eq!(StopReason::BudgetExhausted.to_string(), "budget exhausted");
    }

    #[test]
    fn snapshot_records_streaming_provenance() {
        use bmf_basis::basis::OrthonormalBasis;
        let basis = OrthonormalBasis::linear(2); // 3 terms
        let early = [0.5, 1.0, -0.5];
        let prior = Prior::from_coeffs(PriorKind::NonZeroMean, &early);
        let mut seq = SequentialBmf::new(&prior, 2.5).unwrap();
        let mut ws = SeqWorkspace::new();
        seq.add_sample(&basis.row(&[0.2, -0.1]), 0.9, &mut ws)
            .unwrap();
        let snap = seq.snapshot("osc.gain", &basis, &mut ws).unwrap();
        snap.validate().unwrap();
        assert_eq!(snap.job_id, "osc.gain");
        assert_eq!(snap.prior_kind, PriorKind::NonZeroMean);
        assert_eq!(snap.hyper, 2.5);
        let direct = seq.coefficients().unwrap();
        for (a, b) in snap.model.coeffs().iter().zip(direct.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Shape mismatch between basis and estimator is rejected.
        let wide = OrthonormalBasis::linear(5);
        assert!(matches!(
            seq.snapshot("osc.gain", &wide, &mut ws),
            Err(BmfError::PriorShape { .. })
        ));
    }
}
