//! Hyper-parameter selection by N-fold cross-validation (§IV-D).
//!
//! The hyper-parameter (`σ₀²` for the zero-mean prior, `η = σ₀²/λ²` for
//! the nonzero-mean prior) controls how strongly the prior is weighted
//! against the late-stage data. Following the paper, it is chosen from a
//! grid by N-fold cross-validation: split the K training samples into N
//! non-overlapping groups; fit on N−1 groups, estimate the relative error
//! (eq. 59) on the held-out group; average over the N rotations; pick the
//! grid value with the smallest mean error.
//!
//! Two layers of work-sharing keep the sweep cheap:
//!
//! * a [`FoldPlan`] computes the per-fold row index tables **once**;
//!   the fold "sub-matrices" are zero-copy row views of the one shared
//!   design matrix, reused across every grid point, both prior
//!   families, and (through [`crate::batch::BatchFitter`]) every job of
//!   a batch fit;
//! * each fold builds one [`MapSweep`], so adding grid points costs only
//!   a K×K factorization each, not a full Θ(K²M) rebuild.

use bmf_linalg::view::matvec_into;
use bmf_linalg::{Matrix, Vector};
use bmf_stat::crossval::KFold;

use crate::fusion::FitCounters;
use crate::map_estimate::MapSweep;
use crate::options::{validate_folds, validate_grid};
use crate::prior::{Prior, PriorKind};
use crate::workspace::{resize, SolveWorkspace};
use crate::{BmfError, Result};

/// Cross-validation configuration.
///
/// This is the cross-validation slice of
/// [`FitOptions`](crate::options::FitOptions); the standalone
/// `cross_validate_*` entry points keep accepting it directly.
#[derive(Debug, Clone, PartialEq)]
pub struct CvConfig {
    /// Number of folds (the paper's `N`).
    pub folds: usize,
    /// Candidate hyper-parameter values. Must be positive.
    pub grid: Vec<f64>,
    /// Seed for the fold shuffle.
    pub seed: u64,
}

impl Default for CvConfig {
    fn default() -> Self {
        CvConfig {
            folds: 5,
            grid: log_grid(1e-4, 1e4, 17),
            seed: 0,
        }
    }
}

/// Builds a logarithmically spaced grid from `lo` to `hi` inclusive.
///
/// # Panics
///
/// Panics when `lo` or `hi` is not positive, or `n < 2`.
///
/// ```
/// let g = bmf_core::hyper::log_grid(0.01, 100.0, 5);
/// assert_eq!(g.len(), 5);
/// assert!((g[2] - 1.0).abs() < 1e-12);
/// ```
pub fn log_grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
    assert!(n >= 2, "need at least two grid points");
    let llo = lo.ln();
    let lhi = hi.ln();
    (0..n)
        .map(|i| (llo + (lhi - llo) * i as f64 / (n - 1) as f64).exp())
        .collect()
}

/// Outcome of a cross-validation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CvOutcome {
    /// The grid value with the lowest mean validation error.
    pub best_hyper: f64,
    /// The corresponding mean validation error.
    pub best_error: f64,
    /// Mean validation error for every grid value, in grid order.
    pub errors: Vec<(f64, f64)>,
}

/// One fold's row selection, as indices into the shared design matrix.
///
/// The fitting engines view `G` through these index tables
/// ([`Matrix::rows_view`]) instead of materializing per-fold copies —
/// the fold "sub-matrices" are zero-copy and always in sync with the
/// one shared `G`.
#[derive(Debug, Clone)]
pub(crate) struct PlannedFold {
    /// Row indices used for training in this fold.
    pub(crate) train: Vec<usize>,
    /// Row indices held out for validation.
    pub(crate) validate: Vec<usize>,
}

/// The per-fold row selections for one `(K, folds, seed)` triple.
#[derive(Debug, Clone)]
pub(crate) struct FoldPlan {
    pub(crate) folds: Vec<PlannedFold>,
}

impl FoldPlan {
    /// Splits `k` sample rows into `folds` seeded folds.
    pub(crate) fn new(k: usize, folds: usize, seed: u64) -> Result<Self> {
        let kfold = KFold::new(k, folds, seed).map_err(|_| BmfError::NotEnoughSamples {
            available: k,
            required: folds,
            context: "cross-validation folds",
        })?;
        let folds = kfold
            .iter()
            .map(|fold| PlannedFold {
                train: fold.train,
                validate: fold.validate,
            })
            .collect();
        Ok(FoldPlan { folds })
    }
}

/// Validation errors of one fold: `errors[kind][grid]`, `None` where the
/// (hyper-dependent) solve failed structurally. A fold that is too small
/// for the missing-prior block is represented as `None` at the fold
/// level (see [`sweep_fold`]).
pub(crate) type FoldErrors = Vec<Vec<Option<f64>>>;

/// Sweeps one fold over the whole grid for each requested prior family,
/// reusing `sweep`'s Woodbury kernels for every `(grid, kind)` cell.
///
/// The fold's responses are gathered into (and every per-cell solve runs
/// out of) `ws`; the validation sub-matrix is a zero-copy row view of
/// the shared `g`. `counters.map_solves` is incremented per successful
/// solve; kernel-build accounting belongs to whoever constructed `sweep`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sweep_fold(
    sweep: &MapSweep<'_>,
    g: &Matrix,
    fold: &PlannedFold,
    f: &Vector,
    grid: &[f64],
    kinds: &[PriorKind],
    counters: &mut FitCounters,
    ws: &mut SolveWorkspace,
) -> Result<FoldErrors> {
    // Split the workspace so the fold buffers and the MAP scratch can be
    // borrowed simultaneously (the solver never touches fold buffers).
    let SolveWorkspace { map, fold: fs } = ws;
    fs.f_train.clear();
    fs.f_train.extend(fold.train.iter().map(|&i| f[i]));
    fs.f_val.clear();
    fs.f_val.extend(fold.validate.iter().map(|&i| f[i]));
    let g_val = g.rows_view(&fold.validate);
    let val_norm = fs
        .f_val
        .iter()
        .map(|x| x * x)
        .sum::<f64>()
        .sqrt()
        .max(f64::MIN_POSITIVE);
    resize(&mut fs.alpha, g.ncols());
    resize(&mut fs.pred, fold.validate.len());
    let mut errors: FoldErrors = vec![vec![None; grid.len()]; kinds.len()];
    for (gi, &h) in grid.iter().enumerate() {
        for (ki, &kind) in kinds.iter().enumerate() {
            match sweep.solve_kind_into(&fs.f_train, h, kind, map, &mut fs.alpha) {
                // A degraded cell still contributes its validation error —
                // the ladder made it solvable — but the escalation is
                // recorded so the fit can report it.
                Ok(res) => counters.record_resilience(&res),
                Err(BmfError::Linalg(_)) => continue,
                Err(e) => return Err(e),
            }
            counters.map_solves += 1;
            matvec_into(g_val, &fs.alpha, &mut fs.pred)?;
            // Fused validation error: bit-identical to
            // `pred.sub(f_val).norm2() / val_norm` (axpy with -1.0 is an
            // exact IEEE subtraction, and the sum runs in index order).
            let mut s = 0.0;
            for (p, v) in fs.pred.iter().zip(&fs.f_val) {
                let d = p - v;
                s += d * d;
            }
            errors[ki][gi] = Some(s.sqrt() / val_norm);
        }
    }
    Ok(errors)
}

/// Builds the kernel for one fold — a zero-copy row view of the shared
/// design matrix — or `None` when the fold is too small for the
/// missing-prior block (the fold is then skipped, matching the
/// historical behaviour).
pub(crate) fn build_fold_sweep<'a>(
    g: &'a Matrix,
    fold: &'a PlannedFold,
    prior_nzm: &Prior,
    counters: &mut FitCounters,
) -> Result<Option<MapSweep<'a>>> {
    match MapSweep::from_view(g.rows_view(&fold.train), prior_nzm) {
        Ok(s) => {
            counters.kernels_built += 1;
            Ok(Some(s))
        }
        Err(BmfError::NotEnoughSamples { .. }) => Ok(None),
        Err(e) => Err(e),
    }
}

/// Reduces per-fold error tables into one [`CvOutcome`] per prior family.
///
/// Accumulation runs fold-major in fold order, so the result is
/// bit-identical to the historical single-pass loop — and to any
/// parallel schedule that produced `fold_errors`, since the reduction
/// order is fixed here.
pub(crate) fn reduce_outcomes<'a, I>(
    grid: &[f64],
    num_kinds: usize,
    fold_errors: I,
    available: usize,
    required: usize,
) -> Result<Vec<CvOutcome>>
where
    I: IntoIterator<Item = Option<&'a FoldErrors>>,
{
    let mut sums = vec![vec![0.0f64; grid.len()]; num_kinds];
    let mut counts = vec![vec![0usize; grid.len()]; num_kinds];
    for fe in fold_errors.into_iter().flatten() {
        for ki in 0..num_kinds {
            for (gi, cell) in fe[ki].iter().enumerate() {
                if let Some(err) = cell {
                    sums[ki][gi] += err;
                    counts[ki][gi] += 1;
                }
            }
        }
    }
    let mut outcomes = Vec::with_capacity(num_kinds);
    for ki in 0..num_kinds {
        let mut errors = Vec::with_capacity(grid.len());
        let mut best: Option<(f64, f64)> = None;
        for (gi, &h) in grid.iter().enumerate() {
            if counts[ki][gi] == 0 {
                continue;
            }
            let mean = sums[ki][gi] / counts[ki][gi] as f64;
            errors.push((h, mean));
            if best.is_none_or(|(_, e)| mean < e) {
                best = Some((h, mean));
            }
        }
        let (best_hyper, best_error) = best.ok_or(BmfError::NotEnoughSamples {
            available,
            required,
            context: "cross-validation (all folds degenerate)",
        })?;
        outcomes.push(CvOutcome {
            best_hyper,
            best_error,
            errors,
        });
    }
    Ok(outcomes)
}

/// Runs the full cross-validation sweep for the requested prior families
/// over a pre-built [`FoldPlan`], sharing one kernel per fold across
/// every `(grid, kind)` cell. Fold sub-matrices are row views of the
/// shared `g`; all per-cell scratch lives in `ws`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn cv_on_plan(
    g: &Matrix,
    plan: &FoldPlan,
    f: &Vector,
    prior: &Prior,
    grid: &[f64],
    kinds: &[PriorKind],
    counters: &mut FitCounters,
    ws: &mut SolveWorkspace,
) -> Result<Vec<CvOutcome>> {
    // Kernels are built from the nonzero-mean view so prior means are
    // cached; zero-mean solves reuse the same kernels with the mean
    // dropped (the precisions — and thus the Woodbury kernels — are
    // identical for both families).
    let nzm = prior.with_kind(PriorKind::NonZeroMean);
    let mut fold_errors: Vec<Option<FoldErrors>> = Vec::with_capacity(plan.folds.len());
    for fold in &plan.folds {
        let Some(sweep) = build_fold_sweep(g, fold, &nzm, counters)? else {
            fold_errors.push(None);
            continue;
        };
        fold_errors.push(Some(sweep_fold(
            &sweep, g, fold, f, grid, kinds, counters, ws,
        )?));
    }
    let available = f.len();
    reduce_outcomes(
        grid,
        kinds.len(),
        fold_errors.iter().map(Option::as_ref),
        available,
        plan.folds.len(),
    )
}

fn validate_cv(g: &Matrix, f: &Vector, prior: &Prior, config: &CvConfig) -> Result<()> {
    validate_grid(&config.grid)?;
    validate_folds(config.folds)?;
    let k = g.nrows();
    if f.len() != k {
        return Err(BmfError::SampleShape {
            detail: format!("{k} design rows vs {} values", f.len()),
        });
    }
    crate::screen::finite_matrix("design matrix", g)?;
    crate::screen::finite_values("response values", f.as_slice())?;
    crate::screen::finite_prior(prior)?;
    Ok(())
}

/// Cross-validates the MAP hyper-parameter on an explicit design matrix,
/// using the prior family `prior` carries.
///
/// # Errors
///
/// * [`BmfError::Config`] for an empty or non-positive grid (`"grid"`),
///   or fewer than 2 folds (`"folds"`).
/// * [`BmfError::NotEnoughSamples`] when `K < folds` or a fold leaves too
///   few samples to identify the missing-prior coefficients.
/// * [`BmfError::Linalg`] when every grid value fails structurally.
pub fn cross_validate_hyper(
    g: &Matrix,
    f: &Vector,
    prior: &Prior,
    config: &CvConfig,
) -> Result<CvOutcome> {
    validate_cv(g, f, prior, config)?;
    let plan = FoldPlan::new(g.nrows(), config.folds, config.seed)?;
    let mut counters = FitCounters::default();
    let mut ws = SolveWorkspace::for_problem(g.nrows(), g.ncols());
    let mut outcomes = cv_on_plan(
        g,
        &plan,
        f,
        prior,
        &config.grid,
        &[prior.kind()],
        &mut counters,
        &mut ws,
    )?;
    outcomes.pop().ok_or(BmfError::Internal {
        detail: "cross-validation produced no outcome for the requested prior kind",
    })
}

/// Cross-validates *both* prior families over the grid in one pass,
/// sharing the per-fold row selections and the expensive Woodbury
/// kernels (which depend only on the prior precisions, identical for the
/// two families).
///
/// Returns `(zero_mean, nonzero_mean)` outcomes. This is what BMF-PS uses
/// internally; it is ~2× cheaper than calling
/// [`cross_validate_hyper`] twice.
///
/// # Errors
///
/// Same conditions as [`cross_validate_hyper`].
pub fn cross_validate_both(
    g: &Matrix,
    f: &Vector,
    prior: &Prior,
    config: &CvConfig,
) -> Result<(CvOutcome, CvOutcome)> {
    validate_cv(g, f, prior, config)?;
    let plan = FoldPlan::new(g.nrows(), config.folds, config.seed)?;
    let mut counters = FitCounters::default();
    let mut ws = SolveWorkspace::for_problem(g.nrows(), g.ncols());
    let mut outcomes = cv_on_plan(
        g,
        &plan,
        f,
        prior,
        &config.grid,
        &[PriorKind::ZeroMean, PriorKind::NonZeroMean],
        &mut counters,
        &mut ws,
    )?;
    let missing = BmfError::Internal {
        detail: "cross-validation produced fewer outcomes than prior kinds",
    };
    let nzm = outcomes.pop().ok_or(missing.clone())?;
    let zm = outcomes.pop().ok_or(missing)?;
    Ok((zm, nzm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prior::PriorKind;
    use bmf_stat::normal::StandardNormal;
    use bmf_stat::rng::seeded;

    fn design(k: usize, m: usize, seed: u64) -> Matrix {
        let mut rng = seeded(seed);
        let mut s = StandardNormal::new();
        Matrix::from_fn(k, m, |_, _| s.sample(&mut rng))
    }

    #[test]
    fn log_grid_endpoints() {
        let g = log_grid(0.1, 10.0, 3);
        assert!((g[0] - 0.1).abs() < 1e-12);
        assert!((g[1] - 1.0).abs() < 1e-12);
        assert!((g[2] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn accurate_prior_drives_hyper_up() {
        // When the early model equals the truth, CV should prefer a large
        // hyper (trust the prior); when it is garbage, a small one.
        let m = 25;
        let k = 20;
        let g = design(k, m, 1);
        let truth: Vec<f64> = (0..m).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let f = g.matvec(&Vector::from(truth.clone())).unwrap();

        let good = Prior::from_coeffs(PriorKind::NonZeroMean, &truth);
        let cfg = CvConfig {
            folds: 4,
            grid: log_grid(1e-3, 1e3, 13),
            seed: 3,
        };
        let out_good = cross_validate_hyper(&g, &f, &good, &cfg).unwrap();

        let garbage: Vec<f64> = truth.iter().map(|t| -t * 3.0 + 0.7).collect();
        let bad = Prior::from_coeffs(PriorKind::NonZeroMean, &garbage);
        let out_bad = cross_validate_hyper(&g, &f, &bad, &cfg).unwrap();

        assert!(
            out_good.best_hyper > out_bad.best_hyper,
            "good prior should be trusted more: {} vs {}",
            out_good.best_hyper,
            out_bad.best_hyper
        );
        assert!(out_good.best_error < out_bad.best_error);
    }

    #[test]
    fn best_is_argmin_of_reported_errors() {
        let m = 10;
        let g = design(12, m, 2);
        let truth: Vec<f64> = (0..m).map(|i| (i as f64 * 0.3).sin()).collect();
        let f = g.matvec(&Vector::from(truth.clone())).unwrap();
        let prior = Prior::from_coeffs(PriorKind::ZeroMean, &truth);
        let out = cross_validate_hyper(&g, &f, &prior, &CvConfig::default()).unwrap();
        let min = out
            .errors
            .iter()
            .fold(f64::INFINITY, |acc, &(_, e)| acc.min(e));
        assert!((out.best_error - min).abs() < 1e-15);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = design(10, 8, 4);
        let f = Vector::from_fn(10, |i| i as f64);
        let prior = Prior::from_coeffs(PriorKind::ZeroMean, &[1.0; 8]);
        let cfg = CvConfig::default();
        let a = cross_validate_hyper(&g, &f, &prior, &cfg).unwrap();
        let b = cross_validate_hyper(&g, &f, &prior, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn config_validation() {
        let g = design(10, 4, 5);
        let f = Vector::zeros(10);
        let prior = Prior::from_coeffs(PriorKind::ZeroMean, &[1.0; 4]);
        let empty = CvConfig {
            grid: vec![],
            ..CvConfig::default()
        };
        assert!(matches!(
            cross_validate_hyper(&g, &f, &prior, &empty),
            Err(BmfError::Config {
                parameter: "grid",
                ..
            })
        ));
        let one_fold = CvConfig {
            folds: 1,
            ..CvConfig::default()
        };
        assert!(matches!(
            cross_validate_hyper(&g, &f, &prior, &one_fold),
            Err(BmfError::Config {
                parameter: "folds",
                ..
            })
        ));
        let neg = CvConfig {
            grid: vec![-1.0],
            ..CvConfig::default()
        };
        assert!(matches!(
            cross_validate_hyper(&g, &f, &prior, &neg),
            Err(BmfError::Config {
                parameter: "grid",
                ..
            })
        ));
    }

    #[test]
    fn both_matches_individual_runs() {
        let m = 14;
        let g = design(16, m, 7);
        let truth: Vec<f64> = (0..m).map(|i| 0.8 / (1.0 + i as f64)).collect();
        let f = g.matvec(&Vector::from(truth.clone())).unwrap();
        let prior = Prior::from_coeffs(PriorKind::ZeroMean, &truth);
        let cfg = CvConfig {
            folds: 4,
            grid: log_grid(1e-2, 1e2, 7),
            seed: 5,
        };
        let (zm, nzm) = cross_validate_both(&g, &f, &prior, &cfg).unwrap();
        let zm_solo =
            cross_validate_hyper(&g, &f, &prior.with_kind(PriorKind::ZeroMean), &cfg).unwrap();
        let nzm_solo =
            cross_validate_hyper(&g, &f, &prior.with_kind(PriorKind::NonZeroMean), &cfg).unwrap();
        assert_eq!(zm.best_hyper, zm_solo.best_hyper);
        assert!((zm.best_error - zm_solo.best_error).abs() < 1e-12);
        assert_eq!(nzm.best_hyper, nzm_solo.best_hyper);
        assert!((nzm.best_error - nzm_solo.best_error).abs() < 1e-12);
    }

    #[test]
    fn too_few_samples_for_folds() {
        let g = design(3, 4, 6);
        let f = Vector::zeros(3);
        let prior = Prior::from_coeffs(PriorKind::ZeroMean, &[1.0; 4]);
        let cfg = CvConfig {
            folds: 5,
            ..CvConfig::default()
        };
        assert!(matches!(
            cross_validate_hyper(&g, &f, &prior, &cfg),
            Err(BmfError::NotEnoughSamples { .. })
        ));
    }

    #[test]
    fn fold_plan_selects_each_row_once_as_validation() {
        let g = design(13, 4, 8);
        let plan = FoldPlan::new(13, 5, 3).unwrap();
        let mut seen = vec![false; 13];
        for fold in &plan.folds {
            let g_train = g.rows_view(&fold.train);
            let g_val = g.rows_view(&fold.validate);
            assert_eq!(g_train.nrows(), fold.train.len());
            assert_eq!(g_val.nrows(), fold.validate.len());
            for (i, &row) in fold.validate.iter().enumerate() {
                assert!(!seen[row], "row {row} validated twice");
                seen[row] = true;
                for j in 0..4 {
                    assert_eq!(g_val.get(i, j), g[(row, j)]);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
