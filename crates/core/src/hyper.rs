//! Hyper-parameter selection by N-fold cross-validation (§IV-D).
//!
//! The hyper-parameter (`σ₀²` for the zero-mean prior, `η = σ₀²/λ²` for
//! the nonzero-mean prior) controls how strongly the prior is weighted
//! against the late-stage data. Following the paper, it is chosen from a
//! grid by N-fold cross-validation: split the K training samples into N
//! non-overlapping groups; fit on N−1 groups, estimate the relative error
//! (eq. 59) on the held-out group; average over the N rotations; pick the
//! grid value with the smallest mean error.
//!
//! Each fold builds one [`MapSweep`], so adding grid points costs only a
//! K×K factorization each, not a full Θ(K²M) rebuild.

use bmf_linalg::{Matrix, Vector};
use bmf_stat::crossval::KFold;

use crate::map_estimate::MapSweep;
use crate::prior::Prior;
use crate::{BmfError, Result};

/// Cross-validation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CvConfig {
    /// Number of folds (the paper's `N`).
    pub folds: usize,
    /// Candidate hyper-parameter values. Must be positive.
    pub grid: Vec<f64>,
    /// Seed for the fold shuffle.
    pub seed: u64,
}

impl Default for CvConfig {
    fn default() -> Self {
        CvConfig {
            folds: 5,
            grid: log_grid(1e-4, 1e4, 17),
            seed: 0,
        }
    }
}

/// Builds a logarithmically spaced grid from `lo` to `hi` inclusive.
///
/// # Panics
///
/// Panics when `lo` or `hi` is not positive, or `n < 2`.
///
/// ```
/// let g = bmf_core::hyper::log_grid(0.01, 100.0, 5);
/// assert_eq!(g.len(), 5);
/// assert!((g[2] - 1.0).abs() < 1e-12);
/// ```
pub fn log_grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
    assert!(n >= 2, "need at least two grid points");
    let llo = lo.ln();
    let lhi = hi.ln();
    (0..n)
        .map(|i| (llo + (lhi - llo) * i as f64 / (n - 1) as f64).exp())
        .collect()
}

/// Outcome of a cross-validation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CvOutcome {
    /// The grid value with the lowest mean validation error.
    pub best_hyper: f64,
    /// The corresponding mean validation error.
    pub best_error: f64,
    /// Mean validation error for every grid value, in grid order.
    pub errors: Vec<(f64, f64)>,
}

/// Cross-validates the MAP hyper-parameter on an explicit design matrix.
///
/// # Errors
///
/// * [`BmfError::InvalidConfig`] for an empty or non-positive grid, or
///   fewer than 2 folds.
/// * [`BmfError::NotEnoughSamples`] when `K < folds` or a fold leaves too
///   few samples to identify the missing-prior coefficients.
/// * [`BmfError::Linalg`] when every grid value fails structurally.
pub fn cross_validate_hyper(
    g: &Matrix,
    f: &Vector,
    prior: &Prior,
    config: &CvConfig,
) -> Result<CvOutcome> {
    if config.grid.is_empty() || config.grid.iter().any(|&h| h <= 0.0 || !h.is_finite()) {
        return Err(BmfError::InvalidConfig {
            detail: "hyper-parameter grid must be non-empty and positive".into(),
        });
    }
    if config.folds < 2 {
        return Err(BmfError::InvalidConfig {
            detail: format!("need at least 2 folds, got {}", config.folds),
        });
    }
    let k = g.nrows();
    if f.len() != k {
        return Err(BmfError::SampleShape {
            detail: format!("{k} design rows vs {} values", f.len()),
        });
    }
    let kfold =
        KFold::new(k, config.folds, config.seed).map_err(|_| BmfError::NotEnoughSamples {
            available: k,
            required: config.folds,
            context: "cross-validation folds",
        })?;

    let mut sums = vec![0.0f64; config.grid.len()];
    let mut counts = vec![0usize; config.grid.len()];
    for fold in kfold.folds() {
        let g_train = select_rows(g, &fold.train);
        let f_train = Vector::from_fn(fold.train.len(), |i| f[fold.train[i]]);
        let g_val = select_rows(g, &fold.validate);
        let f_val = Vector::from_fn(fold.validate.len(), |i| f[fold.validate[i]]);
        let val_norm = f_val.norm2().max(f64::MIN_POSITIVE);

        let sweep = match MapSweep::new(&g_train, prior) {
            Ok(s) => s,
            // A fold may be too small for the missing-prior block; skip it.
            Err(BmfError::NotEnoughSamples { .. }) => continue,
            Err(e) => return Err(e),
        };
        for (gi, &h) in config.grid.iter().enumerate() {
            let alpha = match sweep.solve(&f_train, h) {
                Ok(a) => a,
                Err(BmfError::Linalg(_)) => continue,
                Err(e) => return Err(e),
            };
            let pred = g_val.matvec(&alpha)?;
            let err = pred.sub(&f_val)?.norm2() / val_norm;
            sums[gi] += err;
            counts[gi] += 1;
        }
    }

    let mut errors = Vec::with_capacity(config.grid.len());
    let mut best: Option<(f64, f64)> = None;
    for (gi, &h) in config.grid.iter().enumerate() {
        if counts[gi] == 0 {
            continue;
        }
        let mean = sums[gi] / counts[gi] as f64;
        errors.push((h, mean));
        if best.is_none_or(|(_, e)| mean < e) {
            best = Some((h, mean));
        }
    }
    let (best_hyper, best_error) = best.ok_or(BmfError::NotEnoughSamples {
        available: k,
        required: config.folds,
        context: "cross-validation (all folds degenerate)",
    })?;
    Ok(CvOutcome {
        best_hyper,
        best_error,
        errors,
    })
}

/// Cross-validates *both* prior families over the grid in one pass,
/// sharing the expensive per-fold Woodbury kernels (which depend only on
/// the prior precisions, identical for the two families).
///
/// Returns `(zero_mean, nonzero_mean)` outcomes. This is what BMF-PS uses
/// internally; it is ~2× cheaper than calling
/// [`cross_validate_hyper`] twice.
///
/// # Errors
///
/// Same conditions as [`cross_validate_hyper`].
pub fn cross_validate_both(
    g: &Matrix,
    f: &Vector,
    prior: &Prior,
    config: &CvConfig,
) -> Result<(CvOutcome, CvOutcome)> {
    use crate::prior::PriorKind;

    if config.grid.is_empty() || config.grid.iter().any(|&h| h <= 0.0 || !h.is_finite()) {
        return Err(BmfError::InvalidConfig {
            detail: "hyper-parameter grid must be non-empty and positive".into(),
        });
    }
    if config.folds < 2 {
        return Err(BmfError::InvalidConfig {
            detail: format!("need at least 2 folds, got {}", config.folds),
        });
    }
    let k = g.nrows();
    if f.len() != k {
        return Err(BmfError::SampleShape {
            detail: format!("{k} design rows vs {} values", f.len()),
        });
    }
    let kfold =
        KFold::new(k, config.folds, config.seed).map_err(|_| BmfError::NotEnoughSamples {
            available: k,
            required: config.folds,
            context: "cross-validation folds",
        })?;

    // Build sweeps from the nonzero-mean view so prior means are cached;
    // the zero-mean solves reuse the same kernels with the mean dropped.
    let nzm_prior = prior.with_kind(PriorKind::NonZeroMean);
    let kinds = [PriorKind::ZeroMean, PriorKind::NonZeroMean];
    let mut sums = [
        vec![0.0f64; config.grid.len()],
        vec![0.0f64; config.grid.len()],
    ];
    let mut counts = [
        vec![0usize; config.grid.len()],
        vec![0usize; config.grid.len()],
    ];

    for fold in kfold.folds() {
        let g_train = select_rows(g, &fold.train);
        let f_train = Vector::from_fn(fold.train.len(), |i| f[fold.train[i]]);
        let g_val = select_rows(g, &fold.validate);
        let f_val = Vector::from_fn(fold.validate.len(), |i| f[fold.validate[i]]);
        let val_norm = f_val.norm2().max(f64::MIN_POSITIVE);

        let sweep = match MapSweep::new(&g_train, &nzm_prior) {
            Ok(s) => s,
            Err(BmfError::NotEnoughSamples { .. }) => continue,
            Err(e) => return Err(e),
        };
        for (gi, &h) in config.grid.iter().enumerate() {
            for (ki, &kind) in kinds.iter().enumerate() {
                let alpha = match sweep.solve_with_kind(&f_train, h, kind) {
                    Ok(a) => a,
                    Err(BmfError::Linalg(_)) => continue,
                    Err(e) => return Err(e),
                };
                let pred = g_val.matvec(&alpha)?;
                let err = pred.sub(&f_val)?.norm2() / val_norm;
                sums[ki][gi] += err;
                counts[ki][gi] += 1;
            }
        }
    }

    let mut outcomes = Vec::with_capacity(2);
    for ki in 0..2 {
        let mut errors = Vec::new();
        let mut best: Option<(f64, f64)> = None;
        for (gi, &h) in config.grid.iter().enumerate() {
            if counts[ki][gi] == 0 {
                continue;
            }
            let mean = sums[ki][gi] / counts[ki][gi] as f64;
            errors.push((h, mean));
            if best.is_none_or(|(_, e)| mean < e) {
                best = Some((h, mean));
            }
        }
        let (best_hyper, best_error) = best.ok_or(BmfError::NotEnoughSamples {
            available: k,
            required: config.folds,
            context: "cross-validation (all folds degenerate)",
        })?;
        outcomes.push(CvOutcome {
            best_hyper,
            best_error,
            errors,
        });
    }
    let nzm = outcomes.pop().expect("two outcomes");
    let zm = outcomes.pop().expect("two outcomes");
    Ok((zm, nzm))
}

pub(crate) fn select_rows(g: &Matrix, rows: &[usize]) -> Matrix {
    Matrix::from_fn(rows.len(), g.ncols(), |i, j| g[(rows[i], j)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prior::PriorKind;
    use bmf_stat::normal::StandardNormal;
    use bmf_stat::rng::seeded;

    fn design(k: usize, m: usize, seed: u64) -> Matrix {
        let mut rng = seeded(seed);
        let mut s = StandardNormal::new();
        Matrix::from_fn(k, m, |_, _| s.sample(&mut rng))
    }

    #[test]
    fn log_grid_endpoints() {
        let g = log_grid(0.1, 10.0, 3);
        assert!((g[0] - 0.1).abs() < 1e-12);
        assert!((g[1] - 1.0).abs() < 1e-12);
        assert!((g[2] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn accurate_prior_drives_hyper_up() {
        // When the early model equals the truth, CV should prefer a large
        // hyper (trust the prior); when it is garbage, a small one.
        let m = 25;
        let k = 20;
        let g = design(k, m, 1);
        let truth: Vec<f64> = (0..m).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let f = g.matvec(&Vector::from(truth.clone())).unwrap();

        let good = Prior::from_coeffs(PriorKind::NonZeroMean, &truth);
        let cfg = CvConfig {
            folds: 4,
            grid: log_grid(1e-3, 1e3, 13),
            seed: 3,
        };
        let out_good = cross_validate_hyper(&g, &f, &good, &cfg).unwrap();

        let garbage: Vec<f64> = truth.iter().map(|t| -t * 3.0 + 0.7).collect();
        let bad = Prior::from_coeffs(PriorKind::NonZeroMean, &garbage);
        let out_bad = cross_validate_hyper(&g, &f, &bad, &cfg).unwrap();

        assert!(
            out_good.best_hyper > out_bad.best_hyper,
            "good prior should be trusted more: {} vs {}",
            out_good.best_hyper,
            out_bad.best_hyper
        );
        assert!(out_good.best_error < out_bad.best_error);
    }

    #[test]
    fn best_is_argmin_of_reported_errors() {
        let m = 10;
        let g = design(12, m, 2);
        let truth: Vec<f64> = (0..m).map(|i| (i as f64 * 0.3).sin()).collect();
        let f = g.matvec(&Vector::from(truth.clone())).unwrap();
        let prior = Prior::from_coeffs(PriorKind::ZeroMean, &truth);
        let out = cross_validate_hyper(&g, &f, &prior, &CvConfig::default()).unwrap();
        let min = out
            .errors
            .iter()
            .fold(f64::INFINITY, |acc, &(_, e)| acc.min(e));
        assert!((out.best_error - min).abs() < 1e-15);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = design(10, 8, 4);
        let f = Vector::from_fn(10, |i| i as f64);
        let prior = Prior::from_coeffs(PriorKind::ZeroMean, &[1.0; 8]);
        let cfg = CvConfig::default();
        let a = cross_validate_hyper(&g, &f, &prior, &cfg).unwrap();
        let b = cross_validate_hyper(&g, &f, &prior, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn config_validation() {
        let g = design(10, 4, 5);
        let f = Vector::zeros(10);
        let prior = Prior::from_coeffs(PriorKind::ZeroMean, &[1.0; 4]);
        let empty = CvConfig {
            grid: vec![],
            ..CvConfig::default()
        };
        assert!(matches!(
            cross_validate_hyper(&g, &f, &prior, &empty),
            Err(BmfError::InvalidConfig { .. })
        ));
        let one_fold = CvConfig {
            folds: 1,
            ..CvConfig::default()
        };
        assert!(matches!(
            cross_validate_hyper(&g, &f, &prior, &one_fold),
            Err(BmfError::InvalidConfig { .. })
        ));
        let neg = CvConfig {
            grid: vec![-1.0],
            ..CvConfig::default()
        };
        assert!(matches!(
            cross_validate_hyper(&g, &f, &prior, &neg),
            Err(BmfError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn both_matches_individual_runs() {
        let m = 14;
        let g = design(16, m, 7);
        let truth: Vec<f64> = (0..m).map(|i| 0.8 / (1.0 + i as f64)).collect();
        let f = g.matvec(&Vector::from(truth.clone())).unwrap();
        let prior = Prior::from_coeffs(PriorKind::ZeroMean, &truth);
        let cfg = CvConfig {
            folds: 4,
            grid: log_grid(1e-2, 1e2, 7),
            seed: 5,
        };
        let (zm, nzm) = cross_validate_both(&g, &f, &prior, &cfg).unwrap();
        let zm_solo =
            cross_validate_hyper(&g, &f, &prior.with_kind(PriorKind::ZeroMean), &cfg).unwrap();
        let nzm_solo =
            cross_validate_hyper(&g, &f, &prior.with_kind(PriorKind::NonZeroMean), &cfg).unwrap();
        assert_eq!(zm.best_hyper, zm_solo.best_hyper);
        assert!((zm.best_error - zm_solo.best_error).abs() < 1e-12);
        assert_eq!(nzm.best_hyper, nzm_solo.best_hyper);
        assert!((nzm.best_error - nzm_solo.best_error).abs() < 1e-12);
    }

    #[test]
    fn too_few_samples_for_folds() {
        let g = design(3, 4, 6);
        let f = Vector::zeros(3);
        let prior = Prior::from_coeffs(PriorKind::ZeroMean, &[1.0; 4]);
        let cfg = CvConfig {
            folds: 5,
            ..CvConfig::default()
        };
        assert!(matches!(
            cross_validate_hyper(&g, &f, &prior, &cfg),
            Err(BmfError::NotEnoughSamples { .. })
        ));
    }
}
