use std::error::Error;
use std::fmt;

use bmf_linalg::LinalgError;

/// Errors produced by the BMF fitting pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BmfError {
    /// An underlying linear-algebra operation failed.
    Linalg(LinalgError),
    /// Sample points/values disagree in count, or a point has the wrong
    /// dimension.
    SampleShape {
        /// Description of the mismatch.
        detail: String,
    },
    /// The prior length does not match the basis size.
    PriorShape {
        /// Number of basis terms.
        basis_terms: usize,
        /// Number of prior entries supplied.
        prior_entries: usize,
    },
    /// Not enough samples for the requested operation (e.g. fewer samples
    /// than cross-validation folds, or fewer than the number of
    /// missing-prior coefficients).
    NotEnoughSamples {
        /// Samples available.
        available: usize,
        /// Samples required.
        required: usize,
        /// What needed them.
        context: &'static str,
    },
    /// A hyper-parameter grid or configuration value is invalid.
    InvalidConfig {
        /// Description of the problem.
        detail: String,
    },
}

impl fmt::Display for BmfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BmfError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            BmfError::SampleShape { detail } => write!(f, "sample shape mismatch: {detail}"),
            BmfError::PriorShape {
                basis_terms,
                prior_entries,
            } => write!(
                f,
                "prior has {prior_entries} entries but the basis has {basis_terms} terms"
            ),
            BmfError::NotEnoughSamples {
                available,
                required,
                context,
            } => write!(
                f,
                "{context} needs at least {required} samples, got {available}"
            ),
            BmfError::InvalidConfig { detail } => write!(f, "invalid configuration: {detail}"),
        }
    }
}

impl Error for BmfError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BmfError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for BmfError {
    fn from(e: LinalgError) -> Self {
        BmfError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = BmfError::from(LinalgError::Singular { pivot: 3 });
        assert!(e.to_string().contains("singular"));
        assert!(e.source().is_some());
        let e2 = BmfError::PriorShape {
            basis_terms: 10,
            prior_entries: 8,
        };
        assert!(e2.to_string().contains("10"));
        assert!(e2.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<BmfError>();
    }
}
