use std::error::Error;
use std::fmt;

use bmf_linalg::LinalgError;

/// Errors produced by the BMF fitting pipeline.
///
/// The enum is `#[non_exhaustive]`: downstream `match` expressions must
/// carry a wildcard arm so new variants can be added without a breaking
/// release.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BmfError {
    /// An underlying linear-algebra operation failed.
    Linalg(LinalgError),
    /// Sample points/values disagree in count, or a point has the wrong
    /// dimension.
    SampleShape {
        /// Description of the mismatch.
        detail: String,
    },
    /// The prior length does not match the basis size.
    PriorShape {
        /// Number of basis terms.
        basis_terms: usize,
        /// Number of prior entries supplied.
        prior_entries: usize,
    },
    /// Not enough samples for the requested operation (e.g. fewer samples
    /// than cross-validation folds, or fewer than the number of
    /// missing-prior coefficients).
    NotEnoughSamples {
        /// Samples available.
        available: usize,
        /// Samples required.
        required: usize,
        /// What needed them.
        context: &'static str,
    },
    /// A configuration value is invalid. `parameter` names the offending
    /// knob (e.g. `"grid"`, `"folds"`, `"hyper"`) so callers can react
    /// programmatically instead of parsing the message.
    Config {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// What is wrong with it.
        detail: String,
    },
    /// An input contained NaN or ±∞ where finite data is required. Raised
    /// by the boundary screening at every public fitting entry point, so
    /// contaminated measurements fail fast with a named input instead of
    /// propagating into the solvers.
    NonFiniteInput {
        /// Which input contained the non-finite value.
        what: &'static str,
    },
    /// An internal invariant was violated — a bug in this crate, not in
    /// the caller's inputs. Returned instead of panicking so the
    /// panic-free contract holds even for library defects.
    Internal {
        /// Description of the violated invariant.
        detail: &'static str,
    },
    /// A model snapshot failed validation: inconsistent provenance, an
    /// empty job id, or a decoded artifact whose contents do not form a
    /// servable model. Raised by
    /// [`ModelSnapshot::validate`](crate::snapshot::ModelSnapshot::validate)
    /// and by the persistence layer when routing corruption through this
    /// ladder.
    Snapshot {
        /// What is wrong with the snapshot.
        detail: String,
    },
    /// The service shed the request at admission because the named queue
    /// is at capacity. Overload is a property of the *system*, not the
    /// request: the caller may retry after a drain. `class` names the
    /// queue ("fit", "append") so shed accounting can be per-class.
    Overloaded {
        /// Which bounded queue rejected the request.
        class: &'static str,
        /// The queue's configured capacity.
        capacity: usize,
    },
    /// The request's virtual-time deadline passed before the service
    /// drained it. The work was never started: expiry is decided at drain
    /// time, before batching, so expired members cannot perturb the
    /// surviving cohort.
    DeadlineExceeded {
        /// The request's deadline, in virtual nanoseconds.
        deadline_ns: u64,
        /// The drain's virtual now when the request expired.
        now_ns: u64,
    },
    /// A service lookup named a key that is not (or no longer) registered
    /// — a prediction against an evicted model, or a fit referencing an
    /// unregistered point set. `what` names the registry ("model",
    /// "point set") so callers can distinguish a cold cache from a typo.
    NotFound {
        /// Which registry missed.
        what: &'static str,
        /// The key that was looked up.
        key: String,
    },
}

impl BmfError {
    /// Convenience constructor for [`BmfError::Config`].
    pub(crate) fn config(parameter: &'static str, detail: impl Into<String>) -> Self {
        BmfError::Config {
            parameter,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for BmfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BmfError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            BmfError::SampleShape { detail } => {
                write!(
                    f,
                    "sample shape mismatch between `points` and `values`: {detail}"
                )
            }
            BmfError::PriorShape {
                basis_terms,
                prior_entries,
            } => write!(
                f,
                "`prior` has {prior_entries} entries but `basis` has {basis_terms} terms"
            ),
            BmfError::NotEnoughSamples {
                available,
                required,
                context,
            } => write!(
                f,
                "{context} needs at least {required} samples, got {available}"
            ),
            BmfError::Config { parameter, detail } => {
                write!(f, "invalid value for `{parameter}`: {detail}")
            }
            BmfError::NonFiniteInput { what } => {
                write!(f, "non-finite value (NaN or infinity) in {what}")
            }
            BmfError::Internal { detail } => {
                write!(f, "internal invariant violated (library bug): {detail}")
            }
            BmfError::Snapshot { detail } => {
                write!(f, "invalid model snapshot: {detail}")
            }
            BmfError::Overloaded { class, capacity } => {
                write!(
                    f,
                    "service overloaded: `{class}` queue is at capacity ({capacity})"
                )
            }
            BmfError::DeadlineExceeded {
                deadline_ns,
                now_ns,
            } => write!(
                f,
                "deadline exceeded: due at {deadline_ns} ns, drained at {now_ns} ns"
            ),
            BmfError::NotFound { what, key } => {
                write!(f, "no {what} named `{key}` is registered")
            }
        }
    }
}

impl Error for BmfError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BmfError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for BmfError {
    fn from(e: LinalgError) -> Self {
        BmfError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = BmfError::from(LinalgError::Singular { pivot: 3 });
        assert!(e.to_string().contains("singular"));
        assert!(e.source().is_some());
        let e2 = BmfError::PriorShape {
            basis_terms: 10,
            prior_entries: 8,
        };
        assert!(e2.to_string().contains("10"));
        assert!(e2.source().is_none());
    }

    #[test]
    fn config_error_names_the_parameter() {
        let e = BmfError::config("grid", "must be non-empty");
        assert!(e.to_string().contains("`grid`"));
        assert!(e.to_string().contains("must be non-empty"));
        assert!(matches!(
            e,
            BmfError::Config {
                parameter: "grid",
                ..
            }
        ));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<BmfError>();
    }

    #[test]
    fn not_found_names_registry_and_key() {
        let e = BmfError::NotFound {
            what: "model",
            key: "ro/power".into(),
        };
        assert!(e.to_string().contains("model"));
        assert!(e.to_string().contains("`ro/power`"));
        assert!(e.source().is_none());
    }

    #[test]
    fn snapshot_error_carries_detail() {
        let e = BmfError::Snapshot {
            detail: "truncated artifact".into(),
        };
        assert!(e.to_string().contains("invalid model snapshot"));
        assert!(e.to_string().contains("truncated artifact"));
        assert!(e.source().is_none());
    }

    #[test]
    fn overloaded_names_queue_class_and_capacity() {
        let e = BmfError::Overloaded {
            class: "fit",
            capacity: 64,
        };
        assert!(e.to_string().contains("`fit`"));
        assert!(e.to_string().contains("64"));
        assert!(e.source().is_none());
    }

    #[test]
    fn deadline_exceeded_reports_both_clocks() {
        let e = BmfError::DeadlineExceeded {
            deadline_ns: 1_000,
            now_ns: 2_500,
        };
        assert!(e.to_string().contains("1000"));
        assert!(e.to_string().contains("2500"));
        assert!(e.source().is_none());
    }

    #[test]
    fn non_finite_input_names_the_input() {
        let e = BmfError::NonFiniteInput {
            what: "sample points",
        };
        assert!(e.to_string().contains("sample points"));
        assert!(e.to_string().contains("non-finite"));
    }
}
