//! Downstream applications of fitted performance models.
//!
//! The paper motivates performance modeling by what the model is *for*
//! (§I–II): "estimating parametric yield \[17\], extracting worst-case
//! corner \[18\], optimizing circuit design". This module implements the
//! first two on top of [`PerformanceModel`]:
//!
//! * [`yield_monte_carlo`] — parametric yield against a spec by sampling
//!   the *model* (thousands of model evaluations cost what one circuit
//!   simulation does),
//! * [`yield_closed_form_linear`] — the exact yield of a linear model
//!   (`f ~ N(α₀, Σ_{m>0} α_m²)` under the standard normal PDK
//!   convention),
//! * [`worst_case_corner`] — the variation point on a given sigma-sphere
//!   that extremizes the performance, via conditional-gradient iterations
//!   with analytic basis gradients (closed form for linear models).

use bmf_stat::normal::{cdf, StandardNormal};
use bmf_stat::rng::seeded;

use crate::model::PerformanceModel;
use crate::{BmfError, Result};

/// A performance specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Spec {
    /// Pass when `f ≤ limit` (e.g. power, delay).
    UpperBound(f64),
    /// Pass when `f ≥ limit` (e.g. gain, frequency).
    LowerBound(f64),
    /// Pass when `lo ≤ f ≤ hi`.
    Window {
        /// Lower acceptance limit.
        lo: f64,
        /// Upper acceptance limit.
        hi: f64,
    },
}

impl Spec {
    /// Whether a performance value passes the spec.
    pub fn passes(&self, f: f64) -> bool {
        match *self {
            Spec::UpperBound(limit) => f <= limit,
            Spec::LowerBound(limit) => f >= limit,
            Spec::Window { lo, hi } => f >= lo && f <= hi,
        }
    }
}

/// A Monte-Carlo yield estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YieldEstimate {
    /// Estimated pass fraction in `[0, 1]`.
    pub value: f64,
    /// Binomial standard error of the estimate.
    pub std_err: f64,
    /// Number of model evaluations used.
    pub samples: usize,
}

/// Estimates parametric yield by Monte-Carlo on the fitted model.
///
/// # Errors
///
/// Returns [`BmfError::Config`] (parameter `"samples"`) when
/// `samples == 0`.
///
/// # Example
///
/// ```
/// use bmf_basis::basis::OrthonormalBasis;
/// use bmf_core::applications::{yield_monte_carlo, Spec};
/// use bmf_core::model::PerformanceModel;
///
/// # fn main() -> Result<(), bmf_core::BmfError> {
/// let model = PerformanceModel::new(OrthonormalBasis::linear(1), vec![0.0, 1.0])?;
/// let y = yield_monte_carlo(&model, &Spec::UpperBound(0.0), 20_000, 1)?;
/// assert!((y.value - 0.5).abs() < 0.02); // P(N(0,1) <= 0) = 1/2
/// # Ok(())
/// # }
/// ```
pub fn yield_monte_carlo(
    model: &PerformanceModel,
    spec: &Spec,
    samples: usize,
    seed: u64,
) -> Result<YieldEstimate> {
    if samples == 0 {
        return Err(BmfError::config("samples", "need at least one sample"));
    }
    crate::screen::finite_values("model coefficients", model.coeffs())?;
    let n_vars = model.basis().num_vars();
    let mut rng = seeded(seed);
    let mut sampler = StandardNormal::new();
    let mut pass = 0usize;
    let mut x = vec![0.0; n_vars];
    for _ in 0..samples {
        sampler.fill(&mut rng, &mut x);
        if spec.passes(model.predict(&x)) {
            pass += 1;
        }
    }
    let p = pass as f64 / samples as f64;
    Ok(YieldEstimate {
        value: p,
        std_err: (p * (1.0 - p) / samples as f64).sqrt(),
        samples,
    })
}

/// Exact yield of a *linear* model: under `x ~ N(0, I)` the performance is
/// `N(α₀, Σ_{m>0} α_m²)`, so the yield is a Φ expression.
///
/// # Errors
///
/// Returns [`BmfError::Config`] when the model has any nonlinear term
/// (parameter `"model"`; use [`yield_monte_carlo`] there) or when a
/// window spec is inverted (parameter `"spec"`).
pub fn yield_closed_form_linear(model: &PerformanceModel, spec: &Spec) -> Result<f64> {
    crate::screen::finite_values("model coefficients", model.coeffs())?;
    let basis = model.basis();
    let mut mean = 0.0;
    let mut var = 0.0;
    for (term, &a) in basis.terms().iter().zip(model.coeffs()) {
        if term.is_constant() {
            mean += a;
        } else if term.total_degree() == 1 {
            var += a * a;
        } else if bmf_linalg::is_exact_nonzero(a) {
            return Err(BmfError::config(
                "model",
                format!("closed-form yield requires a linear model; term {term} is nonlinear"),
            ));
        }
    }
    let sigma = var.sqrt();
    let phi = |t: f64| -> f64 {
        if bmf_linalg::is_exact_zero(sigma) {
            if t >= 0.0 {
                1.0
            } else {
                0.0
            }
        } else {
            cdf(t / sigma)
        }
    };
    Ok(match *spec {
        Spec::UpperBound(limit) => phi(limit - mean),
        Spec::LowerBound(limit) => 1.0 - phi(limit - mean),
        Spec::Window { lo, hi } => {
            if hi < lo {
                return Err(BmfError::config(
                    "spec",
                    format!("inverted window spec: [{lo}, {hi}]"),
                ));
            }
            phi(hi - mean) - phi(lo - mean)
        }
    })
}

/// A worst-case corner: the variation point on the sigma-sphere that
/// extremizes the performance.
#[derive(Debug, Clone, PartialEq)]
pub struct Corner {
    /// The corner point in variation space (‖x‖₂ = `sigma_radius`).
    pub point: Vec<f64>,
    /// Model value at the corner.
    pub value: f64,
}

/// Extracts the worst-case corner on the sphere `‖x‖₂ = sigma_radius`:
/// maximizes the model when `maximize`, minimizes otherwise.
///
/// Uses conditional-gradient iterations with the analytic basis gradient:
/// `x ← r·∇f(x)/‖∇f(x)‖` (sign-adjusted). For a linear model the first
/// iteration is exact (`x* = ±r·α/‖α‖` over the linear coefficients,
/// the classical corner formula); for mildly nonlinear models a few
/// iterations converge to a stationary point on the sphere.
///
/// # Errors
///
/// Returns [`BmfError::Config`] (parameter `"model"`) when the model has
/// a zero gradient everywhere on the sphere (constant model), or
/// (parameter `"sigma_radius"`) when the radius is not positive and
/// finite.
pub fn worst_case_corner(
    model: &PerformanceModel,
    sigma_radius: f64,
    maximize: bool,
    max_iters: usize,
) -> Result<Corner> {
    if !(sigma_radius > 0.0 && sigma_radius.is_finite()) {
        return Err(BmfError::config(
            "sigma_radius",
            format!("must be positive and finite, got {sigma_radius}"),
        ));
    }
    crate::screen::finite_values("model coefficients", model.coeffs())?;
    let basis = model.basis();
    let n = basis.num_vars();
    let sign = if maximize { 1.0 } else { -1.0 };

    // Start from the gradient at the origin.
    let mut x = vec![0.0; n];
    let mut g = basis.model_gradient(model.coeffs(), &x);
    if bmf_linalg::is_exact_zero(norm(&g)) {
        // Degenerate at the origin (e.g. pure even model): nudge.
        x = vec![sigma_radius / (n as f64).sqrt(); n];
        g = basis.model_gradient(model.coeffs(), &x);
        if bmf_linalg::is_exact_zero(norm(&g)) {
            return Err(BmfError::config(
                "model",
                "model gradient vanishes; no corner direction exists",
            ));
        }
    }
    project(&mut x, &g, sign, sigma_radius);
    let mut value = model.predict(&x);

    for _ in 0..max_iters.max(1) {
        let g = basis.model_gradient(model.coeffs(), &x);
        if bmf_linalg::is_exact_zero(norm(&g)) {
            break;
        }
        // Clone: the projected trial point may be rejected, in which case
        // the iteration must resume from the unmodified `x`.
        let mut next = x.clone();
        project(&mut next, &g, sign, sigma_radius);
        let next_value = model.predict(&next);
        if sign * (next_value - value) <= 1e-14 * value.abs().max(1.0) {
            break;
        }
        x = next;
        value = next_value;
    }
    Ok(Corner { point: x, value })
}

fn norm(v: &[f64]) -> f64 {
    v.iter().map(|a| a * a).sum::<f64>().sqrt()
}

fn project(x: &mut [f64], g: &[f64], sign: f64, r: f64) {
    let n = norm(g);
    for (xi, gi) in x.iter_mut().zip(g) {
        *xi = sign * r * gi / n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmf_basis::basis::OrthonormalBasis;

    fn linear_model(coeffs: Vec<f64>) -> PerformanceModel {
        PerformanceModel::new(OrthonormalBasis::linear(coeffs.len() - 1), coeffs).unwrap()
    }

    #[test]
    fn spec_predicates() {
        assert!(Spec::UpperBound(1.0).passes(1.0));
        assert!(!Spec::UpperBound(1.0).passes(1.1));
        assert!(Spec::LowerBound(0.0).passes(0.0));
        assert!(Spec::Window { lo: -1.0, hi: 1.0 }.passes(0.5));
        assert!(!Spec::Window { lo: -1.0, hi: 1.0 }.passes(2.0));
    }

    #[test]
    fn closed_form_matches_phi() {
        // f = 1 + 2x: sigma = 2, P(f <= 3) = Phi(1).
        let m = linear_model(vec![1.0, 2.0]);
        let y = yield_closed_form_linear(&m, &Spec::UpperBound(3.0)).unwrap();
        assert!((y - cdf(1.0)).abs() < 1e-9);
        let y = yield_closed_form_linear(&m, &Spec::LowerBound(1.0)).unwrap();
        assert!((y - 0.5).abs() < 1e-9);
    }

    #[test]
    fn monte_carlo_agrees_with_closed_form() {
        let m = linear_model(vec![0.5, 1.0, -0.5, 0.25]);
        let spec = Spec::Window { lo: -1.0, hi: 2.0 };
        let exact = yield_closed_form_linear(&m, &spec).unwrap();
        let mc = yield_monte_carlo(&m, &spec, 50_000, 9).unwrap();
        assert!(
            (mc.value - exact).abs() < 4.0 * mc.std_err + 1e-3,
            "mc {} vs exact {exact}",
            mc.value
        );
    }

    #[test]
    fn closed_form_rejects_nonlinear() {
        let basis = OrthonormalBasis::total_degree(2, 2, 100);
        let mut coeffs = vec![0.0; basis.len()];
        coeffs[0] = 1.0;
        coeffs[3] = 0.5; // he2 term
        let m = PerformanceModel::new(basis, coeffs).unwrap();
        assert!(matches!(
            yield_closed_form_linear(&m, &Spec::UpperBound(0.0)),
            Err(BmfError::Config { .. })
        ));
    }

    #[test]
    fn degenerate_sigma_yield() {
        let m = linear_model(vec![1.0, 0.0]);
        assert_eq!(
            yield_closed_form_linear(&m, &Spec::UpperBound(2.0)).unwrap(),
            1.0
        );
        assert_eq!(
            yield_closed_form_linear(&m, &Spec::UpperBound(0.5)).unwrap(),
            0.0
        );
    }

    #[test]
    fn inverted_window_rejected() {
        let m = linear_model(vec![0.0, 1.0]);
        assert!(yield_closed_form_linear(&m, &Spec::Window { lo: 1.0, hi: -1.0 }).is_err());
    }

    #[test]
    fn linear_corner_is_classical_formula() {
        let m = linear_model(vec![10.0, 3.0, -4.0]);
        let c = worst_case_corner(&m, 3.0, true, 5).unwrap();
        // x* = 3 * (3, -4)/5 = (1.8, -2.4); value = 10 + 3*1.8 + 4*2.4 = 25.
        assert!((c.point[0] - 1.8).abs() < 1e-12);
        assert!((c.point[1] + 2.4).abs() < 1e-12);
        assert!((c.value - 25.0).abs() < 1e-12);
        let worst_low = worst_case_corner(&m, 3.0, false, 5).unwrap();
        assert!((worst_low.value + 5.0).abs() < 1e-12);
    }

    #[test]
    fn corner_stays_on_sphere_for_nonlinear_model() {
        let basis = OrthonormalBasis::total_degree(2, 2, 100);
        let mut coeffs = vec![0.0; basis.len()];
        coeffs[1] = 1.0; // x0
        coeffs[4] = 0.3; // x0*x1
        let m = PerformanceModel::new(basis, coeffs).unwrap();
        let c = worst_case_corner(&m, 2.0, true, 50).unwrap();
        let r: f64 = c.point.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((r - 2.0).abs() < 1e-9, "corner off the sphere: {r}");
        // A corner must beat the nominal point.
        assert!(c.value > m.predict(&[0.0, 0.0]));
    }

    #[test]
    fn constant_model_has_no_corner() {
        let basis = OrthonormalBasis::linear(2);
        let m = PerformanceModel::new(basis, vec![5.0, 0.0, 0.0]).unwrap();
        assert!(worst_case_corner(&m, 1.0, true, 5).is_err());
    }
}
