//! Reusable solve workspaces for the fitting stack (DESIGN.md §9).
//!
//! Cross-validation solves the same MAP system hundreds of times per fit
//! (`folds × grid × families` cells plus the final full-data solve).
//! Before this module each solve allocated its own right-hand side,
//! Woodbury intermediates, and fold-local response copies; now a single
//! [`SolveWorkspace`] owns every scratch buffer and is threaded through
//! the grid loops, so steady-state fitting performs no per-solve heap
//! allocation.
//!
//! Safety model: every kernel that writes into a workspace buffer fully
//! overwrites it (see `bmf_linalg::view`), so stale contents from a
//! previous solve — even one of a different shape — can never leak into
//! a result. The property tests in `crates/linalg/tests/view_properties.rs`
//! reuse one scratch across randomized shapes to pin this down.

use bmf_linalg::woodbury::WoodburyScratch;
use bmf_linalg::{LadderScratch, Matrix};

/// Caller-owned scratch for a whole cross-validated fit.
///
/// One workspace serves every `(fold, grid, family)` cell of a sweep and
/// the final full-data solve; buffers grow to the high-water mark of the
/// problem (`O(M + (K + missing)²)`) on first use and are reused
/// thereafter. The two sub-scratches are split so a fold sweep can
/// borrow its gathered responses while the MAP solver borrows its own
/// buffers mutably.
#[derive(Debug, Clone, Default)]
pub struct SolveWorkspace {
    /// Buffers for individual MAP solves (shared by the direct, fast,
    /// and swept solvers).
    pub(crate) map: MapScratch,
    /// Fold-local gathers and validation predictions.
    pub(crate) fold: FoldScratch,
}

impl SolveWorkspace {
    /// Creates an empty workspace; buffers are sized lazily by the first
    /// solve that uses them.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a workspace pre-sized for a `K × M` design matrix, so not
    /// even the first solve allocates mid-loop.
    pub fn for_problem(k: usize, m: usize) -> Self {
        let mut ws = Self::new();
        ws.map.rhs.reserve(m);
        ws.map.dt_inv.reserve(m);
        ws.map.t.reserve(m);
        ws.map.gt.reserve(k + m);
        ws.map.y.reserve(k + m);
        ws.map.u.reserve(k + m);
        ws.map.uy.reserve(m);
        ws.fold.f_train.reserve(k);
        ws.fold.f_val.reserve(k);
        ws.fold.alpha.reserve(m);
        ws.fold.pred.reserve(k);
        ws
    }
}

/// Scratch for one MAP solve: the right-hand side, the Woodbury
/// intermediates of the sweep solver, and the assembled core system.
#[derive(Debug, Clone, Default)]
pub(crate) struct MapScratch {
    /// `Gᵀf + prior contribution` (length M).
    pub(crate) rhs: Vec<f64>,
    /// Inverse modified prior precisions (length M).
    pub(crate) dt_inv: Vec<f64>,
    /// `D̃⁻¹·rhs` (length M).
    pub(crate) t: Vec<f64>,
    /// `G·t` (length K).
    pub(crate) gt: Vec<f64>,
    /// Core-system solution (length K or K + missing).
    pub(crate) y: Vec<f64>,
    /// Augmented right-hand side (length K + missing).
    pub(crate) u: Vec<f64>,
    /// `Gᵀ·y₁` back-projection (length M).
    pub(crate) uy: Vec<f64>,
    /// The assembled core system (K×K, (K+missing)², or M×M for the
    /// direct solver), factorized in place.
    pub(crate) core: Matrix,
    /// LU pivot permutation for the augmented core (and for the LU rung
    /// of the degradation ladder).
    pub(crate) perm: Vec<usize>,
    /// Snapshot/rhs buffers for the solver degradation ladder.
    pub(crate) ladder: LadderScratch,
    /// Scratch for `bmf_linalg::woodbury`'s `_into` entry points.
    pub(crate) woodbury: WoodburyScratch,
}

/// Caller-owned scratch for the sequential (streaming) estimator.
///
/// Threaded through [`SequentialBmf`](crate::sequential::SequentialBmf)
/// exactly like [`SolveWorkspace`] is threaded through the batch stack:
/// one workspace serves every `add_sample` / `coefficients_into` /
/// `suggest_next` call on a stream, buffers grow to the high-water mark
/// (`O(M + K)`) and are reused thereafter. With
/// [`SeqWorkspace::for_problem`] sized up front, steady-state streaming
/// performs zero heap allocations per absorbed sample — asserted under
/// the counting allocator by the sequential bench's `--smoke` run.
#[derive(Debug, Clone, Default)]
pub struct SeqWorkspace {
    /// New core column `G D⁻¹ g_newᵀ` (length K).
    pub(crate) w: Vec<f64>,
    /// `Gᵀf + prior contribution` (length M).
    pub(crate) rhs: Vec<f64>,
    /// `D⁻¹·rhs` (length M).
    pub(crate) t: Vec<f64>,
    /// Core-system solution `core⁻¹(G·t)` (length K).
    pub(crate) y: Vec<f64>,
    /// `Gᵀ·y` back-projection (length M).
    pub(crate) uy: Vec<f64>,
    /// Candidate projection `G D⁻¹ g` for variance queries (length K).
    pub(crate) u: Vec<f64>,
}

impl SeqWorkspace {
    /// Creates an empty workspace; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a workspace pre-sized for `k` samples over `m`
    /// coefficients, so not even the first update allocates.
    pub fn for_problem(k: usize, m: usize) -> Self {
        let mut ws = Self::new();
        ws.w.reserve(k);
        ws.rhs.reserve(m);
        ws.t.reserve(m);
        ws.y.reserve(k);
        ws.uy.reserve(m);
        ws.u.reserve(k);
        ws
    }
}

/// Fold-local buffers for one cross-validation sweep.
#[derive(Debug, Clone, Default)]
pub(crate) struct FoldScratch {
    /// Response gathered over the fold's training rows.
    pub(crate) f_train: Vec<f64>,
    /// Response gathered over the fold's validation rows.
    pub(crate) f_val: Vec<f64>,
    /// MAP coefficients for the current grid cell (length M).
    pub(crate) alpha: Vec<f64>,
    /// Predictions on the validation rows.
    pub(crate) pred: Vec<f64>,
}

/// Clears and zero-fills `buf` to length `n`, reusing its capacity.
pub(crate) fn resize(buf: &mut Vec<f64>, n: usize) {
    buf.clear();
    buf.resize(n, 0.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_problem_reserves_without_len() {
        let ws = SolveWorkspace::for_problem(8, 32);
        assert!(ws.map.rhs.capacity() >= 32);
        assert!(ws.map.gt.capacity() >= 40);
        assert!(ws.fold.f_train.capacity() >= 8);
        assert!(ws.map.rhs.is_empty());
    }

    #[test]
    fn resize_reuses_capacity() {
        let mut buf = vec![1.0; 64];
        let ptr = buf.as_ptr();
        resize(&mut buf, 16);
        assert_eq!(buf, vec![0.0; 16]);
        assert_eq!(buf.as_ptr(), ptr, "capacity must be reused");
    }
}
