//! The top-level BMF fitter — Algorithm 1 of the paper.
//!
//! [`BmfFitter`] packages the full flow:
//!
//! 1. define the prior from the early-stage model coefficients (step 1),
//!    optionally through the multifinger prior mapping of §IV-A (step 2)
//!    and with missing-prior entries for late-only basis functions (step 3);
//! 2. take the K late-stage samples (step 4);
//! 3. select the prior family and hyper-parameter by N-fold
//!    cross-validation (§IV-D), then solve the MAP estimate with the fast
//!    low-rank solver (step 5).
//!
//! Configuration lives in one [`FitOptions`] value shared with
//! [`BatchFitter`](crate::batch::BatchFitter) and
//! [`map_estimate`](crate::map_estimate::map_estimate), so a tuned setup
//! carries across entry points unchanged.

use bmf_basis::basis::OrthonormalBasis;
use bmf_basis::expansion::ExpandedBasis;
use bmf_linalg::{Resilience, Vector};

use crate::hyper::FoldPlan;
use crate::map_estimate::map_estimate_ws;
use crate::model::PerformanceModel;
use crate::options::{validate_folds, validate_grid, FitOptions};
use crate::prior::{Prior, PriorKind};
use crate::select::{select_prior_on_plan, SelectionOutcome};
use crate::workspace::SolveWorkspace;
use crate::{BmfError, Result};

/// Lightweight work counters accumulated during a fit.
///
/// Counting is exact, not sampled: every MAP solve and every Woodbury
/// kernel factorization increments its counter. The batch engine adds
/// cache accounting — a *hit* is a kernel another job already built for
/// the same fold and prior, a *miss* is a kernel that had to be built.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FitCounters {
    /// MAP systems solved (one per `(fold, grid, kind)` CV cell plus the
    /// final full-data solve).
    pub map_solves: usize,
    /// Woodbury kernels factorized (one per usable fold, plus the final
    /// full-data kernel).
    pub kernels_built: usize,
    /// Batch kernel-cache hits (kernels reused from another job).
    pub kernel_cache_hits: usize,
    /// Batch kernel-cache misses (kernels this job had to build).
    pub kernel_cache_misses: usize,
    /// Solves that needed the degradation ladder (rung > 0).
    pub degraded_solves: usize,
    /// Total ladder rungs climbed, summed over all solves.
    pub ladder_escalations: usize,
    /// SPD solves rescued by the final LU rung of the ladder.
    pub lu_fallbacks: usize,
    /// Worst ladder rung used by any solve of this fit.
    pub max_ladder_rung: u32,
}

impl FitCounters {
    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &FitCounters) {
        self.map_solves += other.map_solves;
        self.kernels_built += other.kernels_built;
        self.kernel_cache_hits += other.kernel_cache_hits;
        self.kernel_cache_misses += other.kernel_cache_misses;
        self.degraded_solves += other.degraded_solves;
        self.ladder_escalations += other.ladder_escalations;
        self.lu_fallbacks += other.lu_fallbacks;
        self.max_ladder_rung = self.max_ladder_rung.max(other.max_ladder_rung);
    }

    /// Folds one solve's [`Resilience`] record into the counters.
    pub fn record_resilience(&mut self, res: &Resilience) {
        if res.is_degraded() {
            self.degraded_solves += 1;
        }
        self.ladder_escalations += res.rung as usize;
        if res.lu_fallback {
            self.lu_fallbacks += 1;
        }
        self.max_ladder_rung = self.max_ladder_rung.max(res.rung);
    }
}

/// How hard the solver degradation ladder had to work during a fit.
///
/// `rung`/`ridge`/`rcond` describe the *final* full-data MAP solve — the
/// one that produced the returned coefficients; `degraded_solves` and
/// `max_rung` aggregate over every solve of the fit, including the
/// cross-validation cells. A clean fit reports `rung == 0`,
/// `ridge == 0.0`, and `degraded_solves == 0`, and its coefficients are
/// bit-identical to a build without the ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceReport {
    /// Ladder rung used by the final full-data solve (0 = clean).
    pub rung: u32,
    /// Ridge added to the final solve's system diagonal (0.0 = none).
    pub ridge: f64,
    /// Reciprocal-condition estimate of the final solve's factorization.
    pub rcond: f64,
    /// Solves (CV cells + final) that needed the ladder at all.
    pub degraded_solves: usize,
    /// Worst ladder rung used anywhere in the fit.
    pub max_rung: u32,
}

impl ResilienceReport {
    pub(crate) fn new(final_solve: &Resilience, counters: &FitCounters) -> Self {
        ResilienceReport {
            rung: final_solve.rung,
            ridge: final_solve.ridge,
            rcond: final_solve.rcond,
            degraded_solves: counters.degraded_solves,
            max_rung: counters.max_ladder_rung,
        }
    }

    /// `true` when any solve of the fit left rung 0.
    pub fn is_degraded(&self) -> bool {
        self.degraded_solves > 0
    }
}

impl Default for ResilienceReport {
    fn default() -> Self {
        ResilienceReport::new(&Resilience::default(), &FitCounters::default())
    }
}

/// Builder for a BMF late-stage fit.
///
/// See the [crate-level example](crate) for basic use; the
/// [`BmfFitter::from_mapped_early_model`] constructor covers the
/// multifinger case. Configure via [`BmfFitter::with_options`].
#[derive(Debug, Clone)]
pub struct BmfFitter {
    basis: OrthonormalBasis,
    prior_values: Vec<Option<f64>>,
    options: FitOptions,
}

/// Everything a completed fit reports.
#[derive(Debug, Clone)]
pub struct BmfFit {
    /// The fitted late-stage model.
    pub model: PerformanceModel,
    /// The selected prior family.
    pub prior_kind: PriorKind,
    /// The selected hyper-parameter (`σ₀²` or `η`).
    pub hyper: f64,
    /// Cross-validation error of the selected configuration (an estimate
    /// of the relative modeling error, eq. 59).
    pub cv_error: f64,
    /// The full selection record (per-grid-point errors for both priors).
    pub selection: SelectionOutcome,
    /// Work counters for this fit (solves, kernels built).
    pub counters: FitCounters,
    /// Degradation-ladder summary: rung/ridge/rcond of the final solve
    /// plus degraded-solve aggregates over the whole fit.
    pub resilience: ResilienceReport,
}

/// Serializable summary of a fit (for experiment reports).
#[derive(Debug, Clone, PartialEq)]
pub struct BmfFitSummary {
    /// The selected prior family.
    pub prior_kind: PriorKind,
    /// The selected hyper-parameter.
    pub hyper: f64,
    /// Cross-validation error estimate.
    pub cv_error: f64,
    /// Number of basis terms.
    pub terms: usize,
}

impl BmfFit {
    /// A serializable summary of this fit.
    pub fn summary(&self) -> BmfFitSummary {
        BmfFitSummary {
            prior_kind: self.prior_kind,
            hyper: self.hyper,
            cv_error: self.cv_error,
            terms: self.model.basis().len(),
        }
    }
}

impl BmfFitter {
    /// Creates a fitter for `basis` with per-term early-stage coefficient
    /// knowledge (`None` = missing prior, §IV-B).
    ///
    /// # Errors
    ///
    /// Returns [`BmfError::PriorShape`] when `early.len() != basis.len()`.
    pub fn new(basis: OrthonormalBasis, early: Vec<Option<f64>>) -> Result<Self> {
        if early.len() != basis.len() {
            return Err(BmfError::PriorShape {
                basis_terms: basis.len(),
                prior_entries: early.len(),
            });
        }
        Ok(BmfFitter {
            basis,
            prior_values: early,
            options: FitOptions::default(),
        })
    }

    /// Creates a fitter whose basis and prior both come from an
    /// early-stage model: the late-stage basis equals the early basis and
    /// every coefficient has prior knowledge.
    pub fn from_early_model(early_model: &PerformanceModel) -> Self {
        BmfFitter {
            // Clone: the fitter owns its basis independently of the
            // borrowed early model.
            basis: early_model.basis().clone(),
            prior_values: early_model.coeffs().iter().map(|&a| Some(a)).collect(),
            options: FitOptions::default(),
        }
    }

    /// Creates a fitter for a multifinger post-layout basis (§IV-A): the
    /// schematic coefficients are mapped through `β = α_E/√T_m` (eq. 49)
    /// onto `expansion.basis()`, and `extra` additional basis terms are
    /// appended with missing priors (§IV-B).
    ///
    /// # Errors
    ///
    /// Returns [`BmfError::PriorShape`] when `schematic_coeffs` does not
    /// match the expansion.
    pub fn from_mapped_early_model(
        expansion: &ExpandedBasis,
        schematic_coeffs: &[f64],
        extra: Vec<bmf_basis::multi_index::MultiIndex>,
    ) -> Result<Self> {
        let prior = Prior::mapped(
            PriorKind::NonZeroMean,
            expansion,
            schematic_coeffs,
            extra.len(),
        )?;
        let mut terms = expansion.basis().terms().to_vec();
        let num_vars = expansion.basis().num_vars();
        terms.extend(extra);
        let basis = OrthonormalBasis::from_terms(num_vars, terms);
        Ok(BmfFitter {
            basis,
            prior_values: prior.early_values().to_vec(),
            options: FitOptions::default(),
        })
    }

    /// Replaces the whole fitting configuration.
    pub fn with_options(mut self, options: FitOptions) -> Self {
        self.options = options;
        self
    }

    /// The current fitting configuration.
    pub fn options(&self) -> &FitOptions {
        &self.options
    }

    /// The late-stage basis this fitter will fit over.
    pub fn basis(&self) -> &OrthonormalBasis {
        &self.basis
    }

    /// Runs Algorithm 1 on K late-stage samples.
    ///
    /// # Errors
    ///
    /// * [`BmfError::Config`] when the options' grid or fold count is
    ///   invalid (the error names the parameter).
    /// * [`BmfError::SampleShape`] when points/values disagree or a point
    ///   has the wrong dimension (panics on dimension inside the basis —
    ///   length mismatches between points and values are errors).
    /// * [`BmfError::NotEnoughSamples`] when K is too small for the folds
    ///   or the missing-prior block.
    /// * [`BmfError::NonFiniteInput`] when a point, value, or prior
    ///   coefficient is NaN/±∞.
    /// * [`BmfError::Linalg`] on numerical failure the degradation ladder
    ///   could not absorb.
    pub fn fit(&self, points: &[Vec<f64>], values: &[f64]) -> Result<BmfFit> {
        if points.len() != values.len() {
            return Err(BmfError::SampleShape {
                detail: format!("{} points vs {} values", points.len(), values.len()),
            });
        }
        crate::screen::points(points, self.basis.num_vars())?;
        crate::screen::finite_values("response values", values)?;
        crate::screen::finite_early("prior early coefficients", &self.prior_values)?;
        validate_grid(&self.options.grid)?;
        validate_folds(self.options.folds)?;
        let g = self
            .basis
            .design_matrix(points.iter().map(|p| p.as_slice()));
        let plan = FoldPlan::new(g.nrows(), self.options.folds, self.options.seed)?;
        let mut counters = FitCounters::default();
        fit_prepared(
            &g,
            &plan,
            &self.basis,
            &self.prior_values,
            values,
            &self.options,
            &mut counters,
        )
    }
}

/// The shared fitting core: normalizes the response, selects prior family
/// and hyper-parameter over a pre-built [`FoldPlan`], and solves the
/// final full-data MAP system. [`BmfFitter::fit`] calls it with a fresh
/// plan; [`crate::batch::BatchFitter`] runs the same primitives with the
/// plan (and design matrix) shared across all jobs, so a one-job batch is
/// bit-identical to this path.
pub(crate) fn fit_prepared(
    g: &bmf_linalg::Matrix,
    plan: &FoldPlan,
    basis: &OrthonormalBasis,
    prior_values: &[Option<f64>],
    values: &[f64],
    options: &FitOptions,
    counters: &mut FitCounters,
) -> Result<BmfFit> {
    // Normalize the response (and the prior with it) so the problem is
    // dimensionless: raw physical units (hertz, watts) would otherwise
    // put the intercept prior variance tens of decades above the other
    // coefficients, wrecking both the conditioning of the MAP system
    // and the meaning of the fixed hyper-parameter grid. The relative
    // error (eq. 59) and the returned coefficients are unaffected —
    // coefficients are rescaled on the way out. The reported `hyper`
    // lives in the normalized space.
    let scale = response_scale(values);
    let f = Vector::from_fn(values.len(), |i| values[i] / scale);
    let prior = Prior::new(
        PriorKind::ZeroMean,
        prior_values.iter().map(|v| v.map(|a| a / scale)).collect(),
    );

    let mut ws = SolveWorkspace::for_problem(g.nrows(), g.ncols());
    let selection = select_prior_on_plan(
        g,
        plan,
        &f,
        &prior,
        options.selection,
        &options.grid,
        counters,
        &mut ws,
    )?;
    let chosen = prior.with_kind(selection.kind);
    let (alpha, final_res) =
        map_estimate_ws(g, &f, &chosen, selection.hyper, options.solver, &mut ws.map)?;
    counters.map_solves += 1;
    counters.record_resilience(&final_res);
    let coeffs: Vec<f64> = alpha.iter().map(|a| a * scale).collect();
    // Clone: once per fit (not per grid cell) — the returned model owns
    // its basis.
    let model = PerformanceModel::new(basis.clone(), coeffs)?;
    Ok(BmfFit {
        model,
        prior_kind: selection.kind,
        hyper: selection.hyper,
        cv_error: selection.cv_error,
        selection,
        counters: *counters,
        resilience: ResilienceReport::new(&final_res, counters),
    })
}

/// RMS of the response values, used to normalize the fitting problem.
/// Falls back to 1.0 for an all-zero (or empty) response.
pub fn response_scale(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let rms = (values.iter().map(|v| v * v).sum::<f64>() / values.len() as f64).sqrt();
    if rms > 0.0 && rms.is_finite() {
        rms
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map_estimate::SolverKind;
    use crate::select::PriorSelection;
    use bmf_basis::expansion::FingerExpansion;
    use bmf_basis::multi_index::MultiIndex;
    use bmf_stat::normal::StandardNormal;
    use bmf_stat::rng::seeded;

    fn points(k: usize, r: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = seeded(seed);
        let mut s = StandardNormal::new();
        (0..k).map(|_| s.sample_vec(&mut rng, r)).collect()
    }

    #[test]
    fn few_samples_with_good_prior_beat_no_prior() {
        // M = 41 coefficients, K = 12 samples. The early model is a mildly
        // perturbed truth; BMF should fit well where LS cannot even run.
        let r = 40;
        let basis = OrthonormalBasis::linear(r);
        let truth: Vec<f64> = (0..=r)
            .map(|i| {
                if i == 0 {
                    5.0
                } else {
                    2.0 / (i as f64).powf(1.2)
                }
            })
            .collect();
        let eval = |p: &[f64]| -> f64 {
            truth[0]
                + p.iter()
                    .enumerate()
                    .map(|(i, x)| truth[i + 1] * x)
                    .sum::<f64>()
        };
        let early: Vec<Option<f64>> = truth
            .iter()
            .enumerate()
            .map(|(i, t)| Some(t * (1.0 + 0.1 * ((i * 7) as f64).sin())))
            .collect();
        let train = points(12, r, 1);
        let train_vals: Vec<f64> = train.iter().map(|p| eval(p)).collect();
        let fit = BmfFitter::new(basis, early)
            .unwrap()
            .with_options(FitOptions::new().folds(4).seed(9))
            .fit(&train, &train_vals)
            .unwrap();
        let test = points(100, r, 2);
        let test_vals: Vec<f64> = test.iter().map(|p| eval(p)).collect();
        let err = fit
            .model
            .relative_error(test.iter().map(|p| p.as_slice()), &test_vals)
            .unwrap();
        assert!(err < 0.05, "BMF error too high: {err}");
        // The fit accounts for its own work: at least one kernel per
        // usable fold plus the final solve.
        assert!(fit.counters.kernels_built >= 4);
        assert!(fit.counters.map_solves > fit.counters.kernels_built);
    }

    #[test]
    fn missing_prior_terms_are_learned() {
        // Basis term without early knowledge gets identified from data.
        let r = 10;
        let basis = OrthonormalBasis::linear(r);
        let eval = |p: &[f64]| 1.0 + 0.5 * p[0] + 2.0 * p[9];
        let mut early: Vec<Option<f64>> = vec![Some(1.0), Some(0.5)];
        early.extend(std::iter::repeat_n(Some(0.01), r - 2));
        early.push(None); // x10 has no early knowledge
        let train = points(20, r, 3);
        let train_vals: Vec<f64> = train.iter().map(|p| eval(p)).collect();
        let fit = BmfFitter::new(basis, early)
            .unwrap()
            .with_options(FitOptions::new().folds(4))
            .fit(&train, &train_vals)
            .unwrap();
        let c = fit.model.coeffs();
        assert!((c[r] - 2.0).abs() < 0.2, "missing-prior coeff: {}", c[r]);
    }

    #[test]
    fn from_early_model_roundtrip() {
        let basis = OrthonormalBasis::linear(3);
        let early_model = PerformanceModel::new(basis.clone(), vec![1.0, 0.3, -0.2, 0.05]).unwrap();
        let fitter = BmfFitter::from_early_model(&early_model);
        assert_eq!(fitter.basis().len(), 4);
        let train = points(10, 3, 4);
        let vals: Vec<f64> = train.iter().map(|p| early_model.predict(p) * 1.1).collect();
        let fit = fitter
            .with_options(FitOptions::new().folds(3))
            .fit(&train, &vals)
            .unwrap();
        // Late model ~ 1.1 x early model.
        let p = [0.5, -0.5, 1.0];
        assert!((fit.model.predict(&p) - early_model.predict(&p) * 1.1).abs() < 0.1);
    }

    #[test]
    fn mapped_fitter_builds_layout_basis_with_extras() {
        let exp = FingerExpansion::new(vec![2, 2]).unwrap();
        let schematic = OrthonormalBasis::linear(2);
        let expanded = exp.expand_basis(&schematic).unwrap();
        // Layout basis gets one extra parasitic-ish term on a new... the
        // expansion has 4 layout vars; add a cross term as the extra.
        let extra = vec![MultiIndex::from_pairs(&[(0, 1), (2, 1)])];
        let fitter =
            BmfFitter::from_mapped_early_model(&expanded, &[1.0, 2.0, -1.0], extra).unwrap();
        assert_eq!(fitter.basis().len(), 6); // 5 mapped + 1 extra
        let prior_missing = fitter.prior_values.iter().filter(|v| v.is_none()).count();
        assert_eq!(prior_missing, 1);
    }

    #[test]
    fn solver_choice_does_not_change_result() {
        let r = 15;
        let basis = OrthonormalBasis::linear(r);
        let truth: Vec<f64> = (0..=r).map(|i| (i as f64 * 0.7).cos()).collect();
        let eval = |p: &[f64]| -> f64 {
            truth[0]
                + p.iter()
                    .enumerate()
                    .map(|(i, x)| truth[i + 1] * x)
                    .sum::<f64>()
        };
        let early: Vec<Option<f64>> = truth.iter().map(|&t| Some(t)).collect();
        let train = points(10, r, 5);
        let vals: Vec<f64> = train.iter().map(|p| eval(p)).collect();
        let fast = BmfFitter::new(basis.clone(), early.clone())
            .unwrap()
            .fit(&train, &vals)
            .unwrap();
        let direct = BmfFitter::new(basis, early)
            .unwrap()
            .with_options(FitOptions::new().solver(SolverKind::Direct))
            .fit(&train, &vals)
            .unwrap();
        for (a, b) in fast.model.coeffs().iter().zip(direct.model.coeffs()) {
            assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
        assert_eq!(fast.prior_kind, direct.prior_kind);
    }

    #[test]
    fn physical_units_are_handled_by_normalization() {
        // GHz-scale response with a GHz-scale intercept prior: without
        // response normalization the MAP system is numerically singular
        // and the hyper grid meaningless.
        let r = 20;
        let basis = OrthonormalBasis::linear(r);
        let truth: Vec<f64> = std::iter::once(5.0e9)
            .chain((1..=r).map(|i| 2.0e7 / (i as f64)))
            .collect();
        let eval = |p: &[f64]| -> f64 {
            truth[0]
                + p.iter()
                    .enumerate()
                    .map(|(i, x)| truth[i + 1] * x)
                    .sum::<f64>()
        };
        let mut early: Vec<Option<f64>> = truth.iter().map(|&t| Some(t * 1.05)).collect();
        early[r] = None; // one missing-prior coefficient too
        let train = points(14, r, 8);
        let vals: Vec<f64> = train.iter().map(|p| eval(p)).collect();
        let fit = BmfFitter::new(basis, early)
            .unwrap()
            .with_options(FitOptions::new().folds(4))
            .fit(&train, &vals)
            .unwrap();
        let test = points(50, r, 9);
        let tvals: Vec<f64> = test.iter().map(|p| eval(p)).collect();
        let err = fit
            .model
            .relative_error(test.iter().map(|p| p.as_slice()), &tvals)
            .unwrap();
        assert!(err < 1e-3, "error {err} too high for near-exact prior");
    }

    #[test]
    fn response_scale_handles_edge_cases() {
        assert_eq!(response_scale(&[]), 1.0);
        assert_eq!(response_scale(&[0.0, 0.0]), 1.0);
        assert!((response_scale(&[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn shape_validation() {
        let basis = OrthonormalBasis::linear(2);
        assert!(BmfFitter::new(basis.clone(), vec![Some(1.0)]).is_err());
        let fitter = BmfFitter::new(basis, vec![Some(1.0); 3]).unwrap();
        assert!(matches!(
            fitter.fit(&[vec![0.0, 0.0]], &[1.0, 2.0]),
            Err(BmfError::SampleShape { .. })
        ));
    }

    #[test]
    fn invalid_options_name_the_parameter() {
        let basis = OrthonormalBasis::linear(2);
        let fitter = BmfFitter::new(basis, vec![Some(1.0); 3]).unwrap();
        let pts = points(8, 2, 11);
        let vals = vec![1.0; 8];
        let bad_grid = fitter
            .clone()
            .with_options(FitOptions::new().grid(vec![]))
            .fit(&pts, &vals);
        assert!(matches!(
            bad_grid,
            Err(BmfError::Config {
                parameter: "grid",
                ..
            })
        ));
        let bad_folds = fitter
            .with_options(FitOptions::new().folds(1))
            .fit(&pts, &vals);
        assert!(matches!(
            bad_folds,
            Err(BmfError::Config {
                parameter: "folds",
                ..
            })
        ));
    }

    #[test]
    fn with_options_routes_every_knob() {
        let basis = OrthonormalBasis::linear(2);
        let fitter = BmfFitter::new(basis, vec![Some(1.0); 3])
            .unwrap()
            .with_options(
                FitOptions::new()
                    .selection(PriorSelection::Fixed(PriorKind::ZeroMean))
                    .solver(SolverKind::Direct)
                    .folds(3)
                    .grid(vec![0.5, 1.0])
                    .seed(42),
            );
        let opts = fitter.options();
        assert_eq!(opts.selection, PriorSelection::Fixed(PriorKind::ZeroMean));
        assert_eq!(opts.solver, SolverKind::Direct);
        assert_eq!(opts.folds, 3);
        assert_eq!(opts.grid, vec![0.5, 1.0]);
        assert_eq!(opts.seed, 42);
    }
}
