//! Versioned model snapshots: a fitted model plus its provenance.
//!
//! A [`PerformanceModel`] alone is not enough to reuse a fit across
//! process restarts — the paper's whole premise is *reuse of
//! early-stage knowledge*, and reuse needs to know how the model was
//! obtained: which prior family won selection, at what hyper-parameter,
//! with what cross-validation error, under which [`FitOptions`], and
//! how hard the solver degradation ladder had to work.
//! [`ModelSnapshot`] bundles all of that into one value that the
//! service exports and imports ([`FitService::export_model`] /
//! [`FitService::import_snapshot`]) and that `bmf-persist` serializes
//! byte-deterministically to disk.
//!
//! A snapshot is *inert data*: constructing one performs no fitting and
//! no I/O. [`ModelSnapshot::validate`] applies the same boundary
//! screens as the fitting entry points, so a snapshot that crossed a
//! process boundary (decoded from disk, received from another
//! population's store) is screened before it can serve predictions.
//!
//! [`FitService::export_model`]: crate::service::FitService::export_model
//! [`FitService::import_snapshot`]: crate::service::FitService::import_snapshot

use crate::fusion::{BmfFit, ResilienceReport};
use crate::model::PerformanceModel;
use crate::options::FitOptions;
use crate::prior::PriorKind;
use crate::select::SelectionOutcome;
use crate::{screen, BmfError, Result};

/// A fitted model together with the provenance needed to reuse it.
///
/// Everything in a snapshot is plain data with a canonical binary
/// encoding (`bmf-persist`): two snapshots with bit-identical fields
/// encode to byte-identical artifacts, and a snapshot round-tripped
/// through disk serves bit-identical predictions.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSnapshot {
    /// The registry key this model serves under.
    pub job_id: String,
    /// The fitted late-stage model.
    pub model: PerformanceModel,
    /// The fitting configuration the model was produced under.
    pub options: FitOptions,
    /// The prior family that won selection.
    pub prior_kind: PriorKind,
    /// The selected hyper-parameter (in the normalized response space).
    pub hyper: f64,
    /// Cross-validation error of the selected configuration.
    pub cv_error: f64,
    /// The full selection record (per-grid-point errors per family).
    pub selection: SelectionOutcome,
    /// Degradation-ladder summary of the fit that produced the model.
    pub resilience: ResilienceReport,
}

impl ModelSnapshot {
    /// Captures a completed fit as a snapshot under `job_id`.
    ///
    /// `options` is the configuration the fit ran under; the service
    /// passes its own [`ServiceConfig::options`], direct callers pass
    /// whatever they gave the fitter.
    ///
    /// [`ServiceConfig::options`]: crate::service::ServiceConfig::options
    pub fn from_fit(job_id: impl Into<String>, fit: &BmfFit, options: &FitOptions) -> Self {
        ModelSnapshot {
            job_id: job_id.into(),
            // Clone: the snapshot owns its provenance independently of
            // the borrowed fit, which the caller keeps.
            model: fit.model.clone(),
            options: options.clone(),
            prior_kind: fit.prior_kind,
            hyper: fit.hyper,
            cv_error: fit.cv_error,
            selection: fit.selection.clone(),
            resilience: fit.resilience,
        }
    }

    /// Wraps a bare model in a snapshot with default provenance — for
    /// models obtained outside the fitting pipeline (hand-constructed
    /// baselines, models migrated from an older store without
    /// provenance).
    ///
    /// The provenance fields record "nothing is known": default
    /// [`FitOptions`], a zero-mean prior tag, zero selection error, and
    /// a clean [`ResilienceReport`].
    pub fn from_model(job_id: impl Into<String>, model: PerformanceModel) -> Self {
        ModelSnapshot {
            job_id: job_id.into(),
            model,
            options: FitOptions::default(),
            prior_kind: PriorKind::ZeroMean,
            hyper: 1.0,
            cv_error: 0.0,
            selection: SelectionOutcome {
                kind: PriorKind::ZeroMean,
                hyper: 1.0,
                cv_error: 0.0,
                zero_mean: None,
                nonzero_mean: None,
            },
            resilience: ResilienceReport::default(),
        }
    }

    /// Screens the snapshot with the same discipline as the fitting
    /// entry points: every numeric field must be finite, the job id
    /// non-empty, and the embedded options valid. Called by
    /// [`FitService::import_snapshot`] before a snapshot can serve
    /// predictions, and by the `bmf-persist` codec on both encode and
    /// decode.
    ///
    /// # Errors
    ///
    /// * [`BmfError::NonFiniteInput`] when any coefficient,
    ///   hyper-parameter, error, or resilience figure is NaN/±∞.
    /// * [`BmfError::Snapshot`] for an empty job id.
    /// * [`BmfError::Config`] when the embedded options are invalid.
    ///
    /// [`FitService::import_snapshot`]: crate::service::FitService::import_snapshot
    pub fn validate(&self) -> Result<()> {
        screen::finite_values("snapshot coefficients", self.model.coeffs())?;
        screen::finite_values(
            "snapshot hyper-parameter",
            &[self.hyper, self.selection.hyper],
        )?;
        screen::finite_values(
            "snapshot cross-validation error",
            &[self.cv_error, self.selection.cv_error],
        )?;
        screen::finite_values(
            "snapshot resilience report",
            &[self.resilience.ridge, self.resilience.rcond],
        )?;
        for cv in self
            .selection
            .zero_mean
            .iter()
            .chain(self.selection.nonzero_mean.iter())
        {
            screen::finite_values("snapshot selection record", &[cv.best_hyper, cv.best_error])?;
            for &(h, e) in &cv.errors {
                screen::finite_values("snapshot selection record", &[h, e])?;
            }
        }
        if self.job_id.is_empty() {
            return Err(BmfError::Snapshot {
                detail: "job id must be non-empty".to_string(),
            });
        }
        self.options.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmf_basis::basis::OrthonormalBasis;

    fn model() -> PerformanceModel {
        PerformanceModel::new(OrthonormalBasis::linear(2), vec![1.0, 0.5, -0.25]).unwrap()
    }

    #[test]
    fn from_model_validates_clean() {
        let snap = ModelSnapshot::from_model("gain", model());
        assert!(snap.validate().is_ok());
        assert_eq!(snap.job_id, "gain");
        assert_eq!(snap.prior_kind, PriorKind::ZeroMean);
        assert!(!snap.resilience.is_degraded());
    }

    #[test]
    fn empty_job_id_is_rejected() {
        let snap = ModelSnapshot::from_model("", model());
        assert!(matches!(snap.validate(), Err(BmfError::Snapshot { .. })));
    }

    #[test]
    fn non_finite_fields_are_screened() {
        let mut snap = ModelSnapshot::from_model("g", model());
        snap.hyper = f64::NAN;
        assert!(matches!(
            snap.validate(),
            Err(BmfError::NonFiniteInput { .. })
        ));

        let bad_model =
            PerformanceModel::new(OrthonormalBasis::linear(2), vec![1.0, f64::INFINITY, 0.0])
                .unwrap();
        let snap = ModelSnapshot::from_model("g", bad_model);
        assert!(matches!(
            snap.validate(),
            Err(BmfError::NonFiniteInput {
                what: "snapshot coefficients"
            })
        ));
    }

    #[test]
    fn invalid_embedded_options_are_rejected() {
        let mut snap = ModelSnapshot::from_model("g", model());
        snap.options = FitOptions::new().grid(vec![]);
        assert!(matches!(
            snap.validate(),
            Err(BmfError::Config {
                parameter: "grid",
                ..
            })
        ));
    }

    #[test]
    fn selection_record_is_screened() {
        use crate::hyper::CvOutcome;
        let mut snap = ModelSnapshot::from_model("g", model());
        snap.selection.zero_mean = Some(CvOutcome {
            best_hyper: 1.0,
            best_error: 0.1,
            errors: vec![(1.0, f64::NAN)],
        });
        assert!(matches!(
            snap.validate(),
            Err(BmfError::NonFiniteInput { .. })
        ));
    }
}
