//! Fitting-as-a-service: a long-lived request-serving facade over the
//! batch engine.
//!
//! A characterization *flow* is not one fit — it is a stream of
//! requests: fit this metric from those samples, predict a performance
//! number for that candidate, drop the stale model for a re-spun block.
//! [`FitService`] turns [`BatchFitter`](crate::batch::BatchFitter) into
//! that long-lived engine:
//!
//! * a **sharded snapshot registry** holds fitted models — as
//!   [`ModelSnapshot`] handles carrying full provenance — keyed by job
//!   id, with explicit [`evict`](FitService::evict),
//!   [`export_model`](FitService::export_model) (evict-to-disk), and
//!   [`import_snapshot`](FitService::import_snapshot) (warm-start from a
//!   persisted artifact); predictions are answered lock-light — a shard
//!   mutex is held only long enough to clone an [`Arc`] handle, never
//!   across the polynomial evaluation;
//! * an **MPSC work queue** accepts fit requests from any thread
//!   ([`FitService`] is `Sync`); [`drain`](FitService::drain) feeds the
//!   queue to the existing `std::thread::scope` worker pool inside the
//!   batch engine;
//! * a **coalescer** groups queued requests that share a registered point
//!   set and basis into one `BatchFitter` run, so the shared design
//!   matrix, fold plan, and Woodbury kernel cache are paid once per
//!   group instead of once per request;
//! * **admission control** bounds both queues
//!   ([`ServiceConfig::queue_capacity`] /
//!   [`ServiceConfig::append_capacity`]): a submission past the bound is
//!   shed *at the boundary* with a structured [`BmfError::Overloaded`]
//!   and a per-class counter, so overload degrades into explicit,
//!   retryable rejections instead of unbounded queue growth — and
//!   requests may carry a virtual-time deadline
//!   ([`submit_fit_with_deadline`](FitService::submit_fit_with_deadline)
//!   \+ [`drain_at`](FitService::drain_at)) that expires stale work
//!   before it is batched;
//! * a **streaming front** ([`register_stream`](FitService::register_stream)
//!   / [`append_sample`](FitService::append_sample)) keeps per-job
//!   [`SequentialBmf`] estimators up to date one late-stage sample at a
//!   time, republishing the model snapshot after every applied update —
//!   bit-identical to an offline sequential fit at any pool size, since
//!   appends are applied in ticket order on the draining thread.
//!
//! # Determinism
//!
//! For a fixed submission sequence, results are **bit-identical to
//! direct library calls at any pool size**: the coalescer only regroups
//! requests, and the batch engine guarantees each job's fit is
//! bit-identical to a serial [`BmfFitter`](crate::fusion::BmfFitter)
//! run. Group processing order is fixed by content fingerprints
//! (`BTreeMap`), never by arrival timing or thread schedule, and drained
//! outcomes are returned in ticket (submission) order.
//!
//! # Failure isolation
//!
//! Requests are screened at submission (shape + finiteness), so a
//! malformed request is rejected before it can poison a batch. When a
//! coalesced batch still fails numerically, the coalescer degrades to
//! per-request fits — a one-job batch reproduces the serial path exactly
//! — so one pathological request cannot fail its neighbors; only the
//! guilty ticket carries the structured error. Every fitted outcome
//! surfaces its own [`ResilienceReport`], preserving the PR 4 panic-free
//! discipline end to end.
//!
//! ```
//! use bmf_basis::basis::OrthonormalBasis;
//! use bmf_core::options::FitOptions;
//! use bmf_core::service::{FitRequest, FitService, ServiceConfig};
//!
//! # fn main() -> Result<(), bmf_core::BmfError> {
//! let service = FitService::new(ServiceConfig::default())?;
//! let points: Vec<Vec<f64>> = (0..8)
//!     .map(|i| vec![(i as f64 * 0.37).sin(), (i as f64 * 0.61).cos()])
//!     .collect();
//! let gain: Vec<f64> = points.iter().map(|p| 1.0 + 0.5 * p[0]).collect();
//! let ps = service.register_points(points)?;
//!
//! let basis = OrthonormalBasis::linear(2);
//! service.submit_fit(FitRequest {
//!     job_id: "gain".into(),
//!     basis,
//!     points: ps,
//!     prior: vec![Some(1.0), Some(0.5), Some(0.0)],
//!     values: gain,
//! })?;
//! let report = service.drain();
//! assert_eq!(report.outcomes.len(), 1);
//! let pred = service.predict("gain", &[0.0, 0.0])?;
//! assert!(pred.is_finite());
//! service.evict("gain")?;
//! assert!(service.predict("gain", &[0.0, 0.0]).is_err());
//! # Ok(())
//! # }
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use bmf_basis::basis::OrthonormalBasis;

use bmf_stat::fnv::{fnv1a, fnv1a_u64};

use crate::batch::{BatchFitter, BatchJob, BatchReport, PhaseTimings};
use crate::fusion::{BmfFit, FitCounters, ResilienceReport};
use crate::options::FitOptions;
use crate::prior::Prior;
use crate::sequential::SequentialBmf;
use crate::snapshot::ModelSnapshot;
use crate::workspace::SeqWorkspace;
use crate::{BmfError, Result};

/// Number of registry shards used by [`ServiceConfig::default`].
pub const DEFAULT_SHARDS: usize = 8;

/// Maximum fit requests coalesced into one batch run by
/// [`ServiceConfig::default`].
pub const DEFAULT_MAX_COALESCE: usize = 64;

/// Fit-queue admission capacity used by [`ServiceConfig::default`] —
/// far above any sane drain cadence, so the bound only engages under
/// genuine overload.
pub const DEFAULT_QUEUE_CAPACITY: usize = 65_536;

/// Append-queue admission capacity used by [`ServiceConfig::default`].
pub const DEFAULT_APPEND_CAPACITY: usize = 65_536;

/// Configuration for a [`FitService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Model-registry shard count (clamped to at least 1). More shards
    /// spread predict-path lock traffic across independent mutexes.
    pub shards: usize,
    /// Upper bound on fit requests coalesced into a single batch run
    /// (clamped to at least 1). Bounds per-drain latency under bursts.
    pub max_coalesce: usize,
    /// Admission bound on the fit queue (clamped to at least 1). A
    /// submission arriving while this many fits are already queued is
    /// shed with a structured [`BmfError::Overloaded`] instead of
    /// growing the queue without bound.
    pub queue_capacity: usize,
    /// Admission bound on the streaming-append queue (clamped to at
    /// least 1); same shedding discipline as `queue_capacity`.
    pub append_capacity: usize,
    /// Fitting configuration shared by every coalesced batch (folds,
    /// grid, solver, worker threads, ...).
    pub options: FitOptions,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: DEFAULT_SHARDS,
            max_coalesce: DEFAULT_MAX_COALESCE,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            append_capacity: DEFAULT_APPEND_CAPACITY,
            options: FitOptions::default(),
        }
    }
}

/// Opaque handle to a registered shared point set.
///
/// Registration is content-addressed: registering byte-identical points
/// twice yields the same id, so independent producers coalesce
/// naturally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PointSetId(u64);

/// Opaque, monotonically increasing receipt for a submitted fit request.
/// Drained outcomes are returned in ticket order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ticket(u64);

/// One fit request: a job id (registry key), the late-stage basis, a
/// registered shared point set, the early-stage prior, and the observed
/// response values.
#[derive(Debug, Clone)]
pub struct FitRequest {
    /// Registry key under which the fitted model is stored.
    pub job_id: String,
    /// Late-stage basis to fit over. Requests sharing both `points` and
    /// an identical basis coalesce into one batch run.
    pub basis: OrthonormalBasis,
    /// Handle from [`FitService::register_points`].
    pub points: PointSetId,
    /// Per-term early-coefficient knowledge (`None` = missing prior).
    pub prior: Vec<Option<f64>>,
    /// Late-stage response values, one per shared sample point.
    pub values: Vec<f64>,
}

/// A successfully served fit.
#[derive(Debug, Clone)]
pub struct ServedFit {
    /// The completed fit, including its per-request [`ResilienceReport`]
    /// and work counters.
    pub fit: BmfFit,
    /// How many requests shared the batch run this fit rode in (1 = it
    /// ran alone).
    pub coalesced: usize,
}

/// Outcome of one drained fit request.
#[derive(Debug, Clone)]
pub struct FitOutcome {
    /// The receipt returned by [`FitService::submit_fit`].
    pub ticket: Ticket,
    /// The request's job id.
    pub job_id: String,
    /// Index into [`DrainReport::batches`] of the run that served this
    /// request; `None` when the request failed before producing a fit.
    pub batch: Option<usize>,
    /// The fit, or the request's own structured error.
    pub result: Result<ServedFit>,
}

/// One coalesced batch run executed during a drain.
#[derive(Debug, Clone)]
pub struct BatchSummary {
    /// Jobs fitted in this run.
    pub jobs: usize,
    /// Work counters summed over the run (kernel cache hits/misses, MAP
    /// solves, ladder activity).
    pub counters: FitCounters,
    /// Per-phase wall time of the run.
    pub timings: PhaseTimings,
    /// Degradation-ladder summary aggregated over the run.
    pub resilience: ResilienceReport,
    /// `true` when this run was an isolation refit after a coalesced
    /// batch failed as a whole.
    pub isolated: bool,
}

/// Outcome of one drained [`FitService::append_sample`] request.
#[derive(Debug, Clone)]
pub struct AppendOutcome {
    /// The receipt returned by [`FitService::append_sample`].
    pub ticket: Ticket,
    /// The stream's job id.
    pub job_id: String,
    /// On success, the stream's sample count after this update; on
    /// failure, the append's own structured error (the stream state is
    /// left untouched and later appends proceed).
    pub result: Result<usize>,
}

/// Everything one [`FitService::drain`] call reports.
#[derive(Debug, Clone, Default)]
pub struct DrainReport {
    /// Per-request outcomes in ticket (submission) order.
    pub outcomes: Vec<FitOutcome>,
    /// The coalesced batch runs, in deterministic (fingerprint, chunk)
    /// order.
    pub batches: Vec<BatchSummary>,
    /// Per-append outcomes in ticket (submission) order.
    pub appends: Vec<AppendOutcome>,
    /// Wall time spent applying the drained appends, in nanoseconds
    /// (0 when none were queued).
    pub append_ns: u64,
}

impl DrainReport {
    /// Number of requests whose result is `Ok`.
    pub fn served(&self) -> usize {
        self.outcomes.iter().filter(|o| o.result.is_ok()).count()
    }

    /// Number of appends whose result is `Ok`.
    pub fn appended(&self) -> usize {
        self.appends.iter().filter(|a| a.result.is_ok()).count()
    }
}

/// Monotonic service-wide work counters; see [`FitService::counters`].
///
/// All counts are exact and, for a fixed request sequence, independent of
/// thread count and wall-clock timing — except [`ServiceCounters::append_ns`],
/// which accumulates measured wall time and is excluded from the
/// determinism contract.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceCounters {
    /// Fit requests completed with an `Ok` fit.
    pub fits_ok: u64,
    /// Fit requests that drained to a structured error.
    pub fits_failed: u64,
    /// Batch runs executed (coalesced groups plus isolation refits).
    pub batches: u64,
    /// Fit requests that shared their batch run with at least one other
    /// request.
    pub coalesced_fits: u64,
    /// Largest number of requests coalesced into a single batch run.
    pub max_batch: u64,
    /// Single-request refits forced by a whole-batch failure.
    pub isolation_refits: u64,
    /// Woodbury kernels reused across coalesced jobs (from the batch
    /// engine's shared kernel cache).
    pub kernel_cache_hits: u64,
    /// Woodbury kernels that had to be built.
    pub kernel_cache_misses: u64,
    /// MAP systems solved across all batch runs.
    pub map_solves: u64,
    /// Fits whose degradation ladder engaged (rung > 0 anywhere).
    pub degraded_fits: u64,
    /// Predictions served from the registry.
    pub predicts: u64,
    /// Predictions that missed the registry (no model under the key).
    pub predict_misses: u64,
    /// Successful evictions.
    pub evictions: u64,
    /// Evictions of keys that were not registered.
    pub evict_misses: u64,
    /// Snapshots installed via [`FitService::import_snapshot`] — the
    /// warm-start path for models persisted by an earlier process.
    pub imports: u64,
    /// Snapshots cloned out via [`FitService::export_model`].
    pub exports: u64,
    /// Streaming updates applied with an `Ok` result.
    pub appends_ok: u64,
    /// Streaming updates that drained to a structured error.
    pub appends_failed: u64,
    /// Append submissions naming a job with no registered stream.
    pub append_misses: u64,
    /// Fit submissions shed at admission because the fit queue was at
    /// capacity.
    pub shed_fits: u64,
    /// Streaming appends shed at admission because the append queue was
    /// at capacity.
    pub shed_appends: u64,
    /// Queued fits that expired at drain time: their virtual deadline
    /// passed before the drain reached them.
    pub expired_fits: u64,
    /// Cumulative wall time spent applying streaming updates, in
    /// nanoseconds (the one timing-dependent counter).
    pub append_ns: u64,
}

#[derive(Debug, Default)]
struct AtomicCounters {
    fits_ok: AtomicU64,
    fits_failed: AtomicU64,
    batches: AtomicU64,
    coalesced_fits: AtomicU64,
    max_batch: AtomicU64,
    isolation_refits: AtomicU64,
    kernel_cache_hits: AtomicU64,
    kernel_cache_misses: AtomicU64,
    map_solves: AtomicU64,
    degraded_fits: AtomicU64,
    predicts: AtomicU64,
    predict_misses: AtomicU64,
    evictions: AtomicU64,
    evict_misses: AtomicU64,
    imports: AtomicU64,
    exports: AtomicU64,
    appends_ok: AtomicU64,
    appends_failed: AtomicU64,
    append_misses: AtomicU64,
    shed_fits: AtomicU64,
    shed_appends: AtomicU64,
    expired_fits: AtomicU64,
    append_ns: AtomicU64,
}

/// A registered shared point set.
#[derive(Debug)]
struct PointSet {
    dim: usize,
    rows: Vec<Vec<f64>>,
}

/// A queued fit request plus its receipt, precomputed grouping key, and
/// optional virtual-time deadline.
#[derive(Debug)]
struct Pending {
    ticket: Ticket,
    basis_fp: u64,
    deadline_ns: Option<u64>,
    request: FitRequest,
}

/// A registered streaming model: the sequential estimator plus the basis
/// that maps sample points to design rows, and its private scratch.
#[derive(Debug)]
struct Stream {
    seq: SequentialBmf,
    basis: OrthonormalBasis,
    ws: SeqWorkspace,
    /// Reusable basis-row buffer for incoming sample points.
    row: Vec<f64>,
}

/// A queued streaming update plus its receipt.
#[derive(Debug)]
struct PendingAppend {
    ticket: Ticket,
    job_id: String,
    point: Vec<f64>,
    value: f64,
}

/// The request-serving facade; see the [module docs](self).
#[derive(Debug)]
pub struct FitService {
    config: ServiceConfig,
    point_sets: Mutex<BTreeMap<u64, Arc<PointSet>>>,
    shards: Vec<Mutex<BTreeMap<String, Arc<ModelSnapshot>>>>,
    queue: Mutex<VecDeque<Pending>>,
    streams: Mutex<BTreeMap<String, Stream>>,
    append_queue: Mutex<VecDeque<PendingAppend>>,
    tickets: AtomicU64,
    counters: AtomicCounters,
}

/// Locks a mutex, recovering from poisoning: a poisoned lock only means
/// another thread panicked mid-update, and every critical section here
/// leaves the map in a consistent state at any panic point (single
/// insert/remove/pop operations), so continuing with the inner value
/// preserves the panic-free serving contract.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl FitService {
    /// Creates a service.
    ///
    /// `shards`, `max_coalesce`, `queue_capacity`, and `append_capacity`
    /// are clamped to at least 1.
    ///
    /// # Errors
    ///
    /// Returns [`BmfError::Config`] when `config.options` is invalid (the
    /// error names the offending parameter).
    pub fn new(config: ServiceConfig) -> Result<Self> {
        config.options.validate()?;
        let mut config = config;
        config.shards = config.shards.max(1);
        config.max_coalesce = config.max_coalesce.max(1);
        config.queue_capacity = config.queue_capacity.max(1);
        config.append_capacity = config.append_capacity.max(1);
        let shards = (0..config.shards)
            .map(|_| Mutex::new(BTreeMap::new()))
            .collect();
        Ok(FitService {
            config,
            point_sets: Mutex::new(BTreeMap::new()),
            shards,
            queue: Mutex::new(VecDeque::new()),
            streams: Mutex::new(BTreeMap::new()),
            append_queue: Mutex::new(VecDeque::new()),
            tickets: AtomicU64::new(0),
            counters: AtomicCounters::default(),
        })
    }

    /// The service configuration (after clamping).
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Registers a shared point set and returns its content-addressed
    /// handle. Re-registering identical points returns the same id
    /// without storing a second copy.
    ///
    /// # Errors
    ///
    /// * [`BmfError::NonFiniteInput`] when any coordinate is NaN/±∞.
    /// * [`BmfError::Config`] (`"points"`) when the set is empty or rows
    ///   disagree in dimension.
    pub fn register_points(&self, points: Vec<Vec<f64>>) -> Result<PointSetId> {
        crate::screen::finite_rows("sample points", &points)?;
        let Some(first) = points.first() else {
            return Err(BmfError::config("points", "point set must be non-empty"));
        };
        let dim = first.len();
        if points.iter().any(|p| p.len() != dim) {
            return Err(BmfError::config(
                "points",
                "all points in a set must share one dimension",
            ));
        }
        let id = fingerprint_points(&points);
        let mut sets = lock(&self.point_sets);
        sets.entry(id)
            .or_insert_with(|| Arc::new(PointSet { dim, rows: points }));
        Ok(PointSetId(id))
    }

    /// Number of sample points in a registered set.
    ///
    /// # Errors
    ///
    /// Returns [`BmfError::NotFound`] for an unregistered handle.
    pub fn point_count(&self, id: PointSetId) -> Result<usize> {
        Ok(self.point_set(id)?.rows.len())
    }

    /// Enqueues a fit request, validating it at the boundary so a
    /// malformed request is rejected *now* — never later, where it could
    /// fail a coalesced batch.
    ///
    /// Equivalent to [`submit_fit_with_deadline`](Self::submit_fit_with_deadline)
    /// with no deadline.
    ///
    /// # Errors
    ///
    /// * [`BmfError::NonFiniteInput`] for NaN/±∞ values or prior entries.
    /// * [`BmfError::NotFound`] for an unregistered point-set handle.
    /// * [`BmfError::PriorShape`] / [`BmfError::SampleShape`] for
    ///   prior/basis and value/point-count mismatches.
    /// * [`BmfError::Overloaded`] (`"fit"`) when the queue is at
    ///   [`ServiceConfig::queue_capacity`].
    pub fn submit_fit(&self, request: FitRequest) -> Result<Ticket> {
        self.submit_fit_with_deadline(request, None)
    }

    /// Enqueues a fit request carrying a virtual-time deadline: if the
    /// drain that would serve it runs at a virtual `now` past the
    /// deadline ([`drain_at`](Self::drain_at)), the request expires with
    /// a structured [`BmfError::DeadlineExceeded`] instead of being
    /// fitted — decided *before* batching, so an expired member never
    /// perturbs the cohort it would have coalesced with.
    ///
    /// Admission control happens here, under the queue lock: when
    /// [`ServiceConfig::queue_capacity`] requests are already queued the
    /// submission is shed with [`BmfError::Overloaded`] and counted in
    /// [`ServiceCounters::shed_fits`]. Validation runs first, so a
    /// malformed request is reported as malformed even under overload.
    ///
    /// # Errors
    ///
    /// The conditions of [`submit_fit`](Self::submit_fit).
    pub fn submit_fit_with_deadline(
        &self,
        request: FitRequest,
        deadline_ns: Option<u64>,
    ) -> Result<Ticket> {
        crate::screen::finite_values("response values", &request.values)?;
        crate::screen::finite_early("prior early coefficients", &request.prior)?;
        let points = self.point_set(request.points)?;
        if request.prior.len() != request.basis.len() {
            return Err(BmfError::PriorShape {
                basis_terms: request.basis.len(),
                prior_entries: request.prior.len(),
            });
        }
        if points.dim != request.basis.num_vars() {
            return Err(BmfError::SampleShape {
                detail: format!(
                    "job `{}`: point set {:?} has dimension {}, basis expects {}",
                    request.job_id,
                    request.points,
                    points.dim,
                    request.basis.num_vars()
                ),
            });
        }
        if request.values.len() != points.rows.len() {
            return Err(BmfError::SampleShape {
                detail: format!(
                    "job `{}` has {} values but its point set has {} points",
                    request.job_id,
                    request.values.len(),
                    points.rows.len()
                ),
            });
        }
        let basis_fp = fingerprint_basis(&request.basis);
        // The capacity check and the push happen under one lock
        // acquisition, so concurrent submitters cannot race past the
        // bound; the ticket is only minted once admission succeeds.
        let mut queue = lock(&self.queue);
        if queue.len() >= self.config.queue_capacity {
            self.counters.shed_fits.fetch_add(1, Ordering::Relaxed);
            return Err(BmfError::Overloaded {
                class: "fit",
                capacity: self.config.queue_capacity,
            });
        }
        let ticket = Ticket(self.tickets.fetch_add(1, Ordering::Relaxed));
        queue.push_back(Pending {
            ticket,
            basis_fp,
            deadline_ns,
            request,
        });
        Ok(ticket)
    }

    /// Fit requests currently queued (submitted but not yet drained).
    pub fn queued(&self) -> usize {
        lock(&self.queue).len()
    }

    /// Registers a streaming model under `job_id`: a
    /// [`SequentialBmf`] estimator (fixed prior family and
    /// hyper-parameter) that [`FitService::append_sample`] updates one
    /// late-stage sample at a time. The prior-mean model is published to
    /// the registry immediately, so the job serves predictions before the
    /// first sample lands.
    ///
    /// # Errors
    ///
    /// * [`BmfError::Snapshot`] for an empty job id.
    /// * [`BmfError::PriorShape`] when `prior.len() != basis.len()`.
    /// * The conditions of [`SequentialBmf::new`] (invalid hyper,
    ///   missing/zero prior entries, non-finite prior).
    /// * [`BmfError::Config`] (`"stream"`) when the job already has a
    ///   registered stream.
    pub fn register_stream(
        &self,
        job_id: impl Into<String>,
        basis: OrthonormalBasis,
        prior: &Prior,
        hyper: f64,
    ) -> Result<()> {
        let job_id = job_id.into();
        if job_id.is_empty() {
            return Err(BmfError::Snapshot {
                detail: "job id must be non-empty".to_string(),
            });
        }
        if prior.len() != basis.len() {
            return Err(BmfError::PriorShape {
                basis_terms: basis.len(),
                prior_entries: prior.len(),
            });
        }
        let seq = SequentialBmf::new(prior, hyper)?;
        let mut stream = Stream {
            seq,
            basis,
            ws: SeqWorkspace::new(),
            row: Vec::new(),
        };
        let mut streams = lock(&self.streams);
        if streams.contains_key(&job_id) {
            return Err(BmfError::config(
                "stream",
                format!("job `{job_id}` already has a registered stream"),
            ));
        }
        let snap = stream
            .seq
            .snapshot(&job_id, &stream.basis, &mut stream.ws)?;
        lock(self.shard_for(&job_id)).insert(job_id.clone(), Arc::new(snap));
        streams.insert(job_id, stream);
        Ok(())
    }

    /// Enqueues one late-stage sample for a registered stream, validating
    /// at the boundary: the point and value are screened, the stream must
    /// exist, and the point dimension must match the stream's basis — a
    /// malformed append is rejected *now*, never at drain time where it
    /// could sit between healthy updates.
    ///
    /// Appends are applied by [`FitService::drain`] in ticket order;
    /// after each successful update the stream's refreshed model snapshot
    /// replaces the registry entry, bit-identical to an offline
    /// [`SequentialBmf`] fed the same samples in the same order at any
    /// pool size.
    ///
    /// # Errors
    ///
    /// * [`BmfError::NonFiniteInput`] when the point or value is NaN/±∞.
    /// * [`BmfError::NotFound`] (`"stream"`) when no stream is registered
    ///   under the key.
    /// * [`BmfError::SampleShape`] when the point dimension differs from
    ///   the stream basis.
    /// * [`BmfError::Overloaded`] (`"append"`) when the queue is at
    ///   [`ServiceConfig::append_capacity`].
    pub fn append_sample(&self, job_id: &str, point: &[f64], value: f64) -> Result<Ticket> {
        crate::screen::finite_values("sample point", point)?;
        if !value.is_finite() {
            return Err(BmfError::NonFiniteInput {
                what: "sample value",
            });
        }
        {
            let streams = lock(&self.streams);
            let Some(stream) = streams.get(job_id) else {
                self.counters.append_misses.fetch_add(1, Ordering::Relaxed);
                return Err(BmfError::NotFound {
                    what: "stream",
                    key: job_id.to_string(),
                });
            };
            if point.len() != stream.basis.num_vars() {
                return Err(BmfError::SampleShape {
                    detail: format!(
                        "append point has dimension {}, stream `{job_id}` expects {}",
                        point.len(),
                        stream.basis.num_vars()
                    ),
                });
            }
        }
        // Same admission discipline as the fit queue: check and push
        // under one lock acquisition, mint the ticket only on admission.
        let mut queue = lock(&self.append_queue);
        if queue.len() >= self.config.append_capacity {
            self.counters.shed_appends.fetch_add(1, Ordering::Relaxed);
            return Err(BmfError::Overloaded {
                class: "append",
                capacity: self.config.append_capacity,
            });
        }
        let ticket = Ticket(self.tickets.fetch_add(1, Ordering::Relaxed));
        queue.push_back(PendingAppend {
            ticket,
            job_id: job_id.to_string(),
            point: point.to_vec(),
            value,
        });
        Ok(ticket)
    }

    /// Number of registered streams.
    pub fn stream_count(&self) -> usize {
        lock(&self.streams).len()
    }

    /// Samples absorbed so far by the stream registered under `job_id`
    /// (queued-but-undrained appends are not counted).
    ///
    /// # Errors
    ///
    /// Returns [`BmfError::NotFound`] (`"stream"`) for an unregistered
    /// key.
    pub fn stream_samples(&self, job_id: &str) -> Result<usize> {
        lock(&self.streams)
            .get(job_id)
            .map(|s| s.seq.num_samples())
            .ok_or_else(|| BmfError::NotFound {
                what: "stream",
                key: job_id.to_string(),
            })
    }

    /// Streaming updates currently queued (submitted but not yet
    /// drained).
    pub fn queued_appends(&self) -> usize {
        lock(&self.append_queue).len()
    }

    /// Drains the whole queue: coalesces requests by (point set, basis),
    /// runs each group through the batch engine's worker pool, installs
    /// the fitted models in the registry, and returns per-request
    /// outcomes in ticket order. Queued streaming appends are then
    /// applied in ticket order on the draining thread — the worker pool
    /// never touches stream state, so streamed models are bit-identical
    /// at any pool size.
    ///
    /// Failures are per-request — they surface in
    /// [`FitOutcome::result`] / [`AppendOutcome::result`], never as a
    /// drain-level error — so a bad request cannot wedge the queue.
    ///
    /// Equivalent to [`drain_at`](Self::drain_at) at virtual time 0,
    /// where no deadline can have passed.
    pub fn drain(&self) -> DrainReport {
        self.drain_at(0)
    }

    /// Drains the queue at virtual time `now_ns`: queued fits whose
    /// deadline passed (`deadline_ns < now_ns`) expire with a structured
    /// [`BmfError::DeadlineExceeded`] *before* grouping, so the surviving
    /// cohort coalesces and fits exactly as if the expired members had
    /// never been submitted — their results stay bit-identical.
    ///
    /// Expiry is strict (`<`): a request drained exactly at its deadline
    /// is still served.
    pub fn drain_at(&self, now_ns: u64) -> DrainReport {
        let pending: Vec<Pending> = lock(&self.queue).drain(..).collect();
        let appends: Vec<PendingAppend> = lock(&self.append_queue).drain(..).collect();
        let (live, expired): (Vec<Pending>, Vec<Pending>) = pending
            .into_iter()
            .partition(|p| p.deadline_ns.is_none_or(|d| d >= now_ns));
        let mut report = self.serve(live);
        for p in expired {
            self.counters.expired_fits.fetch_add(1, Ordering::Relaxed);
            self.counters.fits_failed.fetch_add(1, Ordering::Relaxed);
            report.outcomes.push(FitOutcome {
                ticket: p.ticket,
                job_id: p.request.job_id,
                batch: None,
                result: Err(BmfError::DeadlineExceeded {
                    // Partition kept only `Some(d)` with `d < now_ns`.
                    deadline_ns: p.deadline_ns.unwrap_or(0),
                    now_ns,
                }),
            });
        }
        report.outcomes.sort_unstable_by_key(|o| o.ticket);
        self.apply_appends(appends, &mut report);
        report
    }

    /// Applies drained streaming updates in ticket order, republishing
    /// each touched stream's snapshot after a successful update. A failed
    /// update errors only its own ticket (the estimator guarantees its
    /// state is untouched on error), and later appends proceed.
    fn apply_appends(&self, appends: Vec<PendingAppend>, report: &mut DrainReport) {
        if appends.is_empty() {
            return;
        }
        let start = Instant::now();
        let mut streams = lock(&self.streams);
        for a in appends {
            let result = match streams.get_mut(&a.job_id) {
                // Streams cannot be removed today, so a submitted append
                // can't lose its stream; handled for completeness.
                None => Err(BmfError::NotFound {
                    what: "stream",
                    key: a.job_id.clone(),
                }),
                Some(stream) => {
                    let Stream {
                        seq,
                        basis,
                        ws,
                        row,
                    } = stream;
                    row.clear();
                    row.resize(basis.len(), 0.0);
                    basis.fill_row(&a.point, row);
                    seq.add_sample(row, a.value, ws)
                        .and_then(|()| seq.snapshot(&a.job_id, basis, ws))
                        .map(|snap| {
                            lock(self.shard_for(&a.job_id))
                                .insert(a.job_id.clone(), Arc::new(snap));
                            seq.num_samples()
                        })
                }
            };
            match &result {
                Ok(_) => self.counters.appends_ok.fetch_add(1, Ordering::Relaxed),
                Err(_) => self.counters.appends_failed.fetch_add(1, Ordering::Relaxed),
            };
            report.appends.push(AppendOutcome {
                ticket: a.ticket,
                job_id: a.job_id,
                result,
            });
        }
        drop(streams);
        // bmf-lint: allow(no-lossy-cast-in-kernels) -- a drain's append latency is far below u64::MAX nanoseconds
        let ns = start.elapsed().as_nanos() as u64;
        report.append_ns = ns;
        self.counters.append_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Looks up the snapshot currently registered under `job_id`. The
    /// shard lock is held only for the `Arc` clone, so callers evaluate
    /// the polynomial (via `snapshot.model`) without blocking writers.
    pub fn snapshot(&self, job_id: &str) -> Option<Arc<ModelSnapshot>> {
        lock(self.shard_for(job_id)).get(job_id).cloned()
    }

    /// Predicts the registered model for `job_id` at `x`.
    ///
    /// # Errors
    ///
    /// * [`BmfError::NonFiniteInput`] when `x` contains NaN/±∞.
    /// * [`BmfError::NotFound`] when no model is registered under the key
    ///   (including after an evict).
    /// * [`BmfError::SampleShape`] when `x` has the wrong dimension.
    pub fn predict(&self, job_id: &str, x: &[f64]) -> Result<f64> {
        crate::screen::finite_values("prediction point", x)?;
        let Some(snap) = self.snapshot(job_id) else {
            self.counters.predict_misses.fetch_add(1, Ordering::Relaxed);
            return Err(BmfError::NotFound {
                what: "model",
                key: job_id.to_string(),
            });
        };
        let model = &snap.model;
        if x.len() != model.basis().num_vars() {
            return Err(BmfError::SampleShape {
                detail: format!(
                    "prediction point has dimension {}, model `{job_id}` expects {}",
                    x.len(),
                    model.basis().num_vars()
                ),
            });
        }
        self.counters.predicts.fetch_add(1, Ordering::Relaxed);
        Ok(model.predict(x))
    }

    /// Removes the model registered under `job_id`.
    ///
    /// # Errors
    ///
    /// Returns [`BmfError::NotFound`] when the key holds no model, so an
    /// operator script can distinguish "evicted" from "was never there".
    pub fn evict(&self, job_id: &str) -> Result<()> {
        let removed = lock(self.shard_for(job_id)).remove(job_id);
        if removed.is_some() {
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            Ok(())
        } else {
            self.counters.evict_misses.fetch_add(1, Ordering::Relaxed);
            Err(BmfError::NotFound {
                what: "model",
                key: job_id.to_string(),
            })
        }
    }

    /// Clones out the snapshot registered under `job_id` — the first half
    /// of the evict-to-disk flow (`export_model` → persist → `evict`),
    /// and the handle `bmf-persist` serializes.
    ///
    /// The registry keeps serving the model; exporting does not evict.
    ///
    /// # Errors
    ///
    /// Returns [`BmfError::NotFound`] when no model is registered under
    /// the key.
    pub fn export_model(&self, job_id: &str) -> Result<ModelSnapshot> {
        let Some(snap) = self.snapshot(job_id) else {
            return Err(BmfError::NotFound {
                what: "model",
                key: job_id.to_string(),
            });
        };
        self.counters.exports.fetch_add(1, Ordering::Relaxed);
        // Clone: the caller gets an owned snapshot to serialize or ship
        // while the registry keeps serving its own handle.
        Ok(snap.as_ref().clone())
    }

    /// Installs (or replaces) a snapshot under its own job id, bypassing
    /// fitting — the warm-start path for models persisted by an earlier
    /// process. The snapshot is screened first
    /// ([`ModelSnapshot::validate`]), so a corrupted or contaminated
    /// artifact is rejected with a structured error before it can serve
    /// predictions.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelSnapshot::validate`]:
    /// [`BmfError::NonFiniteInput`], [`BmfError::Snapshot`], or
    /// [`BmfError::Config`].
    pub fn import_snapshot(&self, snapshot: ModelSnapshot) -> Result<()> {
        snapshot.validate()?;
        let key = snapshot.job_id.clone();
        lock(self.shard_for(&key)).insert(key, Arc::new(snapshot));
        self.counters.imports.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Number of snapshots currently registered across all shards.
    pub fn snapshot_count(&self) -> usize {
        self.shards.iter().map(|s| lock(s).len()).sum()
    }

    /// The job ids of every registered snapshot, sorted — the
    /// deterministic iteration order for exporting a whole registry.
    pub fn job_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| lock(s).keys().cloned().collect::<Vec<_>>())
            .collect();
        ids.sort_unstable();
        ids
    }

    /// A snapshot of the service-wide counters.
    pub fn counters(&self) -> ServiceCounters {
        let c = &self.counters;
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ServiceCounters {
            fits_ok: get(&c.fits_ok),
            fits_failed: get(&c.fits_failed),
            batches: get(&c.batches),
            coalesced_fits: get(&c.coalesced_fits),
            max_batch: get(&c.max_batch),
            isolation_refits: get(&c.isolation_refits),
            kernel_cache_hits: get(&c.kernel_cache_hits),
            kernel_cache_misses: get(&c.kernel_cache_misses),
            map_solves: get(&c.map_solves),
            degraded_fits: get(&c.degraded_fits),
            predicts: get(&c.predicts),
            predict_misses: get(&c.predict_misses),
            evictions: get(&c.evictions),
            evict_misses: get(&c.evict_misses),
            imports: get(&c.imports),
            exports: get(&c.exports),
            appends_ok: get(&c.appends_ok),
            appends_failed: get(&c.appends_failed),
            append_misses: get(&c.append_misses),
            shed_fits: get(&c.shed_fits),
            shed_appends: get(&c.shed_appends),
            expired_fits: get(&c.expired_fits),
            append_ns: get(&c.append_ns),
        }
    }

    fn point_set(&self, id: PointSetId) -> Result<Arc<PointSet>> {
        lock(&self.point_sets)
            .get(&id.0)
            .cloned()
            .ok_or_else(|| BmfError::NotFound {
                what: "point set",
                key: format!("{:#018x}", id.0),
            })
    }

    fn shard_for(&self, job_id: &str) -> &Mutex<BTreeMap<String, Arc<ModelSnapshot>>> {
        let i = fnv1a(0, job_id.as_bytes()) as usize % self.shards.len();
        &self.shards[i]
    }

    /// Coalesces and runs a drained request list; see [`drain`](Self::drain).
    fn serve(&self, pending: Vec<Pending>) -> DrainReport {
        // Group by (point set, basis): every request in a group shares
        // the batch engine's design matrix, fold plan, and kernel cache.
        // BTreeMap fixes the processing order by content, not arrival.
        let mut groups: BTreeMap<(u64, u64), Vec<Pending>> = BTreeMap::new();
        for p in pending {
            groups
                .entry((p.request.points.0, p.basis_fp))
                .or_default()
                .push(p);
        }
        let mut report = DrainReport::default();
        for ((points_id, _), mut group) in groups {
            let rows = match self.point_set(PointSetId(points_id)) {
                Ok(ps) => ps,
                Err(e) => {
                    // Point sets are never evicted, so a submitted request
                    // can't lose its set; handled for completeness.
                    for p in group {
                        self.counters.fits_failed.fetch_add(1, Ordering::Relaxed);
                        report.outcomes.push(FitOutcome {
                            ticket: p.ticket,
                            job_id: p.request.job_id,
                            batch: None,
                            result: Err(e.clone()),
                        });
                    }
                    continue;
                }
            };
            while !group.is_empty() {
                let tail = group.split_off(group.len().min(self.config.max_coalesce));
                self.run_chunk(&rows.rows, group, &mut report);
                group = tail;
            }
        }
        report.outcomes.sort_unstable_by_key(|o| o.ticket);
        report
    }

    /// Runs one coalesced chunk; on whole-batch failure, degrades to
    /// per-request isolation refits.
    fn run_chunk(&self, rows: &[Vec<f64>], chunk: Vec<Pending>, report: &mut DrainReport) {
        let Some(first) = chunk.first() else { return };
        let jobs: Vec<BatchJob> = chunk
            .iter()
            // Clone: the batch engine owns its jobs while the request
            // (job id) must survive into the outcome.
            .map(|p| {
                BatchJob::new(
                    p.request.job_id.clone(),
                    p.request.prior.clone(),
                    p.request.values.clone(),
                )
            })
            .collect();
        let fitter = BatchFitter::new(first.request.basis.clone())
            .with_options(self.config.options.clone())
            .with_jobs(jobs);
        match fitter.fit(rows) {
            Ok(batch) => self.absorb(chunk, batch, false, report),
            Err(_) => {
                // Whole-batch failure: refit each request alone so only
                // the guilty ticket errors. A one-job batch runs the same
                // kernels in the same order as the direct serial path, so
                // surviving neighbors stay bit-identical to it.
                for p in chunk {
                    self.counters
                        .isolation_refits
                        .fetch_add(1, Ordering::Relaxed);
                    let solo = BatchFitter::new(p.request.basis.clone())
                        .with_options(self.config.options.clone())
                        .with_jobs(vec![BatchJob::new(
                            p.request.job_id.clone(),
                            p.request.prior.clone(),
                            p.request.values.clone(),
                        )]);
                    match solo.fit(rows) {
                        Ok(batch) => self.absorb(vec![p], batch, true, report),
                        Err(e) => {
                            self.counters.fits_failed.fetch_add(1, Ordering::Relaxed);
                            report.outcomes.push(FitOutcome {
                                ticket: p.ticket,
                                job_id: p.request.job_id,
                                batch: None,
                                result: Err(e),
                            });
                        }
                    }
                }
            }
        }
    }

    /// Installs a completed batch's models and records its outcomes.
    fn absorb(
        &self,
        chunk: Vec<Pending>,
        batch: BatchReport,
        isolated: bool,
        report: &mut DrainReport,
    ) {
        let n = chunk.len();
        let c = &self.counters;
        c.batches.fetch_add(1, Ordering::Relaxed);
        if n > 1 {
            c.coalesced_fits.fetch_add(n as u64, Ordering::Relaxed);
        }
        c.max_batch.fetch_max(n as u64, Ordering::Relaxed);
        c.kernel_cache_hits
            .fetch_add(batch.counters.kernel_cache_hits as u64, Ordering::Relaxed);
        c.kernel_cache_misses
            .fetch_add(batch.counters.kernel_cache_misses as u64, Ordering::Relaxed);
        c.map_solves
            .fetch_add(batch.counters.map_solves as u64, Ordering::Relaxed);
        let batch_index = report.batches.len();
        report.batches.push(BatchSummary {
            jobs: n,
            counters: batch.counters,
            timings: batch.timings,
            resilience: batch.resilience,
            isolated,
        });
        for (p, fit) in chunk.into_iter().zip(batch.fits) {
            c.fits_ok.fetch_add(1, Ordering::Relaxed);
            if fit.resilience.is_degraded() {
                c.degraded_fits.fetch_add(1, Ordering::Relaxed);
            }
            // The registry keeps a snapshot (model + provenance, cloned
            // out of the fit) while the fit itself is returned to the
            // submitter.
            let snap =
                ModelSnapshot::from_fit(p.request.job_id.clone(), &fit, &self.config.options);
            lock(self.shard_for(&p.request.job_id))
                .insert(p.request.job_id.clone(), Arc::new(snap));
            report.outcomes.push(FitOutcome {
                ticket: p.ticket,
                job_id: p.request.job_id,
                batch: Some(batch_index),
                result: Ok(ServedFit { fit, coalesced: n }),
            });
        }
    }
}

/// Content fingerprint of a point set: dimensions plus every coordinate's
/// exact bit pattern, so "same id" means "bit-identical design matrix".
fn fingerprint_points(points: &[Vec<f64>]) -> u64 {
    let mut h = fnv1a_u64(0, points.len() as u64);
    for row in points {
        h = fnv1a_u64(h, row.len() as u64);
        for &x in row {
            h = fnv1a_u64(h, x.to_bits());
        }
    }
    h
}

/// Structural fingerprint of a basis: variable count plus each term's
/// (variable, degree) pairs.
fn fingerprint_basis(basis: &OrthonormalBasis) -> u64 {
    let mut h = fnv1a_u64(0, basis.num_vars() as u64);
    h = fnv1a_u64(h, basis.len() as u64);
    for term in basis.terms() {
        for &(var, deg) in term.pairs() {
            h = fnv1a_u64(h, var as u64);
            h = fnv1a_u64(h, u64::from(deg));
        }
        // Term separator so [(0,1)],[(1,1)] differs from [(0,1),(1,1)].
        h = fnv1a_u64(h, u64::MAX);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_points(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| vec![(i as f64 * 0.37).sin(), (i as f64 * 0.61).cos()])
            .collect()
    }

    #[test]
    fn service_is_send_and_sync() {
        fn check<T: Send + Sync>() {}
        check::<FitService>();
    }

    #[test]
    fn point_registration_is_content_addressed() {
        let svc = FitService::new(ServiceConfig::default()).unwrap();
        let a = svc.register_points(demo_points(8)).unwrap();
        let b = svc.register_points(demo_points(8)).unwrap();
        assert_eq!(a, b);
        let c = svc.register_points(demo_points(9)).unwrap();
        assert_ne!(a, c);
        assert_eq!(svc.point_count(a).unwrap(), 8);
    }

    #[test]
    fn register_rejects_empty_ragged_and_nonfinite() {
        let svc = FitService::new(ServiceConfig::default()).unwrap();
        assert!(matches!(
            svc.register_points(vec![]),
            Err(BmfError::Config {
                parameter: "points",
                ..
            })
        ));
        assert!(matches!(
            svc.register_points(vec![vec![1.0], vec![1.0, 2.0]]),
            Err(BmfError::Config {
                parameter: "points",
                ..
            })
        ));
        assert!(matches!(
            svc.register_points(vec![vec![f64::NAN]]),
            Err(BmfError::NonFiniteInput { .. })
        ));
    }

    #[test]
    fn submit_validates_at_the_boundary() {
        let svc = FitService::new(ServiceConfig::default()).unwrap();
        let ps = svc.register_points(demo_points(8)).unwrap();
        let basis = OrthonormalBasis::linear(2);
        let bad_prior = svc.submit_fit(FitRequest {
            job_id: "j".into(),
            basis: basis.clone(),
            points: ps,
            prior: vec![Some(1.0)],
            values: vec![0.0; 8],
        });
        assert!(matches!(bad_prior, Err(BmfError::PriorShape { .. })));
        let bad_values = svc.submit_fit(FitRequest {
            job_id: "j".into(),
            basis: basis.clone(),
            points: ps,
            prior: vec![Some(1.0); 3],
            values: vec![0.0; 5],
        });
        assert!(matches!(bad_values, Err(BmfError::SampleShape { .. })));
        let bad_dim = svc.submit_fit(FitRequest {
            job_id: "j".into(),
            basis: OrthonormalBasis::linear(3),
            points: ps,
            prior: vec![Some(1.0); 4],
            values: vec![0.0; 8],
        });
        assert!(matches!(bad_dim, Err(BmfError::SampleShape { .. })));
        assert_eq!(svc.queued(), 0);
    }

    #[test]
    fn unknown_point_set_is_not_found() {
        let svc = FitService::new(ServiceConfig::default()).unwrap();
        let err = svc
            .submit_fit(FitRequest {
                job_id: "j".into(),
                basis: OrthonormalBasis::linear(2),
                points: PointSetId(42),
                prior: vec![Some(1.0); 3],
                values: vec![0.0; 8],
            })
            .unwrap_err();
        assert!(matches!(
            err,
            BmfError::NotFound {
                what: "point set",
                ..
            }
        ));
    }

    #[test]
    fn fingerprints_separate_term_boundaries() {
        use bmf_basis::multi_index::MultiIndex;
        let a = OrthonormalBasis::from_terms(
            2,
            vec![
                MultiIndex::from_pairs(&[(0, 1)]),
                MultiIndex::from_pairs(&[(1, 1)]),
            ],
        );
        let b = OrthonormalBasis::from_terms(2, vec![MultiIndex::from_pairs(&[(0, 1), (1, 1)])]);
        assert_ne!(fingerprint_basis(&a), fingerprint_basis(&b));
    }

    #[test]
    fn drain_on_empty_queue_is_empty() {
        let svc = FitService::new(ServiceConfig::default()).unwrap();
        let report = svc.drain();
        assert!(report.outcomes.is_empty());
        assert!(report.batches.is_empty());
        assert!(report.appends.is_empty());
        assert_eq!(report.append_ns, 0);
    }

    fn demo_request(svc: &FitService, job: &str, n: usize) -> FitRequest {
        let ps = svc.register_points(demo_points(n)).unwrap();
        FitRequest {
            job_id: job.into(),
            basis: OrthonormalBasis::linear(2),
            points: ps,
            prior: vec![Some(1.0), Some(0.5), Some(0.0)],
            values: (0..n).map(|i| 1.0 + 0.1 * i as f64).collect(),
        }
    }

    #[test]
    fn fit_queue_sheds_at_capacity_with_structured_overloaded() {
        let svc = FitService::new(ServiceConfig {
            queue_capacity: 2,
            ..ServiceConfig::default()
        })
        .unwrap();
        let req = demo_request(&svc, "j", 8);
        svc.submit_fit(req.clone()).unwrap();
        svc.submit_fit(req.clone()).unwrap();
        let shed = svc.submit_fit(req.clone()).unwrap_err();
        assert!(matches!(
            shed,
            BmfError::Overloaded {
                class: "fit",
                capacity: 2,
            }
        ));
        assert_eq!(svc.queued(), 2);
        assert_eq!(svc.counters().shed_fits, 1);
        // A drain frees the capacity; admission resumes.
        let report = svc.drain();
        assert_eq!(report.served(), 2);
        svc.submit_fit(req).unwrap();
        assert_eq!(svc.queued(), 1);
    }

    #[test]
    fn append_queue_sheds_at_capacity_with_structured_overloaded() {
        let svc = FitService::new(ServiceConfig {
            append_capacity: 1,
            ..ServiceConfig::default()
        })
        .unwrap();
        let basis = OrthonormalBasis::linear(2);
        let prior = stream_prior(&basis);
        svc.register_stream("s", basis, &prior, 1.0).unwrap();
        svc.append_sample("s", &[0.1, 0.2], 1.0).unwrap();
        let shed = svc.append_sample("s", &[0.3, 0.4], 2.0).unwrap_err();
        assert!(matches!(
            shed,
            BmfError::Overloaded {
                class: "append",
                capacity: 1,
            }
        ));
        assert_eq!(svc.counters().shed_appends, 1);
        assert_eq!(svc.drain().appended(), 1);
        svc.append_sample("s", &[0.3, 0.4], 2.0).unwrap();
    }

    #[test]
    fn drain_at_expires_strictly_past_the_deadline() {
        let svc = FitService::new(ServiceConfig::default()).unwrap();
        let req = demo_request(&svc, "due", 8);
        // Due exactly at the drain time: still served.
        svc.submit_fit_with_deadline(
            FitRequest {
                job_id: "exact".into(),
                ..req.clone()
            },
            Some(1_000),
        )
        .unwrap();
        // Already past due: expired with the structured error.
        let late = svc
            .submit_fit_with_deadline(
                FitRequest {
                    job_id: "late".into(),
                    ..req.clone()
                },
                Some(999),
            )
            .unwrap();
        // No deadline: always served.
        svc.submit_fit(req).unwrap();
        let report = svc.drain_at(1_000);
        assert_eq!(report.outcomes.len(), 3);
        assert_eq!(report.served(), 2);
        let expired = report
            .outcomes
            .iter()
            .find(|o| o.ticket == late)
            .expect("late ticket reported");
        assert!(matches!(
            expired.result,
            Err(BmfError::DeadlineExceeded {
                deadline_ns: 999,
                now_ns: 1_000,
            })
        ));
        assert_eq!(expired.batch, None);
        let c = svc.counters();
        assert_eq!(c.expired_fits, 1);
        assert_eq!(c.fits_failed, 1);
        assert_eq!(c.fits_ok, 2);
    }

    use crate::prior::{Prior, PriorKind};

    fn stream_prior(basis: &OrthonormalBasis) -> Prior {
        let early: Vec<f64> = (0..basis.len()).map(|i| 0.5 / (1.0 + i as f64)).collect();
        Prior::from_coeffs(PriorKind::NonZeroMean, &early)
    }

    #[test]
    fn register_stream_publishes_prior_mean_and_rejects_duplicates() {
        let svc = FitService::new(ServiceConfig::default()).unwrap();
        let basis = OrthonormalBasis::linear(2);
        let prior = stream_prior(&basis);
        svc.register_stream("osc.gain", basis.clone(), &prior, 1.0)
            .unwrap();
        assert_eq!(svc.stream_count(), 1);
        assert_eq!(svc.stream_samples("osc.gain").unwrap(), 0);
        // The prior-mean model serves predictions before any sample.
        assert!(svc.predict("osc.gain", &[0.1, -0.2]).unwrap().is_finite());
        assert!(matches!(
            svc.register_stream("osc.gain", basis.clone(), &prior, 1.0),
            Err(BmfError::Config {
                parameter: "stream",
                ..
            })
        ));
        assert!(matches!(
            svc.register_stream("", basis.clone(), &prior, 1.0),
            Err(BmfError::Snapshot { .. })
        ));
        let short = Prior::from_coeffs(PriorKind::ZeroMean, &[1.0]);
        assert!(matches!(
            svc.register_stream("other", basis, &short, 1.0),
            Err(BmfError::PriorShape { .. })
        ));
    }

    #[test]
    fn append_sample_screens_at_the_boundary() {
        let svc = FitService::new(ServiceConfig::default()).unwrap();
        let basis = OrthonormalBasis::linear(2);
        let prior = stream_prior(&basis);
        svc.register_stream("j", basis, &prior, 1.0).unwrap();
        assert!(matches!(
            svc.append_sample("missing", &[0.0, 0.0], 1.0),
            Err(BmfError::NotFound { what: "stream", .. })
        ));
        assert!(matches!(
            svc.append_sample("j", &[f64::NAN, 0.0], 1.0),
            Err(BmfError::NonFiniteInput { .. })
        ));
        assert!(matches!(
            svc.append_sample("j", &[0.0, 0.0], f64::INFINITY),
            Err(BmfError::NonFiniteInput { .. })
        ));
        assert!(matches!(
            svc.append_sample("j", &[0.0], 1.0),
            Err(BmfError::SampleShape { .. })
        ));
        assert_eq!(svc.queued_appends(), 0);
        assert_eq!(svc.counters().append_misses, 1);
        svc.append_sample("j", &[0.2, 0.3], 1.0).unwrap();
        assert_eq!(svc.queued_appends(), 1);
    }

    #[test]
    fn appends_update_the_registered_model_in_ticket_order() {
        let svc = FitService::new(ServiceConfig::default()).unwrap();
        let basis = OrthonormalBasis::linear(2);
        let prior = stream_prior(&basis);
        svc.register_stream("j", basis.clone(), &prior, 1.0)
            .unwrap();
        let points = [[0.2, -0.1], [-0.4, 0.5], [0.1, 0.9]];
        let mut tickets = Vec::new();
        for (i, p) in points.iter().enumerate() {
            tickets.push(svc.append_sample("j", p, 0.3 * i as f64 - 0.1).unwrap());
        }
        let report = svc.drain();
        assert_eq!(report.appended(), 3);
        assert_eq!(
            report.appends.iter().map(|a| a.ticket).collect::<Vec<_>>(),
            tickets
        );
        assert_eq!(
            report
                .appends
                .iter()
                .map(|a| *a.result.as_ref().unwrap())
                .collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(svc.stream_samples("j").unwrap(), 3);
        let c = svc.counters();
        assert_eq!(c.appends_ok, 3);
        assert_eq!(c.appends_failed, 0);
        assert!(c.append_ns > 0);

        // The registry snapshot matches an offline sequential fit fed the
        // same samples, bit for bit.
        let mut offline = SequentialBmf::new(&prior, 1.0).unwrap();
        let mut ws = SeqWorkspace::new();
        for (i, p) in points.iter().enumerate() {
            offline
                .add_sample(&basis.row(p), 0.3 * i as f64 - 0.1, &mut ws)
                .unwrap();
        }
        let expect = offline.coefficients().unwrap();
        let snap = svc.snapshot("j").unwrap();
        for (a, b) in snap.model.coeffs().iter().zip(expect.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(snap.prior_kind, PriorKind::NonZeroMean);
    }
}
