//! Prior selection: BMF-PS (§IV-D, §V).
//!
//! Whether the zero-mean or the nonzero-mean prior is better depends on
//! how faithful the early-stage model is — and the paper shows the winner
//! flips between metrics (Tables I vs III) and even between sample counts
//! (Table V). BMF-PS settles it empirically: cross-validate *both* priors
//! over their hyper-parameter grids and keep the one with the lower
//! estimated error.

use bmf_linalg::{Matrix, Vector};

use crate::fusion::FitCounters;
use crate::hyper::{cross_validate_hyper, cv_on_plan, CvConfig, CvOutcome, FoldPlan};
use crate::prior::{Prior, PriorKind};
use crate::workspace::SolveWorkspace;
use crate::{BmfError, Result};

/// How the prior family is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PriorSelection {
    /// Always use the given family (BMF-ZM / BMF-NZM).
    Fixed(PriorKind),
    /// Cross-validate both families and keep the better (BMF-PS).
    Auto,
}

/// Outcome of prior + hyper-parameter selection.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionOutcome {
    /// The chosen prior family.
    pub kind: PriorKind,
    /// The chosen hyper-parameter.
    pub hyper: f64,
    /// Cross-validation error of the chosen configuration.
    pub cv_error: f64,
    /// Full CV outcome for the zero-mean prior (when it was evaluated).
    pub zero_mean: Option<CvOutcome>,
    /// Full CV outcome for the nonzero-mean prior (when it was evaluated).
    pub nonzero_mean: Option<CvOutcome>,
}

/// Selects the prior family and hyper-parameter by cross-validation.
///
/// `prior` supplies the early-coefficient values; its own `kind` is
/// ignored when `selection` is [`PriorSelection::Auto`].
///
/// # Errors
///
/// Propagates the conditions of
/// [`cross_validate_hyper`].
pub fn select_prior(
    g: &Matrix,
    f: &Vector,
    prior: &Prior,
    selection: PriorSelection,
    config: &CvConfig,
) -> Result<SelectionOutcome> {
    match selection {
        PriorSelection::Fixed(kind) => {
            let out = cross_validate_hyper(g, f, &prior.with_kind(kind), config)?;
            choose(selection, kind_outcomes(kind, out))
        }
        PriorSelection::Auto => {
            let (zm, nzm) = crate::hyper::cross_validate_both(g, f, prior, config)?;
            choose(selection, (Some(zm), Some(nzm)))
        }
    }
}

/// The prior-family list a selection policy cross-validates, in the
/// fixed engine order (zero-mean before nonzero-mean).
pub(crate) fn kinds_for(selection: PriorSelection) -> Vec<PriorKind> {
    match selection {
        PriorSelection::Fixed(kind) => vec![kind],
        PriorSelection::Auto => vec![PriorKind::ZeroMean, PriorKind::NonZeroMean],
    }
}

fn kind_outcomes(kind: PriorKind, out: CvOutcome) -> (Option<CvOutcome>, Option<CvOutcome>) {
    match kind {
        PriorKind::ZeroMean => (Some(out), None),
        PriorKind::NonZeroMean => (None, Some(out)),
    }
}

/// Picks the winning `(kind, hyper)` from per-family CV outcomes —
/// the decision rule of BMF-PS, shared by [`select_prior`],
/// [`crate::fusion::BmfFitter`], and [`crate::batch::BatchFitter`].
pub(crate) fn choose(
    selection: PriorSelection,
    outcomes: (Option<CvOutcome>, Option<CvOutcome>),
) -> Result<SelectionOutcome> {
    let (zero_mean, nonzero_mean) = outcomes;
    let (kind, hyper, cv_error) = match (selection, &zero_mean, &nonzero_mean) {
        (PriorSelection::Fixed(kind), Some(out), None)
        | (PriorSelection::Fixed(kind), None, Some(out)) => (kind, out.best_hyper, out.best_error),
        (_, Some(zm), Some(nzm)) => {
            if zm.best_error <= nzm.best_error {
                (PriorKind::ZeroMean, zm.best_hyper, zm.best_error)
            } else {
                (PriorKind::NonZeroMean, nzm.best_hyper, nzm.best_error)
            }
        }
        _ => {
            return Err(BmfError::Internal {
                detail: "selection policy and CV outcome arity disagree",
            })
        }
    };
    Ok(SelectionOutcome {
        kind,
        hyper,
        cv_error,
        zero_mean,
        nonzero_mean,
    })
}

/// Plan-based selection used by the fitting engines: cross-validates the
/// families `selection` requires over a pre-built [`FoldPlan`] (viewing
/// fold sub-matrices of the shared `g` and sharing Woodbury kernels),
/// counting work into `counters`, with all scratch in `ws`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn select_prior_on_plan(
    g: &Matrix,
    plan: &FoldPlan,
    f: &Vector,
    prior: &Prior,
    selection: PriorSelection,
    grid: &[f64],
    counters: &mut FitCounters,
    ws: &mut SolveWorkspace,
) -> Result<SelectionOutcome> {
    let kinds = kinds_for(selection);
    let outcomes = cv_on_plan(g, plan, f, prior, grid, &kinds, counters, ws)?;
    choose_from_list(selection, outcomes)
}

/// Packs the per-family outcome list produced by
/// [`cv_on_plan`] (ordered as [`kinds_for`] orders the families) and
/// applies the decision rule.
pub(crate) fn choose_from_list(
    selection: PriorSelection,
    mut outcomes: Vec<CvOutcome>,
) -> Result<SelectionOutcome> {
    let missing = BmfError::Internal {
        detail: "cross-validation produced fewer outcomes than prior kinds",
    };
    let packed = match selection {
        PriorSelection::Fixed(kind) => kind_outcomes(kind, outcomes.pop().ok_or(missing)?),
        PriorSelection::Auto => {
            let nzm = outcomes.pop().ok_or(missing.clone())?;
            let zm = outcomes.pop().ok_or(missing)?;
            (Some(zm), Some(nzm))
        }
    };
    choose(selection, packed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmf_stat::normal::StandardNormal;
    use bmf_stat::rng::seeded;

    fn design(k: usize, m: usize, seed: u64) -> Matrix {
        let mut rng = seeded(seed);
        let mut s = StandardNormal::new();
        Matrix::from_fn(k, m, |_, _| s.sample(&mut rng))
    }

    #[test]
    fn auto_picks_nonzero_mean_for_faithful_prior() {
        // Early coefficients equal the truth -> the sign information of
        // the nonzero-mean prior should win.
        let m = 30;
        let g = design(12, m, 1);
        let truth: Vec<f64> = (0..m).map(|i| 1.5 / (1.0 + i as f64)).collect();
        let f = g.matvec(&Vector::from(truth.clone())).unwrap();
        let prior = Prior::from_coeffs(PriorKind::ZeroMean, &truth);
        let out = select_prior(&g, &f, &prior, PriorSelection::Auto, &CvConfig::default()).unwrap();
        assert_eq!(out.kind, PriorKind::NonZeroMean);
        assert!(out.zero_mean.is_some() && out.nonzero_mean.is_some());
    }

    #[test]
    fn auto_picks_zero_mean_when_signs_are_wrong() {
        // Early coefficients with flipped signs but right magnitudes: the
        // zero-mean prior (magnitude only) should win.
        let m = 30;
        let g = design(12, m, 2);
        let truth: Vec<f64> = (0..m).map(|i| 1.5 / (1.0 + i as f64)).collect();
        let f = g.matvec(&Vector::from(truth.clone())).unwrap();
        let flipped: Vec<f64> = truth.iter().map(|t| -t).collect();
        let prior = Prior::from_coeffs(PriorKind::ZeroMean, &flipped);
        let out = select_prior(&g, &f, &prior, PriorSelection::Auto, &CvConfig::default()).unwrap();
        assert_eq!(out.kind, PriorKind::ZeroMean);
    }

    #[test]
    fn fixed_respects_requested_kind() {
        let g = design(10, 8, 3);
        let f = Vector::from_fn(10, |i| i as f64 * 0.1);
        let prior = Prior::from_coeffs(PriorKind::ZeroMean, &[0.5; 8]);
        let out = select_prior(
            &g,
            &f,
            &prior,
            PriorSelection::Fixed(PriorKind::NonZeroMean),
            &CvConfig::default(),
        )
        .unwrap();
        assert_eq!(out.kind, PriorKind::NonZeroMean);
        assert!(out.zero_mean.is_none());
    }

    #[test]
    fn chosen_error_is_min_of_both() {
        let g = design(14, 10, 4);
        let truth: Vec<f64> = (0..10).map(|i| (i as f64).cos()).collect();
        let f = g.matvec(&Vector::from(truth.clone())).unwrap();
        let prior = Prior::from_coeffs(PriorKind::ZeroMean, &truth);
        let out = select_prior(&g, &f, &prior, PriorSelection::Auto, &CvConfig::default()).unwrap();
        let zm = out.zero_mean.as_ref().unwrap().best_error;
        let nzm = out.nonzero_mean.as_ref().unwrap().best_error;
        assert!((out.cv_error - zm.min(nzm)).abs() < 1e-15);
    }
}
