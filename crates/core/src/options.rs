//! Unified fitting configuration: [`FitOptions`].
//!
//! Every fitting entry point — [`BmfFitter`](crate::fusion::BmfFitter),
//! [`BatchFitter`](crate::batch::BatchFitter), and
//! [`map_estimate`](crate::map_estimate::map_estimate) — is configured by
//! one value of this type, so a tuned configuration can be carried from a
//! single exploratory fit to a 64-job production batch unchanged.
//!
//! The struct exposes public fields for struct-update syntax *and*
//! chainable setters for builder-style call sites:
//!
//! ```
//! use bmf_core::options::FitOptions;
//! use bmf_core::map_estimate::SolverKind;
//!
//! let opts = FitOptions::new()
//!     .folds(4)
//!     .seed(7)
//!     .threads(2)
//!     .solver(SolverKind::Direct);
//! assert_eq!(opts.folds, 4);
//! ```

use crate::hyper::{log_grid, CvConfig};
use crate::map_estimate::SolverKind;
use crate::select::PriorSelection;
use crate::{BmfError, Result};

/// Environment variable consulted when [`FitOptions::threads`] is `0`
/// (auto): set `BMF_THREADS=<n>` to pin the worker count for a whole test
/// or CI run without touching code.
pub const THREADS_ENV: &str = "BMF_THREADS";

/// Unified configuration for every fitting entry point.
///
/// Defaults reproduce the paper's setup: 5-fold cross-validation over a
/// 17-point logarithmic hyper-parameter grid, automatic prior selection
/// (BMF-PS), the fast Woodbury solver, and one worker thread per
/// available core for batch fits.
#[derive(Debug, Clone, PartialEq)]
pub struct FitOptions {
    /// Prior-family policy (default [`PriorSelection::Auto`], i.e.
    /// BMF-PS).
    pub selection: PriorSelection,
    /// MAP solver (default [`SolverKind::Fast`]).
    pub solver: SolverKind,
    /// Cross-validation fold count (the paper's `N`; default 5).
    pub folds: usize,
    /// Candidate hyper-parameter values; must be positive and finite.
    pub grid: Vec<f64>,
    /// Seed for the cross-validation fold shuffle.
    pub seed: u64,
    /// Worker threads for batch fitting. `0` (the default) resolves to
    /// the `BMF_THREADS` environment variable if set, otherwise to
    /// [`std::thread::available_parallelism`]. Results are bit-identical
    /// for every thread count.
    pub threads: usize,
    /// Fixed hyper-parameter used by
    /// [`map_estimate`](crate::map_estimate::map_estimate) when no
    /// cross-validation runs (default `1.0`). The cross-validating
    /// fitters ignore it and use the grid instead.
    pub hyper: f64,
}

impl Default for FitOptions {
    fn default() -> Self {
        FitOptions {
            selection: PriorSelection::Auto,
            solver: SolverKind::Fast,
            folds: 5,
            grid: log_grid(1e-4, 1e4, 17),
            seed: 0,
            threads: 0,
            hyper: 1.0,
        }
    }
}

impl FitOptions {
    /// Creates the default options (see the type-level docs).
    pub fn new() -> Self {
        FitOptions::default()
    }

    /// Sets the prior-family policy.
    pub fn selection(mut self, selection: PriorSelection) -> Self {
        self.selection = selection;
        self
    }

    /// Sets the MAP solver.
    pub fn solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }

    /// Sets the cross-validation fold count.
    pub fn folds(mut self, folds: usize) -> Self {
        self.folds = folds;
        self
    }

    /// Sets the hyper-parameter grid.
    pub fn grid(mut self, grid: Vec<f64>) -> Self {
        self.grid = grid;
        self
    }

    /// Sets the cross-validation shuffle seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the batch worker-thread count (`0` = auto).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the fixed hyper-parameter for non-cross-validating solves.
    pub fn hyper(mut self, hyper: f64) -> Self {
        self.hyper = hyper;
        self
    }

    /// Validates every field.
    ///
    /// # Errors
    ///
    /// Returns [`BmfError::Config`] naming the offending parameter:
    /// `"grid"` for an empty or non-positive grid, `"folds"` for fewer
    /// than 2 folds, `"hyper"` for a non-positive fixed hyper-parameter.
    pub fn validate(&self) -> Result<()> {
        validate_grid(&self.grid)?;
        validate_folds(self.folds)?;
        if !(self.hyper > 0.0 && self.hyper.is_finite()) {
            return Err(BmfError::config(
                "hyper",
                format!("must be positive and finite, got {}", self.hyper),
            ));
        }
        Ok(())
    }

    /// The number of worker threads a batch fit will actually use:
    /// [`FitOptions::threads`] if nonzero, else the `BMF_THREADS`
    /// environment variable, else the available parallelism (min 1).
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        if let Ok(raw) = std::env::var(THREADS_ENV) {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// A content fingerprint over every field, FNV-1a chained with f64s
    /// hashed by exact bit pattern. Two options values fingerprint
    /// equally iff they configure bit-identical fits, which is what the
    /// persistence layer's round-trip tests (and any cache keyed on a
    /// fitting configuration) need: `a == b` implies
    /// `a.content_fingerprint() == b.content_fingerprint()`.
    pub fn content_fingerprint(&self) -> u64 {
        use crate::prior::PriorKind;
        use bmf_stat::fnv::fnv1a_u64;
        let mut h = fnv1a_u64(
            0,
            match self.selection {
                PriorSelection::Fixed(PriorKind::ZeroMean) => 0,
                PriorSelection::Fixed(PriorKind::NonZeroMean) => 1,
                PriorSelection::Auto => 2,
            },
        );
        h = fnv1a_u64(
            h,
            match self.solver {
                SolverKind::Direct => 0,
                SolverKind::Fast => 1,
            },
        );
        h = fnv1a_u64(h, self.folds as u64);
        h = fnv1a_u64(h, self.grid.len() as u64);
        for &g in &self.grid {
            h = fnv1a_u64(h, g.to_bits());
        }
        h = fnv1a_u64(h, self.seed);
        h = fnv1a_u64(h, self.threads as u64);
        fnv1a_u64(h, self.hyper.to_bits())
    }

    /// The cross-validation slice of these options as a [`CvConfig`]
    /// (used by the standalone `cross_validate_*` entry points).
    pub fn cv_config(&self) -> CvConfig {
        CvConfig {
            folds: self.folds,
            // Clone: the conversion yields an owned config; called once
            // per entry point, never in a solve loop.
            grid: self.grid.clone(),
            seed: self.seed,
        }
    }
}

impl From<&CvConfig> for FitOptions {
    fn from(cv: &CvConfig) -> Self {
        FitOptions {
            folds: cv.folds,
            grid: cv.grid.clone(),
            seed: cv.seed,
            ..FitOptions::default()
        }
    }
}

/// Validates a hyper-parameter grid (shared by [`FitOptions::validate`]
/// and the standalone cross-validation entry points).
pub(crate) fn validate_grid(grid: &[f64]) -> Result<()> {
    if grid.is_empty() || grid.iter().any(|&h| h <= 0.0 || !h.is_finite()) {
        return Err(BmfError::config(
            "grid",
            "hyper-parameter grid must be non-empty, positive, and finite",
        ));
    }
    Ok(())
}

/// Validates a fold count (shared with the cross-validation entry
/// points).
pub(crate) fn validate_folds(folds: usize) -> Result<()> {
    if folds < 2 {
        return Err(BmfError::config(
            "folds",
            format!("need at least 2 cross-validation folds, got {folds}"),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prior::PriorKind;

    #[test]
    fn defaults_match_legacy_cv_config() {
        let opts = FitOptions::new();
        let cv = opts.cv_config();
        assert_eq!(cv, CvConfig::default());
        assert_eq!(opts.selection, PriorSelection::Auto);
        assert_eq!(opts.solver, SolverKind::Fast);
        assert_eq!(opts.threads, 0);
        assert!((opts.hyper - 1.0).abs() < 1e-15);
    }

    #[test]
    fn builder_setters_chain() {
        let opts = FitOptions::new()
            .selection(PriorSelection::Fixed(PriorKind::ZeroMean))
            .solver(SolverKind::Direct)
            .folds(3)
            .grid(vec![0.5, 1.0])
            .seed(42)
            .threads(4)
            .hyper(2.5);
        assert_eq!(opts.selection, PriorSelection::Fixed(PriorKind::ZeroMean));
        assert_eq!(opts.solver, SolverKind::Direct);
        assert_eq!(opts.folds, 3);
        assert_eq!(opts.grid, vec![0.5, 1.0]);
        assert_eq!(opts.seed, 42);
        assert_eq!(opts.threads, 4);
        assert!((opts.hyper - 2.5).abs() < 1e-15);
    }

    #[test]
    fn validate_names_offending_parameter() {
        let empty = FitOptions::new().grid(vec![]);
        assert!(matches!(
            empty.validate(),
            Err(BmfError::Config {
                parameter: "grid",
                ..
            })
        ));
        let negative = FitOptions::new().grid(vec![-1.0]);
        assert!(matches!(
            negative.validate(),
            Err(BmfError::Config {
                parameter: "grid",
                ..
            })
        ));
        let one_fold = FitOptions::new().folds(1);
        assert!(matches!(
            one_fold.validate(),
            Err(BmfError::Config {
                parameter: "folds",
                ..
            })
        ));
        let bad_hyper = FitOptions::new().hyper(0.0);
        assert!(matches!(
            bad_hyper.validate(),
            Err(BmfError::Config {
                parameter: "hyper",
                ..
            })
        ));
        assert!(FitOptions::new().validate().is_ok());
    }

    #[test]
    fn content_fingerprint_separates_configurations() {
        let a = FitOptions::new();
        let b = FitOptions::new();
        assert_eq!(a.content_fingerprint(), b.content_fingerprint());
        assert_ne!(
            a.content_fingerprint(),
            FitOptions::new().seed(1).content_fingerprint()
        );
        assert_ne!(
            a.content_fingerprint(),
            FitOptions::new()
                .solver(SolverKind::Direct)
                .content_fingerprint()
        );
        assert_ne!(
            a.content_fingerprint(),
            FitOptions::new()
                .selection(PriorSelection::Fixed(PriorKind::ZeroMean))
                .content_fingerprint()
        );
    }

    #[test]
    fn explicit_threads_beat_auto() {
        assert_eq!(FitOptions::new().threads(3).effective_threads(), 3);
        assert!(FitOptions::new().effective_threads() >= 1);
    }

    #[test]
    fn from_cv_config_round_trips() {
        let cv = CvConfig {
            folds: 7,
            grid: vec![0.1, 1.0, 10.0],
            seed: 9,
        };
        let opts = FitOptions::from(&cv);
        assert_eq!(opts.cv_config(), cv);
    }
}
