//! Classical least-squares fitting (§II-B, eq. 6–9) — the traditional
//! baseline that needs `K > M` samples.

use bmf_basis::basis::OrthonormalBasis;
use bmf_linalg::{Matrix, Vector};

use crate::model::PerformanceModel;
use crate::{BmfError, Result};

/// Fits a performance model by ordinary least squares over the given
/// basis, solving the overdetermined system (eq. 6) via Householder QR.
///
/// # Errors
///
/// * [`BmfError::NotEnoughSamples`] when `K < M` (the system would be
///   underdetermined — use [`crate::omp`] or [`crate::fusion`] instead).
/// * [`BmfError::SampleShape`] when points and values disagree.
/// * [`BmfError::NonFiniteInput`] when a point or value is NaN/±∞.
/// * [`BmfError::Linalg`] when the design matrix is rank deficient.
///
/// # Example
///
/// ```
/// use bmf_basis::basis::OrthonormalBasis;
/// use bmf_core::least_squares::fit_least_squares;
///
/// # fn main() -> Result<(), bmf_core::BmfError> {
/// let basis = OrthonormalBasis::linear(1);
/// let points = vec![vec![-1.0], vec![0.0], vec![1.0]];
/// let values = vec![0.0, 1.0, 2.0]; // f(x) = 1 + x
/// let model = fit_least_squares(&basis, &points, &values)?;
/// assert!((model.coeffs()[0] - 1.0).abs() < 1e-12);
/// assert!((model.coeffs()[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn fit_least_squares(
    basis: &OrthonormalBasis,
    points: &[Vec<f64>],
    values: &[f64],
) -> Result<PerformanceModel> {
    if points.len() != values.len() {
        return Err(BmfError::SampleShape {
            detail: format!("{} points vs {} values", points.len(), values.len()),
        });
    }
    if points.len() < basis.len() {
        return Err(BmfError::NotEnoughSamples {
            available: points.len(),
            required: basis.len(),
            context: "least-squares fitting",
        });
    }
    crate::screen::points(points, basis.num_vars())?;
    crate::screen::finite_values("response values", values)?;
    let g = basis.design_matrix(points.iter().map(|p| p.as_slice()));
    let f = Vector::from(values);
    let coeffs = g.qr()?.solve_least_squares(&f)?;
    PerformanceModel::new(basis.clone(), coeffs.into_vec())
}

/// Solves the raw least-squares problem on an explicit design matrix,
/// returning the coefficient vector. Used internally by OMP's active-set
/// refits.
///
/// # Errors
///
/// Propagates [`BmfError::Linalg`] on rank deficiency,
/// [`BmfError::SampleShape`] on shape mismatch, and
/// [`BmfError::NonFiniteInput`] on NaN/±∞ entries.
pub fn solve_least_squares(g: &Matrix, f: &Vector) -> Result<Vector> {
    if g.nrows() != f.len() {
        return Err(BmfError::SampleShape {
            detail: format!("{} design rows vs {} values", g.nrows(), f.len()),
        });
    }
    crate::screen::finite_matrix("design matrix", g)?;
    crate::screen::finite_values("response values", f.as_slice())?;
    Ok(g.qr()?.solve_least_squares(f)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_linear_truth_exactly() {
        let basis = OrthonormalBasis::linear(2);
        let truth = [2.0, -1.0, 0.5];
        let points: Vec<Vec<f64>> = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![-1.0, 2.0],
        ];
        let values: Vec<f64> = points
            .iter()
            .map(|p| truth[0] + truth[1] * p[0] + truth[2] * p[1])
            .collect();
        let m = fit_least_squares(&basis, &points, &values).unwrap();
        for (a, t) in m.coeffs().iter().zip(truth.iter()) {
            assert!((a - t).abs() < 1e-12);
        }
    }

    #[test]
    fn averages_noise_in_overdetermined_regime() {
        let basis = OrthonormalBasis::linear(1);
        // f(x) = x with +-0.1 alternating noise over symmetric points.
        let points: Vec<Vec<f64>> = vec![vec![-1.0], vec![-1.0], vec![1.0], vec![1.0]];
        let values = vec![-1.1, -0.9, 0.9, 1.1];
        let m = fit_least_squares(&basis, &points, &values).unwrap();
        assert!(m.coeffs()[0].abs() < 1e-12);
        assert!((m.coeffs()[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn underdetermined_rejected() {
        let basis = OrthonormalBasis::linear(5);
        let points = vec![vec![0.0; 5]; 3];
        let values = vec![0.0; 3];
        assert!(matches!(
            fit_least_squares(&basis, &points, &values),
            Err(BmfError::NotEnoughSamples { .. })
        ));
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let basis = OrthonormalBasis::linear(1);
        assert!(matches!(
            fit_least_squares(&basis, &[vec![0.0]], &[1.0, 2.0]),
            Err(BmfError::SampleShape { .. })
        ));
    }
}
