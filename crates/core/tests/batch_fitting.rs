//! Integration tests for the parallel batch-fitting engine: exact
//! equivalence with the single-job fitter, bit-identical results across
//! thread counts, and honest kernel-cache accounting.

use bmf_basis::basis::OrthonormalBasis;
use bmf_core::batch::{BatchFitter, BatchJob};
use bmf_core::fusion::BmfFitter;
use bmf_core::options::FitOptions;
use bmf_stat::normal::StandardNormal;
use bmf_stat::rng::seeded;

fn sample_points(k: usize, r: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = seeded(seed);
    let mut s = StandardNormal::new();
    (0..k).map(|_| s.sample_vec(&mut rng, r)).collect()
}

/// A linear ground truth plus a mildly perturbed early model, per job.
fn job_truth(r: usize, job: usize) -> (Vec<f64>, Vec<Option<f64>>) {
    let truth: Vec<f64> = (0..=r)
        .map(|i| ((i + 3 * job) as f64 * 0.7).cos() * (1.0 + job as f64 * 0.3))
        .collect();
    let early = truth
        .iter()
        .enumerate()
        .map(|(i, t)| Some(t * (1.0 + 0.08 * ((i * 5 + job) as f64).sin())))
        .collect();
    (truth, early)
}

fn eval(truth: &[f64], p: &[f64]) -> f64 {
    truth[0]
        + p.iter()
            .enumerate()
            .map(|(i, x)| truth[i + 1] * x)
            .sum::<f64>()
}

fn make_batch(
    r: usize,
    num_jobs: usize,
    points: &[Vec<f64>],
) -> (BatchFitter, Vec<Vec<Option<f64>>>, Vec<Vec<f64>>) {
    let basis = OrthonormalBasis::linear(r);
    let mut fitter = BatchFitter::new(basis);
    let mut priors = Vec::new();
    let mut responses = Vec::new();
    for j in 0..num_jobs {
        let (truth, early) = job_truth(r, j);
        let values: Vec<f64> = points.iter().map(|p| eval(&truth, p)).collect();
        fitter.push_job(BatchJob::new(
            format!("job{j}"),
            early.clone(),
            values.clone(),
        ));
        priors.push(early);
        responses.push(values);
    }
    (fitter, priors, responses)
}

fn coeff_bits(coeffs: &[f64]) -> Vec<u64> {
    coeffs.iter().map(|c| c.to_bits()).collect()
}

#[test]
fn single_job_batch_reproduces_bmf_fitter_bitwise() {
    let (r, k) = (10, 16);
    let points = sample_points(k, r, 42);
    let opts = FitOptions::new().folds(4).seed(7);
    let (batch, priors, responses) = make_batch(r, 1, &points);
    let report = batch.with_options(opts.clone()).fit(&points).unwrap();

    let serial = BmfFitter::new(OrthonormalBasis::linear(r), priors[0].clone())
        .unwrap()
        .with_options(opts)
        .fit(&points, &responses[0])
        .unwrap();

    assert_eq!(
        coeff_bits(report.fits[0].model.coeffs()),
        coeff_bits(serial.model.coeffs()),
        "one-job batch must be bit-identical to BmfFitter::fit"
    );
    assert_eq!(report.fits[0].prior_kind, serial.prior_kind);
    assert_eq!(report.fits[0].hyper.to_bits(), serial.hyper.to_bits());
    assert_eq!(report.fits[0].cv_error.to_bits(), serial.cv_error.to_bits());
    assert_eq!(report.fits[0].selection, serial.selection);
}

#[test]
fn batch_matches_serial_loop_for_every_job() {
    let (r, k, n) = (8, 14, 6);
    let points = sample_points(k, r, 5);
    let opts = FitOptions::new().folds(4).seed(3);
    let (batch, priors, responses) = make_batch(r, n, &points);
    let report = batch.with_options(opts.clone()).fit(&points).unwrap();
    assert_eq!(report.fits.len(), n);

    for j in 0..n {
        let serial = BmfFitter::new(OrthonormalBasis::linear(r), priors[j].clone())
            .unwrap()
            .with_options(opts.clone())
            .fit(&points, &responses[j])
            .unwrap();
        assert_eq!(
            coeff_bits(report.fits[j].model.coeffs()),
            coeff_bits(serial.model.coeffs()),
            "job {j} diverged from the serial loop"
        );
        assert_eq!(report.fits[j].prior_kind, serial.prior_kind);
        assert_eq!(report.fits[j].hyper.to_bits(), serial.hyper.to_bits());
    }
}

#[test]
fn results_are_bit_identical_across_thread_counts() {
    let (r, k, n) = (9, 15, 5);
    let points = sample_points(k, r, 17);
    let mut reference: Option<Vec<Vec<u64>>> = None;
    for threads in [1usize, 2, 8] {
        let opts = FitOptions::new().folds(5).seed(1).threads(threads);
        let (batch, _, _) = make_batch(r, n, &points);
        let report = batch.with_options(opts).fit(&points).unwrap();
        assert_eq!(report.threads, threads);
        let bits: Vec<Vec<u64>> = report
            .fits
            .iter()
            .map(|f| coeff_bits(f.model.coeffs()))
            .collect();
        match &reference {
            None => reference = Some(bits),
            Some(want) => assert_eq!(
                &bits, want,
                "results changed between thread counts (threads={threads})"
            ),
        }
    }
}

#[test]
fn counters_are_schedule_independent() {
    let (r, k, n) = (7, 12, 4);
    let points = sample_points(k, r, 23);
    let mut reference = None;
    for threads in [1usize, 4] {
        let (batch, _, _) = make_batch(r, n, &points);
        let report = batch
            .with_options(FitOptions::new().folds(4).threads(threads))
            .fit(&points)
            .unwrap();
        match reference {
            None => reference = Some(report.counters),
            Some(want) => assert_eq!(report.counters, want),
        }
    }
}

#[test]
fn jobs_sharing_a_prior_hit_the_kernel_cache() {
    let (r, k) = (6, 12);
    let points = sample_points(k, r, 9);
    let (truth, early) = job_truth(r, 0);
    let values: Vec<f64> = points.iter().map(|p| eval(&truth, p)).collect();
    // Same prior, sign-flipped response: identical RMS, so the normalized
    // prior — and therefore every Woodbury kernel — coincides exactly.
    let flipped: Vec<f64> = values.iter().map(|v| -v).collect();
    let folds = 4usize;
    let report = BatchFitter::new(OrthonormalBasis::linear(r))
        .with_options(FitOptions::new().folds(folds))
        .job(BatchJob::new("a", early.clone(), values))
        .job(BatchJob::new("b", early, flipped))
        .fit(&points)
        .unwrap();
    assert_eq!(report.counters.kernel_cache_misses, folds);
    assert_eq!(report.counters.kernel_cache_hits, folds);
    assert_eq!(report.counters.kernels_built, folds);
    // Per-job attribution: the first job built, the second reused.
    assert_eq!(report.fits[0].counters.kernel_cache_misses, folds);
    assert_eq!(report.fits[0].counters.kernel_cache_hits, 0);
    assert_eq!(report.fits[1].counters.kernel_cache_hits, folds);
    assert_eq!(report.fits[1].counters.kernel_cache_misses, 0);
}

#[test]
fn distinct_priors_build_distinct_kernels() {
    let (r, k, n) = (6, 12, 3);
    let points = sample_points(k, r, 31);
    let folds = 3usize;
    let (batch, _, _) = make_batch(r, n, &points);
    let report = batch
        .with_options(FitOptions::new().folds(folds))
        .fit(&points)
        .unwrap();
    assert_eq!(report.counters.kernels_built, n * folds);
    assert_eq!(report.counters.kernel_cache_hits, 0);
}

#[test]
fn report_carries_labels_and_timings() {
    let (r, k) = (5, 10);
    let points = sample_points(k, r, 2);
    let (batch, _, _) = make_batch(r, 2, &points);
    let report = batch
        .with_options(FitOptions::new().folds(3))
        .fit(&points)
        .unwrap();
    assert_eq!(report.labels, vec!["job0", "job1"]);
    assert!(report.timings.total() >= report.timings.prepare);
    assert!(report.counters.map_solves > 0);
}
