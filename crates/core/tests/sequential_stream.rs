//! Streaming-equals-batch contract for the sequential stack.
//!
//! The streaming posterior engine's core claim is *bitwise* equality:
//! after any prefix of any sample stream, `SequentialBmf` holds exactly
//! the coefficients a from-scratch batch `map_estimate` over the seen
//! prefix would produce — same bits, not just same values. This suite
//! pins that property under randomized shapes, hyper-parameters, and
//! stream orders, and extends it through the service front:
//! `append_sample` through a `FitService` must land on the same bits as
//! an offline `SequentialBmf`, at any worker-pool size, under any
//! drain chunking.

use bmf_basis::basis::OrthonormalBasis;
use bmf_core::map_estimate::map_estimate;
use bmf_core::options::FitOptions;
use bmf_core::prior::{Prior, PriorKind};
use bmf_core::sequential::SequentialBmf;
use bmf_core::service::{FitService, ServiceConfig};
use bmf_core::workspace::SeqWorkspace;
use bmf_linalg::{Matrix, Vector};
use bmf_stat::normal::StandardNormal;
use bmf_stat::rng::{derive_seed, seeded, Rng};

fn random_rows(k: usize, m: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = seeded(seed);
    let mut s = StandardNormal::new();
    (0..k).map(|_| s.sample_vec(&mut rng, m)).collect()
}

fn shuffled(n: usize, rng: &mut Rng) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_index(i + 1));
    }
    order
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// After every absorbed sample, the streamed posterior mean must equal
/// the batch MAP estimate over the seen prefix bit for bit — across
/// problem shapes, hyper-parameters, and random stream orders.
#[test]
fn streamed_prefixes_match_batch_bitwise_under_random_orders_and_shapes() {
    let shapes: &[(usize, usize, f64)] = &[
        (3, 2, 1.0),
        (9, 6, 0.25),
        (17, 12, 4.0),
        (33, 5, 1.0),
        (12, 16, 0.5), // K < M: fewer samples than coefficients
    ];
    for (case, &(k, m, hyper)) in shapes.iter().enumerate() {
        let seed = derive_seed(0xB17_B17, case as u64);
        let rows = random_rows(k, m, seed);
        let values: Vec<f64> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| r.iter().sum::<f64>() * 0.4 + i as f64 * 0.01)
            .collect();
        let early: Vec<f64> = (0..m).map(|i| 0.9 / (1.0 + i as f64)).collect();
        let prior = Prior::from_coeffs(PriorKind::NonZeroMean, &early);
        let options = FitOptions::new().hyper(hyper);
        let mut order_rng = seeded(derive_seed(seed, 99));

        for _ in 0..3 {
            let order = shuffled(k, &mut order_rng);
            let mut seq = SequentialBmf::new(&prior, hyper).expect("valid prior");
            let mut ws = SeqWorkspace::for_problem(k, m);
            let mut streamed = vec![0.0; m];
            let mut seen: Vec<&[f64]> = Vec::with_capacity(k);
            let mut seen_values = Vec::with_capacity(k);

            for &idx in &order {
                seq.add_sample(&rows[idx], values[idx], &mut ws)
                    .expect("finite sample");
                seen.push(&rows[idx]);
                seen_values.push(values[idx]);

                seq.coefficients_into(&mut ws, &mut streamed)
                    .expect("coefficients");
                let g = Matrix::from_rows(&seen).expect("design");
                let f = Vector::from(seen_values.clone());
                let batch = map_estimate(&g, &f, &prior, &options).expect("batch fit");
                assert_eq!(
                    bits(&streamed),
                    bits(batch.as_slice()),
                    "prefix {} of order {order:?} diverged (shape k={k} m={m} hyper={hyper})",
                    seen.len(),
                );
            }
        }
    }
}

/// The zero-sample stream is the prior mean, also bit for bit.
#[test]
fn empty_stream_reports_the_prior_mean_bitwise() {
    let early = [1.25, -0.75, 0.5];
    let prior = Prior::from_coeffs(PriorKind::NonZeroMean, &early);
    let seq = SequentialBmf::new(&prior, 2.0).expect("valid prior");
    let coeffs = seq.coefficients().expect("prior mean");
    assert_eq!(bits(coeffs.as_slice()), bits(&early));
}

fn stream_service(threads: usize) -> FitService {
    FitService::new(ServiceConfig {
        options: FitOptions::new().threads(threads).seed(11),
        ..ServiceConfig::default()
    })
    .expect("service config")
}

/// Streams appended through the service front — interleaved with
/// drains at arbitrary chunk boundaries and fits on the batch path —
/// must land on exactly the bits an offline `SequentialBmf` produces,
/// at every worker-pool size.
#[test]
fn service_appends_bit_identical_to_offline_at_any_pool_size() {
    let vars = 5;
    let basis = OrthonormalBasis::linear(vars);
    let m = basis.len();
    let early: Vec<f64> = (0..m).map(|i| 0.6 / (1.0 + i as f64 * 0.5)).collect();
    let prior = Prior::from_coeffs(PriorKind::NonZeroMean, &early);
    let hyper = 1.5;
    let points = random_rows(24, vars, 0x57AE);
    let values: Vec<f64> = points
        .iter()
        .map(|p| 0.3 + p.iter().sum::<f64>() * 0.7)
        .collect();

    // Offline reference: one estimator fed the same rows in order.
    let mut offline = SequentialBmf::new(&prior, hyper).expect("valid prior");
    let mut ws = SeqWorkspace::for_problem(points.len(), m);
    for (p, &v) in points.iter().zip(&values) {
        offline
            .add_sample(&basis.row(p), v, &mut ws)
            .expect("finite sample");
    }
    let reference = offline.coefficients().expect("offline coefficients");

    let mut per_pool = Vec::new();
    for threads in [1usize, 4] {
        let service = stream_service(threads);
        service
            .register_stream("ro/freq", basis.clone(), &prior, hyper)
            .expect("stream registration");
        // Uneven drain chunking: the split points must not matter.
        let chunks: &[usize] = &[1, 5, 2, 9, 7];
        let mut fed = 0;
        for &chunk in chunks {
            for _ in 0..chunk {
                service
                    .append_sample("ro/freq", &points[fed], values[fed])
                    .expect("append accepted");
                fed += 1;
            }
            let report = service.drain();
            assert_eq!(report.appended(), chunk);
        }
        assert_eq!(fed, points.len());
        assert_eq!(service.stream_samples("ro/freq").unwrap(), points.len());

        let snap = service.snapshot("ro/freq").expect("streamed model live");
        assert_eq!(
            bits(snap.model.coeffs()),
            bits(reference.as_slice()),
            "service stream diverged from offline estimator at {threads} threads"
        );
        per_pool.push(bits(snap.model.coeffs()));
    }
    assert_eq!(per_pool[0], per_pool[1], "pool size changed streamed bits");
}

/// Appends queued before a drain apply in ticket order, so a stream's
/// registry snapshot after interleaved multi-stream traffic equals each
/// stream's own offline replay.
#[test]
fn interleaved_streams_stay_isolated_and_ordered() {
    let vars = 3;
    let basis = OrthonormalBasis::linear(vars);
    let m = basis.len();
    let prior_a = Prior::from_coeffs(PriorKind::NonZeroMean, &vec![0.8; m]);
    let prior_b = Prior::from_coeffs(PriorKind::NonZeroMean, &vec![-0.4; m]);
    let points = random_rows(16, vars, 0xD0B);

    let service = stream_service(2);
    service
        .register_stream("a", basis.clone(), &prior_a, 1.0)
        .expect("register a");
    service
        .register_stream("b", basis.clone(), &prior_b, 3.0)
        .expect("register b");

    let mut offline_a = SequentialBmf::new(&prior_a, 1.0).expect("prior a");
    let mut offline_b = SequentialBmf::new(&prior_b, 3.0).expect("prior b");
    let mut ws = SeqWorkspace::new();
    for (i, p) in points.iter().enumerate() {
        let v = 0.2 * i as f64 - 1.0;
        if i % 3 == 0 {
            service.append_sample("b", p, v).expect("append b");
            offline_b
                .add_sample(&basis.row(p), v, &mut ws)
                .expect("offline b");
        } else {
            service.append_sample("a", p, v).expect("append a");
            offline_a
                .add_sample(&basis.row(p), v, &mut ws)
                .expect("offline a");
        }
    }
    let report = service.drain();
    assert_eq!(report.appended(), points.len());
    assert_eq!(service.stream_count(), 2);

    for (job, offline) in [("a", &offline_a), ("b", &offline_b)] {
        let snap = service.snapshot(job).expect("stream model live");
        let reference = offline.coefficients().expect("offline coefficients");
        assert_eq!(
            bits(snap.model.coeffs()),
            bits(reference.as_slice()),
            "stream `{job}` diverged from its offline replay"
        );
    }
}
