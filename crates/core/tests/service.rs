//! Integration suite for `bmf_core::service`: the serving path must be
//! bit-identical to direct library calls, deterministic under any
//! submission interleaving and thread count, and panic-free with
//! structured errors on every miss or failure.

use bmf_basis::basis::OrthonormalBasis;
use bmf_core::batch::{BatchFitter, BatchJob};
use bmf_core::fusion::BmfFitter;
use bmf_core::options::FitOptions;
use bmf_core::service::{FitRequest, FitService, ServiceConfig};
use bmf_core::BmfError;
use bmf_stat::normal::StandardNormal;
use bmf_stat::rng::seeded;

fn sample_points(k: usize, r: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = seeded(seed);
    let mut s = StandardNormal::new();
    (0..k).map(|_| s.sample_vec(&mut rng, r)).collect()
}

/// A distinct linear job per index over shared points: truth, perturbed
/// early prior, and exact response values.
fn job_payload(j: usize, r: usize, points: &[Vec<f64>]) -> (Vec<Option<f64>>, Vec<f64>) {
    let truth: Vec<f64> = (0..=r)
        .map(|i| ((i + 5 * j) as f64 * 0.41).cos() * (1.0 + j as f64 * 0.07))
        .collect();
    let values = points
        .iter()
        .map(|p| {
            truth[0]
                + p.iter()
                    .enumerate()
                    .map(|(i, x)| truth[i + 1] * x)
                    .sum::<f64>()
        })
        .collect();
    let prior = truth
        .iter()
        .enumerate()
        .map(|(i, t)| Some(t * (1.0 + 0.05 * ((i + j) as f64).sin())))
        .collect();
    (prior, values)
}

fn options(threads: usize) -> FitOptions {
    FitOptions::new().folds(4).seed(17).threads(threads)
}

fn coeff_bits(coeffs: &[f64]) -> Vec<u64> {
    coeffs.iter().map(|c| c.to_bits()).collect()
}

#[test]
fn service_fits_are_bit_identical_to_direct_calls() {
    let r = 5;
    let basis = OrthonormalBasis::linear(r);
    let points = sample_points(14, r, 21);
    let jobs = 6;

    let service = FitService::new(ServiceConfig {
        options: options(0),
        ..ServiceConfig::default()
    })
    .unwrap();
    let ps = service.register_points(points.clone()).unwrap();
    for j in 0..jobs {
        let (prior, values) = job_payload(j, r, &points);
        service
            .submit_fit(FitRequest {
                job_id: format!("job{j}"),
                basis: basis.clone(),
                points: ps,
                prior,
                values,
            })
            .unwrap();
    }
    let report = service.drain();
    assert_eq!(report.served(), jobs);
    assert_eq!(report.batches.len(), 1, "one shared set ⇒ one batch");

    // Direct batch path, same options.
    let mut batch = BatchFitter::new(basis.clone()).with_options(options(0));
    for j in 0..jobs {
        let (prior, values) = job_payload(j, r, &points);
        batch.push_job(BatchJob::new(format!("job{j}"), prior, values));
    }
    let direct = batch.fit(&points).unwrap();

    for (outcome, direct_fit) in report.outcomes.iter().zip(&direct.fits) {
        let served = outcome.result.as_ref().unwrap();
        assert_eq!(served.coalesced, jobs);
        assert_eq!(
            coeff_bits(served.fit.model.coeffs()),
            coeff_bits(direct_fit.model.coeffs()),
            "service fit for {} diverges from BatchFitter",
            outcome.job_id
        );
        assert_eq!(served.fit.hyper.to_bits(), direct_fit.hyper.to_bits());
        assert_eq!(served.fit.prior_kind, direct_fit.prior_kind);
        assert_eq!(served.fit.resilience, direct_fit.resilience);
    }

    // Serial path: each job alone through BmfFitter.
    for j in 0..jobs {
        let (prior, values) = job_payload(j, r, &points);
        let serial = BmfFitter::new(basis.clone(), prior)
            .unwrap()
            .with_options(options(0))
            .fit(&points, &values)
            .unwrap();
        let served = report.outcomes[j].result.as_ref().unwrap();
        assert_eq!(
            coeff_bits(served.fit.model.coeffs()),
            coeff_bits(serial.model.coeffs()),
            "service fit for job{j} diverges from serial BmfFitter"
        );
    }

    // The registry serves the same model the fit returned.
    let x = vec![0.3; r];
    for j in 0..jobs {
        let served = report.outcomes[j].result.as_ref().unwrap();
        let direct_pred = served.fit.model.predict(&x);
        let via_registry = service.predict(&format!("job{j}"), &x).unwrap();
        assert_eq!(via_registry.to_bits(), direct_pred.to_bits());
    }
}

#[test]
fn results_are_bit_identical_at_any_pool_size() {
    let r = 4;
    let basis = OrthonormalBasis::linear(r);
    let points = sample_points(12, r, 33);
    let run = |threads: usize| {
        let service = FitService::new(ServiceConfig {
            options: options(threads),
            ..ServiceConfig::default()
        })
        .unwrap();
        let ps = service.register_points(points.clone()).unwrap();
        for j in 0..8 {
            let (prior, values) = job_payload(j, r, &points);
            service
                .submit_fit(FitRequest {
                    job_id: format!("job{j}"),
                    basis: basis.clone(),
                    points: ps,
                    prior,
                    values,
                })
                .unwrap();
        }
        let report = service.drain();
        report
            .outcomes
            .into_iter()
            .map(|o| coeff_bits(o.result.unwrap().fit.model.coeffs()))
            .collect::<Vec<_>>()
    };
    let reference = run(1);
    for threads in [2, 4, 8] {
        assert_eq!(
            run(threads),
            reference,
            "results drift at {threads} threads"
        );
    }
}

#[test]
fn coalescing_is_deterministic_under_shuffled_submission() {
    let r = 4;
    let basis = OrthonormalBasis::linear(r);
    // Two distinct shared point sets → two coalescing groups.
    let points_a = sample_points(12, r, 41);
    let points_b = sample_points(10, r, 42);
    let jobs = 10usize;

    let run = |order_seed: u64| {
        let service = FitService::new(ServiceConfig {
            options: options(0),
            ..ServiceConfig::default()
        })
        .unwrap();
        let pa = service.register_points(points_a.clone()).unwrap();
        let pb = service.register_points(points_b.clone()).unwrap();
        let mut order: Vec<usize> = (0..jobs).collect();
        seeded(order_seed).shuffle(&mut order);
        for &j in &order {
            let (set, pts) = if j % 2 == 0 {
                (pa, &points_a)
            } else {
                (pb, &points_b)
            };
            let (prior, values) = job_payload(j, r, pts);
            service
                .submit_fit(FitRequest {
                    job_id: format!("job{j}"),
                    basis: basis.clone(),
                    points: set,
                    prior,
                    values,
                })
                .unwrap();
        }
        let report = service.drain();
        assert_eq!(report.batches.len(), 2, "two groups ⇒ two batches");
        // Key by job id: outcome order follows submission order, which
        // this test varies on purpose.
        let mut by_job: Vec<(String, Vec<u64>)> = report
            .outcomes
            .into_iter()
            .map(|o| {
                (
                    o.job_id.clone(),
                    coeff_bits(o.result.unwrap().fit.model.coeffs()),
                )
            })
            .collect();
        by_job.sort();
        by_job
    };

    let reference = run(100);
    for order_seed in [101, 102, 103] {
        assert_eq!(
            run(order_seed),
            reference,
            "coalesced results depend on submission interleaving"
        );
    }
}

#[test]
fn predict_after_evict_is_a_structured_miss() {
    let r = 3;
    let basis = OrthonormalBasis::linear(r);
    let points = sample_points(10, r, 55);
    let service = FitService::new(ServiceConfig {
        options: options(0),
        ..ServiceConfig::default()
    })
    .unwrap();
    let ps = service.register_points(points.clone()).unwrap();
    let (prior, values) = job_payload(0, r, &points);
    service
        .submit_fit(FitRequest {
            job_id: "gain".into(),
            basis,
            points: ps,
            prior,
            values,
        })
        .unwrap();
    service.drain();
    let x = vec![0.1; r];
    assert!(service.predict("gain", &x).is_ok());

    service.evict("gain").unwrap();
    match service.predict("gain", &x) {
        Err(BmfError::NotFound { what: "model", key }) => assert_eq!(key, "gain"),
        other => panic!("expected NotFound after evict, got {other:?}"),
    }
    // Second evict is a structured miss too, and the counters tell the
    // two apart.
    assert!(matches!(
        service.evict("gain"),
        Err(BmfError::NotFound { .. })
    ));
    let c = service.counters();
    assert_eq!(c.evictions, 1);
    assert_eq!(c.evict_misses, 1);
    assert_eq!(c.predict_misses, 1);

    // The registry really dropped the snapshot, not just the model.
    assert!(service.snapshot("gain").is_none());
    assert!(matches!(
        service.export_model("gain"),
        Err(BmfError::NotFound { .. })
    ));
}

#[test]
fn whole_batch_failure_is_isolated_to_the_guilty_request() {
    // 21-term basis over 12 samples: a job with a real prior fits (the
    // BMF sweet spot), a job with an all-zero prior is under-determined
    // and must fail alone with a structured error.
    let r = 20;
    let basis = OrthonormalBasis::linear(r);
    let points = sample_points(12, r, 66);
    let service = FitService::new(ServiceConfig {
        options: options(0),
        ..ServiceConfig::default()
    })
    .unwrap();
    let ps = service.register_points(points.clone()).unwrap();

    let (prior, values) = job_payload(1, r, &points);
    service
        .submit_fit(FitRequest {
            job_id: "healthy".into(),
            basis: basis.clone(),
            points: ps,
            prior,
            values: values.clone(),
        })
        .unwrap();
    service
        .submit_fit(FitRequest {
            job_id: "doomed".into(),
            basis,
            points: ps,
            prior: vec![Some(0.0); r + 1],
            values,
        })
        .unwrap();

    let report = service.drain();
    assert_eq!(report.outcomes.len(), 2);
    let healthy = &report.outcomes[0];
    let doomed = &report.outcomes[1];
    assert_eq!(healthy.job_id, "healthy");
    assert!(
        healthy.result.is_ok(),
        "healthy neighbor must survive the batch failure: {:?}",
        healthy.result.as_ref().err()
    );
    assert!(matches!(
        doomed.result,
        Err(BmfError::NotEnoughSamples { .. })
    ));
    let c = service.counters();
    assert_eq!(c.isolation_refits, 2, "both requests refit in isolation");
    assert_eq!(c.fits_ok, 1);
    assert_eq!(c.fits_failed, 1);
    // The survivor is registered and serves predictions; the failed job
    // never enters the registry.
    assert!(service.snapshot("healthy").is_some());
    assert!(service.snapshot("doomed").is_none());

    // Isolated refits stay bit-identical to the direct serial path.
    let (prior, values) = job_payload(1, r, &points);
    let serial = BmfFitter::new(OrthonormalBasis::linear(r), prior)
        .unwrap()
        .with_options(options(0))
        .fit(&points, &values)
        .unwrap();
    let served = healthy.result.as_ref().unwrap();
    assert_eq!(
        coeff_bits(served.fit.model.coeffs()),
        coeff_bits(serial.model.coeffs())
    );
}

#[test]
fn max_coalesce_splits_batches_without_changing_results() {
    let r = 4;
    let basis = OrthonormalBasis::linear(r);
    let points = sample_points(12, r, 77);
    let jobs = 9usize;
    let run = |max_coalesce: usize| {
        let service = FitService::new(ServiceConfig {
            max_coalesce,
            options: options(0),
            ..ServiceConfig::default()
        })
        .unwrap();
        let ps = service.register_points(points.clone()).unwrap();
        for j in 0..jobs {
            let (prior, values) = job_payload(j, r, &points);
            service
                .submit_fit(FitRequest {
                    job_id: format!("job{j}"),
                    basis: basis.clone(),
                    points: ps,
                    prior,
                    values,
                })
                .unwrap();
        }
        let report = service.drain();
        (
            report.batches.len(),
            report
                .outcomes
                .into_iter()
                .map(|o| coeff_bits(o.result.unwrap().fit.model.coeffs()))
                .collect::<Vec<_>>(),
        )
    };
    let (one_batch, reference) = run(64);
    assert_eq!(one_batch, 1);
    let (chunked, chunked_results) = run(4);
    assert_eq!(chunked, 3, "9 jobs at cap 4 ⇒ 4+4+1");
    assert_eq!(
        chunked_results, reference,
        "chunking must not change any fit"
    );
}

#[test]
fn export_import_round_trip_preserves_predictions_bitwise() {
    let r = 5;
    let basis = OrthonormalBasis::linear(r);
    let points = sample_points(14, r, 33);
    let source = FitService::new(ServiceConfig {
        options: options(0),
        ..ServiceConfig::default()
    })
    .unwrap();
    let ps = source.register_points(points.clone()).unwrap();
    for j in 0..3 {
        let (prior, values) = job_payload(j, r, &points);
        source
            .submit_fit(FitRequest {
                job_id: format!("job{j}"),
                basis: basis.clone(),
                points: ps,
                prior,
                values,
            })
            .unwrap();
    }
    source.drain();
    assert_eq!(source.snapshot_count(), 3);
    assert_eq!(source.job_ids(), vec!["job0", "job1", "job2"]);

    // Evict-to-disk shape: export carries the model *and* provenance.
    let snap = source.export_model("job1").unwrap();
    assert_eq!(snap.job_id, "job1");
    assert_eq!(snap.options, options(0));
    assert!(snap.validate().is_ok());
    assert!(matches!(
        source.export_model("missing"),
        Err(BmfError::NotFound { .. })
    ));

    // Warm-start a fresh service from the exported snapshots only.
    let target = FitService::new(ServiceConfig::default()).unwrap();
    for id in source.job_ids() {
        target
            .import_snapshot(source.export_model(&id).unwrap())
            .unwrap();
    }
    assert_eq!(target.snapshot_count(), 3);
    let probes = sample_points(8, r, 99);
    for id in source.job_ids() {
        for p in &probes {
            let a = source.predict(&id, p).unwrap();
            let b = target.predict(&id, p).unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "{id} diverges after round trip");
        }
    }
    let c = source.counters();
    assert_eq!(c.exports, 4, "3 warm-start exports + 1 direct");
    assert_eq!(target.counters().imports, 3);
}

#[test]
fn queue_full_rejection_clears_once_the_drain_lands() {
    // Admission is judged against the *current* queue depth: while two
    // submissions are in flight (queued, undrained) a third is shed with
    // a structured Overloaded, and the same submission is admitted again
    // the moment a drain frees the queue.
    let r = 3;
    let basis = OrthonormalBasis::linear(r);
    let points = sample_points(10, r, 88);
    let service = FitService::new(ServiceConfig {
        queue_capacity: 2,
        options: options(0),
        ..ServiceConfig::default()
    })
    .unwrap();
    let ps = service.register_points(points.clone()).unwrap();
    let request = |j: usize| {
        let (prior, values) = job_payload(j, r, &points);
        FitRequest {
            job_id: format!("job{j}"),
            basis: basis.clone(),
            points: ps,
            prior,
            values,
        }
    };
    service.submit_fit(request(0)).unwrap();
    service.submit_fit(request(1)).unwrap();
    match service.submit_fit(request(2)) {
        Err(BmfError::Overloaded { class, capacity }) => {
            assert_eq!(class, "fit");
            assert_eq!(capacity, 2);
        }
        other => panic!("expected Overloaded at capacity, got {other:?}"),
    }
    assert_eq!(service.counters().shed_fits, 1);
    assert_eq!(
        service.queued(),
        2,
        "shed submission must not occupy a slot"
    );

    let report = service.drain();
    assert_eq!(report.served(), 2, "queued work is unaffected by the shed");
    // The drain freed the queue: the identical request is now admitted
    // and fits to the same bits it would have unloaded.
    service.submit_fit(request(2)).unwrap();
    let retry = service.drain();
    assert_eq!(retry.served(), 1);
    let direct = BmfFitter::new(basis.clone(), request(2).prior)
        .unwrap()
        .with_options(options(0))
        .fit(&points, &request(2).values)
        .unwrap();
    let served = retry.outcomes[0].result.as_ref().unwrap();
    assert_eq!(
        coeff_bits(served.fit.model.coeffs()),
        coeff_bits(direct.model.coeffs()),
        "a request admitted after shedding must fit bit-identically"
    );
}

#[test]
fn evict_racing_a_queued_refit_still_installs_the_new_model() {
    // Interleaving: fit job X and drain; submit a re-fit of X; evict X
    // while the re-fit is still queued. The evict must not swallow the
    // queued work — the drain installs the fresh model, bit-identical
    // to a direct fit.
    let r = 4;
    let basis = OrthonormalBasis::linear(r);
    let points = sample_points(12, r, 91);
    let service = FitService::new(ServiceConfig {
        options: options(0),
        ..ServiceConfig::default()
    })
    .unwrap();
    let ps = service.register_points(points.clone()).unwrap();
    let (prior0, values0) = job_payload(0, r, &points);
    service
        .submit_fit(FitRequest {
            job_id: "block".into(),
            basis: basis.clone(),
            points: ps,
            prior: prior0,
            values: values0,
        })
        .unwrap();
    service.drain();
    assert!(service.snapshot("block").is_some());

    // Re-spin: queue the replacement fit, then evict the stale model
    // while the replacement is in flight.
    let (prior1, values1) = job_payload(1, r, &points);
    service
        .submit_fit(FitRequest {
            job_id: "block".into(),
            basis: basis.clone(),
            points: ps,
            prior: prior1.clone(),
            values: values1.clone(),
        })
        .unwrap();
    service.evict("block").unwrap();
    assert!(
        service.snapshot("block").is_none(),
        "evict must take effect immediately"
    );

    let report = service.drain();
    assert_eq!(report.served(), 1);
    let direct = BmfFitter::new(basis, prior1)
        .unwrap()
        .with_options(options(0))
        .fit(&points, &values1)
        .unwrap();
    let registered = service.snapshot("block").expect("refit must install");
    assert_eq!(
        coeff_bits(registered.model.coeffs()),
        coeff_bits(direct.model.coeffs()),
        "model installed after the evict race diverges from a direct fit"
    );
    let c = service.counters();
    assert_eq!(c.evictions, 1);
    assert_eq!(c.fits_ok, 2);
}

#[test]
fn deadline_expiry_of_a_batch_member_leaves_the_cohort_bit_identical() {
    // Five requests share one coalescing group; one carries a virtual
    // deadline that passes before the drain. The expired member gets a
    // structured DeadlineExceeded, never reaches a batch, and the
    // surviving cohort's fits are bit-identical to a run in which the
    // stale request was never submitted.
    let r = 4;
    let basis = OrthonormalBasis::linear(r);
    let points = sample_points(12, r, 95);
    let jobs = 4usize;
    let run = |with_stale: bool| {
        let service = FitService::new(ServiceConfig {
            options: options(0),
            ..ServiceConfig::default()
        })
        .unwrap();
        let ps = service.register_points(points.clone()).unwrap();
        for j in 0..jobs {
            let (prior, values) = job_payload(j, r, &points);
            service
                .submit_fit(FitRequest {
                    job_id: format!("job{j}"),
                    basis: basis.clone(),
                    points: ps,
                    prior,
                    values,
                })
                .unwrap();
        }
        if with_stale {
            let (prior, values) = job_payload(9, r, &points);
            service
                .submit_fit_with_deadline(
                    FitRequest {
                        job_id: "stale".into(),
                        basis: basis.clone(),
                        points: ps,
                        prior,
                        values,
                    },
                    Some(1_000),
                )
                .unwrap();
        }
        let report = service.drain_at(2_000);
        (service.counters(), report)
    };

    let (_, clean) = run(false);
    let (counters, mixed) = run(true);
    assert_eq!(mixed.outcomes.len(), jobs + 1);
    let stale = mixed
        .outcomes
        .iter()
        .find(|o| o.job_id == "stale")
        .expect("expired request must still report an outcome");
    match &stale.result {
        Err(BmfError::DeadlineExceeded {
            deadline_ns,
            now_ns,
        }) => {
            assert_eq!(*deadline_ns, 1_000);
            assert_eq!(*now_ns, 2_000);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert!(stale.batch.is_none(), "expired member must never batch");
    assert_eq!(counters.expired_fits, 1);
    assert_eq!(counters.fits_failed, 1);

    // Cohort bit-identity: job j's fit with the stale member expired
    // equals job j's fit with the stale member never submitted.
    for j in 0..jobs {
        let a = clean.outcomes[j].result.as_ref().unwrap();
        let b = mixed.outcomes[j].result.as_ref().unwrap();
        assert_eq!(
            coeff_bits(a.fit.model.coeffs()),
            coeff_bits(b.fit.model.coeffs()),
            "job{j}: expired batch member perturbed its cohort"
        );
        assert_eq!(a.fit.hyper.to_bits(), b.fit.hyper.to_bits());
    }
}

#[test]
fn requests_accepted_under_overload_fit_bit_identically_to_unloaded() {
    // Capacity 3 sheds half the submissions; every accepted request
    // must still fit to exactly the bits of an unloaded run that took
    // all six.
    let r = 4;
    let basis = OrthonormalBasis::linear(r);
    let points = sample_points(12, r, 97);
    let run = |queue_capacity: usize| {
        let service = FitService::new(ServiceConfig {
            queue_capacity,
            options: options(0),
            ..ServiceConfig::default()
        })
        .unwrap();
        let ps = service.register_points(points.clone()).unwrap();
        let mut accepted = Vec::new();
        for j in 0..6 {
            let (prior, values) = job_payload(j, r, &points);
            let submit = service.submit_fit(FitRequest {
                job_id: format!("job{j}"),
                basis: basis.clone(),
                points: ps,
                prior,
                values,
            });
            match submit {
                Ok(_) => accepted.push(j),
                Err(BmfError::Overloaded { .. }) => {}
                Err(other) => panic!("unexpected submit error: {other:?}"),
            }
        }
        let report = service.drain();
        let bits: Vec<(String, Vec<u64>)> = report
            .outcomes
            .into_iter()
            .map(|o| {
                (
                    o.job_id.clone(),
                    coeff_bits(o.result.unwrap().fit.model.coeffs()),
                )
            })
            .collect();
        (accepted, bits, service.counters())
    };

    let (all, unloaded_bits, _) = run(usize::MAX.min(65_536));
    assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
    let (accepted, loaded_bits, counters) = run(3);
    assert_eq!(accepted, vec![0, 1, 2], "admission is strictly first-come");
    assert_eq!(counters.shed_fits, 3);
    for (job, bits) in &loaded_bits {
        let reference = unloaded_bits
            .iter()
            .find(|(j, _)| j == job)
            .map(|(_, b)| b)
            .unwrap();
        assert_eq!(
            bits, reference,
            "{job}: admission under load changed the fit"
        );
    }
}

#[test]
fn append_queue_sheds_and_recovers_like_the_fit_queue() {
    use bmf_core::prior::{Prior, PriorKind};

    let r = 2;
    let basis = OrthonormalBasis::linear(r);
    let service = FitService::new(ServiceConfig {
        append_capacity: 1,
        options: options(0),
        ..ServiceConfig::default()
    })
    .unwrap();
    let prior = Prior::from_coeffs(PriorKind::ZeroMean, &[1.0, 0.4, -0.2]);
    service
        .register_stream("telemetry", basis, &prior, 1.0)
        .unwrap();
    service
        .append_sample("telemetry", &[0.1, 0.2], 1.1)
        .unwrap();
    match service.append_sample("telemetry", &[0.3, 0.1], 0.9) {
        Err(BmfError::Overloaded { class, capacity }) => {
            assert_eq!(class, "append");
            assert_eq!(capacity, 1);
        }
        other => panic!("expected Overloaded on append queue, got {other:?}"),
    }
    let report = service.drain();
    assert_eq!(report.appended(), 1, "queued append survives the shed");
    assert_eq!(service.stream_samples("telemetry").unwrap(), 1);
    // Slot freed: the shed update is admitted on retry.
    service
        .append_sample("telemetry", &[0.3, 0.1], 0.9)
        .unwrap();
    service.drain();
    assert_eq!(service.stream_samples("telemetry").unwrap(), 2);
    assert_eq!(service.counters().shed_appends, 1);
}

#[test]
fn import_screens_contaminated_snapshots() {
    use bmf_core::model::PerformanceModel;
    use bmf_core::snapshot::ModelSnapshot;

    let service = FitService::new(ServiceConfig::default()).unwrap();
    let bad = PerformanceModel::new(OrthonormalBasis::linear(2), vec![1.0, f64::NAN, 0.0]).unwrap();
    let snap = ModelSnapshot::from_model("poison", bad);
    assert!(matches!(
        service.import_snapshot(snap),
        Err(BmfError::NonFiniteInput { .. })
    ));
    assert_eq!(
        service.snapshot_count(),
        0,
        "rejected import must not register"
    );
    assert_eq!(service.counters().imports, 0);

    let good = PerformanceModel::new(OrthonormalBasis::linear(2), vec![1.0, 0.5, -0.25]).unwrap();
    service
        .import_snapshot(ModelSnapshot::from_model("clean", good))
        .unwrap();
    assert_eq!(service.snapshot_count(), 1);
    assert!(service.predict("clean", &[0.0, 0.0]).is_ok());
}
