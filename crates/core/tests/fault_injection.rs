//! Deterministic fault-injection suite for the panic-free contract.
//!
//! Every fault family from `bmf_stat::faults` — NaN/∞ samples, singular
//! Gram matrices, all-zero priors, duplicated rows, K ≪ rank designs —
//! is driven through the full public fitting API. The contract under
//! test: every call returns `Ok` (possibly degraded, with the ladder
//! rung and ridge reported on the fit) or a structured [`BmfError`], and
//! **never panics**; batch results stay bit-identical at every thread
//! count even on degraded inputs.

use std::panic::{catch_unwind, AssertUnwindSafe};

use bmf_basis::basis::OrthonormalBasis;
use bmf_core::batch::{BatchFitter, BatchJob, BatchReport};
use bmf_core::fusion::BmfFitter;
use bmf_core::hyper::{cross_validate_hyper, CvConfig};
use bmf_core::lasso::{fit_lasso, LassoConfig};
use bmf_core::least_squares::fit_least_squares;
use bmf_core::map_estimate::{map_estimate, map_estimate_with_report, SolverKind};
use bmf_core::omp::{fit_omp, OmpConfig};
use bmf_core::options::FitOptions;
use bmf_core::prior::{Prior, PriorKind};
use bmf_core::sequential::SequentialBmf;
use bmf_core::workspace::SeqWorkspace;
use bmf_core::BmfError;
use bmf_linalg::{Matrix, Vector};
use bmf_stat::faults::FaultInjector;
use bmf_stat::normal::StandardNormal;
use bmf_stat::rng::seeded;

/// Runs `f` asserting it does not panic; the `Result` payload (Ok or a
/// structured error) is returned for further shape assertions.
fn no_panic<T>(label: &str, f: impl FnOnce() -> Result<T, BmfError>) -> Result<T, BmfError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(_) => panic!("`{label}` panicked instead of returning a structured result"),
    }
}

fn sample_points(k: usize, r: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = seeded(seed);
    let mut s = StandardNormal::new();
    (0..k).map(|_| s.sample_vec(&mut rng, r)).collect()
}

fn linear_values(points: &[Vec<f64>], truth: &[f64]) -> Vec<f64> {
    points
        .iter()
        .map(|p| {
            truth[0]
                + p.iter()
                    .enumerate()
                    .map(|(i, x)| truth[i + 1] * x)
                    .sum::<f64>()
        })
        .collect()
}

fn truth_and_early(r: usize) -> (Vec<f64>, Vec<Option<f64>>) {
    let truth: Vec<f64> = (0..=r).map(|i| (i as f64 * 0.7).cos()).collect();
    let early = truth.iter().map(|&t| Some(t * 1.05)).collect();
    (truth, early)
}

#[test]
fn nan_and_inf_values_are_screened_not_propagated() {
    let r = 4;
    let basis = OrthonormalBasis::linear(r);
    let (truth, early) = truth_and_early(r);
    let mut inj = FaultInjector::new(11);
    for poison_inf in [false, true] {
        let points = sample_points(12, r, 1);
        let mut values = linear_values(&points, &truth);
        if poison_inf {
            inj.poison_inf(&mut values);
        } else {
            inj.poison_nan(&mut values);
        }
        let fitter = BmfFitter::new(basis.clone(), early.clone()).unwrap();
        let res = no_panic("BmfFitter::fit with poisoned values", || {
            fitter.fit(&points, &values)
        });
        assert!(
            matches!(res, Err(BmfError::NonFiniteInput { .. })),
            "expected NonFiniteInput, got {res:?}"
        );
        let res = no_panic("fit_least_squares with poisoned values", || {
            fit_least_squares(&basis, &points, &values)
        });
        assert!(matches!(res, Err(BmfError::NonFiniteInput { .. })));
        let res = no_panic("fit_omp with poisoned values", || {
            fit_omp(&basis, &points, &values, &OmpConfig::default())
        });
        assert!(matches!(res, Err(BmfError::NonFiniteInput { .. })));
        let res = no_panic("fit_lasso with poisoned values", || {
            fit_lasso(&basis, &points, &values, &LassoConfig::default())
        });
        assert!(matches!(res, Err(BmfError::NonFiniteInput { .. })));
    }
}

#[test]
fn nan_sample_point_is_screened_before_the_basis() {
    let r = 3;
    let basis = OrthonormalBasis::linear(r);
    let (truth, early) = truth_and_early(r);
    let mut points = sample_points(10, r, 2);
    let values = linear_values(&points, &truth);
    let mut inj = FaultInjector::new(12);
    inj.poison_point_nan(&mut points);
    let fitter = BmfFitter::new(basis.clone(), early.clone()).unwrap();
    let res = no_panic("BmfFitter::fit with NaN point", || {
        fitter.fit(&points, &values)
    });
    assert!(matches!(res, Err(BmfError::NonFiniteInput { .. })));
    let res = no_panic("BatchFitter::fit with NaN point", || {
        BatchFitter::new(basis)
            .job(BatchJob::new("j", early, values))
            .fit(&points)
    });
    assert!(matches!(res, Err(BmfError::NonFiniteInput { .. })));
}

#[test]
fn nan_prior_is_rejected_not_silently_missing() {
    let r = 3;
    let basis = OrthonormalBasis::linear(r);
    let (truth, mut early) = truth_and_early(r);
    early[1] = Some(f64::NAN);
    let points = sample_points(10, r, 3);
    let values = linear_values(&points, &truth);
    let fitter = BmfFitter::new(basis, early).unwrap();
    let res = no_panic("BmfFitter::fit with NaN prior", || {
        fitter.fit(&points, &values)
    });
    assert!(matches!(
        res,
        Err(BmfError::NonFiniteInput {
            what: "prior early coefficients"
        })
    ));
}

#[test]
fn singular_gram_is_rescued_by_the_ladder_with_report() {
    // All sample points collapsed onto one row: GᵀG has rank 1. The
    // direct solver with an all-zero (zero-precision) prior must climb
    // the ladder instead of erroring, and report rung + ridge.
    let r = 3;
    let basis = OrthonormalBasis::linear(r);
    let mut points = sample_points(8, r, 4);
    let mut inj = FaultInjector::new(13);
    inj.collapse_to_rank_one(&mut points);
    let g = basis.design_matrix(points.iter().map(|p| p.as_slice()));
    let f = Vector::from(vec![2.5; 8]);
    let prior = Prior::new(PriorKind::ZeroMean, vec![Some(0.0); r + 1]);
    let opts = FitOptions::new().hyper(1.0).solver(SolverKind::Direct);
    let (alpha, res) = no_panic("map_estimate_with_report on singular Gram", || {
        map_estimate_with_report(&g, &f, &prior, &opts)
    })
    .expect("ladder should rescue the singular system");
    assert!(res.rung > 0, "expected a ladder escalation, got {res:?}");
    assert!(res.ridge > 0.0, "degraded solve must report its ridge");
    assert!(res.is_degraded());
    assert!(alpha.iter().all(|a| a.is_finite()));
    // The rescued solution still reproduces the (consistent) data.
    let pred = g.matvec(&alpha).unwrap();
    for p in pred.iter() {
        assert!((p - 2.5).abs() < 1e-6, "residual too large: {p}");
    }
}

#[test]
fn all_zero_prior_routes_through_zero_precision_path() {
    let r = 3;
    let basis = OrthonormalBasis::linear(r);
    let (truth, mut early) = truth_and_early(r);
    let mut inj = FaultInjector::new(14);
    inj.zero_prior(&mut early);
    // K > M: the data alone identifies the model, so the degenerate
    // prior must not error — it behaves as "no prior knowledge".
    let points = sample_points(12, r, 5);
    let values = linear_values(&points, &truth);
    let fitter = BmfFitter::new(basis, early).unwrap();
    let fit = no_panic("BmfFitter::fit with all-zero prior", || {
        fitter.fit(&points, &values)
    })
    .expect("zero prior with K > M must fit");
    assert!(fit.model.coeffs().iter().all(|c| c.is_finite()));
    for (c, t) in fit.model.coeffs().iter().zip(&truth) {
        assert!((c - t).abs() < 0.1, "coefficient {c} vs truth {t}");
    }
}

#[test]
fn k_much_smaller_than_rank_is_a_structured_error() {
    // 3 samples, 21 coefficients, *no* prior information (all zero ⇒
    // all zero-precision): the posterior is improper and the call must
    // say so, not panic.
    let r = 20;
    let basis = OrthonormalBasis::linear(r);
    let mut points = sample_points(12, r, 6);
    let truth: Vec<f64> = (0..=r).map(|i| (i as f64 * 0.3).sin()).collect();
    let mut values = linear_values(&points, &truth);
    let mut inj = FaultInjector::new(15);
    inj.truncate_samples(&mut points, &mut values, 3);
    let prior = vec![Some(0.0); r + 1];
    let fitter = BmfFitter::new(basis, prior).unwrap();
    let res = no_panic("BmfFitter::fit with K << rank and no prior", || {
        fitter.fit(&points, &values)
    });
    match res {
        Err(BmfError::NotEnoughSamples { .. }) => {}
        other => panic!(
            "expected NotEnoughSamples, got {:?}",
            other.map(|f| f.summary())
        ),
    }
}

#[test]
fn duplicated_rows_still_fit_and_report_resilience() {
    let r = 4;
    let basis = OrthonormalBasis::linear(r);
    let (truth, early) = truth_and_early(r);
    let mut points = sample_points(10, r, 7);
    let mut values = linear_values(&points, &truth);
    let mut inj = FaultInjector::new(16);
    for _ in 0..4 {
        inj.duplicate_row(&mut points, &mut values);
    }
    let fitter = BmfFitter::new(basis, early).unwrap();
    let fit = no_panic("BmfFitter::fit with duplicated rows", || {
        fitter.fit(&points, &values)
    })
    .expect("duplicated rows lose information but stay solvable");
    assert!(fit.model.coeffs().iter().all(|c| c.is_finite()));
    // The resilience report is always present and internally consistent.
    assert!(fit.resilience.rung <= fit.resilience.max_rung.max(fit.resilience.rung));
    assert!(fit.resilience.rcond.is_finite() && fit.resilience.rcond >= 0.0);
    assert_eq!(fit.resilience.degraded_solves, fit.counters.degraded_solves);
}

#[test]
fn sequential_api_screens_faults_and_keeps_state() {
    let prior = Prior::from_coeffs(PriorKind::NonZeroMean, &[1.0, -0.5]);
    // Degenerate hyper and prior are structured errors.
    assert!(matches!(
        no_panic("SequentialBmf::new with NaN hyper", || SequentialBmf::new(
            &prior,
            f64::NAN
        )),
        Err(BmfError::Config {
            parameter: "hyper",
            ..
        })
    ));
    let zero = Prior::from_coeffs(PriorKind::ZeroMean, &[0.0, 0.0]);
    assert!(matches!(
        no_panic("SequentialBmf::new with zero prior", || SequentialBmf::new(
            &zero, 1.0
        )),
        Err(BmfError::Config {
            parameter: "prior",
            ..
        })
    ));
    // A poisoned sample is rejected without corrupting the estimator.
    let mut seq = SequentialBmf::new(&prior, 1.0).unwrap();
    let mut ws = SeqWorkspace::new();
    seq.add_sample(&[1.0, 0.0], 1.2, &mut ws).unwrap();
    let before = seq.coefficients().unwrap();
    let res = no_panic("add_sample with NaN row", || {
        seq.add_sample(&[f64::NAN, 1.0], 0.5, &mut ws)
    });
    assert!(matches!(res, Err(BmfError::NonFiniteInput { .. })));
    let res = no_panic("add_sample with Inf value", || {
        seq.add_sample(&[0.0, 1.0], f64::INFINITY, &mut ws)
    });
    assert!(matches!(res, Err(BmfError::NonFiniteInput { .. })));
    let res = no_panic("add_sample with short row", || {
        seq.add_sample(&[1.0], 0.5, &mut ws)
    });
    assert!(matches!(res, Err(BmfError::SampleShape { .. })));
    let res = no_panic("suggest_next with wrong-width candidates", || {
        let cands = bmf_linalg::view::MatRef::from_row_major(&[1.0, 2.0, 3.0], 1, 3)?;
        seq.suggest_next(cands, &mut ws)
    });
    assert!(matches!(res, Err(BmfError::SampleShape { .. })));
    assert_eq!(
        seq.num_samples(),
        1,
        "rejected samples must not be absorbed"
    );
    let after = seq.coefficients().unwrap();
    assert_eq!(
        before.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        after.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
}

#[test]
fn cross_validation_screens_non_finite_inputs() {
    let g = Matrix::from_fn(10, 4, |i, j| ((i * 4 + j) as f64 * 0.37).sin());
    let mut f = Vector::from_fn(10, |i| i as f64 * 0.2);
    let mut inj = FaultInjector::new(17);
    inj.poison_nan(f.as_mut_slice());
    let prior = Prior::from_coeffs(PriorKind::ZeroMean, &[1.0; 4]);
    let res = no_panic("cross_validate_hyper with NaN response", || {
        cross_validate_hyper(&g, &f, &prior, &CvConfig::default())
    });
    assert!(matches!(res, Err(BmfError::NonFiniteInput { .. })));
    let res = no_panic("map_estimate with NaN response", || {
        map_estimate(&g, &f, &prior, &FitOptions::new().hyper(1.0))
    });
    assert!(matches!(res, Err(BmfError::NonFiniteInput { .. })));
}

fn degraded_batch(threads: usize) -> BatchReport {
    let r = 4;
    let basis = OrthonormalBasis::linear(r);
    let mut points = sample_points(12, r, 8);
    let (truth, early) = truth_and_early(r);
    let mut values_a = linear_values(&points, &truth);
    let mut inj = FaultInjector::new(18);
    // Duplicated rows apply to the shared points, so corrupt them once
    // with a fixed seed before the per-thread-count runs.
    for _ in 0..3 {
        inj.duplicate_row(&mut points, &mut values_a);
    }
    let values_b: Vec<f64> = points
        .iter()
        .map(|p| 2.0 - 0.4 * p[1] + 0.2 * p[3])
        .collect();
    let mut zero_early = early.clone();
    inj.zero_prior(&mut zero_early);
    BatchFitter::new(basis)
        .with_options(FitOptions::new().folds(4).seed(3).threads(threads))
        .job(BatchJob::new("dup", early, values_a))
        .job(BatchJob::new("zero-prior", zero_early, values_b))
        .fit(&points)
        .expect("degraded batch must still fit")
}

#[test]
fn batch_results_bit_identical_across_thread_counts_under_faults() {
    let reference = degraded_batch(1);
    for threads in [2, 4, 8] {
        let report = degraded_batch(threads);
        assert_eq!(report.fits.len(), reference.fits.len());
        for (a, b) in reference.fits.iter().zip(&report.fits) {
            assert_eq!(
                a.model
                    .coeffs()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                b.model
                    .coeffs()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "coefficients differ at {threads} threads"
            );
            assert_eq!(a.prior_kind, b.prior_kind);
            assert_eq!(a.hyper.to_bits(), b.hyper.to_bits());
            assert_eq!(a.resilience, b.resilience);
            assert_eq!(a.counters, b.counters);
        }
        assert_eq!(reference.counters, report.counters);
        assert_eq!(reference.resilience, report.resilience);
    }
}

/// A service configured like the load generator's, with a registered
/// clean point set and one healthy fitted job, for the service-front
/// fault cases below.
fn service_with_fitted_job(
    r: usize,
    k: usize,
) -> (
    bmf_core::service::FitService,
    bmf_core::service::PointSetId,
    Vec<Vec<f64>>,
) {
    use bmf_core::service::{FitRequest, FitService, ServiceConfig};
    let service = FitService::new(ServiceConfig {
        options: FitOptions::new().folds(4).seed(7),
        ..ServiceConfig::default()
    })
    .expect("service config");
    let points = sample_points(k, r, 31);
    let ps = service
        .register_points(points.clone())
        .expect("clean points");
    let (truth, early) = truth_and_early(r);
    let values = linear_values(&points, &truth);
    service
        .submit_fit(FitRequest {
            job_id: "healthy".into(),
            basis: OrthonormalBasis::linear(r),
            points: ps,
            prior: early,
            values,
        })
        .expect("clean submit");
    let report = service.drain();
    assert_eq!(report.served(), 1);
    (service, ps, points)
}

#[test]
fn service_front_screens_poisoned_payloads_at_submit() {
    use bmf_core::service::FitRequest;
    let r = 4;
    let (service, ps, points) = service_with_fitted_job(r, 12);
    let (truth, early) = truth_and_early(r);
    let mut inj = FaultInjector::new(19);

    // Poisoned response values never reach the queue.
    let mut values = linear_values(&points, &truth);
    inj.poison_nan(&mut values);
    let res = no_panic("submit_fit with NaN values", || {
        service.submit_fit(FitRequest {
            job_id: "bad-values".into(),
            basis: OrthonormalBasis::linear(r),
            points: ps,
            prior: early.clone(),
            values,
        })
    });
    assert!(matches!(res, Err(BmfError::NonFiniteInput { .. })));

    // Poisoned prior likewise.
    let mut bad_early = early.clone();
    bad_early[2] = Some(f64::INFINITY);
    let res = no_panic("submit_fit with Inf prior", || {
        service.submit_fit(FitRequest {
            job_id: "bad-prior".into(),
            basis: OrthonormalBasis::linear(r),
            points: ps,
            prior: bad_early,
            values: linear_values(&points, &truth),
        })
    });
    assert!(matches!(res, Err(BmfError::NonFiniteInput { .. })));

    // Poisoned point sets are rejected at registration.
    let mut bad_points = points.clone();
    inj.poison_point_nan(&mut bad_points);
    let res = no_panic("register_points with NaN point", || {
        service.register_points(bad_points)
    });
    assert!(matches!(res, Err(BmfError::NonFiniteInput { .. })));

    // Nothing queued, the healthy model still serves.
    assert_eq!(service.queued(), 0);
    let probe = vec![0.0; r];
    assert!(service.predict("healthy", &probe).is_ok());
}

#[test]
fn service_predict_screens_probe_points_and_misses_structurally() {
    let r = 4;
    let (service, _, _) = service_with_fitted_job(r, 12);

    let res = no_panic("predict with NaN probe", || {
        service.predict("healthy", &[f64::NAN, 0.0, 0.0, 0.0])
    });
    assert!(matches!(res, Err(BmfError::NonFiniteInput { .. })));
    let res = no_panic("predict with wrong dimension", || {
        service.predict("healthy", &[0.0; 2])
    });
    assert!(matches!(res, Err(BmfError::SampleShape { .. })));
    let res = no_panic("predict on unknown job", || {
        service.predict("never-fitted", &[0.0; 4])
    });
    assert!(matches!(res, Err(BmfError::NotFound { what: "model", .. })));
    // Screens fire before the registry: the NaN probe on an unknown job
    // is reported as non-finite, not as a miss.
    let res = no_panic("predict NaN probe on unknown job", || {
        service.predict("never-fitted", &[f64::NAN; 4])
    });
    assert!(matches!(res, Err(BmfError::NonFiniteInput { .. })));
}

#[test]
fn service_append_front_screens_faults_and_isolates_failures() {
    let r = 4;
    let (service, _, _) = service_with_fitted_job(r, 12);
    let basis = OrthonormalBasis::linear(r);
    let prior = Prior::from_coeffs(PriorKind::NonZeroMean, &[0.8, -0.5, 0.3, 0.6, 0.2]);
    service
        .register_stream("stream", basis, &prior, 1.0)
        .expect("clean stream registration");

    // Boundary screens: poisoned appends never reach the queue. The
    // screens fire before the registry lookup, like `predict`.
    let res = no_panic("append_sample with NaN point", || {
        service.append_sample("stream", &[f64::NAN, 0.0, 0.0, 0.0], 1.0)
    });
    assert!(matches!(res, Err(BmfError::NonFiniteInput { .. })));
    let res = no_panic("append_sample with Inf value", || {
        service.append_sample("stream", &[0.0; 4], f64::INFINITY)
    });
    assert!(matches!(res, Err(BmfError::NonFiniteInput { .. })));
    let res = no_panic("append_sample with wrong dimension", || {
        service.append_sample("stream", &[0.0; 2], 1.0)
    });
    assert!(matches!(res, Err(BmfError::SampleShape { .. })));
    let res = no_panic("append_sample on unknown stream", || {
        service.append_sample("no-such-stream", &[0.0; 4], 1.0)
    });
    assert!(matches!(
        res,
        Err(BmfError::NotFound { what: "stream", .. })
    ));
    let res = no_panic("append NaN point on unknown stream", || {
        service.append_sample("no-such-stream", &[f64::NAN; 4], 1.0)
    });
    assert!(matches!(res, Err(BmfError::NonFiniteInput { .. })));
    assert_eq!(
        service.queued_appends(),
        0,
        "rejected appends must not enqueue"
    );

    // A healthy append applies despite the surrounding rejections, and
    // duplicate stream registration is a structured error.
    service
        .append_sample("stream", &[0.1, -0.2, 0.3, 0.4], 0.9)
        .expect("clean append");
    let report = service.drain();
    assert_eq!(report.appended(), 1);
    assert!(report.appends[0].result.is_ok());
    assert_eq!(service.stream_samples("stream").unwrap(), 1);
    let res = no_panic("duplicate register_stream", || {
        service.register_stream("stream", OrthonormalBasis::linear(r), &prior, 1.0)
    });
    assert!(matches!(
        res,
        Err(BmfError::Config {
            parameter: "stream",
            ..
        })
    ));
    let c = service.counters();
    assert_eq!(c.appends_ok, 1);
    assert_eq!(c.appends_failed, 0);
    // The NaN probe on the unknown stream was screened before the
    // lookup, so only the clean unknown-stream append counts as a miss.
    assert_eq!(c.append_misses, 1);
}

#[test]
fn service_drain_degrades_structurally_on_adversarial_batches() {
    use bmf_core::service::{FitRequest, FitService, ServiceConfig};
    // Duplicated rows (rank-deficient but solvable) coalesced with an
    // under-determined zero-prior request: the drain must never panic,
    // the solvable request fits (possibly degraded, with its resilience
    // report attached), the impossible one fails alone.
    let r = 20;
    let service = FitService::new(ServiceConfig {
        options: FitOptions::new().folds(4).seed(7),
        ..ServiceConfig::default()
    })
    .expect("service config");
    let mut points = sample_points(12, r, 32);
    let (truth, early) = truth_and_early(r);
    let mut values = linear_values(&points, &truth);
    let mut inj = FaultInjector::new(20);
    for _ in 0..3 {
        inj.duplicate_row(&mut points, &mut values);
    }
    let ps = service
        .register_points(points)
        .expect("degenerate rows are finite");
    service
        .submit_fit(FitRequest {
            job_id: "dup-rows".into(),
            basis: OrthonormalBasis::linear(r),
            points: ps,
            prior: early.clone(),
            values: values.clone(),
        })
        .expect("finite payload");
    let mut zero_early = early;
    inj.zero_prior(&mut zero_early);
    service
        .submit_fit(FitRequest {
            job_id: "no-prior".into(),
            basis: OrthonormalBasis::linear(r),
            points: ps,
            prior: zero_early,
            values,
        })
        .expect("finite payload");

    let report = match catch_unwind(AssertUnwindSafe(|| service.drain())) {
        Ok(r) => r,
        Err(_) => panic!("drain panicked on adversarial batch"),
    };
    assert_eq!(report.outcomes.len(), 2);
    let dup = &report.outcomes[0];
    assert_eq!(dup.job_id, "dup-rows");
    let served = dup.result.as_ref().expect("prior-backed fit survives");
    assert!(served.fit.model.coeffs().iter().all(|c| c.is_finite()));
    assert!(served.fit.resilience.rcond.is_finite());
    let doomed = &report.outcomes[1];
    assert!(
        matches!(doomed.result, Err(BmfError::NotEnoughSamples { .. })),
        "expected structured failure, got {:?}",
        doomed.result.as_ref().map(|s| s.fit.summary())
    );
    let c = service.counters();
    assert_eq!(c.fits_ok + c.fits_failed, 2);
    assert!(service.snapshot("dup-rows").is_some());
    assert!(service.snapshot("no-prior").is_none());
}

#[test]
fn clean_inputs_report_rung_zero_and_no_ridge() {
    // The flip side of the contract: on well-posed inputs the ladder
    // must never engage, so results stay bit-identical to a build
    // without it.
    let r = 6;
    let basis = OrthonormalBasis::linear(r);
    let (truth, early) = truth_and_early(r);
    let points = sample_points(14, r, 9);
    let values = linear_values(&points, &truth);
    let fit = BmfFitter::new(basis, early)
        .unwrap()
        .with_options(FitOptions::new().folds(4))
        .fit(&points, &values)
        .unwrap();
    assert_eq!(fit.resilience.rung, 0);
    assert_eq!(fit.resilience.ridge, 0.0);
    assert_eq!(fit.resilience.degraded_solves, 0);
    assert_eq!(fit.resilience.max_rung, 0);
    assert_eq!(fit.counters.ladder_escalations, 0);
    assert_eq!(fit.counters.lu_fallbacks, 0);
    assert!(fit.resilience.rcond > 0.0);
}
