//! Bitwise-equality property tests: every `_into` / in-place / view
//! kernel must produce *identical bits* to its owned counterpart.
//!
//! The zero-copy refactor (DESIGN.md §9) is only safe because the view
//! kernels replicate the owned kernels' exact loop order, skip
//! conditions, and accumulation order; these tests pin that contract
//! with `f64::to_bits` comparisons under random shapes, random strides,
//! and non-contiguous row-subset views. Scratch buffers are deliberately
//! reused across cases so any stale-state leak shows up as a bit
//! mismatch.

use bmf_linalg::woodbury::{
    solve_diag_plus_gram_semidefinite, solve_diag_plus_gram_semidefinite_into, WoodburyScratch,
};
use bmf_linalg::{
    cholesky_in_place, lu_factor_in_place, lu_solve_into, solve_lower, solve_lower_in_place,
    solve_lower_transpose, solve_lower_transpose_in_place, solve_upper, solve_upper_in_place, view,
    Cholesky, Lu, MatRef, Matrix, VecRef, Vector,
};
use bmf_stat::prop::{check, DEFAULT_CASES};
use bmf_stat::rng::Rng;

fn elem(rng: &mut Rng) -> f64 {
    (rng.gen_range(-10.0..10.0) * 100.0).round() / 100.0
}

fn matrix(rng: &mut Rng, rows: usize, cols: usize) -> Matrix {
    let data: Vec<f64> = (0..rows * cols).map(|_| elem(rng)).collect();
    Matrix::from_row_major(rows, cols, data).expect("sized")
}

fn vec_random(rng: &mut Rng, n: usize) -> Vec<f64> {
    (0..n).map(|_| elem(rng)).collect()
}

/// A random row-index table (duplicates allowed — a view permits them).
fn subset(rng: &mut Rng, parent_rows: usize, len: usize) -> Vec<usize> {
    (0..len).map(|_| rng.gen_index(parent_rows)).collect()
}

/// The owned counterpart of a row-subset view: an explicit copy.
fn gather_rows(m: &Matrix, rows: &[usize]) -> Matrix {
    Matrix::from_fn(rows.len(), m.ncols(), |i, j| m[(rows[i], j)])
}

#[track_caller]
fn assert_bits_eq(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "bit mismatch at {i}: {x:?} vs {y:?}"
        );
    }
}

#[test]
fn matvec_into_bitwise_equals_owned_on_row_subsets() {
    check(
        "matvec_into_bitwise_equals_owned_on_row_subsets",
        DEFAULT_CASES,
        |rng| {
            let rows = 1 + rng.gen_index(6);
            let cols = 1 + rng.gen_index(6);
            let m = matrix(rng, rows, cols);
            let sub_len = 1 + rng.gen_index(6);
            let idx = subset(rng, rows, sub_len);
            let copied = gather_rows(&m, &idx);
            let x = vec_random(rng, cols);

            let owned = copied.matvec(&Vector::from(x.clone())).unwrap();
            // Stale garbage in the output buffer must be fully overwritten.
            let mut out = vec![f64::NAN; idx.len()];
            view::matvec_into(m.rows_view(&idx), &x, &mut out).unwrap();
            assert_bits_eq(&out, owned.as_slice());
        },
    );
}

#[test]
fn matvec_transpose_into_bitwise_equals_owned_on_row_subsets() {
    check(
        "matvec_transpose_into_bitwise_equals_owned_on_row_subsets",
        DEFAULT_CASES,
        |rng| {
            let rows = 1 + rng.gen_index(6);
            let cols = 1 + rng.gen_index(6);
            let m = matrix(rng, rows, cols);
            let sub_len = 1 + rng.gen_index(6);
            let idx = subset(rng, rows, sub_len);
            let copied = gather_rows(&m, &idx);
            let mut x = vec_random(rng, idx.len());
            // Exercise the skip-zero shortcut on both paths.
            if !x.is_empty() {
                let z = rng.gen_index(x.len());
                x[z] = 0.0;
            }

            let owned = copied.matvec_transpose(&Vector::from(x.clone())).unwrap();
            let mut out = vec![f64::NAN; cols];
            view::matvec_transpose_into(m.rows_view(&idx), &x, &mut out).unwrap();
            assert_bits_eq(&out, owned.as_slice());
        },
    );
}

#[test]
fn matmul_into_bitwise_equals_owned() {
    check("matmul_into_bitwise_equals_owned", DEFAULT_CASES, |rng| {
        let (m, k, n) = (
            1 + rng.gen_index(5),
            1 + rng.gen_index(5),
            1 + rng.gen_index(5),
        );
        let a = matrix(rng, m, k);
        let b = matrix(rng, k, n);
        let owned = a.matmul(&b).unwrap();
        let mut out = Matrix::from_fn(m, n, |_, _| f64::NAN);
        view::matmul_into(a.as_view(), b.as_view(), out.as_view_mut()).unwrap();
        assert_bits_eq(out.as_slice(), owned.as_slice());
    });
}

#[test]
fn gram_into_bitwise_equals_owned_on_row_subsets() {
    check(
        "gram_into_bitwise_equals_owned_on_row_subsets",
        DEFAULT_CASES,
        |rng| {
            let rows = 1 + rng.gen_index(6);
            let cols = 1 + rng.gen_index(5);
            let m = matrix(rng, rows, cols);
            let sub_len = 1 + rng.gen_index(6);
            let idx = subset(rng, rows, sub_len);
            let owned = gather_rows(&m, &idx).gram();
            let mut out = Matrix::from_fn(cols, cols, |_, _| f64::NAN);
            view::gram_into(m.rows_view(&idx), out.as_view_mut()).unwrap();
            assert_bits_eq(out.as_slice(), owned.as_slice());
        },
    );
}

#[test]
fn outer_gram_diag_into_bitwise_equals_owned_on_row_subsets() {
    check(
        "outer_gram_diag_into_bitwise_equals_owned_on_row_subsets",
        DEFAULT_CASES,
        |rng| {
            let rows = 1 + rng.gen_index(6);
            let cols = 1 + rng.gen_index(5);
            let m = matrix(rng, rows, cols);
            let sub_len = 1 + rng.gen_index(6);
            let idx = subset(rng, rows, sub_len);
            let diag: Vec<f64> = (0..cols).map(|_| rng.gen_range(0.1..5.0)).collect();
            let owned = gather_rows(&m, &idx).outer_gram_diag(&diag).unwrap();
            let k = idx.len();
            let mut out = Matrix::from_fn(k, k, |_, _| f64::NAN);
            view::outer_gram_diag_into(m.rows_view(&idx), &diag, out.as_view_mut()).unwrap();
            assert_bits_eq(out.as_slice(), owned.as_slice());
        },
    );
}

#[test]
fn strided_views_bitwise_equal_dense_copies() {
    check(
        "strided_views_bitwise_equal_dense_copies",
        DEFAULT_CASES,
        |rng| {
            // Embed an r × c matrix as the leading columns of a wider
            // r × stride buffer, then view it with that row stride.
            let rows = 1 + rng.gen_index(5);
            let cols = 1 + rng.gen_index(4);
            let stride = cols + rng.gen_index(4);
            let backing = vec_random(rng, rows * stride);
            let v = MatRef::strided(&backing, rows, cols, stride).unwrap();
            let dense = v.to_matrix();

            let x = vec_random(rng, cols);
            let owned = dense.matvec(&Vector::from(x.clone())).unwrap();
            let mut out = vec![f64::NAN; rows];
            view::matvec_into(v, &x, &mut out).unwrap();
            assert_bits_eq(&out, owned.as_slice());

            let mut g = Matrix::from_fn(cols, cols, |_, _| f64::NAN);
            view::gram_into(v, g.as_view_mut()).unwrap();
            assert_bits_eq(g.as_slice(), dense.gram().as_slice());
        },
    );
}

#[test]
fn cholesky_in_place_bitwise_equals_owned_factor() {
    check(
        "cholesky_in_place_bitwise_equals_owned_factor",
        DEFAULT_CASES,
        |rng| {
            let n = 1 + rng.gen_index(5);
            let b = matrix(rng, n + 1, n);
            let mut a = b.gram();
            a.add_diagonal_mut(&vec![1.0; n]).unwrap();

            let owned = Cholesky::new(&a).unwrap();
            let mut in_place = a.clone();
            cholesky_in_place(&mut in_place).unwrap();
            assert_bits_eq(in_place.as_slice(), owned.factor().as_slice());

            // The wrapped factor solves identically to the owned path.
            let rhs = vec_random(rng, n);
            let x_owned = owned.solve(&Vector::from(rhs.clone())).unwrap();
            let wrapped = Cholesky::from_factor(in_place);
            let mut x = rhs;
            wrapped.solve_in_place(&mut x).unwrap();
            assert_bits_eq(&x, x_owned.as_slice());
        },
    );
}

#[test]
fn triangular_in_place_bitwise_equals_owned() {
    check(
        "triangular_in_place_bitwise_equals_owned",
        DEFAULT_CASES,
        |rng| {
            let n = 1 + rng.gen_index(5);
            // Dominant diagonal keeps the pivots safely above the tolerance.
            let mut l = matrix(rng, n, n);
            for i in 0..n {
                l[(i, i)] = 2.0 + l[(i, i)].abs();
            }
            let b = Vector::from(vec_random(rng, n));

            let owned = solve_lower(&l, &b).unwrap();
            let mut x = b.as_slice().to_vec();
            solve_lower_in_place(&l, &mut x).unwrap();
            assert_bits_eq(&x, owned.as_slice());

            let owned = solve_upper(&l, &b).unwrap();
            let mut x = b.as_slice().to_vec();
            solve_upper_in_place(&l, &mut x).unwrap();
            assert_bits_eq(&x, owned.as_slice());

            let owned = solve_lower_transpose(&l, &b).unwrap();
            let mut x = b.as_slice().to_vec();
            solve_lower_transpose_in_place(&l, &mut x).unwrap();
            assert_bits_eq(&x, owned.as_slice());
        },
    );
}

#[test]
fn lu_in_place_bitwise_equals_owned_solve() {
    check(
        "lu_in_place_bitwise_equals_owned_solve",
        DEFAULT_CASES,
        |rng| {
            let n = 1 + rng.gen_index(5);
            let mut a = matrix(rng, n, n);
            for i in 0..n {
                a[(i, i)] += if a[(i, i)] >= 0.0 { 3.0 } else { -3.0 };
            }
            let b = vec_random(rng, n);

            let owned = Lu::new(&a).unwrap();
            let x_owned = owned.solve(&Vector::from(b.clone())).unwrap();

            let mut packed = a.clone();
            let mut perm = Vec::new();
            lu_factor_in_place(&mut packed, &mut perm).unwrap();
            let mut x = vec![f64::NAN; n];
            lu_solve_into(&packed, &perm, &b, &mut x).unwrap();
            assert_bits_eq(&x, x_owned.as_slice());
        },
    );
}

#[test]
fn woodbury_into_bitwise_equals_owned_with_reused_scratch() {
    // ONE scratch across every case: stale state from a previous shape
    // must never change a result.
    let mut scratch = WoodburyScratch::new();
    let mut out = Vec::new();
    check(
        "woodbury_into_bitwise_equals_owned_with_reused_scratch",
        DEFAULT_CASES,
        |rng| {
            let k = 2 + rng.gen_index(4);
            let m = k + 1 + rng.gen_index(8);
            let g = matrix(rng, k, m);
            let mut d: Vec<f64> = (0..m).map(|_| rng.gen_range(0.1..5.0)).collect();
            // Sometimes a semidefinite system (zero precisions), sometimes
            // strictly positive — both paths share the scratch.
            for _ in 0..rng.gen_index(3) {
                let z = rng.gen_index(m);
                d[z] = 0.0;
            }
            let rhs = vec_random(rng, m);

            let owned = solve_diag_plus_gram_semidefinite(&d, 1.0, &g, &Vector::from(rhs.clone()));
            out.clear();
            out.resize(m, f64::NAN);
            let viewed = solve_diag_plus_gram_semidefinite_into(
                &d,
                1.0,
                g.as_view(),
                &rhs,
                &mut scratch,
                &mut out,
            );
            match (owned, viewed) {
                (Ok(a), Ok(_res)) => assert_bits_eq(&out, a.as_slice()),
                (Err(_), Err(_)) => {}
                (a, b) => panic!("owned {a:?} vs into {b:?} disagree on fallibility"),
            }
        },
    );
}

#[test]
fn woodbury_into_on_row_subset_equals_owned_on_copy() {
    let mut scratch = WoodburyScratch::new();
    check(
        "woodbury_into_on_row_subset_equals_owned_on_copy",
        DEFAULT_CASES,
        |rng| {
            let rows = 3 + rng.gen_index(4);
            let m = 8 + rng.gen_index(6);
            let g = matrix(rng, rows, m);
            let sub_len = 2 + rng.gen_index(3);
            let idx = subset(rng, rows, sub_len);
            let copied = gather_rows(&g, &idx);
            let d: Vec<f64> = (0..m).map(|_| rng.gen_range(0.1..5.0)).collect();
            let rhs = vec_random(rng, m);

            let owned =
                solve_diag_plus_gram_semidefinite(&d, 1.0, &copied, &Vector::from(rhs.clone()))
                    .unwrap();
            let mut out = vec![f64::NAN; m];
            solve_diag_plus_gram_semidefinite_into(
                &d,
                1.0,
                g.rows_view(&idx),
                &rhs,
                &mut scratch,
                &mut out,
            )
            .unwrap();
            assert_bits_eq(&out, owned.as_slice());
        },
    );
}

#[test]
fn vec_views_bitwise_equal_vector_reductions() {
    check(
        "vec_views_bitwise_equal_vector_reductions",
        DEFAULT_CASES,
        |rng| {
            let n = 1 + rng.gen_index(8);
            let stride = 1 + rng.gen_index(3);
            let backing = vec_random(rng, n * stride);
            let v = VecRef::strided(&backing, n, stride).unwrap();
            let dense = Vector::from(v.to_vec());
            let other = Vector::from(vec_random(rng, n));

            assert_eq!(
                v.norm2().to_bits(),
                dense.norm2().to_bits(),
                "norm2 differs"
            );
            assert_eq!(
                v.dot(VecRef::from_slice(other.as_slice()))
                    .unwrap()
                    .to_bits(),
                dense.dot(&other).unwrap().to_bits(),
                "dot differs"
            );
        },
    );
}
