//! Property-based tests for the dense linear-algebra kernels.
//!
//! Strategy: generate random well-conditioned inputs, then check algebraic
//! identities (factor-reconstruct, solve-then-multiply, fast-vs-direct
//! equivalence) within tolerances scaled to the operand magnitudes.

use bmf_linalg::{woodbury, Matrix, Vector};
use proptest::prelude::*;

/// Bounded element strategy keeping matrices well scaled.
fn elem() -> impl Strategy<Value = f64> {
    (-10.0f64..10.0).prop_map(|x| (x * 100.0).round() / 100.0)
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(elem(), rows * cols)
        .prop_map(move |data| Matrix::from_row_major(rows, cols, data).expect("sized"))
}

fn vector(n: usize) -> impl Strategy<Value = Vector> {
    proptest::collection::vec(elem(), n).prop_map(Vector::from)
}

/// An SPD matrix built as BᵀB + δI.
fn spd(n: usize) -> impl Strategy<Value = Matrix> {
    matrix(n + 1, n).prop_map(move |b| {
        let mut a = b.gram();
        a.add_diagonal_mut(&vec![1.0; n]).expect("square");
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(m in matrix(4, 6)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_associates_with_matvec(
        a in matrix(3, 4),
        b in matrix(4, 5),
        x in vector(5),
    ) {
        // (A B) x == A (B x)
        let lhs = a.matmul(&b).unwrap().matvec(&x).unwrap();
        let rhs = a.matvec(&b.matvec(&x).unwrap()).unwrap();
        let scale = lhs.norm2().max(1.0);
        prop_assert!(lhs.sub(&rhs).unwrap().norm2() <= 1e-10 * scale);
    }

    #[test]
    fn gram_matches_explicit_product(m in matrix(5, 3)) {
        let fast = m.gram();
        let explicit = m.transpose().matmul(&m).unwrap();
        prop_assert!(fast.sub(&explicit).unwrap().norm_frobenius() <= 1e-10);
        prop_assert!(fast.is_symmetric(1e-12));
    }

    #[test]
    fn matvec_transpose_matches_explicit(m in matrix(4, 7), x in vector(4)) {
        let fast = m.matvec_transpose(&x).unwrap();
        let explicit = m.transpose().matvec(&x).unwrap();
        prop_assert!(fast.sub(&explicit).unwrap().norm2() <= 1e-10);
    }

    #[test]
    fn cholesky_reconstructs(a in spd(4)) {
        let chol = a.cholesky().unwrap();
        let l = chol.factor();
        let rec = l.matmul(&l.transpose()).unwrap();
        let scale = a.norm_frobenius().max(1.0);
        prop_assert!(rec.sub(&a).unwrap().norm_frobenius() <= 1e-9 * scale);
    }

    #[test]
    fn cholesky_solve_satisfies_system(a in spd(4), b in vector(4)) {
        let x = a.cholesky().unwrap().solve(&b).unwrap();
        let r = a.matvec(&x).unwrap().sub(&b).unwrap();
        prop_assert!(r.norm2() <= 1e-8 * b.norm2().max(1.0));
    }

    #[test]
    fn lu_solve_satisfies_system(a in spd(4), b in vector(4)) {
        // SPD inputs are trivially nonsingular for LU too.
        let x = a.lu().unwrap().solve(&b).unwrap();
        let r = a.matvec(&x).unwrap().sub(&b).unwrap();
        prop_assert!(r.norm2() <= 1e-8 * b.norm2().max(1.0));
    }

    #[test]
    fn lu_det_matches_cholesky_logdet(a in spd(3)) {
        let det = a.lu().unwrap().det();
        let logdet = a.cholesky().unwrap().log_det();
        prop_assert!(det > 0.0);
        prop_assert!((det.ln() - logdet).abs() <= 1e-8 * logdet.abs().max(1.0));
    }

    #[test]
    fn qr_least_squares_residual_is_orthogonal(g in matrix(8, 3), y in vector(8)) {
        // The LS residual must be orthogonal to the column space of G
        // whenever G has full column rank (guard via R diagonal).
        let qr = g.qr().unwrap();
        let r = qr.r();
        let full_rank = (0..3).all(|i| r[(i, i)].abs() > 1e-6);
        prop_assume!(full_rank);
        let x = qr.solve_least_squares(&y).unwrap();
        let resid = g.matvec(&x).unwrap().sub(&y).unwrap();
        let gt_r = g.matvec_transpose(&resid).unwrap();
        prop_assert!(gt_r.norm_inf() <= 1e-7 * y.norm2().max(1.0));
    }

    #[test]
    fn woodbury_matches_direct(
        g in matrix(3, 10),
        d in proptest::collection::vec(0.1f64..5.0, 10),
        rhs in vector(10),
        c in 0.1f64..10.0,
    ) {
        let fast = woodbury::solve_diag_plus_gram(&d, c, &g, &rhs).unwrap();
        let mut h = g.gram().scaled(c);
        h.add_diagonal_mut(&d).unwrap();
        let direct = h.cholesky().unwrap().solve(&rhs).unwrap();
        let scale = direct.norm2().max(1.0);
        prop_assert!(fast.sub(&direct).unwrap().norm2() <= 1e-7 * scale);
    }

    #[test]
    fn woodbury_semidefinite_matches_direct(
        g in matrix(5, 9),
        d in proptest::collection::vec(0.1f64..5.0, 9),
        rhs in vector(9),
        zero_at in 0usize..9,
    ) {
        let mut d = d;
        d[zero_at] = 0.0;
        let fast = match woodbury::solve_diag_plus_gram_semidefinite(&d, 1.0, &g, &rhs) {
            Ok(v) => v,
            // Random G may make the system singular; that is a valid outcome.
            Err(_) => return Ok(()),
        };
        let mut h = g.gram();
        h.add_diagonal_mut(&d).unwrap();
        let direct = match h.lu() {
            Ok(lu) => lu.solve(&rhs).unwrap(),
            Err(_) => return Ok(()),
        };
        let scale = direct.norm2().max(1.0);
        prop_assert!(fast.sub(&direct).unwrap().norm2() <= 1e-6 * scale);
    }

    #[test]
    fn select_columns_preserves_entries(m in matrix(3, 6)) {
        let idx = [5usize, 0, 3];
        let s = m.select_columns(&idx);
        for i in 0..3 {
            for (jj, &j) in idx.iter().enumerate() {
                prop_assert_eq!(s[(i, jj)], m[(i, j)]);
            }
        }
    }

    #[test]
    fn vector_dot_cauchy_schwarz(a in vector(6), b in vector(6)) {
        let lhs = a.dot(&b).unwrap().abs();
        let rhs = a.norm2() * b.norm2();
        prop_assert!(lhs <= rhs + 1e-9);
    }

    #[test]
    fn triangle_inequality(a in vector(6), b in vector(6)) {
        let sum = a.add(&b).unwrap();
        prop_assert!(sum.norm2() <= a.norm2() + b.norm2() + 1e-9);
    }
}
