//! Property-based tests for the dense linear-algebra kernels.
//!
//! Strategy: generate random well-conditioned inputs with the in-tree
//! harness (`bmf_stat::prop`), then check algebraic identities
//! (factor-reconstruct, solve-then-multiply, fast-vs-direct equivalence)
//! within tolerances scaled to the operand magnitudes. On failure the
//! harness prints the case seed; replay it with `BMF_PROP_CASE_SEED`.

use bmf_linalg::{woodbury, Matrix, Vector};
use bmf_stat::prop::{check, DEFAULT_CASES};
use bmf_stat::rng::Rng;

/// Bounded element generator keeping matrices well scaled.
fn elem(rng: &mut Rng) -> f64 {
    (rng.gen_range(-10.0..10.0) * 100.0).round() / 100.0
}

fn matrix(rng: &mut Rng, rows: usize, cols: usize) -> Matrix {
    let data: Vec<f64> = (0..rows * cols).map(|_| elem(rng)).collect();
    Matrix::from_row_major(rows, cols, data).expect("sized")
}

fn vector(rng: &mut Rng, n: usize) -> Vector {
    Vector::from((0..n).map(|_| elem(rng)).collect::<Vec<f64>>())
}

/// An SPD matrix built as BᵀB + I.
fn spd(rng: &mut Rng, n: usize) -> Matrix {
    let b = matrix(rng, n + 1, n);
    let mut a = b.gram();
    a.add_diagonal_mut(&vec![1.0; n]).expect("square");
    a
}

#[test]
fn transpose_is_involution() {
    check("transpose_is_involution", DEFAULT_CASES, |rng| {
        let m = matrix(rng, 4, 6);
        assert_eq!(m.transpose().transpose(), m);
    });
}

#[test]
fn matmul_associates_with_matvec() {
    check("matmul_associates_with_matvec", DEFAULT_CASES, |rng| {
        let a = matrix(rng, 3, 4);
        let b = matrix(rng, 4, 5);
        let x = vector(rng, 5);
        // (A B) x == A (B x)
        let lhs = a.matmul(&b).unwrap().matvec(&x).unwrap();
        let rhs = a.matvec(&b.matvec(&x).unwrap()).unwrap();
        let scale = lhs.norm2().max(1.0);
        assert!(lhs.sub(&rhs).unwrap().norm2() <= 1e-10 * scale);
    });
}

#[test]
fn gram_matches_explicit_product() {
    check("gram_matches_explicit_product", DEFAULT_CASES, |rng| {
        let m = matrix(rng, 5, 3);
        let fast = m.gram();
        let explicit = m.transpose().matmul(&m).unwrap();
        assert!(fast.sub(&explicit).unwrap().norm_frobenius() <= 1e-10);
        assert!(fast.is_symmetric(1e-12));
    });
}

#[test]
fn matvec_transpose_matches_explicit() {
    check("matvec_transpose_matches_explicit", DEFAULT_CASES, |rng| {
        let m = matrix(rng, 4, 7);
        let x = vector(rng, 4);
        let fast = m.matvec_transpose(&x).unwrap();
        let explicit = m.transpose().matvec(&x).unwrap();
        assert!(fast.sub(&explicit).unwrap().norm2() <= 1e-10);
    });
}

#[test]
fn cholesky_reconstructs() {
    check("cholesky_reconstructs", DEFAULT_CASES, |rng| {
        let a = spd(rng, 4);
        let chol = a.cholesky().unwrap();
        let l = chol.factor();
        let rec = l.matmul(&l.transpose()).unwrap();
        let scale = a.norm_frobenius().max(1.0);
        assert!(rec.sub(&a).unwrap().norm_frobenius() <= 1e-9 * scale);
    });
}

#[test]
fn cholesky_solve_satisfies_system() {
    check("cholesky_solve_satisfies_system", DEFAULT_CASES, |rng| {
        let a = spd(rng, 4);
        let b = vector(rng, 4);
        let x = a.cholesky().unwrap().solve(&b).unwrap();
        let r = a.matvec(&x).unwrap().sub(&b).unwrap();
        assert!(r.norm2() <= 1e-8 * b.norm2().max(1.0));
    });
}

#[test]
fn lu_solve_satisfies_system() {
    check("lu_solve_satisfies_system", DEFAULT_CASES, |rng| {
        // SPD inputs are trivially nonsingular for LU too.
        let a = spd(rng, 4);
        let b = vector(rng, 4);
        let x = a.lu().unwrap().solve(&b).unwrap();
        let r = a.matvec(&x).unwrap().sub(&b).unwrap();
        assert!(r.norm2() <= 1e-8 * b.norm2().max(1.0));
    });
}

#[test]
fn lu_det_matches_cholesky_logdet() {
    check("lu_det_matches_cholesky_logdet", DEFAULT_CASES, |rng| {
        let a = spd(rng, 3);
        let det = a.lu().unwrap().det();
        let logdet = a.cholesky().unwrap().log_det();
        assert!(det > 0.0);
        assert!((det.ln() - logdet).abs() <= 1e-8 * logdet.abs().max(1.0));
    });
}

#[test]
fn qr_least_squares_residual_is_orthogonal() {
    check(
        "qr_least_squares_residual_is_orthogonal",
        DEFAULT_CASES,
        |rng| {
            // The LS residual must be orthogonal to the column space of G
            // whenever G has full column rank (guard via R diagonal).
            let g = matrix(rng, 8, 3);
            let y = vector(rng, 8);
            let qr = g.qr().unwrap();
            let r = qr.r();
            let full_rank = (0..3).all(|i| r[(i, i)].abs() > 1e-6);
            if !full_rank {
                return; // skip the (rare) rank-deficient draw
            }
            let x = qr.solve_least_squares(&y).unwrap();
            let resid = g.matvec(&x).unwrap().sub(&y).unwrap();
            let gt_r = g.matvec_transpose(&resid).unwrap();
            assert!(gt_r.norm_inf() <= 1e-7 * y.norm2().max(1.0));
        },
    );
}

#[test]
fn woodbury_matches_direct() {
    check("woodbury_matches_direct", DEFAULT_CASES, |rng| {
        let g = matrix(rng, 3, 10);
        let d: Vec<f64> = (0..10).map(|_| rng.gen_range(0.1..5.0)).collect();
        let rhs = vector(rng, 10);
        let c = rng.gen_range(0.1..10.0);
        let fast = woodbury::solve_diag_plus_gram(&d, c, &g, &rhs).unwrap();
        let mut h = g.gram().scaled(c);
        h.add_diagonal_mut(&d).unwrap();
        let direct = h.cholesky().unwrap().solve(&rhs).unwrap();
        let scale = direct.norm2().max(1.0);
        assert!(fast.sub(&direct).unwrap().norm2() <= 1e-7 * scale);
    });
}

#[test]
fn woodbury_semidefinite_matches_direct() {
    check(
        "woodbury_semidefinite_matches_direct",
        DEFAULT_CASES,
        |rng| {
            let g = matrix(rng, 5, 9);
            let mut d: Vec<f64> = (0..9).map(|_| rng.gen_range(0.1..5.0)).collect();
            let rhs = vector(rng, 9);
            let zero_at = rng.gen_index(9);
            d[zero_at] = 0.0;
            let fast = match woodbury::solve_diag_plus_gram_semidefinite(&d, 1.0, &g, &rhs) {
                Ok(v) => v,
                // Random G may make the system singular; that is a valid outcome.
                Err(_) => return,
            };
            let mut h = g.gram();
            h.add_diagonal_mut(&d).unwrap();
            let direct = match h.lu() {
                Ok(lu) => lu.solve(&rhs).unwrap(),
                Err(_) => return,
            };
            let scale = direct.norm2().max(1.0);
            assert!(fast.sub(&direct).unwrap().norm2() <= 1e-6 * scale);
        },
    );
}

#[test]
fn select_columns_preserves_entries() {
    check("select_columns_preserves_entries", DEFAULT_CASES, |rng| {
        let m = matrix(rng, 3, 6);
        let idx = [5usize, 0, 3];
        let s = m.select_columns(&idx);
        for i in 0..3 {
            for (jj, &j) in idx.iter().enumerate() {
                assert_eq!(s[(i, jj)], m[(i, j)]);
            }
        }
    });
}

#[test]
fn vector_dot_cauchy_schwarz() {
    check("vector_dot_cauchy_schwarz", DEFAULT_CASES, |rng| {
        let a = vector(rng, 6);
        let b = vector(rng, 6);
        let lhs = a.dot(&b).unwrap().abs();
        let rhs = a.norm2() * b.norm2();
        assert!(lhs <= rhs + 1e-9);
    });
}

#[test]
fn triangle_inequality() {
    check("triangle_inequality", DEFAULT_CASES, |rng| {
        let a = vector(rng, 6);
        let b = vector(rng, 6);
        let sum = a.add(&b).unwrap();
        assert!(sum.norm2() <= a.norm2() + b.norm2() + 1e-9);
    });
}
