//! Property tests for the solver degradation ladder
//! (`bmf_linalg::resilience`), on the in-tree harness (`bmf_stat::prop`).
//!
//! Pinned properties:
//!
//! * a random SPD system perturbed to exact rank deficiency is rescued
//!   within **one** jitter rung, and the rescued solution of a
//!   consistent system keeps a pinned relative residual;
//! * the rung choice (and the solution bits) are a pure function of the
//!   input — re-running the ladder on the same matrix reproduces them
//!   exactly, which is what makes seeded fault-injection reproducible;
//! * well-conditioned inputs never engage the ladder: rung 0, zero
//!   ridge, and a solution bit-identical across repeated runs.

use bmf_linalg::{
    factor_lu_ladder, factor_spd_ladder, ladder_solve_in_place, LadderPolicy, LadderScratch,
    Matrix, Vector,
};
use bmf_stat::prop::{check, DEFAULT_CASES};
use bmf_stat::rng::Rng;

fn elem(rng: &mut Rng) -> f64 {
    (rng.gen_range(-10.0..10.0) * 100.0).round() / 100.0
}

fn matrix(rng: &mut Rng, rows: usize, cols: usize) -> Matrix {
    let data: Vec<f64> = (0..rows * cols).map(|_| elem(rng)).collect();
    Matrix::from_row_major(rows, cols, data).expect("sized")
}

fn vector(rng: &mut Rng, n: usize) -> Vec<f64> {
    (0..n).map(|_| elem(rng)).collect()
}

/// A well-conditioned SPD matrix: BᵀB + I.
fn spd(rng: &mut Rng, n: usize) -> Matrix {
    let b = matrix(rng, n + 1, n);
    let mut a = b.gram();
    a.add_diagonal_mut(&vec![1.0; n]).expect("square");
    a
}

/// A well-conditioned SPD matrix collapsed along one random direction:
/// an (n−1)×(n−1) SPD block embedded with an exact zero row/column at
/// index `k`. The zero mode makes the Cholesky pivot at `k` exactly
/// zero (rung 0 fails deterministically rather than accepting a
/// rounding-noise pivot), while the nonzero spectrum stays that of the
/// well-conditioned block, so the jittered solve keeps a tight residual.
fn singular_psd(rng: &mut Rng, n: usize) -> Matrix {
    let block = spd(rng, n - 1);
    let k = rng.gen_index(n);
    Matrix::from_fn(n, n, |i, j| {
        if i == k || j == k {
            0.0
        } else {
            let bi = i - usize::from(i > k);
            let bj = j - usize::from(j > k);
            block[(bi, bj)]
        }
    })
}

/// Runs factor + solve through the ladder, returning the resilience
/// record and the solution.
fn ladder_solve(a: &Matrix, b: &[f64]) -> (bmf_linalg::Resilience, Vec<f64>) {
    let mut f = a.clone();
    let mut perm = Vec::new();
    let mut scratch = LadderScratch::new();
    let policy = LadderPolicy::default();
    let (kind, res) = factor_spd_ladder(&mut f, &mut perm, &mut scratch, &policy)
        .expect("ladder must factor PSD inputs");
    let mut x = b.to_vec();
    ladder_solve_in_place(kind, &f, &perm, &mut scratch, &mut x).expect("solve");
    (res, x)
}

fn rel_residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
    let ax = a.matvec(&Vector::from(x.to_vec())).expect("shape");
    let num: f64 = ax
        .iter()
        .zip(b)
        .map(|(p, q)| (p - q) * (p - q))
        .sum::<f64>()
        .sqrt();
    let den = b.iter().map(|q| q * q).sum::<f64>().sqrt().max(1e-300);
    num / den
}

#[test]
fn rank_deficient_spd_rescued_within_one_jitter_rung() {
    check(
        "rank_deficient_spd_rescued_within_one_jitter_rung",
        DEFAULT_CASES,
        |rng| {
            let n = 3 + (rng.next_u64() % 5) as usize; // 3..=7
            let a = singular_psd(rng, n);
            // Consistent right-hand side: b = A·x_true is in range(A).
            let x_true = vector(rng, n);
            let b = a.matvec(&Vector::from(x_true)).expect("shape");
            let (res, x) = ladder_solve(&a, b.as_slice());
            assert_eq!(
                res.rung, 1,
                "an exact zero mode must fail rung 0 and be rescued by the first jitter rung"
            );
            assert!(res.ridge > 0.0, "degraded solve must report its ridge");
            assert!(res.is_degraded());
            let rr = rel_residual(&a, &x, b.as_slice());
            assert!(rr < 1e-6, "relative residual {rr} above pinned bound");
        },
    );
}

#[test]
fn rung_choice_and_solution_deterministic() {
    check(
        "rung_choice_and_solution_deterministic",
        DEFAULT_CASES,
        |rng| {
            let n = 2 + (rng.next_u64() % 5) as usize;
            // Mix clean and singular inputs so both ladder branches are
            // exercised by the determinism claim.
            let a = if rng.gen_bool(0.5) {
                spd(rng, n)
            } else {
                singular_psd(rng, n)
            };
            let b = vector(rng, n);
            let (res1, x1) = ladder_solve(&a, &b);
            let (res2, x2) = ladder_solve(&a, &b);
            assert_eq!(res1.rung, res2.rung);
            assert_eq!(res1.ridge.to_bits(), res2.ridge.to_bits());
            assert_eq!(res1.rcond.to_bits(), res2.rcond.to_bits());
            assert_eq!(res1.lu_fallback, res2.lu_fallback);
            assert_eq!(
                x1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                x2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "ladder solutions must be bit-identical across runs"
            );
        },
    );
}

#[test]
fn well_conditioned_spd_never_engages_the_ladder() {
    check(
        "well_conditioned_spd_never_engages_the_ladder",
        DEFAULT_CASES,
        |rng| {
            let n = 2 + (rng.next_u64() % 6) as usize;
            let a = spd(rng, n);
            let x_true = vector(rng, n);
            let b = a.matvec(&Vector::from(x_true)).expect("shape");
            let (res, x) = ladder_solve(&a, b.as_slice());
            assert_eq!(res.rung, 0, "clean input must stay on rung 0");
            assert_eq!(res.ridge, 0.0);
            assert!(!res.lu_fallback);
            assert!(res.rcond > 0.0 && res.rcond <= 1.0);
            let rr = rel_residual(&a, &x, b.as_slice());
            assert!(rr < 1e-8, "clean solve residual {rr}");
        },
    );
}

#[test]
fn lu_ladder_handles_duplicated_row_systems() {
    check(
        "lu_ladder_handles_duplicated_row_systems",
        DEFAULT_CASES,
        |rng| {
            let n = 3 + (rng.next_u64() % 4) as usize;
            let mut a = matrix(rng, n, n);
            // Duplicate a row: the system becomes exactly singular.
            let src = rng.gen_index(n);
            let dst = (src + 1) % n;
            for j in 0..n {
                let v = a[(src, j)];
                a[(dst, j)] = v;
            }
            let b = vector(rng, n);
            let mut f = a.clone();
            let mut perm = Vec::new();
            let mut scratch = LadderScratch::new();
            let policy = LadderPolicy::default();
            // The ladder must come back with a structured outcome either
            // way; a duplicated-row system is rescuable by a jittered LU.
            let res = factor_lu_ladder(&mut f, &mut perm, &mut scratch, &policy)
                .expect("jittered LU must rescue a duplicated-row system");
            assert!(res.rung >= 1, "exact singularity cannot stay on rung 0");
            assert!(res.ridge > 0.0);
            let mut x = b.clone();
            ladder_solve_in_place(bmf_linalg::FactorKind::Lu, &f, &perm, &mut scratch, &mut x)
                .expect("solve");
            assert!(x.iter().all(|v| v.is_finite()));
        },
    );
}
