use std::error::Error;
use std::fmt;

/// Errors produced by the linear-algebra routines in this crate.
///
/// All routines validate their inputs eagerly: dimension mismatches are
/// reported before any arithmetic is performed, and factorizations report
/// structural failures (loss of positive definiteness, singularity) with the
/// offending pivot index so callers can diagnose which coefficient caused the
/// breakdown.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable name of the operation that was attempted.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A matrix expected to be square was not.
    NotSquare {
        /// Number of rows observed.
        rows: usize,
        /// Number of columns observed.
        cols: usize,
    },
    /// Cholesky factorization encountered a non-positive pivot.
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
        /// Value of the failing pivot (the diagonal residual).
        value: f64,
    },
    /// LU factorization or a triangular solve hit a (numerically) zero pivot.
    Singular {
        /// Index of the failing pivot.
        pivot: usize,
    },
    /// An input value was invalid (NaN or infinite) where finite data is
    /// required.
    NonFinite {
        /// Human-readable name of the operation that was attempted.
        op: &'static str,
    },
    /// An empty matrix or vector was supplied where data is required.
    Empty {
        /// Human-readable name of the operation that was attempted.
        op: &'static str,
    },
    /// Every rung of the solver degradation ladder failed: the system could
    /// not be factorized even after bounded ridge escalation, and the final
    /// LU attempt was rejected by the pivot-condition check.
    Unsolvable {
        /// Human-readable name of the operation that was attempted.
        op: &'static str,
        /// Reciprocal-condition estimate of the last attempted
        /// factorization (0.0 when even LU reported a zero pivot).
        rcond: f64,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: left is {}x{}, right is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinalgError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite: pivot {pivot} has residual {value:e}"
            ),
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            LinalgError::NonFinite { op } => {
                write!(f, "non-finite value encountered in {op}")
            }
            LinalgError::Empty { op } => write!(f, "empty operand in {op}"),
            LinalgError::Unsolvable { op, rcond } => write!(
                f,
                "system unsolvable in {op}: degradation ladder exhausted (rcond {rcond:e})"
            ),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinalgError::DimensionMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }

    #[test]
    fn not_positive_definite_reports_pivot() {
        let e = LinalgError::NotPositiveDefinite {
            pivot: 7,
            value: -1e-3,
        };
        assert!(e.to_string().contains("pivot 7"));
    }

    #[test]
    fn unsolvable_reports_rcond() {
        let e = LinalgError::Unsolvable {
            op: "map estimate",
            rcond: 1e-17,
        };
        let s = e.to_string();
        assert!(s.contains("map estimate"));
        assert!(s.contains("ladder"));
    }
}
