//! Complex scalars, matrices, and a complex LU solver.
//!
//! Small-signal AC analysis assembles the MNA system over ℂ (capacitors
//! stamp `jωC`). The offline crate set has no complex-number crate, so
//! this module provides the minimal field + dense solve the AC engine
//! needs.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::LinalgError;

/// A complex number with `f64` components.
///
/// ```
/// use bmf_linalg::complex::C64;
/// let j = C64::new(0.0, 1.0);
/// assert_eq!(j * j, C64::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Zero.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const J: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates `re + j·im`.
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real value.
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Creates from polar form `r·e^{jθ}`.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        C64::new(r * theta.cos(), r * theta.sin())
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        C64::new(self.re, -self.im)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics on division by (exact) zero.
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        assert!(d > 0.0, "complex division by zero");
        C64::new(self.re / d, -self.im / d)
    }

    /// `true` when both parts are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl Add for C64 {
    type Output = C64;
    fn add(self, o: C64) -> C64 {
        C64::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for C64 {
    fn add_assign(&mut self, o: C64) {
        *self = *self + o;
    }
}

impl Sub for C64 {
    type Output = C64;
    fn sub(self, o: C64) -> C64 {
        C64::new(self.re - o.re, self.im - o.im)
    }
}

impl SubAssign for C64 {
    fn sub_assign(&mut self, o: C64) {
        *self = *self - o;
    }
}

impl Mul for C64 {
    type Output = C64;
    fn mul(self, o: C64) -> C64 {
        C64::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl MulAssign for C64 {
    fn mul_assign(&mut self, o: C64) {
        *self = *self * o;
    }
}

impl Div for C64 {
    type Output = C64;
    // Division by reciprocal is the intended numerically-stable route here.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, o: C64) -> C64 {
        self * o.recip()
    }
}

impl Neg for C64 {
    type Output = C64;
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

/// A dense row-major complex matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMatrix {
    /// Creates an all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics out of bounds (debug) / index arithmetic (release).
    pub fn get(&self, i: usize, j: usize) -> C64 {
        self.data[i * self.cols + j]
    }

    /// Mutable element access.
    pub fn get_mut(&mut self, i: usize, j: usize) -> &mut C64 {
        &mut self.data[i * self.cols + j]
    }

    /// Adds `v` to element `(i, j)` (the MNA "stamp" operation).
    pub fn stamp(&mut self, i: usize, j: usize, v: C64) {
        *self.get_mut(i, j) += v;
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != self.ncols()`.
    pub fn matvec(&self, x: &[C64]) -> Vec<C64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let mut s = C64::ZERO;
                for (j, &xj) in x.iter().enumerate() {
                    s += self.get(i, j) * xj;
                }
                s
            })
            .collect()
    }

    /// Solves `A x = b` by partially pivoted LU, consuming a copy of the
    /// matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`], [`LinalgError::DimensionMismatch`]
    /// or [`LinalgError::Singular`].
    pub fn solve(&self, b: &[C64]) -> Result<Vec<C64>, LinalgError> {
        let n = self.rows;
        if self.rows != self.cols {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "complex solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Clone-as-output: elimination consumes the copy in place.
        let mut a = self.data.clone();
        let mut x: Vec<C64> = b.to_vec();
        let scale = a.iter().fold(0.0f64, |m, z| m.max(z.abs())).max(1.0);
        let tol = 1e-14 * scale;

        for k in 0..n {
            // Pivot on magnitude.
            let mut p = k;
            let mut best = a[k * n + k].abs();
            for i in (k + 1)..n {
                let v = a[i * n + k].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best < tol {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                for j in 0..n {
                    a.swap(k * n + j, p * n + j);
                }
                x.swap(k, p);
            }
            let pivot = a[k * n + k];
            for i in (k + 1)..n {
                let mul = a[i * n + k] / pivot;
                if mul == C64::ZERO {
                    continue;
                }
                a[i * n + k] = mul;
                for j in (k + 1)..n {
                    let akj = a[k * n + j];
                    let v = a[i * n + j] - mul * akj;
                    a[i * n + j] = v;
                }
                let xk = x[k];
                x[i] -= mul * xk;
            }
        }
        // Backward substitution.
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= a[i * n + j] * x[j];
            }
            x[i] = s / a[i * n + i];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_spot_checks() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(-0.5, 3.0);
        assert_eq!(a + b, C64::new(0.5, 5.0));
        assert_eq!(a - b, C64::new(1.5, -1.0));
        assert_eq!(a * b, C64::new(-0.5 - 6.0, 3.0 - 1.0));
        let q = a / b;
        let back = q * b;
        assert!((back - a).abs() < 1e-12);
    }

    #[test]
    fn polar_roundtrip() {
        let z = C64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn conjugate_properties() {
        let z = C64::new(3.0, -4.0);
        assert_eq!(z.conj(), C64::new(3.0, 4.0));
        assert!((z * z.conj() - C64::real(z.norm_sqr())).abs() < 1e-12);
        assert_eq!(z.abs(), 5.0);
    }

    #[test]
    fn solve_identity() {
        let mut a = CMatrix::zeros(3, 3);
        for i in 0..3 {
            *a.get_mut(i, i) = C64::ONE;
        }
        let b = [C64::new(1.0, 1.0), C64::new(2.0, -1.0), C64::real(3.0)];
        let x = a.solve(&b).unwrap();
        for (u, v) in x.iter().zip(&b) {
            assert!((*u - *v).abs() < 1e-14);
        }
    }

    #[test]
    fn solve_complex_system_roundtrip() {
        let mut a = CMatrix::zeros(3, 3);
        let vals = [
            [(2.0, 1.0), (0.5, -0.3), (0.0, 0.0)],
            [(0.1, 0.0), (1.5, -2.0), (0.7, 0.2)],
            [(0.0, 1.0), (0.0, 0.0), (3.0, 0.5)],
        ];
        for (i, row) in vals.iter().enumerate() {
            for (j, &(re, im)) in row.iter().enumerate() {
                *a.get_mut(i, j) = C64::new(re, im);
            }
        }
        let x_true = [C64::new(1.0, -1.0), C64::new(0.5, 2.0), C64::new(-0.7, 0.1)];
        let b = a.matvec(&x_true);
        let x = a.solve(&b).unwrap();
        for (u, v) in x.iter().zip(&x_true) {
            assert!((*u - *v).abs() < 1e-10, "{u} vs {v}");
        }
    }

    #[test]
    fn pivoting_handles_zero_leading() {
        let mut a = CMatrix::zeros(2, 2);
        *a.get_mut(0, 1) = C64::ONE;
        *a.get_mut(1, 0) = C64::ONE;
        let x = a.solve(&[C64::real(3.0), C64::real(5.0)]).unwrap();
        assert!((x[0] - C64::real(5.0)).abs() < 1e-14);
        assert!((x[1] - C64::real(3.0)).abs() < 1e-14);
    }

    #[test]
    fn singular_detected() {
        let a = CMatrix::zeros(2, 2);
        assert!(matches!(
            a.solve(&[C64::ZERO, C64::ZERO]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn stamp_accumulates() {
        let mut a = CMatrix::zeros(1, 1);
        a.stamp(0, 0, C64::new(1.0, 0.5));
        a.stamp(0, 0, C64::new(2.0, -0.25));
        assert_eq!(a.get(0, 0), C64::new(3.0, 0.25));
    }
}
