use std::fmt;
use std::ops::{Index, IndexMut};

use crate::{LinalgError, Result};

/// A dense column vector of `f64` values.
///
/// `Vector` is a thin, owned wrapper over `Vec<f64>` that adds the BLAS-1
/// operations the BMF pipeline needs (dot products, norms, axpy updates)
/// with eager dimension validation.
///
/// # Example
///
/// ```
/// use bmf_linalg::Vector;
///
/// # fn main() -> Result<(), bmf_linalg::LinalgError> {
/// let a = Vector::from(vec![3.0, 4.0]);
/// assert_eq!(a.norm2(), 5.0);
/// let b = Vector::from(vec![1.0, 0.0]);
/// assert_eq!(a.dot(&b)?, 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a vector of `n` zeros.
    ///
    /// ```
    /// let v = bmf_linalg::Vector::zeros(3);
    /// assert_eq!(v.as_slice(), &[0.0, 0.0, 0.0]);
    /// ```
    pub fn zeros(n: usize) -> Self {
        Vector { data: vec![0.0; n] }
    }

    /// Creates a vector filled with `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        Vector {
            data: vec![value; n],
        }
    }

    /// Creates a vector from a generator function over indices `0..n`.
    ///
    /// ```
    /// let v = bmf_linalg::Vector::from_fn(3, |i| i as f64);
    /// assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
    /// ```
    pub fn from_fn<F: FnMut(usize) -> f64>(n: usize, f: F) -> Self {
        Vector {
            data: (0..n).map(f).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the elements as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrows the elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector, returning the underlying storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Iterates over the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }

    /// Dot product `self · other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when lengths differ.
    pub fn dot(&self, other: &Vector) -> Result<f64> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "dot",
                lhs: (self.len(), 1),
                rhs: (other.len(), 1),
            });
        }
        Ok(self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum())
    }

    /// Euclidean (L2) norm.
    pub fn norm2(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// L1 norm (sum of absolute values).
    pub fn norm1(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).sum()
    }

    /// Maximum absolute element, or `0.0` for an empty vector.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// In-place scaled addition `self += alpha * other` (BLAS `axpy`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when lengths differ.
    pub fn axpy(&mut self, alpha: f64, other: &Vector) -> Result<()> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "axpy",
                lhs: (self.len(), 1),
                rhs: (other.len(), 1),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Returns `self + other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when lengths differ.
    pub fn add(&self, other: &Vector) -> Result<Vector> {
        // Clone-as-output: the owned wrappers in this file copy the input
        // into the result buffer and run the in-place kernel on it.
        let mut out = self.clone();
        out.axpy(1.0, other)?;
        Ok(out)
    }

    /// Returns `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when lengths differ.
    pub fn sub(&self, other: &Vector) -> Result<Vector> {
        let mut out = self.clone();
        out.axpy(-1.0, other)?;
        Ok(out)
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale_mut(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Returns a copy scaled by `alpha`.
    pub fn scaled(&self, alpha: f64) -> Vector {
        let mut out = self.clone();
        out.scale_mut(alpha);
        out
    }

    /// Element-wise product (Hadamard).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when lengths differ.
    pub fn hadamard(&self, other: &Vector) -> Result<Vector> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "hadamard",
                lhs: (self.len(), 1),
                rhs: (other.len(), 1),
            });
        }
        Ok(Vector {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a * b)
                .collect(),
        })
    }

    /// Arithmetic mean, or `0.0` for an empty vector.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f64>() / self.data.len() as f64
        }
    }

    /// Returns `true` when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Vector { data }
    }
}

impl From<&[f64]> for Vector {
    fn from(data: &[f64]) -> Self {
        Vector {
            data: data.to_vec(),
        }
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vector {
            data: iter.into_iter().collect(),
        }
    }
}

impl Extend<f64> for Vector {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.data.extend(iter);
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl IntoIterator for Vector {
    type Item = f64;
    type IntoIter = std::vec::IntoIter<f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.into_iter()
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.6}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let v = Vector::zeros(4);
        assert_eq!(v.len(), 4);
        assert!(!v.is_empty());
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn dot_matches_hand_computation() {
        let a = Vector::from(vec![1.0, 2.0, 3.0]);
        let b = Vector::from(vec![4.0, -5.0, 6.0]);
        assert_eq!(a.dot(&b).unwrap(), 4.0 - 10.0 + 18.0);
    }

    #[test]
    fn dot_rejects_mismatched_lengths() {
        let a = Vector::zeros(2);
        let b = Vector::zeros(3);
        assert!(matches!(
            a.dot(&b),
            Err(LinalgError::DimensionMismatch { op: "dot", .. })
        ));
    }

    #[test]
    fn norms() {
        let v = Vector::from(vec![-3.0, 4.0]);
        assert_eq!(v.norm2(), 5.0);
        assert_eq!(v.norm1(), 7.0);
        assert_eq!(v.norm_inf(), 4.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut a = Vector::from(vec![1.0, 1.0]);
        let b = Vector::from(vec![2.0, 3.0]);
        a.axpy(2.0, &b).unwrap();
        assert_eq!(a.as_slice(), &[5.0, 7.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![0.5, -0.5]);
        let c = a.add(&b).unwrap().sub(&b).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn hadamard_elementwise() {
        let a = Vector::from(vec![1.0, 2.0, 3.0]);
        let b = Vector::from(vec![2.0, 0.5, -1.0]);
        assert_eq!(a.hadamard(&b).unwrap().as_slice(), &[2.0, 1.0, -3.0]);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(Vector::zeros(0).mean(), 0.0);
        assert!(Vector::zeros(0).is_empty());
    }

    #[test]
    fn collect_and_extend() {
        let mut v: Vector = (0..3).map(|i| i as f64).collect();
        v.extend([3.0, 4.0]);
        assert_eq!(v.len(), 5);
        assert_eq!(v[4], 4.0);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut v = Vector::zeros(2);
        assert!(v.is_finite());
        v[1] = f64::NAN;
        assert!(!v.is_finite());
    }

    #[test]
    fn display_renders_contents() {
        let v = Vector::from(vec![1.0]);
        assert!(format!("{v}").contains("1.0"));
    }
}
