use crate::triangular::{
    solve_lower_in_place, solve_lower_transpose_in_place, solve_lower_transpose_view_in_place,
    solve_lower_view_in_place,
};
use crate::view::MatRef;
use crate::{LinalgError, Matrix, Result, Vector};

/// Overwrites the square matrix `a` with its lower Cholesky factor `L`
/// (upper triangle zeroed), allocating nothing.
///
/// Bit-identical to [`Cholesky::new`] on the same input: the
/// out-of-place factorization only ever reads positions the in-place one
/// has either not yet touched (the lower triangle of `a`, each read once
/// before being overwritten) or already replaced with final `L` values.
///
/// # Errors
///
/// Same conditions as [`Cholesky::new`]. On error `a` holds a partially
/// factorized mix of `L` values and original entries.
pub fn cholesky_in_place(a: &mut Matrix) -> Result<()> {
    let (n, c) = a.shape();
    if n != c {
        return Err(LinalgError::NotSquare { rows: n, cols: c });
    }
    if !a.is_finite() {
        return Err(LinalgError::NonFinite { op: "cholesky" });
    }
    for i in 0..n {
        for j in 0..=i {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= a[(i, k)] * a[(j, k)];
            }
            if i == j {
                if s <= 0.0 {
                    return Err(LinalgError::NotPositiveDefinite { pivot: i, value: s });
                }
                a[(i, j)] = s.sqrt();
            } else {
                a[(i, j)] = s / a[(j, j)];
            }
        }
    }
    // The factorization never reads above the diagonal; zero it so the
    // stored factor matches the owned convention (full square, zero
    // upper triangle).
    for i in 0..n {
        for j in (i + 1)..n {
            a[(i, j)] = 0.0;
        }
    }
    Ok(())
}

/// Computes one new factor row for a rank-one *row growth* of a Cholesky
/// factorization, allocating nothing.
///
/// Given the factor `L` of an `n × n` SPD matrix `A` (as a borrowed,
/// possibly strided view — only the lower triangle is read), the border
/// column `w` and corner `d` of the extended matrix
///
/// ```text
/// [ A   w ]
/// [ wᵀ  d ]
/// ```
///
/// this writes the new factor row into `out_row` and returns the new
/// diagonal entry, in Θ(n²).
///
/// **Bit-identity:** the forward substitution and the diagonal use the
/// exact sequential-subtraction accumulation of [`cholesky_in_place`]'s
/// row loop (`s = a[(n,j)]; s -= l[(n,k)] · l[(j,k)] …`), so by induction
/// a factor grown one row at a time is bit-identical to a fresh
/// factorization of the full extended matrix. (The previous owned
/// implementation computed the diagonal as `d − l·l`, which differs in
/// the last ulps from the in-place kernel's running subtraction.)
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] when `w.len()` or `out_row.len()`
///   differs from `l`'s dimension, or `l` is not square.
/// * [`LinalgError::NonFinite`] when `w` or `d` contain NaN or ±∞ —
///   screened up front so contaminated inputs are not misreported as a
///   loss of positive definiteness.
/// * [`LinalgError::NotPositiveDefinite`] when the extended matrix is not
///   positive definite (`out_row` then holds the substituted row; the
///   caller's factor is untouched).
pub fn cholesky_extend_row_into(
    l: MatRef<'_>,
    w: &[f64],
    d: f64,
    out_row: &mut [f64],
) -> Result<f64> {
    let (n, c) = l.shape();
    if n != c {
        return Err(LinalgError::NotSquare { rows: n, cols: c });
    }
    if w.len() != n || out_row.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "cholesky extend",
            lhs: (n, n),
            rhs: (w.len(), 1),
        });
    }
    if !d.is_finite() || w.iter().any(|x| !x.is_finite()) {
        return Err(LinalgError::NonFinite {
            op: "cholesky extend",
        });
    }
    // Row n of the extended factorization, exactly as cholesky_in_place
    // would compute it: forward substitution against the existing rows...
    for j in 0..n {
        let lrow = l.row(j);
        let mut s = w[j];
        for k in 0..j {
            s -= out_row[k] * lrow[k];
        }
        out_row[j] = s / lrow[j];
    }
    // ...then the diagonal as a running subtraction from the corner.
    let mut s = d;
    for &v in out_row.iter() {
        s -= v * v;
    }
    if s <= 0.0 {
        return Err(LinalgError::NotPositiveDefinite { pivot: n, value: s });
    }
    Ok(s.sqrt())
}

/// A Cholesky factorization that grows one row/column at a time without
/// per-step allocation.
///
/// The factor lives in one flat buffer with row stride equal to the
/// current *capacity*, so absorbing a new sample writes the new row into
/// pre-zeroed space in place ([`cholesky_extend_row_into`]); the buffer
/// is re-laid-out only when the dimension outgrows the capacity
/// (capacity doubling, amortized Θ(1) reallocations). With
/// [`GrowingCholesky::reserve`] called up front, steady-state growth
/// performs **zero** heap allocations.
///
/// The stored factor is bit-identical to [`cholesky_in_place`] applied to
/// the full bordered matrix, and [`GrowingCholesky::solve_in_place`] is
/// bit-identical to [`Cholesky::solve_in_place`] on that factor — this is
/// what lets the sequential BMF estimator reproduce batch fast-solver
/// results exactly, sample by sample.
#[derive(Debug, Clone, Default)]
pub struct GrowingCholesky {
    /// `cap × cap` row-major storage, zero outside the leading `n × n`
    /// lower triangle.
    data: Vec<f64>,
    /// Current factor dimension.
    n: usize,
    /// Row stride of `data` (and its square root of length).
    cap: usize,
}

impl GrowingCholesky {
    /// Creates an empty (0-dimensional) factorization.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current factor dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// `true` when no row has been absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Grows the backing buffer so the factor can reach `dim` rows
    /// without further allocation.
    pub fn reserve(&mut self, dim: usize) {
        if dim > self.cap {
            self.relayout(dim);
        }
    }

    /// Borrows the current `n × n` factor as a strided view (row stride =
    /// capacity). The upper triangle reads as exact zeros, matching the
    /// owned [`Cholesky::factor`] convention.
    pub fn factor_view(&self) -> Result<MatRef<'_>> {
        MatRef::strided(&self.data, self.n, self.n, self.cap.max(1))
    }

    /// Absorbs one bordering row/column: if the current factor is of `A`,
    /// the factor becomes that of `[[A, w], [wᵀ, d]]`, in Θ(n²) with no
    /// allocation while within capacity.
    ///
    /// On error the factor is untouched (the rejected row only ever wrote
    /// into the unused row-`n` slot).
    ///
    /// # Errors
    ///
    /// Same conditions as [`cholesky_extend_row_into`] (dimension,
    /// non-finite screen, loss of positive definiteness).
    pub fn push_row(&mut self, w: &[f64], d: f64) -> Result<()> {
        let n = self.n;
        if w.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky extend",
                lhs: (n, n),
                rhs: (w.len(), 1),
            });
        }
        if n == self.cap {
            self.relayout((self.cap * 2).max(4));
        }
        let cap = self.cap;
        // Split so the existing factor (rows 0..n) is borrowed immutably
        // while row n is written: row n starts exactly at n * cap.
        let (head, tail) = self.data.split_at_mut(n * cap);
        let l = MatRef::strided(head, n, n, cap.max(1))?;
        let diag = cholesky_extend_row_into(l, w, d, &mut tail[..n])?;
        tail[n] = diag;
        self.n = n + 1;
        Ok(())
    }

    /// Solves `A x = b` in place against the grown factor, allocating
    /// nothing — bit-identical to [`Cholesky::solve_in_place`] (same
    /// forward / transposed-forward substitutions, same pivot tolerance).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `x.len()` differs
    /// from the factor dimension, [`LinalgError::Singular`] on a
    /// numerically zero pivot.
    pub fn solve_in_place(&self, x: &mut [f64]) -> Result<()> {
        let l = self.factor_view()?;
        solve_lower_view_in_place(l, x)?;
        solve_lower_transpose_view_in_place(l, x)
    }

    /// Forward substitution only (`L z = b`, in place) — the half-solve
    /// the posterior-variance query `gᵀΣg = gᵀD⁻¹g − ‖L⁻¹u‖²` needs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GrowingCholesky::solve_in_place`].
    pub fn forward_solve_in_place(&self, x: &mut [f64]) -> Result<()> {
        solve_lower_view_in_place(self.factor_view()?, x)
    }

    /// Re-lays the factor into a fresh zeroed buffer with row stride
    /// `new_cap` (≥ current dimension).
    fn relayout(&mut self, new_cap: usize) {
        // bmf-lint: allow(alloc-reachability) -- amortized growth path: reached only when capacity is exhausted, never on the steady-state per-row update
        let mut fresh = vec![0.0; new_cap * new_cap];
        for i in 0..self.n {
            fresh[i * new_cap..i * new_cap + self.n]
                .copy_from_slice(&self.data[i * self.cap..i * self.cap + self.n]);
        }
        self.data = fresh;
        self.cap = new_cap;
    }
}

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive definite matrix.
///
/// This is the "conventional solver" the BMF paper benchmarks its fast
/// low-rank solver against (§IV-C, Fig. 5): the direct MAP estimate inverts
/// an M × M posterior precision matrix, which costs Θ(M³/3) here, versus the
/// Θ(K²M) Woodbury path in [`crate::woodbury`].
///
/// # Example
///
/// ```
/// use bmf_linalg::{Matrix, Vector};
///
/// # fn main() -> Result<(), bmf_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let chol = a.cholesky()?;
/// let x = chol.solve(&Vector::from(vec![1.0, 2.0]))?;
/// let r = a.matvec(&x)?;
/// assert!((r[0] - 1.0).abs() < 1e-12 && (r[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor, stored in a full square matrix whose upper
    /// triangle is zero.
    l: Matrix,
}

impl Cholesky {
    /// Factorizes the symmetric positive definite matrix `a`.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper
    /// triangle is assumed, matching the convention of LAPACK's `dpotrf`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] when `a` is not square.
    /// * [`LinalgError::NotPositiveDefinite`] when a pivot is ≤ 0; the error
    ///   carries the pivot index and residual value.
    /// * [`LinalgError::NonFinite`] when `a` contains NaN or ±∞.
    pub fn new(a: &Matrix) -> Result<Self> {
        // Clone-as-output: the copy becomes the owned factor storage.
        let mut l = a.clone();
        cholesky_in_place(&mut l)?;
        Ok(Cholesky { l })
    }

    /// Wraps an already-factorized lower triangle produced by
    /// [`cholesky_in_place`], without refactorizing.
    ///
    /// The caller is responsible for `l` actually being such a factor;
    /// solves against an arbitrary matrix will silently produce garbage.
    pub fn from_factor(l: Matrix) -> Self {
        Cholesky { l }
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.l.nrows()
    }

    /// Borrows the lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via two triangular solves.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `b.len()` differs
    /// from the factor dimension.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let mut x = b.clone();
        self.solve_in_place(x.as_mut_slice())?;
        Ok(x)
    }

    /// In-place variant of [`Cholesky::solve`]: overwrites `x` (initially
    /// `b`) with the solution of `A x = b`, allocating nothing.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Cholesky::solve`]. On error `x` may hold
    /// partially substituted values.
    pub fn solve_in_place(&self, x: &mut [f64]) -> Result<()> {
        solve_lower_in_place(&self.l, x)?;
        solve_lower_transpose_in_place(&self.l, x)
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `B.nrows()` differs
    /// from the factor dimension.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.nrows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.ncols());
        for j in 0..b.ncols() {
            let x = self.solve(&b.col(j))?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Computes `A⁻¹` explicitly.
    ///
    /// Prefer [`Cholesky::solve`] where possible; the explicit inverse is
    /// exposed because the MAP posterior covariance Σ_L (eq. 28/31) is
    /// itself an inverse that callers may want to inspect.
    ///
    /// # Errors
    ///
    /// Propagates errors from the underlying triangular solves.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Log-determinant of `A`, computed as `2 Σ log L[i][i]`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Grows the factorization by one row/column: if this factor is of
    /// `A`, produce the factor of
    ///
    /// ```text
    /// [ A   w ]
    /// [ wᵀ  d ]
    /// ```
    ///
    /// in Θ(n²) instead of refactorizing at Θ(n³). This is what lets the
    /// sequential BMF estimator absorb one new simulation sample at a
    /// time: the Woodbury core `c⁻¹I + G D⁻¹ Gᵀ` grows exactly this way
    /// per sample.
    ///
    /// The arithmetic routes through [`cholesky_extend_row_into`], so the
    /// grown factor is **bit-identical** to a fresh factorization of the
    /// extended matrix. This owned wrapper allocates the enlarged square
    /// storage per call; growth loops should hold a [`GrowingCholesky`],
    /// which reuses capacity-doubled storage instead.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] when `w.len() != self.dim()`.
    /// * [`LinalgError::NonFinite`] when `w` or `d` contain NaN or ±∞ —
    ///   screened up front so contaminated inputs are not misreported as
    ///   a loss of positive definiteness (NaN slips through the `s <= 0`
    ///   pivot check).
    /// * [`LinalgError::NotPositiveDefinite`] when the extended matrix is
    ///   not positive definite.
    pub fn extend(&mut self, w: &Vector, d: f64) -> Result<()> {
        let n = self.dim();
        let mut bigger = Matrix::zeros(n + 1, n + 1);
        let diag = {
            let (_, new_row) = bigger.as_mut_slice().split_at_mut(n * (n + 1));
            cholesky_extend_row_into(self.l.as_view(), w.as_slice(), d, &mut new_row[..n])?
        };
        for i in 0..n {
            for j in 0..=i {
                bigger[(i, j)] = self.l[(i, j)];
            }
        }
        bigger[(n, n)] = diag;
        self.l = bigger;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = Bᵀ B + I with a fixed B, guaranteed SPD.
        let b = Matrix::from_rows(&[&[1.0, 2.0, 0.0], &[0.0, 1.0, 1.0], &[1.0, 0.0, 1.0]]).unwrap();
        let mut a = b.gram();
        a.add_diagonal_mut(&[1.0, 1.0, 1.0]).unwrap();
        a
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd3();
        let chol = a.cholesky().unwrap();
        let l = chol.factor();
        let rec = l.matmul(&l.transpose()).unwrap();
        assert!(rec.sub(&a).unwrap().norm_frobenius() < 1e-12);
    }

    #[test]
    fn solve_satisfies_system() {
        let a = spd3();
        let b = Vector::from(vec![1.0, -1.0, 2.0]);
        let x = a.cholesky().unwrap().solve(&b).unwrap();
        let r = a.matvec(&x).unwrap().sub(&b).unwrap();
        assert!(r.norm2() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd3();
        let inv = a.cholesky().unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.sub(&Matrix::identity(3)).unwrap().norm_frobenius() < 1e-10);
    }

    #[test]
    fn log_det_matches_2x2_closed_form() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
        let det: f64 = 4.0 * 3.0 - 2.0 * 2.0;
        let chol = a.cholesky().unwrap();
        assert!((chol.log_det() - det.ln()).abs() < 1e-12);
    }

    #[test]
    fn indefinite_matrix_is_rejected_with_pivot() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        match a.cholesky() {
            Err(LinalgError::NotPositiveDefinite { pivot, value }) => {
                assert_eq!(pivot, 1);
                assert!(value <= 0.0);
            }
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn non_square_rejected() {
        assert!(matches!(
            Cholesky::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn nan_rejected() {
        let mut a = Matrix::identity(2);
        a[(0, 0)] = f64::NAN;
        assert!(matches!(a.cholesky(), Err(LinalgError::NonFinite { .. })));
    }

    #[test]
    fn upper_triangle_is_ignored() {
        // Only the lower triangle should be read.
        let mut a = spd3();
        a[(0, 2)] = 777.0;
        let mut sym = spd3();
        sym[(0, 2)] = sym[(2, 0)];
        let l1 = a.cholesky().unwrap();
        let l2 = sym.cholesky().unwrap();
        assert!(l1.factor().sub(l2.factor()).unwrap().norm_frobenius().abs() < 1e-14);
    }

    #[test]
    fn extend_matches_full_factorization() {
        // Build a 4x4 SPD matrix, factor the 3x3 leading block, extend.
        let b = Matrix::from_rows(&[
            &[1.0, 0.5, 0.0, 0.2],
            &[0.0, 1.0, 0.7, -0.4],
            &[0.3, 0.0, 1.0, 0.6],
            &[0.1, 0.2, 0.0, 1.0],
            &[0.0, 0.1, 0.2, 0.3],
        ])
        .unwrap();
        let mut a = b.gram();
        a.add_diagonal_mut(&[0.5; 4]).unwrap();

        let a3 = Matrix::from_fn(3, 3, |i, j| a[(i, j)]);
        let mut chol = a3.cholesky().unwrap();
        let w = Vector::from(vec![a[(0, 3)], a[(1, 3)], a[(2, 3)]]);
        chol.extend(&w, a[(3, 3)]).unwrap();

        let full = a.cholesky().unwrap();
        let diff = chol.factor().sub(full.factor()).unwrap().norm_frobenius();
        assert!(diff < 1e-12, "extended factor differs: {diff}");
    }

    #[test]
    fn extend_rejects_indefinite_growth() {
        let mut chol = Matrix::identity(2).cholesky().unwrap();
        // Appending w = (2, 0), d = 1 gives a matrix with negative Schur
        // complement (1 - 4 < 0).
        assert!(matches!(
            chol.extend(&Vector::from(vec![2.0, 0.0]), 1.0),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn extend_screens_non_finite_inputs() {
        // Regression: a NaN-contaminated update used to fall through the
        // `s <= 0.0` pivot check (NaN compares false) and be stored as a
        // NaN diagonal — or, with d = -inf, be reported as
        // NotPositiveDefinite, masking the real cause.
        let mut chol = Matrix::identity(2).cholesky().unwrap();
        assert!(matches!(
            chol.extend(&Vector::from(vec![f64::NAN, 0.0]), 1.0),
            Err(LinalgError::NonFinite {
                op: "cholesky extend"
            })
        ));
        assert!(matches!(
            chol.extend(&Vector::from(vec![0.0, 0.0]), f64::NAN),
            Err(LinalgError::NonFinite { .. })
        ));
        assert!(matches!(
            chol.extend(&Vector::from(vec![0.0, 0.0]), f64::NEG_INFINITY),
            Err(LinalgError::NonFinite { .. })
        ));
        // The factor must be untouched by the rejected updates.
        assert_eq!(chol.dim(), 2);
        chol.extend(&Vector::from(vec![0.5, 0.0]), 2.0).unwrap();
        assert_eq!(chol.dim(), 3);
    }

    #[test]
    fn extend_validates_dimension() {
        let mut chol = Matrix::identity(2).cholesky().unwrap();
        assert!(chol.extend(&Vector::zeros(3), 1.0).is_err());
    }

    #[test]
    fn solve_matrix_solves_each_column() {
        let a = spd3();
        let chol = a.cholesky().unwrap();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let x = chol.solve_matrix(&b).unwrap();
        let r = a.matmul(&x).unwrap().sub(&b).unwrap();
        assert!(r.norm_frobenius() < 1e-11);
    }

    /// SplitMix64 — enough randomness for SPD test matrices without
    /// pulling a stat dependency into this crate.
    fn splitmix(state: &mut u64) -> f64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }

    fn random_spd(n: usize, seed: u64) -> Matrix {
        let mut s = seed;
        let b = Matrix::from_fn(n + 2, n, |_, _| splitmix(&mut s));
        let mut a = b.gram();
        a.add_diagonal_mut(&vec![0.75; n]).unwrap();
        a
    }

    fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shape");
        for i in 0..a.nrows() {
            for j in 0..a.ncols() {
                assert_eq!(
                    a[(i, j)].to_bits(),
                    b[(i, j)].to_bits(),
                    "{what}: ({i},{j}) {} vs {}",
                    a[(i, j)],
                    b[(i, j)]
                );
            }
        }
    }

    #[test]
    fn extend_is_bit_identical_to_fresh_factorization() {
        for seed in 0..8u64 {
            let n = 3 + (seed % 4) as usize;
            let a = random_spd(n, 1000 + seed);
            let lead = Matrix::from_fn(n - 1, n - 1, |i, j| a[(i, j)]);
            let mut grown = lead.cholesky().unwrap();
            let w = Vector::from_fn(n - 1, |i| a[(i, n - 1)]);
            grown.extend(&w, a[(n - 1, n - 1)]).unwrap();
            let fresh = a.cholesky().unwrap();
            assert_bits_eq(grown.factor(), fresh.factor(), "owned extend");
        }
    }

    #[test]
    fn growing_factor_matches_fresh_factorization_bitwise_at_every_size() {
        for seed in 0..4u64 {
            let n = 9; // crosses the 4 -> 8 -> 16 capacity-doubling boundaries
            let a = random_spd(n, 7000 + seed);
            let mut grow = GrowingCholesky::new();
            for k in 0..n {
                let w: Vec<f64> = (0..k).map(|i| a[(i, k)]).collect();
                grow.push_row(&w, a[(k, k)]).unwrap();
                let lead = Matrix::from_fn(k + 1, k + 1, |i, j| a[(i, j)]);
                let fresh = lead.cholesky().unwrap();
                assert_bits_eq(
                    &grow.factor_view().unwrap().to_matrix(),
                    fresh.factor(),
                    "growing factor",
                );
            }
            assert_eq!(grow.dim(), n);
        }
    }

    #[test]
    fn growing_solve_is_bit_identical_to_owned_solve() {
        let n = 7;
        let a = random_spd(n, 42);
        let mut grow = GrowingCholesky::new();
        for k in 0..n {
            let w: Vec<f64> = (0..k).map(|i| a[(i, k)]).collect();
            grow.push_row(&w, a[(k, k)]).unwrap();
        }
        let owned = a.cholesky().unwrap();
        let mut s = 5u64;
        let b: Vec<f64> = (0..n).map(|_| splitmix(&mut s)).collect();
        let mut x_grow = b.clone();
        grow.solve_in_place(&mut x_grow).unwrap();
        let x_owned = owned.solve(&Vector::from(b.clone())).unwrap();
        for (g, o) in x_grow.iter().zip(x_owned.iter()) {
            assert_eq!(g.to_bits(), o.to_bits());
        }
        // Forward half-solve matches a solve_lower against the owned factor.
        let mut z = b.clone();
        grow.forward_solve_in_place(&mut z).unwrap();
        let z_owned = crate::triangular::solve_lower(owned.factor(), &Vector::from(b)).unwrap();
        for (g, o) in z.iter().zip(z_owned.iter()) {
            assert_eq!(g.to_bits(), o.to_bits());
        }
    }

    #[test]
    fn growing_cholesky_rejects_bad_rows_and_stays_usable() {
        let mut grow = GrowingCholesky::new();
        grow.push_row(&[], 4.0).unwrap();
        // Dimension mismatch, non-finite, and indefinite growth all leave
        // the factor untouched.
        assert!(matches!(
            grow.push_row(&[1.0, 2.0], 1.0),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            grow.push_row(&[f64::NAN], 1.0),
            Err(LinalgError::NonFinite { .. })
        ));
        assert!(matches!(
            grow.push_row(&[4.0], 1.0), // Schur complement 1 - 16/4 < 0
            Err(LinalgError::NotPositiveDefinite { pivot: 1, .. })
        ));
        assert_eq!(grow.dim(), 1);
        grow.push_row(&[1.0], 3.0).unwrap();
        assert_eq!(grow.dim(), 2);
    }

    #[test]
    fn growing_cholesky_reserve_preallocates() {
        let mut grow = GrowingCholesky::new();
        grow.reserve(16);
        let a = random_spd(12, 9);
        for k in 0..12 {
            let w: Vec<f64> = (0..k).map(|i| a[(i, k)]).collect();
            grow.push_row(&w, a[(k, k)]).unwrap();
        }
        let fresh = a.cholesky().unwrap();
        assert_bits_eq(
            &grow.factor_view().unwrap().to_matrix(),
            fresh.factor(),
            "reserved growth",
        );
    }
}
