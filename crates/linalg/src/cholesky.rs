use crate::triangular::{solve_lower_in_place, solve_lower_transpose_in_place};
use crate::{LinalgError, Matrix, Result, Vector};

/// Overwrites the square matrix `a` with its lower Cholesky factor `L`
/// (upper triangle zeroed), allocating nothing.
///
/// Bit-identical to [`Cholesky::new`] on the same input: the
/// out-of-place factorization only ever reads positions the in-place one
/// has either not yet touched (the lower triangle of `a`, each read once
/// before being overwritten) or already replaced with final `L` values.
///
/// # Errors
///
/// Same conditions as [`Cholesky::new`]. On error `a` holds a partially
/// factorized mix of `L` values and original entries.
pub fn cholesky_in_place(a: &mut Matrix) -> Result<()> {
    let (n, c) = a.shape();
    if n != c {
        return Err(LinalgError::NotSquare { rows: n, cols: c });
    }
    if !a.is_finite() {
        return Err(LinalgError::NonFinite { op: "cholesky" });
    }
    for i in 0..n {
        for j in 0..=i {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= a[(i, k)] * a[(j, k)];
            }
            if i == j {
                if s <= 0.0 {
                    return Err(LinalgError::NotPositiveDefinite { pivot: i, value: s });
                }
                a[(i, j)] = s.sqrt();
            } else {
                a[(i, j)] = s / a[(j, j)];
            }
        }
    }
    // The factorization never reads above the diagonal; zero it so the
    // stored factor matches the owned convention (full square, zero
    // upper triangle).
    for i in 0..n {
        for j in (i + 1)..n {
            a[(i, j)] = 0.0;
        }
    }
    Ok(())
}

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive definite matrix.
///
/// This is the "conventional solver" the BMF paper benchmarks its fast
/// low-rank solver against (§IV-C, Fig. 5): the direct MAP estimate inverts
/// an M × M posterior precision matrix, which costs Θ(M³/3) here, versus the
/// Θ(K²M) Woodbury path in [`crate::woodbury`].
///
/// # Example
///
/// ```
/// use bmf_linalg::{Matrix, Vector};
///
/// # fn main() -> Result<(), bmf_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let chol = a.cholesky()?;
/// let x = chol.solve(&Vector::from(vec![1.0, 2.0]))?;
/// let r = a.matvec(&x)?;
/// assert!((r[0] - 1.0).abs() < 1e-12 && (r[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor, stored in a full square matrix whose upper
    /// triangle is zero.
    l: Matrix,
}

impl Cholesky {
    /// Factorizes the symmetric positive definite matrix `a`.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper
    /// triangle is assumed, matching the convention of LAPACK's `dpotrf`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] when `a` is not square.
    /// * [`LinalgError::NotPositiveDefinite`] when a pivot is ≤ 0; the error
    ///   carries the pivot index and residual value.
    /// * [`LinalgError::NonFinite`] when `a` contains NaN or ±∞.
    pub fn new(a: &Matrix) -> Result<Self> {
        // Clone-as-output: the copy becomes the owned factor storage.
        let mut l = a.clone();
        cholesky_in_place(&mut l)?;
        Ok(Cholesky { l })
    }

    /// Wraps an already-factorized lower triangle produced by
    /// [`cholesky_in_place`], without refactorizing.
    ///
    /// The caller is responsible for `l` actually being such a factor;
    /// solves against an arbitrary matrix will silently produce garbage.
    pub fn from_factor(l: Matrix) -> Self {
        Cholesky { l }
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.l.nrows()
    }

    /// Borrows the lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via two triangular solves.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `b.len()` differs
    /// from the factor dimension.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let mut x = b.clone();
        self.solve_in_place(x.as_mut_slice())?;
        Ok(x)
    }

    /// In-place variant of [`Cholesky::solve`]: overwrites `x` (initially
    /// `b`) with the solution of `A x = b`, allocating nothing.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Cholesky::solve`]. On error `x` may hold
    /// partially substituted values.
    pub fn solve_in_place(&self, x: &mut [f64]) -> Result<()> {
        solve_lower_in_place(&self.l, x)?;
        solve_lower_transpose_in_place(&self.l, x)
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `B.nrows()` differs
    /// from the factor dimension.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.nrows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.ncols());
        for j in 0..b.ncols() {
            let x = self.solve(&b.col(j))?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Computes `A⁻¹` explicitly.
    ///
    /// Prefer [`Cholesky::solve`] where possible; the explicit inverse is
    /// exposed because the MAP posterior covariance Σ_L (eq. 28/31) is
    /// itself an inverse that callers may want to inspect.
    ///
    /// # Errors
    ///
    /// Propagates errors from the underlying triangular solves.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// Log-determinant of `A`, computed as `2 Σ log L[i][i]`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Grows the factorization by one row/column: if this factor is of
    /// `A`, produce the factor of
    ///
    /// ```text
    /// [ A   w ]
    /// [ wᵀ  d ]
    /// ```
    ///
    /// in Θ(n²) instead of refactorizing at Θ(n³). This is what lets the
    /// sequential BMF estimator absorb one new simulation sample at a
    /// time: the Woodbury core `c⁻¹I + G D⁻¹ Gᵀ` grows exactly this way
    /// per sample.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] when `w.len() != self.dim()`.
    /// * [`LinalgError::NonFinite`] when `w` or `d` contain NaN or ±∞ —
    ///   screened up front so contaminated inputs are not misreported as
    ///   a loss of positive definiteness (NaN slips through the `s <= 0`
    ///   pivot check).
    /// * [`LinalgError::NotPositiveDefinite`] when the extended matrix is
    ///   not positive definite.
    pub fn extend(&mut self, w: &Vector, d: f64) -> Result<()> {
        let n = self.dim();
        if w.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky extend",
                lhs: (n, n),
                rhs: (w.len(), 1),
            });
        }
        if !d.is_finite() || !w.is_finite() {
            return Err(LinalgError::NonFinite {
                op: "cholesky extend",
            });
        }
        // New row l satisfies L l = w; new diagonal sqrt(d - l·l).
        let l_row = crate::triangular::solve_lower(&self.l, w)?;
        let s = d - l_row.dot(&l_row)?;
        if s <= 0.0 {
            return Err(LinalgError::NotPositiveDefinite { pivot: n, value: s });
        }
        let mut bigger = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            for j in 0..=i {
                bigger[(i, j)] = self.l[(i, j)];
            }
        }
        for j in 0..n {
            bigger[(n, j)] = l_row[j];
        }
        bigger[(n, n)] = s.sqrt();
        self.l = bigger;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = Bᵀ B + I with a fixed B, guaranteed SPD.
        let b = Matrix::from_rows(&[&[1.0, 2.0, 0.0], &[0.0, 1.0, 1.0], &[1.0, 0.0, 1.0]]).unwrap();
        let mut a = b.gram();
        a.add_diagonal_mut(&[1.0, 1.0, 1.0]).unwrap();
        a
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd3();
        let chol = a.cholesky().unwrap();
        let l = chol.factor();
        let rec = l.matmul(&l.transpose()).unwrap();
        assert!(rec.sub(&a).unwrap().norm_frobenius() < 1e-12);
    }

    #[test]
    fn solve_satisfies_system() {
        let a = spd3();
        let b = Vector::from(vec![1.0, -1.0, 2.0]);
        let x = a.cholesky().unwrap().solve(&b).unwrap();
        let r = a.matvec(&x).unwrap().sub(&b).unwrap();
        assert!(r.norm2() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd3();
        let inv = a.cholesky().unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.sub(&Matrix::identity(3)).unwrap().norm_frobenius() < 1e-10);
    }

    #[test]
    fn log_det_matches_2x2_closed_form() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
        let det: f64 = 4.0 * 3.0 - 2.0 * 2.0;
        let chol = a.cholesky().unwrap();
        assert!((chol.log_det() - det.ln()).abs() < 1e-12);
    }

    #[test]
    fn indefinite_matrix_is_rejected_with_pivot() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        match a.cholesky() {
            Err(LinalgError::NotPositiveDefinite { pivot, value }) => {
                assert_eq!(pivot, 1);
                assert!(value <= 0.0);
            }
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn non_square_rejected() {
        assert!(matches!(
            Cholesky::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn nan_rejected() {
        let mut a = Matrix::identity(2);
        a[(0, 0)] = f64::NAN;
        assert!(matches!(a.cholesky(), Err(LinalgError::NonFinite { .. })));
    }

    #[test]
    fn upper_triangle_is_ignored() {
        // Only the lower triangle should be read.
        let mut a = spd3();
        a[(0, 2)] = 777.0;
        let mut sym = spd3();
        sym[(0, 2)] = sym[(2, 0)];
        let l1 = a.cholesky().unwrap();
        let l2 = sym.cholesky().unwrap();
        assert!(l1.factor().sub(l2.factor()).unwrap().norm_frobenius().abs() < 1e-14);
    }

    #[test]
    fn extend_matches_full_factorization() {
        // Build a 4x4 SPD matrix, factor the 3x3 leading block, extend.
        let b = Matrix::from_rows(&[
            &[1.0, 0.5, 0.0, 0.2],
            &[0.0, 1.0, 0.7, -0.4],
            &[0.3, 0.0, 1.0, 0.6],
            &[0.1, 0.2, 0.0, 1.0],
            &[0.0, 0.1, 0.2, 0.3],
        ])
        .unwrap();
        let mut a = b.gram();
        a.add_diagonal_mut(&[0.5; 4]).unwrap();

        let a3 = Matrix::from_fn(3, 3, |i, j| a[(i, j)]);
        let mut chol = a3.cholesky().unwrap();
        let w = Vector::from(vec![a[(0, 3)], a[(1, 3)], a[(2, 3)]]);
        chol.extend(&w, a[(3, 3)]).unwrap();

        let full = a.cholesky().unwrap();
        let diff = chol.factor().sub(full.factor()).unwrap().norm_frobenius();
        assert!(diff < 1e-12, "extended factor differs: {diff}");
    }

    #[test]
    fn extend_rejects_indefinite_growth() {
        let mut chol = Matrix::identity(2).cholesky().unwrap();
        // Appending w = (2, 0), d = 1 gives a matrix with negative Schur
        // complement (1 - 4 < 0).
        assert!(matches!(
            chol.extend(&Vector::from(vec![2.0, 0.0]), 1.0),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn extend_screens_non_finite_inputs() {
        // Regression: a NaN-contaminated update used to fall through the
        // `s <= 0.0` pivot check (NaN compares false) and be stored as a
        // NaN diagonal — or, with d = -inf, be reported as
        // NotPositiveDefinite, masking the real cause.
        let mut chol = Matrix::identity(2).cholesky().unwrap();
        assert!(matches!(
            chol.extend(&Vector::from(vec![f64::NAN, 0.0]), 1.0),
            Err(LinalgError::NonFinite {
                op: "cholesky extend"
            })
        ));
        assert!(matches!(
            chol.extend(&Vector::from(vec![0.0, 0.0]), f64::NAN),
            Err(LinalgError::NonFinite { .. })
        ));
        assert!(matches!(
            chol.extend(&Vector::from(vec![0.0, 0.0]), f64::NEG_INFINITY),
            Err(LinalgError::NonFinite { .. })
        ));
        // The factor must be untouched by the rejected updates.
        assert_eq!(chol.dim(), 2);
        chol.extend(&Vector::from(vec![0.5, 0.0]), 2.0).unwrap();
        assert_eq!(chol.dim(), 3);
    }

    #[test]
    fn extend_validates_dimension() {
        let mut chol = Matrix::identity(2).cholesky().unwrap();
        assert!(chol.extend(&Vector::zeros(3), 1.0).is_err());
    }

    #[test]
    fn solve_matrix_solves_each_column() {
        let a = spd3();
        let chol = a.cholesky().unwrap();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let x = chol.solve_matrix(&b).unwrap();
        let r = a.matmul(&x).unwrap().sub(&b).unwrap();
        assert!(r.norm_frobenius() < 1e-11);
    }
}
