//! Solver degradation ladder: Cholesky → jittered Cholesky → pivoted LU.
//!
//! The BMF fitting stack solves symmetric (semi-)definite systems whose
//! conditioning is controlled by data the library does not choose: tiny
//! early-stage coefficients blow up prior precisions, rank-deficient design
//! matrices make the Gram term singular, and duplicated samples collapse
//! pivots to rounding noise. Rather than erroring at the first failed
//! factorization, the ladder retries with a bounded geometric ridge and
//! finally falls back to pivoted LU, reporting exactly how far it had to
//! escalate:
//!
//! * **Rung 0** — plain Cholesky (or plain LU for indefinite systems).
//!   Accepted whenever the factorization succeeds, so inputs that solved
//!   before the ladder existed produce bit-identical results.
//! * **Rungs 1..=J** — restore the matrix and retry with a ridge
//!   `initial_ridge_rel · scale · growth^(rung-1)` added to the diagonal,
//!   where `scale` is the mean absolute diagonal of the original matrix.
//! * **Final rung** — pivoted LU on the *un-ridged* matrix, accepted only
//!   when the reciprocal-condition estimate clears
//!   [`LadderPolicy::rcond_floor`]; otherwise the system is declared
//!   [`LinalgError::Unsolvable`].
//!
//! Any rung above 0 is a *degraded* solve: the caller gets an answer to a
//! deliberately perturbed (or less numerically stable) problem, and the
//! returned [`Resilience`] records the rung, the ridge actually added, and
//! the reciprocal-condition estimate of the accepted factorization.
//!
//! The ladder never escalates on [`LinalgError::NonFinite`]: jitter cannot
//! repair NaN/∞ inputs, so those propagate unchanged.

use crate::cholesky::cholesky_in_place;
use crate::lu::{lu_factor_in_place, lu_solve_into};
use crate::triangular::{solve_lower_in_place, solve_lower_transpose_in_place};
use crate::{LinalgError, Matrix, Result};

/// Tuning knobs for the degradation ladder.
///
/// The defaults span ridges from `1e-10·scale` to `1e-3·scale` over seven
/// jitter rungs — wide enough to rescue rounding-level indefiniteness at
/// rung 1 while keeping the worst-case perturbation visible in the report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LadderPolicy {
    /// Number of jittered-Cholesky rungs tried before falling back to LU.
    pub max_jitter_rungs: u32,
    /// First ridge, relative to the mean absolute diagonal of the matrix.
    pub initial_ridge_rel: f64,
    /// Geometric growth factor between consecutive jitter rungs.
    pub ridge_growth: f64,
    /// Minimum reciprocal-condition estimate for the final LU rung to be
    /// accepted instead of reporting [`LinalgError::Unsolvable`].
    pub rcond_floor: f64,
}

impl Default for LadderPolicy {
    fn default() -> Self {
        LadderPolicy {
            max_jitter_rungs: 7,
            initial_ridge_rel: 1e-10,
            ridge_growth: 10.0,
            rcond_floor: 1e-14,
        }
    }
}

/// How one ladder invocation resolved: the rung accepted, the ridge added
/// to the diagonal (0 unless a jitter rung won), and a cheap
/// reciprocal-condition estimate of the accepted factorization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resilience {
    /// Ladder rung that produced the accepted factorization: 0 for the
    /// plain factorization, `1..=max_jitter_rungs` for jittered Cholesky,
    /// `max_jitter_rungs + 1` for the LU fallback.
    pub rung: u32,
    /// Ridge actually added to the diagonal (absolute, not relative).
    pub ridge: f64,
    /// Reciprocal-condition estimate from the factor diagonal:
    /// `(min/max L_ii)²` for Cholesky, `min/max |U_ii|` for LU.
    pub rcond: f64,
    /// Whether the SPD ladder fell all the way through to pivoted LU.
    pub lu_fallback: bool,
}

impl Default for Resilience {
    fn default() -> Self {
        Resilience::clean(1.0)
    }
}

impl Resilience {
    /// A rung-0 outcome with the given reciprocal-condition estimate.
    pub fn clean(rcond: f64) -> Self {
        Resilience {
            rung: 0,
            ridge: 0.0,
            rcond,
            lu_fallback: false,
        }
    }

    /// True when any rung above 0 was needed (the solve is approximate or
    /// numerically less stable than the clean path).
    pub fn is_degraded(&self) -> bool {
        self.rung > 0
    }

    /// Pointwise worst case of two outcomes: max rung/ridge, min rcond.
    /// Used to aggregate per-solve outcomes into per-fit reports.
    pub fn worst(self, other: Resilience) -> Resilience {
        Resilience {
            rung: self.rung.max(other.rung),
            ridge: self.ridge.max(other.ridge),
            rcond: self.rcond.min(other.rcond),
            lu_fallback: self.lu_fallback || other.lu_fallback,
        }
    }
}

/// Which factorization the ladder settled on, deciding how the packed
/// factor must be solved against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactorKind {
    /// Lower-triangular Cholesky factor; solve via two triangular sweeps.
    Cholesky,
    /// Packed LU with row permutation; solve via [`lu_solve_into`].
    Lu,
}

/// Reusable scratch for the ladder: a snapshot of the matrix for retries
/// and a right-hand-side buffer for the LU in-place solve.
#[derive(Debug, Default, Clone)]
pub struct LadderScratch {
    backup: Vec<f64>,
    rhs: Vec<f64>,
}

impl LadderScratch {
    /// Creates an empty scratch; buffers grow on first use and are reused
    /// across invocations.
    pub fn new() -> Self {
        LadderScratch::default()
    }
}

/// Reciprocal-condition estimate of an SPD matrix from its Cholesky factor:
/// `(min L_ii / max L_ii)²`. Cheap (reads the diagonal) and adequate for
/// reporting; not a substitute for a true condition number.
pub fn rcond_from_cholesky(l: &Matrix) -> f64 {
    diag_ratio(l).powi(2)
}

/// Reciprocal-condition estimate from packed LU factors:
/// `min |U_ii| / max |U_ii|`.
pub fn rcond_from_lu(lu: &Matrix) -> f64 {
    diag_ratio(lu)
}

fn diag_ratio(a: &Matrix) -> f64 {
    let n = a.nrows();
    if n == 0 {
        return 1.0;
    }
    let mut min = f64::INFINITY;
    let mut max = 0.0f64;
    for i in 0..n {
        let d = a[(i, i)].abs();
        min = min.min(d);
        max = max.max(d);
    }
    if crate::fp::is_exact_zero(max) {
        0.0
    } else {
        min / max
    }
}

fn snapshot(a: &Matrix, scratch: &mut LadderScratch) {
    scratch.backup.clear();
    scratch.backup.extend_from_slice(a.as_slice());
}

fn restore(a: &mut Matrix, scratch: &LadderScratch) {
    a.as_mut_slice().copy_from_slice(&scratch.backup);
}

/// Mean absolute diagonal of the snapshot, the ridge scale. Falls back to
/// 1.0 for an all-zero diagonal so the ridge is still nonzero.
fn ridge_scale(scratch: &LadderScratch, n: usize) -> f64 {
    let mut acc = 0.0;
    for i in 0..n {
        acc += scratch.backup[i * n + i].abs();
    }
    let mean = acc / n as f64;
    if mean > 0.0 && mean.is_finite() {
        mean
    } else {
        1.0
    }
}

/// Adds `ridge` to the diagonal of `a`.
fn add_ridge(a: &mut Matrix, ridge: f64) {
    let n = a.nrows();
    for i in 0..n {
        a[(i, i)] += ridge;
    }
}

/// Factorizes the symmetric positive (semi-)definite matrix `a` in place,
/// climbing the degradation ladder as needed. On success `a` holds either
/// a Cholesky factor or packed LU factors (see the returned
/// [`FactorKind`]); solve against it with [`ladder_solve_in_place`].
///
/// Rung 0 calls [`cholesky_in_place`] on the unmodified matrix, so inputs
/// that factorize cleanly behave bit-identically to the pre-ladder path.
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] / [`LinalgError::NonFinite`] — invalid
///   input; the ladder does not escalate on these.
/// * [`LinalgError::Unsolvable`] — every rung failed, or the final LU
///   factorization's reciprocal-condition estimate fell below
///   [`LadderPolicy::rcond_floor`].
pub fn factor_spd_ladder(
    a: &mut Matrix,
    perm: &mut Vec<usize>,
    scratch: &mut LadderScratch,
    policy: &LadderPolicy,
) -> Result<(FactorKind, Resilience)> {
    let (n, c) = a.shape();
    if n != c {
        return Err(LinalgError::NotSquare { rows: n, cols: c });
    }
    snapshot(a, scratch);
    match cholesky_in_place(a) {
        Ok(()) => {
            let rcond = rcond_from_cholesky(a);
            return Ok((FactorKind::Cholesky, Resilience::clean(rcond)));
        }
        Err(LinalgError::NotPositiveDefinite { .. }) => {}
        Err(e) => return Err(e),
    }
    if n > 0 {
        let scale = ridge_scale(scratch, n);
        let mut ridge = policy.initial_ridge_rel * scale;
        for rung in 1..=policy.max_jitter_rungs {
            restore(a, scratch);
            add_ridge(a, ridge);
            match cholesky_in_place(a) {
                Ok(()) => {
                    let rcond = rcond_from_cholesky(a);
                    return Ok((
                        FactorKind::Cholesky,
                        Resilience {
                            rung,
                            ridge,
                            rcond,
                            lu_fallback: false,
                        },
                    ));
                }
                Err(LinalgError::NotPositiveDefinite { .. }) => ridge *= policy.ridge_growth,
                Err(e) => return Err(e),
            }
        }
    }
    // Final rung: pivoted LU on the un-ridged matrix, gated on a
    // pivot-condition check so garbage factors are not silently accepted.
    restore(a, scratch);
    let lu_rung = policy.max_jitter_rungs + 1;
    match lu_factor_in_place(a, perm) {
        Ok(_sign) => {
            let rcond = rcond_from_lu(a);
            if rcond >= policy.rcond_floor {
                Ok((
                    FactorKind::Lu,
                    Resilience {
                        rung: lu_rung,
                        ridge: 0.0,
                        rcond,
                        lu_fallback: true,
                    },
                ))
            } else {
                Err(LinalgError::Unsolvable {
                    op: "spd ladder",
                    rcond,
                })
            }
        }
        Err(LinalgError::Singular { .. }) => Err(LinalgError::Unsolvable {
            op: "spd ladder",
            rcond: 0.0,
        }),
        Err(e) => Err(e),
    }
}

/// LU-based ladder for square systems that are indefinite by construction
/// (the augmented missing-prior systems of §IV-B): rung 0 is plain pivoted
/// LU; rungs `1..=max_jitter_rungs` retry with a geometric diagonal ridge.
/// The factor in `a` is always LU — solve with [`lu_solve_into`] against
/// `perm`, or via [`ladder_solve_in_place`] with [`FactorKind::Lu`].
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] / [`LinalgError::NonFinite`] — invalid
///   input; no escalation.
/// * [`LinalgError::Unsolvable`] — singular at every rung.
pub fn factor_lu_ladder(
    a: &mut Matrix,
    perm: &mut Vec<usize>,
    scratch: &mut LadderScratch,
    policy: &LadderPolicy,
) -> Result<Resilience> {
    let (n, c) = a.shape();
    if n != c {
        return Err(LinalgError::NotSquare { rows: n, cols: c });
    }
    snapshot(a, scratch);
    match lu_factor_in_place(a, perm) {
        Ok(_sign) => return Ok(Resilience::clean(rcond_from_lu(a))),
        Err(LinalgError::Singular { .. }) => {}
        Err(e) => return Err(e),
    }
    if n > 0 {
        let scale = ridge_scale(scratch, n);
        let mut ridge = policy.initial_ridge_rel * scale;
        for rung in 1..=policy.max_jitter_rungs {
            restore(a, scratch);
            add_ridge(a, ridge);
            match lu_factor_in_place(a, perm) {
                Ok(_sign) => {
                    return Ok(Resilience {
                        rung,
                        ridge,
                        rcond: rcond_from_lu(a),
                        lu_fallback: false,
                    })
                }
                Err(LinalgError::Singular { .. }) => ridge *= policy.ridge_growth,
                Err(e) => return Err(e),
            }
        }
    }
    Err(LinalgError::Unsolvable {
        op: "lu ladder",
        rcond: 0.0,
    })
}

/// Solves `A x = b` in place against a factor produced by
/// [`factor_spd_ladder`] or [`factor_lu_ladder`], overwriting `x` (which
/// holds `b` on entry) with the solution.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] when `x` (or `perm`, for
/// [`FactorKind::Lu`]) does not match the factor dimension, and
/// [`LinalgError::Singular`] from the triangular sweeps on a zero factor
/// diagonal.
pub fn ladder_solve_in_place(
    kind: FactorKind,
    factor: &Matrix,
    perm: &[usize],
    scratch: &mut LadderScratch,
    x: &mut [f64],
) -> Result<()> {
    match kind {
        FactorKind::Cholesky => {
            solve_lower_in_place(factor, x)?;
            solve_lower_transpose_in_place(factor, x)
        }
        FactorKind::Lu => {
            scratch.rhs.clear();
            scratch.rhs.extend_from_slice(x);
            lu_solve_into(factor, perm, &scratch.rhs, x)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vector;

    fn spd(n: usize) -> Matrix {
        // Diagonally dominant symmetric matrix: strictly positive definite.
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                (n as f64) + 1.0
            } else {
                1.0 / (1.0 + (i as f64 - j as f64).abs())
            }
        })
    }

    #[test]
    fn clean_spd_stays_on_rung_zero_bitwise() {
        let a = spd(5);
        let mut plain = a.clone();
        cholesky_in_place(&mut plain).unwrap();

        let mut laddered = a.clone();
        let mut perm = Vec::new();
        let mut scratch = LadderScratch::new();
        let (kind, res) = factor_spd_ladder(
            &mut laddered,
            &mut perm,
            &mut scratch,
            &LadderPolicy::default(),
        )
        .unwrap();
        assert_eq!(kind, FactorKind::Cholesky);
        assert_eq!(res.rung, 0);
        assert_eq!(res.ridge, 0.0);
        assert!(!res.is_degraded());
        assert!(res.rcond > 0.0 && res.rcond <= 1.0);
        let same = plain
            .as_slice()
            .iter()
            .zip(laddered.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "rung 0 must be bit-identical to plain Cholesky");
    }

    #[test]
    fn singular_psd_rescued_by_jitter_rung() {
        // Rank-1 PSD matrix v vᵀ: Cholesky fails at pivot 1, a tiny ridge
        // restores definiteness.
        let v = [1.0, 2.0, 3.0];
        let mut a = Matrix::from_fn(3, 3, |i, j| v[i] * v[j]);
        let mut perm = Vec::new();
        let mut scratch = LadderScratch::new();
        let (kind, res) =
            factor_spd_ladder(&mut a, &mut perm, &mut scratch, &LadderPolicy::default()).unwrap();
        assert_eq!(kind, FactorKind::Cholesky);
        assert!(res.is_degraded());
        assert!(res.rung >= 1);
        assert!(res.ridge > 0.0);
    }

    #[test]
    fn degraded_solve_has_small_residual_on_consistent_system() {
        // A = B Bᵀ with B 4x2 (rank 2), b = A·x_true is consistent.
        let b_mat =
            Matrix::from_rows(&[&[1.0, 0.5], &[0.0, 1.0], &[2.0, -1.0], &[1.0, 1.0]]).unwrap();
        let a = b_mat.matmul(&b_mat.transpose()).unwrap();
        let x_true = Vector::from(vec![1.0, -2.0, 0.5, 3.0]);
        let rhs = a.matvec(&x_true).unwrap();

        let mut factor = a.clone();
        let mut perm = Vec::new();
        let mut scratch = LadderScratch::new();
        let (kind, res) = factor_spd_ladder(
            &mut factor,
            &mut perm,
            &mut scratch,
            &LadderPolicy::default(),
        )
        .unwrap();
        assert!(res.is_degraded());
        let mut x = rhs.as_slice().to_vec();
        ladder_solve_in_place(kind, &factor, &perm, &mut scratch, &mut x).unwrap();
        let x = Vector::from(x);
        let resid = a.matvec(&x).unwrap().sub(&rhs).unwrap().norm2();
        assert!(
            resid / rhs.norm2() < 1e-6,
            "relative residual {} too large at rung {}",
            resid / rhs.norm2(),
            res.rung
        );
    }

    #[test]
    fn hopeless_matrix_reports_unsolvable() {
        // All-zero matrix: Cholesky and every ridge rung of LU still see a
        // structurally singular system only when the ridge also fails; the
        // zero matrix is rescued by ridge (ridge·I is SPD), so use an
        // asymmetric NaN-free but truly unfactorizable case instead: a
        // matrix whose rows repeat exactly and whose diagonal ridge is
        // cancelled is hard to build — the honest hopeless case for the
        // SPD ladder is one where even LU is singular AND all Cholesky
        // ridges fail. A matrix with a huge negative eigenvalue does it:
        // ridges up to ~1e-3·scale cannot flip -scale.
        let mut a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, -1.0]]).unwrap();
        // LU succeeds on this (it is nonsingular), so it lands on the LU
        // rung rather than Unsolvable.
        let mut perm = Vec::new();
        let mut scratch = LadderScratch::new();
        let (kind, res) =
            factor_spd_ladder(&mut a, &mut perm, &mut scratch, &LadderPolicy::default()).unwrap();
        assert_eq!(kind, FactorKind::Lu);
        assert!(res.lu_fallback);
        assert_eq!(res.rung, LadderPolicy::default().max_jitter_rungs + 1);

        // Truly unsolvable: indefinite AND exactly singular.
        let mut z = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, -1e6]]).unwrap();
        // Make it singular: second row a multiple of the first, with a
        // negative diagonal so no bounded ridge can rescue Cholesky.
        z[(1, 0)] = 1.0;
        z[(1, 1)] = 1.0;
        z[(0, 0)] = -1.0;
        z[(0, 1)] = -1.0;
        let err = factor_spd_ladder(&mut z, &mut perm, &mut scratch, &LadderPolicy::default())
            .unwrap_err();
        assert!(matches!(err, LinalgError::Unsolvable { .. }));
    }

    #[test]
    fn non_finite_input_propagates_without_escalation() {
        let mut a = spd(3);
        a[(1, 1)] = f64::NAN;
        let mut perm = Vec::new();
        let mut scratch = LadderScratch::new();
        let err = factor_spd_ladder(&mut a, &mut perm, &mut scratch, &LadderPolicy::default())
            .unwrap_err();
        assert!(matches!(err, LinalgError::NonFinite { .. }));
    }

    #[test]
    fn lu_ladder_clean_path_matches_plain_lu() {
        let a =
            Matrix::from_rows(&[&[0.0, 2.0, 1.0], &[3.0, 1.0, -1.0], &[1.0, 0.0, 4.0]]).unwrap();
        let mut plain = a.clone();
        let mut plain_perm = Vec::new();
        lu_factor_in_place(&mut plain, &mut plain_perm).unwrap();

        let mut laddered = a.clone();
        let mut perm = Vec::new();
        let mut scratch = LadderScratch::new();
        let res = factor_lu_ladder(
            &mut laddered,
            &mut perm,
            &mut scratch,
            &LadderPolicy::default(),
        )
        .unwrap();
        assert_eq!(res.rung, 0);
        assert_eq!(perm, plain_perm);
        let same = plain
            .as_slice()
            .iter()
            .zip(laddered.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same);
    }

    #[test]
    fn lu_ladder_rescues_exactly_singular_system() {
        // Duplicated rows: exactly singular, a diagonal ridge separates
        // them.
        let mut a =
            Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0], &[0.0, 1.0, 0.0]]).unwrap();
        let mut perm = Vec::new();
        let mut scratch = LadderScratch::new();
        let res =
            factor_lu_ladder(&mut a, &mut perm, &mut scratch, &LadderPolicy::default()).unwrap();
        assert!(res.is_degraded());
        assert!(res.ridge > 0.0);
    }

    #[test]
    fn zero_matrix_lu_ladder_is_degraded_not_unsolvable() {
        // ridge·I is trivially nonsingular, so the ladder reports a
        // degraded solve of the regularized system.
        let mut a = Matrix::zeros(3, 3);
        let mut perm = Vec::new();
        let mut scratch = LadderScratch::new();
        let res =
            factor_lu_ladder(&mut a, &mut perm, &mut scratch, &LadderPolicy::default()).unwrap();
        assert!(res.is_degraded());
    }

    #[test]
    fn worst_aggregates_pointwise() {
        let a = Resilience {
            rung: 2,
            ridge: 1e-8,
            rcond: 1e-3,
            lu_fallback: false,
        };
        let b = Resilience {
            rung: 1,
            ridge: 1e-6,
            rcond: 1e-9,
            lu_fallback: true,
        };
        let w = a.worst(b);
        assert_eq!(w.rung, 2);
        assert_eq!(w.ridge, 1e-6);
        assert_eq!(w.rcond, 1e-9);
        assert!(w.lu_fallback);
    }

    #[test]
    fn empty_matrix_is_clean() {
        let mut a = Matrix::zeros(0, 0);
        let mut perm = Vec::new();
        let mut scratch = LadderScratch::new();
        let (kind, res) =
            factor_spd_ladder(&mut a, &mut perm, &mut scratch, &LadderPolicy::default()).unwrap();
        assert_eq!(kind, FactorKind::Cholesky);
        assert_eq!(res.rung, 0);
    }
}
