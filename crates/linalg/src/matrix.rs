use std::fmt;
use std::ops::{Index, IndexMut};

use crate::view::{self, MatMut, MatRef};
use crate::{Cholesky, LinalgError, Lu, Qr, Result, Vector};

/// A dense row-major matrix of `f64` values.
///
/// The BMF design matrices `G` (eq. 9) are tall-and-thin at the early stage
/// and short-and-wide at the late stage (K ≪ M). `Matrix` stores elements in
/// row-major order so building `G` one simulated sample (row) at a time is
/// contiguous, and provides the Gram products (`GᵀG`, `GAGᵀ`) that the MAP
/// solvers need.
///
/// # Example
///
/// ```
/// use bmf_linalg::{Matrix, Vector};
///
/// # fn main() -> Result<(), bmf_linalg::LinalgError> {
/// let g = Matrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 1.0, -1.0]])?;
/// let x = Vector::from(vec![1.0, 1.0, 1.0]);
/// let y = g.matvec(&x)?;
/// assert_eq!(y.as_slice(), &[3.0, 0.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates an `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a square matrix with `diag` on the diagonal.
    ///
    /// ```
    /// let d = bmf_linalg::Matrix::from_diagonal(&[1.0, 2.0]);
    /// assert_eq!(d[(1, 1)], 2.0);
    /// assert_eq!(d[(0, 1)], 0.0);
    /// ```
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Creates a matrix from a generator function over `(row, col)` indices.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when rows have unequal
    /// lengths, or [`LinalgError::Empty`] when no rows are given.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let first = rows.first().ok_or(LinalgError::Empty { op: "from_rows" })?;
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::DimensionMismatch {
                    op: "from_rows",
                    lhs: (i, cols),
                    rhs: (i, r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix from an owned row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `data.len() != rows *
    /// cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                op: "from_row_major",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrows the row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrows the row-major storage mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Reshapes to `rows × cols` with every element zero, reusing the
    /// existing buffer when its capacity suffices.
    ///
    /// This is the workspace primitive: repeated solves of varying shape
    /// reuse one `Matrix` without reallocating once it has grown to the
    /// largest shape seen.
    pub fn reset_zeros(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Borrows the matrix as an immutable [`MatRef`] view.
    pub fn as_view(&self) -> MatRef<'_> {
        MatRef::from_matrix(self)
    }

    /// Borrows the matrix as a mutable [`MatMut`] view.
    pub fn as_view_mut(&mut self) -> MatMut<'_> {
        MatMut::from_matrix(self)
    }

    /// Borrows the given rows, in order, as a [`MatRef`] view (view row
    /// `i` reads `self.row(rows[i])`) — no elements are copied.
    ///
    /// # Panics
    ///
    /// Panics when any index is out of bounds.
    pub fn rows_view<'a>(&'a self, rows: &'a [usize]) -> MatRef<'a> {
        self.as_view().select_rows(rows)
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.nrows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Borrows row `i` mutably.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.nrows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new [`Vector`].
    ///
    /// # Panics
    ///
    /// Panics when `j >= self.ncols()`.
    pub fn col(&self, j: usize) -> Vector {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        Vector::from_fn(self.rows, |i| self[(i, j)])
    }

    /// Copies the diagonal into a new [`Vector`].
    pub fn diagonal(&self) -> Vector {
        let n = self.rows.min(self.cols);
        Vector::from_fn(n, |i| self[(i, i)])
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `x.len() !=
    /// self.ncols()`.
    pub fn matvec(&self, x: &Vector) -> Result<Vector> {
        let mut out = vec![0.0; self.rows];
        view::matvec_into(self.as_view(), x.as_slice(), &mut out)?;
        Ok(Vector::from(out))
    }

    /// Transposed matrix–vector product `selfᵀ * x`.
    ///
    /// Computed without materializing the transpose.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `x.len() !=
    /// self.nrows()`.
    pub fn matvec_transpose(&self, x: &Vector) -> Result<Vector> {
        let mut out = vec![0.0; self.cols];
        view::matvec_transpose_into(self.as_view(), x.as_slice(), &mut out)?;
        Ok(Vector::from(out))
    }

    /// Matrix product `self * other`.
    ///
    /// Uses the cache-friendly i-k-j loop order on row-major storage.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when inner dimensions
    /// disagree.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(self.rows, other.cols);
        view::matmul_into(self.as_view(), other.as_view(), out.as_view_mut())?;
        Ok(out)
    }

    /// Gram matrix `selfᵀ * self` (always square, symmetric PSD).
    ///
    /// This is the `GᵀG` term of the MAP posterior covariance (eq. 28/31).
    pub fn gram(&self) -> Matrix {
        let m = self.cols;
        let mut out = Matrix::zeros(m, m);
        view::gram_into(self.as_view(), out.as_view_mut())
            // bmf-lint: allow(no-panic-paths) -- shape mismatch is impossible: out is allocated two lines up with matching dims
            .unwrap_or_else(|_| unreachable!("output allocated with matching shape"));
        out
    }

    /// Outer Gram matrix `self * D * selfᵀ` for diagonal `D` given by
    /// `diag` (K × K output for a K × M input).
    ///
    /// This is the `G·A⁻¹·Gᵀ` kernel of the fast solver (eq. 53/56): it
    /// never forms an M × M intermediate.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `diag.len() !=
    /// self.ncols()`.
    pub fn outer_gram_diag(&self, diag: &[f64]) -> Result<Matrix> {
        let mut out = Matrix::zeros(self.rows, self.rows);
        view::outer_gram_diag_into(self.as_view(), diag, out.as_view_mut())?;
        Ok(out)
    }

    /// Returns `self + other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "add",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        // Clone-as-output: the owned wrappers in this file copy the input
        // into the result buffer and update it in place.
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(out)
    }

    /// Returns `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when shapes differ.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "sub",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
        Ok(out)
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale_mut(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Returns a copy scaled by `alpha`.
    pub fn scaled(&self, alpha: f64) -> Matrix {
        let mut out = self.clone();
        out.scale_mut(alpha);
        out
    }

    /// Adds `diag[i]` to each diagonal element in place.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square matrices and
    /// [`LinalgError::DimensionMismatch`] when `diag.len() != n`.
    pub fn add_diagonal_mut(&mut self, diag: &[f64]) -> Result<()> {
        if self.rows != self.cols {
            return Err(LinalgError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        if diag.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "add_diagonal_mut",
                lhs: self.shape(),
                rhs: (diag.len(), 1),
            });
        }
        for (i, &d) in diag.iter().enumerate() {
            self.data[i * self.cols + i] += d;
        }
        Ok(())
    }

    /// Frobenius norm.
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Returns `true` when the matrix is symmetric within `tol` (absolute).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Returns `true` when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Cholesky factorization of an SPD matrix; see [`Cholesky`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] when a pivot is
    /// non-positive, or [`LinalgError::NotSquare`].
    pub fn cholesky(&self) -> Result<Cholesky> {
        Cholesky::new(self)
    }

    /// Partially pivoted LU factorization; see [`Lu`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] or [`LinalgError::NotSquare`].
    pub fn lu(&self) -> Result<Lu> {
        Lu::new(self)
    }

    /// Householder QR factorization; see [`Qr`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for an empty matrix.
    pub fn qr(&self) -> Result<Qr> {
        Qr::new(self)
    }

    /// Extracts the sub-matrix given by the selected column indices.
    ///
    /// Used by OMP to assemble the active-set design matrix.
    ///
    /// # Panics
    ///
    /// Panics when any index is out of bounds.
    pub fn select_columns(&self, indices: &[usize]) -> Matrix {
        Matrix::from_fn(self.rows, indices.len(), |i, j| self[(i, indices[j])])
    }
}

impl Default for Matrix {
    /// An empty 0 × 0 matrix (the initial state of workspace buffers).
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn shape_accessors() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 3);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let r = Matrix::from_rows(&[&[1.0, 2.0], &[1.0]]);
        assert!(matches!(r, Err(LinalgError::DimensionMismatch { .. })));
    }

    #[test]
    fn from_row_major_validates_length() {
        assert!(Matrix::from_row_major(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::from_row_major(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn identity_matvec_is_noop() {
        let x = Vector::from(vec![1.0, -2.0, 3.0]);
        let y = Matrix::identity(3).matvec(&x).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let y = sample().matvec(&Vector::from(vec![1.0, 1.0, 1.0])).unwrap();
        assert_eq!(y.as_slice(), &[6.0, 15.0]);
    }

    #[test]
    fn matvec_transpose_agrees_with_explicit_transpose() {
        let m = sample();
        let x = Vector::from(vec![1.0, -1.0]);
        let a = m.matvec_transpose(&x).unwrap();
        let b = m.transpose().matvec(&x).unwrap();
        for (u, v) in a.iter().zip(b.iter()) {
            assert!((u - v).abs() < 1e-14);
        }
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_rejects_inner_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn gram_equals_explicit_product() {
        let m = sample();
        let g = m.gram();
        let e = m.transpose().matmul(&m).unwrap();
        assert!(g.sub(&e).unwrap().norm_frobenius() < 1e-12);
        assert!(g.is_symmetric(0.0));
    }

    #[test]
    fn outer_gram_diag_equals_explicit_product() {
        let m = sample();
        let d = [2.0, 0.5, 1.0];
        let fast = m.outer_gram_diag(&d).unwrap();
        let explicit = m
            .matmul(&Matrix::from_diagonal(&d))
            .unwrap()
            .matmul(&m.transpose())
            .unwrap();
        assert!(fast.sub(&explicit).unwrap().norm_frobenius() < 1e-12);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn add_sub_scale() {
        let m = sample();
        let two = m.add(&m).unwrap();
        assert_eq!(two, m.scaled(2.0));
        assert_eq!(two.sub(&m).unwrap(), m);
    }

    #[test]
    fn add_diagonal() {
        let mut m = Matrix::identity(2);
        m.add_diagonal_mut(&[1.0, 2.0]).unwrap();
        assert_eq!(m[(0, 0)], 2.0);
        assert_eq!(m[(1, 1)], 3.0);
        assert!(Matrix::zeros(2, 3).add_diagonal_mut(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn col_and_diagonal_extraction() {
        let m = sample();
        assert_eq!(m.col(1).as_slice(), &[2.0, 5.0]);
        assert_eq!(m.diagonal().as_slice(), &[1.0, 5.0]);
    }

    #[test]
    fn select_columns_reorders() {
        let m = sample();
        let s = m.select_columns(&[2, 0]);
        assert_eq!(s.row(0), &[3.0, 1.0]);
        assert_eq!(s.row(1), &[6.0, 4.0]);
    }

    #[test]
    fn symmetric_detection() {
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 5.0]]).unwrap();
        assert!(s.is_symmetric(0.0));
        assert!(!sample().is_symmetric(0.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        sample().row(5);
    }
}
