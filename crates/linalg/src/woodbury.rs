//! Sherman–Morrison–Woodbury solvers for diagonal-plus-low-rank systems.
//!
//! The BMF MAP estimate (eq. 30/35) solves
//!
//! ```text
//! (D + c · GᵀG) x = rhs,        D = diag(d₁ … d_M),  G ∈ ℝ^{K×M},  K ≪ M
//! ```
//!
//! where `D` holds the prior precisions (`σ_m⁻²` in the zero-mean case,
//! `η·α_{E,m}⁻²` in the nonzero-mean case with `c = 1`). A direct solver
//! factorizes the M × M matrix at Θ(M³) cost; the Woodbury identity
//! (eq. 53–58) reduces this to one K × K factorization plus Θ(K²M) work —
//! the paper reports up to 600× speed-ups from exactly this identity, with
//! *no* approximation.
//!
//! Two entry points are provided:
//!
//! * [`solve_diag_plus_gram`] — all prior precisions strictly positive
//!   (the plain §IV-C case, eq. 53/56). Uses a Cholesky-factorized SPD core.
//! * [`solve_diag_plus_gram_semidefinite`] — some precisions exactly zero
//!   (the *missing prior knowledge* case of §IV-B, eq. 50–52, where
//!   `σ_m = +∞` so only `σ_m⁻¹ = 0` enters). Uses an augmented low-rank
//!   update that stays exact; see the function docs for the derivation.

use crate::lu::lu_solve_into;
use crate::resilience::{
    factor_lu_ladder, factor_spd_ladder, ladder_solve_in_place, LadderPolicy, LadderScratch,
    Resilience,
};
use crate::view::{matvec_into, matvec_transpose_into, outer_gram_diag_into, MatRef};
use crate::{Cholesky, LinalgError, Matrix, Result, Vector};

fn validate(prior_precision: &[f64], c: f64, g: MatRef<'_>, rhs: &[f64]) -> Result<()> {
    let (_k, m) = g.shape();
    if prior_precision.len() != m {
        return Err(LinalgError::DimensionMismatch {
            op: "woodbury (precision length vs G cols)",
            lhs: (prior_precision.len(), 1),
            rhs: (m, 1),
        });
    }
    if rhs.len() != m {
        return Err(LinalgError::DimensionMismatch {
            op: "woodbury (rhs length vs G cols)",
            lhs: (rhs.len(), 1),
            rhs: (m, 1),
        });
    }
    if c <= 0.0 || !c.is_finite() {
        return Err(LinalgError::NonFinite { op: "woodbury (c)" });
    }
    if prior_precision.iter().any(|d| !d.is_finite() || *d < 0.0) {
        return Err(LinalgError::NonFinite {
            op: "woodbury (precision)",
        });
    }
    Ok(())
}

/// Solves `(D + c·GᵀG) x = rhs` with `D = diag(prior_precision)` strictly
/// positive, via the Sherman–Morrison–Woodbury identity:
///
/// ```text
/// x = D⁻¹ rhs − D⁻¹ Gᵀ (c⁻¹ I + G D⁻¹ Gᵀ)⁻¹ G D⁻¹ rhs
/// ```
///
/// Exact (up to rounding); never forms an M × M matrix. Cost Θ(K²M + K³)
/// versus Θ(M³) for the direct factorization.
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] on shape violations.
/// * [`LinalgError::NonFinite`] when `c ≤ 0`, any precision is negative, or
///   inputs are not finite.
/// * [`LinalgError::Singular`] when some precision is exactly zero (use
///   [`solve_diag_plus_gram_semidefinite`] for that case).
/// * [`LinalgError::Unsolvable`] if the K × K core cannot be factorized
///   even after the degradation ladder of [`crate::resilience`] (a core
///   that merely loses positive definiteness to rounding is instead
///   solved on a jittered or LU rung and reported as degraded).
///
/// # Example
///
/// ```
/// use bmf_linalg::{woodbury, Matrix, Vector};
///
/// # fn main() -> Result<(), bmf_linalg::LinalgError> {
/// let g = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 1.0, -1.0]])?;
/// let d = vec![1.0, 2.0, 4.0]; // prior precisions
/// let rhs = Vector::from(vec![1.0, 1.0, 1.0]);
/// let x = woodbury::solve_diag_plus_gram(&d, 0.5, &g, &rhs)?;
/// // Verify against the explicit M x M system.
/// let mut h = g.gram().scaled(0.5);
/// h.add_diagonal_mut(&d)?;
/// let direct = h.cholesky()?.solve(&rhs)?;
/// assert!(x.sub(&direct)?.norm2() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn solve_diag_plus_gram(
    prior_precision: &[f64],
    c: f64,
    g: &Matrix,
    rhs: &Vector,
) -> Result<Vector> {
    validate(prior_precision, c, g.as_view(), rhs.as_slice())?;
    if let Some(z) = prior_precision
        .iter()
        .position(|d| crate::fp::is_exact_zero(*d))
    {
        return Err(LinalgError::Singular { pivot: z });
    }
    let mut scratch = WoodburyScratch::new();
    let mut out = vec![0.0; rhs.len()];
    strictly_positive_into(
        prior_precision,
        c,
        g.as_view(),
        rhs.as_slice(),
        &mut scratch,
        &mut out,
    )?;
    Ok(Vector::from(out))
}

/// Reusable scratch buffers for the allocation-free Woodbury solvers.
///
/// A scratch sized once (by its first use at the largest shape) makes
/// every later [`solve_diag_plus_gram_semidefinite_into`] call
/// allocation-free. Buffers are resized per call and every kernel fully
/// overwrites what it reads, so one scratch can serve systems of
/// different shapes in any order.
#[derive(Debug, Clone, Default)]
pub struct WoodburyScratch {
    zeros: Vec<usize>,
    dt_inv: Vec<f64>,
    /// K × K Cholesky core, or the augmented (K+|Z|)² LU system.
    w: Matrix,
    /// Block (1,1) of the augmented system before assembly into `w`.
    b11: Matrix,
    perm: Vec<usize>,
    t: Vec<f64>,
    u: Vec<f64>,
    y: Vec<f64>,
    uy: Vec<f64>,
    /// Degradation-ladder snapshot/rhs buffers (see [`crate::resilience`]).
    ladder: LadderScratch,
}

impl WoodburyScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

fn resize(buf: &mut Vec<f64>, n: usize) {
    buf.clear();
    buf.resize(n, 0.0);
}

/// The strictly-positive Woodbury path of [`solve_diag_plus_gram`],
/// writing into `out` using only `scratch` buffers. Assumes `validate`
/// passed and no precision is zero. The K × K core is factorized through
/// the degradation ladder; the returned [`Resilience`] records which rung
/// was needed (rung 0 on well-posed inputs, bit-identical to plain
/// Cholesky).
fn strictly_positive_into(
    prior_precision: &[f64],
    c: f64,
    g: MatRef<'_>,
    rhs: &[f64],
    ws: &mut WoodburyScratch,
    out: &mut [f64],
) -> Result<Resilience> {
    let (k, m) = g.shape();
    ws.dt_inv.clear();
    ws.dt_inv.extend(prior_precision.iter().map(|d| 1.0 / d));
    // Core c⁻¹I + G D⁻¹ Gᵀ, factorized in place.
    ws.w.reset_zeros(k, k);
    outer_gram_diag_into(g, &ws.dt_inv, ws.w.as_view_mut())?;
    for i in 0..k {
        ws.w[(i, i)] += 1.0 / c;
    }
    let (kind, resilience) = factor_spd_ladder(
        &mut ws.w,
        &mut ws.perm,
        &mut ws.ladder,
        &LadderPolicy::default(),
    )?;
    // t = D⁻¹ rhs
    ws.t.clear();
    ws.t.extend((0..m).map(|i| ws.dt_inv[i] * rhs[i]));
    // y = (core)⁻¹ G t
    resize(&mut ws.y, k);
    matvec_into(g, &ws.t, &mut ws.y)?;
    ladder_solve_in_place(kind, &ws.w, &ws.perm, &mut ws.ladder, &mut ws.y)?;
    // x = t − D⁻¹ Gᵀ y
    resize(&mut ws.uy, m);
    matvec_transpose_into(g, &ws.y, &mut ws.uy)?;
    for (i, o) in out.iter_mut().enumerate() {
        *o = ws.t[i] - ws.dt_inv[i] * ws.uy[i];
    }
    Ok(resilience)
}

/// A pre-factorized Woodbury core for repeated solves against the same
/// `(D, c, G)` triple with different right-hand sides.
///
/// Cross-validation sweeps (§IV-D) solve the same system shape for many
/// hyper-parameter values and folds; when only the right-hand side changes,
/// reusing the factorized K × K core turns each additional solve into
/// Θ(KM) work.
#[derive(Debug, Clone)]
pub struct WoodburyCore {
    d_inv: Vec<f64>,
    chol: Cholesky,
    g: Matrix,
}

impl WoodburyCore {
    /// Builds and factorizes the K × K core `c⁻¹ I + G D⁻¹ Gᵀ`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`solve_diag_plus_gram`].
    pub fn new(prior_precision: &[f64], c: f64, g: &Matrix) -> Result<Self> {
        let (k, _m) = g.shape();
        let d_inv: Vec<f64> = prior_precision.iter().map(|d| 1.0 / d).collect();
        let mut core = g.outer_gram_diag(&d_inv)?;
        core.add_diagonal_mut(&vec![1.0 / c; k])?;
        let chol = core.cholesky()?;
        Ok(WoodburyCore {
            d_inv,
            chol,
            // Owns a copy of G so the factorized core can outlive the
            // caller's borrow (it is stored across repeated solves, e.g.
            // by the sequential estimator). One-shot solves go through
            // the borrow-based `_into` path instead and never copy G.
            g: g.clone(),
        })
    }

    /// Solves `(D + c·GᵀG) x = rhs` using the pre-factorized core.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `rhs.len()` differs
    /// from the number of columns of `G`.
    pub fn solve(&self, rhs: &Vector) -> Result<Vector> {
        let m = self.g.ncols();
        if rhs.len() != m {
            return Err(LinalgError::DimensionMismatch {
                op: "woodbury core solve",
                lhs: (m, 1),
                rhs: (rhs.len(), 1),
            });
        }
        // t = D⁻¹ rhs
        let t = Vector::from_fn(m, |i| self.d_inv[i] * rhs[i]);
        // y = (core)⁻¹ G t
        let gt = self.g.matvec(&t)?;
        let y = self.chol.solve(&gt)?;
        // x = t − D⁻¹ Gᵀ y
        let gty = self.g.matvec_transpose(&y)?;
        Ok(Vector::from_fn(m, |i| t[i] - self.d_inv[i] * gty[i]))
    }
}

/// Solves `(D + c·GᵀG) x = rhs` where some diagonal precisions are exactly
/// zero — the missing-prior-knowledge case of §IV-B.
///
/// # Method
///
/// Let `Z = { m : d_m = 0 }` and `E ∈ ℝ^{M×|Z|}` collect the corresponding
/// identity columns. Pick a positive shift `τ` and write
///
/// ```text
/// H = D̃ + U C Uᵀ,   D̃ = D + τ·E Eᵀ,   U = [Gᵀ | E],
///                    C = blockdiag(c·I_K, −τ·I_{|Z|})
/// ```
///
/// which is an algebraic identity for any `τ > 0`. The Woodbury identity
/// with the (K+|Z|) × (K+|Z|) inner matrix `W = C⁻¹ + Uᵀ D̃⁻¹ U` (factorized
/// by pivoted LU — `W` is indefinite) then yields the exact solution at
/// Θ((K+|Z|)³ + K²M) cost. A well-posed MAP problem has `|Z| ≤ K` (the data
/// must identify the unconstrained coefficients), so this stays within a
/// small constant of the plain fast solver.
///
/// `τ` is chosen as the mean of `c·‖G col‖²` over the zero-precision columns
/// (falling back to 1.0), which keeps `W` well scaled.
///
/// # Errors
///
/// * The shape/validity conditions of [`solve_diag_plus_gram`].
/// * [`LinalgError::Singular`] when the overall system is singular — in
///   particular when more coefficients lack priors than there are samples
///   (`|Z| > K`).
pub fn solve_diag_plus_gram_semidefinite(
    prior_precision: &[f64],
    c: f64,
    g: &Matrix,
    rhs: &Vector,
) -> Result<Vector> {
    let mut scratch = WoodburyScratch::new();
    let mut out = vec![0.0; rhs.len()];
    solve_diag_plus_gram_semidefinite_into(
        prior_precision,
        c,
        g.as_view(),
        rhs.as_slice(),
        &mut scratch,
        &mut out,
    )?;
    Ok(Vector::from(out))
}

/// Allocation-free variant of [`solve_diag_plus_gram_semidefinite`]:
/// reads `G` through a borrowed [`MatRef`] view (which may be a
/// non-contiguous row subset of a larger design matrix), works out of
/// `scratch`, and writes the solution into `out`.
///
/// Bit-identical to the owned entry point — it *is* the implementation
/// the owned entry point wraps. Handles the all-positive case directly
/// (no delegation), so one scratch serves both regimes.
///
/// The inner factorization runs through the degradation ladder of
/// [`crate::resilience`]; the returned [`Resilience`] reports the rung,
/// ridge, and reciprocal-condition estimate (rung 0 with zero ridge on
/// well-posed inputs, bit-identical to the pre-ladder behavior).
///
/// # Errors
///
/// Same conditions as [`solve_diag_plus_gram_semidefinite`], plus
/// [`LinalgError::DimensionMismatch`] when `out.len()` differs from the
/// number of columns of `G`, and [`LinalgError::Unsolvable`] when every
/// ladder rung fails.
pub fn solve_diag_plus_gram_semidefinite_into(
    prior_precision: &[f64],
    c: f64,
    g: MatRef<'_>,
    rhs: &[f64],
    ws: &mut WoodburyScratch,
    out: &mut [f64],
) -> Result<Resilience> {
    validate(prior_precision, c, g, rhs)?;
    let (k, m) = g.shape();
    if out.len() != m {
        return Err(LinalgError::DimensionMismatch {
            op: "woodbury (out length vs G cols)",
            lhs: (out.len(), 1),
            rhs: (m, 1),
        });
    }
    ws.zeros.clear();
    ws.zeros.extend(
        prior_precision
            .iter()
            .enumerate()
            .filter_map(|(i, d)| crate::fp::is_exact_zero(*d).then_some(i)),
    );
    if ws.zeros.is_empty() {
        return strictly_positive_into(prior_precision, c, g, rhs, ws, out);
    }
    let nz = ws.zeros.len();
    if nz > k {
        // More unconstrained coefficients than samples: H is singular.
        return Err(LinalgError::Singular { pivot: ws.zeros[k] });
    }

    // Shift tau: mean of c * column norms over the zero-precision columns.
    let mut tau = 0.0;
    for &z in &ws.zeros {
        let mut s = 0.0;
        for i in 0..k {
            s += g.get(i, z) * g.get(i, z);
        }
        tau += c * s;
    }
    // bmf-lint: allow(no-lossy-cast-in-kernels) -- nz counts zero-precision rows, bounded by M << 2^53, so the cast is exact
    tau /= nz as f64;
    if tau.is_nan() || tau <= 0.0 {
        tau = 1.0;
    }

    // D-tilde inverse.
    ws.dt_inv.clear();
    ws.dt_inv.extend(prior_precision.iter().map(|d| 1.0 / d));
    for &z in &ws.zeros {
        ws.dt_inv[z] = 1.0 / tau;
    }

    // Inner matrix W = C^-1 + U^T Dt^-1 U, size (k + nz).
    let n = k + nz;
    ws.w.reset_zeros(n, n);
    // Block (1,1): c^-1 I + G Dt^-1 G^T.
    ws.b11.reset_zeros(k, k);
    outer_gram_diag_into(g, &ws.dt_inv, ws.b11.as_view_mut())?;
    for i in 0..k {
        for j in 0..k {
            ws.w[(i, j)] = ws.b11[(i, j)] + if i == j { 1.0 / c } else { 0.0 };
        }
    }
    // Block (1,2) and (2,1): G Dt^-1 E  → column z scaled by 1/tau.
    for (jz, &z) in ws.zeros.iter().enumerate() {
        for i in 0..k {
            let v = g.get(i, z) / tau;
            ws.w[(i, k + jz)] = v;
            ws.w[(k + jz, i)] = v;
        }
    }
    // Block (2,2): -tau^-1 I + E^T Dt^-1 E = -1/tau + 1/tau = 0. Left zero.

    // The augmented system is indefinite by construction, so its ladder
    // starts at plain pivoted LU and escalates through diagonal ridges.
    let resilience = factor_lu_ladder(
        &mut ws.w,
        &mut ws.perm,
        &mut ws.ladder,
        &LadderPolicy::default(),
    )?;

    // t = Dt^-1 rhs.
    ws.t.clear();
    ws.t.extend((0..m).map(|i| ws.dt_inv[i] * rhs[i]));
    // u = U^T t : first k entries G t, last nz entries t[z].
    resize(&mut ws.u, n);
    matvec_into(g, &ws.t, &mut ws.u[..k])?;
    for (jz, &z) in ws.zeros.iter().enumerate() {
        ws.u[k + jz] = ws.t[z];
    }
    resize(&mut ws.y, n);
    lu_solve_into(&ws.w, &ws.perm, &ws.u, &mut ws.y)?;
    // Uy = G^T y1 + E y2.
    resize(&mut ws.uy, m);
    matvec_transpose_into(g, &ws.y[..k], &mut ws.uy)?;
    for (jz, &z) in ws.zeros.iter().enumerate() {
        ws.uy[z] += ws.y[k + jz];
    }
    for (i, o) in out.iter_mut().enumerate() {
        *o = ws.t[i] - ws.dt_inv[i] * ws.uy[i];
    }
    Ok(resilience)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random matrix without external dependencies.
    fn pseudo_random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let u = state.wrapping_mul(0x2545F4914F6CDD1D);
            (u >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
    }

    fn direct_solve(d: &[f64], c: f64, g: &Matrix, rhs: &Vector) -> Vector {
        let mut h = g.gram().scaled(c);
        h.add_diagonal_mut(d).unwrap();
        h.lu().unwrap().solve(rhs).unwrap()
    }

    #[test]
    fn matches_direct_solver_positive_priors() {
        let g = pseudo_random_matrix(6, 20, 42);
        let d: Vec<f64> = (0..20).map(|i| 0.5 + 0.1 * i as f64).collect();
        let rhs = Vector::from_fn(20, |i| (i as f64).sin());
        let fast = solve_diag_plus_gram(&d, 2.0, &g, &rhs).unwrap();
        let direct = direct_solve(&d, 2.0, &g, &rhs);
        assert!(fast.sub(&direct).unwrap().norm2() < 1e-9 * direct.norm2().max(1.0));
    }

    #[test]
    fn core_reuse_matches_one_shot() {
        let g = pseudo_random_matrix(4, 12, 7);
        let d: Vec<f64> = (0..12).map(|i| 1.0 + i as f64 * 0.05).collect();
        let core = WoodburyCore::new(&d, 1.5, &g).unwrap();
        for s in 0..3 {
            let rhs = Vector::from_fn(12, |i| ((i + s) as f64).cos());
            let a = core.solve(&rhs).unwrap();
            let b = solve_diag_plus_gram(&d, 1.5, &g, &rhs).unwrap();
            assert!(a.sub(&b).unwrap().norm2() < 1e-12);
        }
    }

    #[test]
    fn zero_precision_rejected_by_strict_solver() {
        let g = pseudo_random_matrix(3, 5, 1);
        let d = vec![1.0, 0.0, 1.0, 1.0, 1.0];
        let rhs = Vector::zeros(5);
        assert!(matches!(
            solve_diag_plus_gram(&d, 1.0, &g, &rhs),
            Err(LinalgError::Singular { pivot: 1 })
        ));
    }

    #[test]
    fn semidefinite_matches_direct_solver() {
        let g = pseudo_random_matrix(8, 15, 99);
        let mut d: Vec<f64> = (0..15).map(|i| 0.8 + 0.05 * i as f64).collect();
        d[3] = 0.0;
        d[10] = 0.0;
        let rhs = Vector::from_fn(15, |i| 1.0 / (1.0 + i as f64));
        let fast = solve_diag_plus_gram_semidefinite(&d, 0.7, &g, &rhs).unwrap();
        let direct = direct_solve(&d, 0.7, &g, &rhs);
        assert!(fast.sub(&direct).unwrap().norm2() < 1e-8 * direct.norm2().max(1.0));
    }

    #[test]
    fn semidefinite_with_no_zeros_delegates() {
        let g = pseudo_random_matrix(3, 6, 5);
        let d = vec![1.0; 6];
        let rhs = Vector::from_fn(6, |i| i as f64);
        let a = solve_diag_plus_gram_semidefinite(&d, 1.0, &g, &rhs).unwrap();
        let b = solve_diag_plus_gram(&d, 1.0, &g, &rhs).unwrap();
        assert!(a.sub(&b).unwrap().norm2() < 1e-14);
    }

    #[test]
    fn too_many_missing_priors_is_singular() {
        let g = pseudo_random_matrix(2, 6, 3);
        let d = vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0]; // 3 zeros > K = 2
        let rhs = Vector::zeros(6);
        assert!(matches!(
            solve_diag_plus_gram_semidefinite(&d, 1.0, &g, &rhs),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn negative_precision_rejected() {
        let g = pseudo_random_matrix(2, 3, 3);
        assert!(solve_diag_plus_gram(&[1.0, -1.0, 1.0], 1.0, &g, &Vector::zeros(3)).is_err());
    }

    #[test]
    fn non_positive_c_rejected() {
        let g = pseudo_random_matrix(2, 3, 3);
        assert!(solve_diag_plus_gram(&[1.0; 3], 0.0, &g, &Vector::zeros(3)).is_err());
        assert!(solve_diag_plus_gram(&[1.0; 3], -1.0, &g, &Vector::zeros(3)).is_err());
    }

    #[test]
    fn wide_underdetermined_regime() {
        // K = 3 samples, M = 40 coefficients: the regime the paper targets.
        let g = pseudo_random_matrix(3, 40, 1234);
        let d: Vec<f64> = (0..40).map(|i| 0.2 + 0.01 * i as f64).collect();
        let rhs = Vector::from_fn(40, |i| ((i * 7 % 11) as f64) / 11.0);
        let fast = solve_diag_plus_gram(&d, 3.0, &g, &rhs).unwrap();
        let direct = direct_solve(&d, 3.0, &g, &rhs);
        assert!(fast.sub(&direct).unwrap().norm2() < 1e-9 * direct.norm2().max(1.0));
    }
}
