//! Forward and backward substitution for triangular systems.
//!
//! These are the inner kernels shared by [`crate::Cholesky`], [`crate::Lu`]
//! and [`crate::Qr`]. Only the relevant triangle of the input matrix is
//! read, so a packed factor stored in a full square matrix works unchanged.

use crate::view::MatRef;
use crate::{LinalgError, Matrix, Result, Vector};

/// Pivots with magnitude below this threshold are treated as exact zeros.
const PIVOT_TOL: f64 = 1e-300;

fn check_square_view(l: MatRef<'_>, len: usize, op: &'static str) -> Result<()> {
    let (r, c) = l.shape();
    if r != c {
        return Err(LinalgError::NotSquare { rows: r, cols: c });
    }
    if len != r {
        return Err(LinalgError::DimensionMismatch {
            op,
            lhs: (r, c),
            rhs: (len, 1),
        });
    }
    Ok(())
}

fn check_square_system(l: &Matrix, len: usize, op: &'static str) -> Result<()> {
    let (r, c) = l.shape();
    if r != c {
        return Err(LinalgError::NotSquare { rows: r, cols: c });
    }
    if len != r {
        return Err(LinalgError::DimensionMismatch {
            op,
            lhs: (r, c),
            rhs: (len, 1),
        });
    }
    Ok(())
}

/// Solves `L x = b` where `L` is lower triangular (forward substitution).
///
/// Only the lower triangle of `l` (including the diagonal) is read.
///
/// # Errors
///
/// Returns [`LinalgError::Singular`] when a diagonal entry is (numerically)
/// zero, [`LinalgError::NotSquare`] or [`LinalgError::DimensionMismatch`] on
/// shape violations.
///
/// ```
/// use bmf_linalg::{solve_lower, Matrix, Vector};
/// # fn main() -> Result<(), bmf_linalg::LinalgError> {
/// let l = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]])?;
/// let x = solve_lower(&l, &Vector::from(vec![4.0, 11.0]))?;
/// assert_eq!(x.as_slice(), &[2.0, 3.0]);
/// # Ok(())
/// # }
/// ```
pub fn solve_lower(l: &Matrix, b: &Vector) -> Result<Vector> {
    // Clone-as-output: the owned wrappers in this file copy `b` into the
    // solution vector and substitute in place.
    let mut x = b.clone();
    solve_lower_in_place(l, x.as_mut_slice())?;
    Ok(x)
}

/// In-place variant of [`solve_lower`]: overwrites `x` (initially `b`)
/// with the solution of `L x = b`, allocating nothing.
///
/// # Errors
///
/// Same conditions as [`solve_lower`]. On error `x` may hold partially
/// substituted values.
pub fn solve_lower_in_place(l: &Matrix, x: &mut [f64]) -> Result<()> {
    check_square_system(l, x.len(), "solve_lower")?;
    solve_lower_view_in_place(l.as_view(), x)
}

/// Borrowed-view variant of [`solve_lower_in_place`]: the factor is any
/// [`MatRef`] (possibly strided, as in a capacity-padded growing factor),
/// and the loop is **bit-identical** to the owned kernel — same
/// subtraction order, same pivot tolerance.
///
/// # Errors
///
/// Same conditions as [`solve_lower`].
pub fn solve_lower_view_in_place(l: MatRef<'_>, x: &mut [f64]) -> Result<()> {
    check_square_view(l, x.len(), "solve_lower")?;
    let n = x.len();
    for i in 0..n {
        let row = l.row(i);
        let mut s = x[i];
        for j in 0..i {
            s -= row[j] * x[j];
        }
        let d = row[i];
        if d.abs() < PIVOT_TOL {
            return Err(LinalgError::Singular { pivot: i });
        }
        x[i] = s / d;
    }
    Ok(())
}

/// Solves `U x = b` where `U` is upper triangular (backward substitution).
///
/// Only the upper triangle of `u` (including the diagonal) is read.
///
/// # Errors
///
/// Returns [`LinalgError::Singular`] when a diagonal entry is (numerically)
/// zero, [`LinalgError::NotSquare`] or [`LinalgError::DimensionMismatch`] on
/// shape violations.
pub fn solve_upper(u: &Matrix, b: &Vector) -> Result<Vector> {
    let mut x = b.clone();
    solve_upper_in_place(u, x.as_mut_slice())?;
    Ok(x)
}

/// In-place variant of [`solve_upper`]: overwrites `x` (initially `b`)
/// with the solution of `U x = b`, allocating nothing.
///
/// # Errors
///
/// Same conditions as [`solve_upper`]. On error `x` may hold partially
/// substituted values.
pub fn solve_upper_in_place(u: &Matrix, x: &mut [f64]) -> Result<()> {
    check_square_system(u, x.len(), "solve_upper")?;
    let n = x.len();
    for i in (0..n).rev() {
        let row = u.row(i);
        let mut s = x[i];
        for j in (i + 1)..n {
            s -= row[j] * x[j];
        }
        let d = row[i];
        if d.abs() < PIVOT_TOL {
            return Err(LinalgError::Singular { pivot: i });
        }
        x[i] = s / d;
    }
    Ok(())
}

/// Solves `Lᵀ x = b` reading only the lower triangle of `l`.
///
/// This avoids materializing the transpose when completing a Cholesky solve
/// (`L Lᵀ x = b` ⇒ forward then transposed-forward substitution).
///
/// # Errors
///
/// Same conditions as [`solve_lower`].
pub fn solve_lower_transpose(l: &Matrix, b: &Vector) -> Result<Vector> {
    let mut x = b.clone();
    solve_lower_transpose_in_place(l, x.as_mut_slice())?;
    Ok(x)
}

/// In-place variant of [`solve_lower_transpose`]: overwrites `x`
/// (initially `b`) with the solution of `Lᵀ x = b`, allocating nothing.
///
/// # Errors
///
/// Same conditions as [`solve_lower_transpose`]. On error `x` may hold
/// partially substituted values.
pub fn solve_lower_transpose_in_place(l: &Matrix, x: &mut [f64]) -> Result<()> {
    check_square_system(l, x.len(), "solve_lower_transpose")?;
    solve_lower_transpose_view_in_place(l.as_view(), x)
}

/// Borrowed-view variant of [`solve_lower_transpose_in_place`]:
/// **bit-identical** to the owned kernel — same subtraction order, same
/// pivot tolerance — over any [`MatRef`] factor.
///
/// # Errors
///
/// Same conditions as [`solve_lower_transpose`].
pub fn solve_lower_transpose_view_in_place(l: MatRef<'_>, x: &mut [f64]) -> Result<()> {
    check_square_view(l, x.len(), "solve_lower_transpose")?;
    let n = x.len();
    for i in (0..n).rev() {
        // Lᵀ[i][j] = L[j][i]; only j >= i contribute.
        let mut s = x[i];
        for (j, &xj) in x.iter().enumerate().skip(i + 1) {
            s -= l.row(j)[i] * xj;
        }
        let d = l.row(i)[i];
        if d.abs() < PIVOT_TOL {
            return Err(LinalgError::Singular { pivot: i });
        }
        x[i] = s / d;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_solve_roundtrip() {
        let l =
            Matrix::from_rows(&[&[2.0, 0.0, 0.0], &[1.0, 1.5, 0.0], &[-1.0, 0.5, 3.0]]).unwrap();
        let x_true = Vector::from(vec![1.0, -2.0, 0.5]);
        let b = l.matvec(&x_true).unwrap();
        let x = solve_lower(&l, &b).unwrap();
        for (a, t) in x.iter().zip(x_true.iter()) {
            assert!((a - t).abs() < 1e-12);
        }
    }

    #[test]
    fn upper_solve_roundtrip() {
        let u =
            Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[0.0, 1.5, 0.5], &[0.0, 0.0, 3.0]]).unwrap();
        let x_true = Vector::from(vec![0.3, 2.0, -1.0]);
        let b = u.matvec(&x_true).unwrap();
        let x = solve_upper(&u, &b).unwrap();
        for (a, t) in x.iter().zip(x_true.iter()) {
            assert!((a - t).abs() < 1e-12);
        }
    }

    #[test]
    fn lower_transpose_matches_explicit_transpose() {
        let l = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 1.5]]).unwrap();
        let b = Vector::from(vec![1.0, 2.0]);
        let a = solve_lower_transpose(&l, &b).unwrap();
        let e = solve_upper(&l.transpose(), &b).unwrap();
        for (u, v) in a.iter().zip(e.iter()) {
            assert!((u - v).abs() < 1e-14);
        }
    }

    #[test]
    fn zero_pivot_is_singular() {
        let l = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]).unwrap();
        assert!(matches!(
            solve_lower(&l, &Vector::zeros(2)),
            Err(LinalgError::Singular { pivot: 0 })
        ));
    }

    #[test]
    fn shape_validation() {
        let l = Matrix::zeros(2, 3);
        assert!(solve_lower(&l, &Vector::zeros(2)).is_err());
        let sq = Matrix::identity(2);
        assert!(solve_upper(&sq, &Vector::zeros(3)).is_err());
    }

    #[test]
    fn upper_triangle_ignored_by_lower_solve() {
        // Garbage above the diagonal must not affect the result.
        let l = Matrix::from_rows(&[&[2.0, 999.0], &[1.0, 3.0]]).unwrap();
        let x = solve_lower(&l, &Vector::from(vec![4.0, 11.0])).unwrap();
        assert_eq!(x.as_slice(), &[2.0, 3.0]);
    }
}
