//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! Used for spectral diagnostics of the MAP system: the condition number
//! of the posterior precision `D + GᵀG` explains when the direct Cholesky
//! solver loses accuracy, and the eigenvalue spectrum of `GᵀG` shows the
//! K-rank structure that the fast solver exploits. Jacobi is slow (Θ(n³)
//! per sweep) but simple, unconditionally stable, and more than adequate
//! for diagnostic use at moderate n.

use crate::{LinalgError, Matrix, Result};

/// Eigendecomposition `A = V · diag(λ) · Vᵀ` of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as matrix columns, matching `values`.
    pub vectors: Matrix,
}

impl SymmetricEigen {
    /// Computes the decomposition of a symmetric matrix using cyclic
    /// Jacobi rotations.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] when `a` is not square.
    /// * [`LinalgError::NonFinite`] when `a` contains NaN/∞ or is not
    ///   symmetric within `1e-8·‖A‖`.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (n, c) = a.shape();
        if n != c {
            return Err(LinalgError::NotSquare { rows: n, cols: c });
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite { op: "eigen" });
        }
        let scale = a.norm_frobenius().max(1.0);
        if !a.is_symmetric(1e-8 * scale) {
            return Err(LinalgError::NonFinite {
                op: "eigen (matrix not symmetric)",
            });
        }
        // Clone-as-output: Jacobi rotations consume the copy in place.
        let mut m = a.clone();
        let mut v = Matrix::identity(n);
        let tol = 1e-14 * scale;
        for _sweep in 0..100 {
            let mut off = 0.0f64;
            for p in 0..n {
                for q in (p + 1)..n {
                    off = off.max(m[(p, q)].abs());
                }
            }
            if off <= tol {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= tol {
                        continue;
                    }
                    let (app, aqq) = (m[(p, p)], m[(q, q)]);
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let cos = 1.0 / (t * t + 1.0).sqrt();
                    let sin = t * cos;
                    // Rotate rows/cols p and q of M.
                    for k in 0..n {
                        let (mkp, mkq) = (m[(k, p)], m[(k, q)]);
                        m[(k, p)] = cos * mkp - sin * mkq;
                        m[(k, q)] = sin * mkp + cos * mkq;
                    }
                    for k in 0..n {
                        let (mpk, mqk) = (m[(p, k)], m[(q, k)]);
                        m[(p, k)] = cos * mpk - sin * mqk;
                        m[(q, k)] = sin * mpk + cos * mqk;
                    }
                    // Accumulate the rotation into V.
                    for k in 0..n {
                        let (vkp, vkq) = (v[(k, p)], v[(k, q)]);
                        v[(k, p)] = cos * vkp - sin * vkq;
                        v[(k, q)] = sin * vkp + cos * vkq;
                    }
                }
            }
        }
        // Sort descending by eigenvalue.
        let mut order: Vec<usize> = (0..n).collect();
        // NaN diagonals (screened upstream) compare Equal: the stable sort
        // keeps their relative order instead of panicking mid-diagnostic.
        order.sort_by(|&i, &j| {
            m[(j, j)]
                .partial_cmp(&m[(i, i)])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let values: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
        let vectors = Matrix::from_fn(n, n, |r, cidx| v[(r, order[cidx])]);
        Ok(SymmetricEigen { values, vectors })
    }

    /// Spectral condition number `λ_max / λ_min` (∞ when `λ_min ≤ 0`).
    pub fn condition_number(&self) -> f64 {
        let max = *self.values.first().unwrap_or(&0.0);
        let min = *self.values.last().unwrap_or(&0.0);
        if min <= 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }

    /// Number of eigenvalues above `threshold` (numerical rank).
    pub fn rank(&self, threshold: f64) -> usize {
        self.values.iter().filter(|&&l| l > threshold).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &SymmetricEigen) -> Matrix {
        let lambda = Matrix::from_diagonal(&e.values);
        let vl = e.vectors.matmul(&lambda).unwrap();
        vl.matmul(&e.vectors.transpose()).unwrap()
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::from_diagonal(&[3.0, 1.0, 2.0]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert_eq!(e.values, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let e = SymmetricEigen::new(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        assert!((e.condition_number() - 3.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_and_orthonormality() {
        let b = Matrix::from_rows(&[
            &[1.0, 0.4, -0.2, 0.0],
            &[0.0, 1.2, 0.3, 0.5],
            &[0.7, 0.0, 0.9, -0.3],
        ])
        .unwrap();
        let a = b.gram(); // symmetric PSD 4x4
        let e = SymmetricEigen::new(&a).unwrap();
        let rec = reconstruct(&e);
        assert!(rec.sub(&a).unwrap().norm_frobenius() < 1e-10);
        // V^T V = I.
        let vtv = e.vectors.gram();
        assert!(vtv.sub(&Matrix::identity(4)).unwrap().norm_frobenius() < 1e-10);
        // Gram matrix of a 3x4: rank 3, one ~zero eigenvalue.
        assert_eq!(e.rank(1e-9), 3);
    }

    #[test]
    fn trace_and_det_invariants() {
        let a =
            Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, -0.2], &[0.5, -0.2, 2.0]]).unwrap();
        let e = SymmetricEigen::new(&a).unwrap();
        let trace: f64 = (0..3).map(|i| a[(i, i)]).sum();
        assert!((e.values.iter().sum::<f64>() - trace).abs() < 1e-10);
        let det = a.lu().unwrap().det();
        let prod: f64 = e.values.iter().product();
        assert!((prod - det).abs() < 1e-9 * det.abs().max(1.0));
    }

    #[test]
    fn asymmetric_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        assert!(SymmetricEigen::new(&a).is_err());
        assert!(SymmetricEigen::new(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn psd_condition_number_of_singular_matrix_is_infinite() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        let e = SymmetricEigen::new(&a).unwrap();
        assert!(e.condition_number().is_infinite());
    }
}
