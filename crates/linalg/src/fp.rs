//! Named floating-point predicates.
//!
//! Bare `x == 0.0` in numerical code is ambiguous: is it a deliberate
//! exact-representation test or a tolerance bug? The workspace's
//! `no-float-eq` lint bans raw float-literal comparisons in library code
//! and points here instead: these predicates *document* that the exact
//! comparison is intended.

/// True when `x` is exactly `±0.0`.
///
/// This is an *exact* bit-level sentinel test, not a tolerance check: the
/// fitting stack uses exact zeros as structural markers (zero-precision
/// prior rows in the §IV-B missing-prior path, unhit pivots, empty
/// column norms), where values merely *near* zero must not match.
/// `NaN` is not zero.
#[inline]
pub fn is_exact_zero(x: f64) -> bool {
    x == 0.0
}

/// True when `x` is anything but exact `±0.0` (including `NaN`).
///
/// The negation of [`is_exact_zero`], named so call sites read as intent
/// rather than as a float-equality hazard.
#[inline]
pub fn is_exact_nonzero(x: f64) -> bool {
    x != 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_zero_semantics() {
        assert!(is_exact_zero(0.0));
        assert!(is_exact_zero(-0.0));
        assert!(!is_exact_zero(f64::MIN_POSITIVE));
        assert!(!is_exact_zero(-1e-300));
        assert!(!is_exact_zero(f64::NAN));
        assert!(is_exact_nonzero(f64::NAN));
        assert!(is_exact_nonzero(1e-300));
        assert!(!is_exact_nonzero(-0.0));
    }
}
