use crate::{LinalgError, Matrix, Result, Vector};

/// LU factorization with partial (row) pivoting: `P A = L U`.
///
/// Used by the mini-SPICE modified-nodal-analysis solver in `bmf-circuits`,
/// whose conductance matrices are square but not symmetric (voltage-source
/// stamps break symmetry).
///
/// # Example
///
/// ```
/// use bmf_linalg::{Matrix, Vector};
///
/// # fn main() -> Result<(), bmf_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[0.0, 2.0], &[3.0, 1.0]])?; // needs pivoting
/// let lu = a.lu()?;
/// let x = lu.solve(&Vector::from(vec![2.0, 4.0]))?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed factors: strictly-lower part holds L (unit diagonal implied),
    /// upper part holds U.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, for determinant computation.
    sign: f64,
}

/// Relative pivot threshold: a pivot smaller than this times the largest
/// absolute entry of the matrix is treated as zero.
const REL_PIVOT_TOL: f64 = 1e-14;

impl Lu {
    /// Factorizes the square matrix `a` with partial pivoting.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] when `a` is not square.
    /// * [`LinalgError::Singular`] when no acceptable pivot exists in some
    ///   column.
    /// * [`LinalgError::NonFinite`] when `a` contains NaN or ±∞.
    pub fn new(a: &Matrix) -> Result<Self> {
        // Clone-as-output: the copy becomes the owned factor storage.
        let mut lu = a.clone();
        let mut perm = Vec::new();
        let sign = lu_factor_in_place(&mut lu, &mut perm)?;
        Ok(Lu { lu, perm, sign })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.lu.nrows()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `b.len()` differs
    /// from the factor dimension.
    pub fn solve(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        let mut x = vec![0.0; n];
        lu_solve_into(&self.lu, &self.perm, b.as_slice(), &mut x)?;
        Ok(Vector::from(x))
    }

    /// Determinant of `A`, as `sign · Π U[i][i]`.
    pub fn det(&self) -> f64 {
        (0..self.dim()).fold(self.sign, |acc, i| acc * self.lu[(i, i)])
    }

    /// Computes `A⁻¹` explicitly by solving against the identity.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Lu::solve`].
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut out = Matrix::zeros(n, n);
        for j in 0..n {
            let e = Vector::from_fn(n, |i| if i == j { 1.0 } else { 0.0 });
            let x = self.solve(&e)?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }
}

/// Overwrites the square matrix `a` with its packed LU factors
/// (strictly-lower `L` with implied unit diagonal, upper `U`), fills
/// `perm` with the row permutation, and returns its sign — allocating
/// nothing beyond growing `perm` to dimension `n` once.
///
/// Bit-identical to [`Lu::new`] on the same input.
///
/// # Errors
///
/// Same conditions as [`Lu::new`]. On error `a` holds a partially
/// eliminated matrix.
pub fn lu_factor_in_place(a: &mut Matrix, perm: &mut Vec<usize>) -> Result<f64> {
    let (n, c) = a.shape();
    if n != c {
        return Err(LinalgError::NotSquare { rows: n, cols: c });
    }
    if !a.is_finite() {
        return Err(LinalgError::NonFinite { op: "lu" });
    }
    let scale = a
        .as_slice()
        .iter()
        .fold(0.0f64, |m, x| m.max(x.abs()))
        .max(1.0);
    let tol = REL_PIVOT_TOL * scale;

    perm.clear();
    perm.extend(0..n);
    let mut sign = 1.0;

    for k in 0..n {
        // Find pivot row.
        let mut p = k;
        let mut best = a[(k, k)].abs();
        for i in (k + 1)..n {
            let v = a[(i, k)].abs();
            if v > best {
                best = v;
                p = i;
            }
        }
        if best < tol {
            return Err(LinalgError::Singular { pivot: k });
        }
        if p != k {
            for j in 0..n {
                let tmp = a[(k, j)];
                a[(k, j)] = a[(p, j)];
                a[(p, j)] = tmp;
            }
            perm.swap(k, p);
            sign = -sign;
        }
        let pivot = a[(k, k)];
        for i in (k + 1)..n {
            let m = a[(i, k)] / pivot;
            a[(i, k)] = m;
            if crate::fp::is_exact_zero(m) {
                continue;
            }
            for j in (k + 1)..n {
                let ukj = a[(k, j)];
                a[(i, j)] -= m * ukj;
            }
        }
    }
    Ok(sign)
}

/// Solves `A x = b` against factors produced by [`lu_factor_in_place`],
/// writing the solution into the caller buffer `x` (fully overwritten).
///
/// Bit-identical to [`Lu::solve`].
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] when `b`, `x`, or `perm`
/// do not match the factor dimension.
pub fn lu_solve_into(lu: &Matrix, perm: &[usize], b: &[f64], x: &mut [f64]) -> Result<()> {
    let n = lu.nrows();
    if b.len() != n || perm.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "lu solve",
            lhs: (n, n),
            rhs: (b.len(), 1),
        });
    }
    if x.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "lu solve (out)",
            lhs: (n, n),
            rhs: (x.len(), 1),
        });
    }
    // Apply permutation, then forward substitution with unit-lower L.
    for (i, o) in x.iter_mut().enumerate() {
        *o = b[perm[i]];
    }
    for i in 0..n {
        let mut s = x[i];
        for j in 0..i {
            s -= lu[(i, j)] * x[j];
        }
        x[i] = s;
    }
    // Backward substitution with U.
    for i in (0..n).rev() {
        let mut s = x[i];
        for j in (i + 1)..n {
            s -= lu[(i, j)] * x[j];
        }
        x[i] = s / lu[(i, i)];
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_recovers_known_solution() {
        let a =
            Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]).unwrap();
        let b = Vector::from(vec![8.0, -11.0, -3.0]);
        let x = a.lu().unwrap().solve(&b).unwrap();
        // Known solution: x = (2, 3, -1).
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = a
            .lu()
            .unwrap()
            .solve(&Vector::from(vec![3.0, 5.0]))
            .unwrap();
        assert_eq!(x.as_slice(), &[5.0, 3.0]);
    }

    #[test]
    fn det_matches_closed_form() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert!((a.lu().unwrap().det() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn det_sign_tracks_permutations() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!((a.lu().unwrap().det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(a.lu(), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = a.lu().unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.sub(&Matrix::identity(2)).unwrap().norm_frobenius() < 1e-12);
    }

    #[test]
    fn non_square_rejected() {
        assert!(matches!(
            Lu::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }
}
