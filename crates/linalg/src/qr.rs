use crate::triangular::solve_upper;
use crate::{LinalgError, Matrix, Result, Vector};

/// Householder QR factorization `A = Q R` for `m × n` matrices with `m ≥ n`.
///
/// QR is the numerically robust way to solve the *overdetermined* design
/// systems of the paper's baselines: classical least-squares fitting (eq. 6)
/// and the active-set refits inside orthogonal matching pursuit. It avoids
/// forming the normal equations `GᵀG`, whose condition number is squared.
///
/// The factorization stores the Householder reflectors in the strict lower
/// trapezoid of the working matrix plus a separate vector of scalar
/// coefficients, LAPACK-`dgeqrf` style; `Q` is only ever applied, never
/// materialized.
///
/// # Example
///
/// ```
/// use bmf_linalg::{Matrix, Vector};
///
/// # fn main() -> Result<(), bmf_linalg::LinalgError> {
/// // Fit y = a + b t through three points in least squares.
/// let g = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]])?;
/// let y = Vector::from(vec![1.0, 3.0, 5.0]);
/// let coeffs = g.qr()?.solve_least_squares(&y)?;
/// assert!((coeffs[0] - 1.0).abs() < 1e-12); // intercept
/// assert!((coeffs[1] - 2.0).abs() < 1e-12); // slope
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    /// Packed reflectors (below diagonal) and R (upper triangle).
    qr: Matrix,
    /// Householder scalars τ, one per reflector.
    tau: Vec<f64>,
}

impl Qr {
    /// Factorizes `a`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Empty`] when `a` has zero rows or columns.
    /// * [`LinalgError::DimensionMismatch`] when `a` has more columns than
    ///   rows (the factorization targets overdetermined systems).
    /// * [`LinalgError::NonFinite`] when `a` contains NaN or ±∞.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::Empty { op: "qr" });
        }
        if m < n {
            return Err(LinalgError::DimensionMismatch {
                op: "qr (requires rows >= cols)",
                lhs: (m, n),
                rhs: (n, n),
            });
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite { op: "qr" });
        }
        // Clone-as-output: the copy becomes the owned factor storage.
        let mut qr = a.clone();
        let mut tau = vec![0.0; n];
        for k in 0..n {
            // Build the Householder reflector annihilating qr[k+1.., k].
            let mut norm2 = 0.0;
            for i in k..m {
                norm2 += qr[(i, k)] * qr[(i, k)];
            }
            let norm = norm2.sqrt();
            if crate::fp::is_exact_zero(norm) {
                tau[k] = 0.0;
                continue;
            }
            let alpha = qr[(k, k)];
            let beta = -alpha.signum() * norm;
            // v = x - beta e1, normalized so v[0] = 1.
            let v0 = alpha - beta;
            tau[k] = -v0 / beta;
            let inv_v0 = 1.0 / v0;
            for i in (k + 1)..m {
                qr[(i, k)] *= inv_v0;
            }
            qr[(k, k)] = beta;
            // Apply the reflector to the trailing columns:
            // A := (I - tau v vᵀ) A.
            for j in (k + 1)..n {
                let mut s = qr[(k, j)];
                for i in (k + 1)..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s *= tau[k];
                qr[(k, j)] -= s;
                for i in (k + 1)..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= s * vik;
                }
            }
        }
        Ok(Qr { qr, tau })
    }

    /// Number of rows of the factorized matrix.
    pub fn nrows(&self) -> usize {
        self.qr.nrows()
    }

    /// Number of columns of the factorized matrix.
    pub fn ncols(&self) -> usize {
        self.qr.ncols()
    }

    /// Applies `Qᵀ` to `b` in place.
    fn apply_q_transpose(&self, b: &mut Vector) {
        let (m, n) = self.qr.shape();
        for k in 0..n {
            if crate::fp::is_exact_zero(self.tau[k]) {
                continue;
            }
            let mut s = b[k];
            for i in (k + 1)..m {
                s += self.qr[(i, k)] * b[i];
            }
            s *= self.tau[k];
            b[k] -= s;
            for i in (k + 1)..m {
                b[i] -= s * self.qr[(i, k)];
            }
        }
    }

    /// Copies out the upper-triangular factor `R` (n × n).
    pub fn r(&self) -> Matrix {
        let n = self.qr.ncols();
        Matrix::from_fn(n, n, |i, j| if j >= i { self.qr[(i, j)] } else { 0.0 })
    }

    /// Solves the least-squares problem `min ‖A x − b‖₂`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] when `b.len() != A.nrows()`.
    /// * [`LinalgError::Singular`] when `A` is (numerically) rank deficient.
    pub fn solve_least_squares(&self, b: &Vector) -> Result<Vector> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                op: "qr solve_least_squares",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        let mut qtb = b.clone();
        self.apply_q_transpose(&mut qtb);
        let head = Vector::from(&qtb.as_slice()[..n]);
        solve_upper(&self.r(), &head)
    }

    /// Squared residual `‖A x − b‖₂²` of the least-squares solution, read
    /// directly from the tail of `Qᵀ b` without recomputing the fit.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `b.len() !=
    /// A.nrows()`.
    pub fn residual_norm2_squared(&self, b: &Vector) -> Result<f64> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                op: "qr residual",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        let mut qtb = b.clone();
        self.apply_q_transpose(&mut qtb);
        Ok(qtb.as_slice()[n..].iter().map(|x| x * x).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r_matches_gram_cholesky() {
        // |R| should equal the Cholesky factor of AᵀA up to column signs.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let r = a.qr().unwrap().r();
        let gram = a.gram();
        let l = gram.cholesky().unwrap();
        let lt = l.factor().transpose();
        for i in 0..2 {
            for j in 0..2 {
                assert!((r[(i, j)].abs() - lt[(i, j)].abs()).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn exact_system_is_solved_exactly() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0], &[0.0, 0.0]]).unwrap();
        let x_true = Vector::from(vec![1.5, -2.0]);
        let b = a.matvec(&x_true).unwrap();
        let x = a.qr().unwrap().solve_least_squares(&b).unwrap();
        for (u, v) in x.iter().zip(x_true.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        let a = Matrix::from_rows(&[
            &[1.0, 0.5, 0.2],
            &[1.0, -1.0, 0.3],
            &[1.0, 2.0, -0.7],
            &[1.0, 0.1, 0.9],
            &[1.0, -0.4, 0.4],
        ])
        .unwrap();
        let b = Vector::from(vec![1.0, 2.0, 0.5, -1.0, 0.3]);
        let x_qr = a.qr().unwrap().solve_least_squares(&b).unwrap();
        // Normal equations via Cholesky.
        let gram = a.gram();
        let rhs = a.matvec_transpose(&b).unwrap();
        let x_ne = gram.cholesky().unwrap().solve(&rhs).unwrap();
        for (u, v) in x_qr.iter().zip(x_ne.iter()) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn residual_matches_explicit_computation() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]).unwrap();
        let b = Vector::from(vec![0.0, 1.0, 0.0]);
        let qr = a.qr().unwrap();
        let x = qr.solve_least_squares(&b).unwrap();
        let r = a.matvec(&x).unwrap().sub(&b).unwrap();
        let explicit = r.dot(&r).unwrap();
        let fast = qr.residual_norm2_squared(&b).unwrap();
        assert!((explicit - fast).abs() < 1e-12);
    }

    #[test]
    fn underdetermined_rejected() {
        assert!(Matrix::zeros(2, 3).qr().is_err());
    }

    #[test]
    fn rank_deficient_detected_at_solve() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        let qr = a.qr().unwrap();
        assert!(matches!(
            qr.solve_least_squares(&Vector::from(vec![1.0, 2.0, 3.0])),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn square_orthogonal_input() {
        // QR of an orthogonal-ish matrix still solves correctly.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = a
            .qr()
            .unwrap()
            .solve_least_squares(&Vector::from(vec![5.0, 7.0]))
            .unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }
}
