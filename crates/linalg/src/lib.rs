//! Self-contained dense linear algebra for the Bayesian Model Fusion
//! reproduction.
//!
//! The BMF paper's MAP estimator reduces to solving symmetric positive
//! definite (SPD) linear systems; its "fast solver" (§IV-C) is the
//! Sherman–Morrison–Woodbury identity applied to a diagonal-plus-low-rank
//! matrix. This crate provides exactly the pieces that pipeline needs,
//! implemented from scratch so the direct-vs-fast solver comparison is
//! apples-to-apples:
//!
//! * [`Matrix`] / [`Vector`] — dense row-major `f64` storage with the usual
//!   BLAS-1/2/3 style operations,
//! * [`Cholesky`] — SPD factorization and solves (the paper's "conventional
//!   solver"),
//! * [`Lu`] — partially pivoted LU for general square systems (used by the
//!   mini-SPICE MNA solver),
//! * [`Qr`] — Householder QR for overdetermined least squares,
//! * [`woodbury`] — the low-rank update solver of eq. (53)–(58).
//!
//! # Example
//!
//! ```
//! use bmf_linalg::{Matrix, Vector};
//!
//! # fn main() -> Result<(), bmf_linalg::LinalgError> {
//! // Solve the SPD system (AᵀA + I) x = b via Cholesky.
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]])?;
//! let spd = a.gram().add(&Matrix::identity(2))?;
//! let chol = spd.cholesky()?;
//! let x = chol.solve(&Vector::from(vec![1.0, 1.0]))?;
//! assert_eq!(x.len(), 2);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod cholesky;
pub mod complex;
pub mod eigen;
mod error;
pub mod fp;
mod lu;
mod matrix;
mod qr;
pub mod resilience;
mod triangular;
pub mod view;
pub mod woodbury;

pub use cholesky::{cholesky_extend_row_into, cholesky_in_place, Cholesky, GrowingCholesky};
pub use eigen::SymmetricEigen;
pub use error::LinalgError;
pub use fp::{is_exact_nonzero, is_exact_zero};
pub use lu::{lu_factor_in_place, lu_solve_into, Lu};
pub use matrix::Matrix;
pub use qr::Qr;
pub use resilience::{
    factor_lu_ladder, factor_spd_ladder, ladder_solve_in_place, FactorKind, LadderPolicy,
    LadderScratch, Resilience,
};
pub use triangular::{
    solve_lower, solve_lower_in_place, solve_lower_transpose, solve_lower_transpose_in_place,
    solve_lower_transpose_view_in_place, solve_lower_view_in_place, solve_upper,
    solve_upper_in_place,
};
pub use vector::Vector;
pub use view::{dot3, MatMut, MatRef, VecMut, VecRef};

mod vector;

/// Convenient result alias for fallible linear-algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;
