//! Borrowed, strided matrix and vector views plus allocation-free kernels.
//!
//! The fitting stack's inner loops (cross-validation sweeps, batch fits)
//! call the same handful of kernels thousands of times on sub-matrices of
//! one shared design matrix. Owned [`Matrix`] operations would copy those
//! sub-matrices and allocate fresh outputs on every call; the types here
//! let callers describe a sub-matrix *by reference* — including a
//! non-contiguous row subset, which is exactly what a cross-validation
//! fold is — and write results into caller-owned buffers.
//!
//! Every `_into` kernel is **bit-identical** to its owned counterpart on
//! [`Matrix`]: same loop order, same skip conditions, same accumulation
//! order. The owned methods are thin wrappers over these kernels, and the
//! property tests in `tests/view_properties.rs` pin the equivalence with
//! `f64::to_bits` comparisons. See DESIGN.md §9 for the memory model.
//!
//! # Aliasing rules
//!
//! All views are plain borrows, so Rust's borrow checker enforces the only
//! rule that matters: an output buffer can never alias an input view.
//! Every `_into` kernel fully overwrites its output (zero-filling first
//! where the owned kernel accumulated into a fresh zero matrix), so stale
//! workspace contents never leak into results.

use crate::{LinalgError, Matrix, Result};

/// An immutable view of a row-major `f64` matrix.
///
/// A view is a `Copy` handle onto storage owned elsewhere: the backing
/// slice, the shape, a row stride, and optionally a row-index table that
/// maps view rows onto backing rows (used for cross-validation folds).
/// Columns are always contiguous within a row, which is the only layout
/// the kernels need.
#[derive(Debug, Clone, Copy)]
pub struct MatRef<'a> {
    data: &'a [f64],
    nrows: usize,
    ncols: usize,
    row_stride: usize,
    /// When present, view row `i` reads backing row `rows[i]`.
    rows: Option<&'a [usize]>,
}

impl<'a> MatRef<'a> {
    /// Views an owned [`Matrix`] (equivalently [`Matrix::as_view`]).
    pub fn from_matrix(m: &'a Matrix) -> Self {
        MatRef {
            data: m.as_slice(),
            nrows: m.nrows(),
            ncols: m.ncols(),
            row_stride: m.ncols(),
            rows: None,
        }
    }

    /// Views a dense row-major slice as an `nrows × ncols` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `data.len() !=
    /// nrows * ncols`.
    pub fn from_row_major(data: &'a [f64], nrows: usize, ncols: usize) -> Result<Self> {
        if data.len() != nrows * ncols {
            return Err(LinalgError::DimensionMismatch {
                op: "MatRef::from_row_major",
                lhs: (nrows, ncols),
                rhs: (data.len(), 1),
            });
        }
        Ok(MatRef {
            data,
            nrows,
            ncols,
            row_stride: ncols,
            rows: None,
        })
    }

    /// Views a strided slice: row `i` occupies
    /// `data[i * row_stride .. i * row_stride + ncols]`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `row_stride <
    /// ncols` or the last row would run past the end of `data`.
    pub fn strided(data: &'a [f64], nrows: usize, ncols: usize, row_stride: usize) -> Result<Self> {
        let span = if nrows == 0 {
            0
        } else {
            (nrows - 1) * row_stride + ncols
        };
        if row_stride < ncols || data.len() < span {
            return Err(LinalgError::DimensionMismatch {
                op: "MatRef::strided",
                lhs: (nrows, row_stride),
                rhs: (data.len(), ncols),
            });
        }
        Ok(MatRef {
            data,
            nrows,
            ncols,
            row_stride,
            rows: None,
        })
    }

    /// Restricts the view to the given backing rows, in order (view row
    /// `i` becomes backing row `rows[i]`). This is how a cross-validation
    /// fold borrows its train/validate sub-matrix without copying.
    ///
    /// # Panics
    ///
    /// Panics when the view already has a row-index table (composing
    /// subsets would need an allocation — take the subset of the dense
    /// parent instead) or when any index is out of bounds.
    pub fn select_rows(self, rows: &'a [usize]) -> MatRef<'a> {
        assert!(
            self.rows.is_none(),
            "select_rows on an already row-indexed view"
        );
        for &r in rows {
            assert!(
                r < self.nrows,
                "row index {r} out of bounds ({})",
                self.nrows
            );
        }
        MatRef {
            data: self.data,
            nrows: rows.len(),
            ncols: self.ncols,
            row_stride: self.row_stride,
            rows: Some(rows),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Borrows row `i` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.nrows()`.
    pub fn row(&self, i: usize) -> &'a [f64] {
        assert!(
            i < self.nrows,
            "row index {i} out of bounds ({})",
            self.nrows
        );
        let r = self.rows.map_or(i, |idx| idx[i]);
        &self.data[r * self.row_stride..r * self.row_stride + self.ncols]
    }

    /// Element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(
            j < self.ncols,
            "col index {j} out of bounds ({})",
            self.ncols
        );
        self.row(i)[j]
    }

    /// Returns `true` when every viewed element is finite.
    pub fn is_finite(&self) -> bool {
        (0..self.nrows).all(|i| self.row(i).iter().all(|x| x.is_finite()))
    }

    /// Copies the viewed elements into an owned [`Matrix`].
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_fn(self.nrows, self.ncols, |i, j| self.row(i)[j])
    }
}

/// A mutable view of a dense row-major `f64` matrix.
///
/// Outputs are always dense (no stride, no row table): kernels write
/// complete results, and the workspace types that own the backing buffers
/// hand them out one kernel call at a time.
#[derive(Debug)]
pub struct MatMut<'a> {
    data: &'a mut [f64],
    nrows: usize,
    ncols: usize,
}

impl<'a> MatMut<'a> {
    /// Mutably views an owned [`Matrix`] (equivalently
    /// [`Matrix::as_view_mut`]).
    pub fn from_matrix(m: &'a mut Matrix) -> Self {
        let (nrows, ncols) = m.shape();
        MatMut {
            data: m.as_mut_slice(),
            nrows,
            ncols,
        }
    }

    /// Mutably views a dense row-major slice as `nrows × ncols`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `data.len() !=
    /// nrows * ncols`.
    pub fn from_slice(data: &'a mut [f64], nrows: usize, ncols: usize) -> Result<Self> {
        if data.len() != nrows * ncols {
            return Err(LinalgError::DimensionMismatch {
                op: "MatMut::from_slice",
                lhs: (nrows, ncols),
                rhs: (data.len(), 1),
            });
        }
        Ok(MatMut { data, nrows, ncols })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Borrows row `i` mutably.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.nrows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(
            i < self.nrows,
            "row index {i} out of bounds ({})",
            self.nrows
        );
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Reborrows as an immutable view.
    pub fn as_ref(&self) -> MatRef<'_> {
        MatRef {
            data: self.data,
            nrows: self.nrows,
            ncols: self.ncols,
            row_stride: self.ncols,
            rows: None,
        }
    }
}

/// An immutable strided vector view.
#[derive(Debug, Clone, Copy)]
pub struct VecRef<'a> {
    data: &'a [f64],
    len: usize,
    stride: usize,
}

impl<'a> VecRef<'a> {
    /// Views a contiguous slice (stride 1).
    pub fn from_slice(data: &'a [f64]) -> Self {
        VecRef {
            len: data.len(),
            data,
            stride: 1,
        }
    }

    /// Views `len` elements spaced `stride` apart: element `i` is
    /// `data[i * stride]`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `stride == 0` or
    /// the last element would run past the end of `data`.
    pub fn strided(data: &'a [f64], len: usize, stride: usize) -> Result<Self> {
        let span = if len == 0 { 0 } else { (len - 1) * stride + 1 };
        if stride == 0 || data.len() < span {
            return Err(LinalgError::DimensionMismatch {
                op: "VecRef::strided",
                lhs: (len, stride),
                rhs: (data.len(), 1),
            });
        }
        Ok(VecRef { data, len, stride })
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Element `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.len()`.
    pub fn get(&self, i: usize) -> f64 {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        self.data[i * self.stride]
    }

    /// Iterates over the viewed elements in order.
    pub fn iter(&self) -> impl Iterator<Item = f64> + 'a {
        let (data, stride) = (self.data, self.stride);
        (0..self.len).map(move |i| data[i * stride])
    }

    /// Dot product, accumulated in index order exactly like
    /// [`crate::Vector::dot`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when lengths differ.
    pub fn dot(&self, other: VecRef<'_>) -> Result<f64> {
        if self.len != other.len {
            return Err(LinalgError::DimensionMismatch {
                op: "dot",
                lhs: (self.len, 1),
                rhs: (other.len, 1),
            });
        }
        Ok(self.iter().zip(other.iter()).map(|(a, b)| a * b).sum())
    }

    /// Euclidean norm, accumulated exactly like [`crate::Vector::norm2`].
    pub fn norm2(&self) -> f64 {
        self.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Copies the viewed elements into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<f64> {
        self.iter().collect()
    }
}

/// A mutable strided vector view.
#[derive(Debug)]
pub struct VecMut<'a> {
    data: &'a mut [f64],
    len: usize,
    stride: usize,
}

impl<'a> VecMut<'a> {
    /// Mutably views a contiguous slice (stride 1).
    pub fn from_slice(data: &'a mut [f64]) -> Self {
        VecMut {
            len: data.len(),
            data,
            stride: 1,
        }
    }

    /// Mutably views `len` elements spaced `stride` apart.
    ///
    /// # Errors
    ///
    /// Same conditions as [`VecRef::strided`].
    pub fn strided(data: &'a mut [f64], len: usize, stride: usize) -> Result<Self> {
        let span = if len == 0 { 0 } else { (len - 1) * stride + 1 };
        if stride == 0 || data.len() < span {
            return Err(LinalgError::DimensionMismatch {
                op: "VecMut::strided",
                lhs: (len, stride),
                rhs: (data.len(), 1),
            });
        }
        Ok(VecMut { data, len, stride })
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Element `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.len()`.
    pub fn get(&self, i: usize) -> f64 {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        self.data[i * self.stride]
    }

    /// Sets element `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.len()`.
    pub fn set(&mut self, i: usize, value: f64) {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        self.data[i * self.stride] = value;
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f64) {
        for i in 0..self.len {
            self.data[i * self.stride] = value;
        }
    }

    /// Copies from `src` element by element.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when lengths differ.
    pub fn copy_from(&mut self, src: VecRef<'_>) -> Result<()> {
        if self.len != src.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "VecMut::copy_from",
                lhs: (self.len, 1),
                rhs: (src.len(), 1),
            });
        }
        for i in 0..self.len {
            self.data[i * self.stride] = src.get(i);
        }
        Ok(())
    }

    /// In-place `self += alpha * x`, elementwise in index order exactly
    /// like [`crate::Vector::axpy`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when lengths differ.
    pub fn axpy(&mut self, alpha: f64, x: VecRef<'_>) -> Result<()> {
        if self.len != x.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "axpy",
                lhs: (self.len, 1),
                rhs: (x.len(), 1),
            });
        }
        for i in 0..self.len {
            self.data[i * self.stride] += alpha * x.get(i);
        }
        Ok(())
    }

    /// Multiplies every element by `alpha`.
    pub fn scale_mut(&mut self, alpha: f64) {
        for i in 0..self.len {
            self.data[i * self.stride] *= alpha;
        }
    }

    /// Reborrows as an immutable view.
    pub fn as_ref(&self) -> VecRef<'_> {
        VecRef {
            data: self.data,
            len: self.len,
            stride: self.stride,
        }
    }
}

/// Matrix–vector product `out = a * x`, writing into a caller buffer.
///
/// Bit-identical to [`Matrix::matvec`]: each output element is the same
/// left-to-right dot-product accumulation.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] when `x.len() != a.ncols()`
/// (op `"matvec"`, matching the owned kernel) or `out.len() !=
/// a.nrows()`.
pub fn matvec_into(a: MatRef<'_>, x: &[f64], out: &mut [f64]) -> Result<()> {
    if x.len() != a.ncols() {
        return Err(LinalgError::DimensionMismatch {
            op: "matvec",
            lhs: a.shape(),
            rhs: (x.len(), 1),
        });
    }
    if out.len() != a.nrows() {
        return Err(LinalgError::DimensionMismatch {
            op: "matvec_into (out)",
            lhs: a.shape(),
            rhs: (out.len(), 1),
        });
    }
    for (i, o) in out.iter_mut().enumerate() {
        *o = a.row(i).iter().zip(x).map(|(p, q)| p * q).sum();
    }
    Ok(())
}

/// Transposed matrix–vector product `out = aᵀ * x`, writing into a caller
/// buffer (fully overwritten: zero-filled before accumulation).
///
/// Bit-identical to [`Matrix::matvec_transpose`], including the
/// skip-zero-row shortcut.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] when `x.len() != a.nrows()`
/// (op `"matvec_transpose"`) or `out.len() != a.ncols()`.
pub fn matvec_transpose_into(a: MatRef<'_>, x: &[f64], out: &mut [f64]) -> Result<()> {
    if x.len() != a.nrows() {
        return Err(LinalgError::DimensionMismatch {
            op: "matvec_transpose",
            lhs: (a.ncols(), a.nrows()),
            rhs: (x.len(), 1),
        });
    }
    if out.len() != a.ncols() {
        return Err(LinalgError::DimensionMismatch {
            op: "matvec_transpose_into (out)",
            lhs: (a.ncols(), a.nrows()),
            rhs: (out.len(), 1),
        });
    }
    out.fill(0.0);
    for (i, &xi) in x.iter().enumerate() {
        if crate::fp::is_exact_zero(xi) {
            continue;
        }
        for (o, &v) in out.iter_mut().zip(a.row(i)) {
            *o += xi * v;
        }
    }
    Ok(())
}

/// Matrix product `out = a * b`, writing into a caller buffer (fully
/// overwritten: zero-filled before accumulation).
///
/// Bit-identical to [`Matrix::matmul`]: same i-k-j loop order and
/// skip-zero shortcut.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] when inner dimensions
/// disagree (op `"matmul"`) or `out` is not `a.nrows() × b.ncols()`.
pub fn matmul_into(a: MatRef<'_>, b: MatRef<'_>, mut out: MatMut<'_>) -> Result<()> {
    if a.ncols() != b.nrows() {
        return Err(LinalgError::DimensionMismatch {
            op: "matmul",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if out.shape() != (a.nrows(), b.ncols()) {
        return Err(LinalgError::DimensionMismatch {
            op: "matmul_into (out)",
            lhs: (a.nrows(), b.ncols()),
            rhs: out.shape(),
        });
    }
    out.fill(0.0);
    for i in 0..a.nrows() {
        let arow = a.row(i);
        for (k, &aik) in arow.iter().enumerate() {
            if crate::fp::is_exact_zero(aik) {
                continue;
            }
            let brow = b.row(k);
            let orow = out.row_mut(i);
            for (o, &v) in orow.iter_mut().zip(brow) {
                *o += aik * v;
            }
        }
    }
    Ok(())
}

/// Gram matrix `out = aᵀ * a`, writing into a caller buffer (fully
/// overwritten: zero-filled before accumulation).
///
/// Bit-identical to [`Matrix::gram`]: row-by-row rank-1 accumulation of
/// the upper triangle, then mirroring.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] when `out` is not
/// `a.ncols() × a.ncols()`.
pub fn gram_into(a: MatRef<'_>, mut out: MatMut<'_>) -> Result<()> {
    let m = a.ncols();
    if out.shape() != (m, m) {
        return Err(LinalgError::DimensionMismatch {
            op: "gram_into (out)",
            lhs: (m, m),
            rhs: out.shape(),
        });
    }
    out.fill(0.0);
    for k in 0..a.nrows() {
        let r = a.row(k);
        for i in 0..m {
            let ri = r[i];
            if crate::fp::is_exact_zero(ri) {
                continue;
            }
            let orow = out.row_mut(i);
            for j in i..m {
                orow[j] += ri * r[j];
            }
        }
    }
    // Mirror the upper triangle.
    for i in 0..m {
        for j in (i + 1)..m {
            let v = out.row_mut(i)[j];
            out.row_mut(j)[i] = v;
        }
    }
    Ok(())
}

/// Outer Gram matrix `out = a * D * aᵀ` for diagonal `D`, writing into a
/// caller buffer (every element written, so no zero-fill is needed).
///
/// Bit-identical to [`Matrix::outer_gram_diag`].
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] when `diag.len() !=
/// a.ncols()` (op `"outer_gram_diag"`) or `out` is not
/// `a.nrows() × a.nrows()`.
pub fn outer_gram_diag_into(a: MatRef<'_>, diag: &[f64], mut out: MatMut<'_>) -> Result<()> {
    if diag.len() != a.ncols() {
        return Err(LinalgError::DimensionMismatch {
            op: "outer_gram_diag",
            lhs: a.shape(),
            rhs: (diag.len(), 1),
        });
    }
    let k = a.nrows();
    if out.shape() != (k, k) {
        return Err(LinalgError::DimensionMismatch {
            op: "outer_gram_diag_into (out)",
            lhs: (k, k),
            rhs: out.shape(),
        });
    }
    for i in 0..k {
        let ri = a.row(i);
        for j in i..k {
            let rj = a.row(j);
            let s = dot3(ri, rj, diag);
            out.row_mut(i)[j] = s;
            out.row_mut(j)[i] = s;
        }
    }
    Ok(())
}

/// Diagonally weighted dot product `Σᵢ a[i]·b[i]·diag[i]`, accumulated
/// left to right with the exact multiply order of
/// [`outer_gram_diag_into`]'s inner loop (of which this is the extracted
/// kernel — one entry of `A·D·Aᵀ`). The sequential fitting engine uses it
/// to grow the Woodbury core one row at a time with entries bit-identical
/// to the batch-assembled matrix.
///
/// Iteration stops at the shortest of the three slices, mirroring the
/// `zip` the matrix kernel has always used; callers screen lengths at
/// their own boundary.
pub fn dot3(a: &[f64], b: &[f64], diag: &[f64]) -> f64 {
    let mut s = 0.0;
    for ((p, q), d) in a.iter().zip(b).zip(diag) {
        s += p * q * d;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]).unwrap()
    }

    #[test]
    fn dense_view_mirrors_matrix() {
        let m = sample();
        let v = m.as_view();
        assert_eq!(v.shape(), (3, 3));
        assert_eq!(v.row(1), m.row(1));
        assert_eq!(v.get(2, 0), 7.0);
        assert_eq!(v.to_matrix(), m);
    }

    #[test]
    fn row_subset_view_resolves_indices() {
        let m = sample();
        let idx = [2usize, 0];
        let v = m.rows_view(&idx);
        assert_eq!(v.shape(), (2, 3));
        assert_eq!(v.row(0), &[7.0, 8.0, 9.0]);
        assert_eq!(v.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn strided_view_skips_columns() {
        // A 2x2 window (first two columns) of a 2x3 buffer.
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let v = MatRef::strided(&data, 2, 2, 3).unwrap();
        assert_eq!(v.row(0), &[1.0, 2.0]);
        assert_eq!(v.row(1), &[4.0, 5.0]);
        assert!(MatRef::strided(&data, 2, 4, 3).is_err());
    }

    #[test]
    fn matvec_into_matches_owned() {
        let m = sample();
        let x = crate::Vector::from(vec![1.0, -1.0, 2.0]);
        let owned = m.matvec(&x).unwrap();
        let mut out = vec![f64::NAN; 3];
        matvec_into(m.as_view(), x.as_slice(), &mut out).unwrap();
        assert_eq!(out, owned.as_slice());
    }

    #[test]
    fn matvec_transpose_into_overwrites_stale_output() {
        let m = sample();
        let x = crate::Vector::from(vec![0.5, 0.0, -1.5]);
        let owned = m.matvec_transpose(&x).unwrap();
        let mut out = vec![f64::NAN; 3];
        matvec_transpose_into(m.as_view(), x.as_slice(), &mut out).unwrap();
        assert_eq!(out, owned.as_slice());
    }

    #[test]
    fn gram_into_on_row_subset_matches_copied_submatrix() {
        let m = sample();
        let idx = [0usize, 2];
        let copied = Matrix::from_fn(2, 3, |i, j| m[(idx[i], j)]);
        let mut out = Matrix::zeros(3, 3);
        gram_into(m.rows_view(&idx), out.as_view_mut()).unwrap();
        assert_eq!(out, copied.gram());
    }

    #[test]
    fn matmul_into_matches_owned() {
        let a = sample();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let owned = a.matmul(&b).unwrap();
        let mut out = Matrix::zeros(3, 2);
        matmul_into(a.as_view(), b.as_view(), out.as_view_mut()).unwrap();
        assert_eq!(out, owned);
    }

    #[test]
    fn outer_gram_diag_into_matches_owned() {
        let m = sample();
        let d = [0.5, 2.0, 1.0];
        let owned = m.outer_gram_diag(&d).unwrap();
        let mut out = Matrix::zeros(3, 3);
        outer_gram_diag_into(m.as_view(), &d, out.as_view_mut()).unwrap();
        assert_eq!(out, owned);
    }

    #[test]
    fn vec_views_stride_and_reduce() {
        let data = [1.0, 9.0, 2.0, 9.0, 3.0];
        let v = VecRef::strided(&data, 3, 2).unwrap();
        assert_eq!(v.to_vec(), vec![1.0, 2.0, 3.0]);
        assert_eq!(v.dot(VecRef::from_slice(&[1.0, 1.0, 1.0])).unwrap(), 6.0);
        assert_eq!(v.norm2(), 14.0f64.sqrt());

        let mut buf = [0.0; 5];
        let mut w = VecMut::strided(&mut buf, 3, 2).unwrap();
        w.copy_from(v).unwrap();
        w.axpy(2.0, VecRef::from_slice(&[1.0, 1.0, 1.0])).unwrap();
        w.scale_mut(0.5);
        assert_eq!(buf, [1.5, 0.0, 2.0, 0.0, 2.5]);
    }

    #[test]
    fn dimension_errors_are_reported() {
        let m = sample();
        let mut out3 = vec![0.0; 3];
        let mut out2 = vec![0.0; 2];
        assert!(matvec_into(m.as_view(), &[1.0; 2], &mut out3).is_err());
        assert!(matvec_into(m.as_view(), &[1.0; 3], &mut out2).is_err());
        let mut bad = Matrix::zeros(2, 2);
        assert!(gram_into(m.as_view(), bad.as_view_mut()).is_err());
        assert!(outer_gram_diag_into(m.as_view(), &[1.0; 2], bad.as_view_mut()).is_err());
    }

    #[test]
    #[should_panic(expected = "already row-indexed")]
    fn nested_row_subsets_panic() {
        let m = sample();
        let idx = [0usize, 1];
        let v = m.rows_view(&idx);
        let _ = v.select_rows(&idx);
    }
}
