//! Netlist construction for the MNA solver.

/// A circuit node. [`Circuit::GND`] is the reference node; all other nodes
/// are created with [`Circuit::node`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Node(pub(crate) usize);

/// A linear circuit element.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// Resistor between two nodes, in ohms.
    Resistor {
        /// First terminal.
        a: Node,
        /// Second terminal.
        b: Node,
        /// Resistance in ohms (must be positive).
        ohms: f64,
    },
    /// Capacitor between two nodes, in farads (open in DC).
    Capacitor {
        /// First terminal.
        a: Node,
        /// Second terminal.
        b: Node,
        /// Capacitance in farads (must be positive).
        farads: f64,
    },
    /// Independent current source driving `amps` from `from` into `to`.
    CurrentSource {
        /// Node the current leaves.
        from: Node,
        /// Node the current enters.
        to: Node,
        /// Source current in amperes.
        amps: f64,
    },
    /// Independent voltage source: `V(plus) − V(minus) = volts`.
    VoltageSource {
        /// Positive terminal.
        plus: Node,
        /// Negative terminal.
        minus: Node,
        /// Source voltage in volts.
        volts: f64,
    },
    /// Voltage-controlled current source: current `gm·(V(cp) − V(cm))`
    /// flows from `from` into `to`. This is the MOSFET small-signal
    /// transconductance stamp.
    Vccs {
        /// Node the controlled current leaves.
        from: Node,
        /// Node the controlled current enters.
        to: Node,
        /// Positive controlling node.
        cp: Node,
        /// Negative controlling node.
        cm: Node,
        /// Transconductance in siemens.
        gm: f64,
    },
}

/// A linear netlist: nodes plus elements, ready for MNA assembly.
///
/// See the [module docs](crate::spice) for an example.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Circuit {
    num_nodes: usize,
    elements: Vec<Element>,
}

impl Circuit {
    /// The ground (reference) node.
    pub const GND: Node = Node(0);

    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        Circuit {
            num_nodes: 1,
            elements: Vec::new(),
        }
    }

    /// Allocates a fresh node.
    pub fn node(&mut self) -> Node {
        let n = Node(self.num_nodes);
        self.num_nodes += 1;
        n
    }

    /// Number of nodes including ground.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The element list, in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Number of independent voltage sources (MNA branch count).
    pub fn num_voltage_sources(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::VoltageSource { .. }))
            .count()
    }

    fn check_node(&self, n: Node) {
        assert!(n.0 < self.num_nodes, "node {} does not exist", n.0);
    }

    /// Adds a resistor.
    ///
    /// # Panics
    ///
    /// Panics when `ohms <= 0` or a node does not belong to this circuit.
    pub fn resistor(&mut self, a: Node, b: Node, ohms: f64) {
        assert!(
            ohms > 0.0 && ohms.is_finite(),
            "resistance must be positive"
        );
        self.check_node(a);
        self.check_node(b);
        self.elements.push(Element::Resistor { a, b, ohms });
    }

    /// Adds a capacitor.
    ///
    /// # Panics
    ///
    /// Panics when `farads <= 0` or a node does not belong to this circuit.
    pub fn capacitor(&mut self, a: Node, b: Node, farads: f64) {
        assert!(
            farads > 0.0 && farads.is_finite(),
            "capacitance must be positive"
        );
        self.check_node(a);
        self.check_node(b);
        self.elements.push(Element::Capacitor { a, b, farads });
    }

    /// Adds an independent current source driving `amps` from `from` into
    /// `to`.
    ///
    /// # Panics
    ///
    /// Panics when a node does not belong to this circuit.
    pub fn current_source(&mut self, from: Node, to: Node, amps: f64) {
        self.check_node(from);
        self.check_node(to);
        self.elements
            .push(Element::CurrentSource { from, to, amps });
    }

    /// Adds an independent voltage source `V(plus) − V(minus) = volts`.
    ///
    /// # Panics
    ///
    /// Panics when a node does not belong to this circuit.
    pub fn voltage_source(&mut self, plus: Node, minus: Node, volts: f64) {
        self.check_node(plus);
        self.check_node(minus);
        self.elements
            .push(Element::VoltageSource { plus, minus, volts });
    }

    /// Adds a voltage-controlled current source (`gm` stamp).
    ///
    /// # Panics
    ///
    /// Panics when a node does not belong to this circuit.
    pub fn vccs(&mut self, from: Node, to: Node, cp: Node, cm: Node, gm: f64) {
        for n in [from, to, cp, cm] {
            self.check_node(n);
        }
        self.elements.push(Element::Vccs {
            from,
            to,
            cp,
            cm,
            gm,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_allocation() {
        let mut c = Circuit::new();
        assert_eq!(c.num_nodes(), 1);
        let a = c.node();
        let b = c.node();
        assert_eq!(a, Node(1));
        assert_eq!(b, Node(2));
        assert_eq!(c.num_nodes(), 3);
    }

    #[test]
    fn element_insertion_and_counts() {
        let mut c = Circuit::new();
        let a = c.node();
        c.resistor(a, Circuit::GND, 100.0);
        c.voltage_source(a, Circuit::GND, 1.0);
        c.current_source(Circuit::GND, a, 1e-3);
        assert_eq!(c.elements().len(), 3);
        assert_eq!(c.num_voltage_sources(), 1);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn foreign_node_rejected() {
        let mut c1 = Circuit::new();
        let mut c2 = Circuit::new();
        let a = c1.node();
        let _ = a;
        // c2 has only ground; Node(1) does not exist there.
        c2.resistor(Node(1), Circuit::GND, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_resistance_rejected() {
        let mut c = Circuit::new();
        let a = c.node();
        c.resistor(a, Circuit::GND, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_capacitance_rejected() {
        let mut c = Circuit::new();
        let a = c.node();
        c.capacitor(a, Circuit::GND, -1e-12);
    }
}
