//! A small linear circuit simulator based on modified nodal analysis.
//!
//! The paper's experiments run a commercial transistor-level simulator;
//! this module is the substitute's analytical core. It covers exactly what
//! the reproduction needs:
//!
//! * [`circuit::Circuit`] — netlist builder for linear elements
//!   (resistors, capacitors, independent current/voltage sources, and
//!   voltage-controlled current sources, which is how MOSFET small-signal
//!   models `gm·v_gs` enter),
//! * [`dc`] — DC operating-point solve via MNA + LU,
//! * [`ac`] — small-signal AC analysis over the complex MNA system
//!   (frequency sweeps, −3 dB bandwidth extraction),
//! * [`tran`] — backward-Euler transient for linear RC networks,
//! * [`elmore`] — Elmore delay of RC trees, used for parasitic
//!   interconnect delay in the post-layout models.
//!
//! # Example — voltage divider
//!
//! ```
//! use bmf_circuits::spice::circuit::Circuit;
//! use bmf_circuits::spice::dc::solve_dc;
//!
//! let mut c = Circuit::new();
//! let vin = c.node();
//! let vout = c.node();
//! c.voltage_source(vin, Circuit::GND, 2.0);
//! c.resistor(vin, vout, 1_000.0);
//! c.resistor(vout, Circuit::GND, 1_000.0);
//! let sol = solve_dc(&c).unwrap();
//! assert!((sol.voltage(vout) - 1.0).abs() < 1e-9);
//! ```

pub mod ac;
pub mod circuit;
pub mod dc;
pub mod elmore;
pub mod mosfet;
pub mod tran;
