//! Nonlinear DC analysis with square-law MOSFETs (Newton–Raphson).
//!
//! The linear MNA solver covers small-signal work; large-signal operating
//! points (bias currents, inverter thresholds, the diode-connected loads
//! of real analog stages) need device nonlinearity. This module adds a
//! level-1 (square-law) MOSFET model and a Newton–Raphson DC solver that
//! relinearizes every device each iteration — the textbook SPICE
//! algorithm, built on the same MNA stamps and LU factorization as the
//! linear analyses.

use bmf_linalg::{LinalgError, Matrix, Vector};

use super::circuit::{Circuit, Element, Node};
use super::dc::stamp_conductance;

/// MOSFET polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polarity {
    /// N-channel: conducts for `v_gs > v_th`.
    Nmos,
    /// P-channel: conducts for `v_gs < −v_th` (model `v_th` given
    /// positive).
    Pmos,
}

/// Square-law (SPICE level-1) MOSFET parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosfetModel {
    /// Polarity.
    pub polarity: Polarity,
    /// Threshold voltage magnitude, volts.
    pub vth: f64,
    /// Transconductance parameter `k = µ·C_ox·W/L`, A/V².
    pub k: f64,
    /// Channel-length modulation, 1/V.
    pub lambda: f64,
}

impl MosfetModel {
    /// An NMOS with the given threshold and k.
    pub fn nmos(vth: f64, k: f64) -> Self {
        MosfetModel {
            polarity: Polarity::Nmos,
            vth,
            k,
            lambda: 0.02,
        }
    }

    /// A PMOS with the given threshold magnitude and k.
    pub fn pmos(vth: f64, k: f64) -> Self {
        MosfetModel {
            polarity: Polarity::Pmos,
            vth,
            k,
            lambda: 0.02,
        }
    }

    /// Drain current and partial derivatives `(i_d, g_m, g_ds)` at the
    /// given terminal voltages (drain/gate/source potentials).
    ///
    /// Current flows drain→source for NMOS (source→drain for PMOS).
    pub fn evaluate(&self, vd: f64, vg: f64, vs: f64) -> (f64, f64, f64) {
        // Fold PMOS onto the NMOS equations by sign reversal.
        let sign = match self.polarity {
            Polarity::Nmos => 1.0,
            Polarity::Pmos => -1.0,
        };
        let vgs = sign * (vg - vs);
        let vds = sign * (vd - vs);
        let vov = vgs - self.vth;
        // Minimum conductance keeps the Jacobian nonsingular in cutoff.
        const G_MIN: f64 = 1e-12;
        if vov <= 0.0 {
            return (sign * G_MIN * vds, 0.0, G_MIN);
        }
        let (id, gm, gds) = if vds < vov {
            // Triode.
            let id = self.k * (vov * vds - 0.5 * vds * vds);
            let gm = self.k * vds;
            let gds = self.k * (vov - vds) + G_MIN;
            (id, gm, gds)
        } else {
            // Saturation with channel-length modulation.
            let id0 = 0.5 * self.k * vov * vov;
            let id = id0 * (1.0 + self.lambda * vds);
            let gm = self.k * vov * (1.0 + self.lambda * vds);
            let gds = id0 * self.lambda + G_MIN;
            (id, gm, gds)
        };
        (sign * id, gm, gds)
    }
}

/// A MOSFET instance in a nonlinear netlist.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mosfet {
    /// Drain node.
    pub drain: Node,
    /// Gate node.
    pub gate: Node,
    /// Source node.
    pub source: Node,
    /// Device model.
    pub model: MosfetModel,
}

/// A netlist of linear elements plus MOSFETs, solved by Newton–Raphson.
#[derive(Debug, Clone, Default)]
pub struct NonlinearCircuit {
    /// The linear part (resistors, sources, …).
    pub linear: Circuit,
    /// The MOSFET devices.
    pub mosfets: Vec<Mosfet>,
}

/// Newton iteration controls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Maximum iterations before declaring non-convergence.
    pub max_iterations: usize,
    /// Voltage-update convergence tolerance, volts.
    pub tol_v: f64,
    /// Per-iteration voltage step clamp (damping), volts.
    pub max_step: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            max_iterations: 200,
            tol_v: 1e-9,
            max_step: 0.5,
        }
    }
}

/// Errors from the nonlinear solve.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NewtonError {
    /// The linearized system was singular.
    Linalg(LinalgError),
    /// The iteration did not converge.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Final max voltage update.
        residual: f64,
    },
}

impl std::fmt::Display for NewtonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NewtonError::Linalg(e) => write!(f, "newton linear solve failed: {e}"),
            NewtonError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "newton did not converge after {iterations} iterations (residual {residual:e} V)"
            ),
        }
    }
}

impl std::error::Error for NewtonError {}

impl From<LinalgError> for NewtonError {
    fn from(e: LinalgError) -> Self {
        NewtonError::Linalg(e)
    }
}

/// The converged nonlinear operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    voltages: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
    /// Drain currents per MOSFET, in netlist order.
    pub drain_currents: Vec<f64>,
}

impl OperatingPoint {
    /// Voltage at `node` (ground is 0).
    ///
    /// # Panics
    ///
    /// Panics when the node does not belong to the solved circuit.
    pub fn voltage(&self, node: Node) -> f64 {
        if node.0 == 0 {
            0.0
        } else {
            self.voltages[node.0 - 1]
        }
    }
}

/// Solves the nonlinear DC operating point by Newton–Raphson with
/// voltage-step damping.
///
/// # Errors
///
/// Returns [`NewtonError::NoConvergence`] or a wrapped linear-algebra
/// failure.
pub fn solve_dc_nonlinear(
    ckt: &NonlinearCircuit,
    opts: &NewtonOptions,
) -> Result<OperatingPoint, NewtonError> {
    let n = ckt.linear.num_nodes() - 1;
    let m = ckt.linear.num_voltage_sources();
    let dim = n + m;
    let idx = |node: Node| -> Option<usize> { (node.0 > 0).then(|| node.0 - 1) };
    let mut v = vec![0.0f64; n];

    let mut iterations = 0;
    let mut last_update = f64::INFINITY;
    while iterations < opts.max_iterations {
        iterations += 1;
        // Assemble the linear part.
        let mut a = Matrix::zeros(dim, dim);
        let mut rhs = Vector::zeros(dim);
        let mut vs_index = 0usize;
        for e in ckt.linear.elements() {
            match *e {
                Element::Resistor { a: na, b: nb, ohms } => {
                    stamp_conductance(&mut a, idx(na), idx(nb), 1.0 / ohms);
                }
                Element::Capacitor { .. } => {}
                Element::CurrentSource { from, to, amps } => {
                    if let Some(i) = idx(from) {
                        rhs[i] -= amps;
                    }
                    if let Some(i) = idx(to) {
                        rhs[i] += amps;
                    }
                }
                Element::VoltageSource { plus, minus, volts } => {
                    let row = n + vs_index;
                    if let Some(i) = idx(plus) {
                        a[(row, i)] += 1.0;
                        a[(i, row)] += 1.0;
                    }
                    if let Some(i) = idx(minus) {
                        a[(row, i)] -= 1.0;
                        a[(i, row)] -= 1.0;
                    }
                    rhs[row] = volts;
                    vs_index += 1;
                }
                Element::Vccs {
                    from,
                    to,
                    cp,
                    cm,
                    gm,
                } => {
                    for (node, sign) in [(from, 1.0), (to, -1.0)] {
                        if let Some(r) = idx(node) {
                            if let Some(c) = idx(cp) {
                                a[(r, c)] += sign * gm;
                            }
                            if let Some(c) = idx(cm) {
                                a[(r, c)] -= sign * gm;
                            }
                        }
                    }
                }
            }
        }
        // Linearized MOSFET companion models.
        let getv = |node: Node, v: &[f64]| -> f64 { idx(node).map_or(0.0, |i| v[i]) };
        for mos in &ckt.mosfets {
            let (vd, vg, vs) = (
                getv(mos.drain, &v),
                getv(mos.gate, &v),
                getv(mos.source, &v),
            );
            let (id, gm, gds) = mos.model.evaluate(vd, vg, vs);
            let sign = match mos.model.polarity {
                Polarity::Nmos => 1.0,
                Polarity::Pmos => -1.0,
            };
            // Companion: i_d ≈ Ieq + gm·(vg−vs) + gds·(vd−vs), with
            // polarity folded into gm/gds stamps via `sign` where the
            // controlling differences are sign-reversed for PMOS.
            // Current flows drain→source (NMOS sign convention kept in
            // `id`).
            let ieq = id - sign * gm * (sign * (vg - vs)) - sign * gds * (sign * (vd - vs));
            // gds between drain and source.
            stamp_conductance(&mut a, idx(mos.drain), idx(mos.source), gds);
            // gm: current gm·(vg − vs) from drain to source.
            for (node, s) in [(mos.drain, 1.0), (mos.source, -1.0)] {
                if let Some(r) = idx(node) {
                    if let Some(c) = idx(mos.gate) {
                        a[(r, c)] += s * gm;
                    }
                    if let Some(c) = idx(mos.source) {
                        a[(r, c)] -= s * gm;
                    }
                }
            }
            // Equivalent current source from drain to source.
            if let Some(i) = idx(mos.drain) {
                rhs[i] -= ieq;
            }
            if let Some(i) = idx(mos.source) {
                rhs[i] += ieq;
            }
        }

        let x = a.lu()?.solve(&rhs)?;
        // Damped update.
        let mut update = 0.0f64;
        for i in 0..n {
            let delta = (x[i] - v[i]).clamp(-opts.max_step, opts.max_step);
            update = update.max(delta.abs());
            v[i] += delta;
        }
        last_update = update;
        if update < opts.tol_v {
            let getv2 = |node: Node| -> f64 { idx(node).map_or(0.0, |i| v[i]) };
            let drain_currents = ckt
                .mosfets
                .iter()
                .map(|mos| {
                    mos.model
                        .evaluate(getv2(mos.drain), getv2(mos.gate), getv2(mos.source))
                        .0
                })
                .collect();
            return Ok(OperatingPoint {
                voltages: v,
                iterations,
                drain_currents,
            });
        }
    }
    Err(NewtonError::NoConvergence {
        iterations,
        residual: last_update,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const VDD: f64 = 1.8;

    #[test]
    fn device_regions() {
        let m = MosfetModel::nmos(0.4, 1e-3);
        // Cutoff.
        let (id, gm, _) = m.evaluate(1.0, 0.2, 0.0);
        assert!(id.abs() < 1e-9);
        assert_eq!(gm, 0.0);
        // Saturation: vgs=1.0, vov=0.6, vds=1.5 > vov.
        let (id, gm, gds) = m.evaluate(1.5, 1.0, 0.0);
        let id0 = 0.5e-3 * 0.36;
        assert!((id - id0 * (1.0 + 0.02 * 1.5)).abs() < 1e-12);
        assert!(gm > 0.0 && gds > 0.0);
        // Triode: vds = 0.1 < vov.
        let (id_tri, _, _) = m.evaluate(0.1, 1.0, 0.0);
        assert!(id_tri < id);
    }

    #[test]
    fn pmos_mirrors_nmos() {
        let n = MosfetModel::nmos(0.4, 1e-3);
        let p = MosfetModel::pmos(0.4, 1e-3);
        let (idn, ..) = n.evaluate(1.0, 1.2, 0.0);
        // PMOS with mirrored voltages conducts the mirrored current.
        let (idp, ..) = p.evaluate(-1.0, -1.2, 0.0);
        assert!((idn + idp).abs() < 1e-15);
    }

    #[test]
    fn resistor_biased_nmos_operating_point() {
        // VDD -- R -- drain(N), gate at fixed bias, source grounded.
        let mut lin = Circuit::new();
        let vdd = lin.node();
        let gate = lin.node();
        let drain = lin.node();
        lin.voltage_source(vdd, Circuit::GND, VDD);
        lin.voltage_source(gate, Circuit::GND, 0.9);
        lin.resistor(vdd, drain, 10_000.0);
        let ckt = NonlinearCircuit {
            linear: lin,
            mosfets: vec![Mosfet {
                drain,
                gate,
                source: Circuit::GND,
                model: MosfetModel::nmos(0.4, 1e-3),
            }],
        };
        let op = solve_dc_nonlinear(&ckt, &NewtonOptions::default()).unwrap();
        let vd = op.voltage(drain);
        // KCL check: resistor current equals drain current.
        let ir = (VDD - vd) / 10_000.0;
        assert!((ir - op.drain_currents[0]).abs() < 1e-9, "KCL violated");
        // Sanity: device in saturation (vov = 0.5, vd > 0.5).
        assert!(vd > 0.5 && vd < VDD, "vd = {vd}");
    }

    #[test]
    fn diode_connected_nmos() {
        // VDD -- R -- drain=gate, source grounded: V settles where
        // (VDD-V)/R = k/2 (V-vth)^2 (1+lambda V).
        let mut lin = Circuit::new();
        let vdd = lin.node();
        let d = lin.node();
        lin.voltage_source(vdd, Circuit::GND, VDD);
        lin.resistor(vdd, d, 20_000.0);
        let model = MosfetModel::nmos(0.4, 2e-3);
        let ckt = NonlinearCircuit {
            linear: lin,
            mosfets: vec![Mosfet {
                drain: d,
                gate: d,
                source: Circuit::GND,
                model,
            }],
        };
        let op = solve_dc_nonlinear(&ckt, &NewtonOptions::default()).unwrap();
        let v = op.voltage(d);
        let lhs = (VDD - v) / 20_000.0;
        let vov: f64 = v - 0.4;
        let rhs = 0.5 * 2e-3 * vov * vov * (1.0 + 0.02 * v);
        assert!((lhs - rhs).abs() < 1e-9, "balance: {lhs} vs {rhs}");
        assert!(v > 0.4 && v < VDD);
    }

    #[test]
    fn cmos_inverter_transfer_points() {
        // Standard CMOS inverter; check strong-low input -> high output
        // and strong-high input -> low output.
        let build = |vin: f64| -> NonlinearCircuit {
            let mut lin = Circuit::new();
            let vdd = lin.node();
            let input = lin.node();
            let out = lin.node();
            lin.voltage_source(vdd, Circuit::GND, VDD);
            lin.voltage_source(input, Circuit::GND, vin);
            // Tiny load keeps the output node well-posed in cutoff.
            lin.resistor(out, Circuit::GND, 1e9);
            NonlinearCircuit {
                linear: lin,
                mosfets: vec![
                    Mosfet {
                        drain: out,
                        gate: input,
                        source: Circuit::GND,
                        model: MosfetModel::nmos(0.4, 1e-3),
                    },
                    Mosfet {
                        drain: out,
                        gate: input,
                        source: vdd,
                        model: MosfetModel::pmos(0.4, 1e-3),
                    },
                ],
            }
        };
        let low_in = solve_dc_nonlinear(&build(0.0), &NewtonOptions::default()).unwrap();
        let out_node = Node(3);
        assert!(
            low_in.voltage(out_node) > VDD - 0.05,
            "output should be high"
        );
        let high_in = solve_dc_nonlinear(&build(VDD), &NewtonOptions::default()).unwrap();
        assert!(high_in.voltage(out_node) < 0.05, "output should be low");
        // Symmetric inverter: switching threshold near VDD/2.
        let mid = solve_dc_nonlinear(&build(VDD / 2.0), &NewtonOptions::default()).unwrap();
        let vm = mid.voltage(out_node);
        assert!(
            (vm - VDD / 2.0).abs() < 0.2,
            "midpoint output {vm} should sit near VDD/2"
        );
    }

    #[test]
    fn convergence_is_reported() {
        let opts = NewtonOptions {
            max_iterations: 1,
            ..NewtonOptions::default()
        };
        let mut lin = Circuit::new();
        let vdd = lin.node();
        let d = lin.node();
        lin.voltage_source(vdd, Circuit::GND, VDD);
        lin.resistor(vdd, d, 1_000.0);
        let ckt = NonlinearCircuit {
            linear: lin,
            mosfets: vec![Mosfet {
                drain: d,
                gate: d,
                source: Circuit::GND,
                model: MosfetModel::nmos(0.4, 5e-3),
            }],
        };
        assert!(matches!(
            solve_dc_nonlinear(&ckt, &opts),
            Err(NewtonError::NoConvergence { .. })
        ));
    }
}
