//! DC operating-point analysis via modified nodal analysis (MNA).
//!
//! The MNA system has one row per non-ground node (KCL) plus one row per
//! voltage source (branch equation). Capacitors are open circuits in DC.
//! The assembled matrix is unsymmetric (voltage-source stamps), so it is
//! factorized with the partially pivoted LU from `bmf-linalg`.

use bmf_linalg::{LinalgError, Matrix, Vector};

use super::circuit::{Circuit, Element, Node};

/// A DC solution: node voltages and voltage-source branch currents.
#[derive(Debug, Clone, PartialEq)]
pub struct DcSolution {
    voltages: Vec<f64>,
    branch_currents: Vec<f64>,
}

impl DcSolution {
    /// Voltage at `node` (ground is exactly 0).
    ///
    /// # Panics
    ///
    /// Panics when the node does not belong to the solved circuit.
    pub fn voltage(&self, node: Node) -> f64 {
        if node.0 == 0 {
            0.0
        } else {
            self.voltages[node.0 - 1]
        }
    }

    /// Current through the `i`-th voltage source (in insertion order),
    /// flowing from its `plus` terminal through the source to `minus`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn branch_current(&self, i: usize) -> f64 {
        self.branch_currents[i]
    }
}

/// Assembles and solves the MNA system for `circuit`.
///
/// # Errors
///
/// Returns [`LinalgError::Singular`] when the circuit has floating nodes or
/// is otherwise ill-posed (every node needs a DC path to ground).
pub fn solve_dc(circuit: &Circuit) -> Result<DcSolution, LinalgError> {
    let n = circuit.num_nodes() - 1; // unknown node voltages
    let m = circuit.num_voltage_sources();
    let dim = n + m;
    if dim == 0 {
        return Ok(DcSolution {
            voltages: Vec::new(),
            branch_currents: Vec::new(),
        });
    }
    let mut a = Matrix::zeros(dim, dim);
    let mut rhs = Vector::zeros(dim);

    // Map node -> matrix row/col (ground drops out).
    let idx = |node: Node| -> Option<usize> { (node.0 > 0).then(|| node.0 - 1) };

    let mut vs_index = 0usize;
    for e in circuit.elements() {
        match *e {
            Element::Resistor { a: na, b: nb, ohms } => {
                let g = 1.0 / ohms;
                stamp_conductance(&mut a, idx(na), idx(nb), g);
            }
            Element::Capacitor { .. } => { /* open in DC */ }
            Element::CurrentSource { from, to, amps } => {
                if let Some(i) = idx(from) {
                    rhs[i] -= amps;
                }
                if let Some(i) = idx(to) {
                    rhs[i] += amps;
                }
            }
            Element::VoltageSource { plus, minus, volts } => {
                let row = n + vs_index;
                if let Some(i) = idx(plus) {
                    a[(row, i)] += 1.0;
                    a[(i, row)] += 1.0;
                }
                if let Some(i) = idx(minus) {
                    a[(row, i)] -= 1.0;
                    a[(i, row)] -= 1.0;
                }
                rhs[row] = volts;
                vs_index += 1;
            }
            Element::Vccs {
                from,
                to,
                cp,
                cm,
                gm,
            } => {
                // Current gm*(Vcp - Vcm) leaves `from`, enters `to`.
                for (node, sign) in [(from, 1.0), (to, -1.0)] {
                    if let Some(r) = idx(node) {
                        if let Some(c) = idx(cp) {
                            a[(r, c)] += sign * gm;
                        }
                        if let Some(c) = idx(cm) {
                            a[(r, c)] -= sign * gm;
                        }
                    }
                }
            }
        }
    }

    let lu = a.lu()?;
    let x = lu.solve(&rhs)?;
    let xs = x.as_slice();
    Ok(DcSolution {
        voltages: xs[..n].to_vec(),
        branch_currents: xs[n..].to_vec(),
    })
}

/// Stamps a conductance `g` between two (possibly grounded) nodes.
pub(crate) fn stamp_conductance(a: &mut Matrix, na: Option<usize>, nb: Option<usize>, g: f64) {
    if let Some(i) = na {
        a[(i, i)] += g;
    }
    if let Some(j) = nb {
        a[(j, j)] += g;
    }
    if let (Some(i), Some(j)) = (na, nb) {
        a[(i, j)] -= g;
        a[(j, i)] -= g;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voltage_divider() {
        let mut c = Circuit::new();
        let vin = c.node();
        let vout = c.node();
        c.voltage_source(vin, Circuit::GND, 3.0);
        c.resistor(vin, vout, 2_000.0);
        c.resistor(vout, Circuit::GND, 1_000.0);
        let s = solve_dc(&c).unwrap();
        assert!((s.voltage(vout) - 1.0).abs() < 1e-9);
        // Source current: 3V over 3k = 1 mA flowing out of plus terminal
        // (MNA convention: current flows plus -> through source -> minus,
        // so the branch current is -1 mA).
        assert!((s.branch_current(0) + 1e-3).abs() < 1e-9);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut c = Circuit::new();
        let a = c.node();
        c.current_source(Circuit::GND, a, 2e-3);
        c.resistor(a, Circuit::GND, 500.0);
        let s = solve_dc(&c).unwrap();
        assert!((s.voltage(a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wheatstone_bridge_balance() {
        // Balanced bridge: no voltage across the detector diagonal.
        let mut c = Circuit::new();
        let top = c.node();
        let left = c.node();
        let right = c.node();
        c.voltage_source(top, Circuit::GND, 10.0);
        c.resistor(top, left, 1_000.0);
        c.resistor(top, right, 2_000.0);
        c.resistor(left, Circuit::GND, 1_000.0);
        c.resistor(right, Circuit::GND, 2_000.0);
        c.resistor(left, right, 5_000.0); // detector
        let s = solve_dc(&c).unwrap();
        assert!((s.voltage(left) - s.voltage(right)).abs() < 1e-9);
        assert!((s.voltage(left) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn vccs_amplifier_gain() {
        // Common-source small-signal stage: vout = -gm * RL * vin.
        let mut c = Circuit::new();
        let vin = c.node();
        let vout = c.node();
        c.voltage_source(vin, Circuit::GND, 0.01);
        c.vccs(vout, Circuit::GND, vin, Circuit::GND, 2e-3); // gm = 2 mS
        c.resistor(vout, Circuit::GND, 10_000.0);
        let s = solve_dc(&c).unwrap();
        // gain = -gm*RL = -20; vout = -0.2 V.
        assert!((s.voltage(vout) + 0.2).abs() < 1e-9);
    }

    #[test]
    fn capacitor_is_open_in_dc() {
        let mut c = Circuit::new();
        let a = c.node();
        let b = c.node();
        c.voltage_source(a, Circuit::GND, 1.0);
        c.resistor(a, b, 1_000.0);
        c.capacitor(b, Circuit::GND, 1e-12);
        // b floats through the capacitor only -> also needs the resistor
        // path; with no DC path from b, add a large bleed to keep it
        // well-posed.
        c.resistor(b, Circuit::GND, 1e9);
        let s = solve_dc(&c).unwrap();
        // Nearly no current flows: V(b) ~ 1 V.
        assert!((s.voltage(b) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn floating_node_is_singular() {
        let mut c = Circuit::new();
        let a = c.node();
        let b = c.node();
        c.voltage_source(a, Circuit::GND, 1.0);
        c.resistor(a, Circuit::GND, 100.0);
        // b is completely floating.
        let _ = b;
        assert!(solve_dc(&c).is_err());
    }

    #[test]
    fn empty_circuit_solves_trivially() {
        let c = Circuit::new();
        let s = solve_dc(&c).unwrap();
        assert_eq!(s.voltage(Circuit::GND), 0.0);
    }

    #[test]
    fn two_voltage_sources_in_series_chain() {
        let mut c = Circuit::new();
        let a = c.node();
        let b = c.node();
        c.voltage_source(a, Circuit::GND, 1.0);
        c.voltage_source(b, a, 0.5);
        c.resistor(b, Circuit::GND, 1_000.0);
        let s = solve_dc(&c).unwrap();
        assert!((s.voltage(b) - 1.5).abs() < 1e-9);
    }
}
