//! Small-signal AC analysis over the complex MNA system.
//!
//! At angular frequency ω the element stamps are: resistor `1/R`,
//! capacitor `jωC`, VCCS `gm` (real), independent sources at their
//! netlist values (interpreted as AC amplitudes). Solving the complex
//! system per frequency point yields node phasors, from which transfer
//! magnitudes/phases and −3 dB bandwidths follow.

use bmf_linalg::complex::{CMatrix, C64};
use bmf_linalg::LinalgError;

use super::circuit::{Circuit, Element, Node};

/// Node phasors at one frequency.
#[derive(Debug, Clone, PartialEq)]
pub struct AcSolution {
    freq_hz: f64,
    voltages: Vec<C64>,
}

impl AcSolution {
    /// The analysis frequency in hertz.
    pub fn frequency(&self) -> f64 {
        self.freq_hz
    }

    /// Phasor voltage at `node` (ground is exactly 0).
    ///
    /// # Panics
    ///
    /// Panics when the node does not belong to the solved circuit.
    pub fn voltage(&self, node: Node) -> C64 {
        if node.0 == 0 {
            C64::ZERO
        } else {
            self.voltages[node.0 - 1]
        }
    }

    /// Magnitude of the node voltage in dB (20·log₁₀|V|).
    pub fn magnitude_db(&self, node: Node) -> f64 {
        20.0 * self.voltage(node).abs().max(1e-300).log10()
    }

    /// Phase of the node voltage in degrees.
    pub fn phase_deg(&self, node: Node) -> f64 {
        self.voltage(node).arg().to_degrees()
    }
}

/// Solves the AC system at one frequency.
///
/// # Errors
///
/// Returns [`LinalgError::Singular`] for ill-posed circuits.
///
/// # Panics
///
/// Panics when `freq_hz` is negative or non-finite.
pub fn solve_ac(circuit: &Circuit, freq_hz: f64) -> Result<AcSolution, LinalgError> {
    assert!(
        freq_hz >= 0.0 && freq_hz.is_finite(),
        "frequency must be non-negative"
    );
    let omega = 2.0 * std::f64::consts::PI * freq_hz;
    let n = circuit.num_nodes() - 1;
    let m = circuit.num_voltage_sources();
    let dim = n + m;
    if dim == 0 {
        return Ok(AcSolution {
            freq_hz,
            voltages: Vec::new(),
        });
    }
    let idx = |node: Node| -> Option<usize> { (node.0 > 0).then(|| node.0 - 1) };
    let mut a = CMatrix::zeros(dim, dim);
    let mut rhs = vec![C64::ZERO; dim];

    let stamp_admittance = |a: &mut CMatrix, na: Option<usize>, nb: Option<usize>, y: C64| {
        if let Some(i) = na {
            a.stamp(i, i, y);
        }
        if let Some(j) = nb {
            a.stamp(j, j, y);
        }
        if let (Some(i), Some(j)) = (na, nb) {
            a.stamp(i, j, -y);
            a.stamp(j, i, -y);
        }
    };

    let mut vs_index = 0usize;
    for e in circuit.elements() {
        match *e {
            Element::Resistor { a: na, b: nb, ohms } => {
                stamp_admittance(&mut a, idx(na), idx(nb), C64::real(1.0 / ohms));
            }
            Element::Capacitor {
                a: na,
                b: nb,
                farads,
            } => {
                stamp_admittance(&mut a, idx(na), idx(nb), C64::new(0.0, omega * farads));
            }
            Element::CurrentSource { from, to, amps } => {
                if let Some(i) = idx(from) {
                    rhs[i] -= C64::real(amps);
                }
                if let Some(i) = idx(to) {
                    rhs[i] += C64::real(amps);
                }
            }
            Element::VoltageSource { plus, minus, volts } => {
                let row = n + vs_index;
                if let Some(i) = idx(plus) {
                    a.stamp(row, i, C64::ONE);
                    a.stamp(i, row, C64::ONE);
                }
                if let Some(i) = idx(minus) {
                    a.stamp(row, i, -C64::ONE);
                    a.stamp(i, row, -C64::ONE);
                }
                rhs[row] = C64::real(volts);
                vs_index += 1;
            }
            Element::Vccs {
                from,
                to,
                cp,
                cm,
                gm,
            } => {
                for (node, sign) in [(from, 1.0), (to, -1.0)] {
                    if let Some(r) = idx(node) {
                        if let Some(c) = idx(cp) {
                            a.stamp(r, c, C64::real(sign * gm));
                        }
                        if let Some(c) = idx(cm) {
                            a.stamp(r, c, C64::real(-sign * gm));
                        }
                    }
                }
            }
        }
    }

    let x = a.solve(&rhs)?;
    Ok(AcSolution {
        freq_hz,
        voltages: x[..n].to_vec(),
    })
}

/// Sweeps logarithmically spaced frequencies from `f_lo` to `f_hi`.
///
/// # Errors
///
/// Propagates the first solver failure.
///
/// # Panics
///
/// Panics when `f_lo` or `f_hi` is non-positive, `f_hi <= f_lo`, or
/// `points < 2`.
pub fn ac_sweep(
    circuit: &Circuit,
    f_lo: f64,
    f_hi: f64,
    points: usize,
) -> Result<Vec<AcSolution>, LinalgError> {
    assert!(f_lo > 0.0 && f_hi > f_lo, "need 0 < f_lo < f_hi");
    assert!(points >= 2, "need at least two sweep points");
    let llo = f_lo.ln();
    let lhi = f_hi.ln();
    (0..points)
        .map(|i| {
            let f = (llo + (lhi - llo) * i as f64 / (points - 1) as f64).exp();
            solve_ac(circuit, f)
        })
        .collect()
}

/// Finds the −3 dB bandwidth of the transfer to `node`: the frequency at
/// which the magnitude drops 3 dB below its value at `f_lo`, located by
/// bisection between `f_lo` and `f_hi`.
///
/// Returns `None` when the response never drops 3 dB within the range.
///
/// # Errors
///
/// Propagates solver failures.
pub fn bandwidth_3db(
    circuit: &Circuit,
    node: Node,
    f_lo: f64,
    f_hi: f64,
) -> Result<Option<f64>, LinalgError> {
    let ref_db = solve_ac(circuit, f_lo)?.magnitude_db(node);
    let target = ref_db - 20.0 * (2.0f64).sqrt().log10(); // -3.0103 dB
    let hi_db = solve_ac(circuit, f_hi)?.magnitude_db(node);
    if hi_db > target {
        return Ok(None);
    }
    let (mut lo, mut hi) = (f_lo, f_hi);
    for _ in 0..60 {
        let mid = (lo * hi).sqrt(); // geometric bisection
        let db = solve_ac(circuit, mid)?.magnitude_db(node);
        if db > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(Some((lo * hi).sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RC low-pass: vin -- R -- vout -- C -- gnd.
    fn rc_lowpass(r: f64, c: f64) -> (Circuit, Node) {
        let mut ckt = Circuit::new();
        let vin = ckt.node();
        let vout = ckt.node();
        ckt.voltage_source(vin, Circuit::GND, 1.0);
        ckt.resistor(vin, vout, r);
        ckt.capacitor(vout, Circuit::GND, c);
        (ckt, vout)
    }

    #[test]
    fn rc_lowpass_matches_transfer_function() {
        let (ckt, vout) = rc_lowpass(1_000.0, 1e-9); // fc = 159.2 kHz
        let fc = 1.0 / (2.0 * std::f64::consts::PI * 1_000.0 * 1e-9);
        // At f = fc: |H| = 1/sqrt(2), phase = -45 deg.
        let s = solve_ac(&ckt, fc).unwrap();
        assert!((s.voltage(vout).abs() - 1.0 / 2.0f64.sqrt()).abs() < 1e-6);
        assert!((s.phase_deg(vout) + 45.0).abs() < 1e-3);
        // Deep in the stopband the slope is -20 dB/dec.
        let d1 = solve_ac(&ckt, 100.0 * fc).unwrap().magnitude_db(vout);
        let d2 = solve_ac(&ckt, 1000.0 * fc).unwrap().magnitude_db(vout);
        assert!((d1 - d2 - 20.0).abs() < 0.1, "slope {}", d1 - d2);
    }

    #[test]
    fn dc_limit_matches_dc_solver() {
        let (ckt, vout) = rc_lowpass(2_000.0, 1e-12);
        let ac = solve_ac(&ckt, 0.0).unwrap();
        assert!((ac.voltage(vout).abs() - 1.0).abs() < 1e-9);
        assert!(ac.voltage(vout).im.abs() < 1e-12);
    }

    #[test]
    fn bandwidth_matches_analytic_pole() {
        let (ckt, vout) = rc_lowpass(1_000.0, 1e-9);
        let fc = 1.0 / (2.0 * std::f64::consts::PI * 1_000.0 * 1e-9);
        let bw = bandwidth_3db(&ckt, vout, 1.0, 1e9).unwrap().unwrap();
        assert!((bw - fc).abs() / fc < 1e-3, "bw {bw} vs analytic {fc}");
    }

    #[test]
    fn no_rolloff_returns_none() {
        // Pure resistive divider has flat response.
        let mut ckt = Circuit::new();
        let vin = ckt.node();
        let vout = ckt.node();
        ckt.voltage_source(vin, Circuit::GND, 1.0);
        ckt.resistor(vin, vout, 1_000.0);
        ckt.resistor(vout, Circuit::GND, 1_000.0);
        assert_eq!(bandwidth_3db(&ckt, vout, 1.0, 1e6).unwrap(), None);
    }

    #[test]
    fn sweep_is_monotone_for_lowpass() {
        let (ckt, vout) = rc_lowpass(1_000.0, 1e-9);
        let sweep = ac_sweep(&ckt, 1e3, 1e8, 25).unwrap();
        let mags: Vec<f64> = sweep.iter().map(|s| s.voltage(vout).abs()).collect();
        for w in mags.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "low-pass must be monotone");
        }
        assert_eq!(sweep.len(), 25);
        assert!(sweep[0].frequency() < sweep[24].frequency());
    }

    #[test]
    fn vccs_gain_stage_with_load_cap() {
        // gm stage: -gm*RL gain at DC, pole at 1/(2 pi RL CL).
        let mut ckt = Circuit::new();
        let vin = ckt.node();
        let vout = ckt.node();
        ckt.voltage_source(vin, Circuit::GND, 1.0);
        ckt.vccs(vout, Circuit::GND, vin, Circuit::GND, 1e-3);
        ckt.resistor(vout, Circuit::GND, 10_000.0);
        ckt.capacitor(vout, Circuit::GND, 1e-12);
        let dc = solve_ac(&ckt, 1.0).unwrap();
        assert!((dc.voltage(vout).abs() - 10.0).abs() < 1e-6);
        let fp = 1.0 / (2.0 * std::f64::consts::PI * 1e4 * 1e-12);
        let bw = bandwidth_3db(&ckt, vout, 1.0, 1e12).unwrap().unwrap();
        assert!((bw - fp).abs() / fp < 1e-3, "bw {bw} vs pole {fp}");
    }
}
