//! Elmore delay of RC trees.
//!
//! Post-layout netlists carry interconnect parasitics; the first-moment
//! (Elmore) delay is the standard closed-form estimate for RC trees and is
//! what the behavioral circuit models use to fold parasitic variation into
//! stage delays:
//!
//! ```text
//! T_D(n) = Σ_e∈path(root→n)  R_e · C_downstream(e)
//! ```

/// One segment of an RC tree: a resistance from its parent plus a
/// capacitance to ground at its far end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RcSegment {
    /// Parent segment index, or `None` for segments hanging off the root.
    pub parent: Option<usize>,
    /// Segment resistance in ohms (from parent toward this node).
    pub resistance: f64,
    /// Node capacitance to ground in farads.
    pub capacitance: f64,
}

/// An RC tree rooted at an ideal driver.
///
/// # Example — two-segment ladder
///
/// ```
/// use bmf_circuits::spice::elmore::{RcSegment, RcTree};
///
/// let tree = RcTree::new(vec![
///     RcSegment { parent: None, resistance: 100.0, capacitance: 1e-12 },
///     RcSegment { parent: Some(0), resistance: 200.0, capacitance: 2e-12 },
/// ]).unwrap();
/// // T(1) = R0*(C0+C1) + R1*C1 = 100*3e-12 + 200*2e-12 = 0.7 ns
/// assert!((tree.delay(1) - 0.7e-9).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RcTree {
    segments: Vec<RcSegment>,
    downstream_cap: Vec<f64>,
}

/// Error constructing an [`RcTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RcTreeError {
    /// A segment's parent index is not smaller than its own index
    /// (segments must be listed in topological order).
    BadTopology {
        /// The offending segment.
        segment: usize,
    },
    /// A resistance or capacitance is negative or non-finite.
    BadValue {
        /// The offending segment.
        segment: usize,
    },
}

impl std::fmt::Display for RcTreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RcTreeError::BadTopology { segment } => write!(
                f,
                "segment {segment}: parent must precede child (topological order)"
            ),
            RcTreeError::BadValue { segment } => {
                write!(
                    f,
                    "segment {segment}: R and C must be finite and non-negative"
                )
            }
        }
    }
}

impl std::error::Error for RcTreeError {}

impl RcTree {
    /// Builds a tree from topologically ordered segments (every parent
    /// index precedes its children).
    ///
    /// # Errors
    ///
    /// Returns [`RcTreeError::BadTopology`] or [`RcTreeError::BadValue`].
    pub fn new(segments: Vec<RcSegment>) -> Result<Self, RcTreeError> {
        for (i, s) in segments.iter().enumerate() {
            if let Some(p) = s.parent {
                if p >= i {
                    return Err(RcTreeError::BadTopology { segment: i });
                }
            }
            if s.resistance < 0.0
                || s.capacitance < 0.0
                || !s.resistance.is_finite()
                || !s.capacitance.is_finite()
            {
                return Err(RcTreeError::BadValue { segment: i });
            }
        }
        // Downstream capacitance: accumulate children into parents in
        // reverse topological order.
        let mut down: Vec<f64> = segments.iter().map(|s| s.capacitance).collect();
        for i in (0..segments.len()).rev() {
            if let Some(p) = segments[i].parent {
                down[p] += down[i];
            }
        }
        Ok(RcTree {
            segments,
            downstream_cap: down,
        })
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// `true` when the tree has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total capacitance hanging at or below segment `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn downstream_capacitance(&self, i: usize) -> f64 {
        self.downstream_cap[i]
    }

    /// Elmore delay from the root driver to segment `i`'s node, in
    /// seconds.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn delay(&self, i: usize) -> f64 {
        let mut t = 0.0;
        let mut cur = Some(i);
        while let Some(k) = cur {
            t += self.segments[k].resistance * self.downstream_cap[k];
            cur = self.segments[k].parent;
        }
        t
    }

    /// The largest Elmore delay over all leaf nodes (the critical sink).
    pub fn max_delay(&self) -> f64 {
        let mut has_child = vec![false; self.segments.len()];
        for s in &self.segments {
            if let Some(p) = s.parent {
                has_child[p] = true;
            }
        }
        (0..self.segments.len())
            .filter(|&i| !has_child[i])
            .map(|i| self.delay(i))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(parent: Option<usize>, r: f64, c: f64) -> RcSegment {
        RcSegment {
            parent,
            resistance: r,
            capacitance: c,
        }
    }

    #[test]
    fn single_segment_is_rc() {
        let t = RcTree::new(vec![seg(None, 1_000.0, 1e-12)]).unwrap();
        assert!((t.delay(0) - 1e-9).abs() < 1e-18);
        assert_eq!(t.max_delay(), t.delay(0));
    }

    #[test]
    fn ladder_delay_accumulates_downstream_caps() {
        // R1-C1-R2-C2-R3-C3 ladder.
        let t = RcTree::new(vec![
            seg(None, 100.0, 1e-12),
            seg(Some(0), 100.0, 1e-12),
            seg(Some(1), 100.0, 1e-12),
        ])
        .unwrap();
        // T(2) = R1*3C + R2*2C + R3*C = 100e-12*(3+2+1) = 600 ps.
        assert!((t.delay(2) - 6e-10).abs() < 1e-16);
    }

    #[test]
    fn branching_tree_downstream_caps() {
        //       0
        //      / \
        //     1   2
        let t = RcTree::new(vec![
            seg(None, 50.0, 1e-12),
            seg(Some(0), 100.0, 2e-12),
            seg(Some(0), 200.0, 3e-12),
        ])
        .unwrap();
        assert!((t.downstream_capacitance(0) - 6e-12).abs() < 1e-20);
        // Delay to node 2: R0*(C0+C1+C2) + R2*C2.
        let expect = 50.0 * 6e-12 + 200.0 * 3e-12;
        assert!((t.delay(2) - expect).abs() < 1e-16);
        // Critical sink is node 2 (3e-10+6e-10 > delay(1)).
        assert_eq!(t.max_delay(), t.delay(2));
    }

    #[test]
    fn sibling_resistance_does_not_count() {
        // Delay to node 1 must not include node 2's resistance.
        let t = RcTree::new(vec![
            seg(None, 100.0, 0.0),
            seg(Some(0), 100.0, 1e-12),
            seg(Some(0), 1e6, 1e-12),
        ])
        .unwrap();
        let expect = 100.0 * 2e-12 + 100.0 * 1e-12;
        assert!((t.delay(1) - expect).abs() < 1e-16);
    }

    #[test]
    fn topology_validation() {
        assert!(matches!(
            RcTree::new(vec![seg(Some(0), 1.0, 1.0)]),
            Err(RcTreeError::BadTopology { segment: 0 })
        ));
        assert!(matches!(
            RcTree::new(vec![seg(None, -1.0, 1.0)]),
            Err(RcTreeError::BadValue { segment: 0 })
        ));
    }

    #[test]
    fn empty_tree() {
        let t = RcTree::new(vec![]).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.max_delay(), 0.0);
    }
}
