//! Backward-Euler transient analysis for linear RC circuits.
//!
//! Each time step replaces every capacitor by its companion model: a
//! conductance `C/h` in parallel with a current source `(C/h)·v_prev`.
//! Because the circuit is linear and the step is fixed, the MNA matrix is
//! assembled and LU-factorized once; every step is a single solve.

use bmf_linalg::{LinalgError, Matrix, Vector};

use super::circuit::{Circuit, Element, Node};
use super::dc::stamp_conductance;

/// Result of a transient run: node voltages at every time point.
#[derive(Debug, Clone, PartialEq)]
pub struct Transient {
    step: f64,
    /// `waveforms[t][n]` = voltage of non-ground node `n+1` at step `t`.
    waveforms: Vec<Vec<f64>>,
}

impl Transient {
    /// Time step in seconds.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Number of stored time points (including t = 0).
    pub fn len(&self) -> usize {
        self.waveforms.len()
    }

    /// `true` when no time points were computed.
    pub fn is_empty(&self) -> bool {
        self.waveforms.is_empty()
    }

    /// Voltage of `node` at time index `t`.
    ///
    /// # Panics
    ///
    /// Panics when `t` or the node index is out of range.
    pub fn voltage(&self, t: usize, node: Node) -> f64 {
        if node.0 == 0 {
            0.0
        } else {
            self.waveforms[t][node.0 - 1]
        }
    }

    /// First time (by linear interpolation) at which `node` crosses
    /// `threshold`, or `None` if it never does.
    pub fn crossing_time(&self, node: Node, threshold: f64) -> Option<f64> {
        let mut prev = self.voltage(0, node);
        for t in 1..self.len() {
            let cur = self.voltage(t, node);
            let crossed_up = prev < threshold && cur >= threshold;
            let crossed_down = prev > threshold && cur <= threshold;
            if crossed_up || crossed_down {
                let frac = (threshold - prev) / (cur - prev);
                return Some(((t - 1) as f64 + frac) * self.step);
            }
            prev = cur;
        }
        None
    }
}

/// Runs a backward-Euler transient of `steps` steps of size `h` seconds,
/// starting from the all-zero state (all node voltages 0 at t = 0).
///
/// Sources are held at their netlist values for t > 0, so a step input is
/// modeled by a source whose value is the post-step level.
///
/// # Errors
///
/// Returns [`LinalgError::Singular`] when the companion-model system is
/// singular (e.g. floating nodes with no capacitive or resistive path).
pub fn solve_transient(circuit: &Circuit, h: f64, steps: usize) -> Result<Transient, LinalgError> {
    assert!(h > 0.0 && h.is_finite(), "time step must be positive");
    let n = circuit.num_nodes() - 1;
    let m = circuit.num_voltage_sources();
    let dim = n + m;
    if dim == 0 {
        return Ok(Transient {
            step: h,
            waveforms: vec![Vec::new(); steps + 1],
        });
    }

    let idx = |node: Node| -> Option<usize> { (node.0 > 0).then(|| node.0 - 1) };

    // Assemble the constant system matrix (G + C/h stamps) and the
    // source part of the RHS.
    let mut a = Matrix::zeros(dim, dim);
    let mut rhs_src = Vector::zeros(dim);
    // Capacitor list for the history current: (a, b, C/h).
    let mut caps: Vec<(Option<usize>, Option<usize>, f64)> = Vec::new();

    let mut vs_index = 0usize;
    for e in circuit.elements() {
        match *e {
            Element::Resistor { a: na, b: nb, ohms } => {
                stamp_conductance(&mut a, idx(na), idx(nb), 1.0 / ohms);
            }
            Element::Capacitor {
                a: na,
                b: nb,
                farads,
            } => {
                let geq = farads / h;
                stamp_conductance(&mut a, idx(na), idx(nb), geq);
                caps.push((idx(na), idx(nb), geq));
            }
            Element::CurrentSource { from, to, amps } => {
                if let Some(i) = idx(from) {
                    rhs_src[i] -= amps;
                }
                if let Some(i) = idx(to) {
                    rhs_src[i] += amps;
                }
            }
            Element::VoltageSource { plus, minus, volts } => {
                let row = n + vs_index;
                if let Some(i) = idx(plus) {
                    a[(row, i)] += 1.0;
                    a[(i, row)] += 1.0;
                }
                if let Some(i) = idx(minus) {
                    a[(row, i)] -= 1.0;
                    a[(i, row)] -= 1.0;
                }
                rhs_src[row] = volts;
                vs_index += 1;
            }
            Element::Vccs {
                from,
                to,
                cp,
                cm,
                gm,
            } => {
                for (node, sign) in [(from, 1.0), (to, -1.0)] {
                    if let Some(r) = idx(node) {
                        if let Some(c) = idx(cp) {
                            a[(r, c)] += sign * gm;
                        }
                        if let Some(c) = idx(cm) {
                            a[(r, c)] -= sign * gm;
                        }
                    }
                }
            }
        }
    }

    let lu = a.lu()?;
    let mut v = vec![0.0f64; n];
    let mut waveforms = Vec::with_capacity(steps + 1);
    waveforms.push(v.clone());

    for _ in 0..steps {
        let mut rhs = rhs_src.clone();
        // History currents: i_hist = geq * v_prev(a→b differential).
        for &(na, nb, geq) in &caps {
            let va = na.map_or(0.0, |i| v[i]);
            let vb = nb.map_or(0.0, |i| v[i]);
            let ih = geq * (va - vb);
            if let Some(i) = na {
                rhs[i] += ih;
            }
            if let Some(i) = nb {
                rhs[i] -= ih;
            }
        }
        let x = lu.solve(&rhs)?;
        v.copy_from_slice(&x.as_slice()[..n]);
        waveforms.push(v.clone());
    }
    Ok(Transient { step: h, waveforms })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rc_step_response_matches_exponential() {
        // 1k * 1uF, tau = 1 ms; step to 1 V.
        let mut c = Circuit::new();
        let vin = c.node();
        let vout = c.node();
        c.voltage_source(vin, Circuit::GND, 1.0);
        c.resistor(vin, vout, 1_000.0);
        c.capacitor(vout, Circuit::GND, 1e-6);
        let h = 1e-5; // tau/100
        let tr = solve_transient(&c, h, 500).unwrap();
        // At t = 5 ms (~5 tau) the output is within 1% of 1 V.
        let v_end = tr.voltage(500, vout);
        assert!((v_end - 1.0).abs() < 0.02, "v_end={v_end}");
        // Compare mid-curve point against the analytic solution. BE has
        // O(h) error; h = tau/100 keeps it ~1%.
        let t = 100; // 1 ms = 1 tau
        let v = tr.voltage(t, vout);
        let expect = 1.0 - (-1.0f64).exp();
        assert!((v - expect).abs() < 0.01, "v={v}, expect={expect}");
    }

    #[test]
    fn crossing_time_finds_50_percent_point() {
        let mut c = Circuit::new();
        let vin = c.node();
        let vout = c.node();
        c.voltage_source(vin, Circuit::GND, 1.0);
        c.resistor(vin, vout, 1_000.0);
        c.capacitor(vout, Circuit::GND, 1e-6);
        let tr = solve_transient(&c, 1e-5, 300).unwrap();
        let t50 = tr.crossing_time(vout, 0.5).unwrap();
        // Analytic: tau * ln 2 = 0.693 ms.
        assert!((t50 - 6.93e-4).abs() < 2e-5, "t50={t50}");
    }

    #[test]
    fn no_crossing_returns_none() {
        let mut c = Circuit::new();
        let a = c.node();
        c.current_source(Circuit::GND, a, 1e-6);
        c.resistor(a, Circuit::GND, 1_000.0); // settles at 1 mV
        let tr = solve_transient(&c, 1e-6, 50).unwrap();
        assert!(tr.crossing_time(a, 0.5).is_none());
    }

    #[test]
    fn initial_state_is_zero() {
        let mut c = Circuit::new();
        let a = c.node();
        c.voltage_source(a, Circuit::GND, 2.0);
        c.resistor(a, Circuit::GND, 10.0);
        let tr = solve_transient(&c, 1e-9, 3).unwrap();
        assert_eq!(tr.voltage(0, a), 0.0);
        // After the first step the source is enforced.
        assert!((tr.voltage(1, a) - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_step_rejected() {
        let c = Circuit::new();
        let _ = solve_transient(&c, 0.0, 10);
    }
}
