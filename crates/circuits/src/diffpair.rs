//! Differential-pair input offset voltage with multifinger layout — the
//! worked example of the paper's §IV-A (eq. 36–43).
//!
//! At the schematic stage each input transistor's threshold mismatch is one
//! lumped variable (`x₁`, `x₂` in eq. 36). After layout each transistor is
//! drawn with `W` fingers, each carrying its own mismatch variable
//! (`x_{1,1}, x_{1,2}, …` in eq. 37). Per Pelgrom, a finger of 1/W the
//! area has √W the mismatch σ, and the finger average reproduces the lumped
//! variable — which is exactly the
//! [`FingerExpansion::collapse_point`](bmf_basis::expansion::FingerExpansion)
//! convention, so the two stages are physically consistent.
//!
//! The offset is *not* computed from a closed form: each evaluation builds
//! the small-signal MNA circuit (loads as resistors, each finger as a
//! `gm/W` VCCS driven by its ΔV_TH) and solves the DC system through
//! [`crate::spice::dc`], like a real simulator would.

use bmf_basis::expansion::FingerExpansion;

use crate::error::{check_var_count, CircuitError};
use crate::spice::circuit::Circuit;
use crate::spice::dc::solve_dc;
use crate::stage::{CircuitPerformance, Stage};

/// Configuration of the differential pair.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffPairConfig {
    /// Fingers per input transistor at the post-layout stage.
    pub fingers: usize,
    /// Nominal transconductance of each input transistor, siemens.
    pub gm: f64,
    /// Nominal load resistance, ohms.
    pub rl: f64,
    /// 1σ of the lumped threshold mismatch, volts.
    pub sigma_vth: f64,
    /// Relative 1σ of each load resistor.
    pub sigma_rl: f64,
    /// Systematic post-layout transconductance factor (≈0.97: layout
    /// parasitics degrade gm slightly).
    pub layout_gm_factor: f64,
    /// Systematic post-layout load factor.
    pub layout_rl_factor: f64,
    /// Simulated cost of one schematic sample, hours.
    pub sch_cost_hours: f64,
    /// Simulated cost of one post-layout sample, hours.
    pub lay_cost_hours: f64,
}

impl Default for DiffPairConfig {
    fn default() -> Self {
        DiffPairConfig {
            fingers: 2,
            gm: 2.0e-3,
            rl: 10.0e3,
            sigma_vth: 5.0e-3,
            sigma_rl: 0.02,
            layout_gm_factor: 0.97,
            layout_rl_factor: 1.02,
            sch_cost_hours: 2.0 / 3600.0,
            lay_cost_hours: 20.0 / 3600.0,
        }
    }
}

/// Variable layout at either stage: `[vth(M1 …), vth(M2 …), rl1, rl2]`.
///
/// Schematic: `[x_vth1, x_vth2, x_rl1, x_rl2]` (4 variables).
/// Post-layout: `[x_vth1_f1 … f_W, x_vth2_f1 … f_W, x_rl1, x_rl2]`
/// (`2W + 2` variables).
#[derive(Debug, Clone)]
pub struct DiffPair {
    config: DiffPairConfig,
}

impl DiffPair {
    /// Creates a differential pair.
    ///
    /// # Panics
    ///
    /// Panics when `fingers == 0`.
    pub fn new(config: DiffPairConfig) -> Self {
        assert!(config.fingers > 0, "need at least one finger");
        DiffPair { config }
    }

    /// The configuration.
    pub fn config(&self) -> &DiffPairConfig {
        &self.config
    }

    /// The schematic→layout variable expansion (for prior mapping):
    /// `vth1 → W fingers`, `vth2 → W fingers`, `rl1 → 1`, `rl2 → 1`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::Expansion`] when the expansion builder
    /// rejects the finger layout (it cannot for a constructed
    /// [`DiffPair`], whose finger counts are positive by construction,
    /// but the contract is surfaced rather than asserted).
    pub fn finger_expansion(&self) -> Result<FingerExpansion, CircuitError> {
        FingerExpansion::new(vec![self.config.fingers, self.config.fingers, 1, 1]).map_err(|e| {
            CircuitError::Expansion {
                detail: e.to_string(),
            }
        })
    }

    /// The offset-voltage [`CircuitPerformance`] view.
    pub fn offset_voltage(&self) -> DiffPairPerformance<'_> {
        DiffPairPerformance { dp: self }
    }

    /// Solves the small-signal circuit for the input-referred offset, given
    /// per-finger ΔV_TH values and the two load resistances.
    fn solve_offset(
        &self,
        dvth: &[Vec<f64>; 2],
        rl: [f64; 2],
        gm_total: f64,
    ) -> Result<f64, CircuitError> {
        let mut c = Circuit::new();
        let out1 = c.node();
        let out2 = c.node();
        c.resistor(out1, Circuit::GND, rl[0]);
        c.resistor(out2, Circuit::GND, rl[1]);
        // Branch bias current through each load (half the tail current):
        // with mismatched loads this produces the I_D·ΔR_L offset term.
        let i_bias = gm_total * 0.05; // I_D = gm·V_ov/2 with V_ov ≈ 0.1 V
        c.current_source(out1, Circuit::GND, i_bias);
        c.current_source(out2, Circuit::GND, i_bias);
        // Each finger injects gm_f·ΔV_TH into its output node. The ΔV_TH
        // source is a helper node held by an ideal voltage source driving
        // a VCCS — a true small-signal netlist, not an algebraic shortcut.
        for (side, out) in [(0usize, out1), (1usize, out2)] {
            // Each side's total gm is split evenly over its injections
            // (one at schematic level, W at post-layout).
            let gm_f = gm_total / dvth[side].len() as f64;
            for &dv in &dvth[side] {
                let ctrl = c.node();
                c.voltage_source(ctrl, Circuit::GND, dv);
                c.vccs(Circuit::GND, out, ctrl, Circuit::GND, gm_f);
            }
        }
        let sol = solve_dc(&c).map_err(|e| CircuitError::Solver {
            circuit: "diffpair.v_os".to_string(),
            detail: e.to_string(),
        })?;
        let vdiff = sol.voltage(out1) - sol.voltage(out2);
        // Refer to the input through the nominal differential gain.
        Ok(vdiff / (gm_total * self.config.rl))
    }
}

/// The offset-voltage [`CircuitPerformance`] view borrowed from a
/// [`DiffPair`].
#[derive(Debug, Clone, Copy)]
pub struct DiffPairPerformance<'a> {
    dp: &'a DiffPair,
}

impl CircuitPerformance for DiffPairPerformance<'_> {
    fn name(&self) -> &str {
        "diffpair.v_os"
    }

    fn num_vars(&self, stage: Stage) -> usize {
        match stage {
            Stage::Schematic => 4,
            Stage::PostLayout => 2 * self.dp.config.fingers + 2,
        }
    }

    fn evaluate(&self, stage: Stage, x: &[f64]) -> Result<f64, CircuitError> {
        let cfg = &self.dp.config;
        check_var_count(self.name(), stage, self.num_vars(stage), x.len())?;
        let w = cfg.fingers;
        let (dvth, rl_vars, gm, rl_nom) = match stage {
            Stage::Schematic => (
                [vec![cfg.sigma_vth * x[0]], vec![cfg.sigma_vth * x[1]]],
                [x[2], x[3]],
                cfg.gm,
                cfg.rl,
            ),
            Stage::PostLayout => {
                let sigma_f = cfg.sigma_vth * (w as f64).sqrt();
                let m1: Vec<f64> = (0..w).map(|t| sigma_f * x[t]).collect();
                let m2: Vec<f64> = (0..w).map(|t| sigma_f * x[w + t]).collect();
                (
                    [m1, m2],
                    [x[2 * w], x[2 * w + 1]],
                    cfg.gm * cfg.layout_gm_factor,
                    cfg.rl * cfg.layout_rl_factor,
                )
            }
        };
        let rl = [
            rl_nom * (1.0 + cfg.sigma_rl * rl_vars[0]),
            rl_nom * (1.0 + cfg.sigma_rl * rl_vars[1]),
        ];
        self.dp.solve_offset(&dvth, rl, gm)
    }

    fn sim_cost_hours(&self, stage: Stage) -> f64 {
        match stage {
            Stage::Schematic => self.dp.config.sch_cost_hours,
            Stage::PostLayout => self.dp.config.lay_cost_hours,
        }
    }

    fn num_parasitic_vars(&self) -> usize {
        0 // the layout difference here is finger splitting, not parasitics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dp() -> DiffPair {
        DiffPair::new(DiffPairConfig::default())
    }

    #[test]
    fn zero_mismatch_gives_zero_offset() {
        let d = dp();
        let v = d
            .offset_voltage()
            .evaluate(Stage::Schematic, &[0.0; 4])
            .unwrap();
        assert!(v.abs() < 1e-15);
        let n = d.offset_voltage().num_vars(Stage::PostLayout);
        let v = d
            .offset_voltage()
            .evaluate(Stage::PostLayout, &vec![0.0; n])
            .unwrap();
        assert!(v.abs() < 1e-15);
    }

    #[test]
    fn schematic_offset_matches_first_order_theory() {
        // V_OS ≈ σ_vth (x1 − x2) when loads match.
        let d = dp();
        let v = d
            .offset_voltage()
            .evaluate(Stage::Schematic, &[1.0, -1.0, 0.0, 0.0])
            .unwrap();
        let expect = d.config().sigma_vth * 2.0;
        assert!(
            (v - expect).abs() < 0.05 * expect.abs(),
            "v={v}, expect={expect}"
        );
    }

    #[test]
    fn offset_is_antisymmetric_in_inputs() {
        let d = dp();
        let a = d
            .offset_voltage()
            .evaluate(Stage::Schematic, &[0.7, -0.2, 0.0, 0.0])
            .unwrap();
        let b = d
            .offset_voltage()
            .evaluate(Stage::Schematic, &[-0.7, 0.2, 0.0, 0.0])
            .unwrap();
        assert!((a + b).abs() < 1e-12);
    }

    #[test]
    fn collapsed_layout_point_matches_schematic_to_first_order() {
        // Evaluating the layout model at a finger point and the schematic
        // model at the collapsed point should agree closely (gm/RL layout
        // factors cancel in the input-referred offset to first order).
        let d = dp();
        let exp = d.finger_expansion().unwrap();
        let layout_x = [0.6, -0.3, 0.1, 0.8, -0.5, 0.2]; // W=2: 4 vth + 2 rl
        let sch_x = exp.collapse_point(&layout_x);
        let vl = d
            .offset_voltage()
            .evaluate(Stage::PostLayout, &layout_x)
            .unwrap();
        let vs = d
            .offset_voltage()
            .evaluate(Stage::Schematic, &sch_x)
            .unwrap();
        let scale = vs.abs().max(1e-6);
        assert!(
            (vl - vs).abs() / scale < 0.15,
            "layout {vl} vs schematic {vs}"
        );
    }

    #[test]
    fn load_mismatch_contributes() {
        let d = dp();
        let v = d
            .offset_voltage()
            .evaluate(Stage::Schematic, &[0.0, 0.0, 1.0, -1.0])
            .unwrap();
        assert!(v.abs() > 0.0, "load mismatch must create offset");
    }

    #[test]
    fn finger_expansion_shape() {
        let d = dp();
        let e = d.finger_expansion().unwrap();
        assert_eq!(e.num_schematic_vars(), 4);
        assert_eq!(e.num_layout_vars(), 6);
        assert_eq!(e.finger_count(0), 2);
        assert_eq!(e.finger_count(2), 1);
    }

    #[test]
    fn var_counts() {
        let d = dp();
        let p = d.offset_voltage();
        assert_eq!(p.num_vars(Stage::Schematic), 4);
        assert_eq!(p.num_vars(Stage::PostLayout), 6);
        assert_eq!(p.num_parasitic_vars(), 0);
    }
}
