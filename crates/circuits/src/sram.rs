//! Behavioral SRAM read path (the paper's Fig. 6 circuit).
//!
//! The read path is: wordline driver → bit-cell array (128 cells per
//! column) → bitline discharge → sense amplifier → timing logic. The read
//! delay from wordline assertion to the sense-amp output is the paper's
//! single performance metric for this circuit (Table V).
//!
//! Structure of the model:
//!
//! * every bit cell carries its own mismatch variables; the *accessed* row
//!   dominates its column's discharge current, while the other 127 rows
//!   contribute weak subthreshold leakage — giving the read delay a few
//!   large coefficients and tens of thousands of small-but-nonzero ones,
//!   the sparsity pattern that makes OMP a meaningful baseline,
//! * column delay `t_bl = C_bl·ΔV / I_eff` is a smooth reciprocal
//!   nonlinearity, and the word delay averages the columns (a read of a
//!   full word settles with the slowest bits close to the mean at these
//!   variation levels),
//! * post-layout adds a distributed bitline RC ladder whose *Elmore delay*
//!   (through [`crate::spice::elmore`]) multiplies the column delay, with
//!   per-column parasitic variation variables scaling R and C, plus the
//!   systematic coefficient shift also used by the RO model.

use bmf_stat::normal::StandardNormal;
use bmf_stat::rng::{derive_seed, seeded};

use crate::error::{check_var_count, CircuitError};
use crate::process::{Sensitivity, VarSpace};
use crate::spice::elmore::{RcSegment, RcTree};
use crate::stage::{CircuitPerformance, Stage};

/// Configuration of the behavioral SRAM read path.
#[derive(Debug, Clone, PartialEq)]
pub struct SramConfig {
    /// Bit cells per column (the paper uses 128).
    pub rows: usize,
    /// Columns read in parallel (word width).
    pub columns: usize,
    /// Mismatch variables per bit cell.
    pub params_per_cell: usize,
    /// Mismatch variables of the wordline driver.
    pub driver_vars: usize,
    /// Mismatch variables of the sense amplifier + timing logic.
    pub senseamp_vars: usize,
    /// Shared interdie variables.
    pub interdie_vars: usize,
    /// Post-layout parasitic variables per column (scale bitline R and C).
    pub parasitic_vars_per_column: usize,
    /// Nominal wordline-driver delay, seconds.
    pub t_driver: f64,
    /// Nominal bitline discharge delay, seconds.
    pub t_bitline: f64,
    /// Nominal sense-amp + timing delay, seconds.
    pub t_senseamp: f64,
    /// Relative 1σ of the accessed cell's read current.
    pub cell_current_sigma: f64,
    /// Relative leakage contribution of one unaccessed cell (nominal).
    pub leak_per_cell: f64,
    /// Relative 1σ of one unaccessed cell's leakage factor.
    pub leak_sigma: f64,
    /// Magnitude of the systematic schematic→layout coefficient shift.
    pub layout_shift_rel: f64,
    /// Nominal bitline RC Elmore delay multiplier after extraction.
    pub layout_rc_factor: f64,
    /// Relative 1σ of the parasitic R/C scaling per column.
    pub parasitic_sigma: f64,
    /// Simulated cost of one schematic sample, hours.
    pub sch_cost_hours: f64,
    /// Simulated cost of one post-layout sample, hours.
    pub lay_cost_hours: f64,
}

impl SramConfig {
    /// Tiny configuration for unit tests (≈100 variables).
    pub fn small() -> Self {
        SramConfig {
            rows: 8,
            columns: 2,
            params_per_cell: 4,
            driver_vars: 4,
            senseamp_vars: 6,
            interdie_vars: 4,
            parasitic_vars_per_column: 2,
            ..SramConfig::base()
        }
    }

    /// Default experiment shape (~6 200 post-layout variables): 128 rows ×
    /// 8 columns × 6 params. See DESIGN.md §2.
    pub fn default_shape() -> Self {
        SramConfig {
            rows: 128,
            columns: 8,
            params_per_cell: 6,
            driver_vars: 12,
            senseamp_vars: 16,
            interdie_vars: 15,
            parasitic_vars_per_column: 4,
            ..SramConfig::base()
        }
    }

    /// Paper-scale configuration: 66 117 post-layout variables
    /// (128 rows × 64 columns × 8 params + 48 driver/sense + 21 interdie
    /// + 64 × 8 parasitics).
    pub fn paper() -> Self {
        SramConfig {
            rows: 128,
            columns: 64,
            params_per_cell: 8,
            driver_vars: 24,
            senseamp_vars: 24,
            interdie_vars: 21,
            parasitic_vars_per_column: 8,
            ..SramConfig::base()
        }
    }

    fn base() -> Self {
        SramConfig {
            rows: 8,
            columns: 2,
            params_per_cell: 4,
            driver_vars: 4,
            senseamp_vars: 6,
            interdie_vars: 4,
            parasitic_vars_per_column: 2,
            t_driver: 25.0e-12,
            t_bitline: 90.0e-12,
            t_senseamp: 45.0e-12,
            cell_current_sigma: 0.06,
            leak_per_cell: 1.2e-3,
            leak_sigma: 0.35,
            layout_shift_rel: 0.20,
            layout_rc_factor: 1.25,
            parasitic_sigma: 0.05,
            // Table VI: 400 post-layout samples = 38.77 h -> 349 s each.
            sch_cost_hours: 30.0 / 3600.0,
            lay_cost_hours: 349.0 / 3600.0,
        }
    }

    /// Schematic-stage variable count.
    pub fn schematic_vars(&self) -> usize {
        self.interdie_vars
            + self.driver_vars
            + self.columns * self.rows * self.params_per_cell
            + self.senseamp_vars
    }

    /// Post-layout variable count.
    pub fn post_layout_vars(&self) -> usize {
        self.schematic_vars() + self.columns * self.parasitic_vars_per_column
    }
}

/// Per-column sensitivity bundle.
#[derive(Debug, Clone)]
struct ColumnSens {
    /// Accessed-cell read-current factor (relative).
    current: Sensitivity,
    /// Leakage factors of the unaccessed cells (one weight set, summed).
    leak: Sensitivity,
    /// Post-layout only: parasitic R scaling.
    par_r: Sensitivity,
    /// Post-layout only: parasitic C scaling.
    par_c: Sensitivity,
}

/// A seeded behavioral SRAM read path with schematic and post-layout views.
///
/// # Example
///
/// ```
/// use bmf_circuits::sram::{SramConfig, SramReadPath};
/// use bmf_circuits::stage::{CircuitPerformance, Stage};
///
/// let sram = SramReadPath::new(SramConfig::small(), 3);
/// let d = sram.read_delay();
/// let t = d.evaluate(Stage::Schematic, &vec![0.0; d.num_vars(Stage::Schematic)])?;
/// assert!(t > 50.0e-12 && t < 500.0e-12);
/// # Ok::<(), bmf_circuits::error::CircuitError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SramReadPath {
    config: SramConfig,
    sch_space: VarSpace,
    lay_space: VarSpace,
    driver_sch: Sensitivity,
    driver_lay: Sensitivity,
    sense_sch: Sensitivity,
    sense_lay: Sensitivity,
    cols_sch: Vec<ColumnSens>,
    cols_lay: Vec<ColumnSens>,
}

impl SramReadPath {
    /// Builds the read path with sensitivities drawn from `seed`.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is degenerate (no rows/columns).
    pub fn new(config: SramConfig, seed: u64) -> Self {
        assert!(config.rows > 1, "need at least two rows");
        assert!(config.columns > 0, "need at least one column");
        assert!(config.params_per_cell > 0, "need cell mismatch variables");

        let mut sch = VarSpace::new();
        let interdie = sch.alloc("interdie", config.interdie_vars);
        let driver = sch.alloc("wordline.driver", config.driver_vars);
        let mut cells = Vec::with_capacity(config.columns);
        for c in 0..config.columns {
            let mut col = Vec::with_capacity(config.rows);
            for r in 0..config.rows {
                col.push(sch.alloc(&format!("col{c}.cell{r}"), config.params_per_cell));
            }
            cells.push(col);
        }
        let sense = sch.alloc("senseamp", config.senseamp_vars);
        let mut lay = sch.clone();
        let mut parasitics = Vec::with_capacity(config.columns);
        for c in 0..config.columns {
            parasitics.push(lay.alloc(
                &format!("col{c}.bitline.parasitic"),
                config.parasitic_vars_per_column,
            ));
        }

        // Driver and sense-amp delay factors.
        let mut driver_sch = Sensitivity::constant(0.0);
        driver_sch
            .weights
            .extend(decaying(interdie.clone(), 0.03, 1.2, seed, 0));
        driver_sch
            .weights
            .extend(decaying(driver, 0.04, 1.3, seed, 1));
        let mut sense_sch = Sensitivity::constant(0.0);
        sense_sch
            .weights
            .extend(decaying(interdie.clone(), 0.025, 1.4, seed, 2));
        sense_sch
            .weights
            .extend(decaying(sense, 0.05, 1.3, seed, 3));

        // Columns: accessed cell is row 0 of each column.
        let mut cols_sch = Vec::with_capacity(config.columns);
        for (c, col) in cells.iter().enumerate() {
            let cseed = derive_seed(seed, 3000 + c as u64);
            let mut current = Sensitivity::constant(0.0);
            current
                .weights
                .extend(decaying(interdie.clone(), 0.02, 1.5, cseed, 0));
            current.weights.extend(decaying(
                col[0].clone(),
                config.cell_current_sigma,
                1.2,
                cseed,
                1,
            ));
            let mut leak = Sensitivity::constant(0.0);
            for (r, range) in col.iter().enumerate().skip(1) {
                // Each unaccessed cell leaks with per-cell spread; the
                // first cell parameter (the "V_TH" slot) dominates.
                leak.weights.extend(decaying(
                    range.clone(),
                    config.leak_per_cell * config.leak_sigma,
                    2.0,
                    derive_seed(cseed, r as u64),
                    0,
                ));
            }
            cols_sch.push(ColumnSens {
                current,
                leak,
                par_r: Sensitivity::constant(0.0),
                par_c: Sensitivity::constant(0.0),
            });
        }

        // Post-layout: systematic shifts + parasitic R/C variables.
        let shift = |s: &Sensitivity, sd: u64, stream: u64| -> Sensitivity {
            shift_weights(s, config.layout_shift_rel, sd, stream)
        };
        let driver_lay = shift(&driver_sch, derive_seed(seed, 4000), 0);
        let sense_lay = shift(&sense_sch, derive_seed(seed, 4001), 1);
        let mut cols_lay = Vec::with_capacity(config.columns);
        for (c, base) in cols_sch.iter().enumerate() {
            let lseed = derive_seed(seed, 5000 + c as u64);
            let mut par_r = Sensitivity::constant(0.0);
            let mut par_c = Sensitivity::constant(0.0);
            let range = parasitics[c].clone();
            let half = range.start + range.len() / 2;
            par_r.weights.extend(decaying(
                range.start..half,
                config.parasitic_sigma,
                1.0,
                lseed,
                0,
            ));
            par_c.weights.extend(decaying(
                half..range.end,
                config.parasitic_sigma,
                1.0,
                lseed,
                1,
            ));
            cols_lay.push(ColumnSens {
                current: shift(&base.current, lseed, 2),
                leak: shift(&base.leak, lseed, 3),
                par_r,
                par_c,
            });
        }

        SramReadPath {
            config,
            sch_space: sch,
            lay_space: lay,
            driver_sch,
            driver_lay,
            sense_sch,
            sense_lay,
            cols_sch,
            cols_lay,
        }
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> &SramConfig {
        &self.config
    }

    /// The variable-space registry at `stage`.
    pub fn var_space(&self, stage: Stage) -> &VarSpace {
        match stage {
            Stage::Schematic => &self.sch_space,
            Stage::PostLayout => &self.lay_space,
        }
    }

    /// The read-delay [`CircuitPerformance`] view.
    pub fn read_delay(&self) -> SramPerformance<'_> {
        SramPerformance { sram: self }
    }

    /// Nominal read delay at the schematic stage, seconds.
    pub fn nominal_delay(&self) -> f64 {
        self.config.t_driver + self.config.t_bitline + self.config.t_senseamp
    }

    fn evaluate_delay(&self, stage: Stage, x: &[f64]) -> Result<f64, CircuitError> {
        let cfg = &self.config;
        let expected = match stage {
            Stage::Schematic => cfg.schematic_vars(),
            Stage::PostLayout => cfg.post_layout_vars(),
        };
        check_var_count("sram.read_delay", stage, expected, x.len())?;
        let (driver, sense, cols, rc_factor) = match stage {
            Stage::Schematic => (&self.driver_sch, &self.sense_sch, &self.cols_sch, 1.0),
            Stage::PostLayout => (
                &self.driver_lay,
                &self.sense_lay,
                &self.cols_lay,
                cfg.layout_rc_factor,
            ),
        };

        let t_drv = cfg.t_driver * (1.0 + driver.eval(x)).max(0.2);
        let t_sa = cfg.t_senseamp * (1.0 + sense.eval(x)).max(0.2);

        let mut t_bl_sum = 0.0;
        for col in cols {
            // Effective discharge current: accessed cell minus total
            // leakage of the 127 unaccessed cells.
            let i_cell = (1.0 + col.current.eval(x)).max(0.2);
            let leak = (cfg.rows as f64 - 1.0) * cfg.leak_per_cell + col.leak.eval(x);
            let i_eff = (i_cell - leak).max(0.05);
            let mut t_bl = cfg.t_bitline / i_eff;
            if stage == Stage::PostLayout {
                // Distributed bitline RC: Elmore delay of an `rows`-segment
                // ladder, normalized by its nominal, scaled by the
                // parasitic variation of this column.
                let r_scale = (1.0 + col.par_r.eval(x)).max(0.2);
                let c_scale = (1.0 + col.par_c.eval(x)).max(0.2);
                let elmore = bitline_elmore(cfg.rows, r_scale, c_scale)?;
                let elmore_nom = bitline_elmore(cfg.rows, 1.0, 1.0)?;
                t_bl *= 1.0 + (rc_factor - 1.0) * (elmore / elmore_nom);
            }
            t_bl_sum += t_bl;
        }
        let t_bl_avg = t_bl_sum / cols.len() as f64;
        Ok(t_drv + t_bl_avg + t_sa)
    }
}

/// Elmore delay of a uniform `rows`-segment bitline ladder with scaled
/// per-segment R and C, in arbitrary units.
fn bitline_elmore(rows: usize, r_scale: f64, c_scale: f64) -> Result<f64, CircuitError> {
    let segs: Vec<RcSegment> = (0..rows)
        .map(|i| RcSegment {
            parent: if i == 0 { None } else { Some(i - 1) },
            resistance: 2.0 * r_scale,
            capacitance: 0.4e-15 * c_scale,
        })
        .collect();
    let tree = RcTree::new(segs).map_err(|e| CircuitError::Solver {
        circuit: "sram.read_delay".to_string(),
        detail: e.to_string(),
    })?;
    Ok(tree.max_delay())
}

/// The read-delay [`CircuitPerformance`] view borrowed from an
/// [`SramReadPath`].
#[derive(Debug, Clone, Copy)]
pub struct SramPerformance<'a> {
    sram: &'a SramReadPath,
}

impl CircuitPerformance for SramPerformance<'_> {
    fn name(&self) -> &str {
        "sram.read_delay"
    }

    fn num_vars(&self, stage: Stage) -> usize {
        match stage {
            Stage::Schematic => self.sram.config.schematic_vars(),
            Stage::PostLayout => self.sram.config.post_layout_vars(),
        }
    }

    fn evaluate(&self, stage: Stage, x: &[f64]) -> Result<f64, CircuitError> {
        self.sram.evaluate_delay(stage, x)
    }

    fn sim_cost_hours(&self, stage: Stage) -> f64 {
        match stage {
            Stage::Schematic => self.sram.config.sch_cost_hours,
            Stage::PostLayout => self.sram.config.lay_cost_hours,
        }
    }
}

fn decaying(
    range: std::ops::Range<usize>,
    sigma: f64,
    decay: f64,
    seed: u64,
    stream: u64,
) -> Vec<(usize, f64)> {
    if range.is_empty() || bmf_linalg::is_exact_zero(sigma) {
        return Vec::new();
    }
    let mut rng = seeded(derive_seed(seed, 66_000 + stream));
    let mut sampler = StandardNormal::new();
    let mut w: Vec<(usize, f64)> = range
        .enumerate()
        .map(|(j, var)| {
            let u = sampler.sample(&mut rng);
            (var, u / (1.0 + j as f64).powf(decay))
        })
        .collect();
    let norm: f64 = w.iter().map(|&(_, v)| v * v).sum::<f64>().sqrt();
    if norm > 0.0 {
        let scale = sigma / norm;
        for (_, v) in &mut w {
            *v *= scale;
        }
    }
    w
}

fn shift_weights(base: &Sensitivity, rel: f64, seed: u64, stream: u64) -> Sensitivity {
    let mut rng = seeded(derive_seed(seed, 99_000 + stream));
    let mut sampler = StandardNormal::new();
    Sensitivity {
        offset: base.offset,
        weights: base
            .weights
            .iter()
            .map(|&(var, w)| (var, w * (1.0 + rel * sampler.sample(&mut rng))))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::monte_carlo;

    fn small() -> SramReadPath {
        SramReadPath::new(SramConfig::small(), 11)
    }

    #[test]
    fn variable_counts() {
        let cfg = SramConfig::small();
        assert_eq!(cfg.schematic_vars(), 4 + 4 + 2 * 8 * 4 + 6);
        assert_eq!(cfg.post_layout_vars(), cfg.schematic_vars() + 2 * 2);
        let s = small();
        assert_eq!(s.var_space(Stage::Schematic).len(), cfg.schematic_vars());
        assert_eq!(s.var_space(Stage::PostLayout).len(), cfg.post_layout_vars());
    }

    #[test]
    fn paper_config_variable_count() {
        let c = SramConfig::paper();
        assert_eq!(c.post_layout_vars(), 66_117);
    }

    #[test]
    fn nominal_delay_close_to_sum_of_stages() {
        let s = small();
        let x = vec![0.0; s.config().schematic_vars()];
        let t = s.read_delay().evaluate(Stage::Schematic, &x).unwrap();
        // The leakage term slightly slows the bitline even at nominal.
        let approx = s.nominal_delay();
        assert!(t >= approx);
        assert!(t < approx * 1.1, "t={t}, approx={approx}");
    }

    #[test]
    fn post_layout_is_slower() {
        let s = small();
        let ts = s
            .read_delay()
            .evaluate(Stage::Schematic, &vec![0.0; s.config().schematic_vars()])
            .unwrap();
        let tl = s
            .read_delay()
            .evaluate(Stage::PostLayout, &vec![0.0; s.config().post_layout_vars()])
            .unwrap();
        assert!(tl > ts, "post-layout {tl} should exceed schematic {ts}");
    }

    #[test]
    fn accessed_cell_dominates_unaccessed() {
        let s = small();
        let n = s.config().schematic_vars();
        let d = s.read_delay();
        let base = d.evaluate(Stage::Schematic, &vec![0.0; n]).unwrap();
        // Bump the accessed cell's first parameter (col0.cell0).
        let acc = s.var_space(Stage::Schematic).group("col0.cell0").unwrap();
        let mut x = vec![0.0; n];
        x[acc.range.start] = 1.0;
        let d_acc = (d.evaluate(Stage::Schematic, &x).unwrap() - base).abs();
        // Bump an unaccessed cell's first parameter (col0.cell5).
        let una = s.var_space(Stage::Schematic).group("col0.cell5").unwrap();
        let mut y = vec![0.0; n];
        y[una.range.start] = 1.0;
        let d_una = (d.evaluate(Stage::Schematic, &y).unwrap() - base).abs();
        assert!(
            d_acc > 5.0 * d_una,
            "accessed-cell effect {d_acc} should dwarf unaccessed {d_una}"
        );
        assert!(d_una > 0.0, "unaccessed cells must still matter");
    }

    #[test]
    fn parasitics_affect_only_post_layout() {
        let s = small();
        let n_sch = s.config().schematic_vars();
        let n_lay = s.config().post_layout_vars();
        let d = s.read_delay();
        let mut x = vec![0.0; n_lay];
        let base = d.evaluate(Stage::PostLayout, &x).unwrap();
        x[n_sch] = 2.0;
        assert_ne!(base, d.evaluate(Stage::PostLayout, &x).unwrap());
    }

    #[test]
    fn monte_carlo_spread_plausible() {
        let s = small();
        let d = s.read_delay();
        let set = monte_carlo(&d, Stage::PostLayout, 300, 5).unwrap();
        let sum = bmf_stat::summary::Summary::from_slice(&set.values);
        let cov = sum.coefficient_of_variation();
        assert!(cov > 0.002 && cov < 0.2, "cov={cov}");
        // Delay distribution is right-skewed (reciprocal of current).
        assert!(sum.skewness() > -0.5, "skew={}", sum.skewness());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SramReadPath::new(SramConfig::small(), 7);
        let b = SramReadPath::new(SramConfig::small(), 7);
        let x: Vec<f64> = (0..a.config().post_layout_vars())
            .map(|i| ((i * 31 % 17) as f64 - 8.0) / 8.0)
            .collect();
        assert_eq!(
            a.read_delay().evaluate(Stage::PostLayout, &x),
            b.read_delay().evaluate(Stage::PostLayout, &x)
        );
    }

    #[test]
    fn early_late_sensitivities_correlate() {
        let s = SramReadPath::new(SramConfig::small(), 21);
        let n_sch = s.config().schematic_vars();
        let n_lay = s.config().post_layout_vars();
        let d = s.read_delay();
        let h = 0.05;
        let f0s = d.evaluate(Stage::Schematic, &vec![0.0; n_sch]).unwrap();
        let f0l = d.evaluate(Stage::PostLayout, &vec![0.0; n_lay]).unwrap();
        let (mut dot, mut na, mut nb) = (0.0, 0.0, 0.0);
        for i in 0..n_sch {
            let mut xs = vec![0.0; n_sch];
            xs[i] = h;
            let gs = (d.evaluate(Stage::Schematic, &xs).unwrap() - f0s) / h / f0s;
            let mut xl = vec![0.0; n_lay];
            xl[i] = h;
            let gl = (d.evaluate(Stage::PostLayout, &xl).unwrap() - f0l) / h / f0l;
            dot += gs * gl;
            na += gs * gs;
            nb += gl * gl;
        }
        let corr = dot / (na.sqrt() * nb.sqrt());
        assert!(corr > 0.85, "correlation {corr} too weak");
    }
}
