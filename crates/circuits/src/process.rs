//! Process-variation bookkeeping: a registry of independent standard
//! normal variation variables.
//!
//! The process design kit convention the paper adopts (eq. 1) models all
//! device-level variations as a vector of independent `N(0, 1)` variables;
//! physical magnitudes live in per-device *sensitivities*. [`VarSpace`]
//! allocates contiguous, named ranges of such variables (interdie
//! parameters, per-device mismatch groups, parasitic groups) so circuit
//! models can document and address their variation layout, and
//! [`pelgrom_sigma`] supplies the classic area scaling law used to set
//! mismatch sensitivities.

use std::ops::Range;

/// Pelgrom mismatch coefficient for threshold voltage, in V·µm.
///
/// Representative of a 32 nm-class process: `σ(ΔV_TH) = A_VT / √(W·L)`.
pub const A_VT: f64 = 1.8e-3;

/// Pelgrom mismatch coefficient for the current factor β (relative), in
/// %·µm ≈ fraction·µm.
pub const A_BETA: f64 = 0.01;

/// Pelgrom area scaling: `σ = a / √(w_um · l_um)`.
///
/// # Panics
///
/// Panics when the area is not positive.
///
/// ```
/// let s = bmf_circuits::process::pelgrom_sigma(1.8e-3, 1.0, 0.032);
/// assert!(s > 0.0);
/// ```
pub fn pelgrom_sigma(a: f64, w_um: f64, l_um: f64) -> f64 {
    assert!(w_um > 0.0 && l_um > 0.0, "device area must be positive");
    a / (w_um * l_um).sqrt()
}

/// A named, contiguous group of variation variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarGroup {
    /// Group label, e.g. `"stage3.nmos.mismatch"`.
    pub name: String,
    /// Index range within the variation vector.
    pub range: Range<usize>,
}

/// An append-only registry of variation variables.
///
/// Circuit models allocate their variables through a `VarSpace` so the
/// final vector layout is self-describing. Allocation order is the vector
/// order; the schematic stage allocates first and the post-layout stage
/// appends parasitic groups, which realizes the embedding convention of
/// [`crate::stage`].
///
/// # Example
///
/// ```
/// use bmf_circuits::process::VarSpace;
///
/// let mut vs = VarSpace::new();
/// let interdie = vs.alloc("interdie", 10);
/// let m1 = vs.alloc("m1.mismatch", 40);
/// assert_eq!(interdie, 0..10);
/// assert_eq!(m1, 10..50);
/// assert_eq!(vs.len(), 50);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VarSpace {
    groups: Vec<VarGroup>,
    len: usize,
}

impl VarSpace {
    /// Creates an empty registry.
    pub fn new() -> Self {
        VarSpace::default()
    }

    /// Allocates `count` fresh variables under `name`, returning their
    /// index range.
    pub fn alloc(&mut self, name: &str, count: usize) -> Range<usize> {
        let range = self.len..self.len + count;
        self.groups.push(VarGroup {
            name: name.to_owned(),
            range: range.clone(),
        });
        self.len += count;
        range
    }

    /// Total number of variables allocated.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All groups, in allocation order.
    pub fn groups(&self) -> &[VarGroup] {
        &self.groups
    }

    /// Finds a group by exact name.
    pub fn group(&self, name: &str) -> Option<&VarGroup> {
        self.groups.iter().find(|g| g.name == name)
    }

    /// The group containing variable `idx`, if any.
    pub fn group_of(&self, idx: usize) -> Option<&VarGroup> {
        self.groups.iter().find(|g| g.range.contains(&idx))
    }
}

/// A linear sensitivity map: a sparse list of `(variable, weight)` pairs
/// plus an offset, representing `v(x) = offset + Σ w_i·x_i`.
///
/// Device parameters (ΔV_TH, Δβ, parasitic ΔC, …) are affine functions of
/// the standard normal variation vector; this is the common representation
/// the behavioral circuit models evaluate per sample.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Sensitivity {
    /// Nominal value.
    pub offset: f64,
    /// Sparse `(variable index, weight)` pairs.
    pub weights: Vec<(usize, f64)>,
}

impl Sensitivity {
    /// A constant with no variation dependence.
    pub fn constant(offset: f64) -> Self {
        Sensitivity {
            offset,
            weights: Vec::new(),
        }
    }

    /// Creates an affine map with the given nominal and weights.
    pub fn new(offset: f64, weights: Vec<(usize, f64)>) -> Self {
        Sensitivity { offset, weights }
    }

    /// Adds a dependence `weight · x_var`.
    pub fn push(&mut self, var: usize, weight: f64) {
        self.weights.push((var, weight));
    }

    /// Evaluates at the variation vector `x`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when a referenced variable is out of
    /// bounds.
    pub fn eval(&self, x: &[f64]) -> f64 {
        let mut v = self.offset;
        for &(i, w) in &self.weights {
            debug_assert!(i < x.len(), "sensitivity references variable {i}");
            v += w * x[i];
        }
        v
    }

    /// Total variance contributed when `x ~ N(0, I)`: `Σ w_i²`.
    pub fn variance(&self) -> f64 {
        self.weights.iter().map(|&(_, w)| w * w).sum()
    }

    /// Scales every weight by `factor` (systematic layout shift).
    pub fn scale_weights(&mut self, factor: f64) {
        for (_, w) in &mut self.weights {
            *w *= factor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_contiguous_and_ordered() {
        let mut vs = VarSpace::new();
        let a = vs.alloc("a", 3);
        let b = vs.alloc("b", 2);
        assert_eq!(a, 0..3);
        assert_eq!(b, 3..5);
        assert_eq!(vs.len(), 5);
        assert!(!vs.is_empty());
    }

    #[test]
    fn group_lookup() {
        let mut vs = VarSpace::new();
        vs.alloc("interdie", 4);
        vs.alloc("m1", 2);
        assert_eq!(vs.group("m1").unwrap().range, 4..6);
        assert!(vs.group("missing").is_none());
        assert_eq!(vs.group_of(5).unwrap().name, "m1");
        assert_eq!(vs.group_of(0).unwrap().name, "interdie");
        assert!(vs.group_of(99).is_none());
    }

    #[test]
    fn zero_size_group_allowed() {
        let mut vs = VarSpace::new();
        let r = vs.alloc("empty", 0);
        assert_eq!(r, 0..0);
        assert_eq!(vs.len(), 0);
    }

    #[test]
    fn pelgrom_scales_inverse_sqrt_area() {
        let s1 = pelgrom_sigma(1.0, 1.0, 1.0);
        let s4 = pelgrom_sigma(1.0, 2.0, 2.0);
        assert!((s1 / s4 - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn pelgrom_rejects_zero_area() {
        pelgrom_sigma(1.0, 0.0, 1.0);
    }

    #[test]
    fn sensitivity_eval_and_variance() {
        let s = Sensitivity::new(2.0, vec![(0, 0.5), (2, -0.25)]);
        assert_eq!(s.eval(&[1.0, 9.0, 4.0]), 2.0 + 0.5 - 1.0);
        assert!((s.variance() - (0.25 + 0.0625)).abs() < 1e-12);
    }

    #[test]
    fn sensitivity_scaling() {
        let mut s = Sensitivity::new(1.0, vec![(0, 2.0)]);
        s.scale_weights(0.5);
        assert_eq!(s.eval(&[1.0]), 2.0);
        assert_eq!(s.offset, 1.0);
    }

    #[test]
    fn constant_has_no_variance() {
        let s = Sensitivity::constant(3.3);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.eval(&[]), 3.3);
    }
}
