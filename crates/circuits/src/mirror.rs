//! A MOS current mirror solved with the nonlinear (Newton) DC engine.
//!
//! Fourth test circuit, exercising the large-signal solver per
//! Monte-Carlo sample: a diode-connected reference device sets the gate
//! bias, a mirror device copies the current into a load. The metric is
//! the **mirror output current**, whose variation comes from V_TH and
//! k-factor mismatch between the two devices — the canonical analog
//! mismatch problem. The post-layout stage adds systematic threshold
//! shifts (stress/proximity effects) with their own variation variables.

use bmf_stat::normal::StandardNormal;
use bmf_stat::rng::{derive_seed, seeded};

use crate::error::{check_var_count, CircuitError};
use crate::process::Sensitivity;
use crate::spice::circuit::Circuit;
use crate::spice::mosfet::{Mosfet, MosfetModel, NewtonOptions, NonlinearCircuit, Polarity};
use crate::stage::{CircuitPerformance, Stage};

/// Configuration of the current mirror.
#[derive(Debug, Clone, PartialEq)]
pub struct MirrorConfig {
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Reference resistor from VDD to the diode device, ohms.
    pub r_ref: f64,
    /// Load resistor on the mirror output, ohms.
    pub r_load: f64,
    /// Nominal threshold voltage, volts.
    pub vth: f64,
    /// Nominal transconductance parameter, A/V².
    pub k: f64,
    /// Mismatch variables per device.
    pub params_per_device: usize,
    /// Interdie variables.
    pub interdie_vars: usize,
    /// Post-layout stress/proximity variables.
    pub stress_vars: usize,
    /// 1σ of per-device ΔV_TH, volts.
    pub sigma_vth: f64,
    /// Relative 1σ of per-device k.
    pub sigma_k: f64,
    /// Systematic post-layout V_TH shift, volts.
    pub layout_vth_shift: f64,
    /// 1σ of the post-layout stress-induced ΔV_TH, volts.
    pub sigma_stress: f64,
    /// Systematic schematic→layout sensitivity scatter.
    pub layout_shift_rel: f64,
    /// Simulated cost of one schematic sample, hours.
    pub sch_cost_hours: f64,
    /// Simulated cost of one post-layout sample, hours.
    pub lay_cost_hours: f64,
}

impl Default for MirrorConfig {
    fn default() -> Self {
        MirrorConfig {
            vdd: 1.8,
            r_ref: 15_000.0,
            r_load: 5_000.0,
            vth: 0.4,
            k: 2.0e-3,
            params_per_device: 6,
            interdie_vars: 4,
            stress_vars: 3,
            sigma_vth: 4.0e-3,
            sigma_k: 0.03,
            layout_vth_shift: 8.0e-3,
            sigma_stress: 3.0e-3,
            layout_shift_rel: 0.15,
            sch_cost_hours: 2.0 / 3600.0,
            lay_cost_hours: 25.0 / 3600.0,
        }
    }
}

impl MirrorConfig {
    /// Schematic-stage variable count (interdie + two devices).
    pub fn schematic_vars(&self) -> usize {
        self.interdie_vars + 2 * self.params_per_device
    }

    /// Post-layout variable count.
    pub fn post_layout_vars(&self) -> usize {
        self.schematic_vars() + self.stress_vars
    }
}

/// A seeded current mirror with schematic and post-layout views.
///
/// # Example
///
/// ```
/// use bmf_circuits::mirror::{CurrentMirror, MirrorConfig};
/// use bmf_circuits::stage::{CircuitPerformance, Stage};
///
/// let m = CurrentMirror::new(MirrorConfig::default(), 1);
/// let i = m.output_current();
/// let nominal = i.evaluate(Stage::Schematic, &vec![0.0; i.num_vars(Stage::Schematic)])?;
/// assert!(nominal > 1e-5 && nominal < 1e-3); // tens of µA
/// # Ok::<(), bmf_circuits::error::CircuitError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CurrentMirror {
    config: MirrorConfig,
    /// ΔV_TH sensitivities for (reference, mirror) × (schematic, layout).
    vth_sens: [[Sensitivity; 2]; 2],
    /// Relative Δk sensitivities, same layout.
    k_sens: [[Sensitivity; 2]; 2],
    /// Post-layout stress ΔV_TH on the mirror device.
    stress_sens: Sensitivity,
}

impl CurrentMirror {
    /// Builds a mirror with sensitivities drawn from `seed`.
    pub fn new(config: MirrorConfig, seed: u64) -> Self {
        let ppd = config.params_per_device;
        let interdie = 0..config.interdie_vars;
        let dev = |d: usize| {
            let start = config.interdie_vars + d * ppd;
            start..start + ppd
        };
        let stress_range = config.schematic_vars()..config.schematic_vars() + config.stress_vars;

        let make = |range: std::ops::Range<usize>, sigma: f64, stream: u64| -> Sensitivity {
            let mut s = Sensitivity::constant(0.0);
            s.weights
                .extend(weights(interdie.clone(), sigma * 0.3, seed, stream * 2));
            s.weights
                .extend(weights(range, sigma, seed, stream * 2 + 1));
            s
        };
        let scatter = |s: &Sensitivity, stream: u64| -> Sensitivity {
            let mut rng = seeded(derive_seed(seed, 600 + stream));
            let mut smp = StandardNormal::new();
            Sensitivity {
                offset: s.offset,
                weights: s
                    .weights
                    .iter()
                    .map(|&(v, w)| {
                        (
                            v,
                            w * (1.0 + config.layout_shift_rel * smp.sample(&mut rng)),
                        )
                    })
                    .collect(),
            }
        };

        let vth_ref = make(dev(0), config.sigma_vth, 1);
        let vth_mir = make(dev(1), config.sigma_vth, 2);
        let k_ref = make(dev(0), config.sigma_k, 3);
        let k_mir = make(dev(1), config.sigma_k, 4);
        let mut stress_sens = Sensitivity::constant(0.0);
        stress_sens
            .weights
            .extend(weights(stress_range, config.sigma_stress, seed, 9));

        CurrentMirror {
            vth_sens: [
                [vth_ref.clone(), scatter(&vth_ref, 1)],
                [vth_mir.clone(), scatter(&vth_mir, 2)],
            ],
            k_sens: [
                [k_ref.clone(), scatter(&k_ref, 3)],
                [k_mir.clone(), scatter(&k_mir, 4)],
            ],
            stress_sens,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MirrorConfig {
        &self.config
    }

    /// The output-current [`CircuitPerformance`] view.
    pub fn output_current(&self) -> MirrorPerformance<'_> {
        MirrorPerformance { mirror: self }
    }
}

fn weights(range: std::ops::Range<usize>, sigma: f64, seed: u64, stream: u64) -> Vec<(usize, f64)> {
    if range.is_empty() || bmf_linalg::is_exact_zero(sigma) {
        return Vec::new();
    }
    let mut rng = seeded(derive_seed(seed, 500 + stream));
    let mut smp = StandardNormal::new();
    let mut w: Vec<(usize, f64)> = range
        .enumerate()
        .map(|(j, v)| (v, smp.sample(&mut rng) / (1.0 + j as f64).powf(1.3)))
        .collect();
    let norm: f64 = w.iter().map(|&(_, v)| v * v).sum::<f64>().sqrt();
    for (_, v) in &mut w {
        *v *= sigma / norm;
    }
    w
}

/// The output-current view borrowed from a [`CurrentMirror`].
#[derive(Debug, Clone, Copy)]
pub struct MirrorPerformance<'a> {
    mirror: &'a CurrentMirror,
}

impl CircuitPerformance for MirrorPerformance<'_> {
    fn name(&self) -> &str {
        "mirror.output_current"
    }

    fn num_vars(&self, stage: Stage) -> usize {
        match stage {
            Stage::Schematic => self.mirror.config.schematic_vars(),
            Stage::PostLayout => self.mirror.config.post_layout_vars(),
        }
    }

    fn evaluate(&self, stage: Stage, x: &[f64]) -> Result<f64, CircuitError> {
        check_var_count(self.name(), stage, self.num_vars(stage), x.len())?;
        let cfg = &self.mirror.config;
        let si = match stage {
            Stage::Schematic => 0usize,
            Stage::PostLayout => 1usize,
        };
        // Pad so layout-only slots exist when evaluating the schematic.
        let padded: Vec<f64>;
        let xs: &[f64] = if stage == Stage::Schematic {
            padded = {
                let mut p = x.to_vec();
                p.resize(cfg.post_layout_vars(), 0.0);
                p
            };
            &padded
        } else {
            x
        };

        let mut models = [
            MosfetModel::nmos(cfg.vth, cfg.k),
            MosfetModel::nmos(cfg.vth, cfg.k),
        ];
        for (d, model) in models.iter_mut().enumerate() {
            model.vth += self.mirror.vth_sens[d][si].eval(xs);
            model.k *= (1.0 + self.mirror.k_sens[d][si].eval(xs)).max(0.2);
            if stage == Stage::PostLayout && d == 1 {
                model.vth += cfg.layout_vth_shift + self.mirror.stress_sens.eval(xs);
            }
            debug_assert_eq!(model.polarity, Polarity::Nmos);
        }

        // Netlist: VDD --R_ref-- diode(ref) ; VDD --R_load-- mirror drain.
        let mut lin = Circuit::new();
        let vdd = lin.node();
        let gate = lin.node();
        let out = lin.node();
        lin.voltage_source(vdd, Circuit::GND, cfg.vdd);
        lin.resistor(vdd, gate, cfg.r_ref);
        lin.resistor(vdd, out, cfg.r_load);
        let ckt = NonlinearCircuit {
            linear: lin,
            mosfets: vec![
                Mosfet {
                    drain: gate,
                    gate,
                    source: Circuit::GND,
                    model: models[0],
                },
                Mosfet {
                    drain: out,
                    gate,
                    source: Circuit::GND,
                    model: models[1],
                },
            ],
        };
        let op = crate::spice::mosfet::solve_dc_nonlinear(&ckt, &NewtonOptions::default())
            .map_err(|e| CircuitError::Solver {
                circuit: self.name().to_string(),
                detail: e.to_string(),
            })?;
        Ok(op.drain_currents[1])
    }

    fn sim_cost_hours(&self, stage: Stage) -> f64 {
        match stage {
            Stage::Schematic => self.mirror.config.sch_cost_hours,
            Stage::PostLayout => self.mirror.config.lay_cost_hours,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::monte_carlo;

    fn mirror() -> CurrentMirror {
        CurrentMirror::new(MirrorConfig::default(), 7)
    }

    #[test]
    fn nominal_mirror_copies_reference_current() {
        let m = mirror();
        let view = m.output_current();
        let x = vec![0.0; m.config().schematic_vars()];
        let iout = view.evaluate(Stage::Schematic, &x).unwrap();
        // Reference current through R_ref at the diode voltage.
        // Matched devices and low lambda: I_out ≈ I_ref within a few %.
        // I_ref ≈ (VDD − V_diode)/R_ref with V_diode ≈ vth + sqrt(2 I/k).
        assert!(iout > 20e-6 && iout < 120e-6, "iout = {iout}");
    }

    #[test]
    fn layout_vth_shift_reduces_output_current() {
        let m = mirror();
        let view = m.output_current();
        let i_sch = view
            .evaluate(Stage::Schematic, &vec![0.0; m.config().schematic_vars()])
            .unwrap();
        let i_lay = view
            .evaluate(Stage::PostLayout, &vec![0.0; m.config().post_layout_vars()])
            .unwrap();
        assert!(
            i_lay < i_sch,
            "higher mirror V_TH must reduce the copied current: {i_lay} vs {i_sch}"
        );
    }

    #[test]
    fn vth_mismatch_moves_current() {
        let m = mirror();
        let view = m.output_current();
        let n = m.config().schematic_vars();
        let base = view.evaluate(Stage::Schematic, &vec![0.0; n]).unwrap();
        // Bump the mirror device's first mismatch variable.
        let mut x = vec![0.0; n];
        x[m.config().interdie_vars + m.config().params_per_device] = 2.0;
        let bumped = view.evaluate(Stage::Schematic, &x).unwrap();
        assert!(
            (bumped - base).abs() / base > 1e-3,
            "mismatch has no effect"
        );
    }

    #[test]
    fn monte_carlo_spread_is_mismatch_dominated() {
        let m = mirror();
        let view = m.output_current();
        let set = monte_carlo(&view, Stage::PostLayout, 200, 3).unwrap();
        let s = bmf_stat::summary::Summary::from_slice(&set.values);
        let cov = s.coefficient_of_variation();
        assert!(cov > 0.005 && cov < 0.25, "cov = {cov}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = CurrentMirror::new(MirrorConfig::default(), 4);
        let b = CurrentMirror::new(MirrorConfig::default(), 4);
        let x: Vec<f64> = (0..a.config().post_layout_vars())
            .map(|i| ((i * 7 % 5) as f64 - 2.0) / 4.0)
            .collect();
        assert_eq!(
            a.output_current().evaluate(Stage::PostLayout, &x),
            b.output_current().evaluate(Stage::PostLayout, &x)
        );
    }
}
