//! Monte-Carlo sampling engine with a simulated-cost ledger.
//!
//! The paper's cost analysis (Tables IV and VI) splits the total modeling
//! cost into *simulation cost* (dominant: hours of transistor-level
//! Monte-Carlo) and *fitting cost* (seconds of solver time). Our substitute
//! circuits evaluate in microseconds, so the engine carries a ledger that
//! charges each sample its *simulated* cost — the per-sample hours a
//! commercial simulator would have spent — while fitting cost is measured
//! as real wall-clock by the harness.
//!
//! Sampling is deterministic and *stable under parallelism*: each sample's
//! variation vector is generated from a seed derived from `(master seed,
//! sample index)`, so [`monte_carlo`] and [`monte_carlo_par`] produce
//! identical sample sets.

use bmf_stat::normal::StandardNormal;
use bmf_stat::rng::{derive_seed, seeded};

use crate::error::CircuitError;
use crate::stage::{CircuitPerformance, Stage};

/// A set of Monte-Carlo samples of one metric at one stage.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleSet {
    /// Stage the samples were collected at.
    pub stage: Stage,
    /// Variation vectors, one per sample (each of length `num_vars(stage)`).
    pub points: Vec<Vec<f64>>,
    /// Metric values, one per sample.
    pub values: Vec<f64>,
    /// Simulated cost of producing this set, in hours.
    pub cost_hours: f64,
}

impl SampleSet {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the set holds no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrows the sample points as slices (the shape design-matrix
    /// builders expect).
    pub fn point_slices(&self) -> impl Iterator<Item = &[f64]> {
        self.points.iter().map(|p| p.as_slice())
    }

    /// Splits off the first `k` samples into a new set, keeping the rest.
    /// Cost is split proportionally.
    ///
    /// # Panics
    ///
    /// Panics when `k > self.len()`.
    pub fn take_prefix(&self, k: usize) -> SampleSet {
        assert!(k <= self.len(), "cannot take {k} of {}", self.len());
        let frac = if self.is_empty() {
            0.0
        } else {
            k as f64 / self.len() as f64
        };
        SampleSet {
            stage: self.stage,
            points: self.points[..k].to_vec(),
            values: self.values[..k].to_vec(),
            cost_hours: self.cost_hours * frac,
        }
    }

    /// Selects the samples at `indices` (used by cross-validation folds).
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range.
    pub fn select(&self, indices: &[usize]) -> SampleSet {
        let frac = if self.is_empty() {
            0.0
        } else {
            indices.len() as f64 / self.len() as f64
        };
        SampleSet {
            stage: self.stage,
            points: indices.iter().map(|&i| self.points[i].clone()).collect(),
            values: indices.iter().map(|&i| self.values[i]).collect(),
            cost_hours: self.cost_hours * frac,
        }
    }
}

/// Draws `k` Monte-Carlo samples of `circuit` at `stage`.
///
/// Each sample's variation vector is standard normal, generated from
/// `derive_seed(seed, index)`; the ledger is charged
/// `k · circuit.sim_cost_hours(stage)`.
///
/// # Errors
///
/// Propagates the first [`CircuitError`] any sample evaluation produces.
pub fn monte_carlo(
    circuit: &dyn CircuitPerformance,
    stage: Stage,
    k: usize,
    seed: u64,
) -> Result<SampleSet, CircuitError> {
    let n = circuit.num_vars(stage);
    let mut points = Vec::with_capacity(k);
    let mut values = Vec::with_capacity(k);
    for i in 0..k {
        let x = sample_point(n, seed, i as u64);
        let f = circuit.evaluate(stage, &x)?;
        points.push(x);
        values.push(f);
    }
    Ok(SampleSet {
        stage,
        points,
        values,
        cost_hours: k as f64 * circuit.sim_cost_hours(stage),
    })
}

/// Parallel variant of [`monte_carlo`] fanning chunks out over scoped
/// threads. Produces a bit-identical result to the sequential version.
///
/// # Errors
///
/// Propagates the lowest-indexed [`CircuitError`] any sample evaluation
/// produces (workers stop at their first error; the sequential and
/// parallel variants report the same error for the same inputs).
pub fn monte_carlo_par(
    circuit: &dyn CircuitPerformance,
    stage: Stage,
    k: usize,
    seed: u64,
    threads: usize,
) -> Result<SampleSet, CircuitError> {
    let threads = threads.max(1);
    if threads == 1 || k < 2 * threads {
        return monte_carlo(circuit, stage, k, seed);
    }
    let n = circuit.num_vars(stage);
    let chunk = k.div_ceil(threads);
    let mut results: Vec<ChunkResult> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(k);
            if lo >= hi {
                break;
            }
            handles.push(scope.spawn(move || {
                (lo..hi)
                    .map(|i| {
                        let x = sample_point(n, seed, i as u64);
                        let f = circuit.evaluate(stage, &x)?;
                        Ok((x, f))
                    })
                    .collect::<Result<Vec<_>, CircuitError>>()
            }));
        }
        for h in handles {
            // bmf-lint: allow(no-panic-paths) -- re-raising a worker panic on join is the only sane propagation
            results.push(h.join().expect("sampler thread panicked"));
        }
    });

    let mut points = Vec::with_capacity(k);
    let mut values = Vec::with_capacity(k);
    for chunk in results {
        for (x, f) in chunk? {
            points.push(x);
            values.push(f);
        }
    }
    Ok(SampleSet {
        stage,
        points,
        values,
        cost_hours: k as f64 * circuit.sim_cost_hours(stage),
    })
}

/// One worker's output: its chunk of `(point, value)` samples, or the
/// first evaluation error it hit.
type ChunkResult = Result<Vec<(Vec<f64>, f64)>, CircuitError>;

fn sample_point(n: usize, seed: u64, index: u64) -> Vec<f64> {
    let mut rng = seeded(derive_seed(seed, index));
    let mut sampler = StandardNormal::new();
    sampler.sample_vec(&mut rng, n)
}

/// Accumulates the two cost components of a modeling run, mirroring the
/// rows of the paper's Tables IV/VI.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostLedger {
    /// Simulated transistor-level simulation cost, in hours.
    pub simulation_hours: f64,
    /// Measured model-fitting cost, in seconds.
    pub fitting_seconds: f64,
}

impl CostLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        CostLedger::default()
    }

    /// Charges the simulation cost of `set`.
    pub fn charge_samples(&mut self, set: &SampleSet) {
        self.simulation_hours += set.cost_hours;
    }

    /// Charges `seconds` of fitting time.
    pub fn charge_fitting_seconds(&mut self, seconds: f64) {
        self.fitting_seconds += seconds;
    }

    /// Total modeling cost in hours (simulation + fitting).
    pub fn total_hours(&self) -> f64 {
        self.simulation_hours + self.fitting_seconds / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Sum {
        vars: usize,
    }
    impl CircuitPerformance for Sum {
        fn name(&self) -> &str {
            "sum"
        }
        fn num_vars(&self, _stage: Stage) -> usize {
            self.vars
        }
        fn evaluate(&self, _stage: Stage, x: &[f64]) -> Result<f64, CircuitError> {
            Ok(x.iter().sum())
        }
        fn sim_cost_hours(&self, stage: Stage) -> f64 {
            match stage {
                Stage::Schematic => 0.001,
                Stage::PostLayout => 0.014,
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let c = Sum { vars: 5 };
        let a = monte_carlo(&c, Stage::Schematic, 8, 42).unwrap();
        let b = monte_carlo(&c, Stage::Schematic, 8, 42).unwrap();
        assert_eq!(a, b);
        let c2 = monte_carlo(&c, Stage::Schematic, 8, 43).unwrap();
        assert_ne!(a.values, c2.values);
    }

    #[test]
    fn extending_k_preserves_prefix() {
        // Sample i depends only on (seed, i): growing K must not change
        // earlier samples.
        let c = Sum { vars: 3 };
        let small = monte_carlo(&c, Stage::PostLayout, 4, 7).unwrap();
        let big = monte_carlo(&c, Stage::PostLayout, 10, 7).unwrap();
        assert_eq!(&big.points[..4], &small.points[..]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let c = Sum { vars: 4 };
        let seq = monte_carlo(&c, Stage::Schematic, 23, 5).unwrap();
        let par = monte_carlo_par(&c, Stage::Schematic, 23, 5, 4).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn cost_charged_per_sample() {
        let c = Sum { vars: 2 };
        let s = monte_carlo(&c, Stage::PostLayout, 100, 1).unwrap();
        assert!((s.cost_hours - 1.4).abs() < 1e-12);
    }

    #[test]
    fn take_prefix_splits_cost() {
        let c = Sum { vars: 2 };
        let s = monte_carlo(&c, Stage::Schematic, 10, 1).unwrap();
        let head = s.take_prefix(4);
        assert_eq!(head.len(), 4);
        assert!((head.cost_hours - 0.4 * s.cost_hours / 1.0).abs() < 1e-12);
        assert_eq!(head.points[3], s.points[3]);
    }

    #[test]
    fn select_picks_indices() {
        let c = Sum { vars: 2 };
        let s = monte_carlo(&c, Stage::Schematic, 5, 9).unwrap();
        let sel = s.select(&[4, 0]);
        assert_eq!(sel.len(), 2);
        assert_eq!(sel.values[0], s.values[4]);
        assert_eq!(sel.values[1], s.values[0]);
    }

    #[test]
    fn samples_look_standard_normal() {
        let c = Sum { vars: 1 };
        let s = monte_carlo(&c, Stage::Schematic, 20_000, 3).unwrap();
        let mean: f64 = s.values.iter().sum::<f64>() / s.len() as f64;
        let var: f64 = s
            .values
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / (s.len() - 1) as f64;
        assert!(mean.abs() < 0.03);
        assert!((var - 1.0).abs() < 0.05);
    }

    #[test]
    fn ledger_accumulates() {
        let c = Sum { vars: 2 };
        let s = monte_carlo(&c, Stage::PostLayout, 10, 1).unwrap();
        let mut ledger = CostLedger::new();
        ledger.charge_samples(&s);
        ledger.charge_fitting_seconds(7.2);
        assert!((ledger.simulation_hours - 0.14).abs() < 1e-12);
        assert!((ledger.total_hours() - (0.14 + 7.2 / 3600.0)).abs() < 1e-12);
    }
}
