//! Variation-aware AMS circuit substrate for the BMF reproduction.
//!
//! The paper evaluates BMF on two circuits designed in a commercial 32 nm
//! CMOS SOI process — a ring oscillator (7 177 variation variables) and an
//! SRAM read path (66 117 variables) — simulated with a commercial
//! transistor-level simulator where one post-layout Monte-Carlo sample costs
//! minutes of CPU. Neither the PDK nor the simulator is available, so this
//! crate builds the closest open substitute (see DESIGN.md §2):
//!
//! * [`process`] — a Pelgrom-style process-variation kit that lays out
//!   interdie and per-device mismatch variables as independent standard
//!   normals (the paper's eq. 1 convention);
//! * [`spice`] — a small modified-nodal-analysis (MNA) circuit solver
//!   (DC, backward-Euler transient, Elmore delay) used for the
//!   differential-pair offset example of §IV-A and for parasitic
//!   delay modeling;
//! * [`ro`] — a behavioral ring-oscillator with per-stage device models
//!   producing power / phase-noise / frequency metrics;
//! * [`sram`] — a behavioral SRAM read path (wordline driver, bit cells,
//!   bitline, sense amplifier) producing read delay;
//! * [`diffpair`] — the multifinger differential pair, solved through the
//!   MNA engine, used to exercise prior mapping;
//! * [`sim`] — the Monte-Carlo engine with a *simulated-cost ledger* so the
//!   paper's cost tables (IV/VI) can be reproduced in shape;
//! * [`synthetic`] — a fully controlled early/late model-pair generator
//!   for unit tests and ablations;
//! * [`traffic`] — a deterministic open-loop request-stream generator
//!   (seeded exponential arrivals, mixed fit/predict/evict traffic with
//!   hot/cold job skew) that drives the fitting-as-a-service benchmarks.
//!
//! Every circuit exposes an early (schematic) and a late (post-layout)
//! stage of the *same* underlying truth: post-layout adds systematic
//! coefficient shifts and extra parasitic variation variables, which is
//! exactly the structure BMF's priors (§III–IV) are designed to exploit.
//!
//! # Example
//!
//! ```
//! use bmf_circuits::ro::{RingOscillator, RoConfig, RoMetric};
//! use bmf_circuits::sim::monte_carlo;
//! use bmf_circuits::stage::{CircuitPerformance, Stage};
//!
//! let ro = RingOscillator::new(RoConfig::small(), 42);
//! let freq = ro.metric(RoMetric::Frequency);
//! let set = monte_carlo(&freq, Stage::PostLayout, 10, 7)?;
//! assert_eq!(set.values.len(), 10);
//! assert!(set.cost_hours > 0.0);
//! # Ok::<(), bmf_circuits::error::CircuitError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod amplifier;
pub mod diffpair;
pub mod error;
pub mod mirror;
pub mod process;
pub mod ro;
pub mod sim;
pub mod spice;
pub mod sram;
pub mod stage;
pub mod synthetic;
pub mod traffic;
