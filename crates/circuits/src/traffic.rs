//! Deterministic open-loop service traffic for the fitting-as-a-service
//! engine.
//!
//! A production characterization service sees a *stream*: mostly
//! predictions against already-fitted models, punctuated by fresh fits
//! when new late-stage samples land and evictions when a block is
//! re-spun. This module generates that stream deterministically so the
//! service benchmarks (`bmf_core::service` driven by `bmf-bench`) are
//! byte-reproducible:
//!
//! * **open-loop arrivals** — request timestamps follow a seeded
//!   exponential (Poisson-process) inter-arrival draw, independent of
//!   how fast the server happens to run, which is what exposes queueing
//!   tails (p99/p999) honestly;
//! * **mixed request kinds** — fit/predict/evict ratios are configured
//!   in permille and drawn per request;
//! * **skewed job popularity** — a hot subset of job ids receives the
//!   bulk of the traffic (characterization flows hammer the metrics of
//!   the block under revision), exercising registry shards unevenly;
//! * **point-set groups** — each job belongs to one shared sample-point
//!   group, so concurrent fits coalesce exactly as they would in a real
//!   many-metric characterization run.
//!
//! The generator emits request *descriptors* only (kind, job, group,
//! timestamp); payload synthesis (priors, response values, probe points)
//! belongs to the consumer, which keeps this module reusable for any
//! service front.

use bmf_stat::rng::{seeded, Rng};

/// What a traffic event asks the service to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Submit a fit request (enqueue + coalesce).
    Fit,
    /// Predict from the model registry.
    Predict,
    /// Evict the job's model from the registry.
    Evict,
}

/// One request descriptor in the simulated stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficEvent {
    /// Arrival timestamp in virtual nanoseconds since stream start.
    /// Strictly increasing across the stream.
    pub at_ns: u64,
    /// Request kind.
    pub kind: RequestKind,
    /// Job-id index in `0..jobs`.
    pub job: usize,
    /// Point-set group of the job (`job % groups`), fixed per job so
    /// fits, predictions, and evictions of one job are consistent.
    pub group: usize,
    /// Virtual-time deadline for fit requests, in nanoseconds since
    /// stream start: `at_ns + fit_deadline_slack_ns`. `None` for
    /// non-fit events and when the slack knob is zero. A consumer
    /// passes this straight to
    /// `FitService::submit_fit_with_deadline`, so a drain running
    /// behind virtual arrival time expires stale fits instead of
    /// serving them.
    pub deadline_ns: Option<u64>,
}

/// Traffic-shape configuration; see [`generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Total requests to generate.
    pub requests: usize,
    /// Mean exponential inter-arrival gap in virtual nanoseconds
    /// (clamped to ≥ 1.0; each drawn gap is rounded up to ≥ 1 ns so
    /// timestamps strictly increase).
    pub mean_interarrival_ns: f64,
    /// Fit share of traffic, in permille (0..=1000).
    pub fit_permille: u32,
    /// Evict share of traffic, in permille; the remainder after fits and
    /// evictions is predictions. `fit + evict` is clamped to 1000.
    pub evict_permille: u32,
    /// Job-id population size (clamped to ≥ 1).
    pub jobs: usize,
    /// Number of shared point-set groups (clamped to `1..=jobs`).
    pub groups: usize,
    /// Traffic share, in permille, directed at the *hot* fifth of the
    /// job population (clamped to ≤ 1000). 800 reproduces the classic
    /// 80/20 skew; 0 disables skew entirely.
    pub hot_permille: u32,
    /// Deadline slack granted to each fit request, in virtual
    /// nanoseconds after its arrival: event `deadline_ns` becomes
    /// `at_ns + slack` (saturating). 0 disables deadlines entirely
    /// (`deadline_ns` stays `None`).
    pub fit_deadline_slack_ns: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            requests: 100_000,
            mean_interarrival_ns: 1_000.0,
            fit_permille: 8,
            evict_permille: 4,
            jobs: 64,
            groups: 4,
            hot_permille: 800,
            fit_deadline_slack_ns: 0,
        }
    }
}

impl TrafficConfig {
    /// The configuration after clamping, as [`generate`] will use it.
    pub fn clamped(&self) -> TrafficConfig {
        let jobs = self.jobs.max(1);
        let fit = self.fit_permille.min(1000);
        TrafficConfig {
            requests: self.requests,
            mean_interarrival_ns: if self.mean_interarrival_ns >= 1.0 {
                self.mean_interarrival_ns
            } else {
                1.0
            },
            fit_permille: fit,
            evict_permille: self.evict_permille.min(1000 - fit),
            jobs,
            groups: self.groups.clamp(1, jobs),
            hot_permille: self.hot_permille.min(1000),
            fit_deadline_slack_ns: self.fit_deadline_slack_ns,
        }
    }
}

/// Generates the request stream for `config` from `seed`.
///
/// The stream is a pure function of `(config, seed)`: same inputs, same
/// events, byte for byte. Invalid configuration values are clamped (see
/// the field docs) rather than rejected, so the generator is total.
pub fn generate(config: &TrafficConfig, seed: u64) -> Vec<TrafficEvent> {
    let cfg = config.clamped();
    let mut rng = seeded(seed);
    let hot_jobs = cfg.jobs.div_ceil(5).max(1);
    let mut events = Vec::with_capacity(cfg.requests);
    let mut t_ns: u64 = 0;
    for _ in 0..cfg.requests {
        t_ns = t_ns.saturating_add(exponential_gap_ns(&mut rng, cfg.mean_interarrival_ns));
        let kind = match permille_draw(&mut rng) {
            p if p < cfg.fit_permille => RequestKind::Fit,
            p if p < cfg.fit_permille + cfg.evict_permille => RequestKind::Evict,
            _ => RequestKind::Predict,
        };
        let job = if permille_draw(&mut rng) < cfg.hot_permille {
            rng.gen_index(hot_jobs)
        } else {
            rng.gen_index(cfg.jobs)
        };
        let deadline_ns = match kind {
            RequestKind::Fit if cfg.fit_deadline_slack_ns > 0 => {
                Some(t_ns.saturating_add(cfg.fit_deadline_slack_ns))
            }
            _ => None,
        };
        events.push(TrafficEvent {
            at_ns: t_ns,
            kind,
            job,
            group: job % cfg.groups,
            deadline_ns,
        });
    }
    events
}

/// One late-stage sample arrival: a finished post-layout simulation
/// whose result is ready to stream into a job's sequential estimator
/// (`bmf_core::service::FitService::append_sample`).
///
/// The cost field is in *millihours* (thousandths of a simulator hour)
/// so the event stays `Copy + Eq` — exactly comparable across runs —
/// while still resolving sub-hour simulations; divide by 1000.0 when
/// charging a `CostLedger`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrivalEvent {
    /// Completion timestamp in virtual nanoseconds since stream start.
    /// Strictly increasing across the stream.
    pub at_ns: u64,
    /// Job-id index in `0..jobs`.
    pub job: usize,
    /// Simulator time this sample cost, in millihours.
    pub cost_millihours: u64,
}

/// Shape of a late-stage arrival stream; see [`generate_arrivals`].
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalConfig {
    /// Total sample arrivals to generate.
    pub arrivals: usize,
    /// Mean exponential inter-arrival gap in virtual nanoseconds
    /// (clamped to ≥ 1.0; each drawn gap is rounded up to ≥ 1 ns so
    /// timestamps strictly increase).
    pub mean_interarrival_ns: f64,
    /// Job-id population size (clamped to ≥ 1); arrivals spread
    /// uniformly over it.
    pub jobs: usize,
    /// Minimum simulator cost per sample, in millihours.
    pub base_cost_millihours: u64,
    /// Uniform extra cost in `0..=spread` millihours drawn per sample —
    /// post-layout runs of one testbench vary with the corner being
    /// simulated.
    pub cost_spread_millihours: u64,
}

impl Default for ArrivalConfig {
    fn default() -> Self {
        ArrivalConfig {
            arrivals: 256,
            // Post-layout samples land far apart compared to service
            // requests: one every ~10 ms of virtual time by default.
            mean_interarrival_ns: 10_000_000.0,
            jobs: 8,
            // ~2 simulator hours ± 50% — the scale the paper reports for
            // transistor-level post-layout runs.
            base_cost_millihours: 1_000,
            cost_spread_millihours: 2_000,
        }
    }
}

impl ArrivalConfig {
    /// The configuration after clamping, as [`generate_arrivals`] will
    /// use it.
    pub fn clamped(&self) -> ArrivalConfig {
        ArrivalConfig {
            arrivals: self.arrivals,
            mean_interarrival_ns: if self.mean_interarrival_ns >= 1.0 {
                self.mean_interarrival_ns
            } else {
                1.0
            },
            jobs: self.jobs.max(1),
            base_cost_millihours: self.base_cost_millihours,
            cost_spread_millihours: self.cost_spread_millihours,
        }
    }
}

/// Generates the late-stage arrival stream for `config` from `seed` — the
/// event feed for streaming-append benchmarks and cost-aware stopping
/// studies.
///
/// Like [`generate`], the stream is a pure function of `(config, seed)`:
/// same inputs, same events, byte for byte, and invalid configuration
/// values are clamped rather than rejected.
pub fn generate_arrivals(config: &ArrivalConfig, seed: u64) -> Vec<ArrivalEvent> {
    let cfg = config.clamped();
    let mut rng = seeded(seed);
    let mut events = Vec::with_capacity(cfg.arrivals);
    let mut t_ns: u64 = 0;
    for _ in 0..cfg.arrivals {
        t_ns = t_ns.saturating_add(exponential_gap_ns(&mut rng, cfg.mean_interarrival_ns));
        let job = rng.gen_index(cfg.jobs);
        let cost_millihours = cfg
            .base_cost_millihours
            .saturating_add(rng.gen_index(cfg.cost_spread_millihours as usize + 1) as u64);
        events.push(ArrivalEvent {
            at_ns: t_ns,
            job,
            cost_millihours,
        });
    }
    events
}

/// A uniform draw in `0..1000`, the permille scale the mix knobs use.
fn permille_draw(rng: &mut Rng) -> u32 {
    rng.gen_index(1000) as u32
}

/// One exponential inter-arrival gap, rounded up to at least 1 ns so
/// consecutive timestamps strictly increase.
fn exponential_gap_ns(rng: &mut Rng, mean_ns: f64) -> u64 {
    // Inverse-CDF transform; next_f64 is in [0, 1), so 1 - u is in
    // (0, 1] and the log argument never hits zero.
    let u = rng.next_f64();
    let gap = -mean_ns * (1.0 - u).ln();
    if gap >= 1.0 {
        // Gaps beyond u64 range cannot occur for sane means (ln ≤ ~709),
        // but saturate anyway to keep the generator total.
        if gap >= u64::MAX as f64 {
            u64::MAX
        } else {
            gap as u64
        }
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_per_seed() {
        let cfg = TrafficConfig {
            requests: 5_000,
            ..TrafficConfig::default()
        };
        let a = generate(&cfg, 7);
        let b = generate(&cfg, 7);
        assert_eq!(a, b);
        let c = generate(&cfg, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn timestamps_strictly_increase() {
        let cfg = TrafficConfig {
            requests: 10_000,
            mean_interarrival_ns: 2.0,
            ..TrafficConfig::default()
        };
        let events = generate(&cfg, 3);
        for pair in events.windows(2) {
            assert!(pair[1].at_ns > pair[0].at_ns);
        }
    }

    #[test]
    fn mix_ratios_are_roughly_respected() {
        let cfg = TrafficConfig {
            requests: 200_000,
            fit_permille: 100,
            evict_permille: 50,
            ..TrafficConfig::default()
        };
        let events = generate(&cfg, 11);
        let fits = events.iter().filter(|e| e.kind == RequestKind::Fit).count() as f64;
        let evicts = events
            .iter()
            .filter(|e| e.kind == RequestKind::Evict)
            .count() as f64;
        let n = events.len() as f64;
        assert!((fits / n - 0.10).abs() < 0.01, "fit share {}", fits / n);
        assert!(
            (evicts / n - 0.05).abs() < 0.01,
            "evict share {}",
            evicts / n
        );
    }

    #[test]
    fn hot_jobs_receive_the_bulk_of_traffic() {
        let cfg = TrafficConfig {
            requests: 100_000,
            jobs: 50,
            hot_permille: 800,
            ..TrafficConfig::default()
        };
        let events = generate(&cfg, 5);
        let hot = events.iter().filter(|e| e.job < 10).count() as f64;
        let share = hot / events.len() as f64;
        // 80% targeted + uniform spillover into the same ids.
        assert!(share > 0.78, "hot share {share}");
    }

    #[test]
    fn jobs_and_groups_stay_in_range_and_consistent() {
        let cfg = TrafficConfig {
            requests: 20_000,
            jobs: 7,
            groups: 3,
            ..TrafficConfig::default()
        };
        let events = generate(&cfg, 9);
        for e in &events {
            assert!(e.job < 7);
            assert_eq!(e.group, e.job % 3);
        }
    }

    #[test]
    fn arrival_stream_is_deterministic_and_well_formed() {
        let cfg = ArrivalConfig {
            arrivals: 4_000,
            jobs: 5,
            base_cost_millihours: 500,
            cost_spread_millihours: 1_500,
            ..ArrivalConfig::default()
        };
        let a = generate_arrivals(&cfg, 21);
        let b = generate_arrivals(&cfg, 21);
        assert_eq!(a, b);
        assert_ne!(a, generate_arrivals(&cfg, 22));
        assert_eq!(a.len(), 4_000);
        for pair in a.windows(2) {
            assert!(pair[1].at_ns > pair[0].at_ns);
        }
        for e in &a {
            assert!(e.job < 5);
            assert!((500..=2_000).contains(&e.cost_millihours));
        }
        // The spread knob is actually exercised.
        let costs: std::collections::BTreeSet<u64> = a.iter().map(|e| e.cost_millihours).collect();
        assert!(costs.len() > 100, "only {} distinct costs", costs.len());
    }

    #[test]
    fn degenerate_arrival_configs_are_clamped_not_panicked() {
        let cfg = ArrivalConfig {
            arrivals: 64,
            mean_interarrival_ns: 0.0,
            jobs: 0,
            base_cost_millihours: 0,
            cost_spread_millihours: 0,
        };
        let events = generate_arrivals(&cfg, 1);
        assert_eq!(events.len(), 64);
        assert!(events.iter().all(|e| e.job == 0 && e.cost_millihours == 0));
    }

    #[test]
    fn degenerate_configs_are_clamped_not_panicked() {
        let cfg = TrafficConfig {
            requests: 100,
            mean_interarrival_ns: 0.0,
            fit_permille: 2_000,
            evict_permille: 2_000,
            jobs: 0,
            groups: 0,
            hot_permille: 5_000,
            fit_deadline_slack_ns: 0,
        };
        let events = generate(&cfg, 1);
        assert_eq!(events.len(), 100);
        // fit clamps to 1000 permille, evict to 0: every event is a fit.
        assert!(events.iter().all(|e| e.kind == RequestKind::Fit));
        assert!(events.iter().all(|e| e.job == 0 && e.group == 0));
        // Slack 0 means no deadlines, even on an all-fit stream.
        assert!(events.iter().all(|e| e.deadline_ns.is_none()));
    }

    #[test]
    fn deadline_slack_stamps_fits_and_only_fits() {
        let cfg = TrafficConfig {
            requests: 50_000,
            fit_permille: 200,
            evict_permille: 100,
            fit_deadline_slack_ns: 2_500,
            ..TrafficConfig::default()
        };
        let events = generate(&cfg, 13);
        assert!(events.iter().any(|e| e.kind == RequestKind::Fit));
        for e in &events {
            match e.kind {
                RequestKind::Fit => {
                    assert_eq!(e.deadline_ns, Some(e.at_ns + 2_500));
                }
                _ => assert_eq!(e.deadline_ns, None),
            }
        }
        // The knob changes only the deadline stamps, not the draw
        // sequence: the stream is otherwise identical to slack 0.
        let plain = generate(
            &TrafficConfig {
                fit_deadline_slack_ns: 0,
                ..cfg.clone()
            },
            13,
        );
        for (a, b) in events.iter().zip(&plain) {
            assert_eq!(
                (a.at_ns, a.kind, a.job, a.group),
                (b.at_ns, b.kind, b.job, b.group)
            );
        }
    }
}
