//! A single-stage amplifier whose metrics come from the AC engine.
//!
//! This circuit goes beyond the paper's two testbeds: its gain and −3 dB
//! bandwidth are extracted from genuine small-signal AC analysis
//! ([`crate::spice::ac`]) on a per-sample netlist, not from a behavioral
//! formula — demonstrating that the BMF pipeline is agnostic to how the
//! "simulator" computes `f(x)`. The post-layout stage adds parasitic load
//! capacitance variables (missing-prior terms), which mostly hit the
//! bandwidth — the classic layout surprise.

use bmf_stat::normal::StandardNormal;
use bmf_stat::rng::{derive_seed, seeded};

use crate::error::{check_var_count, CircuitError};
use crate::process::Sensitivity;
use crate::spice::ac::{bandwidth_3db, solve_ac};
use crate::spice::circuit::Circuit;
use crate::stage::{CircuitPerformance, Stage};
use bmf_linalg::LinalgError;

/// Configuration of the amplifier stage.
#[derive(Debug, Clone, PartialEq)]
pub struct AmplifierConfig {
    /// Nominal transconductance, siemens.
    pub gm: f64,
    /// Nominal load resistance, ohms.
    pub rl: f64,
    /// Nominal load capacitance, farads.
    pub cl: f64,
    /// Interdie variables.
    pub interdie_vars: usize,
    /// Mismatch variables on the transconductor.
    pub gm_vars: usize,
    /// Mismatch variables on the load resistor.
    pub rl_vars: usize,
    /// Mismatch variables on the load capacitor.
    pub cl_vars: usize,
    /// Post-layout parasitic-capacitance variables.
    pub parasitic_vars: usize,
    /// Relative 1σ of gm from its mismatch variables.
    pub gm_sigma: f64,
    /// Relative 1σ of R_L.
    pub rl_sigma: f64,
    /// Relative 1σ of C_L.
    pub cl_sigma: f64,
    /// Nominal parasitic capacitance added after layout, as a fraction of
    /// C_L.
    pub layout_cap_fraction: f64,
    /// Relative 1σ of the parasitic capacitance.
    pub parasitic_sigma: f64,
    /// Systematic schematic→layout coefficient shift.
    pub layout_shift_rel: f64,
    /// Simulated cost of one schematic sample, hours.
    pub sch_cost_hours: f64,
    /// Simulated cost of one post-layout sample, hours.
    pub lay_cost_hours: f64,
}

impl Default for AmplifierConfig {
    fn default() -> Self {
        AmplifierConfig {
            gm: 2.0e-3,
            rl: 20.0e3,
            cl: 50.0e-15,
            interdie_vars: 4,
            gm_vars: 8,
            rl_vars: 3,
            cl_vars: 3,
            parasitic_vars: 4,
            gm_sigma: 0.04,
            rl_sigma: 0.03,
            cl_sigma: 0.03,
            layout_cap_fraction: 0.30,
            parasitic_sigma: 0.15,
            layout_shift_rel: 0.15,
            sch_cost_hours: 3.0 / 3600.0,
            lay_cost_hours: 30.0 / 3600.0,
        }
    }
}

impl AmplifierConfig {
    /// Schematic-stage variable count.
    pub fn schematic_vars(&self) -> usize {
        self.interdie_vars + self.gm_vars + self.rl_vars + self.cl_vars
    }

    /// Post-layout variable count.
    pub fn post_layout_vars(&self) -> usize {
        self.schematic_vars() + self.parasitic_vars
    }
}

/// Amplifier metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AmplifierMetric {
    /// Low-frequency voltage gain in dB.
    GainDb,
    /// −3 dB bandwidth in hertz.
    BandwidthHz,
}

impl std::fmt::Display for AmplifierMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AmplifierMetric::GainDb => write!(f, "gain"),
            AmplifierMetric::BandwidthHz => write!(f, "bandwidth"),
        }
    }
}

/// A seeded amplifier with schematic and post-layout views.
///
/// # Example
///
/// ```
/// use bmf_circuits::amplifier::{Amplifier, AmplifierConfig, AmplifierMetric};
/// use bmf_circuits::stage::{CircuitPerformance, Stage};
///
/// let amp = Amplifier::new(AmplifierConfig::default(), 1);
/// let gain = amp.metric(AmplifierMetric::GainDb);
/// let x = vec![0.0; gain.num_vars(Stage::Schematic)];
/// let g = gain.evaluate(Stage::Schematic, &x)?;
/// assert!((g - 32.04).abs() < 0.1); // 20·log10(gm·RL) = 20·log10(40)
/// # Ok::<(), bmf_circuits::error::CircuitError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Amplifier {
    config: AmplifierConfig,
    gm_sens: [Sensitivity; 2],
    rl_sens: [Sensitivity; 2],
    cl_sens: [Sensitivity; 2],
    par_sens: Sensitivity,
}

impl Amplifier {
    /// Builds an amplifier with sensitivities drawn from `seed`.
    pub fn new(config: AmplifierConfig, seed: u64) -> Self {
        let mut off = 0usize;
        let mut alloc = |n: usize| {
            let r = off..off + n;
            off += n;
            r
        };
        let interdie = alloc(config.interdie_vars);
        let gm_r = alloc(config.gm_vars);
        let rl_r = alloc(config.rl_vars);
        let cl_r = alloc(config.cl_vars);
        let par_r = off..off + config.parasitic_vars;

        let build = |range: std::ops::Range<usize>, sigma: f64, stream: u64| -> Sensitivity {
            let mut s = Sensitivity::constant(0.0);
            s.weights
                .extend(weights(interdie.clone(), sigma * 0.5, seed, stream * 2));
            s.weights
                .extend(weights(range, sigma, seed, stream * 2 + 1));
            s
        };
        let gm_sch = build(gm_r, config.gm_sigma, 1);
        let rl_sch = build(rl_r, config.rl_sigma, 2);
        let cl_sch = build(cl_r, config.cl_sigma, 3);
        let shift = |s: &Sensitivity, stream: u64| -> Sensitivity {
            let mut rng = seeded(derive_seed(seed, 900 + stream));
            let mut sampler = StandardNormal::new();
            Sensitivity {
                offset: s.offset,
                weights: s
                    .weights
                    .iter()
                    .map(|&(v, w)| {
                        (
                            v,
                            w * (1.0 + config.layout_shift_rel * sampler.sample(&mut rng)),
                        )
                    })
                    .collect(),
            }
        };
        let gm_lay = shift(&gm_sch, 1);
        let rl_lay = shift(&rl_sch, 2);
        let cl_lay = shift(&cl_sch, 3);
        let mut par_sens = Sensitivity::constant(0.0);
        par_sens
            .weights
            .extend(weights(par_r, config.parasitic_sigma, seed, 9));

        Amplifier {
            config,
            gm_sens: [gm_sch, gm_lay],
            rl_sens: [rl_sch, rl_lay],
            cl_sens: [cl_sch, cl_lay],
            par_sens,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AmplifierConfig {
        &self.config
    }

    /// A [`CircuitPerformance`] view of one metric.
    pub fn metric(&self, metric: AmplifierMetric) -> AmplifierPerformance<'_> {
        AmplifierPerformance { amp: self, metric }
    }

    fn netlist(&self, stage: Stage, x: &[f64]) -> (Circuit, crate::spice::circuit::Node) {
        let cfg = &self.config;
        let si = match stage {
            Stage::Schematic => 0,
            Stage::PostLayout => 1,
        };
        let gm = cfg.gm * (1.0 + self.gm_sens[si].eval(x)).max(0.2);
        let rl = cfg.rl * (1.0 + self.rl_sens[si].eval(x)).max(0.2);
        let mut cl = cfg.cl * (1.0 + self.cl_sens[si].eval(x)).max(0.2);
        if stage == Stage::PostLayout {
            cl += cfg.cl * cfg.layout_cap_fraction * (1.0 + self.par_sens.eval(x)).max(0.1);
        }
        let mut ckt = Circuit::new();
        let vin = ckt.node();
        let vout = ckt.node();
        ckt.voltage_source(vin, Circuit::GND, 1.0);
        ckt.vccs(vout, Circuit::GND, vin, Circuit::GND, gm);
        ckt.resistor(vout, Circuit::GND, rl);
        ckt.capacitor(vout, Circuit::GND, cl);
        (ckt, vout)
    }
}

fn weights(range: std::ops::Range<usize>, sigma: f64, seed: u64, stream: u64) -> Vec<(usize, f64)> {
    if range.is_empty() || bmf_linalg::is_exact_zero(sigma) {
        return Vec::new();
    }
    let mut rng = seeded(derive_seed(seed, 700 + stream));
    let mut sampler = StandardNormal::new();
    let mut w: Vec<(usize, f64)> = range
        .enumerate()
        .map(|(j, v)| (v, sampler.sample(&mut rng) / (1.0 + j as f64).powf(1.2)))
        .collect();
    let norm: f64 = w.iter().map(|&(_, v)| v * v).sum::<f64>().sqrt();
    for (_, v) in &mut w {
        *v *= sigma / norm;
    }
    w
}

/// A single-metric view borrowed from an [`Amplifier`].
#[derive(Debug, Clone, Copy)]
pub struct AmplifierPerformance<'a> {
    amp: &'a Amplifier,
    metric: AmplifierMetric,
}

impl CircuitPerformance for AmplifierPerformance<'_> {
    fn name(&self) -> &str {
        match self.metric {
            AmplifierMetric::GainDb => "amplifier.gain_db",
            AmplifierMetric::BandwidthHz => "amplifier.bandwidth_hz",
        }
    }

    fn num_vars(&self, stage: Stage) -> usize {
        match stage {
            Stage::Schematic => self.amp.config.schematic_vars(),
            Stage::PostLayout => self.amp.config.post_layout_vars(),
        }
    }

    fn evaluate(&self, stage: Stage, x: &[f64]) -> Result<f64, CircuitError> {
        check_var_count(self.name(), stage, self.num_vars(stage), x.len())?;
        // Schematic evaluations must not read parasitic slots; pad with
        // zeros so the shared sensitivities line up.
        let padded: Vec<f64>;
        let xs: &[f64] = if stage == Stage::Schematic {
            padded = {
                let mut p = x.to_vec();
                p.resize(self.amp.config.post_layout_vars(), 0.0);
                p
            };
            &padded
        } else {
            x
        };
        let (ckt, vout) = self.amp.netlist(stage, xs);
        let solver_err = |e: LinalgError| CircuitError::Solver {
            circuit: self.name().to_string(),
            detail: e.to_string(),
        };
        match self.metric {
            AmplifierMetric::GainDb => Ok(solve_ac(&ckt, 1.0e3)
                .map_err(solver_err)?
                .magnitude_db(vout)),
            AmplifierMetric::BandwidthHz => bandwidth_3db(&ckt, vout, 1.0e3, 1.0e12)
                .map_err(solver_err)?
                .ok_or_else(|| CircuitError::NoRolloff {
                    circuit: self.name().to_string(),
                }),
        }
    }

    fn sim_cost_hours(&self, stage: Stage) -> f64 {
        match stage {
            Stage::Schematic => self.amp.config.sch_cost_hours,
            Stage::PostLayout => self.amp.config.lay_cost_hours,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn amp() -> Amplifier {
        Amplifier::new(AmplifierConfig::default(), 3)
    }

    #[test]
    fn nominal_gain_and_bandwidth_match_analytic() {
        let a = amp();
        let n = a.config().schematic_vars();
        let x = vec![0.0; n];
        let g = a
            .metric(AmplifierMetric::GainDb)
            .evaluate(Stage::Schematic, &x)
            .unwrap();
        let expect_gain = 20.0 * (a.config().gm * a.config().rl).log10();
        assert!((g - expect_gain).abs() < 1e-6, "gain {g} vs {expect_gain}");
        let bw = a
            .metric(AmplifierMetric::BandwidthHz)
            .evaluate(Stage::Schematic, &x)
            .unwrap();
        let expect_bw = 1.0 / (2.0 * std::f64::consts::PI * a.config().rl * a.config().cl);
        assert!(
            (bw - expect_bw).abs() / expect_bw < 1e-3,
            "bw {bw} vs {expect_bw}"
        );
    }

    #[test]
    fn layout_parasitics_reduce_bandwidth() {
        let a = amp();
        let bw_s = a
            .metric(AmplifierMetric::BandwidthHz)
            .evaluate(Stage::Schematic, &vec![0.0; a.config().schematic_vars()])
            .unwrap();
        let bw_l = a
            .metric(AmplifierMetric::BandwidthHz)
            .evaluate(Stage::PostLayout, &vec![0.0; a.config().post_layout_vars()])
            .unwrap();
        let ratio = bw_l / bw_s;
        let expect = 1.0 / (1.0 + a.config().layout_cap_fraction);
        assert!((ratio - expect).abs() < 0.01, "ratio {ratio} vs {expect}");
    }

    #[test]
    fn parasitic_vars_move_bandwidth_only_post_layout() {
        let a = amp();
        let n_sch = a.config().schematic_vars();
        let n_lay = a.config().post_layout_vars();
        let view = a.metric(AmplifierMetric::BandwidthHz);
        let mut x = vec![0.0; n_lay];
        let base = view.evaluate(Stage::PostLayout, &x);
        x[n_sch] = 1.5;
        assert_ne!(base, view.evaluate(Stage::PostLayout, &x));
    }

    #[test]
    fn gain_variation_is_plausible() {
        use crate::sim::monte_carlo;
        let a = amp();
        let view = a.metric(AmplifierMetric::GainDb);
        let set = monte_carlo(&view, Stage::PostLayout, 200, 7).unwrap();
        let s = bmf_stat::summary::Summary::from_slice(&set.values);
        // ~0.3-1.5 dB sigma for a few-% gm/RL spread.
        assert!(
            s.std_dev() > 0.1 && s.std_dev() < 3.0,
            "sigma {}",
            s.std_dev()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Amplifier::new(AmplifierConfig::default(), 5);
        let b = Amplifier::new(AmplifierConfig::default(), 5);
        let x: Vec<f64> = (0..a.config().post_layout_vars())
            .map(|i| ((i * 11 % 13) as f64 - 6.0) / 6.0)
            .collect();
        for m in [AmplifierMetric::GainDb, AmplifierMetric::BandwidthHz] {
            assert_eq!(
                a.metric(m).evaluate(Stage::PostLayout, &x),
                b.metric(m).evaluate(Stage::PostLayout, &x)
            );
        }
    }
}
