//! Structured errors for circuit evaluation.
//!
//! The circuit substrate predates the workspace's panic-free guarantee:
//! its `evaluate` implementations used to `assert!` on shape mismatches
//! and `.expect()` on solver results, so a malformed variation vector or
//! a pathological operating point aborted the process. [`CircuitError`]
//! replaces every one of those sites with a value callers can match on;
//! the Monte-Carlo engine propagates it and the lint's
//! `panic-reachability` rule keeps the whole `pub` surface of this crate
//! panic-free from here on.

use crate::stage::Stage;

/// An error produced while evaluating a circuit performance metric.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitError {
    /// The variation vector's length does not match `num_vars(stage)`.
    VarCount {
        /// Metric name (`CircuitPerformance::name`).
        circuit: String,
        /// Stage the evaluation was requested at.
        stage: Stage,
        /// Expected variable count at that stage.
        expected: usize,
        /// Length of the vector actually supplied.
        got: usize,
    },
    /// An inner solver (MNA factorization, Newton iteration, RC-tree
    /// construction) failed; `detail` carries its rendered error.
    Solver {
        /// Metric name (`CircuitPerformance::name`).
        circuit: String,
        /// The inner solver's rendered error.
        detail: String,
    },
    /// A bandwidth search found no −3 dB roll-off inside its frequency
    /// range.
    NoRolloff {
        /// Metric name (`CircuitPerformance::name`).
        circuit: String,
    },
    /// A schematic→layout expansion could not be constructed.
    Expansion {
        /// The expansion builder's rendered error.
        detail: String,
    },
}

impl std::fmt::Display for CircuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CircuitError::VarCount {
                circuit,
                stage,
                expected,
                got,
            } => write!(
                f,
                "{circuit}: {stage} evaluation expects {expected} variables, got {got}"
            ),
            CircuitError::Solver { circuit, detail } => {
                write!(f, "{circuit}: solver failed: {detail}")
            }
            CircuitError::NoRolloff { circuit } => {
                write!(f, "{circuit}: no -3 dB roll-off in the search range")
            }
            CircuitError::Expansion { detail } => {
                write!(f, "finger expansion: {detail}")
            }
        }
    }
}

impl std::error::Error for CircuitError {}

/// Checks the variation-vector length against the stage's expectation.
///
/// # Errors
///
/// Returns [`CircuitError::VarCount`] on mismatch.
pub fn check_var_count(
    circuit: &str,
    stage: Stage,
    expected: usize,
    got: usize,
) -> Result<(), CircuitError> {
    if expected == got {
        Ok(())
    } else {
        Err(CircuitError::VarCount {
            circuit: circuit.to_string(),
            stage,
            expected,
            got,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_count_renders_both_sides() {
        let e = check_var_count("ro.power", Stage::PostLayout, 10, 4).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("expects 10"), "{msg}");
        assert!(msg.contains("got 4"), "{msg}");
        assert!(msg.contains("post-layout"), "{msg}");
    }

    #[test]
    fn matching_count_is_ok() {
        assert!(check_var_count("x", Stage::Schematic, 3, 3).is_ok());
    }

    #[test]
    fn solver_and_rolloff_render() {
        let s = CircuitError::Solver {
            circuit: "mirror.output_current".into(),
            detail: "singular".into(),
        };
        assert!(s.to_string().contains("solver failed: singular"));
        let r = CircuitError::NoRolloff {
            circuit: "amplifier.bandwidth_hz".into(),
        };
        assert!(r.to_string().contains("roll-off"));
    }
}
