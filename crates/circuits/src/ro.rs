//! Behavioral ring-oscillator model (the paper's Fig. 3 circuit).
//!
//! The RO is a chain of N current-starved inverter stages. Each stage's
//! delay, leakage and load capacitance are affine functions of the
//! variation variables (interdie + per-transistor mismatch, plus parasitic
//! variables after layout); the three paper metrics are then *smooth
//! nonlinear* functions of the stage quantities:
//!
//! * frequency `f = 1 / (2 Σ_s t_s)` — reciprocal of the total delay,
//! * power `P = V_DD²·f·Σ_s C_s + P_leak·mean_s exp(δ_s)` — dynamic plus
//!   exponential subthreshold leakage (the exponential produces the right
//!   skew in the Fig. 4(a) histogram),
//! * phase noise `PN = PN₀ + 10·log₁₀(noise) − 10·log₁₀(P/P₀) −
//!   20·log₁₀(f/f₀)` — a Leeson-style expression.
//!
//! For small variations all three are near-linear in `x`, matching the
//! paper's use of linear performance models (§V-A), while the residual
//! nonlinearity plays the role of simulator "modeling error" ε (eq. 23).
//!
//! The schematic and post-layout stages share the same underlying truth:
//! post-layout scales every sensitivity weight by a systematic layout
//! factor `(1 + shift·ζ)`, inflates the nominal delay, and appends
//! per-stage parasitic variables — exactly the early/late relationship
//! BMF's priors assume.

use bmf_stat::normal::StandardNormal;
use bmf_stat::rng::{derive_seed, seeded};

use crate::error::{check_var_count, CircuitError};
use crate::process::{Sensitivity, VarSpace};
use crate::stage::{CircuitPerformance, Stage};

/// Configuration of the behavioral ring oscillator.
#[derive(Debug, Clone, PartialEq)]
pub struct RoConfig {
    /// Number of inverter stages (use an odd count for a real RO).
    pub stages: usize,
    /// Transistors per stage contributing mismatch variables.
    pub transistors_per_stage: usize,
    /// Mismatch variables per transistor (the paper cites ~40 for its
    /// 32 nm SOI process).
    pub params_per_transistor: usize,
    /// Shared interdie variation variables.
    pub interdie_vars: usize,
    /// Post-layout-only parasitic variables per stage.
    pub parasitic_vars_per_stage: usize,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Nominal per-stage delay in seconds (schematic).
    pub nominal_stage_delay: f64,
    /// Nominal per-stage switched capacitance in farads.
    pub nominal_stage_cap: f64,
    /// Nominal total leakage power in watts.
    pub leakage_power: f64,
    /// Relative 1σ of one stage delay from its mismatch variables.
    pub mismatch_delay_sigma: f64,
    /// Relative 1σ of stage delay from interdie variables (common mode).
    pub interdie_delay_sigma: f64,
    /// Magnitude of the systematic schematic→layout coefficient shift.
    pub layout_shift_rel: f64,
    /// Multiplicative nominal delay increase after layout extraction.
    pub layout_delay_factor: f64,
    /// Relative 1σ of stage delay from post-layout parasitic variables.
    pub parasitic_delay_sigma: f64,
    /// Simulated cost of one schematic Monte-Carlo sample, hours.
    pub sch_cost_hours: f64,
    /// Simulated cost of one post-layout Monte-Carlo sample, hours.
    pub lay_cost_hours: f64,
}

impl RoConfig {
    /// A tiny configuration for unit tests (≈50 variables).
    pub fn small() -> Self {
        RoConfig {
            stages: 5,
            transistors_per_stage: 2,
            params_per_transistor: 4,
            interdie_vars: 4,
            parasitic_vars_per_stage: 2,
            ..RoConfig::base()
        }
    }

    /// The default experiment shape (~2 000 post-layout variables): large
    /// enough to show every BMF effect, small enough for repeated sweeps
    /// on one core. The parasitic count (50) is kept below the smallest
    /// cross-validation training-fold size at K = 100 so the exact
    /// infinite-variance missing priors stay identifiable. See DESIGN.md
    /// §2 for the scaling argument.
    pub fn default_shape() -> Self {
        RoConfig {
            stages: 25,
            transistors_per_stage: 4,
            params_per_transistor: 19,
            interdie_vars: 17,
            parasitic_vars_per_stage: 2,
            ..RoConfig::base()
        }
    }

    /// The paper-scale configuration: 7 177 post-layout variables
    /// (25 stages × 11 transistors × 25 params + 27 interdie + 25 × 11
    /// parasitics).
    pub fn paper() -> Self {
        RoConfig {
            stages: 25,
            transistors_per_stage: 11,
            params_per_transistor: 25,
            interdie_vars: 27,
            parasitic_vars_per_stage: 11,
            ..RoConfig::base()
        }
    }

    fn base() -> Self {
        RoConfig {
            stages: 5,
            transistors_per_stage: 2,
            params_per_transistor: 4,
            interdie_vars: 4,
            parasitic_vars_per_stage: 2,
            vdd: 0.9,
            nominal_stage_delay: 8.0e-12,
            nominal_stage_cap: 1.5e-15,
            leakage_power: 8.0e-6,
            mismatch_delay_sigma: 0.03,
            interdie_delay_sigma: 0.04,
            layout_shift_rel: 0.20,
            layout_delay_factor: 1.15,
            parasitic_delay_sigma: 0.02,
            // Table IV: 900 post-layout samples = 12.58 h -> 50.3 s each.
            sch_cost_hours: 5.0 / 3600.0,
            lay_cost_hours: 50.3 / 3600.0,
        }
    }

    /// Schematic-stage variable count.
    pub fn schematic_vars(&self) -> usize {
        self.interdie_vars + self.stages * self.transistors_per_stage * self.params_per_transistor
    }

    /// Post-layout variable count.
    pub fn post_layout_vars(&self) -> usize {
        self.schematic_vars() + self.stages * self.parasitic_vars_per_stage
    }
}

/// The three RO performance metrics of §V-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoMetric {
    /// Total power (dynamic + leakage), watts. Fig. 4(a), Table I.
    Power,
    /// Phase noise at the reference offset, dBc/Hz. Fig. 4(b), Table II.
    PhaseNoise,
    /// Oscillation frequency, hertz. Fig. 4(c), Table III.
    Frequency,
}

impl std::fmt::Display for RoMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoMetric::Power => write!(f, "power"),
            RoMetric::PhaseNoise => write!(f, "phase-noise"),
            RoMetric::Frequency => write!(f, "frequency"),
        }
    }
}

/// Per-stage sensitivity triplet for one design stage.
#[derive(Debug, Clone)]
struct StageSens {
    delay: Sensitivity,
    leak: Sensitivity,
    cap: Sensitivity,
}

/// A seeded behavioral ring oscillator with schematic and post-layout
/// views of the same silicon.
///
/// # Example
///
/// ```
/// use bmf_circuits::ro::{RingOscillator, RoConfig, RoMetric};
/// use bmf_circuits::stage::{CircuitPerformance, Stage};
///
/// let ro = RingOscillator::new(RoConfig::small(), 1);
/// let f = ro.metric(RoMetric::Frequency);
/// let nominal = f.evaluate(Stage::Schematic, &vec![0.0; f.num_vars(Stage::Schematic)])?;
/// assert!(nominal > 1.0e9); // GHz-class oscillator
/// # Ok::<(), bmf_circuits::error::CircuitError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RingOscillator {
    config: RoConfig,
    sch_space: VarSpace,
    lay_space: VarSpace,
    sch: Vec<StageSens>,
    lay: Vec<StageSens>,
    nominal_freq: f64,
    nominal_power: f64,
}

impl RingOscillator {
    /// Builds a ring oscillator with sensitivities drawn from `seed`.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is degenerate (zero stages or
    /// transistors).
    pub fn new(config: RoConfig, seed: u64) -> Self {
        assert!(config.stages > 0, "need at least one stage");
        assert!(
            config.transistors_per_stage > 0 && config.params_per_transistor > 0,
            "need mismatch variables"
        );

        let mut sch_space = VarSpace::new();
        let interdie = sch_space.alloc("interdie", config.interdie_vars);
        let mut stage_mismatch = Vec::with_capacity(config.stages);
        for s in 0..config.stages {
            let mut tr = Vec::new();
            for t in 0..config.transistors_per_stage {
                tr.push(sch_space.alloc(
                    &format!("stage{s}.m{t}.mismatch"),
                    config.params_per_transistor,
                ));
            }
            stage_mismatch.push(tr);
        }
        let mut lay_space = sch_space.clone();
        let mut stage_parasitic = Vec::with_capacity(config.stages);
        for s in 0..config.stages {
            stage_parasitic.push(lay_space.alloc(
                &format!("stage{s}.parasitic"),
                config.parasitic_vars_per_stage,
            ));
        }

        // Interdie delay weights, shared by every stage (common process
        // corner): decaying profile normalized to interdie_delay_sigma.
        let interdie_delay =
            decaying_weights(interdie.clone(), config.interdie_delay_sigma, 1.0, seed, 0);
        let interdie_leak = decaying_weights(interdie.clone(), 0.10, 1.2, seed, 1);
        let interdie_cap = decaying_weights(interdie, 0.015, 1.5, seed, 2);

        let mut sch = Vec::with_capacity(config.stages);
        for (s, trs) in stage_mismatch.iter().enumerate() {
            let sbase = derive_seed(seed, 1000 + s as u64);
            let mut delay = Sensitivity::constant(0.0);
            let mut leak = Sensitivity::constant(0.0);
            let mut cap = Sensitivity::constant(0.0);
            delay.weights.extend_from_slice(&interdie_delay);
            leak.weights.extend_from_slice(&interdie_leak);
            cap.weights.extend_from_slice(&interdie_cap);
            // Per-transistor mismatch: split the stage budget evenly.
            let per_tr_delay =
                config.mismatch_delay_sigma / (config.transistors_per_stage as f64).sqrt();
            for (t, range) in trs.iter().enumerate() {
                let tseed = derive_seed(sbase, t as u64);
                delay
                    .weights
                    .extend(decaying_weights(range.clone(), per_tr_delay, 1.3, tseed, 0));
                leak.weights.extend(decaying_weights(
                    range.clone(),
                    0.12 / (config.transistors_per_stage as f64).sqrt(),
                    1.8,
                    tseed,
                    1,
                ));
                cap.weights.extend(decaying_weights(
                    range.clone(),
                    0.01 / (config.transistors_per_stage as f64).sqrt(),
                    2.0,
                    tseed,
                    2,
                ));
            }
            sch.push(StageSens { delay, leak, cap });
        }

        // Post-layout view: systematic coefficient shift + parasitics.
        let mut lay = Vec::with_capacity(config.stages);
        for (s, base) in sch.iter().enumerate() {
            let lseed = derive_seed(seed, 2000 + s as u64);
            let mut delay = shift_weights(&base.delay, config.layout_shift_rel, lseed, 0);
            let leak = shift_weights(&base.leak, config.layout_shift_rel, lseed, 1);
            let mut cap = shift_weights(&base.cap, config.layout_shift_rel, lseed, 2);
            let par = stage_parasitic[s].clone();
            delay.weights.extend(decaying_weights(
                par.clone(),
                config.parasitic_delay_sigma,
                1.0,
                lseed,
                3,
            ));
            cap.weights
                .extend(decaying_weights(par, 0.01, 1.0, lseed, 4));
            lay.push(StageSens { delay, leak, cap });
        }

        let nominal_freq = 1.0 / (2.0 * config.stages as f64 * config.nominal_stage_delay);
        let nominal_power = config.vdd
            * config.vdd
            * nominal_freq
            * (config.stages as f64 * config.nominal_stage_cap)
            + config.leakage_power;

        RingOscillator {
            config,
            sch_space,
            lay_space,
            sch,
            lay,
            nominal_freq,
            nominal_power,
        }
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> &RoConfig {
        &self.config
    }

    /// The variable-space registry at `stage` (self-describing layout).
    pub fn var_space(&self, stage: Stage) -> &VarSpace {
        match stage {
            Stage::Schematic => &self.sch_space,
            Stage::PostLayout => &self.lay_space,
        }
    }

    /// Nominal (variation-free, schematic) oscillation frequency in Hz.
    pub fn nominal_frequency(&self) -> f64 {
        self.nominal_freq
    }

    /// A [`CircuitPerformance`] view of one metric.
    pub fn metric(&self, metric: RoMetric) -> RoPerformance<'_> {
        let name = match metric {
            RoMetric::Power => "ro.power",
            RoMetric::PhaseNoise => "ro.phase_noise",
            RoMetric::Frequency => "ro.frequency",
        };
        RoPerformance {
            ro: self,
            metric,
            name,
        }
    }

    /// Evaluates all three metrics at once (shared stage computation).
    fn evaluate_all(&self, stage: Stage, x: &[f64]) -> Result<(f64, f64, f64), CircuitError> {
        let expected = match stage {
            Stage::Schematic => self.config.schematic_vars(),
            Stage::PostLayout => self.config.post_layout_vars(),
        };
        check_var_count("ro", stage, expected, x.len())?;
        let (sens, delay_factor) = match stage {
            Stage::Schematic => (&self.sch, 1.0),
            Stage::PostLayout => (&self.lay, self.config.layout_delay_factor),
        };
        let t0 = self.config.nominal_stage_delay * delay_factor;
        let c0 = self.config.nominal_stage_cap * delay_factor.sqrt();

        let mut total_delay = 0.0;
        let mut total_cap = 0.0;
        let mut leak_sum = 0.0;
        let mut noise_sum = 0.0;
        for st in sens {
            let d = (1.0 + st.delay.eval(x)).max(0.2);
            let c = (1.0 + st.cap.eval(x)).max(0.2);
            let l = st.leak.eval(x).clamp(-2.0, 2.0);
            total_delay += t0 * d;
            total_cap += c0 * c;
            leak_sum += l.exp();
            // Stage noise contribution grows with leakage and delay spread.
            noise_sum += 1.0 + 0.3 * l + 0.2 * (d - 1.0);
        }
        let n = self.config.stages as f64;
        let freq = 1.0 / (2.0 * total_delay);
        let p_dyn = self.config.vdd * self.config.vdd * freq * total_cap;
        let p_leak = self.config.leakage_power * leak_sum / n;
        let power = p_dyn + p_leak;

        // Leeson-style phase noise around -100 dBc/Hz.
        let pn0 = -100.0;
        let noise = (noise_sum / n).max(0.05);
        let pn = pn0 + 10.0 * noise.log10() - 10.0 * (power / self.nominal_power).log10()
            + 20.0 * (freq / self.nominal_freq).log10();
        Ok((power, pn, freq))
    }
}

/// A single-metric [`CircuitPerformance`] view borrowed from a
/// [`RingOscillator`].
#[derive(Debug, Clone, Copy)]
pub struct RoPerformance<'a> {
    ro: &'a RingOscillator,
    metric: RoMetric,
    name: &'static str,
}

impl CircuitPerformance for RoPerformance<'_> {
    fn name(&self) -> &str {
        self.name
    }

    fn num_vars(&self, stage: Stage) -> usize {
        match stage {
            Stage::Schematic => self.ro.config.schematic_vars(),
            Stage::PostLayout => self.ro.config.post_layout_vars(),
        }
    }

    fn evaluate(&self, stage: Stage, x: &[f64]) -> Result<f64, CircuitError> {
        let (power, pn, freq) = self.ro.evaluate_all(stage, x)?;
        Ok(match self.metric {
            RoMetric::Power => power,
            RoMetric::PhaseNoise => pn,
            RoMetric::Frequency => freq,
        })
    }

    fn sim_cost_hours(&self, stage: Stage) -> f64 {
        match stage {
            Stage::Schematic => self.ro.config.sch_cost_hours,
            Stage::PostLayout => self.ro.config.lay_cost_hours,
        }
    }
}

/// Draws `range.len()` weights with a `1/(1+j)^decay` magnitude profile and
/// random N(0,1) scatter, normalized so `Σ w² = sigma²`.
fn decaying_weights(
    range: std::ops::Range<usize>,
    sigma: f64,
    decay: f64,
    seed: u64,
    stream: u64,
) -> Vec<(usize, f64)> {
    if range.is_empty() || bmf_linalg::is_exact_zero(sigma) {
        return Vec::new();
    }
    let mut rng = seeded(derive_seed(seed, 77_000 + stream));
    let mut sampler = StandardNormal::new();
    let mut w: Vec<(usize, f64)> = range
        .enumerate()
        .map(|(j, var)| {
            let u = sampler.sample(&mut rng);
            (var, u / (1.0 + j as f64).powf(decay))
        })
        .collect();
    let norm: f64 = w.iter().map(|&(_, v)| v * v).sum::<f64>().sqrt();
    if norm > 0.0 {
        let scale = sigma / norm;
        for (_, v) in &mut w {
            *v *= scale;
        }
    }
    w
}

/// Clones `base` with each weight scaled by `(1 + rel·ζ)`, ζ ~ N(0,1).
fn shift_weights(base: &Sensitivity, rel: f64, seed: u64, stream: u64) -> Sensitivity {
    let mut rng = seeded(derive_seed(seed, 88_000 + stream));
    let mut sampler = StandardNormal::new();
    let weights = base
        .weights
        .iter()
        .map(|&(var, w)| (var, w * (1.0 + rel * sampler.sample(&mut rng))))
        .collect();
    Sensitivity {
        offset: base.offset,
        weights,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ro() -> RingOscillator {
        RingOscillator::new(RoConfig::small(), 42)
    }

    #[test]
    fn nominal_point_matches_closed_form() {
        let ro = small_ro();
        let x = vec![0.0; ro.config().schematic_vars()];
        let f = ro
            .metric(RoMetric::Frequency)
            .evaluate(Stage::Schematic, &x)
            .unwrap();
        assert!((f - ro.nominal_frequency()).abs() / ro.nominal_frequency() < 1e-12);
        let p = ro
            .metric(RoMetric::Power)
            .evaluate(Stage::Schematic, &x)
            .unwrap();
        // Power at nominal = vdd^2 f C_total + leak.
        let cfg = ro.config();
        let expect =
            cfg.vdd * cfg.vdd * f * (cfg.stages as f64 * cfg.nominal_stage_cap) + cfg.leakage_power;
        assert!((p - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn var_counts_match_config() {
        let ro = small_ro();
        let c = ro.config();
        assert_eq!(c.schematic_vars(), 4 + 5 * 2 * 4);
        assert_eq!(c.post_layout_vars(), c.schematic_vars() + 5 * 2);
        assert_eq!(ro.var_space(Stage::Schematic).len(), c.schematic_vars());
        assert_eq!(ro.var_space(Stage::PostLayout).len(), c.post_layout_vars());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = RingOscillator::new(RoConfig::small(), 5);
        let b = RingOscillator::new(RoConfig::small(), 5);
        let x: Vec<f64> = (0..a.config().post_layout_vars())
            .map(|i| (i as f64 * 0.37).sin())
            .collect();
        for m in [RoMetric::Power, RoMetric::PhaseNoise, RoMetric::Frequency] {
            assert_eq!(
                a.metric(m).evaluate(Stage::PostLayout, &x),
                b.metric(m).evaluate(Stage::PostLayout, &x)
            );
        }
    }

    #[test]
    fn layout_delay_is_slower() {
        let ro = small_ro();
        let xs = vec![0.0; ro.config().schematic_vars()];
        let xl = vec![0.0; ro.config().post_layout_vars()];
        let fs = ro
            .metric(RoMetric::Frequency)
            .evaluate(Stage::Schematic, &xs)
            .unwrap();
        let fl = ro
            .metric(RoMetric::Frequency)
            .evaluate(Stage::PostLayout, &xl)
            .unwrap();
        assert!(
            fl < fs,
            "post-layout frequency {fl} should be below schematic {fs}"
        );
        assert!((fs / fl - ro.config().layout_delay_factor).abs() < 1e-9);
    }

    #[test]
    fn parasitic_vars_only_affect_layout() {
        let ro = small_ro();
        let n_sch = ro.config().schematic_vars();
        let n_lay = ro.config().post_layout_vars();
        let mut x = vec![0.0; n_lay];
        let base = ro
            .metric(RoMetric::Frequency)
            .evaluate(Stage::PostLayout, &x)
            .unwrap();
        x[n_sch] = 2.0; // first parasitic variable
        let bumped = ro
            .metric(RoMetric::Frequency)
            .evaluate(Stage::PostLayout, &x)
            .unwrap();
        assert_ne!(base, bumped, "parasitic variable must matter post-layout");
    }

    #[test]
    fn near_linearity_for_small_perturbations() {
        // f(t*x) ~ f(0) + t*(f(x)-f(0)) for small t: check 1% perturbation
        // scales ~linearly within 5%.
        let ro = small_ro();
        let n = ro.config().schematic_vars();
        let dir: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64 - 3.0) / 3.0).collect();
        let m = ro.metric(RoMetric::Frequency);
        let f0 = m.evaluate(Stage::Schematic, &vec![0.0; n]).unwrap();
        let f1 = m
            .evaluate(
                Stage::Schematic,
                &dir.iter().map(|d| d * 0.1).collect::<Vec<_>>(),
            )
            .unwrap();
        let f2 = m
            .evaluate(
                Stage::Schematic,
                &dir.iter().map(|d| d * 0.2).collect::<Vec<_>>(),
            )
            .unwrap();
        let d1 = f1 - f0;
        let d2 = f2 - f0;
        assert!(
            (d2 / d1 - 2.0).abs() < 0.1,
            "nonlinearity too strong: d2/d1 = {}",
            d2 / d1
        );
    }

    #[test]
    fn schematic_and_layout_sensitivities_correlate() {
        // Finite-difference coefficient vectors at the two stages should be
        // strongly but not perfectly correlated (the BMF premise).
        let ro = RingOscillator::new(RoConfig::small(), 9);
        let n_sch = ro.config().schematic_vars();
        let n_lay = ro.config().post_layout_vars();
        let m = ro.metric(RoMetric::Frequency);
        let h = 0.01;
        let mut dot = 0.0;
        let mut na = 0.0;
        let mut nb = 0.0;
        let f0s = m.evaluate(Stage::Schematic, &vec![0.0; n_sch]).unwrap();
        let f0l = m.evaluate(Stage::PostLayout, &vec![0.0; n_lay]).unwrap();
        for i in 0..n_sch {
            let mut xs = vec![0.0; n_sch];
            xs[i] = h;
            let gs = (m.evaluate(Stage::Schematic, &xs).unwrap() - f0s) / h / f0s;
            let mut xl = vec![0.0; n_lay];
            xl[i] = h;
            let gl = (m.evaluate(Stage::PostLayout, &xl).unwrap() - f0l) / h / f0l;
            dot += gs * gl;
            na += gs * gs;
            nb += gl * gl;
        }
        let corr = dot / (na.sqrt() * nb.sqrt());
        assert!(
            corr > 0.9,
            "early/late sensitivity correlation too weak: {corr}"
        );
        assert!(corr < 0.99999, "stages should not be identical: {corr}");
    }

    #[test]
    fn monte_carlo_spread_is_plausible() {
        use crate::sim::monte_carlo;
        let ro = small_ro();
        let m = ro.metric(RoMetric::Frequency);
        let set = monte_carlo(&m, Stage::PostLayout, 400, 3).unwrap();
        let s = bmf_stat::summary::Summary::from_slice(&set.values);
        let cov = s.coefficient_of_variation();
        // A few percent frequency spread, like the paper's Fig. 4(c).
        assert!(cov > 0.005 && cov < 0.2, "cov = {cov}");
    }

    #[test]
    fn phase_noise_is_in_dbc_range() {
        let ro = small_ro();
        let x = vec![0.0; ro.config().schematic_vars()];
        let pn = ro
            .metric(RoMetric::PhaseNoise)
            .evaluate(Stage::Schematic, &x)
            .unwrap();
        assert!(pn < -80.0 && pn > -130.0, "pn = {pn}");
    }

    #[test]
    fn paper_config_variable_count() {
        let c = RoConfig::paper();
        assert_eq!(c.post_layout_vars(), 7177);
    }
}
