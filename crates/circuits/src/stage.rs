//! Design stages and the performance-evaluation interface.
//!
//! The BMF flow spans an *early* stage (schematic-level simulation) and a
//! *late* stage (post-layout simulation). A [`CircuitPerformance`] is one
//! scalar performance metric of one circuit, evaluable at either stage; the
//! Monte-Carlo engine in [`crate::sim`] only ever talks to this trait.
//!
//! ## Variable-space convention
//!
//! For every implementation in this crate, the late-stage variation vector
//! *embeds* the early-stage one: the first
//! `num_vars(Stage::Schematic)` entries are the schematic variables
//! (interdie + lumped device mismatch) and the remaining
//! `num_vars(Stage::PostLayout) − num_vars(Stage::Schematic)` entries are
//! post-layout-only parasitic variables. This matches §IV-B of the paper:
//! the late-stage model needs additional basis functions whose prior
//! knowledge is missing. (The multifinger splitting of §IV-A is exposed
//! separately by [`crate::diffpair`], which publishes its
//! `FingerExpansion`.)

use crate::error::CircuitError;

/// A point in the design flow at which simulation data can be collected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Schematic-level design: fast simulations, no layout parasitics.
    Schematic,
    /// Post-layout design: extracted netlist, slow simulations, parasitic
    /// variation variables present.
    PostLayout,
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stage::Schematic => write!(f, "schematic"),
            Stage::PostLayout => write!(f, "post-layout"),
        }
    }
}

/// One scalar performance metric of one circuit, evaluable at both stages.
///
/// Implementations must be deterministic: the same `(stage, x)` always
/// yields the same value. Randomness lives in the Monte-Carlo engine, not
/// in the circuit.
pub trait CircuitPerformance: Sync {
    /// Human-readable metric name, e.g. `"ro.frequency"`.
    fn name(&self) -> &str;

    /// Number of variation variables at `stage`.
    fn num_vars(&self, stage: Stage) -> usize;

    /// Evaluates the metric at `stage` for the variation vector `x`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::VarCount`] when
    /// `x.len() != self.num_vars(stage)`, and a solver-specific variant
    /// when the underlying circuit analysis fails — implementations
    /// never panic on malformed input or pathological operating points.
    fn evaluate(&self, stage: Stage, x: &[f64]) -> Result<f64, CircuitError>;

    /// Simulated wall-clock cost of producing one Monte-Carlo sample at
    /// `stage`, in hours. This feeds the cost ledger reproducing the
    /// paper's Tables IV/VI simulation-cost rows.
    fn sim_cost_hours(&self, stage: Stage) -> f64;

    /// Number of post-layout-only variables (those without early-stage
    /// prior knowledge).
    fn num_parasitic_vars(&self) -> usize {
        self.num_vars(Stage::PostLayout) - self.num_vars(Stage::Schematic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl CircuitPerformance for Dummy {
        fn name(&self) -> &str {
            "dummy"
        }
        fn num_vars(&self, stage: Stage) -> usize {
            match stage {
                Stage::Schematic => 3,
                Stage::PostLayout => 5,
            }
        }
        fn evaluate(&self, _stage: Stage, x: &[f64]) -> Result<f64, CircuitError> {
            Ok(x.iter().sum())
        }
        fn sim_cost_hours(&self, _stage: Stage) -> f64 {
            0.01
        }
    }

    #[test]
    fn parasitic_count_is_difference() {
        assert_eq!(Dummy.num_parasitic_vars(), 2);
    }

    #[test]
    fn stage_display() {
        assert_eq!(Stage::Schematic.to_string(), "schematic");
        assert_eq!(Stage::PostLayout.to_string(), "post-layout");
    }

    #[test]
    fn trait_is_object_safe() {
        let d: &dyn CircuitPerformance = &Dummy;
        assert_eq!(d.evaluate(Stage::Schematic, &[1.0, 2.0, 3.0]), Ok(6.0));
    }

    #[test]
    fn length_mismatch_is_an_error_not_a_panic() {
        let e = crate::error::check_var_count("dummy", Stage::Schematic, 3, 1).unwrap_err();
        assert!(matches!(
            e,
            CircuitError::VarCount {
                expected: 3,
                got: 1,
                ..
            }
        ));
    }
}
