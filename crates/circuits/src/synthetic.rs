//! Controlled synthetic early/late model pairs.
//!
//! The behavioral circuits in [`crate::ro`] and [`crate::sram`] are
//! realistic but their true coefficients are only implicitly defined. For
//! unit tests and for the ablation studies (prior quality vs early/late
//! similarity) we also need a generator where *everything* is dialed in
//! explicitly: the true sparse coefficient spectrum, the exact
//! schematic→layout perturbation, the number of missing-prior variables,
//! and the size of the residual "simulator error".
//!
//! The truth is linear in `x` plus a small deterministic quadratic
//! residual, so a linear fit has an irreducible error floor — mirroring
//! how the paper's linear models behave on real simulation data (eq. 23's
//! ε term).

use bmf_stat::normal::StandardNormal;
use bmf_stat::rng::{derive_seed, seeded};

use crate::error::{check_var_count, CircuitError};
use crate::stage::{CircuitPerformance, Stage};

/// Configuration of a [`SyntheticCircuit`].
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Schematic-stage variation variables.
    pub early_vars: usize,
    /// Additional post-layout-only variables (missing prior knowledge).
    pub extra_late_vars: usize,
    /// Coefficient magnitude decay exponent: the `r`-th largest
    /// coefficient has magnitude `∝ 1/(1+r)^decay`. Larger ⇒ sparser.
    pub decay: f64,
    /// Overall scale of the linear coefficients.
    pub coeff_scale: f64,
    /// Relative size of the schematic→layout coefficient perturbation
    /// (`0` ⇒ identical stages; the ablation knob for prior quality).
    pub layout_shift_rel: f64,
    /// Probability that a late coefficient flips sign relative to the
    /// early one (`0` ⇒ signs preserved). Sign corruption is what makes
    /// the zero-mean prior (magnitude only) beat the nonzero-mean prior —
    /// the §III-A2 trade-off.
    pub sign_flip_prob: f64,
    /// Nominal (constant-term) value at the early stage.
    pub nominal: f64,
    /// Relative shift of the nominal after layout.
    pub layout_nominal_shift: f64,
    /// Magnitude of the deterministic quadratic residual (the "simulator
    /// error" a linear model cannot capture).
    pub residual_scale: f64,
    /// Simulated cost of one schematic sample, hours.
    pub sch_cost_hours: f64,
    /// Simulated cost of one post-layout sample, hours.
    pub lay_cost_hours: f64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            early_vars: 50,
            extra_late_vars: 5,
            decay: 1.2,
            coeff_scale: 1.0,
            layout_shift_rel: 0.15,
            sign_flip_prob: 0.0,
            nominal: 10.0,
            layout_nominal_shift: 0.08,
            residual_scale: 0.01,
            sch_cost_hours: 1.0 / 3600.0,
            lay_cost_hours: 10.0 / 3600.0,
        }
    }
}

/// A synthetic performance function with fully known ground truth.
///
/// # Example
///
/// ```
/// use bmf_circuits::synthetic::{SyntheticCircuit, SyntheticConfig};
/// use bmf_circuits::stage::{CircuitPerformance, Stage};
///
/// let syn = SyntheticCircuit::new(SyntheticConfig::default(), 7);
/// assert_eq!(syn.num_vars(Stage::Schematic), 50);
/// assert_eq!(syn.num_vars(Stage::PostLayout), 55);
/// // The true early coefficients are exposed for exact-prior tests.
/// assert_eq!(syn.true_early_coeffs().len(), 51); // intercept + 50
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticCircuit {
    config: SyntheticConfig,
    /// Intercept followed by one coefficient per early variable.
    alpha_early: Vec<f64>,
    /// Intercept followed by coefficients for all late variables
    /// (early vars first, then the extra late-only ones).
    alpha_late: Vec<f64>,
    /// Unit direction of the quadratic residual (late variable space).
    residual_dir: Vec<f64>,
}

impl SyntheticCircuit {
    /// Generates a synthetic circuit from the configuration and seed.
    ///
    /// # Panics
    ///
    /// Panics when `early_vars == 0`.
    pub fn new(config: SyntheticConfig, seed: u64) -> Self {
        assert!(config.early_vars > 0, "need at least one early variable");
        let mut rng = seeded(derive_seed(seed, 0));
        let mut sampler = StandardNormal::new();

        // Early coefficients: decaying magnitudes in a random variable
        // order with random signs.
        let n_e = config.early_vars;
        let mut ranks: Vec<usize> = (0..n_e).collect();
        rng.shuffle(&mut ranks);
        let mut alpha_early = Vec::with_capacity(n_e + 1);
        alpha_early.push(config.nominal);
        for &rank in &ranks {
            let mag = config.coeff_scale / (1.0 + rank as f64).powf(config.decay);
            let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            // Mild magnitude scatter keeps the spectrum from being exactly
            // deterministic.
            let scatter = 1.0 + 0.2 * sampler.sample(&mut rng);
            alpha_early.push(sign * mag * scatter.abs().max(0.1));
        }

        // Late coefficients: perturbed early ones plus extra late-only
        // coefficients of intermediate magnitude.
        let mut rng_l = seeded(derive_seed(seed, 1));
        let mut sampler_l = StandardNormal::new();
        let n_l = n_e + config.extra_late_vars;
        let mut alpha_late = Vec::with_capacity(n_l + 1);
        alpha_late.push(config.nominal * (1.0 + config.layout_nominal_shift));
        for &a in &alpha_early[1..] {
            let zeta = sampler_l.sample(&mut rng_l);
            let flip = if config.sign_flip_prob > 0.0 && rng_l.gen_bool(config.sign_flip_prob) {
                -1.0
            } else {
                1.0
            };
            alpha_late.push(flip * a * (1.0 + config.layout_shift_rel * zeta));
        }
        for j in 0..config.extra_late_vars {
            let mag = 0.5 * config.coeff_scale / (2.0 + j as f64).powf(config.decay);
            let sign = if rng_l.gen_bool(0.5) { 1.0 } else { -1.0 };
            alpha_late.push(sign * mag);
        }

        // Residual direction: fixed random unit vector.
        let mut rng_r = seeded(derive_seed(seed, 2));
        let mut sampler_r = StandardNormal::new();
        let mut dir = sampler_r.sample_vec(&mut rng_r, n_l);
        let norm = dir.iter().map(|d| d * d).sum::<f64>().sqrt();
        for d in &mut dir {
            *d /= norm;
        }

        SyntheticCircuit {
            config,
            alpha_early,
            alpha_late,
            residual_dir: dir,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SyntheticConfig {
        &self.config
    }

    /// True early-stage coefficients: `[intercept, a₁, …, a_Rₑ]`.
    ///
    /// These correspond to the linear Hermite basis `{1, x₁, …}` — exactly
    /// what an exact early-stage fit would recover (up to the residual).
    pub fn true_early_coeffs(&self) -> &[f64] {
        &self.alpha_early
    }

    /// True late-stage coefficients: `[intercept, a₁, …, a_R_L]`.
    pub fn true_late_coeffs(&self) -> &[f64] {
        &self.alpha_late
    }

    fn eval_linear(&self, coeffs: &[f64], x: &[f64]) -> f64 {
        let mut v = coeffs[0];
        for (a, xi) in coeffs[1..].iter().zip(x) {
            v += a * xi;
        }
        v
    }
}

impl CircuitPerformance for SyntheticCircuit {
    fn name(&self) -> &str {
        "synthetic"
    }

    fn num_vars(&self, stage: Stage) -> usize {
        match stage {
            Stage::Schematic => self.config.early_vars,
            Stage::PostLayout => self.config.early_vars + self.config.extra_late_vars,
        }
    }

    fn evaluate(&self, stage: Stage, x: &[f64]) -> Result<f64, CircuitError> {
        check_var_count(self.name(), stage, self.num_vars(stage), x.len())?;
        let (coeffs, dir): (&[f64], &[f64]) = match stage {
            Stage::Schematic => (
                &self.alpha_early,
                &self.residual_dir[..self.config.early_vars],
            ),
            Stage::PostLayout => (&self.alpha_late, &self.residual_dir),
        };
        let linear = self.eval_linear(coeffs, x);
        // Deterministic quadratic residual: he₂ along a fixed direction.
        let u: f64 = dir.iter().zip(x).map(|(d, xi)| d * xi).sum();
        let residual =
            self.config.residual_scale * self.config.coeff_scale * ((u * u - 1.0) / 2.0f64.sqrt());
        Ok(linear + residual)
    }

    fn sim_cost_hours(&self, stage: Stage) -> f64 {
        match stage {
            Stage::Schematic => self.config.sch_cost_hours,
            Stage::PostLayout => self.config.lay_cost_hours,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syn() -> SyntheticCircuit {
        SyntheticCircuit::new(SyntheticConfig::default(), 42)
    }

    #[test]
    fn coefficient_lengths() {
        let s = syn();
        assert_eq!(s.true_early_coeffs().len(), 51);
        assert_eq!(s.true_late_coeffs().len(), 56);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SyntheticCircuit::new(SyntheticConfig::default(), 9);
        let b = SyntheticCircuit::new(SyntheticConfig::default(), 9);
        assert_eq!(a.true_late_coeffs(), b.true_late_coeffs());
        let c = SyntheticCircuit::new(SyntheticConfig::default(), 10);
        assert_ne!(a.true_late_coeffs(), c.true_late_coeffs());
    }

    #[test]
    fn evaluation_matches_truth_up_to_residual() {
        let s = syn();
        let n = s.num_vars(Stage::PostLayout);
        let x: Vec<f64> = (0..n).map(|i| ((i * 7 % 5) as f64 - 2.0) / 2.0).collect();
        let f = s.evaluate(Stage::PostLayout, &x).unwrap();
        let linear = s.eval_linear(s.true_late_coeffs(), &x);
        let bound = s.config().residual_scale
            * s.config().coeff_scale
            * (x.iter().map(|v| v * v).sum::<f64>() + 1.0);
        assert!((f - linear).abs() <= bound, "residual exceeds bound");
    }

    #[test]
    fn zero_shift_makes_stages_share_coefficients() {
        let cfg = SyntheticConfig {
            layout_shift_rel: 0.0,
            layout_nominal_shift: 0.0,
            ..SyntheticConfig::default()
        };
        let s = SyntheticCircuit::new(cfg, 3);
        let e = s.true_early_coeffs();
        let l = s.true_late_coeffs();
        for (a, b) in e.iter().zip(l.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn coefficients_have_decaying_spectrum() {
        let s = syn();
        let mut mags: Vec<f64> = s.true_early_coeffs()[1..].iter().map(|a| a.abs()).collect();
        mags.sort_by(|a, b| b.partial_cmp(a).unwrap());
        // Top coefficient should dominate the median by a clear factor.
        let median = mags[mags.len() / 2];
        assert!(mags[0] > 5.0 * median, "spectrum not sparse enough");
    }

    #[test]
    fn late_only_coefficients_are_nonzero() {
        let s = syn();
        let tail = &s.true_late_coeffs()[51..];
        assert_eq!(tail.len(), 5);
        assert!(tail.iter().all(|a| a.abs() > 0.0));
    }

    #[test]
    fn sign_flips_follow_probability() {
        let cfg = SyntheticConfig {
            early_vars: 400,
            sign_flip_prob: 0.5,
            layout_shift_rel: 0.0,
            ..SyntheticConfig::default()
        };
        let s = SyntheticCircuit::new(cfg, 11);
        let flips = s.true_early_coeffs()[1..]
            .iter()
            .zip(&s.true_late_coeffs()[1..401])
            .filter(|(e, l)| e.signum() != l.signum())
            .count();
        let frac = flips as f64 / 400.0;
        assert!((frac - 0.5).abs() < 0.1, "flip fraction {frac}");
    }

    #[test]
    fn early_late_correlation_strong() {
        let s = syn();
        let e = &s.true_early_coeffs()[1..];
        let l = &s.true_late_coeffs()[1..51];
        let dot: f64 = e.iter().zip(l).map(|(a, b)| a * b).sum();
        let na: f64 = e.iter().map(|a| a * a).sum::<f64>().sqrt();
        let nb: f64 = l.iter().map(|a| a * a).sum::<f64>().sqrt();
        let corr = dot / (na * nb);
        assert!(corr > 0.95, "corr={corr}");
    }
}
