//! Gauss–Hermite quadrature (probabilists' convention).
//!
//! An n-point rule integrates polynomials of degree ≤ 2n−1 *exactly*
//! against the standard normal weight:
//!
//! ```text
//! ∫ p(x)·φ(x) dx = Σ_i w_i · p(x_i)
//! ```
//!
//! Nodes and weights come from the Golub–Welsch algorithm: the
//! eigenvalues of the Jacobi (three-term-recurrence) matrix of the
//! probabilists' Hermite family are the nodes, and the squared first
//! eigenvector components are the weights. This gives the test suite an
//! *exact* (not Monte-Carlo) verification of the basis orthonormality
//! that the paper's variance bookkeeping relies on, and lets models be
//! projected onto the basis by quadrature in low dimensions.

use bmf_linalg::{Matrix, SymmetricEigen};

use crate::basis::OrthonormalBasis;

/// A Gauss–Hermite quadrature rule for the standard normal weight.
///
/// # Example
///
/// ```
/// use bmf_basis::quadrature::GaussHermite;
/// let rule = GaussHermite::new(5);
/// // E[x²] = 1 for x ~ N(0,1), integrated exactly.
/// let m2: f64 = rule.nodes().iter().zip(rule.weights())
///     .map(|(&x, &w)| w * x * x).sum();
/// assert!((m2 - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GaussHermite {
    nodes: Vec<f64>,
    weights: Vec<f64>,
}

impl GaussHermite {
    /// Builds the n-point rule.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "quadrature needs at least one node");
        // Jacobi matrix of probabilists' Hermite: diagonal 0,
        // off-diagonal sqrt(k).
        let mut j = Matrix::zeros(n, n);
        for k in 1..n {
            let b = (k as f64).sqrt();
            j[(k - 1, k)] = b;
            j[(k, k - 1)] = b;
        }
        // bmf-lint: allow(no-panic-paths) -- the Jacobi matrix is built symmetric three lines up
        let eig = SymmetricEigen::new(&j).expect("Jacobi matrix is symmetric");
        // Weights: first-row components squared (total mass 1 for the
        // normalized normal weight).
        let mut pairs: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let v0 = eig.vectors[(0, i)];
                (eig.values[i], v0 * v0)
            })
            .collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        GaussHermite {
            nodes: pairs.iter().map(|p| p.0).collect(),
            weights: pairs.iter().map(|p| p.1).collect(),
        }
    }

    /// Quadrature nodes in ascending order.
    pub fn nodes(&self) -> &[f64] {
        &self.nodes
    }

    /// Quadrature weights (summing to 1).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the rule has no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Integrates `f` against the standard normal weight in 1-D.
    pub fn integrate<F: FnMut(f64) -> f64>(&self, mut f: F) -> f64 {
        self.nodes
            .iter()
            .zip(&self.weights)
            .map(|(&x, &w)| w * f(x))
            .sum()
    }
}

/// Computes the Gram matrix `E[g_i g_j]` of a basis over `dims ≤ 3`
/// variables by tensorized Gauss–Hermite quadrature — exact when the
/// rule order covers twice the basis degree.
///
/// Intended for verification at small dimension (the tensor grid has
/// `n^dims` points).
///
/// # Panics
///
/// Panics when the basis has more than 3 variables (use Monte-Carlo
/// checks beyond that).
pub fn basis_gram_exact(basis: &OrthonormalBasis, points_per_dim: usize) -> Matrix {
    let d = basis.num_vars();
    assert!(d <= 3, "tensor quadrature is for small dimensions");
    let rule = GaussHermite::new(points_per_dim);
    let m = basis.len();
    let mut gram = Matrix::zeros(m, m);
    let n = rule.len();
    let total = n.pow(d as u32);
    let mut x = vec![0.0; d];
    for flat in 0..total {
        let mut rem = flat;
        let mut w = 1.0;
        for xv in x.iter_mut() {
            let idx = rem % n;
            rem /= n;
            *xv = rule.nodes()[idx];
            w *= rule.weights()[idx];
        }
        let row = basis.row(&x);
        for i in 0..m {
            for j in i..m {
                gram[(i, j)] += w * row[i] * row[j];
            }
        }
    }
    for i in 0..m {
        for j in (i + 1)..m {
            gram[(j, i)] = gram[(i, j)];
        }
    }
    gram
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hermite::hermite_normalized;

    #[test]
    fn weights_sum_to_one_and_nodes_symmetric() {
        for n in [1usize, 2, 3, 5, 8, 12] {
            let rule = GaussHermite::new(n);
            let wsum: f64 = rule.weights().iter().sum();
            assert!((wsum - 1.0).abs() < 1e-12, "n={n}: weight sum {wsum}");
            for (a, b) in rule.nodes().iter().zip(rule.nodes().iter().rev()) {
                assert!((a + b).abs() < 1e-9, "n={n}: asymmetric nodes");
            }
        }
    }

    #[test]
    fn known_three_point_rule() {
        // Probabilists' 3-point rule: nodes -sqrt(3), 0, sqrt(3);
        // weights 1/6, 2/3, 1/6.
        let r = GaussHermite::new(3);
        let s3 = 3.0f64.sqrt();
        assert!((r.nodes()[0] + s3).abs() < 1e-10);
        assert!(r.nodes()[1].abs() < 1e-10);
        assert!((r.nodes()[2] - s3).abs() < 1e-10);
        assert!((r.weights()[0] - 1.0 / 6.0).abs() < 1e-10);
        assert!((r.weights()[1] - 2.0 / 3.0).abs() < 1e-10);
    }

    #[test]
    fn gaussian_moments_exact() {
        let r = GaussHermite::new(6);
        // Moments of N(0,1): 1, 0, 1, 0, 3, 0, 15 (up to degree 2*6-1).
        let moments = [1.0, 0.0, 1.0, 0.0, 3.0, 0.0, 15.0];
        for (p, &want) in moments.iter().enumerate() {
            let got = r.integrate(|x| x.powi(p as i32));
            assert!((got - want).abs() < 1e-9, "moment {p}: {got} vs {want}");
        }
    }

    #[test]
    fn hermite_orthonormality_exact_1d() {
        // E[he_i he_j] = delta_ij, verified by quadrature (degree i+j <=
        // 8 needs >= 5 points).
        let r = GaussHermite::new(6);
        for i in 0..=4usize {
            for j in 0..=4usize {
                let v = r.integrate(|x| hermite_normalized(i, x) * hermite_normalized(j, x));
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (v - want).abs() < 1e-9,
                    "<he_{i}, he_{j}> = {v}, want {want}"
                );
            }
        }
    }

    #[test]
    fn multivariate_basis_gram_is_identity() {
        // The paper's eq. 3 condition, verified exactly for the degree-2
        // basis over 2 variables (the eq. 5 example).
        let basis = OrthonormalBasis::total_degree(2, 2, 100);
        let gram = basis_gram_exact(&basis, 5);
        let m = basis.len();
        for i in 0..m {
            for j in 0..m {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (gram[(i, j)] - want).abs() < 1e-9,
                    "gram[{i}][{j}] = {}",
                    gram[(i, j)]
                );
            }
        }
    }

    #[test]
    fn degree3_basis_in_3_vars_is_orthonormal() {
        let basis = OrthonormalBasis::total_degree(3, 3, 1000);
        let gram = basis_gram_exact(&basis, 6);
        let m = basis.len();
        let mut worst = 0.0f64;
        for i in 0..m {
            for j in 0..m {
                let want = if i == j { 1.0 } else { 0.0 };
                worst = worst.max((gram[(i, j)] - want).abs());
            }
        }
        assert!(worst < 1e-8, "worst orthonormality defect {worst}");
    }
}
