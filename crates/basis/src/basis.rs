//! Orthonormal basis term lists and design-matrix assembly.

use bmf_linalg::Matrix;

use crate::hermite::{hermite_normalized, hermite_normalized_derivative};
use crate::multi_index::{graded_indices, MultiIndex};

/// An ordered list of orthonormal multivariate Hermite basis terms over a
/// fixed number of variation variables.
///
/// The term order defines the coefficient order of every model fitted
/// against this basis, and the columns of the design matrix `G` (eq. 9).
/// By convention term 0 is the constant whenever the basis was built by
/// [`OrthonormalBasis::linear`] or [`OrthonormalBasis::total_degree`].
///
/// # Example
///
/// ```
/// use bmf_basis::basis::OrthonormalBasis;
///
/// let basis = OrthonormalBasis::total_degree(2, 2, 1 << 20);
/// // 1, x0, x1, he2(x0), x0*x1, he2(x1)
/// assert_eq!(basis.len(), 6);
/// let row = basis.row(&[1.0, 2.0]);
/// assert!((row[3] - 0.0).abs() < 1e-12); // he2(1) = (1-1)/sqrt(2) = 0
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrthonormalBasis {
    num_vars: usize,
    terms: Vec<MultiIndex>,
}

impl OrthonormalBasis {
    /// Builds a basis from explicit terms.
    ///
    /// # Panics
    ///
    /// Panics when a term references a variable `>= num_vars`.
    pub fn from_terms(num_vars: usize, terms: Vec<MultiIndex>) -> Self {
        for t in &terms {
            if let Some(v) = t.max_var() {
                assert!(
                    v < num_vars,
                    "term {t} references variable {v} >= num_vars {num_vars}"
                );
            }
        }
        OrthonormalBasis { num_vars, terms }
    }

    /// The linear basis `{1, x₁, …, x_R}` used for the paper's RO and SRAM
    /// experiments (§V: "linear functions of these random variables").
    pub fn linear(num_vars: usize) -> Self {
        let mut terms = Vec::with_capacity(num_vars + 1);
        terms.push(MultiIndex::constant());
        terms.extend((0..num_vars).map(MultiIndex::linear));
        OrthonormalBasis { num_vars, terms }
    }

    /// The full graded basis of all terms with total degree ≤ `max_degree`
    /// (including the constant).
    ///
    /// # Panics
    ///
    /// Panics when the term count would exceed `limit` — the combinatorial
    /// growth makes this constructor suitable only for small dimensions.
    pub fn total_degree(num_vars: usize, max_degree: u32, limit: usize) -> Self {
        let mut terms = vec![MultiIndex::constant()];
        terms.extend(graded_indices(num_vars, max_degree, limit));
        OrthonormalBasis { num_vars, terms }
    }

    /// Number of variation variables the basis is defined over.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of basis terms `M`.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` when the basis has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The terms, in coefficient order.
    pub fn terms(&self) -> &[MultiIndex] {
        &self.terms
    }

    /// Borrows term `m`.
    ///
    /// # Panics
    ///
    /// Panics when `m >= self.len()`.
    pub fn term(&self, m: usize) -> &MultiIndex {
        &self.terms[m]
    }

    /// Evaluates a single term at the point `x`.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != self.num_vars()`.
    pub fn evaluate_term(&self, m: usize, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_vars, "point dimension mismatch");
        self.terms[m]
            .pairs()
            .iter()
            .map(|&(v, d)| hermite_normalized(d as usize, x[v]))
            .product()
    }

    /// Evaluates every term at `x`, producing one design-matrix row
    /// `[g₁(x), …, g_M(x)]`.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != self.num_vars()`.
    pub fn row(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.terms.len()];
        self.fill_row(x, &mut out);
        out
    }

    /// Evaluates every term at `x` into a caller-owned row buffer
    /// (fully overwritten) — the allocation-free core of [`Self::row`],
    /// used by the design-matrix assembly loop.
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != self.num_vars()` or
    /// `out.len() != self.len()`.
    pub fn fill_row(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.num_vars, "point dimension mismatch");
        assert_eq!(out.len(), self.terms.len(), "row buffer length mismatch");
        for (o, t) in out.iter_mut().zip(&self.terms) {
            *o = t
                .pairs()
                .iter()
                .map(|&(v, d)| hermite_normalized(d as usize, x[v]))
                .product();
        }
    }

    /// Builds the K × M design matrix `G` (eq. 9) for K sample points given
    /// as rows of an iterator of slices.
    ///
    /// # Panics
    ///
    /// Panics when any sample has the wrong dimension.
    pub fn design_matrix<'a, I>(&self, samples: I) -> Matrix
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let m = self.len();
        let mut data: Vec<f64> = Vec::new();
        let mut rows = 0;
        for x in samples {
            data.resize(data.len() + m, 0.0);
            let start = data.len() - m;
            self.fill_row(x, &mut data[start..]);
            rows += 1;
        }
        // bmf-lint: allow(no-panic-paths) -- every row is written with self.len() entries just above
        Matrix::from_row_major(rows, self.len(), data).expect("rows are uniform by construction")
    }

    /// Evaluates the model `Σ_m coeffs[m]·g_m(x)` at `x`.
    ///
    /// # Panics
    ///
    /// Panics when `coeffs.len() != self.len()` or `x` has the wrong
    /// dimension.
    pub fn evaluate_model(&self, coeffs: &[f64], x: &[f64]) -> f64 {
        assert_eq!(coeffs.len(), self.len(), "coefficient count mismatch");
        assert_eq!(x.len(), self.num_vars, "point dimension mismatch");
        self.terms
            .iter()
            .zip(coeffs)
            .map(|(t, a)| {
                let g: f64 = t
                    .pairs()
                    .iter()
                    .map(|&(v, d)| hermite_normalized(d as usize, x[v]))
                    .product();
                g * a
            })
            .sum()
    }

    /// Analytic gradient `∇_x Σ_m coeffs[m]·g_m(x)`, using
    /// `heₙ' = √n·heₙ₋₁`.
    ///
    /// Cost is Θ(#non-zero exponents) per term — for the linear bases of
    /// the paper's experiments this is Θ(M).
    ///
    /// # Panics
    ///
    /// Panics when `coeffs.len() != self.len()` or `x` has the wrong
    /// dimension.
    pub fn model_gradient(&self, coeffs: &[f64], x: &[f64]) -> Vec<f64> {
        assert_eq!(coeffs.len(), self.len(), "coefficient count mismatch");
        assert_eq!(x.len(), self.num_vars, "point dimension mismatch");
        let mut grad = vec![0.0; self.num_vars];
        for (term, &a) in self.terms.iter().zip(coeffs) {
            if bmf_linalg::is_exact_zero(a) || term.is_constant() {
                continue;
            }
            let pairs = term.pairs();
            // Common fast path: a single linear factor.
            if pairs.len() == 1 && pairs[0].1 == 1 {
                grad[pairs[0].0] += a;
                continue;
            }
            // Product rule over the factors.
            for (di, &(dv, dd)) in pairs.iter().enumerate() {
                let mut g = hermite_normalized_derivative(dd as usize, x[dv]);
                if bmf_linalg::is_exact_zero(g) {
                    continue;
                }
                for (j, &(v, d)) in pairs.iter().enumerate() {
                    if j != di {
                        g *= hermite_normalized(d as usize, x[v]);
                    }
                }
                grad[dv] += a * g;
            }
        }
        grad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmf_stat::normal::StandardNormal;
    use bmf_stat::rng::seeded;

    #[test]
    fn linear_basis_layout() {
        let b = OrthonormalBasis::linear(4);
        assert_eq!(b.len(), 5);
        assert!(b.term(0).is_constant());
        assert_eq!(b.term(3), &MultiIndex::linear(2));
        let row = b.row(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(row, vec![1.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn total_degree_2_matches_paper_eq5() {
        // Paper eq. (5): 1, x1, x2, (x1²−1)/√2, x1·x2, (x2²−1)/√2.
        let b = OrthonormalBasis::total_degree(2, 2, 100);
        assert_eq!(b.len(), 6);
        let x = [1.5, -0.5];
        let row = b.row(&x);
        assert_eq!(row[0], 1.0);
        assert_eq!(row[1], 1.5);
        assert_eq!(row[2], -0.5);
        let he2 = |v: f64| (v * v - 1.0) / 2.0f64.sqrt();
        // Terms of degree 2 in graded-lex order: he2(x0), x0*x1, he2(x1).
        assert!((row[3] - he2(1.5)).abs() < 1e-12);
        assert!((row[4] - 1.5 * -0.5).abs() < 1e-12);
        assert!((row[5] - he2(-0.5)).abs() < 1e-12);
    }

    #[test]
    fn design_matrix_shape_and_rows() {
        let b = OrthonormalBasis::linear(2);
        let pts = [[0.0, 1.0], [2.0, 3.0], [4.0, 5.0]];
        let g = b.design_matrix(pts.iter().map(|p| p.as_slice()));
        assert_eq!(g.shape(), (3, 3));
        assert_eq!(g.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn evaluate_model_is_linear_combination() {
        let b = OrthonormalBasis::linear(2);
        let coeffs = [10.0, 1.0, -2.0];
        let v = b.evaluate_model(&coeffs, &[3.0, 4.0]);
        assert_eq!(v, 10.0 + 3.0 - 8.0);
    }

    #[test]
    fn monte_carlo_gram_is_identity() {
        // E[G row ⊗ G row] = I for orthonormal terms under N(0, I).
        let b = OrthonormalBasis::total_degree(3, 2, 100);
        let m = b.len();
        let mut rng = seeded(5);
        let mut sampler = StandardNormal::new();
        let n = 60_000;
        let mut acc = vec![0.0f64; m * m];
        for _ in 0..n {
            let x = sampler.sample_vec(&mut rng, 3);
            let row = b.row(&x);
            for i in 0..m {
                for j in 0..m {
                    acc[i * m + j] += row[i] * row[j];
                }
            }
        }
        for i in 0..m {
            for j in 0..m {
                let v = acc[i * m + j] / n as f64;
                let target = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (v - target).abs() < 0.06,
                    "gram[{i}][{j}] = {v}, want {target}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "references variable")]
    fn from_terms_validates_vars() {
        OrthonormalBasis::from_terms(2, vec![MultiIndex::linear(5)]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn row_validates_dimension() {
        OrthonormalBasis::linear(3).row(&[1.0, 2.0]);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let b = OrthonormalBasis::total_degree(3, 3, 1000);
        let coeffs: Vec<f64> = (0..b.len())
            .map(|m| ((m * 13 % 7) as f64 - 3.0) / 5.0)
            .collect();
        let x = [0.4, -0.8, 1.2];
        let grad = b.model_gradient(&coeffs, &x);
        let h = 1e-6;
        for v in 0..3 {
            let mut xp = x;
            let mut xm = x;
            xp[v] += h;
            xm[v] -= h;
            let fd = (b.evaluate_model(&coeffs, &xp) - b.evaluate_model(&coeffs, &xm)) / (2.0 * h);
            assert!(
                (grad[v] - fd).abs() < 1e-5 * (1.0 + fd.abs()),
                "var {v}: analytic {} vs fd {}",
                grad[v],
                fd
            );
        }
    }

    #[test]
    fn linear_model_gradient_is_coefficients() {
        let b = OrthonormalBasis::linear(4);
        let coeffs = [9.0, 1.0, -2.0, 3.0, 0.5];
        let grad = b.model_gradient(&coeffs, &[0.3, 0.1, -0.2, 0.9]);
        assert_eq!(grad, vec![1.0, -2.0, 3.0, 0.5]);
    }

    #[test]
    fn high_dimensional_linear_row_is_fast_shape() {
        // Smoke: a 10_000-variable linear basis builds rows of length 10_001.
        let b = OrthonormalBasis::linear(10_000);
        let x = vec![0.1; 10_000];
        assert_eq!(b.row(&x).len(), 10_001);
    }
}
