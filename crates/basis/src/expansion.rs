//! Multifinger basis expansion (§IV-A of the paper).
//!
//! At the schematic stage a device's mismatch is lumped into one variation
//! variable `x_r`. After layout extraction each of the device's `W_r`
//! fingers carries its own independent variable `x_{r,1} … x_{r,W_r}`, so
//! every schematic basis term maps to a *set* of layout basis terms
//! (eq. 39–43). The expansion here produces that layout basis together with
//! the group structure `m → {(m,t)}` that prior mapping needs to spread the
//! schematic coefficient `α_{E,m}` over the group as `β = α_{E,m}/√T_m`
//! (eq. 46–49).
//!
//! The collapse direction is also provided: a layout sample collapses to
//! its schematic equivalent via `x_r = Σ_t x_{r,t}/√W_r`, which is again
//! standard normal — this is how the circuit substrate keeps the two stages
//! physically consistent.

use std::fmt;

use crate::basis::OrthonormalBasis;
use crate::multi_index::MultiIndex;

/// Describes how each schematic variable splits into layout finger
/// variables.
///
/// # Example
///
/// ```
/// use bmf_basis::expansion::FingerExpansion;
///
/// // Two devices, two fingers each (the paper's eq. 37 example).
/// let exp = FingerExpansion::new(vec![2, 2]).unwrap();
/// assert_eq!(exp.num_layout_vars(), 4);
/// assert_eq!(exp.layout_var(1, 0), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FingerExpansion {
    fingers: Vec<usize>,
    offsets: Vec<usize>,
    total: usize,
}

/// Errors from constructing or applying a [`FingerExpansion`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExpansionError {
    /// A finger count of zero was supplied.
    ZeroFingers {
        /// The schematic variable with zero fingers.
        var: usize,
    },
    /// A basis term is not multilinear; the variance-preserving expansion
    /// of §IV-A is only exact for terms with per-variable degree ≤ 1.
    NotMultilinear {
        /// Index of the offending term in the schematic basis.
        term: usize,
    },
    /// The basis dimension does not match the expansion.
    DimensionMismatch {
        /// Schematic variables the expansion covers.
        expansion_vars: usize,
        /// Variables the basis is defined over.
        basis_vars: usize,
    },
}

impl fmt::Display for ExpansionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpansionError::ZeroFingers { var } => {
                write!(f, "schematic variable {var} has zero fingers")
            }
            ExpansionError::NotMultilinear { term } => write!(
                f,
                "basis term {term} is not multilinear; finger expansion is only exact for per-variable degree <= 1"
            ),
            ExpansionError::DimensionMismatch {
                expansion_vars,
                basis_vars,
            } => write!(
                f,
                "expansion covers {expansion_vars} schematic variables but the basis has {basis_vars}"
            ),
        }
    }
}

impl std::error::Error for ExpansionError {}

impl FingerExpansion {
    /// Creates an expansion where schematic variable `r` splits into
    /// `fingers[r]` layout variables.
    ///
    /// # Errors
    ///
    /// Returns [`ExpansionError::ZeroFingers`] when any count is zero.
    pub fn new(fingers: Vec<usize>) -> Result<Self, ExpansionError> {
        if let Some(var) = fingers.iter().position(|&w| w == 0) {
            return Err(ExpansionError::ZeroFingers { var });
        }
        let mut offsets = Vec::with_capacity(fingers.len());
        let mut total = 0;
        for &w in &fingers {
            offsets.push(total);
            total += w;
        }
        Ok(FingerExpansion {
            fingers,
            offsets,
            total,
        })
    }

    /// Creates an expansion with the same finger count for every variable.
    ///
    /// # Panics
    ///
    /// Panics when `w == 0`.
    pub fn uniform(num_vars: usize, w: usize) -> Self {
        // bmf-lint: allow(no-panic-paths) -- w > 0 is checked by the only caller (uniform constructor contract)
        FingerExpansion::new(vec![w; num_vars]).expect("w > 0 enforced by caller contract")
    }

    /// Number of schematic variables.
    pub fn num_schematic_vars(&self) -> usize {
        self.fingers.len()
    }

    /// Total number of layout variables `Σ_r W_r`.
    pub fn num_layout_vars(&self) -> usize {
        self.total
    }

    /// Finger count `W_r` of schematic variable `r`.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of range.
    pub fn finger_count(&self, r: usize) -> usize {
        self.fingers[r]
    }

    /// Layout variable index of finger `t` of schematic variable `r`.
    ///
    /// # Panics
    ///
    /// Panics when `r` or `t` is out of range.
    pub fn layout_var(&self, r: usize, t: usize) -> usize {
        assert!(t < self.fingers[r], "finger {t} out of range for var {r}");
        self.offsets[r] + t
    }

    /// Collapses a layout sample to its schematic equivalent:
    /// `x_r = Σ_t x_{r,t} / √W_r`.
    ///
    /// If the layout variables are iid standard normal, so is the result —
    /// the lumped schematic variable *is* this normalized sum, which is
    /// what makes schematic-level and post-layout simulations of the same
    /// device physically consistent.
    ///
    /// # Panics
    ///
    /// Panics when `layout_x.len() != self.num_layout_vars()`.
    pub fn collapse_point(&self, layout_x: &[f64]) -> Vec<f64> {
        assert_eq!(layout_x.len(), self.total, "layout point dimension");
        self.fingers
            .iter()
            .zip(&self.offsets)
            .map(|(&w, &off)| layout_x[off..off + w].iter().sum::<f64>() / (w as f64).sqrt())
            .collect()
    }

    /// Expands a schematic basis into the layout basis plus group
    /// structure.
    ///
    /// Each multilinear schematic term `Π_{r∈S} x_r` becomes the
    /// `T_m = Π_{r∈S} W_r` layout terms `Π_{r∈S} x_{r,t_r}`; the constant
    /// maps to the constant.
    ///
    /// # Errors
    ///
    /// * [`ExpansionError::DimensionMismatch`] when the basis variable
    ///   count differs from the expansion's.
    /// * [`ExpansionError::NotMultilinear`] when a term has a squared (or
    ///   higher) factor.
    pub fn expand_basis(
        &self,
        schematic: &OrthonormalBasis,
    ) -> Result<ExpandedBasis, ExpansionError> {
        if schematic.num_vars() != self.num_schematic_vars() {
            return Err(ExpansionError::DimensionMismatch {
                expansion_vars: self.num_schematic_vars(),
                basis_vars: schematic.num_vars(),
            });
        }
        let mut layout_terms: Vec<MultiIndex> = Vec::new();
        let mut groups: Vec<Vec<usize>> = Vec::with_capacity(schematic.len());
        for (m, term) in schematic.terms().iter().enumerate() {
            if !term.is_multilinear() {
                return Err(ExpansionError::NotMultilinear { term: m });
            }
            let vars: Vec<usize> = term.pairs().iter().map(|&(v, _)| v).collect();
            let mut group = Vec::new();
            // Enumerate the cartesian product of finger choices.
            let mut choice = vec![0usize; vars.len()];
            loop {
                let pairs: Vec<(usize, u32)> = vars
                    .iter()
                    .zip(&choice)
                    .map(|(&r, &t)| (self.layout_var(r, t), 1))
                    .collect();
                group.push(layout_terms.len());
                layout_terms.push(MultiIndex::from_pairs(&pairs));
                // Advance the mixed-radix counter.
                let mut i = 0;
                loop {
                    if i == vars.len() {
                        break;
                    }
                    choice[i] += 1;
                    if choice[i] < self.fingers[vars[i]] {
                        break;
                    }
                    choice[i] = 0;
                    i += 1;
                }
                if i == vars.len() {
                    break;
                }
            }
            groups.push(group);
        }
        Ok(ExpandedBasis {
            basis: OrthonormalBasis::from_terms(self.total, layout_terms),
            groups,
        })
    }
}

/// A layout basis produced by [`FingerExpansion::expand_basis`], retaining
/// which layout terms each schematic term expanded into.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpandedBasis {
    basis: OrthonormalBasis,
    groups: Vec<Vec<usize>>,
}

impl ExpandedBasis {
    /// The layout basis (over `Σ W_r` variables).
    pub fn basis(&self) -> &OrthonormalBasis {
        &self.basis
    }

    /// Consumes self, returning the layout basis.
    pub fn into_basis(self) -> OrthonormalBasis {
        self.basis
    }

    /// Layout-term indices that schematic term `m` expanded into.
    ///
    /// # Panics
    ///
    /// Panics when `m` is out of range.
    pub fn group(&self, m: usize) -> &[usize] {
        &self.groups[m]
    }

    /// Number of schematic terms.
    pub fn num_schematic_terms(&self) -> usize {
        self.groups.len()
    }

    /// Spreads schematic coefficients over the layout terms per the prior
    /// mapping rule `β_{m,t} = α_{E,m} / √T_m` (eq. 49), returning one
    /// coefficient per layout term.
    ///
    /// # Panics
    ///
    /// Panics when `schematic_coeffs.len() != self.num_schematic_terms()`.
    pub fn map_coefficients(&self, schematic_coeffs: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.basis.len()];
        self.map_coefficients_into(schematic_coeffs, &mut out);
        out
    }

    /// [`Self::map_coefficients`] into a caller-owned buffer (fully
    /// overwritten), for callers that re-map coefficients in a loop.
    ///
    /// # Panics
    ///
    /// Panics when `schematic_coeffs.len() != self.num_schematic_terms()`
    /// or `out.len() != self.basis().len()`.
    pub fn map_coefficients_into(&self, schematic_coeffs: &[f64], out: &mut [f64]) {
        assert_eq!(
            schematic_coeffs.len(),
            self.groups.len(),
            "coefficient count mismatch"
        );
        assert_eq!(out.len(), self.basis.len(), "output length mismatch");
        out.fill(0.0);
        for (m, group) in self.groups.iter().enumerate() {
            let beta = schematic_coeffs[m] / (group.len() as f64).sqrt();
            for &t in group {
                out[t] = beta;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmf_stat::normal::StandardNormal;
    use bmf_stat::rng::seeded;

    #[test]
    fn paper_eq37_example() {
        // Two input transistors, two fingers each; schematic model has
        // terms {1, x1, x2}. Layout model should have {1, x11, x12, x21,
        // x22} with groups {0}->{0}, {1}->{1,2}, {2}->{3,4}.
        let exp = FingerExpansion::new(vec![2, 2]).unwrap();
        let schematic = OrthonormalBasis::linear(2);
        let e = exp.expand_basis(&schematic).unwrap();
        assert_eq!(e.basis().len(), 5);
        assert_eq!(e.group(0), &[0]);
        assert_eq!(e.group(1), &[1, 2]);
        assert_eq!(e.group(2), &[3, 4]);
        assert!(e.basis().term(0).is_constant());
        assert_eq!(format!("{}", e.basis().term(1)), "x0");
        assert_eq!(format!("{}", e.basis().term(4)), "x3");
    }

    #[test]
    fn coefficient_mapping_preserves_variance() {
        // alpha_E^2 == sum_t beta^2 (eq. 46).
        let exp = FingerExpansion::new(vec![3, 2]).unwrap();
        let schematic = OrthonormalBasis::linear(2);
        let e = exp.expand_basis(&schematic).unwrap();
        let alpha = [7.0, 2.0, -3.0];
        let beta = e.map_coefficients(&alpha);
        for (m, group) in (0..3).map(|m| (m, e.group(m))) {
            let sum_sq: f64 = group.iter().map(|&t| beta[t] * beta[t]).sum();
            assert!(
                (sum_sq - alpha[m] * alpha[m]).abs() < 1e-12,
                "variance not preserved for term {m}"
            );
        }
    }

    #[test]
    fn collapse_point_is_standard_normal() {
        let exp = FingerExpansion::new(vec![4, 1]).unwrap();
        let mut rng = seeded(11);
        let mut s = StandardNormal::new();
        let n = 50_000;
        let mut acc = 0.0;
        let mut acc2 = 0.0;
        for _ in 0..n {
            let layout = s.sample_vec(&mut rng, 5);
            let sch = exp.collapse_point(&layout);
            assert_eq!(sch.len(), 2);
            acc += sch[0];
            acc2 += sch[0] * sch[0];
        }
        let mean = acc / n as f64;
        let var = acc2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02);
        assert!((var - 1.0).abs() < 0.03);
    }

    #[test]
    fn collapse_is_consistent_with_mapping() {
        // A schematic-linear model evaluated on the collapsed point equals
        // the mapped layout model evaluated on the layout point.
        let exp = FingerExpansion::new(vec![2, 3]).unwrap();
        let schematic = OrthonormalBasis::linear(2);
        let e = exp.expand_basis(&schematic).unwrap();
        let alpha = [1.0, 2.0, -0.5];
        let beta = e.map_coefficients(&alpha);
        let layout_x = [0.3, -0.7, 1.1, 0.2, -0.4];
        let sch_x = exp.collapse_point(&layout_x);
        let f_sch = schematic.evaluate_model(&alpha, &sch_x);
        let f_lay = e.basis().evaluate_model(&beta, &layout_x);
        assert!((f_sch - f_lay).abs() < 1e-12);
    }

    #[test]
    fn cross_term_expansion_size() {
        // Term x0*x1 with W = (2, 3) expands into 6 layout terms.
        let exp = FingerExpansion::new(vec![2, 3]).unwrap();
        let term = MultiIndex::from_pairs(&[(0, 1), (1, 1)]);
        let schematic = OrthonormalBasis::from_terms(2, vec![term]);
        let e = exp.expand_basis(&schematic).unwrap();
        assert_eq!(e.basis().len(), 6);
        assert_eq!(e.group(0).len(), 6);
        // All expanded terms are distinct products of one finger from each.
        let set: std::collections::HashSet<_> = e.basis().terms().iter().collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn non_multilinear_rejected() {
        let exp = FingerExpansion::new(vec![2]).unwrap();
        let term = MultiIndex::from_pairs(&[(0, 2)]);
        let schematic = OrthonormalBasis::from_terms(1, vec![term]);
        assert_eq!(
            exp.expand_basis(&schematic),
            Err(ExpansionError::NotMultilinear { term: 0 })
        );
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let exp = FingerExpansion::new(vec![2, 2]).unwrap();
        let schematic = OrthonormalBasis::linear(3);
        assert!(matches!(
            exp.expand_basis(&schematic),
            Err(ExpansionError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn zero_fingers_rejected() {
        assert_eq!(
            FingerExpansion::new(vec![1, 0]),
            Err(ExpansionError::ZeroFingers { var: 1 })
        );
    }

    #[test]
    fn single_finger_expansion_is_identity_shaped() {
        let exp = FingerExpansion::uniform(3, 1);
        let schematic = OrthonormalBasis::linear(3);
        let e = exp.expand_basis(&schematic).unwrap();
        assert_eq!(e.basis().len(), schematic.len());
        let alpha = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(e.map_coefficients(&alpha), alpha.to_vec());
    }
}
