//! Orthonormal polynomial bases for high-dimensional performance modeling.
//!
//! The paper approximates circuit performance as a linear combination of
//! *orthonormal* basis functions of independent standard normal variation
//! variables (eq. 2–5). For Gaussian weight the right family is the
//! (normalized) probabilists' Hermite polynomials:
//!
//! ```text
//! g₁(x) = 1,   g₂(x) = x,   g₃(x) = (x² − 1)/√2,   …
//! ```
//!
//! multiplied across dimensions. Orthonormality
//! `E[gᵢ(x) gⱼ(x)] = δᵢⱼ` is what makes the paper's variance bookkeeping —
//! in particular the prior-mapping identity `α_E,m² = Σ_t β_E,m,t²`
//! (eq. 46) — exact.
//!
//! This crate provides:
//!
//! * [`hermite`] — normalized 1-D Hermite evaluation,
//! * [`multi_index::MultiIndex`] — sparse exponent vectors suited to
//!   10⁴–10⁵-dimensional variation spaces,
//! * [`basis::OrthonormalBasis`] — a term list with row/design-matrix
//!   evaluation (the matrix `G` of eq. 9),
//! * [`expansion`] — the schematic→layout *multifinger* basis expansion of
//!   §IV-A, used by prior mapping.
//!
//! # Example
//!
//! ```
//! use bmf_basis::basis::OrthonormalBasis;
//!
//! // A linear model over 3 variation variables: 1, x1, x2, x3.
//! let basis = OrthonormalBasis::linear(3);
//! assert_eq!(basis.len(), 4);
//! let row = basis.row(&[0.5, -1.0, 2.0]);
//! assert_eq!(row, vec![1.0, 0.5, -1.0, 2.0]);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod basis;
pub mod expansion;
pub mod hermite;
pub mod multi_index;
pub mod quadrature;
