//! Normalized probabilists' Hermite polynomials.
//!
//! The probabilists' Hermite polynomials `Heₙ` satisfy the three-term
//! recurrence `Heₙ₊₁(x) = x·Heₙ(x) − n·Heₙ₋₁(x)` with `He₀ = 1`,
//! `He₁ = x`, and are orthogonal under the standard normal weight with
//! `E[Heᵢ Heⱼ] = i!·δᵢⱼ`. Dividing by `√(n!)` yields the *orthonormal*
//! family used as basis functions throughout the paper (eq. 3–5):
//! `he₀ = 1`, `he₁ = x`, `he₂ = (x²−1)/√2`, `he₃ = (x³−3x)/√6`, …

/// Evaluates the unnormalized probabilists' Hermite polynomial `Heₙ(x)`.
///
/// ```
/// use bmf_basis::hermite::hermite;
/// assert_eq!(hermite(0, 2.0), 1.0);
/// assert_eq!(hermite(1, 2.0), 2.0);
/// assert_eq!(hermite(2, 2.0), 3.0);       // x² − 1
/// assert_eq!(hermite(3, 2.0), 2.0);       // x³ − 3x
/// ```
pub fn hermite(n: usize, x: f64) -> f64 {
    match n {
        0 => 1.0,
        1 => x,
        _ => {
            let mut prev = 1.0; // He₀
            let mut cur = x; // He₁
            for k in 1..n {
                let next = x * cur - k as f64 * prev;
                prev = cur;
                cur = next;
            }
            cur
        }
    }
}

/// Evaluates the orthonormal Hermite polynomial `heₙ(x) = Heₙ(x)/√(n!)`.
///
/// These are exactly the paper's 1-D basis functions (eq. 4):
/// `he₂(x) = (x² − 1)/√2`.
///
/// ```
/// use bmf_basis::hermite::hermite_normalized;
/// let x = 1.7;
/// let expected = (x * x - 1.0) / 2.0f64.sqrt();
/// assert!((hermite_normalized(2, x) - expected).abs() < 1e-12);
/// ```
pub fn hermite_normalized(n: usize, x: f64) -> f64 {
    hermite(n, x) / factorial_sqrt(n)
}

/// Evaluates `he₀(x) … he_max(x)` in one recurrence pass.
///
/// Cheaper than `max+1` independent calls when building basis rows with
/// high-order terms.
pub fn hermite_normalized_all(max: usize, x: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(max + 1);
    let mut prev = 1.0;
    out.push(1.0);
    if max == 0 {
        return out;
    }
    let mut cur = x;
    out.push(x);
    let mut norm = 1.0f64; // sqrt(n!)
    for k in 1..max {
        let next = x * cur - k as f64 * prev;
        prev = cur;
        cur = next;
        norm *= ((k + 1) as f64).sqrt();
        out.push(cur / norm);
    }
    out
}

/// Derivative of the orthonormal Hermite polynomial:
/// `heₙ'(x) = √n · heₙ₋₁(x)` (from `Heₙ' = n·Heₙ₋₁`).
///
/// Used for analytic model gradients (worst-case corner extraction).
///
/// ```
/// use bmf_basis::hermite::{hermite_normalized, hermite_normalized_derivative};
/// // he₂'(x) = √2·x / √2·... check numerically:
/// let x = 0.8;
/// let h = 1e-6;
/// let fd = (hermite_normalized(3, x + h) - hermite_normalized(3, x - h)) / (2.0 * h);
/// assert!((hermite_normalized_derivative(3, x) - fd).abs() < 1e-6);
/// ```
pub fn hermite_normalized_derivative(n: usize, x: f64) -> f64 {
    if n == 0 {
        0.0
    } else {
        (n as f64).sqrt() * hermite_normalized(n - 1, x)
    }
}

/// Returns `√(n!)`.
fn factorial_sqrt(n: usize) -> f64 {
    (1..=n).map(|k| k as f64).product::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bmf_stat::normal::StandardNormal;
    use bmf_stat::rng::seeded;

    #[test]
    fn low_order_closed_forms() {
        for &x in &[-2.0, -0.3, 0.0, 0.7, 3.1] {
            assert_eq!(hermite(0, x), 1.0);
            assert_eq!(hermite(1, x), x);
            assert!((hermite(2, x) - (x * x - 1.0)).abs() < 1e-12);
            assert!((hermite(3, x) - (x * x * x - 3.0 * x)).abs() < 1e-12);
            assert!(
                (hermite(4, x) - (x.powi(4) - 6.0 * x * x + 3.0)).abs() < 1e-10,
                "x={x}"
            );
        }
    }

    #[test]
    fn normalization_constants() {
        // he₂ = He₂/√2, he₃ = He₃/√6.
        let x = 1.3;
        assert!((hermite_normalized(2, x) - hermite(2, x) / 2.0f64.sqrt()).abs() < 1e-14);
        assert!((hermite_normalized(3, x) - hermite(3, x) / 6.0f64.sqrt()).abs() < 1e-14);
    }

    #[test]
    fn all_matches_individual() {
        let x = -0.85;
        let all = hermite_normalized_all(6, x);
        assert_eq!(all.len(), 7);
        for (n, v) in all.iter().enumerate() {
            assert!(
                (v - hermite_normalized(n, x)).abs() < 1e-12,
                "n={n}: {v} vs {}",
                hermite_normalized(n, x)
            );
        }
    }

    #[test]
    fn monte_carlo_orthonormality() {
        // E[heᵢ heⱼ] should be δᵢⱼ under the standard normal measure.
        let mut rng = seeded(2024);
        let mut sampler = StandardNormal::new();
        let n = 400_000;
        let max = 4;
        let mut acc = vec![vec![0.0f64; max + 1]; max + 1];
        for _ in 0..n {
            let x = sampler.sample(&mut rng);
            let h = hermite_normalized_all(max, x);
            for i in 0..=max {
                for j in i..=max {
                    acc[i][j] += h[i] * h[j];
                }
            }
        }
        for i in 0..=max {
            for j in i..=max {
                let v = acc[i][j] / n as f64;
                let target = if i == j { 1.0 } else { 0.0 };
                // MC error grows with the order; 4th-order moments are noisy.
                let tol = 0.03 * (1.0 + (i + j) as f64);
                assert!(
                    (v - target).abs() < tol,
                    "E[he_{i} he_{j}] = {v}, want {target}"
                );
            }
        }
    }

    #[test]
    fn parity() {
        // Heₙ(−x) = (−1)ⁿ Heₙ(x).
        for n in 0..8 {
            let x = 1.234;
            let sign = if n % 2 == 0 { 1.0 } else { -1.0 };
            assert!(
                (hermite(n, -x) - sign * hermite(n, x)).abs() < 1e-9,
                "n={n}"
            );
        }
    }
}
