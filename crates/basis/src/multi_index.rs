//! Sparse multi-indices for high-dimensional polynomial terms.
//!
//! A multi-index encodes one multivariate basis term
//! `g(x) = Π_r he_{d_r}(x_r)`. At the paper's scale (up to 66 117 variation
//! variables) a dense exponent vector per term is wasteful — nearly all
//! exponents are zero — so [`MultiIndex`] stores only the non-zero
//! `(variable, degree)` pairs, sorted by variable index.

use std::fmt;

/// A sparse multivariate exponent vector.
///
/// Invariants: entries are sorted by variable index, variable indices are
/// unique, and all stored degrees are non-zero. The empty index is the
/// constant term `g(x) = 1`.
///
/// # Example
///
/// ```
/// use bmf_basis::multi_index::MultiIndex;
///
/// let m = MultiIndex::from_pairs(&[(4, 1), (2, 2)]); // he₂(x₂)·he₁(x₄)
/// assert_eq!(m.total_degree(), 3);
/// assert_eq!(m.degree_of(2), 2);
/// assert_eq!(m.degree_of(0), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MultiIndex {
    /// Sorted `(variable, degree)` pairs with `degree >= 1`.
    pairs: Vec<(usize, u32)>,
}

impl MultiIndex {
    /// The constant term (all exponents zero).
    pub fn constant() -> Self {
        MultiIndex { pairs: Vec::new() }
    }

    /// The linear term `x_var`.
    pub fn linear(var: usize) -> Self {
        MultiIndex {
            pairs: vec![(var, 1)],
        }
    }

    /// Builds a multi-index from `(variable, degree)` pairs.
    ///
    /// Zero degrees are dropped; duplicate variables have their degrees
    /// summed; the result is sorted.
    pub fn from_pairs(pairs: &[(usize, u32)]) -> Self {
        let mut v: Vec<(usize, u32)> = Vec::with_capacity(pairs.len());
        for &(var, deg) in pairs {
            if deg == 0 {
                continue;
            }
            match v.iter_mut().find(|(w, _)| *w == var) {
                Some((_, d)) => *d += deg,
                None => v.push((var, deg)),
            }
        }
        v.sort_unstable();
        MultiIndex { pairs: v }
    }

    /// The non-zero `(variable, degree)` pairs, sorted by variable.
    pub fn pairs(&self) -> &[(usize, u32)] {
        &self.pairs
    }

    /// Sum of all exponents.
    pub fn total_degree(&self) -> u32 {
        self.pairs.iter().map(|&(_, d)| d).sum()
    }

    /// Exponent of `var` (zero when absent).
    pub fn degree_of(&self, var: usize) -> u32 {
        self.pairs
            .iter()
            .find(|&&(w, _)| w == var)
            .map_or(0, |&(_, d)| d)
    }

    /// `true` for the constant term.
    pub fn is_constant(&self) -> bool {
        self.pairs.is_empty()
    }

    /// `true` when every exponent is ≤ 1 (multilinear terms — the only
    /// ones the multifinger expansion of §IV-A supports exactly).
    pub fn is_multilinear(&self) -> bool {
        self.pairs.iter().all(|&(_, d)| d == 1)
    }

    /// Largest variable index referenced, or `None` for the constant term.
    pub fn max_var(&self) -> Option<usize> {
        self.pairs.last().map(|&(v, _)| v)
    }

    /// Remaps variable indices through `f`, preserving degrees.
    ///
    /// Used by the multifinger expansion to move a schematic term onto
    /// layout variables.
    ///
    /// # Panics
    ///
    /// Panics if `f` maps two variables of this index to the same target.
    pub fn map_vars<F: FnMut(usize) -> usize>(&self, mut f: F) -> MultiIndex {
        let remapped: Vec<(usize, u32)> = self.pairs.iter().map(|&(v, d)| (f(v), d)).collect();
        let out = MultiIndex::from_pairs(&remapped);
        assert_eq!(
            out.pairs.len(),
            self.pairs.len(),
            "variable remap must be injective on this index"
        );
        out
    }
}

impl fmt::Display for MultiIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pairs.is_empty() {
            return write!(f, "1");
        }
        for (i, &(v, d)) in self.pairs.iter().enumerate() {
            if i > 0 {
                write!(f, "*")?;
            }
            if d == 1 {
                write!(f, "x{v}")?;
            } else {
                write!(f, "he{d}(x{v})")?;
            }
        }
        Ok(())
    }
}

/// Enumerates all multi-indices over `num_vars` variables with total degree
/// in `1..=max_degree`, in graded lexicographic order (degree first).
///
/// The count is `C(num_vars + max_degree, max_degree) − 1`, which explodes
/// combinatorially; intended for the small-dimension cases (quickstart
/// examples, differential pair), not the 10⁴-variable circuits.
///
/// # Panics
///
/// Panics when the term count would exceed `limit`.
pub fn graded_indices(num_vars: usize, max_degree: u32, limit: usize) -> Vec<MultiIndex> {
    let mut out = Vec::new();
    for deg in 1..=max_degree {
        let mut current: Vec<(usize, u32)> = Vec::new();
        emit_degree(num_vars, deg, 0, &mut current, &mut out, limit);
    }
    out
}

fn emit_degree(
    num_vars: usize,
    remaining: u32,
    start_var: usize,
    current: &mut Vec<(usize, u32)>,
    out: &mut Vec<MultiIndex>,
    limit: usize,
) {
    if remaining == 0 {
        assert!(
            out.len() < limit,
            "graded basis exceeds the {limit}-term limit"
        );
        out.push(MultiIndex {
            pairs: current.clone(),
        });
        return;
    }
    for var in start_var..num_vars {
        for d in (1..=remaining).rev() {
            current.push((var, d));
            emit_degree(num_vars, remaining - d, var + 1, current, out, limit);
            current.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_properties() {
        let c = MultiIndex::constant();
        assert!(c.is_constant());
        assert_eq!(c.total_degree(), 0);
        assert_eq!(c.max_var(), None);
        assert_eq!(format!("{c}"), "1");
    }

    #[test]
    fn from_pairs_normalizes() {
        let a = MultiIndex::from_pairs(&[(3, 1), (1, 2), (3, 1), (5, 0)]);
        assert_eq!(a.pairs(), &[(1, 2), (3, 2)]);
        assert_eq!(a.total_degree(), 4);
    }

    #[test]
    fn linear_index() {
        let l = MultiIndex::linear(7);
        assert_eq!(l.degree_of(7), 1);
        assert!(l.is_multilinear());
        assert_eq!(l.max_var(), Some(7));
        assert_eq!(format!("{l}"), "x7");
    }

    #[test]
    fn multilinear_detection() {
        assert!(MultiIndex::from_pairs(&[(0, 1), (4, 1)]).is_multilinear());
        assert!(!MultiIndex::from_pairs(&[(0, 2)]).is_multilinear());
        assert!(MultiIndex::constant().is_multilinear());
    }

    #[test]
    fn map_vars_relabels() {
        let m = MultiIndex::from_pairs(&[(0, 1), (2, 2)]);
        let mapped = m.map_vars(|v| v + 10);
        assert_eq!(mapped.pairs(), &[(10, 1), (12, 2)]);
    }

    #[test]
    #[should_panic(expected = "injective")]
    fn map_vars_rejects_collisions() {
        let m = MultiIndex::from_pairs(&[(0, 1), (1, 1)]);
        let _ = m.map_vars(|_| 5);
    }

    #[test]
    fn graded_count_matches_binomial() {
        // C(3 + 2, 2) - 1 = 9 terms of degree 1..=2 over 3 vars.
        let idx = graded_indices(3, 2, 1000);
        assert_eq!(idx.len(), 9);
        // Degree-1 terms come first.
        assert!(idx[..3].iter().all(|m| m.total_degree() == 1));
        assert!(idx[3..].iter().all(|m| m.total_degree() == 2));
        // All distinct.
        let set: std::collections::HashSet<_> = idx.iter().collect();
        assert_eq!(set.len(), 9);
    }

    #[test]
    fn graded_degree3_count() {
        // C(2 + 3, 3) - 1 = 9 over 2 vars up to degree 3.
        assert_eq!(graded_indices(2, 3, 1000).len(), 9);
    }

    #[test]
    #[should_panic(expected = "limit")]
    fn graded_respects_limit() {
        graded_indices(20, 3, 10);
    }

    #[test]
    fn display_formats() {
        let m = MultiIndex::from_pairs(&[(0, 1), (3, 2)]);
        assert_eq!(format!("{m}"), "x0*he2(x3)");
    }
}
