//! Figure reproductions (paper Figs. 1–8).
//!
//! Figures are regenerated as text: distribution tables for the prior
//! illustrations (Figs. 1–2), structure dumps for the circuit schematics
//! (Figs. 3 and 6), ASCII histograms for the Monte-Carlo distributions
//! (Figs. 4 and 7), and fitting-cost tables for the solver comparisons
//! (Figs. 5 and 8).

use std::time::Instant;

use bmf_basis::basis::OrthonormalBasis;
use bmf_circuits::ro::{RingOscillator, RoMetric};
use bmf_circuits::sim::monte_carlo;
use bmf_circuits::sram::SramReadPath;
use bmf_circuits::stage::{CircuitPerformance, Stage};
use bmf_core::hyper::{cross_validate_both, CvConfig};
use bmf_core::map_estimate::{map_estimate, SolverKind};
use bmf_core::omp::{fit_omp_design, OmpConfig};
use bmf_core::options::FitOptions;
use bmf_core::prior::PriorKind;
use bmf_core::Result;
use bmf_stat::histogram::Histogram;
use bmf_stat::normal::Normal;
use bmf_stat::rng::derive_seed;

use crate::earlyfit::fit_early_model;
use crate::report::{secs, Report};
use crate::scale::Scale;
use crate::tables::row_prefix;

/// Fig. 1 / Fig. 2: prior-distribution illustrations for one small and one
/// large early-stage coefficient.
pub fn prior_illustration(kind: PriorKind) -> Report {
    let (id, title) = match kind {
        PriorKind::ZeroMean => ("fig1", "Zero-mean prior distributions (paper Fig. 1)"),
        PriorKind::NonZeroMean => ("fig2", "Nonzero-mean prior distributions (paper Fig. 2)"),
    };
    let mut r = Report::new(id, title);
    let (alpha_small, alpha_large) = (0.25, 2.0);
    let lambda = 0.5;
    let (d1, d2) = match kind {
        PriorKind::ZeroMean => (Normal::new(0.0, alpha_small), Normal::new(0.0, alpha_large)),
        PriorKind::NonZeroMean => (
            Normal::new(alpha_small, lambda * alpha_small),
            Normal::new(alpha_large, lambda * alpha_large),
        ),
    };
    r.para(&format!(
        "Early coefficients: α_E,1 = {alpha_small} (small), α_E,2 = {alpha_large} (large). \
         {} prior: pdf(α_L,1) is narrowly peaked, pdf(α_L,2) spreads widely — the paper's \
         qualitative picture.",
        kind
    ));
    let mut rows = Vec::new();
    let mut chart = String::new();
    for i in 0..41 {
        let x = -4.0 + 0.2 * i as f64;
        let (p1, p2) = (d1.pdf(x), d2.pdf(x));
        rows.push(vec![
            format!("{x:.1}"),
            format!("{p1:.4}"),
            format!("{p2:.4}"),
        ]);
        let bar1 = "#".repeat((p1 * 25.0).round() as usize);
        let bar2 = "*".repeat((p2 * 25.0).round() as usize);
        chart.push_str(&format!("{x:>5.1} | {bar1}{bar2}\n"));
    }
    r.table(&["α_L", "pdf(α_L,1)", "pdf(α_L,2)"], &rows[14..27]);
    r.pre(&chart);
    r
}

/// Fig. 3: RO structure dump.
pub fn ro_structure(scale: Scale, seed: u64) -> Report {
    let ro = RingOscillator::new(scale.ro_config(), seed);
    let mut r = Report::new("fig3", "Ring-oscillator structure (paper Fig. 3)");
    let cfg = ro.config();
    r.para(&format!(
        "{} inverter stages, {} transistors/stage, {} mismatch variables/transistor, \
         {} interdie variables, {} parasitic variables/stage (post-layout only). \
         Nominal frequency {:.3} GHz. Schematic variables: {}; post-layout: {} \
         (paper: 7177 at `--scale paper`).",
        cfg.stages,
        cfg.transistors_per_stage,
        cfg.params_per_transistor,
        cfg.interdie_vars,
        cfg.parasitic_vars_per_stage,
        ro.nominal_frequency() / 1e9,
        cfg.schematic_vars(),
        cfg.post_layout_vars(),
    ));
    let mut dump = String::new();
    for g in ro.var_space(Stage::PostLayout).groups().iter().take(6) {
        dump.push_str(&format!("{:<24} vars {:?}\n", g.name, g.range));
    }
    dump.push_str("...\n");
    let groups = ro.var_space(Stage::PostLayout).groups();
    for g in groups.iter().skip(groups.len().saturating_sub(2)) {
        dump.push_str(&format!("{:<24} vars {:?}\n", g.name, g.range));
    }
    r.pre(&dump);
    r
}

/// Fig. 6: SRAM read-path structure dump.
pub fn sram_structure(scale: Scale, seed: u64) -> Report {
    let sram = SramReadPath::new(scale.sram_config(), seed);
    let mut r = Report::new("fig6", "SRAM read-path structure (paper Fig. 6)");
    let cfg = sram.config();
    r.para(&format!(
        "{} rows × {} columns, {} mismatch variables/cell, wordline driver ({} vars), \
         sense amp ({} vars), {} parasitic variables/column (post-layout). Nominal read \
         delay {:.1} ps. Schematic variables: {}; post-layout: {} (paper: 66117 at \
         `--scale paper`).",
        cfg.rows,
        cfg.columns,
        cfg.params_per_cell,
        cfg.driver_vars,
        cfg.senseamp_vars,
        cfg.parasitic_vars_per_column,
        sram.nominal_delay() * 1e12,
        cfg.schematic_vars(),
        cfg.post_layout_vars(),
    ));
    let groups = sram.var_space(Stage::PostLayout).groups();
    let mut dump = String::new();
    for g in groups.iter().take(5) {
        dump.push_str(&format!("{:<28} vars {:?}\n", g.name, g.range));
    }
    dump.push_str("...\n");
    for g in groups.iter().skip(groups.len().saturating_sub(2)) {
        dump.push_str(&format!("{:<28} vars {:?}\n", g.name, g.range));
    }
    r.pre(&dump);
    r
}

fn histogram_section(r: &mut Report, label: &str, values: &[f64], unit: &str, scale_to: f64) {
    let scaled: Vec<f64> = values.iter().map(|v| v * scale_to).collect();
    let h = Histogram::from_samples(&scaled, 24).expect("non-empty samples");
    let s = h.summary();
    r.para(&format!(
        "**{label}** ({} samples): mean {:.4} {unit}, σ {:.4} {unit} \
         (CoV {:.2}%), skewness {:.2}, range [{:.4}, {:.4}] {unit}.",
        s.count(),
        s.mean(),
        s.std_dev(),
        s.coefficient_of_variation() * 100.0,
        s.skewness(),
        s.min(),
        s.max(),
    ));
    r.pre(&h.render_ascii(46));
}

/// Fig. 4: histograms of RO power / phase noise / frequency from
/// post-layout Monte-Carlo samples.
pub fn ro_histograms(scale: Scale, seed: u64) -> Report {
    let ro = RingOscillator::new(scale.ro_config(), seed);
    let mut r = Report::new(
        "fig4",
        "Post-layout Monte-Carlo histograms for the RO (paper Fig. 4)",
    );
    let n = scale.histogram_samples();
    for (metric, label, unit, factor) in [
        (RoMetric::Power, "(a) power", "µW", 1e6),
        (RoMetric::PhaseNoise, "(b) phase noise", "dBc/Hz", 1.0),
        (RoMetric::Frequency, "(c) frequency", "GHz", 1e-9),
    ] {
        let view = ro.metric(metric);
        let set = monte_carlo(
            &view,
            Stage::PostLayout,
            n,
            derive_seed(seed, metric as u64),
        )
        .expect("simulation succeeds");
        histogram_section(&mut r, label, &set.values, unit, factor);
    }
    r
}

/// Fig. 7: histogram of SRAM read delay.
pub fn sram_histogram(scale: Scale, seed: u64) -> Report {
    let sram = SramReadPath::new(scale.sram_config(), seed);
    let mut r = Report::new(
        "fig7",
        "Post-layout Monte-Carlo histogram of SRAM read delay (paper Fig. 7)",
    );
    let view = sram.read_delay();
    let set = monte_carlo(&view, Stage::PostLayout, scale.histogram_samples(), seed)
        .expect("simulation succeeds");
    histogram_section(&mut r, "read delay", &set.values, "ps", 1e12);
    r
}

/// One measured fitting-cost row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostRow {
    /// Training samples.
    pub k: usize,
    /// OMP fit, seconds.
    pub omp_s: f64,
    /// BMF-PS full pipeline with the fast solver (CV + final), seconds.
    pub bmf_fast_s: f64,
    /// Single MAP solve with the conventional M×M Cholesky, seconds
    /// (`None` when skipped as infeasible, as the paper does for the
    /// SRAM).
    pub direct_s: Option<f64>,
    /// Single MAP solve with the fast solver, seconds.
    pub fast_solve_s: f64,
}

/// Measures fitting cost vs K for one circuit metric (Figs. 5 and 8).
///
/// # Errors
///
/// Propagates fitting errors.
pub fn fitting_cost_sweep(
    circuit: &dyn CircuitPerformance,
    scale: Scale,
    seed: u64,
    include_direct: bool,
) -> Result<Vec<CostRow>> {
    let (early, _) = fit_early_model(circuit, scale, derive_seed(seed, 1))?;
    let late_vars = circuit.num_vars(Stage::PostLayout);
    let basis = OrthonormalBasis::linear(late_vars);
    let prior_raw = early.late_prior_values(late_vars);
    let k_values = scale.k_values();
    let k_max = *k_values.last().expect("non-empty");
    let train = monte_carlo(circuit, Stage::PostLayout, k_max, derive_seed(seed, 2))
        .expect("simulation succeeds");
    let norm = bmf_core::fusion::response_scale(&train.values);
    let prior = crate::tables::scaled_prior(&prior_raw, norm);
    let g_full = basis.design_matrix(train.point_slices());
    let cv = CvConfig {
        folds: scale.folds(),
        grid: scale.hyper_grid(),
        seed: derive_seed(seed, 3),
    };

    let mut rows = Vec::new();
    for &k in &k_values {
        let g = row_prefix(&g_full, k);
        let f = crate::tables::scaled_values(&train.values[..k], norm);

        let t0 = Instant::now();
        let _ = fit_omp_design(&g, &f, &OmpConfig::default())?;
        let omp_s = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let (zm, nzm) = cross_validate_both(&g, &f, &prior, &cv)?;
        let (kind, hyper) = if zm.best_error <= nzm.best_error {
            (PriorKind::ZeroMean, zm.best_hyper)
        } else {
            (PriorKind::NonZeroMean, nzm.best_hyper)
        };
        let _ = map_estimate(
            &g,
            &f,
            &prior.with_kind(kind),
            &FitOptions::new().hyper(hyper),
        )?;
        let bmf_fast_s = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let _ = map_estimate(
            &g,
            &f,
            &prior.with_kind(kind),
            &FitOptions::new().hyper(hyper),
        )?;
        let fast_solve_s = t0.elapsed().as_secs_f64();

        let direct_s = if include_direct {
            let t0 = Instant::now();
            let _ = map_estimate(
                &g,
                &f,
                &prior.with_kind(kind),
                &FitOptions::new().hyper(hyper).solver(SolverKind::Direct),
            )?;
            Some(t0.elapsed().as_secs_f64())
        } else {
            None
        };
        rows.push(CostRow {
            k,
            omp_s,
            bmf_fast_s,
            direct_s,
            fast_solve_s,
        });
    }
    Ok(rows)
}

/// Renders a fitting-cost sweep.
pub fn render_cost_figure(id: &str, title: &str, rows: &[CostRow], m: usize) -> Report {
    let mut r = Report::new(id, title);
    r.para(&format!(
        "Fitting cost in wall-clock seconds (M = {m} basis functions). \
         `MAP direct` and `MAP fast` time a single posterior solve with the conventional \
         M×M Cholesky vs the low-rank update of §IV-C; `BMF-PS (fast)` is the complete \
         pipeline (both-prior cross-validation + final solve). The paper reports up to \
         600× between the two solvers at its scale.",
    ));
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                row.k.to_string(),
                secs(row.omp_s),
                secs(row.bmf_fast_s),
                row.direct_s.map_or("(infeasible)".into(), secs),
                secs(row.fast_solve_s),
                row.direct_s.map_or("-".into(), |d| {
                    format!("{:.0}x", d / row.fast_solve_s.max(1e-9))
                }),
            ]
        })
        .collect();
    r.table(
        &[
            "K",
            "OMP (s)",
            "BMF-PS fast (s)",
            "MAP direct (s)",
            "MAP fast (s)",
            "solver speedup",
        ],
        &table_rows,
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prior_illustrations_have_expected_shape() {
        let f1 = prior_illustration(PriorKind::ZeroMean);
        assert_eq!(f1.id, "fig1");
        assert!(f1.body.contains("pdf"));
        let f2 = prior_illustration(PriorKind::NonZeroMean);
        assert_eq!(f2.id, "fig2");
    }

    #[test]
    fn structure_dumps_mention_counts() {
        let r = ro_structure(Scale::Ci, 1);
        assert!(r.body.contains("interdie"));
        let s = sram_structure(Scale::Ci, 1);
        assert!(s.body.contains("columns"));
    }

    #[test]
    fn ro_histograms_render() {
        let r = ro_histograms(Scale::Ci, 7);
        assert!(r.body.contains("(a) power"));
        assert!(r.body.contains("(c) frequency"));
        assert!(r.body.contains("#"));
    }

    #[test]
    fn sram_histogram_renders() {
        let r = sram_histogram(Scale::Ci, 7);
        assert!(r.body.contains("read delay"));
    }

    #[test]
    fn cost_sweep_produces_rows() {
        let scale = Scale::Ci;
        let ro = RingOscillator::new(scale.ro_config(), 2);
        let metric = ro.metric(RoMetric::Frequency);
        let rows = fitting_cost_sweep(&metric, scale, 5, true).unwrap();
        assert_eq!(rows.len(), scale.k_values().len());
        for row in &rows {
            assert!(row.omp_s > 0.0);
            assert!(row.bmf_fast_s > 0.0);
            assert!(row.direct_s.unwrap() > 0.0);
        }
        let rep = render_cost_figure("fig5", "t", &rows, 123);
        assert!(rep.body.contains("solver speedup"));
    }
}
